/**
 * @file
 * Sequence-to-sequence translation with greedy decoding.
 *
 * The seq2seq *workload* trains with teacher forcing; this example
 * shows the other half of the story: after training, translation runs
 * the decoder step by step, feeding each predicted token back in. The
 * decoder-step subgraph takes (token, h, c) placeholders and returns
 * (logits, h', c'), sharing weights with the training graph — the
 * encoder-decoder pattern the paper calls "a canonical example".
 *
 *   $ ./translation
 */
#include <cstdio>
#include <vector>

#include "data/synthetic_translation.h"
#include "nn/init.h"
#include "nn/layers.h"
#include "nn/lstm.h"
#include "nn/optimizer.h"
#include "ops/register.h"
#include "runtime/session.h"

using namespace fathom;

int
main()
{
    ops::RegisterStandardOps();

    constexpr std::int64_t kVocab = 32;
    constexpr std::int64_t kEmbed = 24;
    constexpr std::int64_t kHidden = 64;
    constexpr std::int64_t kSrcLen = 6;
    constexpr std::int64_t kTgtLen = kSrcLen + 2;
    constexpr std::int64_t kBatch = 16;

    data::SyntheticTranslationDataset dataset(kVocab, kSrcLen, /*seed=*/41);

    runtime::Session session(/*seed=*/6);
    session.tracer().set_enabled(false);
    auto b = session.MakeBuilder();
    nn::Trainables params;
    Rng init_rng(19);

    const graph::Output embedding = params.NewVariable(
        b, "embedding",
        nn::GlorotUniform(init_rng, Shape{kVocab, kEmbed}, kVocab, kEmbed));
    nn::LstmCell encoder(b, &params, init_rng, "encoder", kEmbed, kHidden);
    nn::LstmCell decoder(b, &params, init_rng, "decoder", kEmbed, kHidden);
    const auto proj = nn::MakeDense(b, &params, init_rng, "proj", kHidden,
                                    kVocab);

    // ---- training graph (teacher forced, batch kBatch) -----------------
    const graph::Output source = b.Placeholder("source");
    const graph::Output dec_in = b.Placeholder("dec_in");
    const graph::Output dec_tgt = b.Placeholder("dec_tgt");

    nn::LstmState state = encoder.ZeroState(b, kBatch);
    for (std::int64_t t = 0; t < kSrcLen; ++t) {
        const graph::Output token =
            b.Reshape(b.Slice(source, {0, t}, {-1, 1}), {-1});
        state = encoder.Step(b, b.Gather(embedding, token), state);
    }
    std::vector<graph::Output> step_logits;
    nn::LstmState dec_state = state;
    for (std::int64_t t = 0; t < kTgtLen - 1; ++t) {
        const graph::Output token =
            b.Reshape(b.Slice(dec_in, {0, t}, {-1, 1}), {-1});
        dec_state = decoder.Step(b, b.Gather(embedding, token), dec_state);
        step_logits.push_back(nn::ApplyDense(b, proj, dec_state.h));
    }
    const graph::Output logits = b.Concat(step_logits, 0);
    const graph::Output loss = b.SoftmaxCrossEntropy(logits, dec_tgt)[0];
    auto optimizer = nn::OptimizerConfig::Adam(0.005f);
    optimizer.clip_value = 1.0f;
    const graph::NodeId train_op = nn::Minimize(b, loss, params, optimizer);

    // ---- stepwise decode graph (batch 1, weights shared) ----------------
    const graph::Output one_source = b.Placeholder("one_source");  // [1, S]
    nn::LstmState enc1 = encoder.ZeroState(b, 1);
    for (std::int64_t t = 0; t < kSrcLen; ++t) {
        const graph::Output token =
            b.Reshape(b.Slice(one_source, {0, t}, {-1, 1}), {-1});
        enc1 = encoder.Step(b, b.Gather(embedding, token), enc1);
    }
    const graph::Output step_token = b.Placeholder("step_token");  // [1]
    const graph::Output step_h = b.Placeholder("step_h");          // [1, H]
    const graph::Output step_c = b.Placeholder("step_c");
    const auto stepped = decoder.Step(
        b, b.Gather(embedding, step_token), {step_h, step_c});
    const graph::Output step_pred =
        b.ArgMax(nn::ApplyDense(b, proj, stepped.h));

    // ---- train -----------------------------------------------------------
    for (int step = 0; step < 600; ++step) {
        const auto batch = dataset.NextBatch(kBatch);
        Tensor din(DType::kInt32, Shape{kBatch, kTgtLen - 1});
        Tensor dtg(DType::kInt32, Shape{(kTgtLen - 1) * kBatch});
        const std::int32_t* tgt = batch.target.data<std::int32_t>();
        for (std::int64_t i = 0; i < kBatch; ++i) {
            for (std::int64_t t = 0; t < kTgtLen - 1; ++t) {
                din.data<std::int32_t>()[i * (kTgtLen - 1) + t] =
                    tgt[i * kTgtLen + t];
                dtg.data<std::int32_t>()[t * kBatch + i] =
                    tgt[i * kTgtLen + t + 1];
            }
        }
        runtime::FeedMap feeds;
        feeds[source.node] = batch.source;
        feeds[dec_in.node] = din;
        feeds[dec_tgt.node] = dtg;
        const auto out = session.Run(feeds, {loss}, {train_op});
        if (step % 150 == 0) {
            std::printf("step %3d  loss %.4f\n", step,
                        out[0].scalar_value());
        }
    }

    // ---- greedy decode & token accuracy ------------------------------------
    int correct = 0;
    int total = 0;
    Tensor sample_src;
    std::vector<std::int32_t> sample_ref;
    std::vector<std::int32_t> sample_hyp;
    for (int trial = 0; trial < 20; ++trial) {
        const auto batch = dataset.NextBatch(1);
        runtime::FeedMap enc_feeds;
        enc_feeds[one_source.node] = batch.source;
        auto hc = session.Run(enc_feeds, {enc1.h, enc1.c});

        std::int32_t token = data::kGoToken;
        std::vector<std::int32_t> decoded;
        for (std::int64_t t = 0; t < kTgtLen - 1; ++t) {
            runtime::FeedMap feeds;
            feeds[one_source.node] = batch.source;  // unused but cheap.
            feeds[step_token.node] = Tensor::FromVectorInt(Shape{1}, {token});
            feeds[step_h.node] = hc[0];
            feeds[step_c.node] = hc[1];
            const auto out = session.Run(
                feeds, {step_pred, stepped.h, stepped.c});
            token = out[0].data<std::int32_t>()[0];
            hc = {out[1], out[2]};
            decoded.push_back(token);
            if (token == data::kEosToken) {
                break;
            }
        }
        // Score against the reference (strip GO, stop at EOS).
        const std::int32_t* ref = batch.target.data<std::int32_t>();
        std::vector<std::int32_t> reference;
        for (std::int64_t t = 1; t < kTgtLen; ++t) {
            reference.push_back(ref[t]);
            if (ref[t] == data::kEosToken) {
                break;
            }
        }
        for (std::size_t i = 0; i < reference.size(); ++i) {
            ++total;
            correct += i < decoded.size() && decoded[i] == reference[i];
        }
        if (trial == 0) {
            sample_src = batch.source;
            sample_ref = reference;
            sample_hyp = decoded;
        }
    }
    std::printf("\ngreedy decode token accuracy: %.1f%%\n",
                100.0f * correct / total);

    std::printf("source:     ");
    for (std::int64_t t = 0; t < kSrcLen; ++t) {
        std::printf("%d ", sample_src.data<std::int32_t>()[t]);
    }
    std::printf("\nreference:  ");
    for (std::int32_t t : sample_ref) {
        std::printf("%d ", t);
    }
    std::printf("\nhypothesis: ");
    for (std::int32_t t : sample_hyp) {
        std::printf("%d ", t);
    }
    std::printf("\n");
    return 0;
}
