/**
 * @file
 * Extending Fathom: registering your own workload.
 *
 * The paper closes by hoping Fathom "will become a 'living' workload
 * suite, incorporating advances as they are discovered." This example
 * is the recipe: implement the Workload interface, register a factory,
 * and every tool in the repository — the profiler, the figure benches,
 * the similarity analysis — picks the new model up through the same
 * standard interface as the original eight.
 *
 *   $ ./custom_workload
 */
#include <cstdio>

#include "analysis/op_profile.h"
#include "data/synthetic_mnist.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "workloads/common.h"
#include "workloads/workload.h"

using namespace fathom;

namespace {

/**
 * A ninth workload: a plain MLP digit classifier — the "hello world"
 * of deep learning, here mostly to demonstrate the extension recipe.
 */
class MlpWorkload : public workloads::Workload {
  public:
    std::string name() const override { return "mlp"; }
    std::string
    description() const override
    {
        return "A 3-layer perceptron on synthetic MNIST; the living-suite "
               "extension example.";
    }
    std::string neuronal_style() const override { return "Full"; }
    int num_layers() const override { return 3; }
    std::string learning_task() const override { return "Supervised"; }
    std::string dataset() const override { return "synthetic-mnist"; }

    void
    Setup(const workloads::WorkloadConfig& config) override
    {
        batch_ = config.batch_size > 0 ? config.batch_size : 32;
        session_ = std::make_unique<runtime::Session>(config.seed);
        session_->SetThreads(config.threads);
        session_->SetInterOpThreads(config.inter_op_threads);
        dataset_ = std::make_unique<data::SyntheticMnistDataset>(
            config.seed ^ 0x31337);

        Rng init_rng(config.seed + 100);
        auto b = session_->MakeBuilder();
        graph::ScopeGuard scope(b, "mlp");
        images_ = b.Placeholder("images");
        labels_ = b.Placeholder("labels");

        graph::Output h = nn::Dense(b, &trainables_, init_rng, "fc1",
                                    images_, 784, 128,
                                    nn::Activation::kRelu);
        h = nn::Dense(b, &trainables_, init_rng, "fc2", h, 128, 64,
                      nn::Activation::kRelu);
        logits_ = nn::Dense(b, &trainables_, init_rng, "fc3", h, 64, 10);
        predictions_ = b.ArgMax(logits_);
        loss_ = b.SoftmaxCrossEntropy(logits_, labels_)[0];
        train_op_ = nn::Minimize(b, loss_, trainables_,
                                 nn::OptimizerConfig::Momentum(0.05f));
    }

    workloads::StepResult
    RunInference(int steps) override
    {
        return workloads::TimeSteps(steps, [this](int) {
            const auto batch = dataset_->NextBatch(batch_);
            runtime::FeedMap feeds;
            feeds[images_.node] = batch.images;
            session_->Run(feeds, {predictions_});
            return 0.0f;
        });
    }

    workloads::StepResult
    RunTraining(int steps) override
    {
        return workloads::TimeSteps(steps, [this](int) {
            const auto batch = dataset_->NextBatch(batch_);
            runtime::FeedMap feeds;
            feeds[images_.node] = batch.images;
            feeds[labels_.node] = batch.labels;
            return session_->Run(feeds, {loss_}, {train_op_})[0]
                .scalar_value();
        });
    }

  private:
    std::int64_t batch_ = 32;
    std::unique_ptr<data::SyntheticMnistDataset> dataset_;
    nn::Trainables trainables_;
    graph::Output images_, labels_, logits_, predictions_, loss_;
    graph::NodeId train_op_ = -1;
};

}  // namespace

int
main()
{
    workloads::RegisterAllWorkloads();
    // The one-line extension point.
    workloads::WorkloadRegistry::Global().Register(
        "mlp", [] { return std::make_unique<MlpWorkload>(); });

    std::printf("registered workloads:");
    for (const auto& name : workloads::WorkloadRegistry::Global().Names()) {
        std::printf(" %s", name.c_str());
    }
    std::printf("\n\n");

    // The new workload behaves exactly like the original eight.
    auto w = workloads::WorkloadRegistry::Global().Create("mlp");
    workloads::WorkloadConfig config;
    config.seed = 7;
    w->Setup(config);
    const auto result = w->RunTraining(20);
    std::printf("mlp: %d training steps, mean loss %.4f -> final loss "
                "%.4f (%lld parameters)\n",
                result.steps, result.mean_loss, result.final_loss,
                static_cast<long long>(w->num_parameters()));

    const auto profile =
        analysis::WallProfile(w->session().tracer(), /*skip_steps=*/2);
    std::printf("\nwhere the time goes (Fig. 3 methodology, applied to the "
                "new workload):\n");
    for (const auto& [type, fraction] : profile.SortedFractions()) {
        if (fraction < 0.02) {
            break;
        }
        std::printf("  %-22s %5.1f%%\n", type.c_str(), 100.0 * fraction);
    }
    return 0;
}
