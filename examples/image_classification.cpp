/**
 * @file
 * Image classification with a small convolutional network — the
 * workload family that motivated most of the architecture papers
 * surveyed in Table I.
 *
 * Builds a conv-pool-conv-pool-dense classifier on the synthetic
 * ImageNet substitute, trains it, and reports accuracy before/after
 * plus the op-class breakdown of one training step.
 *
 *   $ ./image_classification
 */
#include <cstdio>

#include "analysis/op_profile.h"
#include "data/synthetic_image.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "ops/register.h"
#include "runtime/session.h"

using namespace fathom;

namespace {

/** Fraction of rows of @p predictions matching @p labels. */
float
Accuracy(const Tensor& predictions, const Tensor& labels)
{
    int correct = 0;
    for (std::int64_t i = 0; i < labels.num_elements(); ++i) {
        correct += predictions.data<std::int32_t>()[i] ==
                   labels.data<std::int32_t>()[i];
    }
    return static_cast<float>(correct) /
           static_cast<float>(labels.num_elements());
}

}  // namespace

int
main()
{
    ops::RegisterStandardOps();

    constexpr std::int64_t kSize = 32;
    constexpr std::int64_t kClasses = 8;
    constexpr std::int64_t kBatch = 16;
    data::SyntheticImageDataset dataset(kSize, 3, kClasses, /*seed=*/11);

    runtime::Session session(/*seed=*/1);
    auto b = session.MakeBuilder();
    nn::Trainables params;
    Rng init_rng(5);

    const graph::Output images = b.Placeholder("images");
    const graph::Output labels = b.Placeholder("labels");

    graph::Output x = nn::Conv2DLayer(b, &params, init_rng, "conv1", images,
                                      3, 3, 8, 1, "SAME");
    x = b.MaxPool(x, 2, 2, "SAME");  // 32 -> 16
    x = nn::Conv2DLayer(b, &params, init_rng, "conv2", x, 3, 8, 16, 1,
                        "SAME");
    x = b.MaxPool(x, 2, 2, "SAME");  // 16 -> 8
    x = b.Reshape(x, {-1, 8 * 8 * 16});
    const graph::Output logits =
        nn::Dense(b, &params, init_rng, "classifier", x, 8 * 8 * 16,
                  kClasses);
    const graph::Output predictions = b.ArgMax(logits);
    const graph::Output loss = b.SoftmaxCrossEntropy(logits, labels)[0];
    const graph::NodeId train_op =
        nn::Minimize(b, loss, params, nn::OptimizerConfig::Momentum(0.02f));

    auto evaluate = [&](int batches) {
        float total = 0.0f;
        for (int i = 0; i < batches; ++i) {
            const auto batch = dataset.NextBatch(kBatch);
            runtime::FeedMap feeds;
            feeds[images.node] = batch.images;
            const auto out = session.Run(feeds, {predictions});
            total += Accuracy(out[0], batch.labels);
        }
        return total / static_cast<float>(batches);
    };

    std::printf("accuracy before training: %.1f%% (chance = %.1f%%)\n",
                100.0f * evaluate(4), 100.0f / kClasses);

    for (int step = 0; step < 150; ++step) {
        const auto batch = dataset.NextBatch(kBatch);
        runtime::FeedMap feeds;
        feeds[images.node] = batch.images;
        feeds[labels.node] = batch.labels;
        const auto out = session.Run(feeds, {loss}, {train_op});
        if (step % 30 == 0) {
            std::printf("step %3d  loss %.4f\n", step,
                        out[0].scalar_value());
        }
    }

    std::printf("accuracy after training:  %.1f%%\n", 100.0f * evaluate(4));

    // Where did the training time go? (the Fig. 3 methodology)
    const auto profile = analysis::WallProfile(session.tracer(),
                                               /*skip_steps=*/5);
    std::printf("\ntime by op class over the whole run:\n");
    for (graph::OpClass c : graph::AllOpClasses()) {
        const double f = profile.ClassFraction(c);
        if (f >= 0.005) {
            std::printf("  %-22s %5.1f%%\n", graph::OpClassName(c).c_str(),
                        100.0 * f);
        }
    }
    return 0;
}
