/**
 * @file
 * Command-line workload profiler — the "standard interface" in action:
 * any of the eight Fathom models can be trained, inferred, and
 * profiled with identical invocations.
 *
 *   $ ./workload_profiler                      # list workloads
 *   $ ./workload_profiler alexnet              # train + profile
 *   $ ./workload_profiler seq2seq --mode infer --steps 8
 *   $ ./workload_profiler memnet --threads 4   # simulated scaling too
 *   $ ./workload_profiler vgg --dot vgg.dot --trace vgg.json
 *     # graph for Graphviz, timeline for chrome://tracing / Perfetto
 */
#include <cstdio>
#include <cstring>
#include <string>

#include "analysis/export.h"
#include "analysis/op_profile.h"
#include "analysis/scaling.h"
#include "analysis/stationarity.h"
#include "core/suite.h"
#include "core/table.h"

using namespace fathom;

namespace {

void
Usage()
{
    std::printf("usage: workload_profiler <name> [--mode train|infer] "
                "[--steps N] [--threads T] [--inter-op-threads T]\n\n"
                "workloads:\n");
    for (const auto& name : core::SuiteNames()) {
        auto w = workloads::WorkloadRegistry::Global().Create(name);
        std::printf("  %-9s %s\n", name.c_str(), w->description().c_str());
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    workloads::RegisterAllWorkloads();
    if (argc < 2) {
        Usage();
        return 0;
    }
    const std::string name = argv[1];
    std::string mode = "train";
    std::string dot_path;
    std::string trace_path;
    int steps = 6;
    int threads = 1;
    int inter_op_threads = 1;
    for (int i = 2; i + 1 < argc; i += 2) {
        if (std::strcmp(argv[i], "--mode") == 0) {
            mode = argv[i + 1];
        } else if (std::strcmp(argv[i], "--steps") == 0) {
            steps = std::atoi(argv[i + 1]);
        } else if (std::strcmp(argv[i], "--threads") == 0) {
            threads = std::atoi(argv[i + 1]);
        } else if (std::strcmp(argv[i], "--inter-op-threads") == 0) {
            inter_op_threads = std::atoi(argv[i + 1]);
        } else if (std::strcmp(argv[i], "--dot") == 0) {
            dot_path = argv[i + 1];
        } else if (std::strcmp(argv[i], "--trace") == 0) {
            trace_path = argv[i + 1];
        } else {
            std::printf("unknown flag %s\n", argv[i]);
            return 1;
        }
    }

    std::unique_ptr<workloads::Workload> workload;
    try {
        workload = workloads::WorkloadRegistry::Global().Create(name);
    } catch (const std::out_of_range&) {
        std::printf("unknown workload '%s'\n\n", name.c_str());
        Usage();
        return 1;
    }

    workloads::WorkloadConfig config;
    config.seed = 1;
    config.threads = threads;
    config.inter_op_threads = inter_op_threads;
    workload->Setup(config);
    std::printf("%s: %s\n", workload->name().c_str(),
                workload->description().c_str());
    std::printf("style=%s layers=%d task=%s dataset=%s parameters=%lld "
                "graph-nodes=%d\n\n",
                workload->neuronal_style().c_str(), workload->num_layers(),
                workload->learning_task().c_str(),
                workload->dataset().c_str(),
                static_cast<long long>(workload->num_parameters()),
                workload->session().graph().num_nodes());

    const auto result = mode == "infer" ? workload->RunInference(steps)
                                        : workload->RunTraining(steps);
    std::printf("%s: %d steps in %.3f s (%.1f ms/step)",
                mode.c_str(), result.steps, result.wall_seconds,
                1e3 * result.wall_seconds / result.steps);
    if (mode == "train") {
        std::printf(", final loss %.4f", result.final_loss);
    }
    std::printf("\n\n");

    const auto profile = analysis::WallProfile(workload->session().tracer(),
                                               /*skip_steps=*/1);
    core::ConsoleTable table;
    table.SetHeader({"op type", "class", "share"});
    int shown = 0;
    for (const auto& [type, fraction] : profile.SortedFractions()) {
        if (fraction < 0.01 || shown++ >= 12) {
            break;
        }
        const auto& classes = profile.type_classes();
        const auto it = classes.find(type);
        const std::string class_name =
            it == classes.end() ? "" : graph::OpClassName(it->second);
        table.AddRow({type, class_name, core::FormatPercent(fraction)});
    }
    std::printf("%s", table.Render().c_str());

    const double overhead = analysis::FrameworkOverheadFraction(
        workload->session().tracer(), 1);
    std::printf("\nframework overhead outside kernels: %s\n",
                core::FormatPercent(overhead, 2).c_str());

    if (!workload->session().tracer().steps().empty()) {
        const auto& mem = workload->session().tracer().steps().back().memory;
        std::printf("memory (last step): peak %.2f MB, %llu allocations "
                    "(%llu fresh, %llu pool hits)\n",
                    static_cast<double>(mem.peak_bytes) / (1024.0 * 1024.0),
                    static_cast<unsigned long long>(mem.allocations),
                    static_cast<unsigned long long>(mem.fresh_allocs),
                    static_cast<unsigned long long>(mem.pool_hits));
    }

    // Simulated scaling summary (the Fig. 6 methodology on this trace).
    const auto sweep = analysis::SweepThreads(workload->session().tracer(),
                                              1, {1, 2, 4, 8});
    std::printf("simulated scaling: %.2fx at 8 threads (device model)\n",
                sweep.TotalAt(0) / sweep.TotalAt(3));

    if (!dot_path.empty()) {
        analysis::WriteFile(
            dot_path, analysis::GraphToDot(workload->session().graph()));
        std::printf("wrote dataflow graph to %s (render with `dot -Tsvg`)\n",
                    dot_path.c_str());
    }
    if (!trace_path.empty()) {
        analysis::WriteFile(
            trace_path,
            analysis::TraceToChromeJson(workload->session().tracer()));
        std::printf("wrote execution timeline to %s (open in "
                    "chrome://tracing or ui.perfetto.dev)\n",
                    trace_path.c_str());
    }
    return 0;
}
