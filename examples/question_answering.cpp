/**
 * @file
 * Question answering with a memory network on synthetic bAbI stories —
 * the "exotic" Fathom workload family (indirectly addressable memory
 * instead of a feed-forward lattice).
 *
 * Builds a 2-hop end-to-end memory network with the public API, trains
 * it on one-supporting-fact stories, prints a story in readable form,
 * and shows the model's answer.
 *
 *   $ ./question_answering
 */
#include <cstdio>

#include "data/synthetic_babi.h"
#include "nn/init.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "ops/register.h"
#include "runtime/session.h"

using namespace fathom;

int
main()
{
    ops::RegisterStandardOps();

    constexpr std::int64_t kSentences = 12;
    constexpr std::int64_t kSentenceLen = 4;
    constexpr std::int64_t kEmbed = 24;
    constexpr std::int64_t kBatch = 16;
    constexpr int kHops = 2;

    data::SyntheticBabiDataset dataset(kSentences, kSentenceLen,
                                       /*two_hop=*/false, /*seed=*/21);
    const std::int64_t vocab = dataset.vocab();

    runtime::Session session(/*seed=*/2);
    auto b = session.MakeBuilder();
    nn::Trainables params;
    Rng init_rng(9);

    const graph::Output stories = b.Placeholder("stories");
    const graph::Output questions = b.Placeholder("questions");
    const graph::Output answers = b.Placeholder("answers");

    // Embedding tables with adjacent weight sharing.
    std::vector<graph::Output> tables;
    for (int k = 0; k <= kHops; ++k) {
        tables.push_back(params.NewVariable(
            b, "table_" + std::to_string(k),
            nn::GlorotUniform(init_rng, Shape{vocab, kEmbed}, vocab,
                              kEmbed)));
    }

    // Bag-of-words question embedding u.
    graph::Output u =
        b.ReduceSum(b.Gather(tables[0], questions), {1}, false);
    for (int hop = 0; hop < kHops; ++hop) {
        const graph::Output m = b.ReduceSum(
            b.Gather(tables[static_cast<std::size_t>(hop)], stories), {2},
            false);
        const graph::Output c = b.ReduceSum(
            b.Gather(tables[static_cast<std::size_t>(hop + 1)], stories),
            {2}, false);
        const graph::Output u3 = b.Tile(b.Reshape(u, {kBatch, 1, kEmbed}),
                                        {1, kSentences, 1});
        const graph::Output p =
            b.Softmax(b.ReduceSum(b.Mul(u3, m), {2}, false));
        const graph::Output o = b.ReduceSum(
            b.Mul(b.Reshape(p, {kBatch, kSentences, 1}), c), {1}, false);
        u = b.Add(u, o);
    }
    const graph::Output logits =
        b.MatMul(u, tables.back(), false, /*transpose_b=*/true);
    const graph::Output prediction = b.ArgMax(logits);
    const graph::Output loss = b.SoftmaxCrossEntropy(logits, answers)[0];
    const graph::NodeId train_op =
        nn::Minimize(b, loss, params, nn::OptimizerConfig::Adam(0.005f));

    const std::int32_t location_base = static_cast<std::int32_t>(
        vocab - data::SyntheticBabiDataset::kNumLocations);

    auto feeds_for = [&](const data::BabiBatch& batch) {
        runtime::FeedMap feeds;
        feeds[stories.node] = batch.stories;
        feeds[questions.node] = batch.questions;
        Tensor label_tokens(DType::kInt32, Shape{kBatch});
        for (std::int64_t i = 0; i < kBatch; ++i) {
            label_tokens.data<std::int32_t>()[i] =
                location_base + batch.answers.data<std::int32_t>()[i];
        }
        feeds[answers.node] = label_tokens;
        return feeds;
    };

    auto accuracy = [&](int batches) {
        int correct = 0;
        int total = 0;
        for (int i = 0; i < batches; ++i) {
            const auto batch = dataset.NextBatch(kBatch);
            auto feeds = feeds_for(batch);
            const auto out = session.Run(feeds, {prediction});
            for (std::int64_t j = 0; j < kBatch; ++j) {
                correct += out[0].data<std::int32_t>()[j] ==
                           location_base +
                               batch.answers.data<std::int32_t>()[j];
                ++total;
            }
        }
        return static_cast<float>(correct) / static_cast<float>(total);
    };

    std::printf("answer accuracy before training: %.1f%% (chance %.1f%%)\n",
                100.0f * accuracy(4),
                100.0f / data::SyntheticBabiDataset::kNumLocations);

    for (int step = 0; step < 400; ++step) {
        const auto batch = dataset.NextBatch(kBatch);
        auto feeds = feeds_for(batch);
        const auto out = session.Run(feeds, {loss}, {train_op});
        if (step % 100 == 0) {
            std::printf("step %3d  loss %.4f\n", step,
                        out[0].scalar_value());
        }
    }
    std::printf("answer accuracy after training:  %.1f%%\n\n",
                100.0f * accuracy(4));

    // Show one story and the model's answer in readable form.
    const auto sample_batch = dataset.NextBatch(kBatch);
    auto feeds = feeds_for(sample_batch);
    const auto out = session.Run(feeds, {prediction});
    std::printf("story:\n");
    const std::int32_t* story =
        sample_batch.stories.data<std::int32_t>();  // row 0
    for (std::int64_t s = 0; s < kSentences; ++s) {
        std::printf("  ");
        for (std::int64_t w = 0; w < kSentenceLen; ++w) {
            const std::int32_t token = story[s * kSentenceLen + w];
            if (token != 0) {
                std::printf("%s ", dataset.TokenName(token).c_str());
            }
        }
        std::printf("\n");
    }
    const std::int32_t* q = sample_batch.questions.data<std::int32_t>();
    std::printf("question: %s %s?\n", dataset.TokenName(q[0]).c_str(),
                dataset.TokenName(q[1]).c_str());
    std::printf("model answer:   %s\n",
                dataset.TokenName(out[0].data<std::int32_t>()[0]).c_str());
    std::printf("correct answer: %s\n",
                dataset
                    .TokenName(location_base +
                               sample_batch.answers.data<std::int32_t>()[0])
                    .c_str());
    return 0;
}
