/**
 * @file
 * Quickstart: the Fathom-CC public API in one file.
 *
 * Builds a two-layer perceptron with the graph API, differentiates it
 * automatically, trains it with SGD to fit a nonlinear function, and
 * inspects the per-op execution trace — the same machinery the eight
 * Fathom workloads are built from.
 *
 *   $ ./quickstart
 */
#include <cmath>
#include <cstdio>

#include "autodiff/gradients.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "ops/register.h"
#include "runtime/session.h"

using namespace fathom;

int
main()
{
    // 1. Register the standard operation set (explicit, idempotent).
    ops::RegisterStandardOps();

    // 2. A session owns the graph, the variables, and the trace.
    runtime::Session session(/*seed=*/42);
    auto b = session.MakeBuilder();

    // 3. Build a model: y = W2 * tanh(W1 x + b1) + b2.
    nn::Trainables params;
    Rng init_rng(7);
    const graph::Output x = b.Placeholder("x");        // [batch, 1]
    const graph::Output target = b.Placeholder("target");
    graph::Output h =
        nn::Dense(b, &params, init_rng, "hidden", x, 1, 32,
                  nn::Activation::kTanh);
    graph::Output y = nn::Dense(b, &params, init_rng, "output", h, 32, 1);

    // 4. A scalar loss and a train op via reverse-mode autodiff.
    const graph::Output loss =
        b.ReduceMean(b.Square(b.Sub(y, target)), {}, false);
    const graph::NodeId train_op =
        nn::Minimize(b, loss, params, nn::OptimizerConfig::Adam(0.01f));

    // 5. Training data: y = sin(3x) on [-1, 1].
    const std::int64_t batch = 64;
    Rng data_rng(3);
    auto make_batch = [&](Tensor* xs, Tensor* ys) {
        *xs = Tensor(DType::kFloat32, Shape{batch, 1});
        *ys = Tensor(DType::kFloat32, Shape{batch, 1});
        for (std::int64_t i = 0; i < batch; ++i) {
            const float v = data_rng.UniformFloat(-1.0f, 1.0f);
            xs->data<float>()[i] = v;
            ys->data<float>()[i] = std::sin(3.0f * v);
        }
    };

    // 6. The training loop: feed placeholders, fetch the loss, run the
    //    update op as a target.
    std::printf("step   loss\n");
    for (int step = 0; step <= 500; ++step) {
        Tensor xs;
        Tensor ys;
        make_batch(&xs, &ys);
        runtime::FeedMap feeds;
        feeds[x.node] = xs;
        feeds[target.node] = ys;
        const auto out = session.Run(feeds, {loss}, {train_op});
        if (step % 100 == 0) {
            std::printf("%4d   %.5f\n", step, out[0].scalar_value());
        }
    }

    // 7. Inspect the execution trace: where did the time go?
    const auto& last_step = session.tracer().steps().back();
    std::printf("\nlast step ran %zu ops in %.3f ms (%.1f%% inside kernels)\n",
                last_step.records.size(), last_step.wall_seconds * 1e3,
                100.0 * last_step.OpSeconds() / last_step.wall_seconds);

    // 8. Predictions after training.
    Tensor probe(DType::kFloat32, Shape{5, 1});
    const float points[5] = {-1.0f, -0.5f, 0.0f, 0.5f, 1.0f};
    for (int i = 0; i < 5; ++i) {
        probe.data<float>()[i] = points[i];
    }
    runtime::FeedMap feeds;
    feeds[x.node] = probe;
    const Tensor fit = session.Run(feeds, {y})[0];
    std::printf("\n   x     sin(3x)   model\n");
    for (int i = 0; i < 5; ++i) {
        std::printf("%+.2f   %+.4f   %+.4f\n", points[i],
                    std::sin(3.0f * points[i]), fit.data<float>()[i]);
    }
    return 0;
}
