/**
 * @file
 * End-to-end speech transcription with CTC — the capability that made
 * Deep Speech notable: learning from *unsegmented* transcriptions,
 * with no per-frame alignment and no hand-tuned acoustic model.
 *
 * Trains a small per-frame network with CTC loss on the synthetic
 * TIMIT generator and reports the phoneme error rate (Levenshtein
 * distance of the greedy decode) before and after training.
 *
 *   $ ./speech_transcription
 */
#include <algorithm>
#include <cstdio>
#include <vector>

#include "data/synthetic_timit.h"
#include "kernels/ctc.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "ops/register.h"
#include "runtime/session.h"

using namespace fathom;

namespace {

/** Levenshtein edit distance between two label sequences. */
int
EditDistance(const std::vector<std::int32_t>& a,
             const std::vector<std::int32_t>& b)
{
    std::vector<int> prev(b.size() + 1);
    std::vector<int> cur(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j) {
        prev[j] = static_cast<int>(j);
    }
    for (std::size_t i = 1; i <= a.size(); ++i) {
        cur[0] = static_cast<int>(i);
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const int sub = prev[j - 1] + (a[i - 1] != b[j - 1]);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
        }
        std::swap(prev, cur);
    }
    return prev[b.size()];
}

}  // namespace

int
main()
{
    ops::RegisterStandardOps();

    constexpr std::int64_t kTime = 24;
    constexpr std::int64_t kFreq = 24;
    constexpr std::int64_t kPhonemes = 8;
    constexpr std::int64_t kClasses = kPhonemes + 1;  // + blank (id 0).
    constexpr std::int64_t kHidden = 96;

    data::SyntheticTimitDataset dataset(kFreq, kPhonemes, kTime, /*seed=*/31);

    runtime::Session session(/*seed=*/4);
    session.tracer().set_enabled(false);
    auto b = session.MakeBuilder();
    nn::Trainables params;
    Rng init_rng(15);

    const graph::Output frames = b.Placeholder("frames");  // [T, F]
    const graph::Output labels = b.Placeholder("labels");  // int32 [L]

    graph::Output x = nn::Dense(b, &params, init_rng, "fc1", frames, kFreq,
                                kHidden, nn::Activation::kRelu);
    x = nn::Dense(b, &params, init_rng, "fc2", x, kHidden, kHidden,
                  nn::Activation::kRelu);
    const graph::Output logits =
        nn::Dense(b, &params, init_rng, "out", x, kHidden, kClasses);
    const auto ctc = b.CtcLoss(logits, labels, /*blank=*/0);
    const graph::NodeId train_op =
        nn::Minimize(b, ctc[0], params, nn::OptimizerConfig::Adam(2e-3f));

    auto evaluate = [&](int utterances) {
        int edits = 0;
        int total = 0;
        for (int i = 0; i < utterances; ++i) {
            const auto utt = dataset.Next();
            runtime::FeedMap feeds;
            feeds[frames.node] = utt.frames;
            const Tensor out = session.Run(feeds, {logits})[0];
            const auto decoded = kernels::CtcGreedyDecode(out, 0);
            edits += EditDistance(decoded, utt.labels);
            total += static_cast<int>(utt.labels.size());
        }
        return 100.0f * static_cast<float>(edits) /
               static_cast<float>(total);
    };

    std::printf("phoneme error rate before training: %.1f%%\n",
                evaluate(20));

    for (int step = 0; step < 600; ++step) {
        const auto utt = dataset.Next();
        Tensor label_tensor(DType::kInt32,
                            Shape{static_cast<std::int64_t>(
                                utt.labels.size())});
        std::copy(utt.labels.begin(), utt.labels.end(),
                  label_tensor.data<std::int32_t>());
        runtime::FeedMap feeds;
        feeds[frames.node] = utt.frames;
        feeds[labels.node] = label_tensor;
        const auto out = session.Run(feeds, {ctc[0]}, {train_op});
        if (step % 150 == 0) {
            std::printf("step %3d  ctc loss %.3f\n", step,
                        out[0].scalar_value());
        }
    }

    std::printf("phoneme error rate after training:  %.1f%%\n\n",
                evaluate(20));

    // Show one transcription with both decoders: greedy best-path and
    // the prefix beam search of the Deep Speech paper.
    const auto utt = dataset.Next();
    runtime::FeedMap feeds;
    feeds[frames.node] = utt.frames;
    const Tensor out = session.Run(feeds, {logits})[0];
    const auto greedy = kernels::CtcGreedyDecode(out, 0);
    parallel::ThreadPool decode_pool(1);
    const auto beam =
        kernels::CtcBeamSearchDecode(out, 0, /*beam_width=*/8, decode_pool);
    std::printf("reference:    ");
    for (std::int32_t l : utt.labels) {
        std::printf("%d ", l);
    }
    std::printf("\ngreedy:       ");
    for (std::int32_t l : greedy) {
        std::printf("%d ", l);
    }
    std::printf("\nbeam (w=8):   ");
    for (std::int32_t l : beam) {
        std::printf("%d ", l);
    }
    std::printf("\n");
    return 0;
}
