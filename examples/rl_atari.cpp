/**
 * @file
 * Deep reinforcement learning on the MiniAtari environment — a compact
 * DQN built entirely from the public API (the deepq workload is the
 * full-size version of this example).
 *
 * Demonstrates the pieces the 2013 DeepMind agent introduced:
 * pixel-frame state, epsilon-greedy exploration, experience replay,
 * and Q-learning regression targets. Prints the mean episode reward of
 * the greedy policy before and after training — it should climb from
 * roughly chance (about -1, the ball is usually missed) toward +1.
 *
 *   $ ./rl_atari
 */
#include <algorithm>
#include <cstdio>
#include <deque>

#include "data/mini_atari.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "ops/register.h"
#include "runtime/session.h"

using namespace fathom;

namespace {

constexpr std::int64_t kGrid = 12;
constexpr std::int64_t kScale = 1;
constexpr std::int64_t kSize = kGrid * kScale;
constexpr float kGamma = 0.9f;
constexpr std::int64_t kBatch = 32;

struct Transition {
    Tensor state;
    std::int32_t action;
    float reward;
    Tensor next_state;
    bool done;
};

}  // namespace

int
main()
{
    ops::RegisterStandardOps();

    data::MiniAtari env(kGrid, kScale, /*seed=*/17);
    Rng policy_rng(23);

    runtime::Session session(/*seed=*/3);
    // Long acting/update loops would accumulate an enormous trace;
    // profiling of deepq is done by the bench binaries instead.
    session.tracer().set_enabled(false);
    auto b = session.MakeBuilder();
    nn::Trainables params;
    Rng init_rng(13);

    const graph::Output states = b.Placeholder("states");  // [n, s, s, 1]
    const graph::Output actions = b.Placeholder("actions");
    const graph::Output targets = b.Placeholder("targets");

    graph::Output x = nn::Conv2DLayer(b, &params, init_rng, "conv1", states,
                                      3, 2, 8, 2, "SAME");  // 12 -> 6
    x = b.Reshape(x, {-1, 6 * 6 * 8});
    x = nn::Dense(b, &params, init_rng, "fc", x, 6 * 6 * 8, 64,
                  nn::Activation::kRelu);
    const graph::Output q =
        nn::Dense(b, &params, init_rng, "q", x, 64,
                  data::MiniAtari::kNumActions);
    const graph::Output greedy = b.ArgMax(q);

    const graph::Output mask = b.OneHot(actions, data::MiniAtari::kNumActions);
    const graph::Output q_taken = b.ReduceSum(b.Mul(q, mask), {1}, false);
    const graph::Output loss =
        b.ReduceMean(b.Square(b.Sub(q_taken, targets)), {}, false);
    const graph::NodeId train_op = nn::Minimize(
        b, loss, params, nn::OptimizerConfig::Adam(1e-3f));

    // Two stacked frames (previous + current) make the state Markov:
    // the ball's drift direction is only visible across frames.
    Tensor frame = env.Reset();
    Tensor prev_frame = frame;
    auto state_of = [&]() {
        Tensor state(DType::kFloat32, Shape{1, kSize, kSize, 2});
        float* p = state.data<float>();
        const float* a = prev_frame.data<float>();
        const float* b2 = frame.data<float>();
        for (std::int64_t i = 0; i < kSize * kSize; ++i) {
            p[i * 2 + 0] = a[i];
            p[i * 2 + 1] = b2[i];
        }
        return state;
    };

    auto greedy_action = [&](const Tensor& state) {
        runtime::FeedMap feeds;
        feeds[states.node] = state;
        return session.Run(feeds, {greedy})[0].data<std::int32_t>()[0];
    };

    auto evaluate = [&](int episodes) {
        float total = 0.0f;
        int done = 0;
        frame = env.Reset();
        prev_frame = frame;
        while (done < episodes) {
            const auto result = env.Step(static_cast<data::MiniAtari::Action>(
                greedy_action(state_of())));
            if (result.episode_done) {
                total += result.reward;
                // The env auto-reset; observe the fresh episode.
                frame = env.CurrentFrame();
                prev_frame = frame;
                ++done;
            } else {
                prev_frame = frame;
                frame = result.frame;
            }
        }
        return total / static_cast<float>(episodes);
    };

    std::printf("mean reward (greedy) before training: %+.2f\n",
                evaluate(30));

    std::deque<Transition> replay;
    frame = env.Reset();
    prev_frame = frame;
    int updates = 0;
    for (int step = 0; step < 8000; ++step) {
        // Epsilon-greedy acting.
        const float epsilon =
            std::max(0.1f, 1.0f - static_cast<float>(updates) / 4800.0f);
        const Tensor state = state_of();
        const std::int32_t action =
            policy_rng.Uniform() < epsilon
                ? static_cast<std::int32_t>(policy_rng.UniformInt(
                      data::MiniAtari::kNumActions))
                : greedy_action(state);
        const auto result =
            env.Step(static_cast<data::MiniAtari::Action>(action));
        if (result.episode_done) {
            // The env auto-reset; restart the frame stack on the new
            // episode's first frame.
            frame = env.CurrentFrame();
            prev_frame = frame;
        } else {
            prev_frame = frame;
            frame = result.frame;
        }

        replay.push_back({state, action, result.reward, state_of(),
                          result.episode_done});
        if (replay.size() > 4000) {
            replay.pop_front();
        }
        if (static_cast<std::int64_t>(replay.size()) < kBatch * 2) {
            continue;
        }

        // Sample a minibatch and build Q-learning targets.
        Tensor batch_states =
            Tensor::Zeros(Shape{kBatch, kSize, kSize, 2});
        Tensor batch_next = Tensor::Zeros(Shape{kBatch, kSize, kSize, 2});
        Tensor batch_actions = Tensor::Zeros(Shape{kBatch}, DType::kInt32);
        std::vector<float> rewards(kBatch);
        std::vector<bool> terminal(kBatch);
        const std::int64_t elems = kSize * kSize * 2;
        for (std::int64_t i = 0; i < kBatch; ++i) {
            const auto& t = replay[static_cast<std::size_t>(
                policy_rng.UniformInt(
                    static_cast<std::int64_t>(replay.size())))];
            std::copy(t.state.data<float>(), t.state.data<float>() + elems,
                      batch_states.data<float>() + i * elems);
            std::copy(t.next_state.data<float>(),
                      t.next_state.data<float>() + elems,
                      batch_next.data<float>() + i * elems);
            batch_actions.data<std::int32_t>()[i] = t.action;
            rewards[static_cast<std::size_t>(i)] = t.reward;
            terminal[static_cast<std::size_t>(i)] = t.done;
        }
        runtime::FeedMap next_feeds;
        next_feeds[states.node] = batch_next;
        const Tensor q_next = session.Run(next_feeds, {q})[0];
        Tensor batch_targets = Tensor::Zeros(Shape{kBatch});
        for (std::int64_t i = 0; i < kBatch; ++i) {
            float best =
                q_next.data<float>()[i * data::MiniAtari::kNumActions];
            for (int a = 1; a < data::MiniAtari::kNumActions; ++a) {
                best = std::max(best,
                                q_next.data<float>()
                                    [i * data::MiniAtari::kNumActions + a]);
            }
            batch_targets.data<float>()[i] =
                rewards[static_cast<std::size_t>(i)] +
                (terminal[static_cast<std::size_t>(i)] ? 0.0f
                                                       : kGamma * best);
        }

        runtime::FeedMap feeds;
        feeds[states.node] = batch_states;
        feeds[actions.node] = batch_actions;
        feeds[targets.node] = batch_targets;
        const auto out = session.Run(feeds, {loss}, {train_op});
        ++updates;
        if (updates % 2000 == 0) {
            std::printf("update %4d  epsilon %.2f  td-loss %.4f  episodes "
                        "%lld\n",
                        updates, epsilon, out[0].scalar_value(),
                        static_cast<long long>(env.episodes()));
        }
    }

    std::printf("mean reward (greedy) after training:  %+.2f\n",
                evaluate(30));
    return 0;
}
