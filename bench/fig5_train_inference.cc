/**
 * @file
 * Reproduces Figure 5: training and inference performance on CPU and
 * GPU, normalized per-workload to CPU training time.
 *
 * The host machine has one CPU core and no GPU, so the CPU-vs-GPU
 * comparison replays the recorded per-op costs through the analytical
 * device model (see DESIGN.md, "Substitutions"). Wall-clock CPU times
 * are also printed for reference.
 *
 * Expected shapes from the paper:
 *  - training is slower than inference everywhere, by a variable
 *    factor; conv nets pay extra in training because the convolution
 *    backward pass has two reduction sweeps vs. one in forward;
 *  - GPU beats CPU across the board, with the largest gains on
 *    workloads with skewed, large-op profiles;
 *  - a large CPU train/infer gap implies a similar GPU gap.
 */
#include <cmath>
#include <iostream>

#include "analysis/op_profile.h"
#include "analysis/scaling.h"
#include "core/suite.h"
#include "core/table.h"

int
main()
{
    using namespace fathom;
    using core::ConsoleTable;
    using core::FormatDouble;

    std::cout << "=== Figure 5: training vs. inference, CPU vs. GPU ===\n"
              << "clock: simulated device model (host has 1 core); "
                 "normalized to CPU training = 1.0\n\n";

    core::SuiteRunOptions options;
    options.warmup_steps = 1;
    options.train_steps = 4;
    options.infer_steps = 4;

    const auto cpu = runtime::DeviceSpec::Cpu(1);
    const auto gpu = runtime::DeviceSpec::Gpu();

    ConsoleTable table;
    table.SetHeader({"workload", "train cpu", "infer cpu", "train gpu",
                     "infer gpu", "cpu train/infer", "gpu speedup (train)",
                     "wall train s", "wall infer s"});

    double correlation_num = 0.0;
    std::vector<double> cpu_ratios;
    std::vector<double> gpu_ratios;

    for (const auto& name : core::SuiteNames()) {
        const auto traces = core::RunAndTrace(name, options);
        const int skip = traces.warmup_steps;

        const double train_cpu =
            analysis::SimulatedTotalSeconds(traces.training, skip, cpu);
        const double infer_cpu =
            analysis::SimulatedTotalSeconds(traces.inference, skip, cpu);
        const double train_gpu =
            analysis::SimulatedTotalSeconds(traces.training, skip, gpu);
        const double infer_gpu =
            analysis::SimulatedTotalSeconds(traces.inference, skip, gpu);

        const auto wall_train =
            analysis::WallProfile(traces.training, skip).total_seconds();
        const auto wall_infer =
            analysis::WallProfile(traces.inference, skip).total_seconds();

        table.AddRow({name, "1.000", FormatDouble(infer_cpu / train_cpu),
                      FormatDouble(train_gpu / train_cpu),
                      FormatDouble(infer_gpu / train_cpu),
                      FormatDouble(train_cpu / infer_cpu, 2),
                      FormatDouble(train_cpu / train_gpu, 1) + "x",
                      FormatDouble(wall_train), FormatDouble(wall_infer)});

        cpu_ratios.push_back(train_cpu / infer_cpu);
        gpu_ratios.push_back(train_gpu / infer_gpu);
    }
    std::cout << table.Render() << "\n";

    // The paper's correlation claim: CPU train/infer gaps track GPU
    // gaps. Report the Pearson correlation across workloads.
    double mean_c = 0.0;
    double mean_g = 0.0;
    for (std::size_t i = 0; i < cpu_ratios.size(); ++i) {
        mean_c += cpu_ratios[i];
        mean_g += gpu_ratios[i];
    }
    mean_c /= static_cast<double>(cpu_ratios.size());
    mean_g /= static_cast<double>(gpu_ratios.size());
    double num = 0.0;
    double dc = 0.0;
    double dg = 0.0;
    for (std::size_t i = 0; i < cpu_ratios.size(); ++i) {
        num += (cpu_ratios[i] - mean_c) * (gpu_ratios[i] - mean_g);
        dc += (cpu_ratios[i] - mean_c) * (cpu_ratios[i] - mean_c);
        dg += (gpu_ratios[i] - mean_g) * (gpu_ratios[i] - mean_g);
    }
    correlation_num = num / (std::sqrt(dc) * std::sqrt(dg) + 1e-12);
    std::cout << "correlation of train/infer ratio, CPU vs GPU, across "
                 "workloads: "
              << FormatDouble(correlation_num, 3)
              << "  (paper: strongly correlated)\n";
    return 0;
}
