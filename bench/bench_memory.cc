/**
 * @file
 * Memory-planner sweep: peak bytes and allocation counts across all
 * eight workloads, with the liveness-driven planner on vs off.
 *
 * The paper attributes characterization to per-op cost; this bench
 * measures the framework side the TensorFlow system paper treats as
 * first-class — allocator behavior. With the planner off, every
 * node's outputs stay live for the whole step and every tensor pays a
 * fresh allocation; with it on, intermediates die at their last
 * consumer and freed blocks recycle through the size-bucketed buffer
 * pool, so peak bytes track the liveness frontier instead of graph
 * size. Losses are printed for both modes as a determinism check:
 * they must match exactly.
 *
 *   $ ./bench_memory [--steps N] [--memory-planner on|off|both]
 */
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/table.h"
#include "tensor/buffer_pool.h"
#include "workloads/workload.h"

using namespace fathom;

namespace {

struct Measurement {
    std::uint64_t peak_bytes = 0;    ///< max over training steps.
    std::uint64_t allocations = 0;   ///< summed over training steps.
    std::uint64_t fresh_allocs = 0;
    std::uint64_t pool_hits = 0;
    float final_loss = 0.0f;
};

Measurement
Measure(const std::string& name, int steps, bool planner)
{
    // Recycling follows the planner knob so "off" reproduces the
    // pre-planner allocator behavior (malloc per tensor, nothing
    // parked); Trim gives each run a cold pool for comparable counts.
    BufferPool& pool = BufferPool::Global();
    pool.set_recycling(planner);
    pool.Trim();

    auto workload = workloads::WorkloadRegistry::Global().Create(name);
    workloads::WorkloadConfig config;
    config.seed = 5;
    config.memory_planner = planner;
    workload->Setup(config);

    Measurement m;
    m.final_loss = workload->RunTraining(steps).final_loss;
    for (const auto& step : workload->session().tracer().steps()) {
        m.peak_bytes = std::max(m.peak_bytes, step.memory.peak_bytes);
        m.allocations += step.memory.allocations;
        m.fresh_allocs += step.memory.fresh_allocs;
        m.pool_hits += step.memory.pool_hits;
    }
    return m;
}

std::string
Mb(std::uint64_t bytes)
{
    return core::FormatDouble(static_cast<double>(bytes) / (1024.0 * 1024.0),
                              2);
}

}  // namespace

int
main(int argc, char** argv)
{
    workloads::RegisterAllWorkloads();

    int steps = 3;
    std::string mode = "both";
    for (int i = 1; i + 1 < argc; i += 2) {
        if (std::strcmp(argv[i], "--steps") == 0) {
            steps = std::atoi(argv[i + 1]);
        } else if (std::strcmp(argv[i], "--memory-planner") == 0) {
            mode = argv[i + 1];
        } else {
            std::cout << "usage: bench_memory [--steps N] "
                         "[--memory-planner on|off|both]\n";
            return 1;
        }
    }
    if (mode != "on" && mode != "off" && mode != "both") {
        std::cout << "--memory-planner must be on, off, or both\n";
        return 1;
    }

    std::cout << "=== Memory planner sweep: peak bytes / allocations per "
              << steps << " training steps ===\n"
              << "peak = live-byte high-water mark during a step; fresh = "
                 "allocations served by\nmalloc (not the pool). Losses "
                 "must match exactly: the planner only drops dead\n"
                 "tensors and recycling is refcount-driven.\n\n";

    if (mode != "both") {
        const bool planner = mode == "on";
        core::ConsoleTable table;
        table.SetHeader({"workload", "peak (MB)", "allocs", "fresh",
                         "pool hits", "final loss"});
        for (const auto& name :
             workloads::WorkloadRegistry::Global().Names()) {
            const Measurement m = Measure(name, steps, planner);
            table.AddRow({name, Mb(m.peak_bytes),
                          std::to_string(m.allocations),
                          std::to_string(m.fresh_allocs),
                          std::to_string(m.pool_hits),
                          core::FormatDouble(m.final_loss, 4)});
        }
        std::cout << "planner " << mode << ":\n" << table.Render();
        BufferPool::Global().set_recycling(true);
        return 0;
    }

    core::ConsoleTable table;
    table.SetHeader({"workload", "peak off (MB)", "peak on (MB)", "peak Δ",
                     "fresh off", "fresh on", "fresh Δ", "hit rate on",
                     "loss"});
    int improved = 0;
    bool all_identical = true;
    for (const auto& name : workloads::WorkloadRegistry::Global().Names()) {
        const Measurement off = Measure(name, steps, /*planner=*/false);
        const Measurement on = Measure(name, steps, /*planner=*/true);

        const double peak_delta =
            off.peak_bytes > 0
                ? 1.0 - static_cast<double>(on.peak_bytes) /
                            static_cast<double>(off.peak_bytes)
                : 0.0;
        const double fresh_delta =
            off.fresh_allocs > 0
                ? 1.0 - static_cast<double>(on.fresh_allocs) /
                            static_cast<double>(off.fresh_allocs)
                : 0.0;
        const double hit_rate =
            on.allocations > 0 ? static_cast<double>(on.pool_hits) /
                                     static_cast<double>(on.allocations)
                               : 0.0;
        const bool identical = off.final_loss == on.final_loss;
        all_identical = all_identical && identical;
        if (on.peak_bytes < off.peak_bytes &&
            on.fresh_allocs < off.fresh_allocs) {
            ++improved;
        }
        table.AddRow({name, Mb(off.peak_bytes), Mb(on.peak_bytes),
                      "-" + core::FormatPercent(peak_delta),
                      std::to_string(off.fresh_allocs),
                      std::to_string(on.fresh_allocs),
                      "-" + core::FormatPercent(fresh_delta),
                      core::FormatPercent(hit_rate),
                      identical ? "identical" : "DIFFERS"});
    }
    std::cout << table.Render();
    std::cout << "\nplanner reduced both peak bytes and fresh allocations "
                 "on "
              << improved << "/8 workloads; losses "
              << (all_identical ? "bit-identical in every case"
                                : "DIFFER — determinism violation")
              << "\n";

    BufferPool::Global().set_recycling(true);
    return all_identical ? 0 : 1;
}
