/**
 * @file
 * Reproduces Figure 4: hierarchical similarity of the Fathom
 * workloads — cosine distance between op-type profiles, agglomerative
 * clustering with centroidal linkage.
 *
 * Expected shape from the paper: the three ImageNet networks
 * (alexnet, vgg, residual) cluster tightly with deepq nearby, while
 * the two recurrent networks (speech, seq2seq) are *far apart*
 * because Deep Speech is a stack of fully-connected layers with CTC
 * loss whereas seq2seq is LSTM + attention.
 */
#include <iostream>

#include "analysis/op_profile.h"
#include "analysis/similarity.h"
#include "core/suite.h"
#include "core/table.h"

int
main()
{
    using namespace fathom;
    using core::ConsoleTable;
    using core::FormatDouble;

    std::cout << "=== Figure 4: hierarchical similarity (cosine distance, "
                 "centroid linkage) ===\n"
              << "clock: wall (single CPU core); training profiles\n\n";

    core::SuiteRunOptions options;
    options.warmup_steps = 1;
    options.train_steps = 4;
    options.infer_steps = 0;

    std::vector<std::string> names;
    std::vector<analysis::OpProfile> profiles;
    for (const auto& name : core::SuiteNames()) {
        const auto traces = core::RunAndTrace(name, options);
        names.push_back(name);
        profiles.push_back(
            analysis::WallProfile(traces.training, traces.warmup_steps));
    }

    const auto matrix = analysis::ProfileMatrix(profiles);

    // Pairwise distance matrix.
    ConsoleTable table;
    {
        std::vector<std::string> header = {""};
        for (const auto& n : names) {
            header.push_back(n);
        }
        table.SetHeader(header);
    }
    for (std::size_t i = 0; i < names.size(); ++i) {
        std::vector<std::string> row = {names[i]};
        for (std::size_t j = 0; j < names.size(); ++j) {
            row.push_back(FormatDouble(
                analysis::CosineDistance(matrix[i], matrix[j]), 3));
        }
        table.AddRow(row);
    }
    std::cout << table.Render() << "\n";

    const auto merges = analysis::AgglomerativeCluster(matrix);
    std::cout << analysis::RenderDendrogram(names, merges) << "\n";

    // Machine-checkable shape assertions.
    auto index_of = [&names](const std::string& n) {
        for (std::size_t i = 0; i < names.size(); ++i) {
            if (names[i] == n) {
                return i;
            }
        }
        return names.size();
    };
    const double d_vgg_res = analysis::CosineDistance(
        matrix[index_of("vgg")], matrix[index_of("residual")]);
    const double d_speech_s2s = analysis::CosineDistance(
        matrix[index_of("speech")], matrix[index_of("seq2seq")]);
    std::cout << "shape check: dist(vgg, residual) = "
              << FormatDouble(d_vgg_res, 3)
              << "  <<  dist(speech, seq2seq) = "
              << FormatDouble(d_speech_s2s, 3)
              << (d_vgg_res < d_speech_s2s ? "   [OK]" : "   [MISMATCH]")
              << "\n"
              << "(paper: conv nets cluster; the two recurrent nets are "
                 "dissimilar despite both being 'recurrent')\n";
    return 0;
}
