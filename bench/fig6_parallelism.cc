/**
 * @file
 * Reproduces Figure 6: the effect of Amdahl's law at the application
 * level — absolute time per op type as intra-op parallelism grows,
 * for deepq (6a), seq2seq (6b), and memnet (6c).
 *
 * Thread counts are swept through the analytical device model over
 * per-op costs recorded from real executions (the host has one core;
 * see DESIGN.md). The kernels also genuinely run under a configurable
 * thread pool, so the recorded parallel trip counts are the real ones.
 *
 * A second sweep exercises the inter-op executor for real: each
 * workload runs training steps under inter-op x intra-op thread grids
 * and reports measured step-time speedup over the sequential executor.
 * Inter-op scheduling leaves fetched values bit-identical, so the two
 * knobs compose freely; on a multi-core host, workloads with wide
 * independent branches (memnet's attention hops, deepq's dual heads)
 * gain from inter-op threads even where skinny tensors defeat the
 * intra-op pool.
 *
 * Expected shapes from the paper:
 *  - deepq: Conv2D/MatMul shrink with threads; ApplyRMSProp (serial,
 *    data-dependent) stays flat and rises in relative share;
 *  - seq2seq: MatMul/Mul shrink; the small data-movement tail is flat;
 *  - memnet: skinny-tensor ops refuse to parallelize (trip counts
 *    below the grain threshold), so the profile barely compresses.
 */
#include <iostream>
#include <string>
#include <vector>

#include "analysis/scaling.h"
#include "core/suite.h"
#include "core/table.h"

namespace {

/** Measured post-warmup training step time under one thread config. */
double
MeasuredStepSeconds(const std::string& name, int threads,
                    int inter_op_threads)
{
    fathom::core::SuiteRunOptions options;
    options.warmup_steps = 1;
    options.train_steps = 3;
    options.infer_steps = 0;
    options.threads = threads;
    options.inter_op_threads = inter_op_threads;
    const auto traces = fathom::core::RunAndTrace(name, options);

    double total = 0.0;
    int counted = 0;
    const auto& steps = traces.training.steps();
    for (std::size_t i = static_cast<std::size_t>(traces.warmup_steps);
         i < steps.size(); ++i) {
        total += steps[i].wall_seconds;
        ++counted;
    }
    return counted > 0 ? total / counted : 0.0;
}

}  // namespace

int
main()
{
    using namespace fathom;
    using core::ConsoleTable;
    using core::FormatDouble;
    using core::FormatPercent;

    std::cout << "=== Figure 6: per-op-type scaling with intra-op threads "
                 "===\n"
              << "clock: simulated device model over recorded op costs; "
                 "training steps\n\n";

    const std::vector<int> threads = {1, 2, 4, 8};

    for (const std::string name : {"deepq", "seq2seq", "memnet"}) {
        core::SuiteRunOptions options;
        options.warmup_steps = 1;
        options.train_steps = 4;
        options.infer_steps = 0;
        const auto traces = core::RunAndTrace(name, options);

        const auto sweep = analysis::SweepThreads(
            traces.training, traces.warmup_steps, threads);
        const auto top = analysis::TopTypes(sweep, 8);

        std::cout << "--- " << name << " ---\n";
        ConsoleTable table;
        {
            std::vector<std::string> header = {"op type"};
            for (int t : threads) {
                header.push_back("T=" + std::to_string(t) + " (ms)");
            }
            header.push_back("speedup T=8");
            table.SetHeader(header);
        }
        for (const auto& type : top) {
            const auto& series = sweep.seconds_by_type.at(type);
            std::vector<std::string> row = {type};
            for (std::size_t i = 0; i < series.size(); ++i) {
                row.push_back(FormatDouble(series[i] * 1e3, 2));
            }
            row.push_back(
                FormatDouble(series[0] / series[series.size() - 1], 2) + "x");
            table.AddRow(row);
        }
        std::cout << table.Render();

        // Amdahl at the application level: total speedup and the
        // optimizer's share at 1 vs 8 threads.
        const double total1 = sweep.TotalAt(0);
        const double total8 = sweep.TotalAt(threads.size() - 1);
        std::cout << "total: " << FormatDouble(total1 * 1e3, 2) << " ms @T=1"
                  << " -> " << FormatDouble(total8 * 1e3, 2)
                  << " ms @T=8 (speedup "
                  << FormatDouble(total1 / total8, 2) << "x)\n";
        auto share_of = [&](const std::string& type, std::size_t i) {
            auto it = sweep.seconds_by_type.find(type);
            if (it == sweep.seconds_by_type.end()) {
                return 0.0;
            }
            return it->second[i] / sweep.TotalAt(i);
        };
        for (const std::string opt :
             {"ApplyRMSProp", "ApplyGradientDescent", "ApplyMomentum",
              "ApplyAdam"}) {
            if (sweep.seconds_by_type.count(opt)) {
                std::cout << opt << " share: " << FormatPercent(share_of(opt, 0))
                          << " @T=1 -> "
                          << FormatPercent(share_of(opt, threads.size() - 1))
                          << " @T=8 (rises as parallel ops shrink)\n";
            }
        }
        std::cout << "\n";
    }

    std::cout << "Expected shape: heavy parallel ops (Conv2D, MatMul) "
                 "shrink with threads; serial,\ndata-dependent ops "
                 "(optimizers, reductions, skinny-tensor ops in memnet) "
                 "stay flat and\ngrow in relative importance — Amdahl's "
                 "law at the application level.\n\n";

    // --- Inter-op x intra-op sweep: measured wall clock -----------------
    std::cout << "=== Inter-op x intra-op executor sweep (measured wall "
                 "clock) ===\nclock: real step time, mean of 3 training "
                 "steps after 1 warmup; speedup vs\nthe sequential "
                 "executor (inter=1, intra=1). Values are bit-identical "
                 "across all\nconfigurations by construction.\n\n";

    const std::vector<int> inter_threads = {1, 2, 4};
    const std::vector<int> intra_threads = {1, 2};

    for (const std::string name : {"memnet", "deepq"}) {
        std::cout << "--- " << name << " ---\n";
        const double base = MeasuredStepSeconds(name, 1, 1);

        ConsoleTable table;
        {
            std::vector<std::string> header = {"intra \\ inter"};
            for (int inter : inter_threads) {
                header.push_back("inter=" + std::to_string(inter));
            }
            table.SetHeader(header);
        }
        double best_speedup = 1.0;
        int best_inter = 1, best_intra = 1;
        for (int intra : intra_threads) {
            std::vector<std::string> row = {"intra=" +
                                            std::to_string(intra)};
            for (int inter : inter_threads) {
                const double secs =
                    (inter == 1 && intra == 1)
                        ? base
                        : MeasuredStepSeconds(name, intra, inter);
                const double speedup = secs > 0.0 ? base / secs : 0.0;
                row.push_back(FormatDouble(secs * 1e3, 2) + " ms (" +
                              FormatDouble(speedup, 2) + "x)");
                if (speedup > best_speedup) {
                    best_speedup = speedup;
                    best_inter = inter;
                    best_intra = intra;
                }
            }
            table.AddRow(row);
        }
        std::cout << table.Render();
        std::cout << "best: " << FormatDouble(best_speedup, 2)
                  << "x at inter=" << best_inter << ", intra=" << best_intra
                  << " (single-core hosts cannot exceed ~1x; on a "
                     "multi-core host expect >= 1.3x\nfor wide-branch "
                     "workloads at inter=4)\n\n";
    }
    return 0;
}
