/**
 * @file
 * Reproduces Figure 6: the effect of Amdahl's law at the application
 * level — absolute time per op type as intra-op parallelism grows,
 * for deepq (6a), seq2seq (6b), and memnet (6c).
 *
 * Thread counts are swept through the analytical device model over
 * per-op costs recorded from real executions (the host has one core;
 * see DESIGN.md). The kernels also genuinely run under a configurable
 * thread pool, so the recorded parallel trip counts are the real ones.
 *
 * Expected shapes from the paper:
 *  - deepq: Conv2D/MatMul shrink with threads; ApplyRMSProp (serial,
 *    data-dependent) stays flat and rises in relative share;
 *  - seq2seq: MatMul/Mul shrink; the small data-movement tail is flat;
 *  - memnet: skinny-tensor ops refuse to parallelize (trip counts
 *    below the grain threshold), so the profile barely compresses.
 */
#include <iostream>

#include "analysis/scaling.h"
#include "core/suite.h"
#include "core/table.h"

int
main()
{
    using namespace fathom;
    using core::ConsoleTable;
    using core::FormatDouble;
    using core::FormatPercent;

    std::cout << "=== Figure 6: per-op-type scaling with intra-op threads "
                 "===\n"
              << "clock: simulated device model over recorded op costs; "
                 "training steps\n\n";

    const std::vector<int> threads = {1, 2, 4, 8};

    for (const std::string name : {"deepq", "seq2seq", "memnet"}) {
        core::SuiteRunOptions options;
        options.warmup_steps = 1;
        options.train_steps = 4;
        options.infer_steps = 0;
        const auto traces = core::RunAndTrace(name, options);

        const auto sweep = analysis::SweepThreads(
            traces.training, traces.warmup_steps, threads);
        const auto top = analysis::TopTypes(sweep, 8);

        std::cout << "--- " << name << " ---\n";
        ConsoleTable table;
        {
            std::vector<std::string> header = {"op type"};
            for (int t : threads) {
                header.push_back("T=" + std::to_string(t) + " (ms)");
            }
            header.push_back("speedup T=8");
            table.SetHeader(header);
        }
        for (const auto& type : top) {
            const auto& series = sweep.seconds_by_type.at(type);
            std::vector<std::string> row = {type};
            for (std::size_t i = 0; i < series.size(); ++i) {
                row.push_back(FormatDouble(series[i] * 1e3, 2));
            }
            row.push_back(
                FormatDouble(series[0] / series[series.size() - 1], 2) + "x");
            table.AddRow(row);
        }
        std::cout << table.Render();

        // Amdahl at the application level: total speedup and the
        // optimizer's share at 1 vs 8 threads.
        const double total1 = sweep.TotalAt(0);
        const double total8 = sweep.TotalAt(threads.size() - 1);
        std::cout << "total: " << FormatDouble(total1 * 1e3, 2) << " ms @T=1"
                  << " -> " << FormatDouble(total8 * 1e3, 2)
                  << " ms @T=8 (speedup "
                  << FormatDouble(total1 / total8, 2) << "x)\n";
        auto share_of = [&](const std::string& type, std::size_t i) {
            auto it = sweep.seconds_by_type.find(type);
            if (it == sweep.seconds_by_type.end()) {
                return 0.0;
            }
            return it->second[i] / sweep.TotalAt(i);
        };
        for (const std::string opt :
             {"ApplyRMSProp", "ApplyGradientDescent", "ApplyMomentum",
              "ApplyAdam"}) {
            if (sweep.seconds_by_type.count(opt)) {
                std::cout << opt << " share: " << FormatPercent(share_of(opt, 0))
                          << " @T=1 -> "
                          << FormatPercent(share_of(opt, threads.size() - 1))
                          << " @T=8 (rises as parallel ops shrink)\n";
            }
        }
        std::cout << "\n";
    }

    std::cout << "Expected shape: heavy parallel ops (Conv2D, MatMul) "
                 "shrink with threads; serial,\ndata-dependent ops "
                 "(optimizers, reductions, skinny-tensor ops in memnet) "
                 "stay flat and\ngrow in relative importance — Amdahl's "
                 "law at the application level.\n";
    return 0;
}
