/**
 * @file
 * Input-pipeline sweep: prefetch depth x producer threads x workload.
 *
 * For each configuration this runs training steps with the workload's
 * input pipeline at the given prefetch depth and producer count and
 * reports, per step: wall time, batch-materialization time
 * (pipeline.produce_us), and consumer stall time (pipeline.stall_us —
 * the time Next() spent waiting for a batch that was not ready). The
 * overlap column is the fraction of materialization work hidden
 * behind step execution: 1 - stall/produce. Depth 0 is the inline
 * baseline (the historical synchronous behavior, overlap 0 by
 * construction); the speedup column compares each configuration's
 * step time against that baseline.
 *
 * The tentpole claim this bench measures: at depth >= 2 the stall
 * column collapses toward zero and the data-heavy workloads (speech,
 * seq2seq, memnet) take a measurable end-to-end step-time win, while
 * fetched values stay bit-identical at every point of the sweep (the
 * pipeline test battery asserts that part).
 *
 *   bench_input_pipeline --workloads speech,seq2seq,memnet,alexnet \
 *       --steps 8 --depths 0,1,2,4 --producers 1,2 --out-dir bench_out
 *
 * --out-dir writes the results table (pipeline_table.txt) and the
 * per-configuration pipeline metrics (metrics.jsonl) as CI artifacts.
 */
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/exporters.h"
#include "telemetry/metrics.h"
#include "workloads/workload.h"

namespace {

using namespace fathom;

struct Options {
    std::vector<std::string> workloads = {"alexnet", "speech", "seq2seq",
                                          "memnet"};
    std::vector<int> depths = {0, 1, 2, 4};
    std::vector<int> producers = {1, 2};
    int steps = 8;
    int warmup = 2;
    std::string out_dir;
};

std::vector<std::string>
SplitCsv(const std::string& csv)
{
    std::vector<std::string> out;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (!item.empty()) {
            out.push_back(item);
        }
    }
    return out;
}

Options
ParseArgs(int argc, char** argv)
{
    Options options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                throw std::runtime_error("missing value for " + arg);
            }
            return argv[++i];
        };
        if (arg == "--workloads") {
            options.workloads = SplitCsv(next());
        } else if (arg == "--depths") {
            options.depths.clear();
            for (const auto& v : SplitCsv(next())) {
                options.depths.push_back(std::stoi(v));
            }
        } else if (arg == "--producers") {
            options.producers.clear();
            for (const auto& v : SplitCsv(next())) {
                options.producers.push_back(std::stoi(v));
            }
        } else if (arg == "--steps") {
            options.steps = std::stoi(next());
        } else if (arg == "--warmup") {
            options.warmup = std::stoi(next());
        } else if (arg == "--out-dir") {
            options.out_dir = next();
        } else {
            throw std::runtime_error("unknown argument: " + arg);
        }
    }
    return options;
}

struct ConfigResult {
    std::string workload;
    int depth = 0;
    int producers = 0;
    double step_ms = 0.0;     ///< mean wall time per training step.
    double produce_ms = 0.0;  ///< batch materialization per step.
    double stall_ms = 0.0;    ///< consumer wait per step.
    double overlap = 0.0;     ///< fraction of produce time hidden.
    double speedup = 0.0;     ///< step time vs the depth-0 baseline.
};

ConfigResult
RunConfig(const std::string& name, int depth, int producers, int steps,
          int warmup, std::ostream* jsonl)
{
    auto workload = workloads::WorkloadRegistry::Global().Create(name);
    workloads::WorkloadConfig config;
    config.seed = 42;
    config.tracing = false;
    config.telemetry = true;
    config.prefetch_depth = depth;
    config.producer_threads = producers;
    workload->Setup(config);

    // Warm variables, buffer pools, and pack caches outside the
    // timed region (also lets deepq seed its replay buffer).
    if (warmup > 0) {
        workload->RunTraining(warmup);
    }

    telemetry::MetricsRegistry::Global().ResetAll();
    const auto result = workload->RunTraining(steps);
    const auto snapshot = telemetry::MetricsRegistry::Global().Snapshot();
    telemetry::MetricsRegistry::set_enabled(false);

    if (jsonl != nullptr) {
        *jsonl << "{\"kind\":\"config\",\"workload\":\"" << name
               << "\",\"depth\":" << depth
               << ",\"producers\":" << producers << "}\n"
               << telemetry::MetricsToJsonl(snapshot);
    }

    const auto produce = snapshot.HistogramValue("pipeline.produce_us");
    const auto stall = snapshot.HistogramValue("pipeline.stall_us");

    ConfigResult r;
    r.workload = name;
    r.depth = depth;
    r.producers = producers;
    r.step_ms = result.wall_seconds / static_cast<double>(steps) * 1e3;
    r.produce_ms = static_cast<double>(produce.sum) /
                   static_cast<double>(steps) * 1e-3;
    r.stall_ms =
        static_cast<double>(stall.sum) / static_cast<double>(steps) * 1e-3;
    r.overlap = produce.sum > 0
                    ? 1.0 - static_cast<double>(stall.sum) /
                                static_cast<double>(produce.sum)
                    : 0.0;
    r.overlap = std::max(0.0, std::min(1.0, r.overlap));
    return r;
}

void
PrintTable(std::ostream& os, const std::vector<ConfigResult>& results)
{
    os << std::left << std::setw(10) << "workload" << std::right
       << std::setw(7) << "depth" << std::setw(11) << "producers"
       << std::setw(11) << "step_ms" << std::setw(12) << "produce_ms"
       << std::setw(10) << "stall_ms" << std::setw(9) << "overlap"
       << std::setw(9) << "speedup" << "\n";
    os << std::string(79, '-') << "\n";
    for (const auto& r : results) {
        os << std::left << std::setw(10) << r.workload << std::right
           << std::setw(7) << r.depth << std::setw(11) << r.producers
           << std::setw(11) << std::fixed << std::setprecision(2)
           << r.step_ms << std::setw(12) << std::setprecision(3)
           << r.produce_ms << std::setw(10) << r.stall_ms << std::setw(9)
           << std::setprecision(2) << r.overlap << std::setw(8)
           << r.speedup << "x\n";
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    Options options;
    try {
        options = ParseArgs(argc, argv);
    } catch (const std::exception& e) {
        std::cerr << "bench_input_pipeline: " << e.what() << "\n";
        return 2;
    }

    workloads::RegisterAllWorkloads();

    std::ofstream jsonl_file;
    std::ostream* jsonl = nullptr;
    if (!options.out_dir.empty()) {
        jsonl_file.open(options.out_dir + "/metrics.jsonl");
        if (!jsonl_file) {
            std::cerr << "bench_input_pipeline: cannot write to "
                      << options.out_dir
                      << " (create the directory first)\n";
            return 2;
        }
        jsonl = &jsonl_file;
    }

    std::vector<ConfigResult> results;
    for (const auto& name : options.workloads) {
        double baseline_ms = 0.0;
        for (const int depth : options.depths) {
            for (const int producers : options.producers) {
                // Producer count is meaningless inline; run depth 0
                // once per workload.
                if (depth == 0 && producers != options.producers.front()) {
                    continue;
                }
                auto r = RunConfig(name, depth, depth == 0 ? 0 : producers,
                                   options.steps, options.warmup, jsonl);
                if (depth == 0) {
                    baseline_ms = r.step_ms;
                }
                r.speedup = r.step_ms > 0.0 && baseline_ms > 0.0
                                ? baseline_ms / r.step_ms
                                : 0.0;
                results.push_back(r);
                std::cerr << name << " depth=" << r.depth
                          << " producers=" << r.producers << " step_ms="
                          << std::fixed << std::setprecision(2) << r.step_ms
                          << " stall_ms=" << std::setprecision(3)
                          << r.stall_ms << "\n";
            }
        }
    }

    std::cout << "\n";
    PrintTable(std::cout, results);

    // The tentpole claim, stated by the bench itself: the best
    // prefetch configuration against the inline baseline per workload.
    std::cout << "\nPrefetch vs inline baseline (best configuration):\n";
    for (const auto& base : results) {
        if (base.depth != 0) {
            continue;
        }
        const ConfigResult* best = nullptr;
        for (const auto& r : results) {
            if (r.workload == base.workload && r.depth > 0 &&
                (best == nullptr || r.step_ms < best->step_ms)) {
                best = &r;
            }
        }
        if (best != nullptr) {
            std::cout << "  " << base.workload << ": " << std::fixed
                      << std::setprecision(2) << base.step_ms << " -> "
                      << best->step_ms << " ms/step (" << best->speedup
                      << "x, depth " << best->depth << ", "
                      << best->producers << " producers, stall "
                      << std::setprecision(3) << best->stall_ms
                      << " ms)\n";
        }
    }

    if (!options.out_dir.empty()) {
        std::ofstream table(options.out_dir + "/pipeline_table.txt");
        PrintTable(table, results);
    }
    return 0;
}
