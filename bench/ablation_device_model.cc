/**
 * @file
 * Ablation: are the paper-shaped conclusions robust to the analytical
 * device model's parameters?
 *
 * The two load-bearing substitutions in this reproduction (DESIGN.md)
 * are the thread-amortization grain and the GPU launch overhead. This
 * bench sweeps both across an order of magnitude in each direction and
 * re-derives the two headline shape results:
 *
 *   (1) Fig. 6: memnet does not scale with threads while deepq does;
 *   (2) Fig. 5: the GPU wins big on conv nets and only modestly on
 *       small-op recurrent/memory models.
 *
 * If either conclusion flipped within the sweep, the reproduction
 * would be an artifact of the calibration rather than of the workload
 * structure.
 */
#include <iostream>

#include "analysis/scaling.h"
#include "core/suite.h"
#include "core/table.h"

int
main()
{
    using namespace fathom;
    using core::ConsoleTable;
    using core::FormatDouble;

    std::cout << "=== Ablation: device-model parameter sensitivity ===\n\n";

    core::SuiteRunOptions options;
    options.warmup_steps = 1;
    options.train_steps = 3;
    options.infer_steps = 0;

    const auto deepq = core::RunAndTrace("deepq", options);
    const auto memnet = core::RunAndTrace("memnet", options);
    const auto alexnet = core::RunAndTrace("alexnet", options);
    const auto seq2seq = core::RunAndTrace("seq2seq", options);

    // ---- (1) grain sweep: thread scaling at T=8 ------------------------
    std::cout << "--- thread-amortization grain sweep (speedup at T=8) "
                 "---\n";
    ConsoleTable grain_table;
    grain_table.SetHeader({"min work/thread", "deepq", "memnet",
                           "conclusion holds"});
    for (const double grain : {2048.0, 8192.0, 16384.0, 65536.0, 262144.0}) {
        auto speedup_at = [&](const core::WorkloadTraces& traces) {
            auto cpu1 = runtime::DeviceSpec::Cpu(1);
            auto cpu8 = runtime::DeviceSpec::Cpu(8);
            cpu1.min_work_per_thread = grain;
            cpu8.min_work_per_thread = grain;
            const double t1 = analysis::SimulatedTotalSeconds(
                traces.training, traces.warmup_steps, cpu1);
            const double t8 = analysis::SimulatedTotalSeconds(
                traces.training, traces.warmup_steps, cpu8);
            return t1 / t8;
        };
        const double dq = speedup_at(deepq);
        const double mn = speedup_at(memnet);
        grain_table.AddRow({FormatDouble(grain, 0), FormatDouble(dq, 2) + "x",
                            FormatDouble(mn, 2) + "x",
                            dq > 1.5 && mn < 1.3 ? "yes" : "NO"});
    }
    std::cout << grain_table.Render() << "\n";

    // ---- (2) GPU overhead sweep: train-time GPU speedup ------------------
    std::cout << "--- GPU launch-overhead sweep (train-time speedup vs "
                 "CPU(1)) ---\n";
    ConsoleTable gpu_table;
    gpu_table.SetHeader({"launch overhead", "alexnet", "seq2seq",
                         "conclusion holds"});
    for (const double overhead : {1e-6, 2e-6, 4e-6, 8e-6, 16e-6}) {
        auto gpu = runtime::DeviceSpec::Gpu();
        gpu.op_overhead = overhead;
        const auto cpu = runtime::DeviceSpec::Cpu(1);
        auto speedup_of = [&](const core::WorkloadTraces& traces) {
            return analysis::SimulatedTotalSeconds(traces.training,
                                                   traces.warmup_steps, cpu) /
                   analysis::SimulatedTotalSeconds(traces.training,
                                                   traces.warmup_steps, gpu);
        };
        const double conv_net = speedup_of(alexnet);
        const double rnn = speedup_of(seq2seq);
        gpu_table.AddRow({FormatDouble(overhead * 1e6, 0) + " us",
                          FormatDouble(conv_net, 1) + "x",
                          FormatDouble(rnn, 1) + "x",
                          conv_net > 4.0 * rnn ? "yes" : "NO"});
    }
    std::cout << gpu_table.Render() << "\n";

    std::cout << "Both headline shapes must hold across the sweeps: deepq "
                 "scales while memnet does not,\nand the GPU advantage on "
                 "conv nets exceeds the advantage on small-op models by "
                 ">4x.\n";
    return 0;
}
