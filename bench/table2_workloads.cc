/**
 * @file
 * Reproduces Table II: the Fathom workload inventory.
 *
 * Every column is pulled from the live workload objects — layer counts
 * and parameter counts come from the graphs actually built by this
 * repository, not from hard-coded strings.
 */
#include <iostream>

#include "core/suite.h"
#include "core/table.h"
#include "workloads/workload.h"

int
main()
{
    using fathom::core::ConsoleTable;
    fathom::workloads::RegisterAllWorkloads();

    std::cout << "=== Table II: The Fathom Workloads ===\n\n";

    ConsoleTable table;
    table.SetHeader({"Model", "Style", "Layers", "Task", "Dataset",
                     "Params", "Graph nodes"});
    for (const auto& name : fathom::core::SuiteNames()) {
        auto w = fathom::workloads::WorkloadRegistry::Global().Create(name);
        fathom::workloads::WorkloadConfig config;
        config.seed = 1;
        w->Setup(config);
        table.AddRow({w->name(), w->neuronal_style(),
                      std::to_string(w->num_layers()), w->learning_task(),
                      w->dataset(), std::to_string(w->num_parameters()),
                      std::to_string(w->session().graph().num_nodes())});
    }
    std::cout << table.Render() << "\n";

    std::cout << "Purpose and legacy:\n";
    for (const auto& name : fathom::core::SuiteNames()) {
        auto w = fathom::workloads::WorkloadRegistry::Global().Create(name);
        std::cout << "  " << w->name() << ": " << w->description() << "\n";
    }
    return 0;
}
