/**
 * @file
 * Telemetry overhead sweep and roofline demonstration.
 *
 * Part 1 measures what observability costs: for two workloads (one
 * convolutional, one recurrent) it times training steps in three modes
 * — everything off, metrics only, metrics + tracing — interleaving the
 * modes across repetitions and keeping each mode's best time so OS
 * noise hits all modes equally. The contract under test (also asserted
 * at small shapes by test_telemetry.cc) is that the traced-off hot
 * path stays within ~2% of the fully dark one: with tracing disabled
 * the executor takes no per-op clock readings, and a disabled metric
 * mutation is one relaxed load and branch.
 *
 * Part 2 prints the per-op roofline report (analysis/roofline.h) for
 * the same workloads against the calibrated CPU device model: achieved
 * GFLOP/s, arithmetic intensity, and predicted-vs-measured ratio per
 * op class — the quantitative version of the paper's "which ops are
 * near the roof" discussion.
 */
#include <algorithm>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/roofline.h"
#include "core/suite.h"
#include "telemetry/exporters.h"
#include "telemetry/metrics.h"
#include "workloads/workload.h"

namespace {

using namespace fathom;

struct Mode {
    const char* name;
    bool tracing;
    bool telemetry;
};

constexpr Mode kModes[] = {
    {"off", false, false},
    {"metrics", false, true},
    {"metrics+trace", true, true},
};
constexpr int kNumModes = 3;

/** One workload instance per mode, so graph/variable state is warm and
 * identical across timed repetitions. */
struct ModeRun {
    std::unique_ptr<workloads::Workload> workload;
    double best_seconds = 1e300;
};

void
SweepWorkload(const std::string& name, std::int64_t batch, int steps,
              int reps)
{
    workloads::RegisterAllWorkloads();

    ModeRun runs[kNumModes];
    for (int m = 0; m < kNumModes; ++m) {
        workloads::WorkloadConfig config;
        config.batch_size = batch;
        config.tracing = kModes[m].tracing;
        config.telemetry = kModes[m].telemetry;
        runs[m].workload =
            workloads::WorkloadRegistry::Global().Create(name);
        runs[m].workload->Setup(config);
        runs[m].workload->RunTraining(1);  // warm variables + pool.
    }

    // Interleave modes within each repetition: slow drift (thermal,
    // background load) then biases every mode the same way, and
    // min-of-reps discards the noisy repetitions entirely.
    for (int rep = 0; rep < reps; ++rep) {
        for (int m = 0; m < kNumModes; ++m) {
            // The config flags are global (tracer per-session, metrics
            // per-process): re-assert them before timing.
            runs[m].workload->session().tracer().set_enabled(
                kModes[m].tracing);
            runs[m].workload->session().tracer().Clear();
            telemetry::MetricsRegistry::set_enabled(kModes[m].telemetry);
            const auto result = runs[m].workload->RunTraining(steps);
            runs[m].best_seconds =
                std::min(runs[m].best_seconds, result.wall_seconds);
        }
    }
    telemetry::MetricsRegistry::set_enabled(false);

    const double base = runs[0].best_seconds;
    std::cout << name << " (batch " << batch << ", " << steps
              << " steps/rep, best of " << reps << "):\n";
    for (int m = 0; m < kNumModes; ++m) {
        const double overhead_pct =
            base > 0.0 ? (runs[m].best_seconds / base - 1.0) * 100.0 : 0.0;
        std::cout << "  " << std::left << std::setw(14) << kModes[m].name
                  << std::right << std::fixed << std::setprecision(2)
                  << std::setw(10) << runs[m].best_seconds * 1e3 << " ms"
                  << std::showpos << std::setw(8) << overhead_pct << "%"
                  << std::noshowpos << "\n";
    }
    std::cout << "\n";
}

void
RooflineFor(const std::string& name, std::int64_t batch, int steps)
{
    core::SuiteRunOptions options;
    options.warmup_steps = 1;
    options.train_steps = steps;
    options.infer_steps = 0;
    options.batch_size = batch;
    const auto traces = core::RunAndTrace(name, options);
    const auto report = analysis::BuildRooflineReport(
        traces.training, traces.warmup_steps, runtime::DeviceSpec::Cpu(1));
    std::cout << "--- " << name << " ---\n"
              << analysis::RenderRooflineReport(report, /*max_type_rows=*/12)
              << "\n";
}

}  // namespace

int
main()
{
    std::cout << "=== telemetry overhead sweep ===\n"
              << "overhead vs all-off baseline; budget: metrics <= ~2%\n\n";
    SweepWorkload("alexnet", /*batch=*/4, /*steps=*/2, /*reps=*/5);
    SweepWorkload("seq2seq", /*batch=*/8, /*steps=*/2, /*reps=*/5);

    std::cout << "=== per-op roofline (vs modeled 1-thread CPU) ===\n"
              << "model = predicted/measured time: ~1 on model, <1 "
                 "slower than the roofline bound\n\n";
    RooflineFor("alexnet", /*batch=*/4, /*steps=*/2);
    RooflineFor("seq2seq", /*batch=*/8, /*steps=*/2);
    return 0;
}
