/**
 * @file
 * Reproduces Figure 2: cumulative execution time versus number of
 * unique operation types.
 *
 * The paper's finding: for every workload a handful of "heavy"
 * operation types (usually 5 to 15) collectively account for upwards
 * of 90% of program duration, but *which* types differ per model.
 */
#include <iostream>

#include "analysis/op_profile.h"
#include "core/suite.h"
#include "core/table.h"

int
main()
{
    using namespace fathom;
    using core::ConsoleTable;
    using core::FormatPercent;

    std::cout << "=== Figure 2: cumulative op-type skew curves ===\n"
              << "clock: wall (single CPU core); training profiles\n\n";

    core::SuiteRunOptions options;
    options.warmup_steps = 1;
    options.train_steps = 4;
    options.infer_steps = 0;

    ConsoleTable table;
    table.SetHeader({"workload", "k=1", "k=2", "k=3", "k=5", "k=10", "k=15",
                     "types for 90%", "total types"});
    for (const auto& name : core::SuiteNames()) {
        const auto traces = core::RunAndTrace(name, options);
        const auto profile =
            analysis::WallProfile(traces.training, traces.warmup_steps);
        const auto curve = profile.SkewCurve();
        auto at = [&curve](std::size_t k) {
            if (curve.empty()) {
                return std::string("-");
            }
            return FormatPercent(curve[std::min(k - 1, curve.size() - 1)]);
        };
        table.AddRow({name, at(1), at(2), at(3), at(5), at(10), at(15),
                      std::to_string(profile.TypesToCover(0.9)),
                      std::to_string(curve.size())});
    }
    std::cout << table.Render() << "\n";

    std::cout << "Expected shape (paper): every row reaches >= 90% within "
                 "5-15 op types, i.e. the\ndistribution is heavily skewed "
                 "toward a handful of heavy operations.\n";
    return 0;
}
