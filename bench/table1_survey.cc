/**
 * @file
 * Reproduces Table I: the survey of deep-learning features covered by
 * recent architecture papers versus Fathom.
 *
 * The survey rows are static data transcribed from the paper; the
 * Fathom column is *computed* from the actual workload implementations
 * in this repository (styles, maximum depth, learning tasks, domains),
 * so it stays honest if the suite changes.
 */
#include <iostream>
#include <set>

#include "core/suite.h"
#include "core/table.h"

namespace {

using fathom::core::ConsoleTable;

/** One surveyed paper's feature vector. */
struct SurveyEntry {
    const char* citation;
    bool fully_connected, convolutional, recurrent;
    int max_depth;
    bool inference, supervised, unsupervised, reinforcement;
    bool vision, speech, language, function_approx;
};

// Transcribed from Table I of the paper ([8]..[49] citation keys).
const SurveyEntry kSurvey[] = {
    {"[8] Chakradhar'10",  true,  true,  false, 4,  true, false, false, false, true,  false, false, false},
    {"[9] BenchNN'12",     true,  false, false, 4,  true, false, false, false, true,  true,  false, true},
    {"[10] DianNao'14",    true,  true,  false, 3,  true, false, false, false, true,  false, false, false},
    {"[11] DaDianNao'14",  true,  true,  false, 3,  true, true,  false, false, true,  false, false, false},
    {"[12] Eyeriss'16",    true,  true,  false, 5,  true, false, false, false, true,  false, false, false},
    {"[14] PRIME'16",      true,  true,  false, 16, true, false, false, false, true,  false, false, false},
    {"[21] ShiDianNao'15", true,  true,  false, 7,  true, true,  false, false, true,  false, false, false},
    {"[24] EIE'16",        true,  true,  true,  3,  true, false, false, false, true,  false, true,  false},
    {"[26] DjiNN'15",      true,  true,  true,  13, true, true,  false, false, true,  true,  true,  false},
    {"[35] PuDianNao'15",  true,  false, false, 6,  true, true,  false, false, true,  false, false, true},
    {"[38] Ovtcharov'15",  true,  true,  false, 9,  true, false, false, false, true,  false, false, false},
    {"[39] Minerva'16",    true,  false, false, 4,  true, false, false, false, true,  false, false, false},
    {"[40] ISAAC'16",      true,  true,  false, 26, true, false, false, false, true,  false, false, false},
    {"[44] CortexSuite'14",true,  false, true,  2,  true, true,  true,  false, true,  true,  true,  true},
    {"[47] Yazdanbakhsh'15",true, false, false, 5,  true, true,  false, false, true,  true,  true,  true},
    {"[49] Zhang'15",      false, true,  false, 5,  true, false, false, false, true,  false, false, false},
};

std::string
Mark(bool present)
{
    return present ? "x" : ".";
}

}  // namespace

int
main()
{
    using fathom::core::SuiteNames;
    fathom::workloads::RegisterAllWorkloads();

    // Compute the Fathom column from the real workloads.
    bool fc = false;
    bool conv = false;
    bool recurrent = false;
    int max_depth = 0;
    std::set<std::string> tasks;
    for (const auto& name : SuiteNames()) {
        auto w = fathom::workloads::WorkloadRegistry::Global().Create(name);
        const std::string style = w->neuronal_style();
        fc |= style.find("Full") != std::string::npos ||
              style.find("Memory") != std::string::npos;
        conv |= style.find("Convolutional") != std::string::npos;
        recurrent |= style.find("Recurrent") != std::string::npos;
        max_depth = std::max(max_depth, w->num_layers());
        tasks.insert(w->learning_task());
    }

    std::cout << "=== Table I: Recent Architecture Research in Deep "
                 "Learning ===\n"
              << "(survey rows transcribed from the paper; Fathom column "
                 "computed from this implementation)\n\n";

    ConsoleTable table;
    table.SetHeader({"Work", "FC", "Conv", "Recur", "Depth", "Inf", "Sup",
                     "Unsup", "Reinf", "Vision", "Speech", "Lang", "FuncAp"});
    for (const auto& e : kSurvey) {
        table.AddRow({e.citation, Mark(e.fully_connected),
                      Mark(e.convolutional), Mark(e.recurrent),
                      std::to_string(e.max_depth), Mark(e.inference),
                      Mark(e.supervised), Mark(e.unsupervised),
                      Mark(e.reinforcement), Mark(e.vision), Mark(e.speech),
                      Mark(e.language), Mark(e.function_approx)});
    }
    table.AddRow({"Fathom (this repo)", Mark(fc), Mark(conv),
                  Mark(recurrent), std::to_string(max_depth), Mark(true),
                  Mark(tasks.count("Supervised") > 0),
                  Mark(tasks.count("Unsupervised") > 0),
                  Mark(tasks.count("Reinforcement") > 0), Mark(true),
                  Mark(true), Mark(true), Mark(true)});
    std::cout << table.Render() << "\n";

    std::cout << "Paper's claim to verify: the survey rows cluster on "
                 "convolutional/fully-connected supervised vision\n"
                 "inference, while Fathom covers recurrent, unsupervised, "
                 "and reinforcement learning as well.\n";

    // Machine-checkable assertions of the table's qualitative content.
    int recurrent_rows = 0;
    int unsupervised_rows = 0;
    int reinforcement_rows = 0;
    for (const auto& e : kSurvey) {
        recurrent_rows += e.recurrent;
        unsupervised_rows += e.unsupervised;
        reinforcement_rows += e.reinforcement;
    }
    std::cout << "\nsurvey rows with recurrent nets:     " << recurrent_rows
              << " / 16\n"
              << "survey rows with unsupervised tasks: " << unsupervised_rows
              << " / 16\n"
              << "survey rows with reinforcement:      "
              << reinforcement_rows << " / 16\n"
              << "Fathom: recurrent=" << (recurrent ? "yes" : "no")
              << " unsupervised="
              << (tasks.count("Unsupervised") ? "yes" : "no")
              << " reinforcement="
              << (tasks.count("Reinforcement") ? "yes" : "no")
              << " max depth=" << max_depth << "\n";
    return 0;
}
