/**
 * @file
 * Reproduces Figure 3: breakdown of execution time by operation class
 * for each Fathom workload (the heatmap), plus the per-op-type detail
 * behind it.
 *
 * Expected shapes from the paper:
 *  - conv nets (alexnet/vgg/residual/deepq) dominated by Convolution;
 *  - the FC share *shrinks* across alexnet -> vgg -> residual
 *    (the ILSVRC longitudinal comparison of Sec. V-B);
 *  - speech almost entirely MatMul plus the CTC loss;
 *  - seq2seq shows LSTM elementwise arithmetic and attention
 *    data movement;
 *  - autoenc shows a visible RandomSampling component.
 *
 * Telemetry flags (all optional; defaults reproduce the figure only):
 *   --telemetry-dir DIR  also collect metrics and write, per workload,
 *                        DIR/<name>.trace.json (Chrome trace),
 *                        DIR/<name>.metrics.jsonl, and
 *                        DIR/<name>.metrics.prom.
 *   --steps N            traced training steps (default 4).
 *   --workloads a,b,c    subset of suite names (default: all).
 */
#include <filesystem>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/export.h"
#include "analysis/op_profile.h"
#include "core/suite.h"
#include "core/table.h"
#include "telemetry/exporters.h"
#include "telemetry/metrics.h"

namespace {

std::vector<std::string>
SplitCsv(const std::string& csv)
{
    std::vector<std::string> out;
    std::istringstream in(csv);
    std::string item;
    while (std::getline(in, item, ',')) {
        if (!item.empty()) {
            out.push_back(item);
        }
    }
    return out;
}

}  // namespace

int
main(int argc, char** argv)
{
    using namespace fathom;
    using core::ConsoleTable;
    using core::FormatPercent;
    using graph::AllOpClasses;
    using graph::OpClass;
    using graph::OpClassName;

    std::string telemetry_dir;
    int train_steps = 4;
    std::vector<std::string> names = core::SuiteNames();
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                throw std::invalid_argument(arg + " needs a value");
            }
            return argv[++i];
        };
        if (arg == "--telemetry-dir") {
            telemetry_dir = value();
        } else if (arg == "--steps") {
            train_steps = std::stoi(value());
        } else if (arg == "--workloads") {
            names = SplitCsv(value());
        } else {
            std::cerr << "unknown flag: " << arg << "\n";
            return 2;
        }
    }

    std::cout << "=== Figure 3: execution-time breakdown by op class ===\n"
              << "clock: wall (single CPU core); training profiles; rows "
                 "sum to ~100% (Control excluded)\n\n";

    core::SuiteRunOptions options;
    options.warmup_steps = 1;
    options.train_steps = train_steps;
    options.infer_steps = 0;
    options.telemetry = !telemetry_dir.empty();
    if (!telemetry_dir.empty()) {
        std::filesystem::create_directories(telemetry_dir);
    }

    ConsoleTable table;
    {
        std::vector<std::string> header = {"workload"};
        for (OpClass c : AllOpClasses()) {
            if (c == OpClass::kControl) {
                continue;
            }
            header.push_back(OpClassName(c));
        }
        table.SetHeader(header);
    }

    std::vector<std::pair<std::string, analysis::OpProfile>> profiles;
    for (const auto& name : names) {
        if (!telemetry_dir.empty()) {
            telemetry::MetricsRegistry::Global().ResetAll();
        }
        const auto traces = core::RunAndTrace(name, options);
        profiles.emplace_back(
            name, analysis::WallProfile(traces.training,
                                        traces.warmup_steps));
        if (!telemetry_dir.empty()) {
            const auto snapshot =
                telemetry::MetricsRegistry::Global().Snapshot();
            const std::string base = telemetry_dir + "/" + name;
            analysis::WriteFile(base + ".trace.json",
                                analysis::TraceToChromeJson(traces.training));
            analysis::WriteFile(base + ".metrics.jsonl",
                                telemetry::MetricsToJsonl(snapshot));
            analysis::WriteFile(base + ".metrics.prom",
                                telemetry::MetricsToPrometheus(snapshot));
            std::cout << "[telemetry] wrote " << base
                      << ".{trace.json,metrics.jsonl,metrics.prom}\n";
        }
    }

    for (const auto& [name, profile] : profiles) {
        std::vector<std::string> row = {name};
        for (OpClass c : AllOpClasses()) {
            if (c == OpClass::kControl) {
                continue;
            }
            const double f = profile.ClassFraction(c);
            row.push_back(f >= 0.005 ? FormatPercent(f) : ".");
        }
        table.AddRow(row);
    }
    std::cout << table.Render() << "\n";

    // Per-op-type detail (>= 1% of time, as the paper's heatmap).
    std::cout << "--- per-op-type detail (>= 1% of workload time) ---\n";
    for (const auto& [name, profile] : profiles) {
        std::cout << name << ": ";
        bool first = true;
        for (const auto& [type, fraction] : profile.SortedFractions()) {
            if (fraction < 0.01) {
                break;
            }
            std::cout << (first ? "" : ", ") << type << " "
                      << FormatPercent(fraction);
            first = false;
        }
        std::cout << "\n";
    }

    // The Sec. V-B longitudinal claim: FC time share falls across the
    // ILSVRC winners alexnet -> vgg -> residual.
    std::cout << "\n--- Sec. V-B longitudinal comparison (ILSVRC winners) "
                 "---\n";
    for (const auto& [name, profile] : profiles) {
        if (name == "alexnet" || name == "vgg" || name == "residual") {
            std::cout << name << ": MatrixOps (FC) share = "
                      << FormatPercent(
                             profile.ClassFraction(OpClass::kMatrixOps))
                      << ", Convolution share = "
                      << FormatPercent(
                             profile.ClassFraction(OpClass::kConvolution))
                      << "\n";
        }
    }
    return 0;
}
