/**
 * @file
 * Reproduces Figure 3: breakdown of execution time by operation class
 * for each Fathom workload (the heatmap), plus the per-op-type detail
 * behind it.
 *
 * Expected shapes from the paper:
 *  - conv nets (alexnet/vgg/residual/deepq) dominated by Convolution;
 *  - the FC share *shrinks* across alexnet -> vgg -> residual
 *    (the ILSVRC longitudinal comparison of Sec. V-B);
 *  - speech almost entirely MatMul plus the CTC loss;
 *  - seq2seq shows LSTM elementwise arithmetic and attention
 *    data movement;
 *  - autoenc shows a visible RandomSampling component.
 */
#include <iostream>

#include "analysis/op_profile.h"
#include "core/suite.h"
#include "core/table.h"

int
main()
{
    using namespace fathom;
    using core::ConsoleTable;
    using core::FormatPercent;
    using graph::AllOpClasses;
    using graph::OpClass;
    using graph::OpClassName;

    std::cout << "=== Figure 3: execution-time breakdown by op class ===\n"
              << "clock: wall (single CPU core); training profiles; rows "
                 "sum to ~100% (Control excluded)\n\n";

    core::SuiteRunOptions options;
    options.warmup_steps = 1;
    options.train_steps = 4;
    options.infer_steps = 0;

    ConsoleTable table;
    {
        std::vector<std::string> header = {"workload"};
        for (OpClass c : AllOpClasses()) {
            if (c == OpClass::kControl) {
                continue;
            }
            header.push_back(OpClassName(c));
        }
        table.SetHeader(header);
    }

    std::vector<std::pair<std::string, analysis::OpProfile>> profiles;
    for (const auto& name : core::SuiteNames()) {
        const auto traces = core::RunAndTrace(name, options);
        profiles.emplace_back(
            name, analysis::WallProfile(traces.training,
                                        traces.warmup_steps));
    }

    for (const auto& [name, profile] : profiles) {
        std::vector<std::string> row = {name};
        for (OpClass c : AllOpClasses()) {
            if (c == OpClass::kControl) {
                continue;
            }
            const double f = profile.ClassFraction(c);
            row.push_back(f >= 0.005 ? FormatPercent(f) : ".");
        }
        table.AddRow(row);
    }
    std::cout << table.Render() << "\n";

    // Per-op-type detail (>= 1% of time, as the paper's heatmap).
    std::cout << "--- per-op-type detail (>= 1% of workload time) ---\n";
    for (const auto& [name, profile] : profiles) {
        std::cout << name << ": ";
        bool first = true;
        for (const auto& [type, fraction] : profile.SortedFractions()) {
            if (fraction < 0.01) {
                break;
            }
            std::cout << (first ? "" : ", ") << type << " "
                      << FormatPercent(fraction);
            first = false;
        }
        std::cout << "\n";
    }

    // The Sec. V-B longitudinal claim: FC time share falls across the
    // ILSVRC winners alexnet -> vgg -> residual.
    std::cout << "\n--- Sec. V-B longitudinal comparison (ILSVRC winners) "
                 "---\n";
    for (const auto& [name, profile] : profiles) {
        if (name == "alexnet" || name == "vgg" || name == "residual") {
            std::cout << name << ": MatrixOps (FC) share = "
                      << FormatPercent(
                             profile.ClassFraction(OpClass::kMatrixOps))
                      << ", Convolution share = "
                      << FormatPercent(
                             profile.ClassFraction(OpClass::kConvolution))
                      << "\n";
        }
    }
    return 0;
}
