/**
 * @file
 * Reproduces Figure 1 and the Sec. V-A framework-overhead claim.
 *
 * Fig. 1 shows that sampling an operation's execution time across the
 * life of a program yields a stationary, low-variance distribution.
 * Here we train two contrasting workloads for many steps, then print
 * per-op-type stationarity statistics (coefficient of variation and
 * first-half/second-half drift). The paper's companion claim — "
 * typically less than 1-2% of the total runtime is spent outside of
 * operations" — is measured the same way TensorFlow's authors did:
 * step wall time minus summed op time.
 */
#include <iostream>

#include "analysis/op_profile.h"
#include "analysis/stationarity.h"
#include "core/suite.h"
#include "core/table.h"

int
main()
{
    using namespace fathom;
    using core::ConsoleTable;
    using core::FormatDouble;
    using core::FormatPercent;

    std::cout << "=== Figure 1: stationarity of op execution times ===\n"
              << "clock: wall (single CPU core)\n\n";

    for (const std::string name : {"vgg", "seq2seq"}) {
        core::SuiteRunOptions options;
        options.warmup_steps = 2;
        options.train_steps = 24;
        options.infer_steps = 0;
        const auto traces = core::RunAndTrace(name, options);

        const auto stats = analysis::ComputeStationarity(
            traces.training, traces.warmup_steps);

        // Show the heaviest op types (where stationarity matters).
        auto profile =
            analysis::WallProfile(traces.training, traces.warmup_steps);
        const auto heavy = profile.SortedFractions();

        std::cout << "--- " << name << " (24 training steps) ---\n";
        ConsoleTable table;
        table.SetHeader({"op type", "share", "mean ms/step", "stddev ms",
                         "CV", "half-drift"});
        int shown = 0;
        for (const auto& [type, fraction] : heavy) {
            if (shown++ >= 8) {
                break;
            }
            for (const auto& s : stats) {
                if (s.op_type == type) {
                    table.AddRow({type, FormatPercent(fraction),
                                  FormatDouble(s.mean * 1e3),
                                  FormatDouble(s.stddev * 1e3),
                                  FormatDouble(s.cv, 3),
                                  FormatDouble(s.drift(), 3)});
                }
            }
        }
        std::cout << table.Render();

        const double overhead = analysis::FrameworkOverheadFraction(
            traces.training, traces.warmup_steps);
        std::cout << "framework overhead (time outside op kernels): "
                  << FormatPercent(overhead, 2)
                  << "  (paper: typically < 1-2%)\n\n";
    }

    std::cout << "Expected shape: CV well below 1 and half-drift near 0 for "
                 "the heavy op types\n(stationary, low-variance "
                 "distributions), and overhead in the low single digits.\n";
    return 0;
}
