/**
 * @file
 * Ablation: the graph rewrite framework (graph/rewrite), the framework
 * trait the paper lists among the convergent design decisions of
 * TF/Theano/Caffe (Sec. III-C).
 *
 * For each workload, sweeps the production patterns cumulatively —
 * as written, +constant folding, +CSE, +transpose folding,
 * +elementwise fusion, and all (adding in-place) — and reports
 * executed ops, wall time, allocator requests, and the live-byte
 * high-water mark per inference step. Results are bit-identical at
 * every point of the sweep (the test battery enforces it); the deltas
 * show where each pattern pays: CSE on seq2seq's re-projected
 * attention, fusion/in-place on the elementwise-heavy tails of every
 * model.
 *
 * Flags:
 *   --workloads=a,b,c  subset to run (default: the whole suite)
 *   --steps=N          measured inference steps per config (default 4)
 */
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/suite.h"
#include "core/table.h"
#include "graph/rewrite/rewrite.h"
#include "workloads/workload.h"

namespace {

struct SweepPoint {
    std::string label;
    bool enabled = true;  ///< graph rewrites on at all.
    fathom::graph::rewrite::RewriteOptions opts;
};

std::vector<SweepPoint>
BuildSweep()
{
    using fathom::graph::rewrite::RewriteOptions;
    RewriteOptions off;
    off.constant_folding = false;
    off.common_subexpression = false;
    off.transpose_folding = false;
    off.elementwise_fusion = false;
    off.inplace = false;

    std::vector<SweepPoint> sweep;
    sweep.push_back({"as written", false, off});
    RewriteOptions cumulative = off;
    cumulative.constant_folding = true;
    sweep.push_back({"+fold", true, cumulative});
    cumulative.common_subexpression = true;
    sweep.push_back({"+cse", true, cumulative});
    cumulative.transpose_folding = true;
    sweep.push_back({"+tfold", true, cumulative});
    cumulative.elementwise_fusion = true;
    sweep.push_back({"+fusion", true, cumulative});
    cumulative.inplace = true;
    sweep.push_back({"all (+inplace)", true, cumulative});
    return sweep;
}

struct Measurement {
    std::size_t ops = 0;
    double ms_per_step = 0.0;
    std::uint64_t allocations = 0;
    std::uint64_t peak_bytes = 0;
};

Measurement
MeasureConfig(const std::string& name, const SweepPoint& point, int steps)
{
    using namespace fathom;
    auto workload = workloads::WorkloadRegistry::Global().Create(name);
    workloads::WorkloadConfig config;
    config.seed = 1;
    config.graph_rewrites = point.enabled;
    config.rewrites = point.opts;
    workload->Setup(config);

    workload->RunInference(2);  // plan + warm the buffer pool.
    const auto result = workload->RunInference(steps);

    Measurement m;
    const auto& step = workload->session().tracer().steps().back();
    m.ops = step.records.size();
    m.ms_per_step = result.wall_seconds / steps * 1e3;
    m.allocations = step.memory.allocations;
    m.peak_bytes = step.memory.peak_bytes;
    return m;
}

}  // namespace

int
main(int argc, char** argv)
{
    using namespace fathom;
    using core::ConsoleTable;
    using core::FormatDouble;

    int steps = 4;
    std::vector<std::string> names;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--steps=", 0) == 0) {
            steps = std::stoi(arg.substr(8));
        } else if (arg.rfind("--workloads=", 0) == 0) {
            std::stringstream list(arg.substr(12));
            std::string item;
            while (std::getline(list, item, ',')) {
                if (!item.empty()) {
                    names.push_back(item);
                }
            }
        } else {
            std::cerr << "unknown flag: " << arg << "\n";
            return 1;
        }
    }
    if (names.empty()) {
        names = core::SuiteNames();
    }

    std::cout << "=== Ablation: graph rewrite framework ===\n"
              << "(cumulative pattern sweep; inference steps; all points "
                 "bit-identical)\n\n";

    workloads::RegisterAllWorkloads();
    const auto sweep = BuildSweep();

    ConsoleTable table;
    table.SetHeader({"workload", "config", "ops/step", "ms/step",
                     "allocs/step", "peak MiB"});
    int fusion_inplace_wins = 0;
    for (const auto& name : names) {
        Measurement baseline;
        Measurement with_tfold;
        for (std::size_t i = 0; i < sweep.size(); ++i) {
            const Measurement m = MeasureConfig(name, sweep[i], steps);
            if (i == 0) {
                baseline = m;
            }
            if (sweep[i].label == "+tfold") {
                with_tfold = m;
            }
            if (sweep[i].label == "all (+inplace)") {
                // The fusion/in-place payoff is measured against the
                // last pre-fusion point, so folding/CSE wins don't
                // mask it: fewer kernel launches or fewer allocator
                // requests per step.
                if (m.ops < with_tfold.ops ||
                    m.allocations < with_tfold.allocations) {
                    ++fusion_inplace_wins;
                }
            }
            table.AddRow(
                {i == 0 ? name : "", sweep[i].label,
                 std::to_string(m.ops), FormatDouble(m.ms_per_step, 2),
                 std::to_string(m.allocations),
                 FormatDouble(static_cast<double>(m.peak_bytes) /
                                  (1024.0 * 1024.0),
                              1)});
        }
    }
    std::cout << table.Render() << "\n";

    std::cout << "fusion/in-place reduced per-step kernel launches or "
                 "allocator requests on "
              << fusion_inplace_wins << "/" << names.size()
              << " workloads\n\n";
    std::cout << "Profiles in the figure benches are collected with "
                 "rewrites OFF so the op mix\nreflects the model as "
                 "written (matching how the paper instruments TF graphs "
                 "before\nits internal placement/pruning); throughput "
                 "runs default them ON.\n";
    return 0;
}
