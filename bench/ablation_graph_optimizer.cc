/**
 * @file
 * Ablation: the application-level graph optimizer (constant folding +
 * CSE), the framework trait the paper lists among the convergent
 * design decisions of TF/Theano/Caffe (Sec. III-C).
 *
 * For each workload, compares executed ops per step and wall time per
 * step with the optimizer off (the figures' configuration — profiles
 * reflect the graph as written) and on. Results must be numerically
 * identical; the op-count reduction shows how much redundancy the
 * model-construction style left behind (seq2seq's per-step attention
 * re-projections are the standout).
 */
#include <iostream>

#include "core/suite.h"
#include "core/table.h"
#include "workloads/workload.h"

int
main()
{
    using namespace fathom;
    using core::ConsoleTable;
    using core::FormatDouble;

    std::cout << "=== Ablation: application-level graph optimizer ===\n"
              << "(constant folding + common-subexpression elimination; "
                 "inference steps)\n\n";

    workloads::RegisterAllWorkloads();

    ConsoleTable table;
    table.SetHeader({"workload", "ops/step (as written)",
                     "ops/step (optimized)", "reduction", "ms/step off",
                     "ms/step on"});
    for (const auto& name : core::SuiteNames()) {
        auto w = workloads::WorkloadRegistry::Global().Create(name);
        workloads::WorkloadConfig config;
        config.seed = 1;
        w->Setup(config);

        w->RunInference(2);  // plan + warm.
        const auto baseline = w->RunInference(4);
        const std::size_t ops_off =
            w->session().tracer().steps().back().records.size();

        w->session().SetGraphOptimization(true);
        w->RunInference(2);
        const auto optimized = w->RunInference(4);
        const std::size_t ops_on =
            w->session().tracer().steps().back().records.size();

        table.AddRow(
            {name, std::to_string(ops_off), std::to_string(ops_on),
             FormatDouble(100.0 * (1.0 - static_cast<double>(ops_on) /
                                             static_cast<double>(ops_off)),
                          1) +
                 "%",
             FormatDouble(baseline.wall_seconds / 4 * 1e3, 2),
             FormatDouble(optimized.wall_seconds / 4 * 1e3, 2)});
    }
    std::cout << table.Render() << "\n";

    std::cout << "Profiles in the figure benches are collected with the "
                 "optimizer OFF so the op mix\nreflects the model as "
                 "written (matching how the paper instruments TF graphs "
                 "before\nits internal placement/pruning).\n";
    return 0;
}
