/**
 * @file
 * google-benchmark microbenchmarks for the primitive kernels — the
 * supporting data behind every figure: these are the "heavy
 * operations" whose costs dominate the workload profiles.
 */
#include <benchmark/benchmark.h>

#include "kernels/conv2d.h"
#include "kernels/ctc.h"
#include "kernels/elementwise.h"
#include "kernels/matmul.h"
#include "kernels/pooling.h"
#include "kernels/reduction.h"
#include "parallel/thread_pool.h"
#include "tensor/rng.h"

namespace {

using namespace fathom;

Tensor
MakeTensor(const Shape& shape, std::uint64_t seed)
{
    Rng rng(seed);
    Tensor t(DType::kFloat32, shape);
    rng.FillNormal(&t, 0.0f, 1.0f);
    return t;
}

void
BM_MatMul(benchmark::State& state)
{
    const std::int64_t n = state.range(0);
    parallel::ThreadPool pool(1);
    const Tensor a = MakeTensor(Shape{n, n}, 1);
    const Tensor b = MakeTensor(Shape{n, n}, 2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            kernels::MatMul(a, b, false, false, pool));
    }
    state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void
BM_Conv2D(benchmark::State& state)
{
    const std::int64_t hw = state.range(0);
    const std::int64_t c = state.range(1);
    parallel::ThreadPool pool(1);
    const Tensor input = MakeTensor(Shape{1, hw, hw, c}, 3);
    const Tensor filter = MakeTensor(Shape{3, 3, c, c}, 4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(kernels::Conv2D(
            input, filter, 1, kernels::Padding::kSame, pool));
    }
    state.SetItemsProcessed(state.iterations() * 2 * hw * hw * 9 * c * c);
}
BENCHMARK(BM_Conv2D)->Args({16, 8})->Args({32, 8})->Args({32, 16})->Args({64, 16});

void
BM_Conv2DBackpropFilter(benchmark::State& state)
{
    const std::int64_t hw = state.range(0);
    parallel::ThreadPool pool(1);
    const Tensor input = MakeTensor(Shape{1, hw, hw, 8}, 5);
    const Shape filter_shape{3, 3, 8, 8};
    const Tensor grad = MakeTensor(Shape{1, hw, hw, 8}, 6);
    for (auto _ : state) {
        benchmark::DoNotOptimize(kernels::Conv2DBackpropFilter(
            input, filter_shape, grad, 1, kernels::Padding::kSame, pool));
    }
}
BENCHMARK(BM_Conv2DBackpropFilter)->Arg(16)->Arg(32);

void
BM_MaxPool(benchmark::State& state)
{
    parallel::ThreadPool pool(1);
    const Tensor input = MakeTensor(Shape{4, 64, 64, 16}, 7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            kernels::MaxPool(input, 2, 2, kernels::Padding::kValid, pool));
    }
}
BENCHMARK(BM_MaxPool);

void
BM_Softmax(benchmark::State& state)
{
    const std::int64_t rows = state.range(0);
    const std::int64_t cols = state.range(1);
    parallel::ThreadPool pool(1);
    const Tensor logits = MakeTensor(Shape{rows, cols}, 8);
    for (auto _ : state) {
        benchmark::DoNotOptimize(kernels::Softmax(logits, pool));
    }
}
BENCHMARK(BM_Softmax)->Args({64, 128})->Args({1024, 128})->Args({64, 10000});

void
BM_ElementwiseMulSameShape(benchmark::State& state)
{
    const std::int64_t n = state.range(0);
    parallel::ThreadPool pool(1);
    const Tensor a = MakeTensor(Shape{n}, 9);
    const Tensor b = MakeTensor(Shape{n}, 10);
    for (auto _ : state) {
        benchmark::DoNotOptimize(kernels::BinaryMap(
            a, b, [](float x, float y) { return x * y; }, pool));
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ElementwiseMulSameShape)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void
BM_ElementwiseMulBroadcast(benchmark::State& state)
{
    const std::int64_t n = state.range(0);
    parallel::ThreadPool pool(1);
    const Tensor a = MakeTensor(Shape{n, 64}, 11);
    const Tensor b = MakeTensor(Shape{64}, 12);
    for (auto _ : state) {
        benchmark::DoNotOptimize(kernels::BinaryMap(
            a, b, [](float x, float y) { return x * y; }, pool));
    }
}
BENCHMARK(BM_ElementwiseMulBroadcast)->Arg(64)->Arg(1024);

void
BM_ReduceSumLastAxis(benchmark::State& state)
{
    parallel::ThreadPool pool(1);
    const Tensor t = MakeTensor(Shape{256, 256}, 13);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            kernels::Reduce(t, kernels::ReduceOp::kSum, {1}, false, pool));
    }
}
BENCHMARK(BM_ReduceSumLastAxis);

void
BM_CtcLoss(benchmark::State& state)
{
    const std::int64_t time = state.range(0);
    const Tensor logits = MakeTensor(Shape{time, 28}, 14);
    std::vector<std::int32_t> labels;
    for (std::int64_t i = 0; i < time / 3; ++i) {
        labels.push_back(static_cast<std::int32_t>(1 + (i % 27)));
    }
    parallel::ThreadPool pool(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(kernels::CtcLoss(logits, labels, 0, pool));
    }
}
BENCHMARK(BM_CtcLoss)->Arg(30)->Arg(60)->Arg(120);

void
BM_MatMulThreadSweep(benchmark::State& state)
{
    const int threads = static_cast<int>(state.range(0));
    parallel::ThreadPool pool(threads);
    const Tensor a = MakeTensor(Shape{256, 256}, 15);
    const Tensor b = MakeTensor(Shape{256, 256}, 16);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            kernels::MatMul(a, b, false, false, pool));
    }
}
BENCHMARK(BM_MatMulThreadSweep)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
