/**
 * @file
 * google-benchmark microbenchmarks for the primitive kernels — the
 * supporting data behind every figure: these are the "heavy
 * operations" whose costs dominate the workload profiles.
 */
#include <benchmark/benchmark.h>

#include <chrono>

#include "kernels/conv2d.h"
#include "kernels/ctc.h"
#include "kernels/elementwise.h"
#include "kernels/gemm.h"
#include "kernels/matmul.h"
#include "kernels/pooling.h"
#include "kernels/reduction.h"
#include "parallel/thread_pool.h"
#include "tensor/rng.h"

namespace {

using namespace fathom;

Tensor
MakeTensor(const Shape& shape, std::uint64_t seed)
{
    Rng rng(seed);
    Tensor t(DType::kFloat32, shape);
    rng.FillNormal(&t, 0.0f, 1.0f);
    return t;
}

// ---- GEMM engine sweep -----------------------------------------------------

/**
 * Measures this machine's single-thread f32 FMA peak with a
 * register-resident loop shaped like the engine's 6x16 micro-kernel
 * step. The GEMM benchmarks report their throughput as a fraction of
 * this, so "good" is machine-relative rather than an absolute number.
 */
double
MeasuredPeakGflops()
{
    static const double peak = [] {
#if defined(__GNUC__) || defined(__clang__)
        // Same vector-extension form as the engine's micro-kernel
        // (src/kernels/gemm.cc): a plain scalar triple loop trips
        // GCC's SLP vectorizer into shuffle-bound code and would
        // under-report peak by an order of magnitude. Eight
        // independent accumulator chains cover FMA latency.
        typedef float Vf16 __attribute__((vector_size(sizeof(float) * 16)));
        constexpr int kAcc = 8;
        constexpr int kLanes = 16;
        Vf16 acc[kAcc] = {};
        Vf16 x;
        float y[kAcc];
        for (int j = 0; j < kLanes; ++j) {
            x[j] = 1.0f + 1e-6f * static_cast<float>(j);
        }
        for (int r = 0; r < kAcc; ++r) {
            y[r] = 1.0f - 1e-6f * static_cast<float>(r);
        }
        const auto start = std::chrono::steady_clock::now();
        std::int64_t reps = 0;
        double seconds = 0.0;
        do {
            for (int rep = 0; rep < 16384; ++rep) {
                for (int r = 0; r < kAcc; ++r) {
                    acc[r] += y[r] * x;
                }
            }
            reps += 16384;
            seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
        } while (seconds < 0.05);
        benchmark::DoNotOptimize(acc);
        return 2.0 * kAcc * kLanes * static_cast<double>(reps) / seconds *
               1e-9;
#else
        constexpr int kAcc = 8;
        constexpr int kLanes = 16;
        alignas(64) float acc[kAcc][kLanes] = {};
        alignas(64) float x[kLanes];
        float y[kAcc];
        for (int j = 0; j < kLanes; ++j) {
            x[j] = 1.0f + 1e-6f * static_cast<float>(j);
        }
        for (int r = 0; r < kAcc; ++r) {
            y[r] = 1.0f - 1e-6f * static_cast<float>(r);
        }
        const auto start = std::chrono::steady_clock::now();
        std::int64_t reps = 0;
        double seconds = 0.0;
        do {
            for (int rep = 0; rep < 16384; ++rep) {
                for (int r = 0; r < kAcc; ++r) {
                    for (int j = 0; j < kLanes; ++j) {
                        acc[r][j] += y[r] * x[j];
                    }
                }
            }
            reps += 16384;
            seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
        } while (seconds < 0.05);
        benchmark::DoNotOptimize(acc);
        return 2.0 * kAcc * kLanes * static_cast<double>(reps) / seconds *
               1e-9;
#endif
    }();
    return peak;
}

void
SetGemmCounters(benchmark::State& state, double flops_per_iter)
{
    const double total = flops_per_iter * static_cast<double>(state.iterations());
    state.counters["gflops"] =
        benchmark::Counter(total * 1e-9, benchmark::Counter::kIsRate);
    state.counters["frac_peak"] = benchmark::Counter(
        total / (MeasuredPeakGflops() * 1e9), benchmark::Counter::kIsRate);
}

/**
 * The pre-engine MatMul inner loop (i-k-j, row-major, with the
 * since-removed zero-operand skip), retained verbatim as the in-repo
 * baseline that quantifies the engine's speedup.
 */
Tensor
NaiveMatMulBaseline(const Tensor& a, const Tensor& b)
{
    const std::int64_t m = a.shape().dim(0);
    const std::int64_t k = a.shape().dim(1);
    const std::int64_t n = b.shape().dim(1);
    Tensor c = Tensor::Zeros(Shape{m, n});
    const float* pa = a.data<float>();
    const float* pb = b.data<float>();
    float* pc = c.data<float>();
    for (std::int64_t i = 0; i < m; ++i) {
        float* crow = pc + i * n;
        for (std::int64_t kk = 0; kk < k; ++kk) {
            const float av = pa[i * k + kk];
            if (av == 0.0f) {
                continue;
            }
            const float* brow = pb + kk * n;
            for (std::int64_t j = 0; j < n; ++j) {
                crow[j] += av * brow[j];
            }
        }
    }
    return c;
}

void
BM_GemmSquare(benchmark::State& state)
{
    const std::int64_t n = state.range(0);
    parallel::ThreadPool pool(1);
    const Tensor a = MakeTensor(Shape{n, n}, 1);
    const Tensor b = MakeTensor(Shape{n, n}, 2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            kernels::MatMul(a, b, false, false, pool));
    }
    const double flops = 2.0 * static_cast<double>(n) * n * n;
    state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
    SetGemmCounters(state, flops);
}
BENCHMARK(BM_GemmSquare)->Arg(64)->Arg(128)->Arg(256)->Arg(384)->Arg(512);

void
BM_GemmPrePRBaseline(benchmark::State& state)
{
    const std::int64_t n = state.range(0);
    const Tensor a = MakeTensor(Shape{n, n}, 1);
    const Tensor b = MakeTensor(Shape{n, n}, 2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(NaiveMatMulBaseline(a, b));
    }
    const double flops = 2.0 * static_cast<double>(n) * n * n;
    state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
    SetGemmCounters(state, flops);
}
BENCHMARK(BM_GemmPrePRBaseline)->Arg(256)->Arg(512);

void
BM_GemmTranspose(benchmark::State& state)
{
    const bool ta = state.range(0) != 0;
    const bool tb = state.range(1) != 0;
    constexpr std::int64_t n = 256;
    parallel::ThreadPool pool(1);
    const Tensor a = MakeTensor(Shape{n, n}, 1);
    const Tensor b = MakeTensor(Shape{n, n}, 2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(kernels::MatMul(a, b, ta, tb, pool));
    }
    SetGemmCounters(state, 2.0 * static_cast<double>(n) * n * n);
}
BENCHMARK(BM_GemmTranspose)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({0, 1})
    ->Args({1, 1});

void
BM_GemmWorkloadShaped(benchmark::State& state)
{
    // (m, k, n) triples the suite actually runs: a batch-4
    // fully-connected layer (skinny M), its weight-gradient product
    // (skinny N), an im2col conv GEMM (tall M, small N), and a
    // recurrent-cell block.
    const std::int64_t m = state.range(0);
    const std::int64_t k = state.range(1);
    const std::int64_t n = state.range(2);
    parallel::ThreadPool pool(1);
    const Tensor a = MakeTensor(Shape{m, k}, 1);
    const Tensor b = MakeTensor(Shape{k, n}, 2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            kernels::MatMul(a, b, false, false, pool));
    }
    SetGemmCounters(state,
                    2.0 * static_cast<double>(m) * static_cast<double>(k) *
                        static_cast<double>(n));
}
BENCHMARK(BM_GemmWorkloadShaped)
    ->Args({4, 1024, 256})
    ->Args({1024, 256, 4})
    ->Args({4096, 288, 48})
    ->Args({256, 512, 512});

void
BM_GemmThreadSweep(benchmark::State& state)
{
    const int threads = static_cast<int>(state.range(0));
    parallel::ThreadPool pool(threads);
    const Tensor a = MakeTensor(Shape{512, 512}, 1);
    const Tensor b = MakeTensor(Shape{512, 512}, 2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            kernels::MatMul(a, b, false, false, pool));
    }
    SetGemmCounters(state, 2.0 * 512.0 * 512.0 * 512.0);
}
BENCHMARK(BM_GemmThreadSweep)->Arg(1)->Arg(2)->Arg(4);

void
BM_Conv2D(benchmark::State& state)
{
    const std::int64_t hw = state.range(0);
    const std::int64_t c = state.range(1);
    parallel::ThreadPool pool(1);
    const Tensor input = MakeTensor(Shape{1, hw, hw, c}, 3);
    const Tensor filter = MakeTensor(Shape{3, 3, c, c}, 4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(kernels::Conv2D(
            input, filter, 1, kernels::Padding::kSame, pool));
    }
    state.SetItemsProcessed(state.iterations() * 2 * hw * hw * 9 * c * c);
}
BENCHMARK(BM_Conv2D)->Args({16, 8})->Args({32, 8})->Args({32, 16})->Args({64, 16});

void
BM_Conv2DBackpropFilter(benchmark::State& state)
{
    const std::int64_t hw = state.range(0);
    parallel::ThreadPool pool(1);
    const Tensor input = MakeTensor(Shape{1, hw, hw, 8}, 5);
    const Shape filter_shape{3, 3, 8, 8};
    const Tensor grad = MakeTensor(Shape{1, hw, hw, 8}, 6);
    for (auto _ : state) {
        benchmark::DoNotOptimize(kernels::Conv2DBackpropFilter(
            input, filter_shape, grad, 1, kernels::Padding::kSame, pool));
    }
}
BENCHMARK(BM_Conv2DBackpropFilter)->Arg(16)->Arg(32);

void
BM_MaxPool(benchmark::State& state)
{
    parallel::ThreadPool pool(1);
    const Tensor input = MakeTensor(Shape{4, 64, 64, 16}, 7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            kernels::MaxPool(input, 2, 2, kernels::Padding::kValid, pool));
    }
}
BENCHMARK(BM_MaxPool);

void
BM_Softmax(benchmark::State& state)
{
    const std::int64_t rows = state.range(0);
    const std::int64_t cols = state.range(1);
    parallel::ThreadPool pool(1);
    const Tensor logits = MakeTensor(Shape{rows, cols}, 8);
    for (auto _ : state) {
        benchmark::DoNotOptimize(kernels::Softmax(logits, pool));
    }
}
BENCHMARK(BM_Softmax)->Args({64, 128})->Args({1024, 128})->Args({64, 10000});

void
BM_ElementwiseMulSameShape(benchmark::State& state)
{
    const std::int64_t n = state.range(0);
    parallel::ThreadPool pool(1);
    const Tensor a = MakeTensor(Shape{n}, 9);
    const Tensor b = MakeTensor(Shape{n}, 10);
    for (auto _ : state) {
        benchmark::DoNotOptimize(kernels::BinaryMap(
            a, b, [](float x, float y) { return x * y; }, pool));
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ElementwiseMulSameShape)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void
BM_ElementwiseMulBroadcast(benchmark::State& state)
{
    const std::int64_t n = state.range(0);
    parallel::ThreadPool pool(1);
    const Tensor a = MakeTensor(Shape{n, 64}, 11);
    const Tensor b = MakeTensor(Shape{64}, 12);
    for (auto _ : state) {
        benchmark::DoNotOptimize(kernels::BinaryMap(
            a, b, [](float x, float y) { return x * y; }, pool));
    }
}
BENCHMARK(BM_ElementwiseMulBroadcast)->Arg(64)->Arg(1024);

void
BM_ReduceSumLastAxis(benchmark::State& state)
{
    parallel::ThreadPool pool(1);
    const Tensor t = MakeTensor(Shape{256, 256}, 13);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            kernels::Reduce(t, kernels::ReduceOp::kSum, {1}, false, pool));
    }
}
BENCHMARK(BM_ReduceSumLastAxis);

void
BM_CtcLoss(benchmark::State& state)
{
    const std::int64_t time = state.range(0);
    const Tensor logits = MakeTensor(Shape{time, 28}, 14);
    std::vector<std::int32_t> labels;
    for (std::int64_t i = 0; i < time / 3; ++i) {
        labels.push_back(static_cast<std::int32_t>(1 + (i % 27)));
    }
    parallel::ThreadPool pool(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(kernels::CtcLoss(logits, labels, 0, pool));
    }
}
BENCHMARK(BM_CtcLoss)->Arg(30)->Arg(60)->Arg(120);

void
BM_MatMulThreadSweep(benchmark::State& state)
{
    const int threads = static_cast<int>(state.range(0));
    parallel::ThreadPool pool(threads);
    const Tensor a = MakeTensor(Shape{256, 256}, 15);
    const Tensor b = MakeTensor(Shape{256, 256}, 16);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            kernels::MatMul(a, b, false, false, pool));
    }
}
BENCHMARK(BM_MatMulThreadSweep)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
