/**
 * @file
 * Static-verification overhead sweep.
 *
 * Measures what the plan-build verifier costs where it actually runs:
 * session construction (Setup + the first training step, whose plan
 * cache miss triggers structural validation, whole-graph shape/dtype
 * inference, and the aliasing/liveness/determinism lints). For one
 * convolutional and one recurrent workload it interleaves
 * verification-off and verification-on constructions across
 * repetitions and keeps each mode's best time, so OS noise hits both
 * modes equally. The budget (asserted at small shapes by
 * test_graph_verify.cc's VerifyOverheadTest) is <= ~1% — verification
 * is a one-time per-plan cost, amortized to nothing across steps.
 */
#include <algorithm>
#include <chrono>
#include <iomanip>
#include <iostream>
#include <string>

#include "workloads/workload.h"

namespace {

using namespace fathom;

double
ConstructSeconds(const std::string& name, std::int64_t batch, bool verify)
{
    workloads::WorkloadConfig config;
    config.batch_size = batch;
    config.tracing = false;
    config.graph_verification = verify;
    auto workload = workloads::WorkloadRegistry::Global().Create(name);
    const auto start = std::chrono::steady_clock::now();
    workload->Setup(config);
    workload->RunTraining(1);  // first plan build: the verify site.
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

void
SweepWorkload(const std::string& name, std::int64_t batch, int reps)
{
    double off_best = 1e300;
    double on_best = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
        off_best = std::min(off_best,
                            ConstructSeconds(name, batch, /*verify=*/false));
        on_best = std::min(on_best,
                           ConstructSeconds(name, batch, /*verify=*/true));
    }
    const double overhead_pct =
        off_best > 0.0 ? (on_best / off_best - 1.0) * 100.0 : 0.0;
    std::cout << name << " (batch " << batch << ", best of " << reps
              << "):\n"
              << std::fixed << std::setprecision(2) << "  verify off  "
              << std::setw(10) << off_best * 1e3 << " ms\n"
              << "  verify on   " << std::setw(10) << on_best * 1e3
              << " ms" << std::showpos << std::setw(8) << overhead_pct
              << "%" << std::noshowpos << "\n\n";
}

}  // namespace

int
main()
{
    workloads::RegisterAllWorkloads();
    // Warm code paths and the allocator before timing anything.
    ConstructSeconds("alexnet", 2, true);

    std::cout << "=== static-verification overhead sweep ===\n"
              << "session construction (setup + first plan build); "
                 "budget: <= ~1%\n\n";
    SweepWorkload("alexnet", /*batch=*/4, /*reps=*/5);
    SweepWorkload("seq2seq", /*batch=*/8, /*reps=*/5);
    return 0;
}
