/**
 * @file
 * Ablation: how stable are the Fig. 3 operation-class profiles under
 * batch size?
 *
 * The reproduction scales model dimensions and batch sizes down from
 * the originals (DESIGN.md). This bench verifies the profiles used for
 * Figs. 2-4 are not artifacts of the default batch: the dominant op
 * class of each workload must be invariant as the batch sweeps 2x in
 * each direction.
 */
#include <iostream>

#include "analysis/op_profile.h"
#include "core/suite.h"
#include "core/table.h"

int
main()
{
    using namespace fathom;
    using core::ConsoleTable;
    using core::FormatPercent;
    using graph::OpClass;
    using graph::OpClassName;

    std::cout << "=== Ablation: profile stability under batch size ===\n"
              << "clock: wall; dominant op class share per batch size\n\n";

    const struct {
        const char* name;
        std::int64_t batches[3];
    } cases[] = {
        {"alexnet", {2, 4, 8}},
        {"seq2seq", {2, 4, 8}},
        {"memnet", {4, 8, 16}},
        {"autoenc", {8, 16, 32}},
    };

    for (const auto& c : cases) {
        ConsoleTable table;
        table.SetHeader({"batch", "dominant class", "share",
                         "types for 90%"});
        std::string first_class;
        bool stable = true;
        for (const std::int64_t batch : c.batches) {
            core::SuiteRunOptions options;
            options.warmup_steps = 1;
            options.train_steps = 3;
            options.infer_steps = 0;
            options.batch_size = batch;
            const auto traces = core::RunAndTrace(c.name, options);
            const auto profile =
                analysis::WallProfile(traces.training, traces.warmup_steps);

            OpClass dominant = OpClass::kControl;
            double best = 0.0;
            for (OpClass cls : graph::AllOpClasses()) {
                if (profile.ClassFraction(cls) > best) {
                    best = profile.ClassFraction(cls);
                    dominant = cls;
                }
            }
            if (first_class.empty()) {
                first_class = OpClassName(dominant);
            } else if (first_class != OpClassName(dominant)) {
                stable = false;
            }
            table.AddRow({std::to_string(batch), OpClassName(dominant),
                          FormatPercent(best),
                          std::to_string(profile.TypesToCover(0.9))});
        }
        std::cout << "--- " << c.name << " ---\n"
                  << table.Render() << "dominant class stable across "
                  << "batch sizes: " << (stable ? "yes" : "NO") << "\n\n";
    }
    return 0;
}
