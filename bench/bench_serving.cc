/**
 * @file
 * Closed-loop serving load generator.
 *
 * For each (workload, client concurrency, latency budget, max batch)
 * configuration this spins up C client threads against one
 * ServingRuntime sharing one FrozenPlan; each client submits a request,
 * waits for its response, and immediately submits the next (closed
 * loop, the classic serving-benchmark shape: offered load tracks
 * achieved throughput, so the system is never driven into unbounded
 * queueing). Reported per configuration: QPS, client-observed p50/p99
 * latency decomposed into time-in-queue (the batcher's budget
 * guarantee) and execution time (batch formation -> response), and the
 * mean formed batch size from the telemetry registry. The queue/exec
 * split shows where each configuration's latency lives: batch-1 pays
 * in queueing (requests serialize behind each other), dynamic batching
 * pays a bounded queue wait to buy amortized execution.
 *
 * The headline comparison is max_batch=1 (no coalescing — every
 * request executes alone) against max_batch=8 under the same latency
 * budget: dynamic batching should win QPS at concurrency >= 8 because
 * a batched GEMM amortizes packing and weight traffic across rows.
 *
 *   bench_serving --workloads alexnet,vgg,deepq --concurrency 1,4,8 \
 *       --budgets-us 1000,5000 --max-batches 1,8 --requests 40 \
 *       --out-dir bench_out
 *
 * --out-dir writes the results table (serving_table.txt) and the
 * per-configuration serving metrics (metrics.jsonl) as CI artifacts.
 */
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serving/frozen_plan.h"
#include "serving/serving_runtime.h"
#include "telemetry/exporters.h"
#include "telemetry/metrics.h"
#include "workloads/workload.h"

namespace {

using namespace fathom;

struct Options {
    std::vector<std::string> workloads = {"alexnet", "vgg", "deepq"};
    std::vector<int> concurrency = {1, 4, 8};
    std::vector<std::int64_t> budgets_us = {1000, 5000};
    std::vector<std::int64_t> max_batches = {1, 8};
    int requests_per_client = 40;
    std::string out_dir;
};

std::vector<std::string>
SplitCsv(const std::string& csv)
{
    std::vector<std::string> out;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (!item.empty()) {
            out.push_back(item);
        }
    }
    return out;
}

Options
ParseArgs(int argc, char** argv)
{
    Options options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                throw std::runtime_error("missing value for " + arg);
            }
            return argv[++i];
        };
        if (arg == "--workloads") {
            options.workloads = SplitCsv(next());
        } else if (arg == "--concurrency") {
            options.concurrency.clear();
            for (const auto& v : SplitCsv(next())) {
                options.concurrency.push_back(std::stoi(v));
            }
        } else if (arg == "--budgets-us") {
            options.budgets_us.clear();
            for (const auto& v : SplitCsv(next())) {
                options.budgets_us.push_back(std::stoll(v));
            }
        } else if (arg == "--max-batches") {
            options.max_batches.clear();
            for (const auto& v : SplitCsv(next())) {
                options.max_batches.push_back(std::stoll(v));
            }
        } else if (arg == "--requests") {
            options.requests_per_client = std::stoi(next());
        } else if (arg == "--out-dir") {
            options.out_dir = next();
        } else {
            throw std::runtime_error("unknown argument: " + arg);
        }
    }
    return options;
}

struct ConfigResult {
    std::string workload;
    int clients = 0;
    std::int64_t budget_us = 0;
    std::int64_t max_batch = 0;
    double qps = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    double queue_p50_ms = 0.0;
    double queue_p99_ms = 0.0;
    double exec_p50_ms = 0.0;
    double exec_p99_ms = 0.0;
    double mean_batch = 0.0;
};

double
Percentile(std::vector<double> values, double p)
{
    if (values.empty()) {
        return 0.0;
    }
    std::sort(values.begin(), values.end());
    const auto rank = static_cast<std::size_t>(
        p * static_cast<double>(values.size() - 1) + 0.5);
    return values[std::min(rank, values.size() - 1)];
}

ConfigResult
RunConfig(const std::string& name,
          const std::shared_ptr<const serving::FrozenPlan>& plan,
          const std::vector<serving::RequestFeeds>& pool, int clients,
          std::int64_t budget_us, std::int64_t max_batch,
          int requests_per_client, std::ostream* jsonl)
{
    serving::ServingOptions serve_options;
    serve_options.max_batch = max_batch;
    serve_options.max_queue_delay = std::chrono::microseconds(budget_us);
    serve_options.executors = 2;
    serving::ServingRuntime runtime(plan, serve_options);

    telemetry::MetricsRegistry::Global().ResetAll();
    telemetry::MetricsRegistry::set_enabled(true);

    std::vector<std::vector<double>> latencies(
        static_cast<std::size_t>(clients));
    std::vector<std::vector<double>> queue_times(
        static_cast<std::size_t>(clients));
    std::vector<std::vector<double>> exec_times(
        static_cast<std::size_t>(clients));

    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            auto& lat = latencies[static_cast<std::size_t>(c)];
            auto& que = queue_times[static_cast<std::size_t>(c)];
            auto& exe = exec_times[static_cast<std::size_t>(c)];
            lat.reserve(static_cast<std::size_t>(requests_per_client));
            for (int r = 0; r < requests_per_client; ++r) {
                const auto& request =
                    pool[static_cast<std::size_t>(c * requests_per_client +
                                                  r) %
                         pool.size()];
                const auto t0 = std::chrono::steady_clock::now();
                auto response = runtime.Submit(request).get();
                lat.push_back(std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count());
                que.push_back(response.queue_seconds);
                // Batch formation -> completion: the part of the
                // latency spent executing rather than waiting.
                exe.push_back(response.latency_seconds -
                              response.queue_seconds);
            }
        });
    }
    for (auto& t : threads) {
        t.join();
    }
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    runtime.Stop();

    std::vector<double> all_lat;
    std::vector<double> all_queue;
    std::vector<double> all_exec;
    for (int c = 0; c < clients; ++c) {
        all_lat.insert(all_lat.end(),
                       latencies[static_cast<std::size_t>(c)].begin(),
                       latencies[static_cast<std::size_t>(c)].end());
        all_queue.insert(all_queue.end(),
                         queue_times[static_cast<std::size_t>(c)].begin(),
                         queue_times[static_cast<std::size_t>(c)].end());
        all_exec.insert(all_exec.end(),
                        exec_times[static_cast<std::size_t>(c)].begin(),
                        exec_times[static_cast<std::size_t>(c)].end());
    }

    const auto snapshot = telemetry::MetricsRegistry::Global().Snapshot();
    telemetry::MetricsRegistry::set_enabled(false);
    if (jsonl != nullptr) {
        *jsonl << "{\"kind\":\"config\",\"workload\":\"" << name
               << "\",\"clients\":" << clients
               << ",\"budget_us\":" << budget_us
               << ",\"max_batch\":" << max_batch << "}\n"
               << telemetry::MetricsToJsonl(snapshot);
    }

    ConfigResult result;
    result.workload = name;
    result.clients = clients;
    result.budget_us = budget_us;
    result.max_batch = max_batch;
    result.qps = static_cast<double>(all_lat.size()) / wall;
    result.p50_ms = Percentile(all_lat, 0.50) * 1e3;
    result.p99_ms = Percentile(all_lat, 0.99) * 1e3;
    result.queue_p50_ms = Percentile(all_queue, 0.50) * 1e3;
    result.queue_p99_ms = Percentile(all_queue, 0.99) * 1e3;
    result.exec_p50_ms = Percentile(all_exec, 0.50) * 1e3;
    result.exec_p99_ms = Percentile(all_exec, 0.99) * 1e3;
    result.mean_batch =
        snapshot.HistogramValue("serving.batch_size").Mean();
    return result;
}

void
PrintTable(std::ostream& os, const std::vector<ConfigResult>& results)
{
    os << std::left << std::setw(10) << "workload" << std::right
       << std::setw(9) << "clients" << std::setw(11) << "budget_us"
       << std::setw(10) << "max_batch" << std::setw(10) << "qps"
       << std::setw(10) << "p50_ms" << std::setw(10) << "p99_ms"
       << std::setw(11) << "queue_p50" << std::setw(11) << "queue_p99"
       << std::setw(10) << "exec_p50" << std::setw(10) << "exec_p99"
       << std::setw(11) << "mean_batch" << "\n";
    os << std::string(113, '-') << "\n";
    for (const auto& r : results) {
        os << std::left << std::setw(10) << r.workload << std::right
           << std::setw(9) << r.clients << std::setw(11) << r.budget_us
           << std::setw(10) << r.max_batch << std::setw(10) << std::fixed
           << std::setprecision(1) << r.qps << std::setw(10)
           << std::setprecision(2) << r.p50_ms << std::setw(10) << r.p99_ms
           << std::setw(11) << r.queue_p50_ms << std::setw(11)
           << r.queue_p99_ms << std::setw(10) << r.exec_p50_ms
           << std::setw(10) << r.exec_p99_ms << std::setw(11)
           << std::setprecision(2) << r.mean_batch << "\n";
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    Options options;
    try {
        options = ParseArgs(argc, argv);
    } catch (const std::exception& e) {
        std::cerr << "bench_serving: " << e.what() << "\n";
        return 2;
    }

    workloads::RegisterAllWorkloads();

    std::ofstream jsonl_file;
    std::ostream* jsonl = nullptr;
    if (!options.out_dir.empty()) {
        jsonl_file.open(options.out_dir + "/metrics.jsonl");
        if (!jsonl_file) {
            std::cerr << "bench_serving: cannot write to " << options.out_dir
                      << " (create the directory first)\n";
            return 2;
        }
        jsonl = &jsonl_file;
    }

    std::vector<ConfigResult> results;
    for (const auto& name : options.workloads) {
        auto workload = workloads::WorkloadRegistry::Global().Create(name);
        workloads::WorkloadConfig config;
        config.seed = 42;
        config.batch_size = 8;  // hosts every swept max_batch.
        config.tracing = false;
        workload->Setup(config);
        const auto plan = workload->FreezeServingPlan();

        std::vector<serving::RequestFeeds> pool;
        for (int i = 0; i < 16; ++i) {
            pool.push_back(workload->SampleServingRequest());
        }
        // Warm the buffer pool and pack caches before timing.
        plan->ServeOne(pool[0]);

        for (const int clients : options.concurrency) {
            for (const std::int64_t budget : options.budgets_us) {
                for (const std::int64_t max_batch : options.max_batches) {
                    results.push_back(RunConfig(
                        name, plan, pool, clients, budget, max_batch,
                        options.requests_per_client, jsonl));
                    const auto& r = results.back();
                    std::cerr << name << " clients=" << clients
                              << " budget_us=" << budget
                              << " max_batch=" << max_batch << " qps="
                              << std::fixed << std::setprecision(1) << r.qps
                              << "\n";
                }
            }
        }
    }

    std::cout << "\n";
    PrintTable(std::cout, results);

    // The tentpole claim, stated by the bench itself: at the highest
    // swept concurrency, dynamic batching vs batch-1 on each workload.
    std::cout << "\nDynamic batching vs batch-1 (highest concurrency, "
                 "per budget):\n";
    for (const auto& base : results) {
        if (base.max_batch != 1 ||
            base.clients !=
                *std::max_element(options.concurrency.begin(),
                                  options.concurrency.end())) {
            continue;
        }
        for (const auto& dyn : results) {
            if (dyn.workload == base.workload &&
                dyn.clients == base.clients &&
                dyn.budget_us == base.budget_us && dyn.max_batch > 1) {
                std::cout << "  " << base.workload << " budget "
                          << base.budget_us << "us: " << std::fixed
                          << std::setprecision(1) << base.qps << " -> "
                          << dyn.qps << " qps ("
                          << std::setprecision(2) << dyn.qps / base.qps
                          << "x)\n";
            }
        }
    }

    if (!options.out_dir.empty()) {
        std::ofstream table(options.out_dir + "/serving_table.txt");
        PrintTable(table, results);
    }
    return 0;
}
