/**
 * @file
 * Regression tests for the paper's headline findings.
 *
 * These are the load-bearing assertions of the whole reproduction:
 * each test re-derives one qualitative result from the paper's
 * evaluation on a small run and fails if the shape ever regresses.
 * EXPERIMENTS.md records the quantitative versions.
 */
#include <gtest/gtest.h>

#include "analysis/op_profile.h"
#include "analysis/scaling.h"
#include "analysis/similarity.h"
#include "analysis/stationarity.h"
#include "core/suite.h"

namespace fathom {
namespace {

using analysis::OpProfile;
using graph::OpClass;

core::SuiteRunOptions
FastOptions()
{
    core::SuiteRunOptions options;
    options.warmup_steps = 1;
    options.train_steps = 2;
    options.infer_steps = 0;
    options.seed = 13;
    return options;
}

OpProfile
TrainProfile(const std::string& name)
{
    const auto traces = core::RunAndTrace(name, FastOptions());
    return analysis::WallProfile(traces.training, traces.warmup_steps);
}

// ---- Fig. 2: a handful of op types dominate -----------------------------

TEST(PaperShapes, Fig2_SkewWithinPaperBand)
{
    for (const std::string name : {"vgg", "memnet", "speech"}) {
        const auto profile = TrainProfile(name);
        const int needed = profile.TypesToCover(0.9);
        EXPECT_GE(needed, 1) << name;
        EXPECT_LE(needed, 15) << name << ": paper band is 5-15 types";
    }
}

// ---- Fig. 3: class dominance per model -----------------------------------

TEST(PaperShapes, Fig3_ConvNetsDominatedByConvolution)
{
    for (const std::string name : {"vgg", "residual", "alexnet"}) {
        const auto profile = TrainProfile(name);
        EXPECT_GT(profile.ClassFraction(OpClass::kConvolution), 0.5)
            << name;
    }
}

TEST(PaperShapes, Fig3_SpeechDominatedByMatMul)
{
    const auto profile = TrainProfile("speech");
    EXPECT_GT(profile.ClassFraction(OpClass::kMatrixOps), 0.5);
    // And the CTC loss is visible as Optimization-class work.
    EXPECT_GT(profile.ClassFraction(OpClass::kOptimization), 0.005);
}

TEST(PaperShapes, Fig3_Seq2SeqMixesMatMulElementwiseAndMovement)
{
    const auto profile = TrainProfile("seq2seq");
    // The matrix-op floor was 0.25 before the blocked GEMM engine;
    // matmul wall time shrank ~4x while elementwise and movement ops
    // did not, so the recurrent cells' matmul share now sits near 0.2.
    // The paper's qualitative claim is the three-way mix, which holds.
    EXPECT_GT(profile.ClassFraction(OpClass::kMatrixOps), 0.10);
    EXPECT_GT(profile.ClassFraction(OpClass::kElementwise), 0.10);
    EXPECT_GT(profile.ClassFraction(OpClass::kDataMovement), 0.03);
}

TEST(PaperShapes, Fig3_AutoencSamplesDuringInference)
{
    core::SuiteRunOptions options = FastOptions();
    options.infer_steps = 2;
    const auto traces = core::RunAndTrace("autoenc", options);
    const auto profile = analysis::ProfileFromTrace(
        traces.inference, traces.warmup_steps, analysis::TimeSource::kWall,
        runtime::DeviceSpec::Cpu(1));
    // RandomSampling present in the *inference* profile.
    EXPECT_GT(profile.ClassFraction(OpClass::kRandomSampling), 0.0);
}

TEST(PaperShapes, Fig3_FullyConnectedShareVanishesAcrossIlsvrcWinners)
{
    const double alexnet =
        TrainProfile("alexnet").ClassFraction(OpClass::kMatrixOps);
    const double vgg = TrainProfile("vgg").ClassFraction(OpClass::kMatrixOps);
    const double residual =
        TrainProfile("residual").ClassFraction(OpClass::kMatrixOps);
    // Monotone decline (Sec. V-B longitudinal comparison).
    EXPECT_GT(alexnet, vgg);
    EXPECT_GE(vgg, residual);
}

// ---- Fig. 4: similarity structure ----------------------------------------

TEST(PaperShapes, Fig4_ConvClusterTighterThanRecurrentPair)
{
    std::vector<OpProfile> profiles;
    std::vector<std::string> names = {"vgg", "residual", "speech",
                                      "seq2seq"};
    for (const auto& name : names) {
        profiles.push_back(TrainProfile(name));
    }
    const auto matrix = analysis::ProfileMatrix(profiles);
    const double conv_pair = analysis::CosineDistance(matrix[0], matrix[1]);
    const double recurrent_pair =
        analysis::CosineDistance(matrix[2], matrix[3]);
    EXPECT_LT(conv_pair, recurrent_pair);
    EXPECT_LT(conv_pair, 0.05);  // "tightly clustered".
}

// ---- Fig. 5: training vs inference, devices ------------------------------

TEST(PaperShapes, Fig5_TrainingCostsMoreThanInference)
{
    core::SuiteRunOptions options = FastOptions();
    options.infer_steps = 2;
    for (const std::string name : {"vgg", "autoenc", "memnet"}) {
        const auto traces = core::RunAndTrace(name, options);
        const auto cpu = runtime::DeviceSpec::Cpu(1);
        const double train = analysis::SimulatedTotalSeconds(
            traces.training, traces.warmup_steps, cpu);
        const double infer = analysis::SimulatedTotalSeconds(
            traces.inference, traces.warmup_steps, cpu);
        EXPECT_GT(train, 1.5 * infer) << name;
    }
}

TEST(PaperShapes, Fig5_GpuGainsLargestOnConvNets)
{
    const auto cpu = runtime::DeviceSpec::Cpu(1);
    const auto gpu = runtime::DeviceSpec::Gpu();
    auto speedup = [&](const std::string& name) {
        const auto traces = core::RunAndTrace(name, FastOptions());
        return analysis::SimulatedTotalSeconds(traces.training,
                                               traces.warmup_steps, cpu) /
               analysis::SimulatedTotalSeconds(traces.training,
                                               traces.warmup_steps, gpu);
    };
    const double conv_net = speedup("alexnet");
    const double memory_net = speedup("memnet");
    EXPECT_GT(conv_net, 5.0);
    EXPECT_GT(conv_net, 4.0 * memory_net);
}

// ---- Fig. 6: Amdahl at the application level ------------------------------

TEST(PaperShapes, Fig6_DeepqScalesMemnetDoesNot)
{
    auto total_speedup = [&](const std::string& name) {
        const auto traces = core::RunAndTrace(name, FastOptions());
        const auto sweep = analysis::SweepThreads(
            traces.training, traces.warmup_steps, {1, 8});
        return sweep.TotalAt(0) / sweep.TotalAt(1);
    };
    EXPECT_GT(total_speedup("deepq"), 2.0);
    EXPECT_LT(total_speedup("memnet"), 1.2);
}

TEST(PaperShapes, Fig6_OptimizerShareRisesWithParallelism)
{
    const auto traces = core::RunAndTrace("deepq", FastOptions());
    const auto sweep = analysis::SweepThreads(traces.training,
                                              traces.warmup_steps, {1, 8});
    const auto& rmsprop = sweep.seconds_by_type.at("ApplyRMSProp");
    const double share1 = rmsprop[0] / sweep.TotalAt(0);
    const double share8 = rmsprop[1] / sweep.TotalAt(1);
    EXPECT_NEAR(rmsprop[0], rmsprop[1], 1e-12);  // the op itself is flat...
    EXPECT_GT(share8, 2.0 * share1);             // ...so its share rises.
}

// ---- Fig. 1 / Sec. V-A: stationarity and overhead --------------------------

TEST(PaperShapes, Fig1_HeavyOpsAreStationary)
{
    core::SuiteRunOptions options = FastOptions();
    options.train_steps = 8;
    const auto traces = core::RunAndTrace("vgg", options);
    const auto stats =
        analysis::ComputeStationarity(traces.training, traces.warmup_steps);
    for (const auto& s : stats) {
        if (s.op_type == "Conv2D") {
            EXPECT_LT(s.cv, 0.5);
            EXPECT_LT(s.drift(), 0.5);
            return;
        }
    }
    FAIL() << "Conv2D missing from vgg trace";
}

TEST(PaperShapes, SecVA_OverheadSmallForComputeBoundModels)
{
    core::SuiteRunOptions options = FastOptions();
    options.train_steps = 4;
    const auto traces = core::RunAndTrace("residual", options);
    EXPECT_LT(analysis::FrameworkOverheadFraction(traces.training,
                                                  traces.warmup_steps),
              0.05);
}

}  // namespace
}  // namespace fathom
