/**
 * @file
 * Concurrency tests for the tracer.
 *
 * Tracer::Record must accept calls from any thread between BeginStep
 * and EndStep without losing records, and EndStep must canonicalize
 * record order by plan sequence id so traces are independent of
 * scheduling. Wall times in these tests are multiples of 1/1024 so
 * sums are exact in double and the aggregate checks can use equality.
 */
#include <gtest/gtest.h>

#include <array>
#include <set>
#include <thread>
#include <vector>

#include "ops/register.h"
#include "runtime/session.h"
#include "runtime/tracer.h"

namespace fathom::runtime {
namespace {

using graph::OpClass;
using graph::Output;

TEST(TracerConcurrentTest, HammerRecordFromManyThreads)
{
    constexpr int kThreads = 8;
    constexpr int kPerThread = 1000;
    const std::array<OpClass, 4> classes = {
        OpClass::kMatrixOps, OpClass::kElementwise,
        OpClass::kReductionExpansion, OpClass::kDataMovement};

    Tracer tracer;
    tracer.BeginStep();
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&tracer, &classes, t] {
            for (int i = 0; i < kPerThread; ++i) {
                OpExecRecord record;
                record.seq = static_cast<std::int64_t>(t) * kPerThread + i;
                record.node = static_cast<graph::NodeId>(record.seq);
                record.op_class = classes[record.seq % classes.size()];
                record.op_type = "Op" + std::to_string(t);
                record.wall_seconds =
                    static_cast<double>(record.seq % 64 + 1) / 1024.0;
                tracer.Record(std::move(record));
            }
        });
    }
    for (auto& thread : threads) {
        thread.join();
    }
    tracer.EndStep(/*step_wall_seconds=*/1.0);

    ASSERT_EQ(tracer.steps().size(), 1u);
    const StepTrace& step = tracer.steps().back();
    ASSERT_EQ(step.records.size(),
              static_cast<std::size_t>(kThreads * kPerThread));

    // Canonical order: sorted by seq, with no record lost or duplicated.
    double expected_total = 0.0;
    std::array<int, 4> expected_class_counts{};
    for (std::int64_t seq = 0; seq < kThreads * kPerThread; ++seq) {
        expected_total += static_cast<double>(seq % 64 + 1) / 1024.0;
        expected_class_counts[seq % classes.size()]++;
    }
    std::array<int, 4> class_counts{};
    for (std::size_t i = 0; i < step.records.size(); ++i) {
        ASSERT_EQ(step.records[i].seq, static_cast<std::int64_t>(i));
        for (std::size_t c = 0; c < classes.size(); ++c) {
            if (step.records[i].op_class == classes[c]) {
                class_counts[c]++;
            }
        }
    }
    EXPECT_EQ(class_counts, expected_class_counts);
    // Exact: every addend is a multiple of 2^-10 summed in seq order.
    EXPECT_EQ(step.OpSeconds(), expected_total);
    EXPECT_EQ(step.wall_seconds, 1.0);
}

TEST(TracerConcurrentTest, RecordsOutsideStepAreDropped)
{
    Tracer tracer;
    OpExecRecord record;
    record.wall_seconds = 0.5;
    tracer.Record(record);  // no BeginStep: silently ignored
    EXPECT_TRUE(tracer.steps().empty());

    tracer.set_enabled(false);
    tracer.BeginStep();
    tracer.Record(record);
    tracer.EndStep(1.0);
    EXPECT_TRUE(tracer.steps().empty());
}

TEST(TracerConcurrentTest, CopyDetachesFromSource)
{
    // suite.cc copies live tracers into WorkloadTraces; the copy must
    // carry the steps and stay independent of the original.
    Tracer tracer;
    tracer.BeginStep();
    OpExecRecord record;
    record.seq = 0;
    record.wall_seconds = 0.25;
    tracer.Record(record);
    tracer.EndStep(0.5);

    Tracer copy = tracer;
    tracer.Clear();
    ASSERT_EQ(copy.steps().size(), 1u);
    EXPECT_EQ(copy.steps()[0].records.size(), 1u);
    EXPECT_EQ(copy.steps()[0].wall_seconds, 0.5);
    EXPECT_TRUE(tracer.steps().empty());
}

TEST(TracerConcurrentTest, ParallelExecutorTracesEveryNodeOnce)
{
    ops::RegisterStandardOps();
    Session session;
    session.SetInterOpThreads(4);
    auto b = session.MakeBuilder();
    const Output x = b.Placeholder("x");
    const Output a = b.Relu(x);
    const Output c = b.Tanh(x);
    const Output d = b.Sigmoid(x);
    const Output y = b.AddN({b.Mul(a, c), d});

    Tensor feed(DType::kFloat32, Shape{64});
    feed.Fill(0.375f);
    FeedMap feeds;
    feeds[x.node] = feed;
    session.Run(feeds, {y});

    const StepTrace& step = session.tracer().steps().back();
    std::set<graph::NodeId> seen;
    std::int64_t prev_seq = -1;
    for (const auto& record : step.records) {
        EXPECT_TRUE(seen.insert(record.node).second)
            << "node " << record.node << " traced twice";
        EXPECT_LT(prev_seq, record.seq);
        prev_seq = record.seq;
    }
    // Every executed op appears (placeholders are not traced):
    // Relu, Tanh, Sigmoid, Mul, AddN.
    EXPECT_EQ(seen.size(), 5u);
}

}  // namespace
}  // namespace fathom::runtime
