/**
 * @file
 * Static graph verifier battery.
 *
 * The negative half hands the verifier deliberately corrupted graphs —
 * shape mismatch, dtype mismatch, dangling control edge, cycle, unsafe
 * in-place marking, unreachable fetch — and asserts each one is
 * rejected *statically* (no kernel runs) with a diagnostic that names
 * the offending node. The positive half proves the production default:
 * all eight workloads' training graphs verify clean at plan build and
 * their serving graphs verify clean at FrozenPlan::Freeze.
 *
 * The kernel-time error paths for several of the same defects are
 * pinned separately in test_ops_errors.cc (with verification off);
 * this file is the static layer's contract.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "graph/graph_builder.h"
#include "graph/verify/verifier.h"
#include "ops/register.h"
#include "runtime/session.h"
#include "telemetry/metrics.h"
#include "test_util.h"
#include "workloads/workload.h"

namespace fathom {
namespace {

using graph::Output;
using graph::verify::Diagnostic;
using graph::verify::PlanFacts;
using graph::verify::TypeInfo;
using graph::verify::Verify;
using graph::verify::VerifyOptions;
using graph::verify::VerifyReport;

/** True if the report holds a @p check diagnostic naming @p node. */
bool
HasDiag(const VerifyReport& report, const std::string& check,
        const std::string& node)
{
    return std::any_of(report.diagnostics.begin(), report.diagnostics.end(),
                       [&](const Diagnostic& d) {
                           return d.check == check && d.node == node;
                       });
}

class GraphVerifyTest : public ::testing::Test {
  protected:
    static void SetUpTestSuite() { ops::RegisterStandardOps(); }

    graph::Graph graph_;
    graph::VariableStore variables_;
    graph::GraphBuilder b_{&graph_, &variables_};

    VerifyReport
    Check(const std::vector<Output>& fetches,
          const std::vector<graph::NodeId>& targets = {},
          VerifyOptions options = {}, const PlanFacts* plan = nullptr)
    {
        options.variables = &variables_;
        return Verify(graph_, fetches, targets, options, plan);
    }
};

TEST_F(GraphVerifyTest, CleanGraphVerifiesOkAndTypesEveryNode)
{
    const Output x = b_.Placeholder("x");
    const Output w = b_.Variable("w", test::RandomTensor(Shape{3, 4}, 1));
    const Output y = b_.MatMul(x, w);
    const Output r = b_.Relu(y);

    VerifyOptions options;
    options.feed_types[x.node] =
        TypeInfo::Of(DType::kFloat32, Shape{2, 3});
    const VerifyReport report = Check({r}, {}, options);

    EXPECT_TRUE(report.ok()) << report.ToString();
    EXPECT_EQ(report.nodes_checked, 4);
    ASSERT_EQ(report.types.count(r.node), 1u);
    const TypeInfo& out = report.types.at(r.node)[0];
    ASSERT_TRUE(out.fully_known());
    EXPECT_EQ(out.dtype, DType::kFloat32);
    EXPECT_EQ(out.shape, (Shape{2, 4}));
}

TEST_F(GraphVerifyTest, ShapeMismatchNamesNodeWithExpectedGot)
{
    const Output x = b_.Placeholder("x");
    const Output w = b_.Variable("w", test::RandomTensor(Shape{5, 4}, 1));
    const Output y = b_.MatMul(x, w);  // inner dims 3 vs 5: provably wrong.

    VerifyOptions options;
    options.feed_types[x.node] =
        TypeInfo::Of(DType::kFloat32, Shape{2, 3});
    const VerifyReport report = Check({y}, {}, options);

    const std::string& name = graph_.node(y.node).name;
    ASSERT_TRUE(HasDiag(report, "shape-inference", name))
        << report.ToString();
    const std::string text = report.ToString();
    EXPECT_NE(text.find(name), std::string::npos);
    EXPECT_NE(text.find("expected"), std::string::npos) << text;
}

TEST_F(GraphVerifyTest, DTypeMismatchNamesNode)
{
    const Output x = b_.Placeholder("x");
    const Output r = b_.Relu(x);  // float-only kernel fed int32.

    VerifyOptions options;
    options.feed_types[x.node] = TypeInfo::Of(DType::kInt32, Shape{4});
    const VerifyReport report = Check({r}, {}, options);

    ASSERT_TRUE(
        HasDiag(report, "shape-inference", graph_.node(r.node).name))
        << report.ToString();
    EXPECT_NE(report.ToString().find("dtype"), std::string::npos)
        << report.ToString();
}

TEST_F(GraphVerifyTest, DanglingControlEdgeCaught)
{
    const Output x = b_.Placeholder("x");
    const Output r = b_.Relu(x);
    graph_.mutable_node(r.node).control_inputs.push_back(9999);

    const VerifyReport report = Check({r});
    EXPECT_TRUE(
        HasDiag(report, "dangling-control", graph_.node(r.node).name))
        << report.ToString();
}

TEST_F(GraphVerifyTest, DanglingDataInputCaught)
{
    const Output x = b_.Placeholder("x");
    const Output r = b_.Relu(x);
    graph_.mutable_node(r.node).inputs[0].node = 4242;

    const VerifyReport report = Check({r});
    EXPECT_TRUE(
        HasDiag(report, "dangling-input", graph_.node(r.node).name))
        << report.ToString();
}

TEST_F(GraphVerifyTest, CycleCaughtAsDiagnosticNotThrow)
{
    const Output x = b_.Placeholder("x");
    const Output a = b_.Relu(x);
    const Output c = b_.Tanh(a);
    // Rewire a's input onto c: a -> c -> a. Graph::TopologicalOrder
    // would throw std::logic_error here; the verifier must instead
    // report a named diagnostic.
    graph_.mutable_node(a.node).inputs[0] = c;

    const VerifyReport report = Check({c});
    ASSERT_FALSE(report.ok());
    EXPECT_TRUE(std::any_of(
        report.diagnostics.begin(), report.diagnostics.end(),
        [](const Diagnostic& d) { return d.check == "cycle"; }))
        << report.ToString();
}

TEST_F(GraphVerifyTest, FetchOfNoOutputNodeCaught)
{
    std::string var;
    b_.Variable("w", Tensor::Zeros(Shape{4}), &var);
    const Output v = b_.Const(Tensor::Zeros(Shape{4}), "init");
    const graph::NodeId assign = b_.Assign(var, v);

    // Assign's kernel produces no output values: fetching one is a
    // static error (the runtime would fault mid-step).
    const VerifyReport report = Check({Output{assign, 0}});
    EXPECT_TRUE(HasDiag(report, "bad-fetch", graph_.node(assign).name))
        << report.ToString();
}

TEST_F(GraphVerifyTest, FetchIndexOutOfRangeCaught)
{
    const Output x = b_.Placeholder("x");
    const Output r = b_.Relu(x);
    const VerifyReport report = Check({Output{r.node, 3}});
    EXPECT_TRUE(HasDiag(report, "bad-fetch", graph_.node(r.node).name))
        << report.ToString();
}

TEST_F(GraphVerifyTest, FetchOutsideGraphCaught)
{
    const VerifyReport report = Check({Output{1234, 0}});
    ASSERT_FALSE(report.ok());
    EXPECT_EQ(report.diagnostics[0].check, "bad-fetch");
}

TEST_F(GraphVerifyTest, UnknownOpTypeCaught)
{
    const Output x = b_.Placeholder("x");
    const graph::NodeId mystery =
        b_.AddNode("mystery", "NotARegisteredOp", {x});
    const VerifyReport report = Check({Output{mystery, 0}});
    EXPECT_TRUE(HasDiag(report, "unknown-op", "mystery"))
        << report.ToString();
}

TEST_F(GraphVerifyTest, UnsafeInPlaceMarkingCaught)
{
    const Output x = b_.Placeholder("x");
    const Output a = b_.Relu(x);
    const Output t = b_.Tanh(a);

    // A plan claiming t may overwrite a's buffer is unsafe: a is
    // fetched, so its value must survive the step.
    const std::vector<graph::NodeId> order =
        graph_.TopologicalOrder({a.node, t.node});
    std::vector<char> inplace(order.size(), 0);
    const auto t_step = std::find(order.begin(), order.end(), t.node);
    ASSERT_NE(t_step, order.end());
    inplace[static_cast<std::size_t>(t_step - order.begin())] = 1;

    PlanFacts facts;
    facts.order = &order;
    facts.inplace = &inplace;
    const VerifyReport report = Check({a, t}, {}, {}, &facts);
    ASSERT_TRUE(HasDiag(report, "inplace", graph_.node(t.node).name))
        << report.ToString();
    EXPECT_NE(report.ToString().find("in-place"), std::string::npos);
}

TEST_F(GraphVerifyTest, LivenessMismatchCaught)
{
    const Output x = b_.Placeholder("x");
    const Output a = b_.Relu(x);
    const Output t = b_.Tanh(a);

    // A consumer count of zero for a's step would free its buffer
    // before t reads it; the lint recomputes the counts independently
    // and must flag the divergence.
    const std::vector<graph::NodeId> order =
        graph_.TopologicalOrder({t.node});
    std::vector<std::int32_t> consumer_count(order.size(), 0);

    PlanFacts facts;
    facts.order = &order;
    facts.consumer_count = &consumer_count;
    const VerifyReport report = Check({t}, {}, {}, &facts);
    ASSERT_FALSE(report.ok());
    EXPECT_TRUE(std::any_of(
        report.diagnostics.begin(), report.diagnostics.end(),
        [](const Diagnostic& d) { return d.check == "liveness"; }))
        << report.ToString();
}

TEST_F(GraphVerifyTest, FrozenModeRejectsStatefulOps)
{
    const Output x = b_.Placeholder("x");
    const Output mask = b_.DropoutMask(x, 0.5f);

    VerifyOptions options;
    options.frozen = true;
    const VerifyReport report = Check({mask}, {}, options);
    ASSERT_TRUE(
        HasDiag(report, "determinism", graph_.node(mask.node).name))
        << report.ToString();
    EXPECT_NE(report.ToString().find("frozen"), std::string::npos);
}

TEST_F(GraphVerifyTest, VerifyOrThrowCarriesFullReport)
{
    const Output x = b_.Placeholder("x");
    const Output r = b_.Relu(x);
    graph_.mutable_node(r.node).control_inputs.push_back(9999);

    try {
        graph::verify::VerifyOrThrow(graph_, {r}, {});
        FAIL() << "corrupted graph passed verification";
    } catch (const std::invalid_argument& e) {
        const std::string message = e.what();
        EXPECT_NE(message.find("graph verification failed"),
                  std::string::npos);
        EXPECT_NE(message.find(graph_.node(r.node).name),
                  std::string::npos);
        EXPECT_NE(message.find("dangling-control"), std::string::npos);
    }
}

TEST_F(GraphVerifyTest, UnseededGraphDegradesGracefully)
{
    // No feed types at all (the graph_lint mode): shape fns must check
    // what is known and leave the rest unknown, not reject.
    const Output x = b_.Placeholder("x");
    const Output w = b_.Variable("w", test::RandomTensor(Shape{3, 4}, 1));
    const Output r = b_.Relu(b_.MatMul(x, w));
    const VerifyReport report = Check({r});
    EXPECT_TRUE(report.ok()) << report.ToString();
}

// ---- integration: the Session enforcement path -------------------------

TEST(GraphVerifySessionTest, SessionRejectsBadGraphAtPlanBuild)
{
    ops::RegisterStandardOps();
    runtime::Session session;
    auto b = session.MakeBuilder();
    const Output x = b.Placeholder("x");
    const Output w = b.Variable("w", test::RandomTensor(Shape{5, 4}, 1));
    const Output y = b.MatMul(x, w);

    runtime::FeedMap feeds;
    feeds[x.node] = Tensor::Zeros(Shape{2, 3});
    try {
        session.Run(feeds, {y});
        FAIL() << "statically-wrong MatMul reached the executor";
    } catch (const std::invalid_argument& e) {
        const std::string message = e.what();
        EXPECT_NE(message.find("graph verification failed"),
                  std::string::npos)
            << message;
        EXPECT_NE(message.find(session.graph().node(y.node).name),
                  std::string::npos)
            << message;
    }
}

TEST(GraphVerifySessionTest, SetVerificationOffRestoresKernelTimeFailure)
{
    ops::RegisterStandardOps();
    runtime::Session session;
    session.SetVerification(false);
    auto b = session.MakeBuilder();
    const Output x = b.Placeholder("x");
    const Output w = b.Variable("w", test::RandomTensor(Shape{5, 4}, 1));
    const Output y = b.MatMul(x, w);

    runtime::FeedMap feeds;
    feeds[x.node] = Tensor::Zeros(Shape{2, 3});
    // With the knob off the defect survives to the kernel, which
    // throws std::runtime_error (the historical behavior).
    EXPECT_THROW(session.Run(feeds, {y}), std::runtime_error);
}

// ---- the all-workloads clean batteries ---------------------------------

TEST(GraphVerifyWorkloadTest, AllTrainGraphsVerifyCleanAtPlanBuild)
{
    workloads::RegisterAllWorkloads();
    for (const auto& name : workloads::WorkloadRegistry::Global().Names()) {
        workloads::WorkloadConfig config;
        config.batch_size = 2;
        auto workload = workloads::WorkloadRegistry::Global().Create(name);
        workload->Setup(config);
        ASSERT_TRUE(workload->session().verification()) << name;
        try {
            // Plan build (a cache miss) runs the full verification;
            // a violation throws std::invalid_argument with the report.
            workload->RunTraining(1);
        } catch (const std::exception& e) {
            ADD_FAILURE() << name << ": " << e.what();
        }
    }
}

TEST(GraphVerifyWorkloadTest, AllFrozenServingGraphsVerifyClean)
{
    workloads::RegisterAllWorkloads();
    for (const auto& name : workloads::WorkloadRegistry::Global().Names()) {
        workloads::WorkloadConfig config;
        config.batch_size = 2;
        auto workload = workloads::WorkloadRegistry::Global().Create(name);
        workload->Setup(config);
        ASSERT_TRUE(workload->has_serving_endpoint()) << name;
        try {
            // Freeze verifies in frozen mode (TensorSpec-seeded types,
            // stateful ops are violations) before returning the plan.
            const auto plan = workload->FreezeServingPlan();
            EXPECT_NE(plan, nullptr) << name;
        } catch (const std::exception& e) {
            ADD_FAILURE() << name << ": " << e.what();
        }
    }
}

// ---- telemetry (observability suite: name matches *Telemetry*) ---------

TEST(GraphVerifyTelemetryTest, CountsRunsAndViolations)
{
    ops::RegisterStandardOps();
    auto& registry = telemetry::MetricsRegistry::Global();
    registry.ResetAll();
    telemetry::MetricsRegistry::set_enabled(true);

    graph::Graph graph;
    graph::VariableStore variables;
    graph::GraphBuilder b(&graph, &variables);
    const Output x = b.Placeholder("x");
    const Output r = b.Relu(x);

    const VerifyReport clean = Verify(graph, {r}, {});
    EXPECT_TRUE(clean.ok());

    graph.mutable_node(r.node).control_inputs.push_back(9999);
    const VerifyReport dirty = Verify(graph, {r}, {});
    telemetry::MetricsRegistry::set_enabled(false);

    ASSERT_FALSE(dirty.ok());
    const auto snapshot = registry.Snapshot();
    EXPECT_EQ(snapshot.CounterValue("verify.runs"), 2u);
    EXPECT_EQ(snapshot.CounterValue("verify.violations"),
              static_cast<std::uint64_t>(dirty.diagnostics.size()));
}

// ---- bench guard (observability suite: *VerifyOverhead*, RUN_SERIAL) ---

TEST(VerifyOverheadTest, PlanBuildVerificationWithinBudget)
{
    // The adoption contract: verification-on session construction
    // (setup + first plan build, where the verifier actually runs) may
    // cost at most ~1% over verification-off. Modes are interleaved
    // within each repetition and compared min-to-min so a background
    // hiccup cannot fail the build; a small absolute floor absorbs
    // timer quantization (bench/bench_verify sweeps the same contract
    // at larger shapes).
    workloads::RegisterAllWorkloads();

    auto construct = [](bool verify) {
        workloads::WorkloadConfig config;
        config.batch_size = 2;
        config.tracing = false;
        config.graph_verification = verify;
        auto workload =
            workloads::WorkloadRegistry::Global().Create("alexnet");
        const auto start = std::chrono::steady_clock::now();
        workload->Setup(config);
        workload->RunTraining(1);  // first plan build: the verify site.
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };
    construct(true);  // warm code paths and the allocator once.

    constexpr int kReps = 5;
    double off_best = 1e300;
    double on_best = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
        off_best = std::min(off_best, construct(false));
        on_best = std::min(on_best, construct(true));
    }
    EXPECT_LE(on_best, off_best * 1.01 + 1e-3)
        << "verify-on best " << on_best * 1e3 << " ms vs verify-off best "
        << off_best * 1e3 << " ms";
}

}  // namespace
}  // namespace fathom
