/**
 * @file
 * Numerical gradient checks for the autodiff system across the full op
 * set, plus structural tests of the gradient builder.
 */
#include <gtest/gtest.h>

#include "autodiff/gradients.h"
#include "ops/register.h"
#include "runtime/session.h"
#include "test_util.h"

namespace fathom::autodiff {
namespace {

using graph::GraphBuilder;
using graph::Output;
using test::CheckGradient;
using test::RandomTensor;

class AutodiffTest : public ::testing::Test {
  protected:
    static void SetUpTestSuite() { ops::RegisterStandardOps(); }
};

// Every builder must reduce to a scalar loss; ReduceSum with random
// weighting makes the check sensitive to every element.
Output
WeightedSum(GraphBuilder& b, Output x, std::uint64_t seed, const Shape& shape)
{
    const Output w = b.Const(RandomTensor(shape, seed), "weights");
    return b.ReduceSum(b.Mul(x, w), {}, false);
}

TEST_F(AutodiffTest, AddGradient)
{
    CheckGradient(
        [](GraphBuilder& b, Output x) {
            const Output c = b.Const(RandomTensor(Shape{3, 4}, 1));
            return WeightedSum(b, b.Add(x, c), 2, Shape{3, 4});
        },
        RandomTensor(Shape{3, 4}, 3));
}

TEST_F(AutodiffTest, AddBroadcastGradient)
{
    // x is a [4] bias broadcast over [3, 4]; grad must reduce back.
    CheckGradient(
        [](GraphBuilder& b, Output x) {
            const Output c = b.Const(RandomTensor(Shape{3, 4}, 4));
            return WeightedSum(b, b.Add(c, x), 5, Shape{3, 4});
        },
        RandomTensor(Shape{4}, 6));
}

TEST_F(AutodiffTest, MulDivSubGradient)
{
    CheckGradient(
        [](GraphBuilder& b, Output x) {
            const Output c = b.Const(
                RandomTensor(Shape{2, 3}, 7, 0.5f), "c");
            const Output offset = b.ScalarConst(3.0f);
            // (x * c - c) / (x^2 + 3)
            const Output num = b.Sub(b.Mul(x, c), c);
            const Output den = b.Add(b.Square(x), offset);
            return WeightedSum(b, b.Div(num, den), 8, Shape{2, 3});
        },
        RandomTensor(Shape{2, 3}, 9));
}

TEST_F(AutodiffTest, UnaryChainGradient)
{
    CheckGradient(
        [](GraphBuilder& b, Output x) {
            // log(exp(tanh(x)) + sqrt(exp(x)))
            const Output t = b.Tanh(x);
            const Output e = b.Exp(t);
            const Output s = b.Sqrt(b.Exp(x));
            return WeightedSum(b, b.Log(b.Add(e, s)), 10, Shape{5});
        },
        RandomTensor(Shape{5}, 11, 0.5f));
}

TEST_F(AutodiffTest, SigmoidReluGradient)
{
    CheckGradient(
        [](GraphBuilder& b, Output x) {
            return WeightedSum(b, b.Sigmoid(b.Relu(x)), 12, Shape{8});
        },
        // Keep values away from the ReLU kink where the numerical
        // derivative is undefined.
        Tensor::FromVector({-2.0f, -1.0f, -0.5f, 0.4f, 0.8f, 1.5f, 2.0f,
                            -3.0f}));
}

TEST_F(AutodiffTest, PowNegGradient)
{
    CheckGradient(
        [](GraphBuilder& b, Output x) {
            return WeightedSum(b, b.Neg(b.Pow(x, 3.0f)), 13, Shape{4});
        },
        Tensor::FromVector({0.5f, 1.0f, 1.5f, 2.0f}));
}

TEST_F(AutodiffTest, MatMulGradientAllTransposes)
{
    for (const bool ta : {false, true}) {
        for (const bool tb : {false, true}) {
            CheckGradient(
                [ta, tb](GraphBuilder& b, Output x) {
                    const Shape b_shape = tb ? Shape{4, 3} : Shape{3, 4};
                    const Output w =
                        b.Const(RandomTensor(b_shape, 14), "w");
                    const Output y = b.MatMul(x, w, ta, tb);
                    return WeightedSum(b, y, 15, Shape{2, 4});
                },
                RandomTensor(ta ? Shape{3, 2} : Shape{2, 3}, 16));
        }
    }
}

TEST_F(AutodiffTest, MatMulGradientSecondOperand)
{
    CheckGradient(
        [](GraphBuilder& b, Output x) {
            const Output a = b.Const(RandomTensor(Shape{3, 2}, 17), "a");
            return WeightedSum(b, b.MatMul(a, x), 18, Shape{3, 4});
        },
        RandomTensor(Shape{2, 4}, 19));
}

TEST_F(AutodiffTest, Conv2DGradient)
{
    CheckGradient(
        [](GraphBuilder& b, Output x) {
            const Output w =
                b.Const(RandomTensor(Shape{3, 3, 2, 3}, 20, 0.4f), "w");
            const Output y = b.Conv2D(x, w, 1, "SAME");
            return WeightedSum(b, y, 21, Shape{1, 4, 4, 3});
        },
        RandomTensor(Shape{1, 4, 4, 2}, 22));
}

TEST_F(AutodiffTest, Conv2DFilterGradientStride2)
{
    CheckGradient(
        [](GraphBuilder& b, Output x) {
            const Output input =
                b.Const(RandomTensor(Shape{1, 6, 6, 2}, 23), "input");
            const Output y = b.Conv2D(input, x, 2, "SAME");
            return WeightedSum(b, y, 24, Shape{1, 3, 3, 4});
        },
        RandomTensor(Shape{3, 3, 2, 4}, 25, 0.4f));
}

TEST_F(AutodiffTest, MaxPoolGradient)
{
    CheckGradient(
        [](GraphBuilder& b, Output x) {
            return WeightedSum(b, b.MaxPool(x, 2, 2, "VALID"), 26,
                               Shape{1, 2, 2, 2});
        },
        // Distinct values so the argmax is stable under perturbation.
        Tensor::FromVector(
            Shape{1, 4, 4, 2},
            {1,  17, 2,  18, 3,  19, 4,  20, 5,  21, 6,  22, 7,  23, 8,  24,
             9,  25, 10, 26, 11, 27, 12, 28, 13, 29, 14, 30, 15, 31, 16, 32}));
}

TEST_F(AutodiffTest, AvgPoolGradient)
{
    CheckGradient(
        [](GraphBuilder& b, Output x) {
            return WeightedSum(b, b.AvgPool(x, 2, 2, "SAME"), 27,
                               Shape{1, 2, 2, 1});
        },
        RandomTensor(Shape{1, 4, 4, 1}, 28));
}

TEST_F(AutodiffTest, LrnGradient)
{
    CheckGradient(
        [](GraphBuilder& b, Output x) {
            return WeightedSum(b, b.Lrn(x, 2, 1.0f, 0.3f, 0.75f), 29,
                               Shape{2, 6});
        },
        RandomTensor(Shape{2, 6}, 30));
}

TEST_F(AutodiffTest, BatchNormGradient)
{
    CheckGradient(
        [](GraphBuilder& b, Output x) {
            const Output gamma =
                b.Const(RandomTensor(Shape{3}, 31, 0.5f), "gamma");
            const Output beta =
                b.Const(RandomTensor(Shape{3}, 32, 0.5f), "beta");
            const auto bn = b.BatchNorm(x, gamma, beta, 1e-2f);
            return WeightedSum(b, bn[0], 33, Shape{8, 3});
        },
        RandomTensor(Shape{8, 3}, 34), /*tolerance=*/5e-2f);
}

TEST_F(AutodiffTest, BatchNormParamGradients)
{
    CheckGradient(
        [](GraphBuilder& b, Output x) {
            const Output input =
                b.Const(RandomTensor(Shape{8, 2}, 35), "input");
            const Output beta = b.Const(RandomTensor(Shape{2}, 36), "beta");
            const auto bn = b.BatchNorm(input, x, beta, 1e-2f);
            return WeightedSum(b, bn[0], 37, Shape{8, 2});
        },
        RandomTensor(Shape{2}, 38, 0.5f));
}

TEST_F(AutodiffTest, ReduceSumGradient)
{
    CheckGradient(
        [](GraphBuilder& b, Output x) {
            const Output partial = b.ReduceSum(x, {1}, false);
            return WeightedSum(b, partial, 39, Shape{3});
        },
        RandomTensor(Shape{3, 4}, 40));
}

TEST_F(AutodiffTest, ReduceMeanKeepDimsGradient)
{
    CheckGradient(
        [](GraphBuilder& b, Output x) {
            const Output m = b.ReduceMean(x, {0}, true);
            return WeightedSum(b, m, 41, Shape{1, 4});
        },
        RandomTensor(Shape{3, 4}, 42));
}

TEST_F(AutodiffTest, SoftmaxGradient)
{
    CheckGradient(
        [](GraphBuilder& b, Output x) {
            return WeightedSum(b, b.Softmax(x), 43, Shape{2, 5});
        },
        RandomTensor(Shape{2, 5}, 44));
}

TEST_F(AutodiffTest, LogSoftmaxGradient)
{
    CheckGradient(
        [](GraphBuilder& b, Output x) {
            return WeightedSum(b, b.LogSoftmax(x), 45, Shape{2, 5});
        },
        RandomTensor(Shape{2, 5}, 46));
}

TEST_F(AutodiffTest, ReshapeTransposeGradient)
{
    CheckGradient(
        [](GraphBuilder& b, Output x) {
            const Output r = b.Reshape(x, {4, 3});
            const Output t = b.Transpose(r, {1, 0});
            return WeightedSum(b, t, 47, Shape{3, 4});
        },
        RandomTensor(Shape{2, 6}, 48));
}

TEST_F(AutodiffTest, ConcatGradient)
{
    CheckGradient(
        [](GraphBuilder& b, Output x) {
            const Output c = b.Const(RandomTensor(Shape{2, 3}, 49), "c");
            const Output cat = b.Concat({x, c, x}, 1);
            return WeightedSum(b, cat, 50, Shape{2, 7});
        },
        RandomTensor(Shape{2, 2}, 51), /*tolerance=*/2e-2f, /*delta=*/5e-3f);
}

TEST_F(AutodiffTest, SliceGradient)
{
    CheckGradient(
        [](GraphBuilder& b, Output x) {
            const Output s = b.Slice(x, {1, 0}, {2, 2});
            return WeightedSum(b, s, 52, Shape{2, 2});
        },
        RandomTensor(Shape{4, 3}, 53));
}

TEST_F(AutodiffTest, GatherGradient)
{
    CheckGradient(
        [](GraphBuilder& b, Output x) {
            const Output idx = b.Const(
                Tensor::FromVectorInt(Shape{4}, {2, 0, 2, 1}), "idx");
            const Output g = b.Gather(x, idx);
            return WeightedSum(b, g, 54, Shape{4, 3});
        },
        RandomTensor(Shape{3, 3}, 55));
}

TEST_F(AutodiffTest, TilePadGradient)
{
    CheckGradient(
        [](GraphBuilder& b, Output x) {
            const Output tiled = b.Tile(x, {2, 3});
            const Output padded = b.Pad(tiled, {1, 0, 0, 2});
            return WeightedSum(b, padded, 56, Shape{5, 8});
        },
        RandomTensor(Shape{2, 2}, 57));
}

TEST_F(AutodiffTest, SoftmaxCrossEntropyGradient)
{
    CheckGradient(
        [](GraphBuilder& b, Output x) {
            const Output labels = b.Const(
                Tensor::FromVectorInt(Shape{3}, {1, 0, 3}), "labels");
            return b.SoftmaxCrossEntropy(x, labels)[0];
        },
        RandomTensor(Shape{3, 4}, 58));
}

TEST_F(AutodiffTest, CtcLossGradientThroughGraph)
{
    CheckGradient(
        [](GraphBuilder& b, Output x) {
            const Output labels = b.Const(
                Tensor::FromVectorInt(Shape{2}, {1, 2}), "labels");
            return b.CtcLoss(x, labels, 0)[0];
        },
        RandomTensor(Shape{5, 3}, 59));
}

TEST_F(AutodiffTest, SplitGradient)
{
    CheckGradient(
        [](GraphBuilder& b, Output x) {
            const auto parts = b.Split(x, 1, 3);
            // Use the parts asymmetrically so each grad path matters.
            const Output combined = b.Add(
                b.Mul(parts[0], b.ScalarConst(2.0f)),
                b.Sub(parts[2], parts[1]));
            return WeightedSum(b, combined, 70, Shape{2, 2});
        },
        RandomTensor(Shape{2, 6}, 71));
}

TEST_F(AutodiffTest, SplitWithUnusedOutputGradient)
{
    // One part never reaches the loss; its gradient contribution must
    // be zero, not an error.
    CheckGradient(
        [](GraphBuilder& b, Output x) {
            const auto parts = b.Split(x, 1, 2);
            return WeightedSum(b, parts[0], 72, Shape{3, 2});
        },
        RandomTensor(Shape{3, 4}, 73));
}

TEST_F(AutodiffTest, ClipByValueGradient)
{
    CheckGradient(
        [](GraphBuilder& b, Output x) {
            return WeightedSum(b, b.ClipByValue(x, -0.5f, 0.5f), 60,
                               Shape{6});
        },
        // Values away from the clip boundaries (kinks).
        Tensor::FromVector({-2.0f, -0.8f, -0.2f, 0.1f, 0.3f, 1.5f}));
}

TEST_F(AutodiffTest, StopGradientBlocksFlow)
{
    ops::RegisterStandardOps();
    runtime::Session session;
    auto b = session.MakeBuilder();
    const Output x = b.Placeholder("x");
    const Output blocked = b.StopGradient(b.Square(x));
    const Output loss = b.ReduceSum(b.Mul(blocked, x), {}, false);
    const auto grads = BuildGradients(b, loss, {x});

    runtime::FeedMap feeds;
    feeds[x.node] = Tensor::FromVector({2.0f});
    const auto out = session.Run(feeds, {grads[0]});
    // d/dx [stop(x^2) * x] = x^2 = 4 (no flow through the stop branch).
    EXPECT_FLOAT_EQ(out[0].data<float>()[0], 4.0f);
}

TEST_F(AutodiffTest, DisconnectedTargetGetsZeros)
{
    ops::RegisterStandardOps();
    runtime::Session session;
    auto b = session.MakeBuilder();
    const Output x = b.Placeholder("x");
    const Output unrelated = b.Placeholder("unrelated");
    const Output loss = b.ReduceSum(b.Square(x), {}, false);
    const auto grads = BuildGradients(b, loss, {unrelated});

    runtime::FeedMap feeds;
    feeds[x.node] = Tensor::FromVector({1.0f});
    feeds[unrelated.node] = Tensor::FromVector({5.0f, 6.0f});
    const auto out = session.Run(feeds, {grads[0]});
    EXPECT_EQ(out[0].shape(), Shape({2}));
    EXPECT_FLOAT_EQ(out[0].data<float>()[0], 0.0f);
}

TEST_F(AutodiffTest, FanOutAccumulatesGradients)
{
    ops::RegisterStandardOps();
    runtime::Session session;
    auto b = session.MakeBuilder();
    const Output x = b.Placeholder("x");
    // loss = x*x + 3x + x => dloss/dx = 2x + 4
    const Output loss = b.ReduceSum(
        b.Add(b.Add(b.Square(x), b.Mul(b.ScalarConst(3.0f), x)), x), {},
        false);
    const auto grads = BuildGradients(b, loss, {x});

    runtime::FeedMap feeds;
    feeds[x.node] = Tensor::FromVector({5.0f});
    const auto out = session.Run(feeds, {grads[0]});
    EXPECT_FLOAT_EQ(out[0].data<float>()[0], 14.0f);
}

TEST_F(AutodiffTest, MissingGradientFunctionThrows)
{
    ops::RegisterStandardOps();
    runtime::Session session;
    auto b = session.MakeBuilder();
    const Output x = b.Placeholder("x");
    // ArgMax has no gradient; routing loss through it must fail loudly
    // ... but only if gradient actually flows into it. Build a loss
    // whose only path is through ArgMax-as-float (via a hack op chain
    // is impossible since ArgMax yields int32), so instead verify the
    // registry lookup directly.
    EXPECT_EQ(GradientRegistry::Global().Lookup("ArgMax"), nullptr);
    EXPECT_NE(GradientRegistry::Global().Lookup("MatMul"), nullptr);
    (void)x;
}

}  // namespace
}  // namespace fathom::autodiff
