/**
 * @file
 * Unit and property tests for the math kernels, checked against naive
 * reference implementations.
 */
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <limits>
#include <tuple>
#include <vector>

#include "kernels/conv2d.h"
#include "kernels/data_movement.h"
#include "kernels/elementwise.h"
#include "kernels/matmul.h"
#include "kernels/normalization.h"
#include "kernels/pooling.h"
#include "kernels/reduction.h"
#include "parallel/thread_pool.h"
#include "test_util.h"

namespace fathom::kernels {
namespace {

using test::ExpectTensorNear;
using test::RandomTensor;

parallel::ThreadPool&
Pool()
{
    static parallel::ThreadPool pool(1);
    return pool;
}

/** Naive O(mnk) reference matmul. */
Tensor
NaiveMatMul(const Tensor& a, const Tensor& b, bool ta, bool tb)
{
    const std::int64_t m = ta ? a.shape().dim(1) : a.shape().dim(0);
    const std::int64_t k = ta ? a.shape().dim(0) : a.shape().dim(1);
    const std::int64_t n = tb ? b.shape().dim(0) : b.shape().dim(1);
    Tensor c = Tensor::Zeros(Shape{m, n});
    auto a_at = [&](std::int64_t i, std::int64_t kk) {
        return ta ? a.data<float>()[kk * m + i] : a.data<float>()[i * k + kk];
    };
    auto b_at = [&](std::int64_t kk, std::int64_t j) {
        return tb ? b.data<float>()[j * k + kk] : b.data<float>()[kk * n + j];
    };
    for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t j = 0; j < n; ++j) {
            float acc = 0.0f;
            for (std::int64_t kk = 0; kk < k; ++kk) {
                acc += a_at(i, kk) * b_at(kk, j);
            }
            c.data<float>()[i * n + j] = acc;
        }
    }
    return c;
}

class MatMulParamTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, bool, bool>> {
};

TEST_P(MatMulParamTest, MatchesNaive)
{
    const auto [m, k, n, ta, tb] = GetParam();
    const Tensor a = RandomTensor(ta ? Shape{k, m} : Shape{m, k}, 1);
    const Tensor b = RandomTensor(tb ? Shape{n, k} : Shape{k, n}, 2);
    ExpectTensorNear(NaiveMatMul(a, b, ta, tb), MatMul(a, b, ta, tb, Pool()),
                     1e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulParamTest,
    ::testing::Values(std::make_tuple(1, 1, 1, false, false),
                      std::make_tuple(4, 7, 3, false, false),
                      std::make_tuple(4, 7, 3, true, false),
                      std::make_tuple(4, 7, 3, false, true),
                      std::make_tuple(4, 7, 3, true, true),
                      std::make_tuple(16, 16, 16, false, false),
                      std::make_tuple(33, 17, 9, true, true),
                      std::make_tuple(1, 64, 1, false, false),
                      std::make_tuple(64, 1, 64, false, true)));

TEST(MatMulTest, RejectsBadShapes)
{
    const Tensor a = RandomTensor(Shape{2, 3});
    const Tensor b = RandomTensor(Shape{4, 5});
    EXPECT_THROW(MatMul(a, b, false, false, Pool()), std::invalid_argument);
    const Tensor v = RandomTensor(Shape{3});
    EXPECT_THROW(MatMul(v, b, false, false, Pool()), std::invalid_argument);
}

TEST(MatMulTest, ParallelMatchesSerial)
{
    parallel::ThreadPool pool4(4);
    const Tensor a = RandomTensor(Shape{37, 19}, 3);
    const Tensor b = RandomTensor(Shape{19, 23}, 4);
    ExpectTensorNear(MatMul(a, b, false, false, Pool()),
                     MatMul(a, b, false, false, pool4), 1e-4f);
}

// ---- GEMM engine battery --------------------------------------------------
//
// The blocked engine has edge paths (partial 6x16 register tiles, the
// m/n zero-padded panel lanes, multi-KC accumulation) that only fire
// at particular sizes, so the battery sweeps odd, prime, and
// around-the-blocking-constant sizes exhaustively against the naive
// reference. These suites carry the `kernels` ctest label (see
// tests/CMakeLists.txt).

TEST(GemmEngineBattery, ExhaustiveSizesAllTransposeCombos)
{
    // 1..5 hit degenerate tiles, 17/63/65 straddle strip widths, and
    // 97 exercises several partial MC/NR strips at once.
    const std::vector<std::int64_t> sizes = {1, 2, 3, 5, 17, 63, 64, 65, 97};
    std::uint64_t seed = 1000;
    for (const bool ta : {false, true}) {
        for (const bool tb : {false, true}) {
            for (const std::int64_t m : sizes) {
                for (const std::int64_t k : sizes) {
                    for (const std::int64_t n : sizes) {
                        SCOPED_TRACE("m=" + std::to_string(m) +
                                     " k=" + std::to_string(k) +
                                     " n=" + std::to_string(n) +
                                     " ta=" + std::to_string(ta) +
                                     " tb=" + std::to_string(tb));
                        const Tensor a = RandomTensor(
                            ta ? Shape{k, m} : Shape{m, k}, ++seed);
                        const Tensor b = RandomTensor(
                            tb ? Shape{n, k} : Shape{k, n}, ++seed);
                        ExpectTensorNear(NaiveMatMul(a, b, ta, tb),
                                         MatMul(a, b, ta, tb, Pool()),
                                         1e-3f);
                    }
                }
            }
        }
    }
}

TEST(GemmEngineBattery, MultiKcBlockAccumulation)
{
    // k > 256 spans several KC blocks, exercising the accumulate-into-C
    // path; odd m/n keep the edge tiles partial at the same time.
    for (const auto& [m, k, n] : std::vector<std::array<std::int64_t, 3>>{
             {3, 300, 5}, {65, 513, 33}, {97, 769, 17}}) {
        for (const bool ta : {false, true}) {
            for (const bool tb : {false, true}) {
                SCOPED_TRACE("m=" + std::to_string(m) +
                             " k=" + std::to_string(k) +
                             " n=" + std::to_string(n) +
                             " ta=" + std::to_string(ta) +
                             " tb=" + std::to_string(tb));
                const Tensor a =
                    RandomTensor(ta ? Shape{k, m} : Shape{m, k}, m + k);
                const Tensor b =
                    RandomTensor(tb ? Shape{n, k} : Shape{k, n}, k + n);
                ExpectTensorNear(NaiveMatMul(a, b, ta, tb),
                                 MatMul(a, b, ta, tb, Pool()), 5e-3f);
            }
        }
    }
}

TEST(GemmEngineTest, ZeroTimesInfIsNaNNotZero)
{
    // The pre-engine kernel skipped a == 0 operands, silently turning
    // 0 * Inf and 0 * NaN into 0. IEEE says those products are NaN and
    // the engine must propagate them.
    const Tensor a = Tensor::FromVector(Shape{1, 2}, {0.0f, 1.0f});
    Tensor b = Tensor::FromVector(Shape{2, 1}, {0.0f, 2.0f});
    b.data<float>()[0] = std::numeric_limits<float>::infinity();
    const Tensor c = MatMul(a, b, false, false, Pool());
    EXPECT_TRUE(std::isnan(c.data<float>()[0]));

    b.data<float>()[0] = std::numeric_limits<float>::quiet_NaN();
    const Tensor c2 = MatMul(a, b, false, false, Pool());
    EXPECT_TRUE(std::isnan(c2.data<float>()[0]));
}

TEST(GemmEngineTest, NaNPropagatesAcrossKcBlocks)
{
    // Poison one element deep in the second KC block (k index > 256):
    // the accumulate path must carry the NaN through, and rows that
    // never meet the poisoned column must stay finite.
    const std::int64_t m = 4, k = 400, n = 8;
    Tensor a = Tensor::Zeros(Shape{m, k});
    const Tensor b = RandomTensor(Shape{k, n}, 77);
    a.data<float>()[0 * k + 301] = std::numeric_limits<float>::quiet_NaN();
    a.data<float>()[1 * k + 5] = 1.0f;
    const Tensor c = MatMul(a, b, false, false, Pool());
    for (std::int64_t j = 0; j < n; ++j) {
        EXPECT_TRUE(std::isnan(c.data<float>()[0 * n + j])) << j;
        EXPECT_FALSE(std::isnan(c.data<float>()[1 * n + j])) << j;
    }
}

/** Naive reference convolution. */
Tensor
NaiveConv2D(const Tensor& input, const Tensor& filter, std::int64_t stride,
            Padding padding)
{
    const auto g =
        ResolveConv2D(input.shape(), filter.shape(), stride, padding);
    Tensor out = Tensor::Zeros(Shape{g.batch, g.out_h, g.out_w, g.out_c});
    const float* in = input.data<float>();
    const float* w = filter.data<float>();
    float* o = out.data<float>();
    for (std::int64_t n = 0; n < g.batch; ++n) {
        for (std::int64_t oh = 0; oh < g.out_h; ++oh) {
            for (std::int64_t ow = 0; ow < g.out_w; ++ow) {
                for (std::int64_t oc = 0; oc < g.out_c; ++oc) {
                    float acc = 0.0f;
                    for (std::int64_t kh = 0; kh < g.k_h; ++kh) {
                        for (std::int64_t kw = 0; kw < g.k_w; ++kw) {
                            const std::int64_t ih =
                                oh * stride - g.pad_top + kh;
                            const std::int64_t iw =
                                ow * stride - g.pad_left + kw;
                            if (ih < 0 || ih >= g.in_h || iw < 0 ||
                                iw >= g.in_w) {
                                continue;
                            }
                            for (std::int64_t c = 0; c < g.in_c; ++c) {
                                acc += in[((n * g.in_h + ih) * g.in_w + iw) *
                                              g.in_c +
                                          c] *
                                       w[((kh * g.k_w + kw) * g.in_c + c) *
                                             g.out_c +
                                         oc];
                            }
                        }
                    }
                    o[((n * g.out_h + oh) * g.out_w + ow) * g.out_c + oc] =
                        acc;
                }
            }
        }
    }
    return out;
}

class Conv2DParamTest
    : public ::testing::TestWithParam<
          std::tuple<int, int, int, int, int, int, Padding>> {};

TEST_P(Conv2DParamTest, MatchesNaive)
{
    const auto [n, hw, ic, k, oc, stride, padding] = GetParam();
    const Tensor input = RandomTensor(Shape{n, hw, hw, ic}, 5);
    const Tensor filter = RandomTensor(Shape{k, k, ic, oc}, 6, 0.5f);
    ExpectTensorNear(NaiveConv2D(input, filter, stride, padding),
                     Conv2D(input, filter, stride, padding, Pool()), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Conv2DParamTest,
    ::testing::Values(
        std::make_tuple(1, 5, 1, 3, 1, 1, Padding::kSame),
        std::make_tuple(2, 8, 3, 3, 4, 1, Padding::kSame),
        std::make_tuple(2, 8, 3, 3, 4, 2, Padding::kSame),
        std::make_tuple(1, 9, 2, 5, 3, 2, Padding::kSame),
        std::make_tuple(2, 8, 3, 3, 4, 1, Padding::kValid),
        std::make_tuple(1, 9, 2, 5, 3, 2, Padding::kValid),
        std::make_tuple(1, 7, 4, 1, 8, 1, Padding::kSame),
        std::make_tuple(3, 6, 2, 3, 2, 3, Padding::kValid)));

TEST(Conv2DTest, GeometrySame)
{
    const auto g = ResolveConv2D(Shape{1, 8, 8, 3}, Shape{3, 3, 3, 16}, 2,
                                 Padding::kSame);
    EXPECT_EQ(g.out_h, 4);
    EXPECT_EQ(g.out_w, 4);
}

TEST(Conv2DTest, GeometryValid)
{
    const auto g = ResolveConv2D(Shape{1, 8, 8, 3}, Shape{3, 3, 3, 16}, 1,
                                 Padding::kValid);
    EXPECT_EQ(g.out_h, 6);
    EXPECT_EQ(g.pad_top, 0);
}

TEST(Conv2DTest, ChannelMismatchThrows)
{
    EXPECT_THROW(ResolveConv2D(Shape{1, 8, 8, 3}, Shape{3, 3, 4, 16}, 1,
                               Padding::kSame),
                 std::invalid_argument);
}

/**
 * Backprop kernels are validated against the definition of the
 * adjoint: <Conv(x, w), g> = <x, ConvBackInput(g)> = <w, ConvBackFilter(g)>.
 */
TEST(Conv2DTest, BackpropInputIsAdjoint)
{
    const Shape in_shape{2, 6, 6, 3};
    const Tensor w = RandomTensor(Shape{3, 3, 3, 4}, 7, 0.5f);
    const Tensor x = RandomTensor(in_shape, 8);
    const Tensor y = Conv2D(x, w, 2, Padding::kSame, Pool());
    const Tensor g = RandomTensor(y.shape(), 9);
    const Tensor gx =
        Conv2DBackpropInput(in_shape, w, g, 2, Padding::kSame, Pool());

    double lhs = 0.0;
    for (std::int64_t i = 0; i < y.num_elements(); ++i) {
        lhs += static_cast<double>(y.data<float>()[i] * g.data<float>()[i]);
    }
    double rhs = 0.0;
    for (std::int64_t i = 0; i < x.num_elements(); ++i) {
        rhs += static_cast<double>(x.data<float>()[i] * gx.data<float>()[i]);
    }
    EXPECT_NEAR(lhs, rhs, 1e-2 * std::max(1.0, std::fabs(lhs)));
}

TEST(Conv2DTest, BackpropFilterIsAdjoint)
{
    const Shape w_shape{3, 3, 3, 4};
    const Tensor w = RandomTensor(w_shape, 10, 0.5f);
    const Tensor x = RandomTensor(Shape{2, 6, 6, 3}, 11);
    const Tensor y = Conv2D(x, w, 1, Padding::kValid, Pool());
    const Tensor g = RandomTensor(y.shape(), 12);
    const Tensor gw =
        Conv2DBackpropFilter(x, w_shape, g, 1, Padding::kValid, Pool());

    double lhs = 0.0;
    for (std::int64_t i = 0; i < y.num_elements(); ++i) {
        lhs += static_cast<double>(y.data<float>()[i] * g.data<float>()[i]);
    }
    double rhs = 0.0;
    for (std::int64_t i = 0; i < w.num_elements(); ++i) {
        rhs += static_cast<double>(w.data<float>()[i] * gw.data<float>()[i]);
    }
    EXPECT_NEAR(lhs, rhs, 1e-2 * std::max(1.0, std::fabs(lhs)));
}

// ---- Conv-via-GEMM battery ------------------------------------------------
//
// Conv2D and both its gradients now lower onto the GEMM engine
// (im2col packing); the direct loop nests live on only here, as the
// trivially-correct references the lowering is checked against.

/** Direct-scatter reference for Conv2DBackpropInput. */
Tensor
NaiveConvBackInput(const Shape& in_shape, const Tensor& filter,
                   const Tensor& grad_out, std::int64_t stride,
                   Padding padding)
{
    const auto g = ResolveConv2D(in_shape, filter.shape(), stride, padding);
    Tensor gin = Tensor::Zeros(in_shape);
    const float* w = filter.data<float>();
    const float* go = grad_out.data<float>();
    float* gi = gin.data<float>();
    for (std::int64_t n = 0; n < g.batch; ++n) {
        for (std::int64_t oh = 0; oh < g.out_h; ++oh) {
            for (std::int64_t ow = 0; ow < g.out_w; ++ow) {
                for (std::int64_t kh = 0; kh < g.k_h; ++kh) {
                    for (std::int64_t kw = 0; kw < g.k_w; ++kw) {
                        const std::int64_t ih = oh * stride - g.pad_top + kh;
                        const std::int64_t iw = ow * stride - g.pad_left + kw;
                        if (ih < 0 || ih >= g.in_h || iw < 0 ||
                            iw >= g.in_w) {
                            continue;
                        }
                        for (std::int64_t c = 0; c < g.in_c; ++c) {
                            for (std::int64_t oc = 0; oc < g.out_c; ++oc) {
                                gi[((n * g.in_h + ih) * g.in_w + iw) *
                                       g.in_c +
                                   c] +=
                                    go[((n * g.out_h + oh) * g.out_w + ow) *
                                           g.out_c +
                                       oc] *
                                    w[((kh * g.k_w + kw) * g.in_c + c) *
                                          g.out_c +
                                      oc];
                            }
                        }
                    }
                }
            }
        }
    }
    return gin;
}

/** Direct-accumulation reference for Conv2DBackpropFilter. */
Tensor
NaiveConvBackFilter(const Tensor& input, const Shape& filter_shape,
                    const Tensor& grad_out, std::int64_t stride,
                    Padding padding)
{
    const auto g = ResolveConv2D(input.shape(), filter_shape, stride,
                                 padding);
    Tensor gw = Tensor::Zeros(filter_shape);
    const float* in = input.data<float>();
    const float* go = grad_out.data<float>();
    float* w = gw.data<float>();
    for (std::int64_t n = 0; n < g.batch; ++n) {
        for (std::int64_t oh = 0; oh < g.out_h; ++oh) {
            for (std::int64_t ow = 0; ow < g.out_w; ++ow) {
                for (std::int64_t kh = 0; kh < g.k_h; ++kh) {
                    for (std::int64_t kw = 0; kw < g.k_w; ++kw) {
                        const std::int64_t ih = oh * stride - g.pad_top + kh;
                        const std::int64_t iw = ow * stride - g.pad_left + kw;
                        if (ih < 0 || ih >= g.in_h || iw < 0 ||
                            iw >= g.in_w) {
                            continue;
                        }
                        for (std::int64_t c = 0; c < g.in_c; ++c) {
                            for (std::int64_t oc = 0; oc < g.out_c; ++oc) {
                                w[((kh * g.k_w + kw) * g.in_c + c) *
                                      g.out_c +
                                  oc] +=
                                    in[((n * g.in_h + ih) * g.in_w + iw) *
                                           g.in_c +
                                       c] *
                                    go[((n * g.out_h + oh) * g.out_w + ow) *
                                           g.out_c +
                                       oc];
                            }
                        }
                    }
                }
            }
        }
    }
    return gw;
}

TEST(ConvLoweringBattery, ForwardAndGradientsMatchDirectReference)
{
    std::uint64_t seed = 5000;
    for (const std::int64_t hw : {5, 8, 9}) {
        for (const std::int64_t ic : {1, 3}) {
            for (const std::int64_t ks : {1, 3, 5}) {
                for (const std::int64_t oc : {1, 4}) {
                    for (const std::int64_t stride : {1, 2}) {
                        for (const Padding padding :
                             {Padding::kSame, Padding::kValid}) {
                            if (padding == Padding::kValid && ks > hw) {
                                continue;
                            }
                            SCOPED_TRACE(
                                "hw=" + std::to_string(hw) +
                                " ic=" + std::to_string(ic) +
                                " k=" + std::to_string(ks) +
                                " oc=" + std::to_string(oc) +
                                " stride=" + std::to_string(stride) +
                                (padding == Padding::kSame ? " SAME"
                                                           : " VALID"));
                            const Shape in_shape{2, hw, hw, ic};
                            const Shape w_shape{ks, ks, ic, oc};
                            const Tensor x = RandomTensor(in_shape, ++seed);
                            const Tensor w =
                                RandomTensor(w_shape, ++seed, 0.5f);
                            const Tensor y =
                                Conv2D(x, w, stride, padding, Pool());
                            ExpectTensorNear(
                                NaiveConv2D(x, w, stride, padding), y,
                                1e-3f);
                            const Tensor g =
                                RandomTensor(y.shape(), ++seed);
                            ExpectTensorNear(
                                NaiveConvBackInput(in_shape, w, g, stride,
                                                   padding),
                                Conv2DBackpropInput(in_shape, w, g, stride,
                                                    padding, Pool()),
                                1e-3f);
                            ExpectTensorNear(
                                NaiveConvBackFilter(x, w_shape, g, stride,
                                                    padding),
                                Conv2DBackpropFilter(x, w_shape, g, stride,
                                                     padding, Pool()),
                                1e-3f);
                        }
                    }
                }
            }
        }
    }
}

TEST(PoolingTest, MaxPoolBasic)
{
    const Tensor x = Tensor::FromVector(
        Shape{1, 4, 4, 1},
        {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16});
    const Tensor y = MaxPool(x, 2, 2, Padding::kValid, Pool());
    ExpectTensorNear(Tensor::FromVector(Shape{1, 2, 2, 1}, {6, 8, 14, 16}),
                     y);
}

TEST(PoolingTest, AvgPoolBasic)
{
    const Tensor x = Tensor::FromVector(Shape{1, 2, 2, 1}, {1, 3, 5, 7});
    const Tensor y = AvgPool(x, 2, 2, Padding::kValid, Pool());
    EXPECT_FLOAT_EQ(y.data<float>()[0], 4.0f);
}

TEST(PoolingTest, MaxPoolGradRoutesToArgmax)
{
    const Tensor x = Tensor::FromVector(Shape{1, 2, 2, 1}, {1, 9, 3, 2});
    const Tensor g = Tensor::FromVector(Shape{1, 1, 1, 1}, {5});
    const Tensor gx = MaxPoolGrad(x, g, 2, 2, Padding::kValid, Pool());
    ExpectTensorNear(Tensor::FromVector(Shape{1, 2, 2, 1}, {0, 5, 0, 0}), gx);
}

TEST(PoolingTest, AvgPoolGradSpreadsEvenly)
{
    const Tensor g = Tensor::FromVector(Shape{1, 1, 1, 1}, {8});
    const Tensor gx =
        AvgPoolGrad(Shape{1, 2, 2, 1}, g, 2, 2, Padding::kValid, Pool());
    ExpectTensorNear(Tensor::FromVector(Shape{1, 2, 2, 1}, {2, 2, 2, 2}), gx);
}

TEST(PoolingTest, SamePaddingCountsOnlyValidCells)
{
    // 3x3 input, 2x2 window, stride 2, SAME: corner windows are clipped.
    const Tensor x = Tensor::Full(Shape{1, 3, 3, 1}, 1.0f);
    const Tensor y = AvgPool(x, 2, 2, Padding::kSame, Pool());
    for (std::int64_t i = 0; i < y.num_elements(); ++i) {
        EXPECT_FLOAT_EQ(y.data<float>()[i], 1.0f);
    }
}

TEST(ElementwiseTest, BroadcastShapes)
{
    EXPECT_EQ(BroadcastShape(Shape{2, 3}, Shape{2, 3}), Shape({2, 3}));
    EXPECT_EQ(BroadcastShape(Shape{2, 1}, Shape{1, 3}), Shape({2, 3}));
    EXPECT_EQ(BroadcastShape(Shape{3}, Shape{2, 3}), Shape({2, 3}));
    EXPECT_EQ(BroadcastShape(Shape{}, Shape{4, 5}), Shape({4, 5}));
    EXPECT_THROW(BroadcastShape(Shape{2, 3}, Shape{2, 4}),
                 std::invalid_argument);
}

TEST(ElementwiseTest, BinaryMapSameShape)
{
    const Tensor a = Tensor::FromVector({1, 2, 3});
    const Tensor b = Tensor::FromVector({10, 20, 30});
    const Tensor c =
        BinaryMap(a, b, [](float x, float y) { return x + y; }, Pool());
    ExpectTensorNear(Tensor::FromVector({11, 22, 33}), c);
}

TEST(ElementwiseTest, BinaryMapBroadcastRow)
{
    const Tensor a = Tensor::FromVector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
    const Tensor b = Tensor::FromVector(Shape{3}, {10, 20, 30});
    const Tensor c =
        BinaryMap(a, b, [](float x, float y) { return x + y; }, Pool());
    ExpectTensorNear(
        Tensor::FromVector(Shape{2, 3}, {11, 22, 33, 14, 25, 36}), c);
}

TEST(ElementwiseTest, BinaryMapBroadcastColumn)
{
    const Tensor a = Tensor::FromVector(Shape{2, 1}, {1, 2});
    const Tensor b = Tensor::FromVector(Shape{1, 3}, {10, 20, 30});
    const Tensor c =
        BinaryMap(a, b, [](float x, float y) { return x * y; }, Pool());
    ExpectTensorNear(
        Tensor::FromVector(Shape{2, 3}, {10, 20, 30, 20, 40, 60}), c);
}

TEST(ElementwiseTest, BinaryMapScalarBroadcast)
{
    const Tensor a = Tensor::Scalar(2.0f);
    const Tensor b = Tensor::FromVector(Shape{2, 2}, {1, 2, 3, 4});
    const Tensor c =
        BinaryMap(a, b, [](float x, float y) { return x * y; }, Pool());
    ExpectTensorNear(Tensor::FromVector(Shape{2, 2}, {2, 4, 6, 8}), c);
}

TEST(ElementwiseTest, ReduceToShapeSumsBroadcastAxes)
{
    const Tensor t =
        Tensor::FromVector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
    ExpectTensorNear(Tensor::FromVector(Shape{3}, {5, 7, 9}),
                     ReduceToShape(t, Shape{3}, Pool()));
    ExpectTensorNear(Tensor::FromVector(Shape{2, 1}, {6, 15}),
                     ReduceToShape(t, Shape{2, 1}, Pool()));
    ExpectTensorNear(Tensor::Scalar(21.0f),
                     ReduceToShape(t, Shape{}, Pool()));
}

TEST(ElementwiseTest, ReduceToShapeIdentity)
{
    const Tensor t = Tensor::FromVector({1, 2});
    ExpectTensorNear(t, ReduceToShape(t, t.shape(), Pool()));
}

TEST(ReductionTest, ReduceSumAxes)
{
    const Tensor t =
        Tensor::FromVector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
    ExpectTensorNear(Tensor::FromVector(Shape{3}, {5, 7, 9}),
                     Reduce(t, ReduceOp::kSum, {0}, false, Pool()));
    ExpectTensorNear(Tensor::FromVector(Shape{2}, {6, 15}),
                     Reduce(t, ReduceOp::kSum, {1}, false, Pool()));
    ExpectTensorNear(Tensor::FromVector(Shape{2, 1}, {6, 15}),
                     Reduce(t, ReduceOp::kSum, {1}, true, Pool()));
    ExpectTensorNear(Tensor::Scalar(21.0f),
                     Reduce(t, ReduceOp::kSum, {}, false, Pool()));
}

TEST(ReductionTest, ReduceMeanAndMax)
{
    const Tensor t =
        Tensor::FromVector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
    ExpectTensorNear(Tensor::FromVector(Shape{2}, {2, 5}),
                     Reduce(t, ReduceOp::kMean, {1}, false, Pool()));
    ExpectTensorNear(Tensor::FromVector(Shape{2}, {3, 6}),
                     Reduce(t, ReduceOp::kMax, {-1}, false, Pool()));
}

TEST(ReductionTest, NegativeAxisNormalization)
{
    const Tensor t = RandomTensor(Shape{2, 3, 4}, 20);
    ExpectTensorNear(Reduce(t, ReduceOp::kSum, {2}, false, Pool()),
                     Reduce(t, ReduceOp::kSum, {-1}, false, Pool()));
    EXPECT_THROW(Reduce(t, ReduceOp::kSum, {3}, false, Pool()),
                 std::invalid_argument);
}

TEST(ReductionTest, SoftmaxRowsSumToOne)
{
    const Tensor t = RandomTensor(Shape{4, 7}, 21, 3.0f);
    const Tensor s = Softmax(t, Pool());
    for (std::int64_t r = 0; r < 4; ++r) {
        float sum = 0.0f;
        for (std::int64_t c = 0; c < 7; ++c) {
            const float v = s.data<float>()[r * 7 + c];
            EXPECT_GT(v, 0.0f);
            sum += v;
        }
        EXPECT_NEAR(sum, 1.0f, 1e-5f);
    }
}

TEST(ReductionTest, SoftmaxNumericallyStable)
{
    const Tensor t = Tensor::FromVector(Shape{1, 3}, {1000, 1001, 1002});
    const Tensor s = Softmax(t, Pool());
    EXPECT_FALSE(std::isnan(s.data<float>()[0]));
    EXPECT_NEAR(s.data<float>()[0] + s.data<float>()[1] + s.data<float>()[2],
                1.0f, 1e-5f);
}

TEST(ReductionTest, LogSoftmaxMatchesLogOfSoftmax)
{
    const Tensor t = RandomTensor(Shape{3, 5}, 22);
    const Tensor ls = LogSoftmax(t, Pool());
    const Tensor s = Softmax(t, Pool());
    for (std::int64_t i = 0; i < t.num_elements(); ++i) {
        EXPECT_NEAR(ls.data<float>()[i], std::log(s.data<float>()[i]), 1e-4f);
    }
}

TEST(ReductionTest, ArgMaxLastDim)
{
    const Tensor t =
        Tensor::FromVector(Shape{2, 3}, {1, 9, 2, 7, 3, 5});
    const Tensor a = ArgMaxLastDim(t, Pool());
    EXPECT_EQ(a.dtype(), DType::kInt32);
    EXPECT_EQ(a.data<std::int32_t>()[0], 1);
    EXPECT_EQ(a.data<std::int32_t>()[1], 0);
}

TEST(ReductionTest, TileAndGradRoundTrip)
{
    const Tensor t = Tensor::FromVector(Shape{1, 2}, {1, 2});
    const Tensor tiled = Tile(t, {3, 2}, Pool());
    EXPECT_EQ(tiled.shape(), Shape({3, 4}));
    EXPECT_FLOAT_EQ(tiled.data<float>()[2], 1.0f);  // repeat along cols.
    EXPECT_FLOAT_EQ(tiled.data<float>()[4], 1.0f);  // repeat along rows.

    const Tensor g = Tensor::Full(Shape{3, 4}, 1.0f);
    const Tensor gt = TileGrad(g, Shape{1, 2}, {3, 2}, Pool());
    ExpectTensorNear(Tensor::FromVector(Shape{1, 2}, {6, 6}), gt);
}

TEST(DataMovementTest, Transpose2D)
{
    const Tensor t =
        Tensor::FromVector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
    const Tensor tr = Transpose(t, {1, 0}, Pool());
    ExpectTensorNear(Tensor::FromVector(Shape{3, 2}, {1, 4, 2, 5, 3, 6}),
                     tr);
}

TEST(DataMovementTest, Transpose3D)
{
    const Tensor t = RandomTensor(Shape{2, 3, 4}, 23);
    const Tensor tr = Transpose(t, {2, 0, 1}, Pool());
    EXPECT_EQ(tr.shape(), Shape({4, 2, 3}));
    // spot-check: tr[d, a, b] == t[a, b, d]
    EXPECT_EQ(tr.data<float>()[(1 * 2 + 1) * 3 + 2],
              t.data<float>()[(1 * 3 + 2) * 4 + 1]);
}

TEST(DataMovementTest, TransposeRejectsBadPerm)
{
    const Tensor t = RandomTensor(Shape{2, 3}, 24);
    EXPECT_THROW(Transpose(t, {0, 0}, Pool()), std::invalid_argument);
    EXPECT_THROW(Transpose(t, {0}, Pool()), std::invalid_argument);
}

TEST(DataMovementTest, ConcatAxis0And1)
{
    const Tensor a = Tensor::FromVector(Shape{1, 2}, {1, 2});
    const Tensor b = Tensor::FromVector(Shape{1, 2}, {3, 4});
    ExpectTensorNear(Tensor::FromVector(Shape{2, 2}, {1, 2, 3, 4}),
                     Concat({a, b}, 0, Pool()));
    ExpectTensorNear(Tensor::FromVector(Shape{1, 4}, {1, 2, 3, 4}),
                     Concat({a, b}, 1, Pool()));
}

TEST(DataMovementTest, ConcatValidation)
{
    const Tensor a = Tensor::FromVector(Shape{1, 2}, {1, 2});
    const Tensor b = Tensor::FromVector(Shape{1, 3}, {3, 4, 5});
    EXPECT_THROW(Concat({a, b}, 0, Pool()), std::invalid_argument);
    EXPECT_NO_THROW(Concat({a, b}, 1, Pool()));
    EXPECT_THROW(Concat({}, 0, Pool()), std::invalid_argument);
}

TEST(DataMovementTest, SliceBasicAndToEnd)
{
    const Tensor t =
        Tensor::FromVector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
    ExpectTensorNear(Tensor::FromVector(Shape{1, 2}, {5, 6}),
                     Slice(t, {1, 1}, {1, 2}, Pool()));
    ExpectTensorNear(Tensor::FromVector(Shape{2, 2}, {2, 3, 5, 6}),
                     Slice(t, {0, 1}, {-1, -1}, Pool()));
    EXPECT_THROW(Slice(t, {1, 2}, {1, 3}, Pool()), std::invalid_argument);
}

TEST(DataMovementTest, GatherRows)
{
    const Tensor params =
        Tensor::FromVector(Shape{3, 2}, {1, 2, 3, 4, 5, 6});
    const Tensor idx = Tensor::FromVectorInt(Shape{2}, {2, 0});
    const Tensor out = Gather(params, idx, Pool());
    ExpectTensorNear(Tensor::FromVector(Shape{2, 2}, {5, 6, 1, 2}), out);
    const Tensor bad = Tensor::FromVectorInt(Shape{1}, {3});
    EXPECT_THROW(Gather(params, bad, Pool()), std::out_of_range);
}

TEST(DataMovementTest, GatherGradAccumulatesDuplicates)
{
    const Tensor idx = Tensor::FromVectorInt(Shape{3}, {1, 1, 0});
    const Tensor g =
        Tensor::FromVector(Shape{3, 2}, {1, 1, 2, 2, 3, 3});
    const Tensor gp = GatherGrad(Shape{2, 2}, idx, g, Pool());
    ExpectTensorNear(Tensor::FromVector(Shape{2, 2}, {3, 3, 3, 3}), gp);
}

TEST(DataMovementTest, OneHot)
{
    const Tensor idx = Tensor::FromVectorInt(Shape{3}, {0, 2, 5});
    const Tensor out = OneHot(idx, 3, 1.0f, 0.0f, Pool());
    ExpectTensorNear(
        Tensor::FromVector(Shape{3, 3}, {1, 0, 0, 0, 0, 1, 0, 0, 0}), out);
}

TEST(DataMovementTest, PadAndGradRoundTrip)
{
    const Tensor t = Tensor::FromVector(Shape{1, 2}, {7, 8});
    const Tensor padded = Pad(t, {{1, 0}, {1, 1}}, Pool());
    ExpectTensorNear(
        Tensor::FromVector(Shape{2, 4}, {0, 0, 0, 0, 0, 7, 8, 0}), padded);
    ExpectTensorNear(t, PadGrad(padded, {{1, 0}, {1, 1}}, Pool()));
}

TEST(NormalizationTest, LrnMatchesFormula)
{
    const Tensor x = Tensor::FromVector(Shape{1, 4}, {1, 2, 3, 4});
    LrnParams p;
    p.depth_radius = 1;
    p.bias = 2.0f;
    p.alpha = 0.5f;
    p.beta = 1.0f;
    const Tensor y = Lrn(x, p, Pool());
    // channel 0: denom = 2 + 0.5*(1+4) = 4.5
    EXPECT_NEAR(y.data<float>()[0], 1.0f / 4.5f, 1e-5f);
    // channel 1: denom = 2 + 0.5*(1+4+9) = 9
    EXPECT_NEAR(y.data<float>()[1], 2.0f / 9.0f, 1e-5f);
}

TEST(NormalizationTest, LrnGradMatchesFiniteDifference)
{
    const Tensor x = RandomTensor(Shape{2, 5}, 30);
    const Tensor g = RandomTensor(Shape{2, 5}, 31);
    LrnParams p;
    const Tensor analytic = LrnGrad(x, g, p, Pool());

    const float delta = 1e-3f;
    Tensor probe = x.Clone();
    for (std::int64_t i = 0; i < x.num_elements(); ++i) {
        const float saved = probe.data<float>()[i];
        probe.data<float>()[i] = saved + delta;
        const Tensor up = Lrn(probe, p, Pool());
        probe.data<float>()[i] = saved - delta;
        const Tensor down = Lrn(probe, p, Pool());
        probe.data<float>()[i] = saved;
        double numeric = 0.0;
        for (std::int64_t j = 0; j < x.num_elements(); ++j) {
            numeric += static_cast<double>(g.data<float>()[j]) *
                       (up.data<float>()[j] - down.data<float>()[j]) /
                       (2.0 * delta);
        }
        EXPECT_NEAR(analytic.data<float>()[i], numeric, 2e-3)
            << "at index " << i;
    }
}

TEST(NormalizationTest, BatchNormNormalizes)
{
    const Tensor x = RandomTensor(Shape{64, 4}, 32, 3.0f);
    const Tensor gamma = Tensor::Full(Shape{4}, 1.0f);
    const Tensor beta = Tensor::Zeros(Shape{4});
    const auto result = BatchNorm(x, gamma, beta, 1e-5f, Pool());
    // Per-channel output mean ~0, variance ~1.
    for (std::int64_t c = 0; c < 4; ++c) {
        double mean = 0.0;
        double var = 0.0;
        for (std::int64_t r = 0; r < 64; ++r) {
            mean += result.output.data<float>()[r * 4 + c];
        }
        mean /= 64.0;
        for (std::int64_t r = 0; r < 64; ++r) {
            const double d = result.output.data<float>()[r * 4 + c] - mean;
            var += d * d;
        }
        var /= 64.0;
        EXPECT_NEAR(mean, 0.0, 1e-4);
        EXPECT_NEAR(var, 1.0, 1e-2);
    }
}

TEST(NormalizationTest, BatchNormScaleShift)
{
    const Tensor x = RandomTensor(Shape{32, 2}, 33);
    const Tensor gamma = Tensor::FromVector({2.0f, 0.5f});
    const Tensor beta = Tensor::FromVector({1.0f, -1.0f});
    const auto result = BatchNorm(x, gamma, beta, 1e-5f, Pool());
    double mean0 = 0.0;
    for (std::int64_t r = 0; r < 32; ++r) {
        mean0 += result.output.data<float>()[r * 2];
    }
    EXPECT_NEAR(mean0 / 32.0, 1.0, 1e-4);  // beta shifts the mean.
}

TEST(NormalizationTest, BatchNormGradMatchesFiniteDifference)
{
    const Tensor x = RandomTensor(Shape{8, 3}, 34);
    const Tensor gamma = RandomTensor(Shape{3}, 35, 0.5f);
    const Tensor beta = RandomTensor(Shape{3}, 36, 0.5f);
    const Tensor g = RandomTensor(Shape{8, 3}, 37);

    const auto fwd = BatchNorm(x, gamma, beta, 1e-3f, Pool());
    const auto grads =
        BatchNormGrad(x, gamma, fwd.mean, fwd.inv_std, g, Pool());

    auto loss_at = [&](const Tensor& xx) {
        const auto r = BatchNorm(xx, gamma, beta, 1e-3f, Pool());
        double loss = 0.0;
        for (std::int64_t j = 0; j < r.output.num_elements(); ++j) {
            loss += static_cast<double>(g.data<float>()[j]) *
                    r.output.data<float>()[j];
        }
        return loss;
    };

    const float delta = 1e-3f;
    Tensor probe = x.Clone();
    for (std::int64_t i = 0; i < x.num_elements(); ++i) {
        const float saved = probe.data<float>()[i];
        probe.data<float>()[i] = saved + delta;
        const double up = loss_at(probe);
        probe.data<float>()[i] = saved - delta;
        const double down = loss_at(probe);
        probe.data<float>()[i] = saved;
        const double numeric = (up - down) / (2.0 * delta);
        EXPECT_NEAR(grads.grad_input.data<float>()[i], numeric, 5e-3)
            << "at index " << i;
    }
}

}  // namespace
}  // namespace fathom::kernels
