/**
 * @file
 * Tests for the intra-op thread pool.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstring>
#include <mutex>
#include <numeric>
#include <vector>

#include "kernels/conv2d.h"
#include "kernels/matmul.h"
#include "parallel/thread_pool.h"
#include "test_util.h"

namespace fathom::parallel {
namespace {

TEST(ThreadPoolTest, SingleThreadRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.num_threads(), 1);
    std::vector<int> hits(100, 0);
    pool.ParallelFor(100, 1, [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
            hits[static_cast<std::size_t>(i)]++;
        }
    });
    for (int h : hits) {
        EXPECT_EQ(h, 1);
    }
}

TEST(ThreadPoolTest, CoversRangeExactlyOnceMultiThreaded)
{
    ThreadPool pool(4);
    constexpr std::int64_t kN = 100000;
    std::vector<std::atomic<int>> hits(kN);
    pool.ParallelFor(kN, 1, [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
            hits[static_cast<std::size_t>(i)].fetch_add(1);
        }
    });
    for (std::int64_t i = 0; i < kN; ++i) {
        ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
            << "index " << i;
    }
}

TEST(ThreadPoolTest, ParallelSumMatchesSerial)
{
    ThreadPool pool(3);
    constexpr std::int64_t kN = 10000;
    std::atomic<long long> total{0};
    pool.ParallelFor(kN, 64, [&](std::int64_t b, std::int64_t e) {
        long long local = 0;
        for (std::int64_t i = b; i < e; ++i) {
            local += i;
        }
        total.fetch_add(local);
    });
    EXPECT_EQ(total.load(), kN * (kN - 1) / 2);
}

TEST(ThreadPoolTest, GrainKeepsSmallRangesInline)
{
    ThreadPool pool(8);
    // total <= grain must run as one inline chunk.
    int chunks = 0;
    pool.ParallelFor(100, 1000, [&](std::int64_t b, std::int64_t e) {
        ++chunks;
        EXPECT_EQ(b, 0);
        EXPECT_EQ(e, 100);
    });
    EXPECT_EQ(chunks, 1);
}

TEST(ThreadPoolTest, EmptyAndNegativeRangesAreNoOps)
{
    ThreadPool pool(2);
    int calls = 0;
    pool.ParallelFor(0, 1, [&](std::int64_t, std::int64_t) { ++calls; });
    pool.ParallelFor(-5, 1, [&](std::int64_t, std::int64_t) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, ExceptionsPropagateToCaller)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.ParallelFor(1000, 1,
                         [](std::int64_t b, std::int64_t) {
                             if (b == 0) {
                                 throw std::runtime_error("boom");
                             }
                         }),
        std::runtime_error);
    // The pool must still be usable afterwards.
    std::atomic<int> ran{0};
    pool.ParallelFor(100, 1, [&](std::int64_t b, std::int64_t e) {
        ran.fetch_add(static_cast<int>(e - b));
    });
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, ManyMoreChunksThanThreads)
{
    ThreadPool pool(2);
    std::atomic<int> covered{0};
    pool.ParallelFor(977, 10, [&](std::int64_t b, std::int64_t e) {
        covered.fetch_add(static_cast<int>(e - b));
    });
    EXPECT_EQ(covered.load(), 977);
}

TEST(ThreadPoolTest, GlobalPoolReconfiguration)
{
    ThreadPool::SetGlobalThreads(3);
    EXPECT_EQ(ThreadPool::Global().num_threads(), 3);
    ThreadPool::SetGlobalThreads(1);
    EXPECT_EQ(ThreadPool::Global().num_threads(), 1);
}

// ---- ParallelFor2D --------------------------------------------------------

TEST(ParallelFor2DTest, CoversGridExactlyOnce)
{
    ThreadPool pool(4);
    constexpr std::int64_t kRows = 103, kCols = 57;
    std::vector<std::atomic<int>> hits(kRows * kCols);
    pool.ParallelFor2D(kRows, kCols, 16, 10,
                       [&](std::int64_t r0, std::int64_t r1, std::int64_t c0,
                           std::int64_t c1) {
                           for (std::int64_t r = r0; r < r1; ++r) {
                               for (std::int64_t c = c0; c < c1; ++c) {
                                   hits[static_cast<std::size_t>(
                                            r * kCols + c)]
                                       .fetch_add(1);
                               }
                           }
                       });
    for (std::size_t i = 0; i < hits.size(); ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "cell " << i;
    }
}

TEST(ParallelFor2DTest, BlockGridIsFixedByGeometryNotThreads)
{
    // The set of (r0, r1, c0, c1) blocks must depend only on the range
    // and block sizes — this is what the GEMM determinism argument
    // rests on. Collect the grid at several thread counts and compare.
    auto grid_at = [](int threads) {
        ThreadPool pool(threads);
        std::mutex mu;
        std::vector<std::array<std::int64_t, 4>> blocks;
        pool.ParallelFor2D(100, 70, 32, 48,
                           [&](std::int64_t r0, std::int64_t r1,
                               std::int64_t c0, std::int64_t c1) {
                               std::lock_guard<std::mutex> lock(mu);
                               blocks.push_back({r0, r1, c0, c1});
                           });
        std::sort(blocks.begin(), blocks.end());
        return blocks;
    };
    const auto one = grid_at(1);
    EXPECT_EQ(one.size(), 8u);  // ceil(100/32) * ceil(70/48)
    EXPECT_EQ(one, grid_at(2));
    EXPECT_EQ(one, grid_at(4));
}

TEST(ParallelFor2DTest, EmptyRangesAreNoOps)
{
    ThreadPool pool(2);
    int calls = 0;
    pool.ParallelFor2D(0, 5, 2, 2,
                       [&](std::int64_t, std::int64_t, std::int64_t,
                           std::int64_t) { ++calls; });
    pool.ParallelFor2D(5, 0, 2, 2,
                       [&](std::int64_t, std::int64_t, std::int64_t,
                           std::int64_t) { ++calls; });
    pool.ParallelFor2D(-1, -1, 2, 2,
                       [&](std::int64_t, std::int64_t, std::int64_t,
                           std::int64_t) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(ParallelFor2DTest, ExceptionsPropagateToCaller)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.ParallelFor2D(
                     64, 64, 8, 8,
                     [](std::int64_t r0, std::int64_t, std::int64_t c0,
                        std::int64_t) {
                         if (r0 == 0 && c0 == 0) {
                             throw std::runtime_error("boom");
                         }
                     }),
                 std::runtime_error);
    std::atomic<int> cells{0};
    pool.ParallelFor2D(10, 10, 3, 3,
                       [&](std::int64_t r0, std::int64_t r1, std::int64_t c0,
                           std::int64_t c1) {
                           cells.fetch_add(
                               static_cast<int>((r1 - r0) * (c1 - c0)));
                       });
    EXPECT_EQ(cells.load(), 100);
}

// ---- GEMM determinism battery ---------------------------------------------
//
// The PR 1 guarantee extended to the blocked GEMM engine: results must
// be bit-identical across intra-op thread counts and across repeated
// runs, because the serial KC loop fixes every output element's
// reduction order no matter how tiles are scheduled. Runs in the
// concurrency binary so the TSan CI job also races the pack buffers.

TEST(GemmEngineDeterminismBattery, BitIdenticalAcrossThreadCountsAndRuns)
{
    // Odd sizes + k > 256 keep edge tiles and the multi-KC accumulate
    // path in play while threads race over the 2-D tile grid.
    const std::int64_t m = 97, k = 300, n = 65;
    for (const bool ta : {false, true}) {
        for (const bool tb : {false, true}) {
            SCOPED_TRACE("ta=" + std::to_string(ta) +
                         " tb=" + std::to_string(tb));
            const Tensor a =
                test::RandomTensor(ta ? Shape{k, m} : Shape{m, k}, 40);
            const Tensor b =
                test::RandomTensor(tb ? Shape{n, k} : Shape{k, n}, 41);
            ThreadPool serial(1);
            const Tensor ref = kernels::MatMul(a, b, ta, tb, serial);
            for (const int threads : {1, 2, 4}) {
                ThreadPool pool(threads);
                for (int run = 0; run < 3; ++run) {
                    const Tensor c = kernels::MatMul(a, b, ta, tb, pool);
                    ASSERT_EQ(std::memcmp(ref.data<float>(),
                                          c.data<float>(),
                                          static_cast<std::size_t>(
                                              ref.num_elements()) *
                                              sizeof(float)),
                              0)
                        << "threads=" << threads << " run=" << run;
                }
            }
        }
    }
}

TEST(GemmEngineDeterminismBattery, ConvLoweringBitIdenticalAcrossThreads)
{
    const Shape in_shape{2, 9, 9, 3};
    const Shape w_shape{3, 3, 3, 8};
    const Tensor x = test::RandomTensor(in_shape, 50);
    const Tensor w = test::RandomTensor(w_shape, 51, 0.5f);
    ThreadPool serial(1);
    const Tensor y_ref =
        kernels::Conv2D(x, w, 2, kernels::Padding::kSame, serial);
    const Tensor g = test::RandomTensor(y_ref.shape(), 52);
    const Tensor gx_ref = kernels::Conv2DBackpropInput(
        in_shape, w, g, 2, kernels::Padding::kSame, serial);
    const Tensor gw_ref = kernels::Conv2DBackpropFilter(
        x, w_shape, g, 2, kernels::Padding::kSame, serial);
    auto bytes = [](const Tensor& t) {
        return static_cast<std::size_t>(t.num_elements()) * sizeof(float);
    };
    for (const int threads : {1, 2, 4}) {
        ThreadPool pool(threads);
        for (int run = 0; run < 3; ++run) {
            SCOPED_TRACE("threads=" + std::to_string(threads) +
                         " run=" + std::to_string(run));
            const Tensor y =
                kernels::Conv2D(x, w, 2, kernels::Padding::kSame, pool);
            const Tensor gx = kernels::Conv2DBackpropInput(
                in_shape, w, g, 2, kernels::Padding::kSame, pool);
            const Tensor gw = kernels::Conv2DBackpropFilter(
                x, w_shape, g, 2, kernels::Padding::kSame, pool);
            ASSERT_EQ(std::memcmp(y_ref.data<float>(), y.data<float>(),
                                  bytes(y_ref)),
                      0);
            ASSERT_EQ(std::memcmp(gx_ref.data<float>(), gx.data<float>(),
                                  bytes(gx_ref)),
                      0);
            ASSERT_EQ(std::memcmp(gw_ref.data<float>(), gw.data<float>(),
                                  bytes(gw_ref)),
                      0);
        }
    }
}

}  // namespace
}  // namespace fathom::parallel
