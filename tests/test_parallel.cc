/**
 * @file
 * Tests for the intra-op thread pool.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "parallel/thread_pool.h"

namespace fathom::parallel {
namespace {

TEST(ThreadPoolTest, SingleThreadRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.num_threads(), 1);
    std::vector<int> hits(100, 0);
    pool.ParallelFor(100, 1, [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
            hits[static_cast<std::size_t>(i)]++;
        }
    });
    for (int h : hits) {
        EXPECT_EQ(h, 1);
    }
}

TEST(ThreadPoolTest, CoversRangeExactlyOnceMultiThreaded)
{
    ThreadPool pool(4);
    constexpr std::int64_t kN = 100000;
    std::vector<std::atomic<int>> hits(kN);
    pool.ParallelFor(kN, 1, [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
            hits[static_cast<std::size_t>(i)].fetch_add(1);
        }
    });
    for (std::int64_t i = 0; i < kN; ++i) {
        ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
            << "index " << i;
    }
}

TEST(ThreadPoolTest, ParallelSumMatchesSerial)
{
    ThreadPool pool(3);
    constexpr std::int64_t kN = 10000;
    std::atomic<long long> total{0};
    pool.ParallelFor(kN, 64, [&](std::int64_t b, std::int64_t e) {
        long long local = 0;
        for (std::int64_t i = b; i < e; ++i) {
            local += i;
        }
        total.fetch_add(local);
    });
    EXPECT_EQ(total.load(), kN * (kN - 1) / 2);
}

TEST(ThreadPoolTest, GrainKeepsSmallRangesInline)
{
    ThreadPool pool(8);
    // total <= grain must run as one inline chunk.
    int chunks = 0;
    pool.ParallelFor(100, 1000, [&](std::int64_t b, std::int64_t e) {
        ++chunks;
        EXPECT_EQ(b, 0);
        EXPECT_EQ(e, 100);
    });
    EXPECT_EQ(chunks, 1);
}

TEST(ThreadPoolTest, EmptyAndNegativeRangesAreNoOps)
{
    ThreadPool pool(2);
    int calls = 0;
    pool.ParallelFor(0, 1, [&](std::int64_t, std::int64_t) { ++calls; });
    pool.ParallelFor(-5, 1, [&](std::int64_t, std::int64_t) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, ExceptionsPropagateToCaller)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.ParallelFor(1000, 1,
                         [](std::int64_t b, std::int64_t) {
                             if (b == 0) {
                                 throw std::runtime_error("boom");
                             }
                         }),
        std::runtime_error);
    // The pool must still be usable afterwards.
    std::atomic<int> ran{0};
    pool.ParallelFor(100, 1, [&](std::int64_t b, std::int64_t e) {
        ran.fetch_add(static_cast<int>(e - b));
    });
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, ManyMoreChunksThanThreads)
{
    ThreadPool pool(2);
    std::atomic<int> covered{0};
    pool.ParallelFor(977, 10, [&](std::int64_t b, std::int64_t e) {
        covered.fetch_add(static_cast<int>(e - b));
    });
    EXPECT_EQ(covered.load(), 977);
}

TEST(ThreadPoolTest, GlobalPoolReconfiguration)
{
    ThreadPool::SetGlobalThreads(3);
    EXPECT_EQ(ThreadPool::Global().num_threads(), 3);
    ThreadPool::SetGlobalThreads(1);
    EXPECT_EQ(ThreadPool::Global().num_threads(), 1);
}

}  // namespace
}  // namespace fathom::parallel
