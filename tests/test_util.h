/**
 * @file
 * Shared test helpers: tensor comparison and numerical gradient checks.
 */
#ifndef FATHOM_TESTS_TEST_UTIL_H
#define FATHOM_TESTS_TEST_UTIL_H

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "autodiff/gradients.h"
#include "ops/register.h"
#include "runtime/session.h"
#include "tensor/tensor.h"

namespace fathom::test {

/** Asserts elementwise closeness of two float tensors. */
inline void
ExpectTensorNear(const Tensor& expected, const Tensor& actual,
                 float tolerance = 1e-5f)
{
    ASSERT_EQ(expected.shape().dims(), actual.shape().dims())
        << "shape mismatch: " << expected.shape().ToString() << " vs "
        << actual.shape().ToString();
    const float* e = expected.data<float>();
    const float* a = actual.data<float>();
    for (std::int64_t i = 0; i < expected.num_elements(); ++i) {
        ASSERT_NEAR(e[i], a[i], tolerance) << "at flat index " << i;
    }
}

/**
 * Checks the analytic gradient of a graph-defined scalar function
 * against central finite differences.
 *
 * @param build  given a builder and the placeholder edge for x,
 *               returns the scalar loss edge. Must be deterministic.
 * @param x0     the point at which to check.
 * @param tolerance absolute+relative tolerance for the comparison.
 */
inline void
CheckGradient(const std::function<graph::Output(graph::GraphBuilder&,
                                                graph::Output)>& build,
              const Tensor& x0, float tolerance = 2e-2f,
              float delta = 1e-2f)
{
    ops::RegisterStandardOps();
    runtime::Session session(/*seed=*/7);
    auto builder = session.MakeBuilder();
    const graph::Output x = builder.Placeholder("x");
    const graph::Output loss = build(builder, x);
    const auto grads = autodiff::BuildGradients(builder, loss, {x});
    ASSERT_EQ(grads.size(), 1u);

    runtime::FeedMap feeds;
    feeds[x.node] = x0;
    const auto analytic = session.Run(feeds, {grads[0], loss});
    const Tensor& analytic_grad = analytic[0];
    ASSERT_EQ(analytic_grad.shape().dims(), x0.shape().dims());

    Tensor probe = x0.Clone();
    float* p = probe.data<float>();
    const float* g = analytic_grad.data<float>();
    for (std::int64_t i = 0; i < x0.num_elements(); ++i) {
        const float saved = p[i];
        p[i] = saved + delta;
        feeds[x.node] = probe;
        const float up = session.Run(feeds, {loss})[0].scalar_value();
        p[i] = saved - delta;
        feeds[x.node] = probe;
        const float down = session.Run(feeds, {loss})[0].scalar_value();
        p[i] = saved;
        const float numeric = (up - down) / (2.0f * delta);
        const float tol =
            tolerance * std::max(1.0f, std::fabs(numeric));
        ASSERT_NEAR(g[i], numeric, tol)
            << "gradient mismatch at flat index " << i;
    }
}

/** @return a deterministic pseudo-random float tensor. */
inline Tensor
RandomTensor(const Shape& shape, std::uint64_t seed = 42, float scale = 1.0f)
{
    Rng rng(seed);
    Tensor t(DType::kFloat32, shape);
    rng.FillNormal(&t, 0.0f, scale);
    return t;
}

}  // namespace fathom::test

#endif  // FATHOM_TESTS_TEST_UTIL_H
