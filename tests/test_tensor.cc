/**
 * @file
 * Unit tests for the tensor substrate: Shape, Tensor, Rng.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "tensor/rng.h"
#include "tensor/shape.h"
#include "tensor/tensor.h"

namespace fathom {
namespace {

TEST(ShapeTest, ScalarShape)
{
    Shape s;
    EXPECT_EQ(s.rank(), 0);
    EXPECT_EQ(s.num_elements(), 1);
    EXPECT_EQ(s.ToString(), "[]");
}

TEST(ShapeTest, BasicDims)
{
    Shape s{2, 3, 4};
    EXPECT_EQ(s.rank(), 3);
    EXPECT_EQ(s.num_elements(), 24);
    EXPECT_EQ(s.dim(0), 2);
    EXPECT_EQ(s.dim(2), 4);
    EXPECT_EQ(s.ToString(), "[2, 3, 4]");
}

TEST(ShapeTest, NegativeAxisIndexing)
{
    Shape s{2, 3, 4};
    EXPECT_EQ(s.dim(-1), 4);
    EXPECT_EQ(s.dim(-3), 2);
    EXPECT_THROW(s.dim(3), std::out_of_range);
    EXPECT_THROW(s.dim(-4), std::out_of_range);
}

TEST(ShapeTest, Strides)
{
    Shape s{2, 3, 4};
    EXPECT_EQ(s.stride(0), 12);
    EXPECT_EQ(s.stride(1), 4);
    EXPECT_EQ(s.stride(2), 1);
    EXPECT_EQ(s.stride(-1), 1);
}

TEST(ShapeTest, RejectsNegativeDims)
{
    EXPECT_THROW(Shape({2, -1}), std::invalid_argument);
}

TEST(ShapeTest, ZeroDimShapeIsEmpty)
{
    Shape s{2, 0, 4};
    EXPECT_EQ(s.num_elements(), 0);
}

TEST(ShapeTest, Equality)
{
    EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
    EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
    EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
}

TEST(TensorTest, ZerosAndFill)
{
    Tensor t = Tensor::Zeros(Shape{3, 2});
    for (std::int64_t i = 0; i < 6; ++i) {
        EXPECT_EQ(t.at<float>(i), 0.0f);
    }
    t.Fill(2.5f);
    EXPECT_EQ(t.at<float>(5), 2.5f);
}

TEST(TensorTest, ScalarRoundTrip)
{
    EXPECT_FLOAT_EQ(Tensor::Scalar(3.25f).scalar_value(), 3.25f);
    EXPECT_FLOAT_EQ(Tensor::ScalarInt(7).scalar_value(), 7.0f);
}

TEST(TensorTest, FromVectorChecksSize)
{
    EXPECT_NO_THROW(Tensor::FromVector(Shape{2, 2}, {1, 2, 3, 4}));
    EXPECT_THROW(Tensor::FromVector(Shape{2, 2}, {1, 2, 3}),
                 std::invalid_argument);
}

TEST(TensorTest, DTypeMismatchThrows)
{
    Tensor t = Tensor::Zeros(Shape{2});
    EXPECT_THROW(t.data<std::int32_t>(), std::logic_error);
    Tensor ti = Tensor::FromVectorInt(Shape{2}, {1, 2});
    EXPECT_THROW(ti.data<float>(), std::logic_error);
}

TEST(TensorTest, UninitializedAccessThrows)
{
    Tensor t;
    EXPECT_FALSE(t.initialized());
    EXPECT_THROW(t.data<float>(), std::logic_error);
}

TEST(TensorTest, ReshapeSharesBuffer)
{
    Tensor t = Tensor::FromVector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
    Tensor r = t.Reshape(Shape{3, 2});
    r.at<float>(0) = 99.0f;
    EXPECT_EQ(t.at<float>(0), 99.0f);  // same underlying buffer.
    EXPECT_THROW(t.Reshape(Shape{4}), std::invalid_argument);
}

TEST(TensorTest, CloneIsDeep)
{
    Tensor t = Tensor::FromVector({1, 2, 3});
    Tensor c = t.Clone();
    c.at<float>(0) = -1.0f;
    EXPECT_EQ(t.at<float>(0), 1.0f);
}

TEST(TensorTest, CopyFromChecksCompatibility)
{
    Tensor a = Tensor::Zeros(Shape{4});
    Tensor b = Tensor::FromVector({1, 2, 3, 4});
    a.CopyFrom(b);
    EXPECT_EQ(a.at<float>(3), 4.0f);
    Tensor c = Tensor::Zeros(Shape{3});
    EXPECT_THROW(a.CopyFrom(c), std::invalid_argument);
}

TEST(TensorTest, DebugString)
{
    EXPECT_EQ(Tensor::Zeros(Shape{2, 3}).DebugString(), "float32[2, 3]");
    EXPECT_EQ(Tensor().DebugString(), "<empty tensor>");
}

TEST(RngTest, Deterministic)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.NextU64(), b.NextU64());
    }
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        same += (a.NextU64() == b.NextU64());
    }
    EXPECT_LT(same, 2);
}

TEST(RngTest, UniformRange)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.Uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RngTest, UniformIntRange)
{
    Rng rng(6);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::int64_t v = rng.UniformInt(10);
        EXPECT_GE(v, 0);
        EXPECT_LT(v, 10);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 10u);  // all buckets hit.
    EXPECT_THROW(rng.UniformInt(0), std::invalid_argument);
}

TEST(RngTest, NormalMoments)
{
    Rng rng(7);
    const int n = 20000;
    double sum = 0.0;
    double sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = rng.Normal();
        sum += x;
        sq += x * x;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.05);
    EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, FillNormalMatchesParams)
{
    Rng rng(8);
    Tensor t(DType::kFloat32, Shape{10000});
    rng.FillNormal(&t, 3.0f, 0.5f);
    double sum = 0.0;
    for (std::int64_t i = 0; i < t.num_elements(); ++i) {
        sum += t.at<float>(i);
    }
    EXPECT_NEAR(sum / static_cast<double>(t.num_elements()), 3.0, 0.05);
}

TEST(RngTest, SplitDecorrelates)
{
    Rng a(9);
    Rng b = a.Split();
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        same += (a.NextU64() == b.NextU64());
    }
    EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace fathom
