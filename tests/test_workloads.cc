/**
 * @file
 * Integration tests: each of the eight Fathom workloads must build,
 * run inference, run training, and actually learn (loss decreases).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "workloads/workload.h"

namespace fathom::workloads {
namespace {

class WorkloadTest : public ::testing::TestWithParam<std::string> {
  protected:
    static void SetUpTestSuite() { RegisterAllWorkloads(); }
};

TEST_F(WorkloadTest, RegistryHasAllEight)
{
    RegisterAllWorkloads();
    const auto names = WorkloadRegistry::Global().Names();
    ASSERT_EQ(names.size(), 8u);
    // Table II order.
    EXPECT_EQ(names[0], "seq2seq");
    EXPECT_EQ(names[1], "memnet");
    EXPECT_EQ(names[2], "speech");
    EXPECT_EQ(names[3], "autoenc");
    EXPECT_EQ(names[4], "residual");
    EXPECT_EQ(names[5], "vgg");
    EXPECT_EQ(names[6], "alexnet");
    EXPECT_EQ(names[7], "deepq");
}

TEST_F(WorkloadTest, UnknownNameThrows)
{
    RegisterAllWorkloads();
    EXPECT_THROW(WorkloadRegistry::Global().Create("lenet"),
                 std::out_of_range);
}

TEST_P(WorkloadTest, BuildsAndRunsInference)
{
    auto workload = WorkloadRegistry::Global().Create(GetParam());
    WorkloadConfig config;
    config.seed = 3;
    workload->Setup(config);
    EXPECT_GT(workload->num_parameters(), 0);

    const auto result = workload->RunInference(2);
    EXPECT_EQ(result.steps, 2);
    EXPECT_GT(result.wall_seconds, 0.0);

    // The tracer must have attributed ops to the steps.
    ASSERT_FALSE(workload->session().tracer().steps().empty());
    EXPECT_FALSE(workload->session().tracer().steps()[0].records.empty());
}

TEST_P(WorkloadTest, TrainingStepsProduceFiniteLoss)
{
    auto workload = WorkloadRegistry::Global().Create(GetParam());
    WorkloadConfig config;
    config.seed = 4;
    workload->Setup(config);

    const auto result = workload->RunTraining(2);
    EXPECT_EQ(result.steps, 2);
    EXPECT_TRUE(std::isfinite(result.final_loss))
        << "loss = " << result.final_loss;
}

TEST_P(WorkloadTest, LossDecreasesWithTraining)
{
    if (GetParam() == "deepq") {
        // The TD loss of Q-learning is not monotone: it *grows* while
        // reward information propagates into the bootstrap targets.
        // deepq's learning is validated by reward improvement in
        // examples/rl_atari.cc and by the dedicated test below.
        GTEST_SKIP();
    }
    auto workload = WorkloadRegistry::Global().Create(GetParam());
    WorkloadConfig config;
    config.seed = 5;
    workload->Setup(config);

    // Mean loss over the first few steps vs. the best later window.
    // Per-step losses are dominated by batch-to-batch variance on these
    // scaled-down models, so a single late window is a noisy statistic;
    // requiring that *some* later window beats the start asserts the
    // learning signal without gating on one noise realization.
    const auto early = workload->RunTraining(4);
    float best_late = std::numeric_limits<float>::infinity();
    for (int chunk = 0; chunk < 6; ++chunk) {
        best_late = std::min(best_late, workload->RunTraining(4).mean_loss);
    }
    EXPECT_LT(best_late, early.mean_loss * 1.05f)
        << "early mean " << early.mean_loss << " best late mean "
        << best_late;
}

TEST_F(WorkloadTest, DeepQEpisodesProgressAndLossStaysFinite)
{
    RegisterAllWorkloads();
    auto workload = WorkloadRegistry::Global().Create("deepq");
    WorkloadConfig config;
    config.seed = 5;
    workload->Setup(config);
    const auto result = workload->RunTraining(60);
    EXPECT_TRUE(std::isfinite(result.mean_loss));
    EXPECT_TRUE(std::isfinite(result.final_loss));
    // 60 environment steps on a 21-row board must finish episodes.
    // (Episode count is visible through the trace: each terminal step
    // resets the frame stack; we simply re-run inference to confirm
    // the session is still healthy after interleaved train/act.)
    const auto inference = workload->RunInference(5);
    EXPECT_EQ(inference.steps, 5);
}

INSTANTIATE_TEST_SUITE_P(AllModels, WorkloadTest,
                         ::testing::Values("seq2seq", "memnet", "speech",
                                           "autoenc", "residual", "vgg",
                                           "alexnet", "deepq"),
                         [](const auto& info) { return info.param; });

TEST_F(WorkloadTest, ClassifiersLearnAboveChance)
{
    RegisterAllWorkloads();
    // "Standard, verified reference workloads": each classifier must
    // beat chance after a short training run on its synthetic task.
    // Accuracy on a handful of eval batches is a high-variance
    // statistic for these scaled-down models, so the assertion is on
    // the best checkpoint across the run (train in chunks, evaluate
    // after each) over 32 eval batches — robust to the non-monotone
    // trajectories a small model at a high learning rate produces.
    const struct {
        const char* name;
        unsigned seed;
        int chunks;
        int steps_per_chunk;
        float chance;
    } cases[] = {
        {"alexnet", 5, 5, 60, 1.0f / 16},
        {"memnet", 9, 3, 200, 1.0f / 8},
    };
    for (const auto& c : cases) {
        auto w = WorkloadRegistry::Global().Create(c.name);
        WorkloadConfig config;
        config.seed = c.seed;
        w->Setup(config);
        ASSERT_TRUE(w->has_accuracy_metric()) << c.name;
        w->session().tracer().set_enabled(false);
        float best = 0.0f;
        for (int chunk = 0; chunk < c.chunks; ++chunk) {
            w->RunTraining(c.steps_per_chunk);
            best = std::max(best, w->EvaluateAccuracy(32));
        }
        EXPECT_GT(best, 1.4f * c.chance)
            << c.name << " best accuracy " << best;
    }
}

TEST_F(WorkloadTest, AccuracyThrowsWhereUndefined)
{
    RegisterAllWorkloads();
    for (const std::string name : {"autoenc", "speech", "deepq",
                                   "seq2seq"}) {
        auto w = WorkloadRegistry::Global().Create(name);
        EXPECT_FALSE(w->has_accuracy_metric()) << name;
        WorkloadConfig config;
        w->Setup(config);
        EXPECT_THROW(w->EvaluateAccuracy(1), std::logic_error) << name;
    }
}

TEST_F(WorkloadTest, ResidualInferencePathUsesRunningStats)
{
    RegisterAllWorkloads();
    auto w = WorkloadRegistry::Global().Create("residual");
    WorkloadConfig config;
    config.seed = 10;
    w->Setup(config);
    w->RunInference(1);
    bool found_inference_bn = false;
    bool found_training_bn = false;
    for (const auto& r : w->session().tracer().steps().back().records) {
        found_inference_bn |= r.op_type == "BatchNormInference";
        found_training_bn |= r.op_type == "BatchNorm";
    }
    EXPECT_TRUE(found_inference_bn);
    EXPECT_FALSE(found_training_bn);  // batch stats only in training.
}

TEST_F(WorkloadTest, MetadataMatchesTableII)
{
    RegisterAllWorkloads();
    const struct {
        const char* name;
        const char* task;
        int layers;
    } expected[] = {
        {"seq2seq", "Supervised", 7},   {"memnet", "Supervised", 3},
        {"speech", "Supervised", 5},    {"autoenc", "Unsupervised", 3},
        {"residual", "Supervised", 34}, {"vgg", "Supervised", 19},
        {"alexnet", "Supervised", 5},   {"deepq", "Reinforcement", 5},
    };
    for (const auto& e : expected) {
        auto w = WorkloadRegistry::Global().Create(e.name);
        EXPECT_EQ(w->learning_task(), e.task) << e.name;
        EXPECT_EQ(w->num_layers(), e.layers) << e.name;
        EXPECT_FALSE(w->description().empty()) << e.name;
        EXPECT_FALSE(w->neuronal_style().empty()) << e.name;
    }
}

TEST_F(WorkloadTest, SessionAccessBeforeSetupThrows)
{
    RegisterAllWorkloads();
    auto w = WorkloadRegistry::Global().Create("alexnet");
    EXPECT_THROW(w->session(), std::logic_error);
}

}  // namespace
}  // namespace fathom::workloads
