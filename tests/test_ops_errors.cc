/**
 * @file
 * Error-path tests: malformed graphs, shapes, and attributes must fail
 * loudly with actionable messages, never crash or silently corrupt.
 */
#include <gtest/gtest.h>

#include "ops/register.h"
#include "runtime/session.h"
#include "test_util.h"

namespace fathom {
namespace {

using graph::Output;

class OpErrorTest : public ::testing::Test {
  protected:
    static void SetUpTestSuite() { ops::RegisterStandardOps(); }

    // These tests pin the *kernel-time* error paths; the static
    // verifier would reject most of these graphs at plan build (that
    // layer has its own battery in test_graph_verify.cc).
    void SetUp() override { session_.SetVerification(false); }

    runtime::Session session_;
};

TEST_F(OpErrorTest, ShapeMismatchInAddNReportsOp)
{
    auto b = session_.MakeBuilder();
    const Output x = b.Placeholder("x");
    const Output y = b.Placeholder("y");
    const Output sum = b.AddN({x, y});
    runtime::FeedMap feeds;
    feeds[x.node] = Tensor::Zeros(Shape{2});
    feeds[y.node] = Tensor::Zeros(Shape{3});
    try {
        session_.Run(feeds, {sum});
        FAIL();
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("AddN"), std::string::npos);
    }
}

TEST_F(OpErrorTest, BroadcastIncompatibleShapes)
{
    auto b = session_.MakeBuilder();
    const Output x = b.Placeholder("x");
    const Output y = b.Placeholder("y");
    const Output sum = b.Add(x, y);
    runtime::FeedMap feeds;
    feeds[x.node] = Tensor::Zeros(Shape{2, 3});
    feeds[y.node] = Tensor::Zeros(Shape{2, 4});
    EXPECT_THROW(session_.Run(feeds, {sum}), std::runtime_error);
}

TEST_F(OpErrorTest, SplitNonDivisibleExtent)
{
    auto b = session_.MakeBuilder();
    const Output x = b.Placeholder("x");
    const auto parts = b.Split(x, 1, 3);
    runtime::FeedMap feeds;
    feeds[x.node] = Tensor::Zeros(Shape{2, 7});  // 7 % 3 != 0.
    EXPECT_THROW(session_.Run(feeds, {parts[0]}), std::runtime_error);
}

TEST_F(OpErrorTest, GatherOutOfRangeIndex)
{
    auto b = session_.MakeBuilder();
    const Output params = b.Const(test::RandomTensor(Shape{4, 2}, 1));
    const Output idx = b.Placeholder("idx");
    const Output out = b.Gather(params, idx);
    runtime::FeedMap feeds;
    feeds[idx.node] = Tensor::FromVectorInt(Shape{1}, {4});
    EXPECT_THROW(session_.Run(feeds, {out}), std::runtime_error);
}

TEST_F(OpErrorTest, SoftmaxCrossEntropyLabelOutOfRange)
{
    auto b = session_.MakeBuilder();
    const Output logits = b.Placeholder("logits");
    const Output labels = b.Placeholder("labels");
    const auto xent = b.SoftmaxCrossEntropy(logits, labels);
    runtime::FeedMap feeds;
    feeds[logits.node] = test::RandomTensor(Shape{2, 3}, 2);
    feeds[labels.node] = Tensor::FromVectorInt(Shape{2}, {0, 3});
    EXPECT_THROW(session_.Run(feeds, {xent[0]}), std::runtime_error);
}

TEST_F(OpErrorTest, MissingAttrNamesTheNodeAndAttr)
{
    auto b = session_.MakeBuilder();
    const Output x = b.Placeholder("x");
    // Build a Conv2D node manually without its required attrs.
    const graph::NodeId bad =
        b.AddNode("bad_conv", "Conv2D", {x, x});
    runtime::FeedMap feeds;
    feeds[x.node] = test::RandomTensor(Shape{1, 4, 4, 1}, 3);
    try {
        session_.Run(feeds, {Output{bad, 0}});
        FAIL();
    } catch (const std::runtime_error& e) {
        const std::string message = e.what();
        // Whichever required attr is looked up first is named, along
        // with the offending node.
        EXPECT_NE(message.find("missing attr"), std::string::npos);
        EXPECT_NE(message.find("bad_conv"), std::string::npos);
    }
}

TEST_F(OpErrorTest, UnknownPaddingString)
{
    auto b = session_.MakeBuilder();
    const Output x = b.Placeholder("x");
    const Output w = b.Const(test::RandomTensor(Shape{3, 3, 1, 1}, 4));
    const Output y = b.Conv2D(x, w, 1, "PADME");
    runtime::FeedMap feeds;
    feeds[x.node] = test::RandomTensor(Shape{1, 4, 4, 1}, 5);
    EXPECT_THROW(session_.Run(feeds, {y}), std::runtime_error);
}

TEST_F(OpErrorTest, DropoutRejectsBadKeepProb)
{
    auto b = session_.MakeBuilder();
    const Output x = b.Placeholder("x");
    const Output mask = b.DropoutMask(x, 0.0f);
    runtime::FeedMap feeds;
    feeds[x.node] = Tensor::Zeros(Shape{4});
    EXPECT_THROW(session_.Run(feeds, {mask}), std::runtime_error);
}

TEST_F(OpErrorTest, ReshapeWrongElementCount)
{
    auto b = session_.MakeBuilder();
    const Output x = b.Placeholder("x");
    const Output r = b.Reshape(x, {5, 5});
    runtime::FeedMap feeds;
    feeds[x.node] = Tensor::Zeros(Shape{24});
    EXPECT_THROW(session_.Run(feeds, {r}), std::runtime_error);
}

TEST_F(OpErrorTest, ReshapeDoubleWildcardRejected)
{
    auto b = session_.MakeBuilder();
    const Output x = b.Placeholder("x");
    const Output r = b.Reshape(x, {-1, -1});
    runtime::FeedMap feeds;
    feeds[x.node] = Tensor::Zeros(Shape{4});
    EXPECT_THROW(session_.Run(feeds, {r}), std::runtime_error);
}

TEST_F(OpErrorTest, OptimizerOnWrongSizedGradient)
{
    auto b = session_.MakeBuilder();
    std::string var;
    b.Variable("w", Tensor::Zeros(Shape{4}), &var);
    const Output bogus = b.Const(Tensor::Zeros(Shape{5}), "bogus_grad");
    const auto update = b.ApplyGradientDescent(var, bogus, 0.1f);
    EXPECT_THROW(session_.Run({}, {}, {update}), std::runtime_error);
}

TEST_F(OpErrorTest, FetchingUnproducedOutputIndex)
{
    auto b = session_.MakeBuilder();
    const Output x = b.Placeholder("x");
    // Identity has exactly one output; index 2 is invalid at build time.
    EXPECT_THROW(
        b.graph().AddNode("consumer", "Identity", {Output{x.node, 2}}),
        std::invalid_argument);
}

TEST_F(OpErrorTest, VariableMissingFromStore)
{
    auto b = session_.MakeBuilder();
    // Hand-build a Variable node pointing at a store key that was
    // never initialized.
    const graph::NodeId id = b.AddNode(
        "phantom", "Variable", {},
        {{"var_name", graph::AttrValue("never_created")}});
    EXPECT_THROW(session_.Run({}, {Output{id, 0}}), std::runtime_error);
}

}  // namespace
}  // namespace fathom
