/**
 * @file
 * CTC loss tests: validated against brute-force alignment enumeration
 * and finite-difference gradients.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "kernels/ctc.h"
#include "parallel/thread_pool.h"
#include "test_util.h"

namespace fathom::kernels {
namespace {

using test::RandomTensor;

/** Shared pool so the CTC kernels exercise a real multi-thread pool. */
parallel::ThreadPool&
TestPool()
{
    static parallel::ThreadPool pool(2);
    return pool;
}

class CtcBruteForceTest
    : public ::testing::TestWithParam<std::tuple<int, int, std::vector<std::int32_t>>> {
};

TEST_P(CtcBruteForceTest, MatchesBruteForce)
{
    const auto [time, classes, labels] = GetParam();
    const Tensor logits =
        RandomTensor(Shape{time, classes}, 100 + time * 7 + classes, 1.5f);
    const auto result = CtcLoss(logits, labels, /*blank=*/0, TestPool());
    const float brute = CtcLossBruteForce(logits, labels, /*blank=*/0, TestPool());
    EXPECT_NEAR(result.loss, brute, 1e-3f * std::max(1.0f, brute));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CtcBruteForceTest,
    ::testing::Values(
        std::make_tuple(3, 3, std::vector<std::int32_t>{1}),
        std::make_tuple(4, 3, std::vector<std::int32_t>{1, 2}),
        std::make_tuple(5, 3, std::vector<std::int32_t>{1, 1}),
        std::make_tuple(5, 4, std::vector<std::int32_t>{2, 3, 1}),
        std::make_tuple(6, 3, std::vector<std::int32_t>{1, 2, 1}),
        std::make_tuple(4, 4, std::vector<std::int32_t>{}),
        std::make_tuple(6, 4, std::vector<std::int32_t>{3})));

TEST(CtcTest, GradientMatchesFiniteDifference)
{
    const Tensor logits = RandomTensor(Shape{6, 4}, 55);
    const std::vector<std::int32_t> labels = {1, 3, 2};
    const auto result = CtcLoss(logits, labels, 0, TestPool());

    const float delta = 1e-2f;
    Tensor probe = logits.Clone();
    for (std::int64_t i = 0; i < logits.num_elements(); ++i) {
        const float saved = probe.data<float>()[i];
        probe.data<float>()[i] = saved + delta;
        const float up = CtcLoss(probe, labels, 0, TestPool()).loss;
        probe.data<float>()[i] = saved - delta;
        const float down = CtcLoss(probe, labels, 0, TestPool()).loss;
        probe.data<float>()[i] = saved;
        const float numeric = (up - down) / (2.0f * delta);
        EXPECT_NEAR(result.grad_logits.data<float>()[i], numeric, 5e-3f)
            << "at index " << i;
    }
}

TEST(CtcTest, PerfectAlignmentHasLowLoss)
{
    // Logits strongly favoring the path b,1,b,2,b.
    Tensor logits = Tensor::Full(Shape{5, 3}, -10.0f);
    const std::int32_t path[5] = {0, 1, 0, 2, 0};
    for (int t = 0; t < 5; ++t) {
        logits.data<float>()[t * 3 + path[t]] = 10.0f;
    }
    const auto result = CtcLoss(logits, {1, 2}, 0, TestPool());
    EXPECT_LT(result.loss, 0.1f);
}

TEST(CtcTest, RepeatedLabelNeedsSeparator)
{
    // "aa" needs at least 3 frames (a, blank, a).
    const Tensor logits2 = RandomTensor(Shape{2, 3}, 60);
    EXPECT_THROW(CtcLoss(logits2, {1, 1}, 0, TestPool()), std::invalid_argument);
    const Tensor logits3 = RandomTensor(Shape{3, 3}, 61);
    EXPECT_NO_THROW(CtcLoss(logits3, {1, 1}, 0, TestPool()));
}

TEST(CtcTest, TooManyLabelsThrows)
{
    const Tensor logits = RandomTensor(Shape{2, 4}, 62);
    EXPECT_THROW(CtcLoss(logits, {1, 2, 3}, 0, TestPool()), std::invalid_argument);
}

TEST(CtcTest, InvalidLabelValuesThrow)
{
    const Tensor logits = RandomTensor(Shape{4, 3}, 63);
    EXPECT_THROW(CtcLoss(logits, {0}, 0, TestPool()), std::invalid_argument);  // blank.
    EXPECT_THROW(CtcLoss(logits, {5}, 0, TestPool()), std::invalid_argument);  // range.
    EXPECT_THROW(CtcLoss(logits, {1}, 7, TestPool()), std::invalid_argument);  // blank idx.
}

TEST(CtcTest, EmptyLabelSequence)
{
    // All-blank paths only: loss = -sum log p(blank).
    const Tensor logits = RandomTensor(Shape{3, 3}, 64);
    const auto result = CtcLoss(logits, {}, 0, TestPool());
    const float brute = CtcLossBruteForce(logits, {}, 0, TestPool());
    EXPECT_NEAR(result.loss, brute, 1e-4f);
}

TEST(CtcTest, GradientRowsSumToZero)
{
    // Each row of d(loss)/d(logits) = softmax - posterior; both are
    // distributions, so rows sum to ~0.
    const Tensor logits = RandomTensor(Shape{7, 5}, 65);
    const auto result = CtcLoss(logits, {1, 4, 2}, 0, TestPool());
    for (std::int64_t t = 0; t < 7; ++t) {
        float row = 0.0f;
        for (std::int64_t c = 0; c < 5; ++c) {
            row += result.grad_logits.data<float>()[t * 5 + c];
        }
        EXPECT_NEAR(row, 0.0f, 1e-4f);
    }
}

TEST(CtcTest, BeamSearchFindsMostProbableLabeling)
{
    // Classic case where best-path (greedy) decoding is wrong: the
    // single most probable alignment is all-blank, but the *summed*
    // probability of label "1" over its alignments is higher.
    //   frame probs: blank 0.4, one 0.6 ... per frame (2 frames)
    //   P(empty) = 0.4*0.4 = 0.16
    //   P("1")   = 0.6*0.6 + 0.6*0.4 + 0.4*0.6 = 0.84
    Tensor logits(DType::kFloat32, Shape{2, 2});
    for (int t = 0; t < 2; ++t) {
        logits.data<float>()[t * 2 + 0] = std::log(0.4f);
        logits.data<float>()[t * 2 + 1] = std::log(0.6f);
    }
    const auto beam = CtcBeamSearchDecode(logits, 0, 4, TestPool());
    ASSERT_EQ(beam.size(), 1u);
    EXPECT_EQ(beam[0], 1);
}

TEST(CtcTest, BeamSearchPrefersSummedProbabilityOverBestPath)
{
    // Three frames: blank 0.5, a 0.3, b 0.2 each frame. Greedy gives
    // the empty string (all-blank path, p = 0.125) but P("a") sums to
    // a larger mass across its many alignments.
    Tensor logits(DType::kFloat32, Shape{3, 3});
    for (int t = 0; t < 3; ++t) {
        logits.data<float>()[t * 3 + 0] = std::log(0.50f);
        logits.data<float>()[t * 3 + 1] = std::log(0.34f);
        logits.data<float>()[t * 3 + 2] = std::log(0.16f);
    }
    const auto greedy = CtcGreedyDecode(logits, 0);
    EXPECT_TRUE(greedy.empty());
    const auto beam = CtcBeamSearchDecode(logits, 0, 8, TestPool());
    ASSERT_EQ(beam.size(), 1u);  // P("a") = 0.398 > P("") = 0.125.
    EXPECT_EQ(beam[0], 1);
}

TEST(CtcTest, BeamSearchMatchesGreedyOnPeakedDistributions)
{
    // With near-one-hot frames the two decoders must agree.
    Tensor logits = Tensor::Full(Shape{8, 4}, -8.0f);
    const std::int32_t path[8] = {1, 1, 0, 2, 0, 3, 3, 0};
    for (int t = 0; t < 8; ++t) {
        logits.data<float>()[t * 4 + path[t]] = 8.0f;
    }
    EXPECT_EQ(CtcBeamSearchDecode(logits, 0, 4, TestPool()),
              CtcGreedyDecode(logits, 0));
}

TEST(CtcTest, BeamSearchHandlesRepeatedLabels)
{
    // Path 1 blank 1 decodes to "1 1" only via the blank separator.
    Tensor logits = Tensor::Full(Shape{3, 2}, -8.0f);
    logits.data<float>()[0 * 2 + 1] = 8.0f;
    logits.data<float>()[1 * 2 + 0] = 8.0f;
    logits.data<float>()[2 * 2 + 1] = 8.0f;
    const auto decoded = CtcBeamSearchDecode(logits, 0, 4, TestPool());
    ASSERT_EQ(decoded.size(), 2u);
    EXPECT_EQ(decoded[0], 1);
    EXPECT_EQ(decoded[1], 1);
}

TEST(CtcTest, BeamSearchRejectsBadWidth)
{
    const Tensor logits = test::RandomTensor(Shape{3, 3}, 70);
    EXPECT_THROW(CtcBeamSearchDecode(logits, 0, 0, TestPool()), std::invalid_argument);
}

TEST(CtcTest, GreedyDecodeCollapses)
{
    // Path: 1 1 0 2 2 0 1  -> decode 1, 2, 1
    Tensor logits = Tensor::Full(Shape{7, 3}, -5.0f);
    const std::int32_t path[7] = {1, 1, 0, 2, 2, 0, 1};
    for (int t = 0; t < 7; ++t) {
        logits.data<float>()[t * 3 + path[t]] = 5.0f;
    }
    const auto decoded = CtcGreedyDecode(logits, 0);
    ASSERT_EQ(decoded.size(), 3u);
    EXPECT_EQ(decoded[0], 1);
    EXPECT_EQ(decoded[1], 2);
    EXPECT_EQ(decoded[2], 1);
}

}  // namespace
}  // namespace fathom::kernels
