# Applied at ctest time, after gtest discovery populates the
# TEST_LIST variables (see tests/CMakeLists.txt). The threading and
# determinism tests carry `concurrency` so CI can rerun exactly them
# under ThreadSanitizer; the whole-suite batteries add `slow` so
# developers can skip them locally with `ctest -LE slow`. Everything
# stays in `tier1`.
foreach(test IN LISTS concurrency_fast_TESTS)
    set_tests_properties("${test}" PROPERTIES
        LABELS "tier1;concurrency")
endforeach()
foreach(test IN LISTS concurrency_battery_TESTS)
    set_tests_properties("${test}" PROPERTIES
        LABELS "tier1;concurrency;slow")
endforeach()
