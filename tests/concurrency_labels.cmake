# Applied at ctest time, after gtest discovery populates the
# TEST_LIST variables (see tests/CMakeLists.txt). The threading and
# determinism tests carry `concurrency` so CI can rerun exactly them
# under ThreadSanitizer; the GEMM-engine/conv-lowering batteries carry
# `kernels` so the ASan job can target the pack-buffer paths; the
# whole-suite batteries add `slow` so developers can skip them locally
# with `ctest -LE slow`. Everything stays in `tier1`.
foreach(test IN LISTS concurrency_fast_TESTS)
    set_tests_properties("${test}" PROPERTIES
        LABELS "tier1;concurrency")
endforeach()
foreach(test IN LISTS concurrency_battery_TESTS)
    # The GEMM determinism battery is both a concurrency test (it races
    # the tile grid under TSan) and a kernels test.
    if(test MATCHES "GemmEngine")
        set_tests_properties("${test}" PROPERTIES
            LABELS "tier1;concurrency;kernels;slow")
    else()
        set_tests_properties("${test}" PROPERTIES
            LABELS "tier1;concurrency;slow")
    endif()
endforeach()
foreach(test IN LISTS kernel_battery_TESTS)
    set_tests_properties("${test}" PROPERTIES
        LABELS "tier1;kernels")
endforeach()
