# Applied at ctest time, after gtest discovery populates the
# TEST_LIST variables (see tests/CMakeLists.txt). The threading and
# determinism tests carry `concurrency` so CI can rerun exactly them
# under ThreadSanitizer; the GEMM-engine/conv-lowering batteries carry
# `kernels` so the ASan job can target the pack-buffer paths; the
# whole-suite batteries add `slow` so developers can skip them locally
# with `ctest -LE slow`. Everything stays in `tier1`.
foreach(test IN LISTS concurrency_fast_TESTS)
    # The telemetry concurrency battery is also part of the
    # observability suite (CI smoke-tests the instrumentation paths
    # with `ctest -L observability`).
    if(test MATCHES "Telemetry")
        set_tests_properties("${test}" PROPERTIES
            LABELS "tier1;concurrency;observability")
    else()
        set_tests_properties("${test}" PROPERTIES
            LABELS "tier1;concurrency")
    endif()
endforeach()
foreach(test IN LISTS concurrency_battery_TESTS)
    # The GEMM determinism battery is both a concurrency test (it races
    # the tile grid under TSan) and a kernels test.
    if(test MATCHES "GemmEngine")
        set_tests_properties("${test}" PROPERTIES
            LABELS "tier1;concurrency;kernels;slow")
    else()
        set_tests_properties("${test}" PROPERTIES
            LABELS "tier1;concurrency;slow")
    endif()
endforeach()
foreach(test IN LISTS kernel_battery_TESTS)
    set_tests_properties("${test}" PROPERTIES
        LABELS "tier1;kernels")
endforeach()
foreach(test IN LISTS serving_fast_TESTS)
    set_tests_properties("${test}" PROPERTIES
        LABELS "tier1;serving")
endforeach()
foreach(test IN LISTS serving_battery_TESTS)
    # The multi-client battery is the serving layer's race detector
    # target; it joins `concurrency` so both TSan selections (-L
    # concurrency and -L serving) cover it.
    if(test MATCHES "Concurrent")
        set_tests_properties("${test}" PROPERTIES
            LABELS "tier1;serving;concurrency;slow")
    else()
        set_tests_properties("${test}" PROPERTIES
            LABELS "tier1;serving;slow")
    endif()
endforeach()
foreach(test IN LISTS pipeline_fast_TESTS)
    set_tests_properties("${test}" PROPERTIES
        LABELS "tier1;pipeline")
endforeach()
foreach(test IN LISTS pipeline_battery_TESTS)
    # The queue hammers are the pipeline's race-detector targets; they
    # join `concurrency` so both TSan selections (-L concurrency and
    # -L pipeline) cover them. The all-workloads bit-identity battery
    # is wall-clock heavy, hence `slow`.
    if(test MATCHES "Concurrent")
        set_tests_properties("${test}" PROPERTIES
            LABELS "tier1;pipeline;concurrency")
    else()
        set_tests_properties("${test}" PROPERTIES
            LABELS "tier1;pipeline;slow")
    endif()
endforeach()
foreach(test IN LISTS observability_TESTS)
    # The overhead-budget test is a wall-clock assertion; RUN_SERIAL
    # keeps `ctest -j` from co-scheduling 400 other tests against it
    # (the contention, not the instrumentation, is what would trip the
    # 2% budget).
    if(test MATCHES "Overhead")
        set_tests_properties("${test}" PROPERTIES
            LABELS "tier1;observability" RUN_SERIAL TRUE)
    else()
        set_tests_properties("${test}" PROPERTIES
            LABELS "tier1;observability")
    endif()
endforeach()
