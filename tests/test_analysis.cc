/**
 * @file
 * Tests for the analysis toolchain: op profiles, skew curves, cosine
 * similarity / clustering, stationarity statistics, and thread sweeps.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/op_profile.h"
#include "analysis/scaling.h"
#include "analysis/similarity.h"
#include "analysis/stationarity.h"

namespace fathom::analysis {
namespace {

using graph::OpClass;

runtime::OpExecRecord
MakeRecord(const std::string& type, OpClass op_class, double wall,
           double flops = 0.0, std::int64_t parallel = 1)
{
    runtime::OpExecRecord r;
    r.op_type = type;
    r.op_class = op_class;
    r.wall_seconds = wall;
    r.cost.flops = flops;
    r.cost.bytes = 0;
    r.cost.parallel_work = parallel;
    return r;
}

TEST(OpProfileTest, AddAndFractions)
{
    OpProfile p;
    p.Add("MatMul", OpClass::kMatrixOps, 3.0);
    p.Add("Add", OpClass::kElementwise, 1.0);
    p.Add("MatMul", OpClass::kMatrixOps, 1.0);
    EXPECT_DOUBLE_EQ(p.total_seconds(), 5.0);
    EXPECT_DOUBLE_EQ(p.ClassFraction(OpClass::kMatrixOps), 0.8);
    EXPECT_DOUBLE_EQ(p.ClassFraction(OpClass::kElementwise), 0.2);
    EXPECT_DOUBLE_EQ(p.ClassFraction(OpClass::kConvolution), 0.0);
}

TEST(OpProfileTest, SortedFractionsDescending)
{
    OpProfile p;
    p.Add("A", OpClass::kElementwise, 1.0);
    p.Add("B", OpClass::kElementwise, 3.0);
    p.Add("C", OpClass::kElementwise, 2.0);
    const auto sorted = p.SortedFractions();
    ASSERT_EQ(sorted.size(), 3u);
    EXPECT_EQ(sorted[0].first, "B");
    EXPECT_EQ(sorted[1].first, "C");
    EXPECT_EQ(sorted[2].first, "A");
}

TEST(OpProfileTest, SkewCurveIsCumulativeAndEndsAtOne)
{
    // Powers of two keep the fractions exactly representable.
    OpProfile p;
    p.Add("A", OpClass::kElementwise, 4.0);
    p.Add("B", OpClass::kElementwise, 2.0);
    p.Add("C", OpClass::kElementwise, 2.0);
    const auto curve = p.SkewCurve();
    ASSERT_EQ(curve.size(), 3u);
    EXPECT_NEAR(curve[0], 0.5, 1e-12);
    EXPECT_NEAR(curve[1], 0.75, 1e-12);
    EXPECT_NEAR(curve[2], 1.0, 1e-12);
    EXPECT_EQ(p.TypesToCover(0.75), 2);
    EXPECT_EQ(p.TypesToCover(0.9), 3);
    EXPECT_EQ(p.TypesToCover(0.5), 1);
}

TEST(OpProfileTest, EmptyProfile)
{
    OpProfile p;
    EXPECT_DOUBLE_EQ(p.total_seconds(), 0.0);
    EXPECT_TRUE(p.SkewCurve().empty());
    EXPECT_EQ(p.TypesToCover(0.9), 0);
}

TEST(OpProfileTest, FromTraceSkipsWarmupAndControl)
{
    runtime::Tracer tracer;
    tracer.BeginStep();
    tracer.Record(MakeRecord("Warm", OpClass::kElementwise, 100.0));
    tracer.EndStep(100.0);
    tracer.BeginStep();
    tracer.Record(MakeRecord("MatMul", OpClass::kMatrixOps, 2.0));
    tracer.Record(MakeRecord("Variable", OpClass::kControl, 50.0));
    tracer.EndStep(3.0);

    const auto p = WallProfile(tracer, /*skip_steps=*/1);
    EXPECT_DOUBLE_EQ(p.total_seconds(), 2.0);  // warmup + control excluded.
    EXPECT_EQ(p.by_type().count("Warm"), 0u);
    EXPECT_EQ(p.by_type().count("Variable"), 0u);
}

TEST(OpProfileTest, SimulatedSourceUsesCosts)
{
    runtime::Tracer tracer;
    tracer.BeginStep();
    // wall time 1s, but cost says 8e9 flops => 1s at 8 GFLOP/s CPU(1).
    tracer.Record(
        MakeRecord("MatMul", OpClass::kMatrixOps, 123.0, 8e9, 1 << 20));
    tracer.EndStep(123.0);
    const auto p = ProfileFromTrace(tracer, 0, TimeSource::kSimulated,
                                    runtime::DeviceSpec::Cpu(1));
    EXPECT_NEAR(p.total_seconds(), 1.0, 0.01);
}

TEST(SimilarityTest, CosineDistanceBasics)
{
    EXPECT_NEAR(CosineDistance({1, 0}, {1, 0}), 0.0, 1e-12);
    EXPECT_NEAR(CosineDistance({1, 0}, {0, 1}), 1.0, 1e-12);
    EXPECT_NEAR(CosineDistance({1, 1}, {1, 1}), 0.0, 1e-12);
    EXPECT_NEAR(CosineDistance({1, 0}, {1, 1}),
                1.0 - 1.0 / std::sqrt(2.0), 1e-9);
    // Zero vector convention.
    EXPECT_DOUBLE_EQ(CosineDistance({0, 0}, {1, 1}), 1.0);
    EXPECT_THROW(CosineDistance({1}, {1, 2}), std::invalid_argument);
}

TEST(SimilarityTest, ProfileMatrixAlignsTypes)
{
    OpProfile a;
    a.Add("MatMul", OpClass::kMatrixOps, 1.0);
    OpProfile b;
    b.Add("Conv2D", OpClass::kConvolution, 2.0);
    const auto matrix = ProfileMatrix({a, b});
    ASSERT_EQ(matrix.size(), 2u);
    ASSERT_EQ(matrix[0].size(), 2u);  // union of {MatMul, Conv2D}.
    // Disjoint profiles are orthogonal.
    EXPECT_NEAR(CosineDistance(matrix[0], matrix[1]), 1.0, 1e-12);
}

TEST(SimilarityTest, ClusteringMergesNearestFirst)
{
    // Two tight pairs, far apart: (e1, e1'), (e2, e2').
    const std::vector<std::vector<double>> vectors = {
        {1.0, 0.05}, {1.0, 0.06}, {0.05, 1.0}, {0.04, 1.0}};
    const auto merges = AgglomerativeCluster(vectors);
    ASSERT_EQ(merges.size(), 3u);
    // First two merges are the tight pairs (order may vary).
    auto is_pair = [](const Merge& m, int a, int b) {
        return (m.left == a && m.right == b) || (m.left == b && m.right == a);
    };
    EXPECT_TRUE(is_pair(merges[0], 0, 1) || is_pair(merges[0], 2, 3));
    EXPECT_TRUE(is_pair(merges[1], 0, 1) || is_pair(merges[1], 2, 3));
    // The final merge joins the two pair-clusters at a larger distance.
    EXPECT_GT(merges[2].distance, merges[0].distance);
    EXPECT_GT(merges[2].distance, merges[1].distance);
    // Merge distances of the two tight pairs are near zero.
    EXPECT_LT(merges[0].distance, 0.01);
}

TEST(SimilarityTest, DendrogramListsAllLeaves)
{
    const std::vector<std::vector<double>> vectors = {
        {1.0, 0.0}, {0.9, 0.1}, {0.0, 1.0}};
    const auto merges = AgglomerativeCluster(vectors);
    const auto render = RenderDendrogram({"a", "b", "c"}, merges);
    EXPECT_NE(render.find("a"), std::string::npos);
    EXPECT_NE(render.find("b"), std::string::npos);
    EXPECT_NE(render.find("c"), std::string::npos);
}

TEST(SimilarityTest, SingleLeafNoMerges)
{
    EXPECT_TRUE(AgglomerativeCluster({{1.0}}).empty());
    EXPECT_TRUE(AgglomerativeCluster({}).empty());
}

TEST(StationarityTest, StableSeriesHasLowCvAndDrift)
{
    runtime::Tracer tracer;
    for (int s = 0; s < 20; ++s) {
        tracer.BeginStep();
        tracer.Record(MakeRecord("MatMul", OpClass::kMatrixOps, 1.0));
        tracer.Record(MakeRecord("MatMul", OpClass::kMatrixOps, 1.0));
        tracer.EndStep(2.1);
    }
    const auto stats = ComputeStationarity(tracer, 0);
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_EQ(stats[0].op_type, "MatMul");
    EXPECT_EQ(stats[0].samples, 20);
    EXPECT_NEAR(stats[0].mean, 2.0, 1e-12);  // two records per step.
    EXPECT_NEAR(stats[0].cv, 0.0, 1e-12);
    EXPECT_NEAR(stats[0].drift(), 0.0, 1e-12);
}

TEST(StationarityTest, DriftDetectsTrend)
{
    runtime::Tracer tracer;
    for (int s = 0; s < 10; ++s) {
        tracer.BeginStep();
        // First half 1.0, second half 3.0.
        tracer.Record(MakeRecord("Op", OpClass::kElementwise,
                                 s < 5 ? 1.0 : 3.0));
        tracer.EndStep(3.0);
    }
    const auto stats = ComputeStationarity(tracer, 0);
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_NEAR(stats[0].drift(), 1.0, 1e-9);  // |3-1| / mean 2.
}

TEST(StationarityTest, OverheadFraction)
{
    runtime::Tracer tracer;
    tracer.BeginStep();
    tracer.Record(MakeRecord("Op", OpClass::kElementwise, 0.9));
    tracer.EndStep(1.0);
    EXPECT_NEAR(FrameworkOverheadFraction(tracer, 0), 0.1, 1e-9);
    EXPECT_DOUBLE_EQ(FrameworkOverheadFraction(tracer, 5), 0.0);
}

TEST(ScalingTest, SweepShrinksParallelOpsOnly)
{
    runtime::Tracer tracer;
    tracer.BeginStep();
    tracer.Record(MakeRecord("Big", OpClass::kMatrixOps, 1.0, 1e9, 1 << 20));
    tracer.Record(MakeRecord("Tiny", OpClass::kElementwise, 1.0, 1e3, 8));
    tracer.EndStep(2.0);

    const auto sweep = SweepThreads(tracer, 0, {1, 8});
    const auto& big = sweep.seconds_by_type.at("Big");
    const auto& tiny = sweep.seconds_by_type.at("Tiny");
    EXPECT_GT(big[0] / big[1], 4.0);         // scales.
    EXPECT_NEAR(tiny[0], tiny[1], 1e-12);    // does not.
    EXPECT_GT(sweep.TotalAt(0), sweep.TotalAt(1));
}

TEST(ScalingTest, TopTypesOrdersBySingleThreadTime)
{
    runtime::Tracer tracer;
    tracer.BeginStep();
    tracer.Record(MakeRecord("Small", OpClass::kElementwise, 1.0, 1e6, 1));
    tracer.Record(MakeRecord("Large", OpClass::kMatrixOps, 1.0, 1e9, 1));
    tracer.EndStep(2.0);
    const auto sweep = SweepThreads(tracer, 0, {1});
    const auto top = TopTypes(sweep, 2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0], "Large");
    EXPECT_EQ(TopTypes(sweep, 1).size(), 1u);
}

TEST(ScalingTest, SimulatedTotalExcludesControl)
{
    runtime::Tracer tracer;
    tracer.BeginStep();
    tracer.Record(MakeRecord("Var", OpClass::kControl, 1.0, 1e9, 1));
    tracer.Record(MakeRecord("MatMul", OpClass::kMatrixOps, 1.0, 8e9, 1));
    tracer.EndStep(2.0);
    const double total =
        SimulatedTotalSeconds(tracer, 0, runtime::DeviceSpec::Cpu(1));
    EXPECT_NEAR(total, 1.0, 0.01);  // only the MatMul contributes.
}

}  // namespace
}  // namespace fathom::analysis
