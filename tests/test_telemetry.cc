/**
 * @file
 * Tests for the telemetry subsystem: the metrics registry and its
 * exporters, the tracer's interval-union overhead accounting, the
 * traced-off overhead budget, and the roofline report.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>

#include "analysis/roofline.h"
#include "core/suite.h"
#include "runtime/tracer.h"
#include "telemetry/exporters.h"
#include "telemetry/metrics.h"
#include "workloads/workload.h"

namespace fathom {
namespace {

/** Turns collection on for a scope and restores "off" after. */
class ScopedMetrics {
  public:
    ScopedMetrics() { telemetry::MetricsRegistry::set_enabled(true); }
    ~ScopedMetrics() { telemetry::MetricsRegistry::set_enabled(false); }
};

TEST(TelemetryMetricsTest, CounterAccumulatesOnlyWhileEnabled)
{
    auto& registry = telemetry::MetricsRegistry::Global();
    telemetry::Counter& c = registry.GetCounter("test.counter_gating");
    c.Reset();

    telemetry::MetricsRegistry::set_enabled(false);
    c.Add(5);
    EXPECT_EQ(c.value(), 0u) << "disabled Add must be a no-op";

    {
        ScopedMetrics on;
        c.Add(5);
        c.Add();
        EXPECT_EQ(c.value(), 6u);
    }
    c.Add(100);  // disabled again.
    EXPECT_EQ(c.value(), 6u);

    // Same name returns the same object (cached references stay live).
    EXPECT_EQ(&registry.GetCounter("test.counter_gating"), &c);
}

TEST(TelemetryMetricsTest, GaugeStoresLastValue)
{
    auto& g = telemetry::MetricsRegistry::Global().GetGauge("test.gauge");
    g.Reset();
    ScopedMetrics on;
    g.Set(2.5);
    g.Set(-1.25);
    EXPECT_EQ(g.value(), -1.25);
}

TEST(TelemetryMetricsTest, HistogramBucketsByLog2)
{
    auto& h =
        telemetry::MetricsRegistry::Global().GetHistogram("test.histogram");
    h.Reset();
    ScopedMetrics on;
    // bit_width: 0->bucket 0, 1->1, 2..3->2, 4..7->3, 8..15->4.
    h.Observe(0);
    h.Observe(1);
    h.Observe(2);
    h.Observe(3);
    h.Observe(7);
    h.Observe(8);

    const auto s = h.snapshot();
    EXPECT_EQ(s.count, 6u);
    EXPECT_EQ(s.sum, 21u);
    EXPECT_DOUBLE_EQ(s.Mean(), 3.5);
    EXPECT_EQ(s.buckets[0], 1u);
    EXPECT_EQ(s.buckets[1], 1u);
    EXPECT_EQ(s.buckets[2], 2u);
    EXPECT_EQ(s.buckets[3], 1u);
    EXPECT_EQ(s.buckets[4], 1u);
    EXPECT_EQ(telemetry::HistogramSnapshot::BucketUpperBound(0), 0u);
    EXPECT_EQ(telemetry::HistogramSnapshot::BucketUpperBound(3), 7u);
    EXPECT_EQ(telemetry::HistogramSnapshot::BucketUpperBound(64),
              ~std::uint64_t{0});
}

TEST(TelemetryMetricsTest, SnapshotIsSortedAndLooksUpByName)
{
    auto& registry = telemetry::MetricsRegistry::Global();
    ScopedMetrics on;
    registry.GetCounter("test.snap_b").Reset();
    registry.GetCounter("test.snap_a").Reset();
    registry.GetCounter("test.snap_a").Add(3);
    registry.GetHistogram("test.snap_h").Reset();
    registry.GetHistogram("test.snap_h").Observe(4);

    const auto snapshot = registry.Snapshot();
    EXPECT_TRUE(std::is_sorted(
        snapshot.counters.begin(), snapshot.counters.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; }));
    EXPECT_EQ(snapshot.CounterValue("test.snap_a"), 3u);
    EXPECT_EQ(snapshot.CounterValue("test.snap_b"), 0u);
    EXPECT_EQ(snapshot.CounterValue("test.absent"), 0u);
    EXPECT_EQ(snapshot.HistogramValue("test.snap_h").count, 1u);
    EXPECT_EQ(snapshot.HistogramValue("test.absent").count, 0u);
}

TEST(TelemetryExporterTest, JsonlEmitsOneObjectPerLine)
{
    telemetry::MetricsSnapshot snapshot;
    snapshot.counters.emplace_back("session.steps", 7);
    snapshot.gauges.emplace_back("test.g", 0.5);
    telemetry::HistogramSnapshot h;
    h.count = 2;
    h.sum = 9;
    h.buckets[1] = 1;  // value 1
    h.buckets[4] = 1;  // value 8
    snapshot.histograms.emplace_back("executor.ready_queue_depth", h);

    const std::string jsonl = telemetry::MetricsToJsonl(snapshot);
    EXPECT_NE(jsonl.find("{\"kind\":\"counter\",\"name\":\"session.steps\","
                         "\"value\":7}"),
              std::string::npos);
    EXPECT_NE(jsonl.find("\"kind\":\"gauge\""), std::string::npos);
    // Histogram buckets keyed by inclusive upper bound: 1 and 15.
    EXPECT_NE(jsonl.find("\"buckets\":{\"1\":1,\"15\":1}"),
              std::string::npos);
    // One JSON object per line, each line brace-balanced.
    EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 3);
}

TEST(TelemetryExporterTest, PrometheusEmitsTypedCumulativeSeries)
{
    telemetry::MetricsSnapshot snapshot;
    snapshot.counters.emplace_back("gemm.pack_acquires", 12);
    telemetry::HistogramSnapshot h;
    h.count = 3;
    h.sum = 10;
    h.buckets[1] = 2;
    h.buckets[3] = 1;
    snapshot.histograms.emplace_back("session.step_us", h);

    const std::string prom = telemetry::MetricsToPrometheus(snapshot);
    EXPECT_NE(prom.find("# TYPE fathom_gemm_pack_acquires counter"),
              std::string::npos);
    EXPECT_NE(prom.find("fathom_gemm_pack_acquires 12"), std::string::npos);
    // Buckets are cumulative and end with +Inf = count.
    EXPECT_NE(prom.find("fathom_session_step_us_bucket{le=\"1\"} 2"),
              std::string::npos);
    EXPECT_NE(prom.find("fathom_session_step_us_bucket{le=\"7\"} 3"),
              std::string::npos);
    EXPECT_NE(prom.find("fathom_session_step_us_bucket{le=\"+Inf\"} 3"),
              std::string::npos);
    EXPECT_NE(prom.find("fathom_session_step_us_count 3"),
              std::string::npos);
}

TEST(TelemetryTracerTest, OverheadIsStepSpanMinusIntervalUnion)
{
    runtime::StepTrace step;
    step.wall_seconds = 1.0;
    auto add = [&step](double start, double wall) {
        runtime::OpExecRecord r;
        r.start_seconds = start;
        r.wall_seconds = wall;
        step.records.push_back(r);
    };
    // Two overlapping ops [0.1, 0.5) and [0.3, 0.7), one disjoint
    // [0.8, 0.9): union = 0.7, sum = 0.9.
    add(0.1, 0.4);
    add(0.3, 0.4);
    add(0.8, 0.1);
    EXPECT_NEAR(step.OpSeconds(), 0.9, 1e-12);
    EXPECT_NEAR(step.BusySeconds(), 0.7, 1e-12);
    EXPECT_NEAR(step.OverheadSeconds(), 0.3, 1e-12);
}

TEST(TelemetryTracerTest, OverheadClampsAtZero)
{
    // Summed op time exceeding the step span used to drive the
    // historical wall - sum(op) definition negative; the union can
    // also exceed a noisy step measurement by timer granularity.
    runtime::StepTrace step;
    step.wall_seconds = 0.5;
    runtime::OpExecRecord a;
    a.start_seconds = 0.0;
    a.wall_seconds = 0.6;
    runtime::OpExecRecord b = a;  // fully concurrent duplicate.
    step.records.push_back(a);
    step.records.push_back(b);
    EXPECT_NEAR(step.OpSeconds(), 1.2, 1e-12);
    EXPECT_NEAR(step.BusySeconds(), 0.6, 1e-12);
    EXPECT_EQ(step.OverheadSeconds(), 0.0);

    runtime::StepTrace empty;
    empty.wall_seconds = 0.25;
    EXPECT_EQ(empty.BusySeconds(), 0.0);
    EXPECT_NEAR(empty.OverheadSeconds(), 0.25, 1e-12);
}

TEST(TelemetryWorkloadTest, MetricsCaptureExecutorAndAllocatorActivity)
{
    workloads::RegisterAllWorkloads();
    auto& registry = telemetry::MetricsRegistry::Global();
    registry.ResetAll();

    workloads::WorkloadConfig config;
    config.batch_size = 2;
    config.inter_op_threads = 2;
    config.telemetry = true;
    auto workload = workloads::WorkloadRegistry::Global().Create("alexnet");
    workload->Setup(config);
    workload->RunTraining(2);
    telemetry::MetricsRegistry::set_enabled(false);

    const auto snapshot = registry.Snapshot();
    EXPECT_EQ(snapshot.CounterValue("session.steps"), 2u);
    EXPECT_GT(snapshot.CounterValue("session.ops_executed"), 0u);
    EXPECT_EQ(snapshot.CounterValue("executor.parallel_steps"), 2u);
    EXPECT_GT(snapshot.CounterValue("allocator.requests"), 0u);
    // Conv layers lower onto the GEMM engine: pack buffers were
    // acquired, and the counters stay paired.
    const std::uint64_t acquires =
        snapshot.CounterValue("gemm.pack_acquires");
    EXPECT_GT(acquires, 0u);
    EXPECT_LE(snapshot.CounterValue("gemm.pack_pool_hits"), acquires);
    EXPECT_EQ(snapshot.HistogramValue("session.step_us").count, 2u);
}

TEST(TelemetryOverheadTest, MetricsOffCostsUnderBudgetVsDark)
{
    // The ISSUE's hot-path contract: with tracing off, enabling the
    // metrics registry may cost at most ~2% step time. Modes are
    // interleaved within each repetition and compared min-to-min so a
    // background hiccup cannot fail the build; a small absolute floor
    // absorbs timer quantization at these small shapes.
    workloads::RegisterAllWorkloads();

    auto make = [](bool telemetry) {
        workloads::WorkloadConfig config;
        config.batch_size = 2;
        config.tracing = false;
        config.telemetry = telemetry;
        auto w = workloads::WorkloadRegistry::Global().Create("alexnet");
        w->Setup(config);
        w->RunTraining(1);  // warm variables and the buffer pool.
        return w;
    };
    auto dark = make(false);
    auto metered = make(true);

    constexpr int kReps = 5;
    constexpr int kSteps = 2;
    double dark_best = 1e300;
    double metered_best = 1e300;
    for (int rep = 0; rep < kReps; ++rep) {
        telemetry::MetricsRegistry::set_enabled(false);
        dark_best =
            std::min(dark_best, dark->RunTraining(kSteps).wall_seconds);
        telemetry::MetricsRegistry::set_enabled(true);
        metered_best = std::min(metered_best,
                                metered->RunTraining(kSteps).wall_seconds);
    }
    telemetry::MetricsRegistry::set_enabled(false);

    EXPECT_LE(metered_best, dark_best * 1.02 + 1e-3)
        << "metrics-on best " << metered_best * 1e3 << " ms vs dark best "
        << dark_best * 1e3 << " ms";
}

class RooflineTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RooflineTest, ReportsSaneBoundsForGemmBoundOps)
{
    const std::string name = GetParam();
    core::SuiteRunOptions options;
    options.warmup_steps = 1;
    options.train_steps = 2;
    options.infer_steps = 0;
    options.batch_size = 2;
    const auto traces = core::RunAndTrace(name, options);
    const auto report = analysis::BuildRooflineReport(
        traces.training, traces.warmup_steps, runtime::DeviceSpec::Cpu(1));

    ASSERT_FALSE(report.by_class.empty());
    ASSERT_FALSE(report.by_type.empty());
    EXPECT_GT(report.total_wall_seconds, 0.0);
    EXPECT_GT(report.total_flops, 0.0);

    // Class rows partition the same records as the totals.
    double class_wall = 0.0;
    for (const auto& row : report.by_class) {
        class_wall += row.wall_seconds;
        EXPECT_GT(row.executions, 0);
    }
    EXPECT_NEAR(class_wall, report.total_wall_seconds,
                1e-9 * std::max(1.0, report.total_wall_seconds));

    // The GEMM-bound class (Convolution for the conv nets, MatrixOps
    // for the recurrent ones) must report physically sane numbers:
    // nonzero achieved GFLOP/s below any plausible CPU peak, compute
    // intensity above the elementwise ~0.1 FLOP/B floor, and a
    // model-vs-measured ratio within two orders of magnitude.
    const std::string gemm_class =
        name == "alexnet" ? "Convolution" : "MatrixOps";
    const auto it = std::find_if(
        report.by_class.begin(), report.by_class.end(),
        [&gemm_class](const auto& row) { return row.key == gemm_class; });
    ASSERT_NE(it, report.by_class.end())
        << name << " trace has no " << gemm_class << " ops";
    EXPECT_GT(it->AchievedGflops(), 0.01);
    EXPECT_LT(it->AchievedGflops(), 10000.0);
    EXPECT_GT(it->Intensity(), 0.1);
    EXPECT_GT(it->ModelRatio(), 0.01);
    EXPECT_LT(it->ModelRatio(), 100.0);

    // The renderer prints every headline quantity.
    const std::string text = analysis::RenderRooflineReport(report, 8);
    EXPECT_NE(text.find("GFLOP/s"), std::string::npos);
    EXPECT_NE(text.find("FLOP/B"), std::string::npos);
    EXPECT_NE(text.find(gemm_class), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(GemmBoundModels, RooflineTest,
                         ::testing::Values("alexnet", "seq2seq"),
                         [](const auto& info) {
                             return std::string(info.param);
                         });

}  // namespace
}  // namespace fathom
