/**
 * @file
 * Tests for the application-level graph optimizer (constant folding +
 * common-subexpression elimination) and its executor integration.
 */
#include <gtest/gtest.h>

#include "ops/register.h"
#include "runtime/graph_optimizer.h"
#include "runtime/session.h"
#include "workloads/workload.h"
#include "test_util.h"

namespace fathom::runtime {
namespace {

using graph::Output;
using test::ExpectTensorNear;
using test::RandomTensor;

class GraphOptimizerTest : public ::testing::Test {
  protected:
    static void SetUpTestSuite() { ops::RegisterStandardOps(); }
};

TEST_F(GraphOptimizerTest, FoldsConstOnlySubgraph)
{
    Session session;
    auto b = session.MakeBuilder();
    // (2 + 3) * 4 is fully constant; x * that is not.
    const Output c = b.Mul(b.Add(b.ScalarConst(2.0f), b.ScalarConst(3.0f)),
                           b.ScalarConst(4.0f));
    const Output x = b.Placeholder("x");
    const Output y = b.Mul(x, c);

    const auto order = session.graph().TopologicalOrder({y.node});
    const auto plan =
        OptimizePlan(session.graph(), order, session.variables());
    EXPECT_EQ(plan.folded_nodes, 2);  // Add and Mul folded.
    // The folded value is available and correct.
    bool found = false;
    for (const auto& [id, outputs] : plan.folded) {
        if (session.graph().node(id).op_type == "Mul") {
            EXPECT_FLOAT_EQ(outputs[0].scalar_value(), 20.0f);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST_F(GraphOptimizerTest, CseMergesIdenticalPureNodes)
{
    Session session;
    auto b = session.MakeBuilder();
    const Output x = b.Placeholder("x");
    // Two identical Tanh(x) nodes and a structurally different one.
    const Output t1 = b.Tanh(x);
    const Output t2 = b.Tanh(x);
    const Output s = b.Sigmoid(x);
    const Output y = b.Add(b.Add(t1, t2), s);

    const auto order = session.graph().TopologicalOrder({y.node});
    const auto plan =
        OptimizePlan(session.graph(), order, session.variables(),
                     /*fold_constants=*/false, /*eliminate_common=*/true);
    EXPECT_EQ(plan.cse_merged, 1);
    EXPECT_TRUE(plan.replacements.count(t2.node) ||
                plan.replacements.count(t1.node));
}

TEST_F(GraphOptimizerTest, CseRespectsAttrs)
{
    Session session;
    auto b = session.MakeBuilder();
    const Output x = b.Placeholder("x");
    // Same op type + inputs but different attrs must NOT merge.
    const Output p2 = b.Pow(x, 2.0f);
    const Output p3 = b.Pow(x, 3.0f);
    const Output y = b.Add(p2, p3);
    const auto order = session.graph().TopologicalOrder({y.node});
    const auto plan = OptimizePlan(session.graph(), order,
                                   session.variables(), false, true);
    EXPECT_EQ(plan.cse_merged, 0);
}

TEST_F(GraphOptimizerTest, CseDistinguishesNearbyFloatAttrs)
{
    // Float attrs are encoded into the CSE signature by bit pattern,
    // not by streaming with default (6 significant digit) precision —
    // the latter printed 1.0000001 and 1.0000002 identically and
    // merged ops that compute different values.
    Session session;
    auto b = session.MakeBuilder();
    const Output x = b.Placeholder("x");
    const Output p1 = b.Pow(x, 1.0000001f);
    const Output p2 = b.Pow(x, 1.0000002f);
    const Output y = b.Add(p1, p2);
    const auto order = session.graph().TopologicalOrder({y.node});
    const auto plan = OptimizePlan(session.graph(), order,
                                   session.variables(), false, true);
    EXPECT_EQ(plan.cse_merged, 0);

    // Bitwise-equal attrs still merge — the fix must not disable CSE.
    Session session2;
    auto b2 = session2.MakeBuilder();
    const Output x2 = b2.Placeholder("x");
    const Output q1 = b2.Pow(x2, 1.0000001f);
    const Output q2 = b2.Pow(x2, 1.0000001f);
    const Output y2 = b2.Add(q1, q2);
    const auto order2 = session2.graph().TopologicalOrder({y2.node});
    const auto plan2 = OptimizePlan(session2.graph(), order2,
                                    session2.variables(), false, true);
    EXPECT_EQ(plan2.cse_merged, 1);
}

TEST_F(GraphOptimizerTest, StatefulOpsNeverMergeOrFold)
{
    Session session;
    auto b = session.MakeBuilder();
    // Two random ops with identical attrs must both execute.
    const Output r1 = b.RandomNormal({4}, 0.0f, 1.0f);
    const Output r2 = b.RandomNormal({4}, 0.0f, 1.0f);
    const Output y = b.Add(r1, r2);
    const auto order = session.graph().TopologicalOrder({y.node});
    const auto plan = OptimizePlan(session.graph(), order,
                                   session.variables(), true, true);
    EXPECT_EQ(plan.cse_merged, 0);
    EXPECT_EQ(plan.folded_nodes, 0);
}

TEST_F(GraphOptimizerTest, OptimizedSessionMatchesUnoptimized)
{
    // Identical results through a graph with shared subexpressions
    // and constant arms.
    auto build_and_run = [](bool optimize) {
        Session session(7);
        session.SetGraphOptimization(optimize);
        auto b = session.MakeBuilder();
        const Output x = b.Placeholder("x");
        const Output scale =
            b.Add(b.ScalarConst(1.5f), b.ScalarConst(0.5f));  // const 2.
        const Output t1 = b.Tanh(b.Mul(x, scale));
        const Output t2 = b.Tanh(b.Mul(x, scale));  // duplicate.
        const Output y = b.ReduceSum(b.Add(t1, t2), {}, false);
        FeedMap feeds;
        feeds[x.node] = RandomTensor(Shape{6}, 9);
        return session.Run(feeds, {y})[0].scalar_value();
    };
    EXPECT_FLOAT_EQ(build_and_run(false), build_and_run(true));
}

TEST_F(GraphOptimizerTest, OptimizedRunExecutesFewerOps)
{
    Session session(7);
    auto b = session.MakeBuilder();
    const Output x = b.Placeholder("x");
    const Output scale = b.Add(b.ScalarConst(1.5f), b.ScalarConst(0.5f));
    const Output t1 = b.Tanh(b.Mul(x, scale));
    const Output t2 = b.Tanh(b.Mul(x, scale));
    const Output y = b.ReduceSum(b.Add(t1, t2), {}, false);
    FeedMap feeds;
    feeds[x.node] = RandomTensor(Shape{6}, 9);

    session.Run(feeds, {y});
    const std::size_t baseline =
        session.tracer().steps().back().records.size();

    session.SetGraphOptimization(true);
    session.Run(feeds, {y});
    const std::size_t optimized =
        session.tracer().steps().back().records.size();
    EXPECT_LT(optimized, baseline);
}

TEST_F(GraphOptimizerTest, TrainingStillWorksUnderOptimization)
{
    // The whole autodiff + in-place update pipeline must survive the
    // optimizer: stateful update ops are pinned, variable reads are
    // not folded, and CSE must not merge across them incorrectly.
    Session session(11);
    session.SetGraphOptimization(true);
    auto b = session.MakeBuilder();
    std::string var;
    const Output w = b.Variable("w", Tensor::Scalar(0.0f), &var);
    const Output loss = b.Square(b.Sub(w, b.ScalarConst(3.0f)));
    const auto grads = autodiff::BuildGradients(b, loss, {w});
    const auto update = b.ApplyGradientDescent(var, grads[0], 0.1f);
    for (int i = 0; i < 100; ++i) {
        session.Run({}, {}, {update});
    }
    EXPECT_NEAR(session.variables().Get("w").scalar_value(), 3.0f, 1e-3f);
}

TEST_F(GraphOptimizerTest, FoldedNodeCanBeFetched)
{
    Session session;
    session.SetGraphOptimization(true);
    auto b = session.MakeBuilder();
    const Output c = b.Add(b.ScalarConst(2.0f), b.ScalarConst(5.0f));
    const auto out = session.Run({}, {c});
    EXPECT_FLOAT_EQ(out[0].scalar_value(), 7.0f);
}

TEST_F(GraphOptimizerTest, SharedAttentionProjectionsMergeInSeq2Seq)
{
    // A model-level payoff: the seq2seq decoder re-projects the same
    // encoder states at every step; CSE collapses the duplicates.
    fathom::workloads::RegisterAllWorkloads();
    auto w = fathom::workloads::WorkloadRegistry::Global().Create("seq2seq");
    fathom::workloads::WorkloadConfig config;
    config.seed = 2;
    w->Setup(config);

    w->RunInference(1);
    const std::size_t baseline =
        w->session().tracer().steps().back().records.size();
    w->session().SetGraphOptimization(true);
    w->RunInference(1);
    const std::size_t optimized =
        w->session().tracer().steps().back().records.size();
    EXPECT_LT(optimized, baseline);
    // And the executed-op reduction is substantial, not marginal.
    EXPECT_LT(static_cast<double>(optimized),
              0.95 * static_cast<double>(baseline));
}

}  // namespace
}  // namespace fathom::runtime
