/**
 * @file
 * Tests for the graph rewrite framework (graph/rewrite): the pattern
 * driver (fixed point, determinism, termination), the four production
 * patterns (constant folding, CSE, transpose folding, elementwise
 * fusion), in-place marking, and the executor integration — including
 * the bit-identity sweep over all eight workloads with each pattern
 * toggled individually, for training and serving.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "graph/rewrite/rewrite.h"
#include "ops/register.h"
#include "runtime/session.h"
#include "serving/frozen_plan.h"
#include "telemetry/metrics.h"
#include "workloads/workload.h"
#include "test_util.h"

namespace fathom::runtime {
namespace {

using graph::NodeId;
using graph::Output;
using graph::rewrite::Pattern;
using graph::rewrite::Rewrite;
using graph::rewrite::RewriteOptions;
using graph::rewrite::RewriteResult;
using graph::rewrite::RewriteState;
using graph::rewrite::RunPatterns;
using test::RandomTensor;

const void*
RawData(const Tensor& t)
{
    return t.dtype() == DType::kFloat32
               ? static_cast<const void*>(t.data<float>())
               : static_cast<const void*>(t.data<std::int32_t>());
}

/** memcmp equality: NaN payloads and signed zeros must survive too. */
void
ExpectBitIdentical(const Tensor& expected, const Tensor& actual,
                   const std::string& what)
{
    ASSERT_EQ(expected.dtype(), actual.dtype()) << what;
    ASSERT_TRUE(expected.shape() == actual.shape()) << what;
    EXPECT_EQ(0, std::memcmp(RawData(expected), RawData(actual),
                             expected.byte_size()))
        << what << ": bytes differ";
}

/** Options with every production pattern off. */
RewriteOptions
AllOff()
{
    RewriteOptions o;
    o.constant_folding = false;
    o.common_subexpression = false;
    o.transpose_folding = false;
    o.elementwise_fusion = false;
    o.inplace = false;
    return o;
}

class RewriteFrameworkTest : public ::testing::Test {
  protected:
    static void SetUpTestSuite() { ops::RegisterStandardOps(); }
};

// ---- constant folding ----------------------------------------------------

TEST_F(RewriteFrameworkTest, FoldsConstOnlySubgraph)
{
    Session session;
    auto b = session.MakeBuilder();
    // (2 + 3) * 4 is fully constant; x * that is not.
    const Output c = b.Mul(b.Add(b.ScalarConst(2.0f), b.ScalarConst(3.0f)),
                           b.ScalarConst(4.0f));
    const Output x = b.Placeholder("x");
    const Output y = b.Mul(x, c);

    auto opts = AllOff();
    opts.constant_folding = true;
    const RewriteResult result =
        Rewrite(session.graph(), {y}, {}, session.variables(), opts);

    // The two arithmetic nodes (Add, Mul) and their three Const
    // sources all fold; x * c survives.
    EXPECT_GE(result.fire_counts.at("constant_folding"), 5);
    const NodeId folded_mul = result.Resolve(c.node);
    ASSERT_TRUE(result.folded.count(folded_mul));
    EXPECT_FLOAT_EQ(result.folded.at(folded_mul)[0].scalar_value(), 20.0f);
    // The outer Mul still executes.
    EXPECT_FALSE(result.folded.count(result.Resolve(y.node)));
}

TEST_F(RewriteFrameworkTest, FoldedNodeCanBeFetched)
{
    Session session;
    session.SetGraphOptimization(true);
    auto b = session.MakeBuilder();
    const Output c = b.Add(b.ScalarConst(2.0f), b.ScalarConst(5.0f));
    const auto out = session.Run({}, {c});
    EXPECT_FLOAT_EQ(out[0].scalar_value(), 7.0f);
}

TEST_F(RewriteFrameworkTest, FoldingPreservesNanAndInfBits)
{
    // Folding runs the real registered kernels, so constant arms that
    // produce NaN/Inf at runtime produce the very same bits at fold
    // time (0/0, log(-1), 1/0, inf - inf).
    auto run = [](bool optimize) {
        Session session;
        session.SetGraphOptimization(optimize);
        auto b = session.MakeBuilder();
        const Output zero = b.ScalarConst(0.0f);
        const Output one = b.ScalarConst(1.0f);
        const Output nan1 = b.Div(zero, zero);                  // NaN
        const Output inf = b.Div(one, zero);                    // +inf
        const Output nan2 = b.Log(b.Neg(one));                  // NaN
        const Output nan3 = b.Sub(inf, inf);                    // NaN
        const Output y = b.Concat({b.Reshape(nan1, {1}), b.Reshape(inf, {1}),
                                   b.Reshape(nan2, {1}),
                                   b.Reshape(nan3, {1})},
                                  0);
        return session.Run({}, {y})[0].Clone();
    };
    const Tensor off = run(false);
    const Tensor on = run(true);
    ExpectBitIdentical(off, on, "nan/inf folding");
}

TEST_F(RewriteFrameworkTest, VariableReadsFoldOnlyWhenFrozen)
{
    // A training session must never fold through a Variable (the next
    // step updates it); a frozen serving plan may (the snapshot is
    // immutable), which is what variables_as_constants switches.
    Session session;
    auto b = session.MakeBuilder();
    std::string var;
    const Output w = b.Variable("w", Tensor::Scalar(4.0f), &var);
    const Output y = b.Mul(w, b.ScalarConst(2.0f));

    auto opts = AllOff();
    opts.constant_folding = true;
    const RewriteResult training =
        Rewrite(session.graph(), {y}, {}, session.variables(), opts);
    EXPECT_FALSE(training.folded.count(training.Resolve(y.node)));

    opts.variables_as_constants = true;
    const RewriteResult frozen =
        Rewrite(session.graph(), {y}, {}, session.variables(), opts);
    const NodeId folded = frozen.Resolve(y.node);
    ASSERT_TRUE(frozen.folded.count(folded));
    EXPECT_FLOAT_EQ(frozen.folded.at(folded)[0].scalar_value(), 8.0f);
}

// ---- common-subexpression elimination ------------------------------------

TEST_F(RewriteFrameworkTest, CseMergesIdenticalPureNodes)
{
    Session session;
    auto b = session.MakeBuilder();
    const Output x = b.Placeholder("x");
    // Two identical Tanh(x) nodes and a structurally different one.
    const Output t1 = b.Tanh(x);
    const Output t2 = b.Tanh(x);
    const Output s = b.Sigmoid(x);
    const Output y = b.Add(b.Add(t1, t2), s);

    auto opts = AllOff();
    opts.common_subexpression = true;
    const RewriteResult result =
        Rewrite(session.graph(), {y}, {}, session.variables(), opts);
    EXPECT_EQ(result.fire_counts.at("common_subexpression"), 1);
    EXPECT_TRUE(result.replacements.count(t2.node) ||
                result.replacements.count(t1.node));
    EXPECT_EQ(result.Resolve(t1.node), result.Resolve(t2.node));
}

TEST_F(RewriteFrameworkTest, CseRespectsAttrs)
{
    Session session;
    auto b = session.MakeBuilder();
    const Output x = b.Placeholder("x");
    // Same op type + inputs but different attrs must NOT merge.
    const Output p2 = b.Pow(x, 2.0f);
    const Output p3 = b.Pow(x, 3.0f);
    const Output y = b.Add(p2, p3);

    auto opts = AllOff();
    opts.common_subexpression = true;
    const RewriteResult result =
        Rewrite(session.graph(), {y}, {}, session.variables(), opts);
    EXPECT_EQ(result.fire_counts.at("common_subexpression"), 0);
}

TEST_F(RewriteFrameworkTest, CseDistinguishesNearbyFloatAttrs)
{
    // Float attrs are encoded into the CSE signature by bit pattern,
    // not by streaming with default (6 significant digit) precision —
    // the latter printed 1.0000001 and 1.0000002 identically and
    // merged ops that compute different values.
    auto merged = [](float e1, float e2) {
        Session session;
        auto b = session.MakeBuilder();
        const Output x = b.Placeholder("x");
        const Output y = b.Add(b.Pow(x, e1), b.Pow(x, e2));
        auto opts = AllOff();
        opts.common_subexpression = true;
        const RewriteResult result =
            Rewrite(session.graph(), {y}, {}, session.variables(), opts);
        return result.fire_counts.at("common_subexpression");
    };
    EXPECT_EQ(merged(1.0000001f, 1.0000002f), 0);
    // Bitwise-equal attrs still merge — the fix must not disable CSE.
    EXPECT_EQ(merged(1.0000001f, 1.0000001f), 1);
}

TEST_F(RewriteFrameworkTest, CseRespectsControlInputs)
{
    // Regression: the old pass hashed op/inputs/attrs but NOT control
    // inputs, so two nodes ordered differently against a side effect
    // could merge. Differing control inputs must block the merge;
    // identical ones must still allow it.
    Session session;
    auto b = session.MakeBuilder();
    const Output x = b.Placeholder("x");
    const Output s = b.Sigmoid(x);
    const Output t1 = b.Tanh(x);
    const Output t2 = b.Tanh(x);
    const Output t3 = b.Tanh(x);
    session.graph().AddControlEdge(s.node, t1.node);
    session.graph().AddControlEdge(s.node, t2.node);
    const Output y = b.Add(b.Add(t1, t2), t3);

    auto opts = AllOff();
    opts.common_subexpression = true;
    const RewriteResult result =
        Rewrite(session.graph(), {y}, {}, session.variables(), opts);
    // t1/t2 share the control input and merge; t3 (no control) must
    // stay separate.
    EXPECT_EQ(result.fire_counts.at("common_subexpression"), 1);
    EXPECT_EQ(result.Resolve(t1.node), result.Resolve(t2.node));
    EXPECT_NE(result.Resolve(t3.node), result.Resolve(t1.node));
}

TEST_F(RewriteFrameworkTest, StatefulOpsNeverMergeOrFold)
{
    Session session;
    auto b = session.MakeBuilder();
    // Two random ops with identical attrs must both execute.
    const Output r1 = b.RandomNormal({4}, 0.0f, 1.0f);
    const Output r2 = b.RandomNormal({4}, 0.0f, 1.0f);
    const Output y = b.Add(r1, r2);

    RewriteOptions opts;  // everything on.
    const RewriteResult result =
        Rewrite(session.graph(), {y}, {}, session.variables(), opts);
    EXPECT_EQ(result.fire_counts.at("common_subexpression"), 0);
    EXPECT_EQ(result.fire_counts.at("constant_folding"), 0);
    EXPECT_EQ(result.Resolve(r1.node), r1.node);
    EXPECT_EQ(result.Resolve(r2.node), r2.node);

    // And the session's two draws really differ.
    const auto out = session.Run({}, {r1, r2});
    EXPECT_NE(0, std::memcmp(out[0].data<float>(), out[1].data<float>(),
                             out[0].byte_size()));
}

TEST_F(RewriteFrameworkTest, FetchedIntermediatesSurviveRewrites)
{
    // Fetching both duplicates of a CSE pair must deliver both values
    // (the protected fetch resolves through the replacement map), and
    // a fetched node with no consumers must never be DCE'd.
    Session session;
    session.SetGraphOptimization(true);
    auto b = session.MakeBuilder();
    const Output x = b.Placeholder("x");
    const Output t1 = b.Tanh(x);
    const Output t2 = b.Tanh(x);
    const Output y = b.Add(t1, t2);

    FeedMap feeds;
    feeds[x.node] = RandomTensor(Shape{8}, 21);
    const auto out = session.Run(feeds, {t1, t2, y});
    ExpectBitIdentical(out[0], out[1], "merged fetch pair");
    for (std::int64_t i = 0; i < 8; ++i) {
        EXPECT_FLOAT_EQ(out[2].data<float>()[i],
                        2.0f * out[0].data<float>()[i]);
    }
}

// ---- transpose / reshape folding -----------------------------------------

TEST_F(RewriteFrameworkTest, TransposeFoldsIntoMatMulFlags)
{
    Session session;
    auto b = session.MakeBuilder();
    const Output a = b.Placeholder("a");
    const Output w = b.Placeholder("w");
    const Output y = b.MatMul(b.Transpose(a, {1, 0}), w);

    auto opts = AllOff();
    opts.transpose_folding = true;
    const RewriteResult result =
        Rewrite(session.graph(), {y}, {}, session.variables(), opts);
    EXPECT_GE(result.fire_counts.at("transpose_folding"), 1);
    const NodeId mm = result.Resolve(y.node);
    ASSERT_NE(mm, y.node);
    const graph::Node& node = session.graph().node(mm);
    EXPECT_EQ(node.op_type, "MatMul");
    EXPECT_TRUE(node.attr("transpose_a").AsBool());
    EXPECT_FALSE(node.attr("transpose_b").AsBool());
    // The explicit Transpose is gone from the plan.
    for (NodeId id : result.order) {
        EXPECT_NE(session.graph().node(id).op_type, "Transpose");
    }

    // Bit identity against the unoptimized session (the GEMM engine
    // treats transposition as a pure stride swap).
    auto run = [](bool optimize) {
        Session s2;
        s2.SetGraphOptimization(optimize);
        auto b2 = s2.MakeBuilder();
        const Output a2 = b2.Placeholder("a");
        const Output w2 = b2.Placeholder("w");
        const Output y2 = b2.MatMul(b2.Transpose(a2, {1, 0}), w2);
        FeedMap feeds;
        feeds[a2.node] = RandomTensor(Shape{7, 5}, 3);
        feeds[w2.node] = RandomTensor(Shape{7, 6}, 4);
        return s2.Run(feeds, {y2})[0].Clone();
    };
    ExpectBitIdentical(run(false), run(true), "transpose folding");
}

TEST_F(RewriteFrameworkTest, TransposeChainsAndReshapesSimplify)
{
    Session session;
    auto b = session.MakeBuilder();
    const Output x = b.Placeholder("x");
    // Transpose(Transpose(x)) with inverse perms is x; an identity
    // perm is x; Reshape(Reshape(x)) collapses to the outer shape.
    const Output tt = b.Transpose(b.Transpose(x, {1, 0}), {1, 0});
    const Output ti = b.Transpose(x, {0, 1});
    const Output rr = b.Reshape(b.Reshape(x, {4, 3}), {12});
    const Output y =
        b.Concat({b.Reshape(tt, {12}), b.Reshape(ti, {12}), rr}, 0);

    auto opts = AllOff();
    opts.transpose_folding = true;
    const RewriteResult result =
        Rewrite(session.graph(), {y}, {}, session.variables(), opts);
    EXPECT_GE(result.fire_counts.at("transpose_folding"), 3);
    // The double transpose and the identity perm now read x directly.
    EXPECT_EQ(result.Resolve(tt.node), x.node);
    EXPECT_EQ(result.Resolve(ti.node), x.node);

    auto run = [](bool optimize) {
        Session s2;
        s2.SetGraphOptimization(optimize);
        auto b2 = s2.MakeBuilder();
        const Output x2 = b2.Placeholder("x");
        const Output tt2 = b2.Transpose(b2.Transpose(x2, {1, 0}), {1, 0});
        const Output rr2 = b2.Reshape(b2.Reshape(x2, {4, 3}), {12});
        const Output y2 = b2.Concat({b2.Reshape(tt2, {12}), rr2}, 0);
        FeedMap feeds;
        feeds[x2.node] = RandomTensor(Shape{3, 4}, 8);
        return s2.Run(feeds, {y2})[0].Clone();
    };
    ExpectBitIdentical(run(false), run(true), "transpose/reshape chains");
}

// ---- elementwise fusion --------------------------------------------------

TEST_F(RewriteFrameworkTest, ElementwiseChainFusesToOneKernel)
{
    Session session;
    auto b = session.MakeBuilder();
    const Output x = b.Placeholder("x");
    const Output c = b.Placeholder("c");
    // Mul -> Add -> Tanh: one producer-consumer chain, one fused op.
    const Output y = b.Tanh(b.Add(b.Mul(x, c), c));

    auto opts = AllOff();
    opts.elementwise_fusion = true;
    const RewriteResult result =
        Rewrite(session.graph(), {y}, {}, session.variables(), opts);
    EXPECT_EQ(result.fire_counts.at("elementwise_fusion"), 1);
    const NodeId fused = result.Resolve(y.node);
    const graph::Node& node = session.graph().node(fused);
    EXPECT_EQ(node.op_type, "FusedElementwise");
    EXPECT_EQ(node.attr("ops").AsString(), "Mul,Add,Tanh");

    auto run = [](bool fuse) {
        Session s2;
        s2.SetGraphOptimization(true);
        auto o = AllOff();
        o.elementwise_fusion = fuse;
        s2.SetRewriteOptions(o);
        auto b2 = s2.MakeBuilder();
        const Output x2 = b2.Placeholder("x");
        const Output c2 = b2.Placeholder("c");
        const Output y2 = b2.Tanh(b2.Add(b2.Mul(x2, c2), c2));
        FeedMap feeds;
        feeds[x2.node] = RandomTensor(Shape{64}, 5);
        feeds[c2.node] = RandomTensor(Shape{64}, 6);
        return s2.Run(feeds, {y2})[0].Clone();
    };
    ExpectBitIdentical(run(false), run(true), "fused chain");
}

TEST_F(RewriteFrameworkTest, FusionSkipsMultiUseInteriors)
{
    Session session;
    auto b = session.MakeBuilder();
    const Output x = b.Placeholder("x");
    // t is read twice: it cannot be an interior of a fused chain.
    const Output t = b.Relu(x);
    const Output y = b.Add(b.Tanh(t), b.Sigmoid(t));

    auto opts = AllOff();
    opts.elementwise_fusion = true;
    const RewriteResult result =
        Rewrite(session.graph(), {y}, {}, session.variables(), opts);
    // t must still be produced exactly once and never absorbed.
    EXPECT_EQ(result.Resolve(t.node), t.node);
    bool t_in_order = false;
    for (NodeId id : result.order) {
        t_in_order |= (id == t.node);
    }
    EXPECT_TRUE(t_in_order);

    FeedMap feeds;
    feeds[x.node] = RandomTensor(Shape{16}, 13);
    session.SetGraphOptimization(true);
    const Tensor on = session.Run(feeds, {y})[0].Clone();
    session.SetGraphOptimization(false);
    const Tensor off = session.Run(feeds, {y})[0].Clone();
    ExpectBitIdentical(off, on, "multi-use interior");
}

// ---- in-place ------------------------------------------------------------

TEST_F(RewriteFrameworkTest, InPlaceMarksDyingInputsAndPreservesBits)
{
    Session session;
    auto b = session.MakeBuilder();
    const Output x = b.Placeholder("x");
    // Square's output dies at Relu: Relu may write into it. Square
    // itself reads the feed, which is pinned and must never be
    // aliased.
    const Output y = b.ReduceSum(b.Relu(b.Square(x)), {}, false);

    auto opts = AllOff();
    opts.inplace = true;
    const RewriteResult result =
        Rewrite(session.graph(), {y}, {}, session.variables(), opts);
    EXPECT_GE(result.fire_counts.at("inplace"), 1);

    // Bit identity AND feed integrity under the executor.
    Session s2;
    s2.SetGraphOptimization(true);
    auto o = AllOff();
    o.inplace = true;
    s2.SetRewriteOptions(o);
    auto b2 = s2.MakeBuilder();
    const Output x2 = b2.Placeholder("x");
    const Output y2 = b2.ReduceSum(b2.Relu(b2.Square(x2)), {}, false);
    const Tensor feed = RandomTensor(Shape{128}, 17);
    const Tensor saved = feed.Clone();
    FeedMap feeds;
    feeds[x2.node] = feed;
    const float on = s2.Run(feeds, {y2})[0].scalar_value();
    ExpectBitIdentical(saved, feed, "feed must not be written in place");

    s2.SetGraphOptimization(false);
    const float off = s2.Run(feeds, {y2})[0].scalar_value();
    EXPECT_EQ(off, on);
}

// ---- driver: termination, determinism, convergence -----------------------

/** Bait: endlessly replaces every Mul with a fresh equivalent clone. */
class CyclicBaitPattern : public Pattern {
  public:
    std::string name() const override { return "cyclic_bait"; }

    bool Apply(RewriteState& state, NodeId anchor) override
    {
        const graph::Node& node = state.graph().node(anchor);
        if (node.op_type != "Mul") {
            return false;
        }
        std::vector<Output> inputs;
        for (const Output& in : node.inputs) {
            inputs.push_back(state.ResolveEdge(in));
        }
        // The anchor-salted stem makes every round mint a new node, so
        // this pattern never reaches a fixed point on its own.
        const NodeId clone = state.AddOrReuseNode(
            "bait@" + std::to_string(anchor), "Mul", std::move(inputs), {});
        if (clone == anchor) {
            return false;
        }
        state.ReplaceNode(anchor, clone);
        return true;
    }
};

/** Converges: normalizes each Mul to one content-addressed node. */
class NormalizingPattern : public Pattern {
  public:
    std::string name() const override { return "normalize"; }

    bool Apply(RewriteState& state, NodeId anchor) override
    {
        const graph::Node& node = state.graph().node(anchor);
        if (node.op_type != "Mul") {
            return false;
        }
        std::vector<Output> inputs;
        for (const Output& in : node.inputs) {
            inputs.push_back(state.ResolveEdge(in));
        }
        // Fixed stem: the second visit finds the node it minted before
        // and declines to fire.
        const NodeId canon = state.AddOrReuseNode("normalize", "Mul",
                                                  std::move(inputs), {});
        if (canon == anchor) {
            return false;
        }
        state.ReplaceNode(anchor, canon);
        return true;
    }
};

TEST_F(RewriteFrameworkTest, FixedPointClipsOnCyclicBait)
{
    Session session;
    auto b = session.MakeBuilder();
    const Output x = b.Placeholder("x");
    const Output y = b.Mul(x, x);

    CyclicBaitPattern bait;
    auto opts = AllOff();
    opts.max_passes = 6;
    const RewriteResult result = RunPatterns(
        session.graph(), {y}, {}, session.variables(), {&bait}, opts);
    EXPECT_TRUE(result.clipped);
    EXPECT_EQ(result.passes, 6);
    EXPECT_GE(result.fire_counts.at("cyclic_bait"), 6);
    // The plan is still executable: the fetch resolves to a live Mul.
    const graph::Node& node = session.graph().node(result.Resolve(y.node));
    EXPECT_EQ(node.op_type, "Mul");
}

TEST_F(RewriteFrameworkTest, ConvergentCustomPatternStopsEarly)
{
    Session session;
    auto b = session.MakeBuilder();
    const Output x = b.Placeholder("x");
    const Output y = b.Add(b.Mul(x, x), x);

    NormalizingPattern normalize;
    auto opts = AllOff();
    const RewriteResult result = RunPatterns(
        session.graph(), {y}, {}, session.variables(), {&normalize}, opts);
    EXPECT_FALSE(result.clipped);
    EXPECT_LE(result.passes, 3);
    EXPECT_EQ(result.fire_counts.at("normalize"), 1);
}

TEST_F(RewriteFrameworkTest, RewriteIsDeterministicAndConvergent)
{
    auto build = [](Session& session) {
        auto b = session.MakeBuilder();
        const Output x = b.Placeholder("x");
        const Output c =
            b.Mul(b.Add(b.ScalarConst(1.0f), b.ScalarConst(2.0f)),
                  b.ScalarConst(3.0f));
        const Output t1 = b.Tanh(b.Mul(x, c));
        const Output t2 = b.Tanh(b.Mul(x, c));
        return b.ReduceSum(b.Add(t1, t2), {}, false);
    };

    Session s1, s2;
    const Output y1 = build(s1);
    const Output y2 = build(s2);
    RewriteOptions opts;  // everything on.
    const RewriteResult r1 =
        Rewrite(s1.graph(), {y1}, {}, s1.variables(), opts);
    const RewriteResult r2 =
        Rewrite(s2.graph(), {y2}, {}, s2.variables(), opts);

    // Identical graphs rewrite identically — compare by node name,
    // the only stable identity across graphs.
    ASSERT_EQ(r1.order.size(), r2.order.size());
    for (std::size_t i = 0; i < r1.order.size(); ++i) {
        EXPECT_EQ(s1.graph().node(r1.order[i]).name,
                  s2.graph().node(r2.order[i]).name)
            << "order position " << i;
    }
    EXPECT_EQ(r1.fire_counts, r2.fire_counts);

    // Re-rewriting the SAME graph converges: content-addressed node
    // reuse means the second pass adds no nodes and yields the same
    // plan.
    const auto nodes_after_first = s1.graph().num_nodes();
    const RewriteResult r1b =
        Rewrite(s1.graph(), {y1}, {}, s1.variables(), opts);
    EXPECT_EQ(s1.graph().num_nodes(), nodes_after_first);
    ASSERT_EQ(r1.order.size(), r1b.order.size());
    for (std::size_t i = 0; i < r1.order.size(); ++i) {
        EXPECT_EQ(r1.order[i], r1b.order[i]) << "order position " << i;
    }
}

// ---- executor integration ------------------------------------------------

TEST_F(RewriteFrameworkTest, OptimizedSessionMatchesUnoptimized)
{
    // Identical results through a graph with shared subexpressions
    // and constant arms.
    auto build_and_run = [](bool optimize) {
        Session session(7);
        session.SetGraphOptimization(optimize);
        auto b = session.MakeBuilder();
        const Output x = b.Placeholder("x");
        const Output scale =
            b.Add(b.ScalarConst(1.5f), b.ScalarConst(0.5f));  // const 2.
        const Output t1 = b.Tanh(b.Mul(x, scale));
        const Output t2 = b.Tanh(b.Mul(x, scale));  // duplicate.
        const Output y = b.ReduceSum(b.Add(t1, t2), {}, false);
        FeedMap feeds;
        feeds[x.node] = RandomTensor(Shape{6}, 9);
        return session.Run(feeds, {y})[0].scalar_value();
    };
    EXPECT_EQ(build_and_run(false), build_and_run(true));
}

TEST_F(RewriteFrameworkTest, OptimizedRunExecutesFewerOps)
{
    Session session(7);
    auto b = session.MakeBuilder();
    const Output x = b.Placeholder("x");
    const Output scale = b.Add(b.ScalarConst(1.5f), b.ScalarConst(0.5f));
    const Output t1 = b.Tanh(b.Mul(x, scale));
    const Output t2 = b.Tanh(b.Mul(x, scale));
    const Output y = b.ReduceSum(b.Add(t1, t2), {}, false);
    FeedMap feeds;
    feeds[x.node] = RandomTensor(Shape{6}, 9);

    session.Run(feeds, {y});
    const std::size_t baseline =
        session.tracer().steps().back().records.size();

    session.SetGraphOptimization(true);
    session.Run(feeds, {y});
    const std::size_t optimized =
        session.tracer().steps().back().records.size();
    EXPECT_LT(optimized, baseline);
}

TEST_F(RewriteFrameworkTest, TrainingStillWorksUnderOptimization)
{
    // The whole autodiff + in-place update pipeline must survive the
    // rewrites: stateful update ops are pinned, variable reads are
    // not folded, and CSE must not merge across them incorrectly.
    Session session(11);
    session.SetGraphOptimization(true);
    auto b = session.MakeBuilder();
    std::string var;
    const Output w = b.Variable("w", Tensor::Scalar(0.0f), &var);
    const Output loss = b.Square(b.Sub(w, b.ScalarConst(3.0f)));
    const auto grads = autodiff::BuildGradients(b, loss, {w});
    const auto update = b.ApplyGradientDescent(var, grads[0], 0.1f);
    for (int i = 0; i < 100; ++i) {
        session.Run({}, {}, {update});
    }
    EXPECT_NEAR(session.variables().Get("w").scalar_value(), 3.0f, 1e-3f);
}

TEST_F(RewriteFrameworkTest, PlannerComposesWithRewrites)
{
    // Fusion and in-place change which nodes exist and who owns
    // buffers; the memory planner's liveness must follow the rewritten
    // plan. All four combinations must agree bitwise.
    auto run = [](bool planner, bool rewrites) {
        Session session;
        session.SetMemoryPlanning(planner);
        session.SetGraphOptimization(rewrites);
        auto b = session.MakeBuilder();
        const Output x = b.Placeholder("x");
        const Output t1 = b.Tanh(b.Relu(b.Square(x)));
        const Output t2 = b.Tanh(b.Relu(b.Square(x)));  // CSE bait.
        const Output c = b.Mul(b.ScalarConst(2.0f), b.ScalarConst(3.0f));
        const Output y = b.ReduceSum(b.Add(b.Mul(t1, c), t2), {}, false);
        FeedMap feeds;
        feeds[x.node] = Tensor::Full(Shape{512}, 0.3f);
        return session.Run(feeds, {y})[0].Clone();
    };
    const Tensor base = run(false, false);
    ExpectBitIdentical(base, run(true, false), "planner only");
    ExpectBitIdentical(base, run(false, true), "rewrites only");
    ExpectBitIdentical(base, run(true, true), "planner + rewrites");
}

TEST_F(RewriteFrameworkTest, SharedAttentionProjectionsMergeInSeq2Seq)
{
    // A model-level payoff: the seq2seq decoder re-projects the same
    // encoder states at every step; CSE collapses the duplicates.
    fathom::workloads::RegisterAllWorkloads();
    auto w = fathom::workloads::WorkloadRegistry::Global().Create("seq2seq");
    fathom::workloads::WorkloadConfig config;
    config.seed = 2;
    config.graph_rewrites = false;
    w->Setup(config);

    w->RunInference(1);
    const std::size_t baseline =
        w->session().tracer().steps().back().records.size();
    w->session().SetGraphOptimization(true);
    w->RunInference(1);
    const std::size_t optimized =
        w->session().tracer().steps().back().records.size();
    EXPECT_LT(optimized, baseline);
    // And the executed-op reduction is substantial, not marginal.
    EXPECT_LT(static_cast<double>(optimized),
              0.95 * static_cast<double>(baseline));
}

TEST_F(RewriteFrameworkTest, RewriteTelemetryCountersFire)
{
    telemetry::MetricsRegistry::set_enabled(true);
    telemetry::MetricsRegistry::Global().ResetAll();

    Session session;
    session.SetGraphOptimization(true);
    auto b = session.MakeBuilder();
    const Output x = b.Placeholder("x");
    const Output c = b.Add(b.ScalarConst(1.0f), b.ScalarConst(2.0f));
    const Output t1 = b.Tanh(b.Mul(x, c));
    const Output t2 = b.Tanh(b.Mul(x, c));
    const Output y = b.ReduceSum(b.Relu(b.Add(t1, t2)), {}, false);
    // A MatMul-fed fused chain: the fused op's first input dies at it,
    // so the in-place marker fires.
    const Output m = b.Placeholder("m");
    const Output w = b.Placeholder("w");
    const Output z = b.ReduceSum(b.Tanh(b.Relu(b.MatMul(m, w))), {}, false);
    FeedMap feeds;
    feeds[x.node] = RandomTensor(Shape{32}, 2);
    feeds[m.node] = RandomTensor(Shape{4, 4}, 3);
    feeds[w.node] = RandomTensor(Shape{4, 4}, 4);
    session.Run(feeds, {y, z});

    auto& reg = telemetry::MetricsRegistry::Global();
    EXPECT_GE(reg.GetCounter("rewrite.runs").value(), 1u);
    EXPECT_GE(reg.GetCounter("rewrite.passes").value(), 1u);
    EXPECT_GE(reg.GetCounter("rewrite.fire.constant_folding").value(), 1u);
    EXPECT_GE(reg.GetCounter("rewrite.fire.common_subexpression").value(),
              1u);
    EXPECT_GE(reg.GetCounter("rewrite.fire.elementwise_fusion").value(), 1u);
    EXPECT_GE(reg.GetCounter("rewrite.fire.inplace").value(), 1u);
    EXPECT_GE(reg.GetCounter("rewrite.inplace_applied").value(), 1u);
    telemetry::MetricsRegistry::set_enabled(false);
}

// ---- the suite-wide bit-identity sweep -----------------------------------

/**
 * For every paper workload and every production pattern toggled
 * individually (plus all-on), two training steps and one frozen
 * serving request leave the loss, every variable, and the served
 * outputs bit-identical to the rewrites-off baseline.
 */
TEST_F(RewriteFrameworkTest, AllWorkloadsBitIdenticalPerPatternSweep)
{
    workloads::RegisterAllWorkloads();
    const auto names = workloads::WorkloadRegistry::Global().Names();
    ASSERT_EQ(names.size(), 8u);

    struct PatternConfig {
        std::string label;
        RewriteOptions opts;
        bool enabled = true;  ///< graph_rewrites on at all.
    };
    std::vector<PatternConfig> configs;
    configs.push_back({"baseline", AllOff(), /*enabled=*/false});
    auto one = [](const std::string& label,
                  void (*set)(RewriteOptions&)) {
        PatternConfig c{label, AllOff(), true};
        set(c.opts);
        return c;
    };
    configs.push_back(one("constant_folding", [](RewriteOptions& o) {
        o.constant_folding = true;
    }));
    configs.push_back(one("common_subexpression", [](RewriteOptions& o) {
        o.common_subexpression = true;
    }));
    configs.push_back(one("transpose_folding", [](RewriteOptions& o) {
        o.transpose_folding = true;
    }));
    configs.push_back(one("elementwise_fusion", [](RewriteOptions& o) {
        o.elementwise_fusion = true;
    }));
    configs.push_back(
        one("inplace", [](RewriteOptions& o) { o.inplace = true; }));
    configs.push_back({"all_on", RewriteOptions{}, true});

    for (const auto& name : names) {
        SCOPED_TRACE(name);

        auto run_config = [&](const PatternConfig& pc) {
            auto workload =
                workloads::WorkloadRegistry::Global().Create(name);
            workloads::WorkloadConfig config;
            config.seed = 5;
            config.batch_size = 4;
            config.graph_rewrites = pc.enabled;
            config.rewrites = pc.opts;
            workload->Setup(config);

            const float loss = workload->RunTraining(2).final_loss;
            std::map<std::string, Tensor> variables;
            for (const auto& var :
                 workload->session().variables().Names()) {
                variables[var] =
                    workload->session().variables().Get(var).Clone();
            }

            // Serving: freeze with the matching rewrite config and
            // serve one deterministic request.
            std::vector<Tensor> served;
            if (workload->has_serving_endpoint()) {
                serving::FrozenPlanOptions fopts;
                fopts.optimize = pc.enabled;
                fopts.rewrites = pc.opts;
                const auto plan = workload->FreezeServingPlan(fopts);
                const auto request = workload->SampleServingRequest();
                served = plan->ServeOne(request);
            }
            return std::make_tuple(loss, std::move(variables),
                                   std::move(served));
        };

        const auto [base_loss, base_vars, base_served] =
            run_config(configs[0]);
        for (std::size_t ci = 1; ci < configs.size(); ++ci) {
            SCOPED_TRACE(configs[ci].label);
            const auto [loss, vars, served] = run_config(configs[ci]);
            EXPECT_EQ(base_loss, loss);
            ASSERT_EQ(base_vars.size(), vars.size());
            for (const auto& [var_name, expected] : base_vars) {
                const auto it = vars.find(var_name);
                ASSERT_NE(it, vars.end()) << var_name;
                ExpectBitIdentical(expected, it->second, var_name);
            }
            ASSERT_EQ(base_served.size(), served.size());
            for (std::size_t f = 0; f < served.size(); ++f) {
                ExpectBitIdentical(base_served[f], served[f],
                                   "served output " + std::to_string(f));
            }
        }
    }
}

}  // namespace
}  // namespace fathom::runtime
