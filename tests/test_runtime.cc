/**
 * @file
 * Tests for the session executor, variables, optimizer state, the
 * tracer, and the analytical device model.
 */
#include <gtest/gtest.h>

#include "kernels/gemm.h"
#include "ops/register.h"
#include "runtime/device_model.h"
#include "runtime/session.h"
#include "test_util.h"

namespace fathom::runtime {
namespace {

using graph::Output;
using test::ExpectTensorNear;

class RuntimeTest : public ::testing::Test {
  protected:
    static void SetUpTestSuite() { ops::RegisterStandardOps(); }
};

TEST_F(RuntimeTest, FeedAndFetch)
{
    Session session;
    auto b = session.MakeBuilder();
    const Output x = b.Placeholder("x");
    const Output y = b.Add(x, b.ScalarConst(1.0f));

    FeedMap feeds;
    feeds[x.node] = Tensor::FromVector({1, 2, 3});
    const auto out = session.Run(feeds, {y});
    ExpectTensorNear(Tensor::FromVector({2, 3, 4}), out[0]);
}

TEST_F(RuntimeTest, MissingFeedThrows)
{
    Session session;
    auto b = session.MakeBuilder();
    const Output x = b.Placeholder("x");
    const Output y = b.Identity(x);
    EXPECT_THROW(session.Run({}, {y}), std::invalid_argument);
}

TEST_F(RuntimeTest, UnusedPlaceholderNeedsNoFeed)
{
    Session session;
    auto b = session.MakeBuilder();
    b.Placeholder("unused");
    const Output c = b.ScalarConst(5.0f);
    const auto out = session.Run({}, {c});
    EXPECT_FLOAT_EQ(out[0].scalar_value(), 5.0f);
}

TEST_F(RuntimeTest, RunNamedResolvesPlaceholders)
{
    Session session;
    auto b = session.MakeBuilder();
    const Output x = b.Placeholder("input");
    const Output y = b.Mul(x, x);
    const auto out = session.RunNamed(
        {{"input", Tensor::FromVector({3})}}, {y});
    EXPECT_FLOAT_EQ(out[0].data<float>()[0], 9.0f);
}

TEST_F(RuntimeTest, VariableReadAndAssign)
{
    Session session;
    auto b = session.MakeBuilder();
    std::string var_name;
    const Output v = b.Variable("counter", Tensor::Scalar(10.0f), &var_name);
    const Output next = b.Add(v, b.ScalarConst(1.0f));
    const auto assign = b.Assign(var_name, next);

    for (int i = 0; i < 3; ++i) {
        session.Run({}, {}, {assign});
    }
    const auto out = session.Run({}, {v});
    EXPECT_FLOAT_EQ(out[0].scalar_value(), 13.0f);
}

TEST_F(RuntimeTest, GradientDescentConvergesOnQuadratic)
{
    // minimize (w - 3)^2 by SGD; w -> 3.
    Session session;
    auto b = session.MakeBuilder();
    std::string var_name;
    const Output w = b.Variable("w", Tensor::Scalar(0.0f), &var_name);
    const Output diff = b.Sub(w, b.ScalarConst(3.0f));
    const Output loss = b.Square(diff);
    const auto grads = autodiff::BuildGradients(b, loss, {w});
    const auto update = b.ApplyGradientDescent(var_name, grads[0], 0.1f);

    for (int i = 0; i < 100; ++i) {
        session.Run({}, {}, {update});
    }
    EXPECT_NEAR(session.variables().Get("w").scalar_value(), 3.0f, 1e-3f);
}

TEST_F(RuntimeTest, MomentumCreatesSlot)
{
    Session session;
    auto b = session.MakeBuilder();
    std::string var_name;
    const Output w = b.Variable("w", Tensor::Scalar(0.0f), &var_name);
    const Output loss = b.Square(w);
    const auto grads = autodiff::BuildGradients(b, loss, {w});
    const auto update = b.ApplyMomentum(var_name, grads[0], 0.05f, 0.9f);
    session.Run({}, {}, {update});
    EXPECT_TRUE(session.variables().Contains("w/momentum"));
}

TEST_F(RuntimeTest, RmsPropAndAdamConverge)
{
    for (const std::string kind : {"rmsprop", "adam"}) {
        Session session;
        auto b = session.MakeBuilder();
        std::string var_name;
        const Output w =
            b.Variable("w", Tensor::FromVector({0.0f, 5.0f}), &var_name);
        const Output target = b.Const(Tensor::FromVector({2.0f, -1.0f}));
        const Output loss =
            b.ReduceSum(b.Square(b.Sub(w, target)), {}, false);
        const auto grads = autodiff::BuildGradients(b, loss, {w});
        const auto update =
            kind == "rmsprop"
                ? b.ApplyRmsProp(var_name, grads[0], 0.05f, 0.9f, 1e-6f)
                : b.ApplyAdam(var_name, grads[0], 0.1f);
        for (int i = 0; i < 300; ++i) {
            session.Run({}, {}, {update});
        }
        const Tensor& w_final = session.variables().Get("w");
        EXPECT_NEAR(w_final.data<float>()[0], 2.0f, 0.05f) << kind;
        EXPECT_NEAR(w_final.data<float>()[1], -1.0f, 0.05f) << kind;
    }
}

TEST_F(RuntimeTest, TracerRecordsPerOpTimings)
{
    Session session;
    auto b = session.MakeBuilder();
    const Output x = b.Placeholder("x");
    const Output y = b.MatMul(x, x);

    FeedMap feeds;
    feeds[x.node] = test::RandomTensor(Shape{16, 16});
    session.Run(feeds, {y});

    ASSERT_EQ(session.tracer().steps().size(), 1u);
    const auto& step = session.tracer().steps()[0];
    bool found_matmul = false;
    for (const auto& r : step.records) {
        if (r.op_type == "MatMul") {
            found_matmul = true;
            EXPECT_EQ(r.op_class, graph::OpClass::kMatrixOps);
            EXPECT_GT(r.cost.flops, 0.0);
            // One 2-D tile: a 16x16 product fits inside a single
            // kGemmMc x kGemmNc block of the GEMM engine.
            EXPECT_EQ(r.cost.parallel_work,
                      kernels::GemmTileCount(16, 16));
            EXPECT_GE(r.wall_seconds, 0.0);
        }
    }
    EXPECT_TRUE(found_matmul);
    EXPECT_GE(step.wall_seconds, step.OpSeconds());
}

TEST_F(RuntimeTest, TracerCanBeDisabled)
{
    Session session;
    session.tracer().set_enabled(false);
    auto b = session.MakeBuilder();
    const Output c = b.ScalarConst(1.0f);
    session.Run({}, {c});
    EXPECT_TRUE(session.tracer().steps().empty());
}

TEST_F(RuntimeTest, MultiOutputFetch)
{
    Session session;
    auto b = session.MakeBuilder();
    const Output x = b.Placeholder("x");
    const Output labels = b.Placeholder("labels");
    const auto xent = b.SoftmaxCrossEntropy(x, labels);

    FeedMap feeds;
    feeds[x.node] = test::RandomTensor(Shape{4, 3});
    feeds[labels.node] = Tensor::FromVectorInt(Shape{4}, {0, 1, 2, 0});
    const auto out = session.Run(feeds, {xent[0], xent[1]});
    EXPECT_EQ(out[0].num_elements(), 1);
    EXPECT_EQ(out[1].shape(), Shape({4, 3}));
    EXPECT_GT(out[0].scalar_value(), 0.0f);
}

TEST_F(RuntimeTest, PlanCacheSurvivesGraphGrowth)
{
    Session session;
    auto b = session.MakeBuilder();
    const Output x = b.Placeholder("x");
    const Output y = b.Add(x, x);
    FeedMap feeds;
    feeds[x.node] = Tensor::FromVector({1});
    session.Run(feeds, {y});
    // Extend the graph and run a new fetch through the same session.
    const Output z = b.Mul(y, y);
    const auto out = session.Run(feeds, {z});
    EXPECT_FLOAT_EQ(out[0].data<float>()[0], 4.0f);
}

TEST_F(RuntimeTest, FailingOpReportsNodeName)
{
    Session session;
    // Pin the kernel-time error path (the static verifier would reject
    // this plan before the kernel ever ran).
    session.SetVerification(false);
    auto b = session.MakeBuilder();
    const Output x = b.Placeholder("x");
    const Output y = b.MatMul(x, x);
    FeedMap feeds;
    feeds[x.node] = test::RandomTensor(Shape{2, 3});  // 2x3 * 2x3 invalid.
    try {
        session.Run(feeds, {y});
        FAIL() << "expected failure";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("matmul"), std::string::npos);
    }
}

TEST_F(RuntimeTest, RandomOpsDifferAcrossStepsButSeedIsStable)
{
    Session s1(/*seed=*/99);
    auto b1 = s1.MakeBuilder();
    const Output r1 = b1.RandomNormal({4}, 0.0f, 1.0f);
    const Tensor a = s1.Run({}, {r1})[0];
    const Tensor b = s1.Run({}, {r1})[0];
    // Stateful: consecutive runs differ.
    bool all_same = true;
    for (int i = 0; i < 4; ++i) {
        all_same &= (a.data<float>()[i] == b.data<float>()[i]);
    }
    EXPECT_FALSE(all_same);

    // Same seed reproduces the stream.
    Session s2(/*seed=*/99);
    auto b2 = s2.MakeBuilder();
    const Output r2 = b2.RandomNormal({4}, 0.0f, 1.0f);
    const Tensor a2 = s2.Run({}, {r2})[0];
    ExpectTensorNear(a, a2);
}

// ---- device model ---------------------------------------------------------

TEST(DeviceModelTest, MoreThreadsNeverSlower)
{
    graph::OpCost cost;
    cost.flops = 1e9;
    cost.bytes = 1e6;
    cost.parallel_work = 1 << 20;
    double prev = 1e30;
    for (int t : {1, 2, 4, 8}) {
        const double s = EstimateSeconds(cost, DeviceSpec::Cpu(t));
        EXPECT_LE(s, prev);
        prev = s;
    }
}

TEST(DeviceModelTest, AmdahlSpeedupBounds)
{
    graph::OpCost cost;
    cost.flops = 1e9;
    cost.bytes = 0;
    cost.parallel_work = 1 << 20;
    const double t1 = EstimateSeconds(cost, DeviceSpec::Cpu(1));
    const double t8 = EstimateSeconds(cost, DeviceSpec::Cpu(8));
    const double speedup = t1 / t8;
    EXPECT_GT(speedup, 4.0);  // large parallel op scales well...
    EXPECT_LE(speedup, 8.01);  // ...but never superlinearly.
}

TEST(DeviceModelTest, SkinnyOpsDoNotScale)
{
    // The memnet effect: an op too small to amortize thread
    // coordination stays serial regardless of the pool width.
    graph::OpCost cost;
    cost.flops = 5000;  // below min_work_per_thread * 2.
    cost.bytes = 0;
    cost.parallel_work = 5000;
    EXPECT_EQ(EffectiveThreads(cost, DeviceSpec::Cpu(8)), 1);
    const double t1 = EstimateSeconds(cost, DeviceSpec::Cpu(1));
    const double t8 = EstimateSeconds(cost, DeviceSpec::Cpu(8));
    EXPECT_DOUBLE_EQ(t1, t8);
}

TEST(DeviceModelTest, FewParallelUnitsCapThreads)
{
    // A 4-row matmul cannot use more than 4 threads however large it is.
    graph::OpCost cost;
    cost.flops = 1e8;
    cost.bytes = 0;
    cost.parallel_work = 4;
    EXPECT_EQ(EffectiveThreads(cost, DeviceSpec::Cpu(8)), 4);
}

TEST(DeviceModelTest, GpuWinsBigOpsLosesSmallOps)
{
    graph::OpCost big;
    big.flops = 1e10;
    big.bytes = 1e7;
    big.parallel_work = 1 << 22;
    EXPECT_LT(EstimateSeconds(big, DeviceSpec::Gpu()),
              EstimateSeconds(big, DeviceSpec::Cpu(1)));

    graph::OpCost tiny;
    tiny.flops = 1e3;
    tiny.bytes = 1e3;
    tiny.parallel_work = 8;
    // Launch overhead dominates: the GPU is slower on tiny ops.
    EXPECT_GT(EstimateSeconds(tiny, DeviceSpec::Gpu()),
              EstimateSeconds(tiny, DeviceSpec::Cpu(1)));
}

TEST(DeviceModelTest, MemoryBoundOpsHitBandwidthRoofline)
{
    graph::OpCost cost;
    cost.flops = 1.0;   // negligible compute.
    cost.bytes = 2e9;   // 2 GB moved.
    cost.parallel_work = 1 << 22;
    const DeviceSpec cpu8 = DeviceSpec::Cpu(8);
    const double t = EstimateSeconds(cost, cpu8);
    EXPECT_NEAR(t, cost.bytes / cpu8.bytes_per_sec, 1e-3);
}

}  // namespace
}  // namespace fathom::runtime
