/**
 * @file
 * Tests for the synthetic dataset generators and the MiniAtari
 * environment: shapes, value ranges, determinism, and — critically —
 * that the generated tasks are actually solvable (labels are
 * consistent with the data-generating process).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/mini_atari.h"
#include "data/synthetic_babi.h"
#include "data/synthetic_image.h"
#include "data/synthetic_mnist.h"
#include "data/synthetic_timit.h"
#include "data/synthetic_translation.h"

namespace fathom::data {
namespace {

TEST(SyntheticImageTest, ShapesAndLabels)
{
    SyntheticImageDataset dataset(16, 3, 5, 1);
    const auto batch = dataset.NextBatch(4);
    EXPECT_EQ(batch.images.shape(), Shape({4, 16, 16, 3}));
    EXPECT_EQ(batch.labels.shape(), Shape({4}));
    for (std::int64_t i = 0; i < 4; ++i) {
        const std::int32_t label = batch.labels.data<std::int32_t>()[i];
        EXPECT_GE(label, 0);
        EXPECT_LT(label, 5);
    }
}

TEST(SyntheticImageTest, DeterministicGivenSeed)
{
    SyntheticImageDataset a(16, 1, 4, 7);
    SyntheticImageDataset b(16, 1, 4, 7);
    const auto ba = a.NextBatch(2);
    const auto bb = b.NextBatch(2);
    for (std::int64_t i = 0; i < ba.images.num_elements(); ++i) {
        EXPECT_EQ(ba.images.data<float>()[i], bb.images.data<float>()[i]);
    }
}

TEST(SyntheticImageTest, ClassesAreStatisticallySeparable)
{
    // Mean image of class 0 differs from mean image of class 1 much
    // more than within-class noise: otherwise the classifier tests
    // upstream could not work.
    SyntheticImageDataset dataset(16, 1, 2, 9);
    std::vector<double> mean0(256, 0.0);
    std::vector<double> mean1(256, 0.0);
    int n0 = 0;
    int n1 = 0;
    for (int i = 0; i < 200; ++i) {
        const auto batch = dataset.NextBatch(1);
        const float* img = batch.images.data<float>();
        auto& mean = batch.labels.data<std::int32_t>()[0] == 0 ? mean0 : mean1;
        (batch.labels.data<std::int32_t>()[0] == 0 ? n0 : n1)++;
        for (int p = 0; p < 256; ++p) {
            mean[static_cast<std::size_t>(p)] += img[p];
        }
    }
    ASSERT_GT(n0, 10);
    ASSERT_GT(n1, 10);
    double diff = 0.0;
    for (int p = 0; p < 256; ++p) {
        diff += std::fabs(mean0[static_cast<std::size_t>(p)] / n0 -
                          mean1[static_cast<std::size_t>(p)] / n1);
    }
    EXPECT_GT(diff / 256.0, 0.01);
}

TEST(SyntheticMnistTest, RangeAndShape)
{
    SyntheticMnistDataset dataset(3);
    const auto batch = dataset.NextBatch(8);
    EXPECT_EQ(batch.images.shape(), Shape({8, 784}));
    double total = 0.0;
    for (std::int64_t i = 0; i < batch.images.num_elements(); ++i) {
        const float v = batch.images.data<float>()[i];
        EXPECT_GE(v, 0.0f);
        EXPECT_LE(v, 1.0f);
        total += v;
    }
    EXPECT_GT(total, 0.0);  // strokes were actually drawn.
}

TEST(SyntheticTimitTest, UtteranceStructure)
{
    SyntheticTimitDataset dataset(24, 10, 30, 5);
    for (int i = 0; i < 10; ++i) {
        const auto utt = dataset.Next();
        EXPECT_EQ(utt.frames.shape(), Shape({30, 24}));
        EXPECT_FALSE(utt.labels.empty());
        EXPECT_LE(static_cast<std::int64_t>(utt.labels.size()), 15);
        for (std::int32_t l : utt.labels) {
            EXPECT_GE(l, 1);   // 0 is reserved for the CTC blank.
            EXPECT_LE(l, 10);
        }
        // No adjacent repeats (segments were merged): the generator's
        // collapse-repeat convention.
        for (std::size_t j = 1; j < utt.labels.size(); ++j) {
            EXPECT_NE(utt.labels[j], utt.labels[j - 1]);
        }
    }
}

TEST(SyntheticTimitTest, FormantsAreClassConditioned)
{
    // The same phoneme must produce similar spectra across draws.
    SyntheticTimitDataset a(32, 5, 20, 11);
    // Frames belonging to the same label (taken from one utterance)
    // should correlate more within a phoneme than across phonemes,
    // which we approximate by checking energy concentration: each
    // frame has a dominant peak.
    const auto utt = a.Next();
    for (std::int64_t t = 0; t < 20; ++t) {
        float peak = 0.0f;
        float total = 0.0f;
        for (std::int64_t f = 0; f < 32; ++f) {
            const float v = std::fabs(utt.frames.data<float>()[t * 32 + f]);
            peak = std::max(peak, v);
            total += v;
        }
        EXPECT_GT(peak, total / 32.0f * 2.0f);  // clearly peaked.
    }
}

TEST(SyntheticTranslationTest, TargetIsPermutedReversal)
{
    SyntheticTranslationDataset dataset(64, 8, 13);
    const auto batch = dataset.NextBatch(4);
    EXPECT_EQ(batch.source.shape(), Shape({4, 8}));
    EXPECT_EQ(batch.target.shape(), Shape({4, 10}));

    for (std::int64_t i = 0; i < 4; ++i) {
        const std::int32_t* src = batch.source.data<std::int32_t>() + i * 8;
        const std::int32_t* tgt = batch.target.data<std::int32_t>() + i * 10;
        EXPECT_EQ(tgt[0], kGoToken);
        // Collect source words (non-pad).
        std::vector<std::int32_t> words;
        for (int w = 0; w < 8; ++w) {
            if (src[w] != kPadToken) {
                words.push_back(src[w]);
            }
        }
        // Verify target = GO + translate(reverse(words)) + EOS.
        for (std::size_t w = 0; w < words.size(); ++w) {
            EXPECT_EQ(tgt[1 + w],
                      dataset.Translate(words[words.size() - 1 - w]));
        }
        EXPECT_EQ(tgt[1 + words.size()], kEosToken);
    }
}

TEST(SyntheticTranslationTest, PermutationIsBijective)
{
    SyntheticTranslationDataset dataset(32, 6, 17);
    std::set<std::int32_t> images;
    for (std::int32_t t = kFirstWordToken; t < 32; ++t) {
        const std::int32_t out = dataset.Translate(t);
        EXPECT_GE(out, kFirstWordToken);
        EXPECT_LT(out, 32);
        images.insert(out);
    }
    EXPECT_EQ(images.size(),
              static_cast<std::size_t>(32 - kFirstWordToken));
    // Special tokens map to themselves.
    EXPECT_EQ(dataset.Translate(kPadToken), kPadToken);
    EXPECT_EQ(dataset.Translate(kGoToken), kGoToken);
    EXPECT_EQ(dataset.Translate(kEosToken), kEosToken);
}

TEST(SyntheticBabiTest, OneHopAnswersFollowFromStory)
{
    SyntheticBabiDataset dataset(10, 4, /*two_hop=*/false, 19);
    for (int trial = 0; trial < 50; ++trial) {
        const auto sample = dataset.NextSample();
        const std::int32_t* story = sample.story.data<std::int32_t>();
        const std::int32_t* q = sample.question.data<std::int32_t>();
        // Replay the story to find the queried actor's last location.
        std::int32_t expected = -1;
        for (std::int64_t s = 0; s < 10; ++s) {
            const std::int32_t* sent = story + s * 4;
            if (sent[0] == q[1] && sent[1] == 1 /* moved */) {
                expected = sent[2];
            }
        }
        ASSERT_NE(expected, -1) << "question about an actor who never moved";
        EXPECT_EQ(sample.answer, expected);
    }
}

TEST(SyntheticBabiTest, TwoHopAnswersRequireChaining)
{
    SyntheticBabiDataset dataset(16, 4, /*two_hop=*/true, 23);
    int object_questions = 0;
    for (int trial = 0; trial < 80; ++trial) {
        const auto sample = dataset.NextSample();
        const std::int32_t* story = sample.story.data<std::int32_t>();
        const std::int32_t* q = sample.question.data<std::int32_t>();
        // World replay.
        std::map<std::int32_t, std::int32_t> actor_loc;
        std::map<std::int32_t, std::int32_t> holder;
        for (std::int64_t s = 0; s < 16; ++s) {
            const std::int32_t* sent = story + s * 4;
            if (sent[1] == 1) {
                actor_loc[sent[0]] = sent[2];
            } else if (sent[1] == 2) {
                holder[sent[2]] = sent[0];
            }
        }
        if (holder.count(q[1])) {
            ++object_questions;
            EXPECT_EQ(sample.answer, actor_loc.at(holder.at(q[1])));
        } else {
            // One-hop fallback question about an actor.
            EXPECT_EQ(sample.answer, actor_loc.at(q[1]));
        }
    }
    EXPECT_GT(object_questions, 10);  // two-hop mode asks about objects.
}

TEST(SyntheticBabiTest, VocabularyAndTokenNames)
{
    SyntheticBabiDataset dataset(4, 3, false, 29);
    EXPECT_EQ(dataset.vocab(),
              4 + SyntheticBabiDataset::kNumActors +
                  SyntheticBabiDataset::kNumObjects +
                  SyntheticBabiDataset::kNumLocations);
    EXPECT_EQ(dataset.TokenName(0), "<pad>");
    // Every token in range has a non-<unk> name.
    for (std::int32_t t = 1; t < dataset.vocab(); ++t) {
        EXPECT_NE(dataset.TokenName(t), "<unk>") << "token " << t;
    }
    EXPECT_THROW(dataset.AnswerClass(0), std::invalid_argument);
}

TEST(SyntheticBabiTest, BatchShapes)
{
    SyntheticBabiDataset dataset(6, 5, false, 31);
    const auto batch = dataset.NextBatch(3);
    EXPECT_EQ(batch.stories.shape(), Shape({3, 6, 5}));
    EXPECT_EQ(batch.questions.shape(), Shape({3, 5}));
    EXPECT_EQ(batch.answers.shape(), Shape({3}));
    for (std::int64_t i = 0; i < 3; ++i) {
        EXPECT_GE(batch.answers.data<std::int32_t>()[i], 0);
        EXPECT_LT(batch.answers.data<std::int32_t>()[i],
                  SyntheticBabiDataset::kNumLocations);
    }
}

TEST(MiniAtariTest, FrameContentsAndGeometry)
{
    MiniAtari env(10, 2, 37);
    const Tensor frame = env.Reset();
    EXPECT_EQ(frame.shape(), Shape({20, 20}));
    // Exactly one ball (2x2 block of 1.0) and a paddle (0.8 cells).
    int ball_px = 0;
    int paddle_px = 0;
    for (std::int64_t i = 0; i < frame.num_elements(); ++i) {
        const float v = frame.data<float>()[i];
        ball_px += v == 1.0f;
        paddle_px += v == 0.8f;
    }
    EXPECT_EQ(ball_px, 4);          // scale 2 => 2x2 pixels.
    EXPECT_GE(paddle_px, 2 * 2 * 2);  // 3-wide paddle, possibly clipped.
}

TEST(MiniAtariTest, EpisodeTerminatesWithUnitReward)
{
    MiniAtari env(8, 1, 41);
    env.Reset();
    int steps = 0;
    for (;;) {
        const auto result = env.Step(MiniAtari::Action::kStay);
        ++steps;
        if (result.episode_done) {
            EXPECT_TRUE(result.reward == 1.0f || result.reward == -1.0f);
            break;
        }
        EXPECT_EQ(result.reward, 0.0f);
        ASSERT_LT(steps, 20) << "episode failed to terminate";
    }
    EXPECT_EQ(env.episodes(), 1);
}

TEST(MiniAtariTest, TrackingPolicyCatchesEverything)
{
    // An oracle that tracks the ball always catches it: the game is
    // winnable, so a learning agent has headroom.
    MiniAtari env(12, 1, 43);
    Tensor frame = env.Reset();
    auto column_of = [](const Tensor& f, float v) {
        for (std::int64_t i = 0; i < f.num_elements(); ++i) {
            if (std::fabs(f.data<float>()[i] - v) < 1e-4f) {
                return i % 12;
            }
        }
        return static_cast<std::int64_t>(-1);
    };
    float total = 0.0f;
    int done = 0;
    while (done < 50) {
        const std::int64_t ball = column_of(frame, 1.0f);
        const std::int64_t paddle = column_of(frame, 0.8f) + 1;  // center.
        MiniAtari::Action action = MiniAtari::Action::kStay;
        if (ball >= 0) {
            if (ball < paddle) {
                action = MiniAtari::Action::kLeft;
            } else if (ball > paddle) {
                action = MiniAtari::Action::kRight;
            }
        }
        const auto result = env.Step(action);
        if (result.episode_done) {
            total += result.reward;
            ++done;
            frame = env.CurrentFrame();
        } else {
            frame = result.frame;
        }
    }
    EXPECT_FLOAT_EQ(total / 50.0f, 1.0f);
}

TEST(MiniAtariTest, RejectsDegenerateConfig)
{
    EXPECT_THROW(MiniAtari(2, 1, 1), std::invalid_argument);
    EXPECT_THROW(MiniAtari(8, 0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace fathom::data
