/**
 * @file
 * Tests for checkpointing and the DOT / Chrome-trace exporters.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "analysis/export.h"
#include "autodiff/gradients.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "ops/register.h"
#include "runtime/checkpoint.h"
#include "runtime/session.h"
#include "test_util.h"

namespace fathom {
namespace {

class ExportTest : public ::testing::Test {
  protected:
    static void SetUpTestSuite() { ops::RegisterStandardOps(); }

    std::string
    TempPath(const std::string& name)
    {
        return (std::filesystem::temp_directory_path() / name).string();
    }
};

TEST_F(ExportTest, CheckpointRoundTrip)
{
    graph::VariableStore store;
    store.Set("w", test::RandomTensor(Shape{3, 4}, 1));
    store.Set("b", Tensor::Full(Shape{4}, 0.5f));
    store.Set("steps", Tensor::FromVectorInt(Shape{2}, {7, 9}));

    const std::string path = TempPath("fathom_ckpt_test.bin");
    runtime::SaveCheckpoint(store, path);

    graph::VariableStore restored;
    restored.Set("keepme", Tensor::Scalar(1.0f));
    runtime::RestoreCheckpoint(&restored, path);

    test::ExpectTensorNear(store.Get("w"), restored.Get("w"));
    test::ExpectTensorNear(store.Get("b"), restored.Get("b"));
    EXPECT_EQ(restored.Get("steps").data<std::int32_t>()[1], 9);
    EXPECT_TRUE(restored.Contains("keepme"));  // untouched.
    std::remove(path.c_str());
}

TEST_F(ExportTest, CheckpointRejectsGarbage)
{
    const std::string path = TempPath("fathom_ckpt_garbage.bin");
    analysis::WriteFile(path, "not a checkpoint at all");
    graph::VariableStore store;
    EXPECT_THROW(runtime::RestoreCheckpoint(&store, path),
                 std::runtime_error);
    EXPECT_THROW(runtime::RestoreCheckpoint(&store, "/nonexistent/x"),
                 std::runtime_error);
    std::remove(path.c_str());
}

TEST_F(ExportTest, CheckpointSaveIsAtomic)
{
    // Save writes a sibling .tmp and renames it into place, so a valid
    // checkpoint is never destroyed by a failed overwrite and no temp
    // file survives a successful one.
    const std::string path = TempPath("fathom_ckpt_atomic.bin");
    graph::VariableStore store;
    store.Set("w", Tensor::Full(Shape{8}, 1.0f));
    runtime::SaveCheckpoint(store, path);
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

    store.Get("w").Fill(2.0f);
    runtime::SaveCheckpoint(store, path);  // overwrite in place.
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

    graph::VariableStore restored;
    runtime::RestoreCheckpoint(&restored, path);
    EXPECT_EQ(restored.Get("w").data<float>()[0], 2.0f);
    std::remove(path.c_str());
}

/** Byte layout after the 12-byte header (magic + version). */
constexpr std::size_t kCountOffset = 12;
constexpr std::size_t kNameLenOffset = 16;

std::string
SlurpFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
PatchU32(std::string* bytes, std::size_t offset, std::uint32_t value)
{
    std::memcpy(bytes->data() + offset, &value, sizeof(value));
}

TEST_F(ExportTest, CheckpointRejectsCorruptHeaderFields)
{
    // Every size field a restore trusts is validated against the
    // actual file size before it drives an allocation; a flipped count
    // or rank must throw, not allocate gigabytes or crash.
    const std::string path = TempPath("fathom_ckpt_corrupt.bin");
    graph::VariableStore store;
    store.Set("w", Tensor::Full(Shape{4, 4}, 1.5f));
    runtime::SaveCheckpoint(store, path);
    const std::string good = SlurpFile(path);

    auto expect_rejected = [&](std::string bytes, const char* what) {
        analysis::WriteFile(path, bytes);
        graph::VariableStore scratch;
        EXPECT_THROW(runtime::RestoreCheckpoint(&scratch, path),
                     std::runtime_error)
            << what;
    };

    std::string huge_count = good;
    PatchU32(&huge_count, kCountOffset, 0x7fffffffu);
    expect_rejected(huge_count, "huge variable count");

    std::string huge_name = good;
    PatchU32(&huge_name, kNameLenOffset, 0x40000000u);
    expect_rejected(huge_name, "huge name length");

    // rank sits right after name_len(4) + name(1) + dtype(1).
    const std::size_t rank_offset = kNameLenOffset + 4 + 1 + 1;
    std::string huge_rank = good;
    PatchU32(&huge_rank, rank_offset, 1u << 20);
    expect_rejected(huge_rank, "huge rank");

    std::string huge_dim = good;
    const std::int64_t dim = 1ll << 40;
    std::memcpy(huge_dim.data() + rank_offset + 4, &dim, sizeof(dim));
    expect_rejected(huge_dim, "overflowing dimension");

    expect_rejected(good.substr(0, good.size() / 2), "truncated data");
    expect_rejected(good.substr(0, kCountOffset + 2), "truncated header");

    // The pristine bytes still restore: the corruptions above were
    // what tripped the validators, not the layout itself.
    analysis::WriteFile(path, good);
    graph::VariableStore restored;
    runtime::RestoreCheckpoint(&restored, path);
    EXPECT_EQ(restored.Get("w").data<float>()[5], 1.5f);
    std::remove(path.c_str());
}

TEST_F(ExportTest, CheckpointResumesTraining)
{
    // Train, save, build a fresh session, restore, verify the loss
    // continues from the trained level (the adoption-critical flow).
    const std::string path = TempPath("fathom_ckpt_resume.bin");
    float trained_loss = 0.0f;
    {
        runtime::Session session(5);
        auto b = session.MakeBuilder();
        nn::Trainables params;
        Rng rng(6);
        const graph::Output x = b.Placeholder("x");
        const graph::Output y = nn::Dense(b, &params, rng, "fc", x, 2, 1);
        const graph::Output target = b.Placeholder("t");
        const graph::Output loss =
            b.ReduceMean(b.Square(b.Sub(y, target)), {}, false);
        const auto train = nn::Minimize(b, loss, params,
                                        nn::OptimizerConfig::Sgd(0.1f));
        runtime::FeedMap feeds;
        feeds[x.node] = Tensor::FromVector(Shape{4, 2},
                                           {1, 0, 0, 1, 1, 1, 0, 0});
        feeds[target.node] = Tensor::FromVector(Shape{4, 1}, {2, 3, 5, 0});
        for (int i = 0; i < 200; ++i) {
            trained_loss =
                session.Run(feeds, {loss}, {train})[0].scalar_value();
        }
        runtime::SaveCheckpoint(session.variables(), path);
    }
    {
        runtime::Session session(99);  // different seed, fresh weights.
        auto b = session.MakeBuilder();
        nn::Trainables params;
        Rng rng(77);
        const graph::Output x = b.Placeholder("x");
        const graph::Output y = nn::Dense(b, &params, rng, "fc", x, 2, 1);
        const graph::Output target = b.Placeholder("t");
        const graph::Output loss =
            b.ReduceMean(b.Square(b.Sub(y, target)), {}, false);
        runtime::RestoreCheckpoint(&session.variables(), path);

        runtime::FeedMap feeds;
        feeds[x.node] = Tensor::FromVector(Shape{4, 2},
                                           {1, 0, 0, 1, 1, 1, 0, 0});
        feeds[target.node] = Tensor::FromVector(Shape{4, 1}, {2, 3, 5, 0});
        const float resumed = session.Run(feeds, {loss})[0].scalar_value();
        EXPECT_NEAR(resumed, trained_loss, 1e-4f);
    }
    std::remove(path.c_str());
}

TEST_F(ExportTest, DotContainsNodesAndEdges)
{
    runtime::Session session;
    auto b = session.MakeBuilder();
    const graph::Output x = b.Placeholder("input");
    const graph::Output y = b.Relu(b.Add(x, b.ScalarConst(1.0f)));
    (void)y;

    const std::string dot = analysis::GraphToDot(session.graph());
    EXPECT_NE(dot.find("digraph fathom"), std::string::npos);
    EXPECT_NE(dot.find("input"), std::string::npos);
    EXPECT_NE(dot.find("Relu"), std::string::npos);
    EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST_F(ExportTest, DotTruncatesLargeGraphs)
{
    runtime::Session session;
    auto b = session.MakeBuilder();
    graph::Output x = b.ScalarConst(1.0f);
    for (int i = 0; i < 50; ++i) {
        x = b.Add(x, x);
    }
    const std::string dot = analysis::GraphToDot(session.graph(), 10);
    EXPECT_NE(dot.find("more nodes"), std::string::npos);
}

TEST_F(ExportTest, ChromeTraceIsWellFormedJson)
{
    runtime::Session session;
    auto b = session.MakeBuilder();
    const graph::Output x = b.Placeholder("x");
    const graph::Output y = b.MatMul(x, x);
    runtime::FeedMap feeds;
    feeds[x.node] = test::RandomTensor(Shape{8, 8});
    session.Run(feeds, {y});
    session.Run(feeds, {y});

    const std::string json = analysis::TraceToChromeJson(session.tracer());
    EXPECT_EQ(json.front(), '[');
    EXPECT_NE(json.find("\"name\": \"MatMul\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\": \"MatrixOps\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    // Lane metadata: the step track plus the worker-0 op lane (the
    // sequential executor runs everything on lane 0 -> tid 1).
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"steps\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"worker-0\""), std::string::npos);
    EXPECT_NE(json.find("\"tid\": 0"), std::string::npos);
    EXPECT_NE(json.find("\"tid\": 1"), std::string::npos);
    // Two steps -> two step-span events on the step track.
    EXPECT_NE(json.find("\"name\": \"step 0\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"step 1\""), std::string::npos);
    // Balanced braces (cheap well-formedness proxy).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

}  // namespace
}  // namespace fathom
