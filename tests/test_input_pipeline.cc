/**
 * @file
 * The input-pipeline battery: BoundedQueue contract tests, the
 * concurrent producer/consumer hammers the TSan CI job targets, the
 * InputPipeline ordering/determinism tests, and the headline
 * guarantee — for every paper workload, training under any (prefetch
 * depth, producer count) configuration leaves losses and every
 * variable bit-identical to the inline depth-0 baseline.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "data/pipeline/bounded_queue.h"
#include "data/pipeline/input_pipeline.h"
#include "ops/register.h"
#include "runtime/tracer.h"
#include "telemetry/metrics.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"
#include "workloads/workload.h"

namespace fathom::data {
namespace {

// ---------------------------------------------------------------------------
// BoundedQueue contract.
// ---------------------------------------------------------------------------

TEST(BoundedQueueTest, ZeroCapacityThrows)
{
    EXPECT_THROW(BoundedQueue<int>(0), std::invalid_argument);
}

TEST(BoundedQueueTest, PopReturnsItemsInFifoOrder)
{
    BoundedQueue<int> queue(8);
    for (int i = 0; i < 5; ++i) {
        EXPECT_TRUE(queue.Push(i));
    }
    EXPECT_EQ(queue.size(), 5u);
    for (int i = 0; i < 5; ++i) {
        auto item = queue.Pop();
        ASSERT_TRUE(item.has_value());
        EXPECT_EQ(*item, i);
    }
    EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedQueueTest, TryPushReportsFullAndStoppedDistinctly)
{
    BoundedQueue<int> queue(2);
    EXPECT_EQ(queue.TryPush(1), QueuePushResult::kOk);
    EXPECT_EQ(queue.TryPush(2), QueuePushResult::kOk);
    EXPECT_EQ(queue.TryPush(3), QueuePushResult::kFull);
    queue.Stop();
    EXPECT_EQ(queue.TryPush(4), QueuePushResult::kStopped);
    // Accepted items survive the stop (drain semantics).
    EXPECT_EQ(*queue.Pop(), 1);
    EXPECT_EQ(*queue.Pop(), 2);
    EXPECT_FALSE(queue.Pop().has_value());
}

TEST(BoundedQueueTest, PushBlocksAtCapacityUntilAPopMakesRoom)
{
    BoundedQueue<int> queue(1);
    EXPECT_TRUE(queue.Push(1));
    std::atomic<bool> second_pushed{false};
    std::thread producer([&] {
        EXPECT_TRUE(queue.Push(2));  // blocks until the pop below.
        second_pushed = true;
    });
    // The producer must be parked on the full queue, not completed.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(second_pushed.load());
    EXPECT_EQ(*queue.Pop(), 1);
    producer.join();
    EXPECT_TRUE(second_pushed.load());
    EXPECT_EQ(*queue.Pop(), 2);
}

TEST(BoundedQueueTest, StopWakesABlockedPushWithoutEnqueueing)
{
    BoundedQueue<int> queue(1);
    EXPECT_TRUE(queue.Push(1));
    std::atomic<bool> push_result{true};
    std::thread producer([&] { push_result = queue.Push(2); });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    queue.Stop();
    producer.join();
    EXPECT_FALSE(push_result.load());
    EXPECT_EQ(*queue.Pop(), 1);  // only the accepted item remains.
    EXPECT_FALSE(queue.Pop().has_value());
}

TEST(BoundedQueueTest, StopWakesABlockedPop)
{
    BoundedQueue<int> queue(4);
    std::thread consumer([&] { EXPECT_FALSE(queue.Pop().has_value()); });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    queue.Stop();
    consumer.join();
}

TEST(BoundedQueueTest, PopBatchReturnsImmediatelyAtMaxItems)
{
    BoundedQueue<int> queue(8);
    for (int i = 0; i < 4; ++i) {
        EXPECT_TRUE(queue.Push(i));
    }
    std::vector<int> batch;
    // A generous delay that must NOT be waited out: the batch is full.
    EXPECT_TRUE(queue.PopBatch(4, std::chrono::microseconds(10'000'000),
                               &batch));
    EXPECT_EQ(batch, (std::vector<int>{0, 1, 2, 3}));
}

TEST(BoundedQueueTest, PopBatchLaunchesAPartialBatchOnDeadline)
{
    BoundedQueue<int> queue(8);
    EXPECT_TRUE(queue.Push(7));
    std::vector<int> batch;
    const auto start = std::chrono::steady_clock::now();
    EXPECT_TRUE(queue.PopBatch(4, std::chrono::microseconds(2000), &batch));
    const auto waited = std::chrono::steady_clock::now() - start;
    EXPECT_EQ(batch, std::vector<int>{7});
    // The deadline must actually be honored (oldest item waited it out).
    EXPECT_GE(waited, std::chrono::microseconds(1500));
}

TEST(BoundedQueueTest, PopBatchDrainsBatchByBatchAfterStop)
{
    BoundedQueue<int> queue(8);
    for (int i = 0; i < 5; ++i) {
        EXPECT_TRUE(queue.Push(i));
    }
    queue.Stop();
    std::vector<int> batch;
    std::vector<int> drained;
    // Post-stop, batches form immediately (no deadline waits) until
    // the queue reports stopped-and-empty.
    while (queue.PopBatch(2, std::chrono::microseconds(10'000'000),
                          &batch)) {
        EXPECT_LE(batch.size(), 2u);
        drained.insert(drained.end(), batch.begin(), batch.end());
    }
    EXPECT_EQ(drained, (std::vector<int>{0, 1, 2, 3, 4}));
}

// ---------------------------------------------------------------------------
// Concurrent hammers (the `pipeline` + `concurrency` TSan targets).
// ---------------------------------------------------------------------------

/**
 * Four producers race Push against three consumers racing Pop through
 * a deliberately tiny queue (maximum backpressure), then Stop drains.
 * Every accepted item must be consumed exactly once.
 */
TEST(BoundedQueueConcurrentTest, MultiProducerMultiConsumerHammerBattery)
{
    constexpr int kProducers = 4;
    constexpr int kConsumers = 3;
    constexpr int kPerProducer = 500;
    BoundedQueue<int> queue(2);

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i) {
                ASSERT_TRUE(queue.Push(p * kPerProducer + i));
            }
        });
    }

    std::mutex seen_mu;
    std::multiset<int> seen;
    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; ++c) {
        consumers.emplace_back([&] {
            std::multiset<int> local;
            while (auto item = queue.Pop()) {
                local.insert(*item);
            }
            std::lock_guard<std::mutex> lock(seen_mu);
            seen.insert(local.begin(), local.end());
        });
    }

    for (auto& t : producers) {
        t.join();
    }
    queue.Stop();  // consumers drain the tail, then exit.
    for (auto& t : consumers) {
        t.join();
    }

    ASSERT_EQ(seen.size(),
              static_cast<std::size_t>(kProducers * kPerProducer));
    for (int v = 0; v < kProducers * kPerProducer; ++v) {
        EXPECT_EQ(seen.count(v), 1u) << "item " << v;
    }
}

/**
 * Stop() fired mid-flight while producers are pushing and batch
 * consumers are popping: every item a Push accepted must still come
 * out exactly once, and nothing can deadlock.
 */
TEST(BoundedQueueConcurrentTest, StopMidFlightDrainHammerBattery)
{
    constexpr int kProducers = 3;
    constexpr int kConsumers = 2;
    BoundedQueue<int> queue(4);

    std::atomic<int> accepted{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (int i = 0; i < 10000; ++i) {
                if (!queue.Push(p * 10000 + i)) {
                    return;  // stopped.
                }
                accepted.fetch_add(1);
            }
        });
    }

    std::atomic<int> consumed{0};
    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; ++c) {
        consumers.emplace_back([&] {
            std::vector<int> batch;
            while (queue.PopBatch(3, std::chrono::microseconds(100),
                                  &batch)) {
                consumed.fetch_add(static_cast<int>(batch.size()));
            }
        });
    }

    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.Stop();
    for (auto& t : producers) {
        t.join();
    }
    for (auto& t : consumers) {
        t.join();
    }
    EXPECT_EQ(consumed.load(), accepted.load());
    EXPECT_EQ(queue.size(), 0u);
}

// ---------------------------------------------------------------------------
// InputPipeline: ordering, determinism, lifecycle, telemetry.
// ---------------------------------------------------------------------------

/** A pure batch function: one tensor whose bytes derive from t. */
FeedBatch
PureBatch(std::int64_t step)
{
    Rng rng(MixSeed(/*seed=*/99, static_cast<std::uint64_t>(step)));
    Tensor t(DType::kFloat32, Shape{16});
    rng.FillNormal(&t, 0.0f, 1.0f);
    Tensor tag(DType::kFloat32, Shape{1});
    tag.data<float>()[0] = static_cast<float>(step);
    return {{graph::NodeId{0}, t}, {graph::NodeId{1}, tag}};
}

TEST(InputPipelineTest, InlineModeCallsTheFunctionInOrder)
{
    std::vector<std::int64_t> calls;
    InputPipelineOptions options;
    options.prefetch_depth = 0;
    InputPipeline pipeline(
        [&](std::int64_t t) {
            calls.push_back(t);  // stateful: legal only inline.
            return PureBatch(t);
        },
        options);
    ASSERT_TRUE(pipeline.inline_mode());
    for (int i = 0; i < 4; ++i) {
        pipeline.Next();
    }
    EXPECT_EQ(calls, (std::vector<std::int64_t>{0, 1, 2, 3}));
    EXPECT_EQ(pipeline.next_step(), 4);
}

TEST(InputPipelineTest, DeliversStepsInOrderAcrossProducerCounts)
{
    for (const int depth : {1, 4}) {
        for (const int producers : {1, 2, 4}) {
            SCOPED_TRACE("depth=" + std::to_string(depth) +
                         " producers=" + std::to_string(producers));
            InputPipelineOptions options;
            options.prefetch_depth = depth;
            options.producer_threads = producers;
            InputPipeline pipeline(PureBatch, options);
            ASSERT_FALSE(pipeline.inline_mode());
            for (std::int64_t t = 0; t < 24; ++t) {
                const FeedBatch batch = pipeline.Next();
                ASSERT_EQ(batch.count(graph::NodeId{1}), 1u);
                EXPECT_EQ(batch.at(graph::NodeId{1}).data<float>()[0],
                          static_cast<float>(t));
            }
        }
    }
}

TEST(InputPipelineTest, StartStepOffsetsTheStream)
{
    InputPipelineOptions options;
    options.prefetch_depth = 2;
    options.start_step = 100;
    InputPipeline pipeline(PureBatch, options);
    EXPECT_EQ(pipeline.next_step(), 100);
    const FeedBatch batch = pipeline.Next();
    EXPECT_EQ(batch.at(graph::NodeId{1}).data<float>()[0], 100.0f);
    EXPECT_EQ(pipeline.next_step(), 101);
}

TEST(InputPipelineTest, EveryConfigurationIsBitIdenticalToInline)
{
    constexpr int kSteps = 12;
    // Inline reference stream.
    std::vector<FeedBatch> reference;
    {
        InputPipelineOptions options;
        options.prefetch_depth = 0;
        InputPipeline pipeline(PureBatch, options);
        for (int t = 0; t < kSteps; ++t) {
            reference.push_back(pipeline.Next());
        }
    }
    for (const int depth : {1, 4}) {
        for (const int producers : {1, 2, 4}) {
            SCOPED_TRACE("depth=" + std::to_string(depth) +
                         " producers=" + std::to_string(producers));
            InputPipelineOptions options;
            options.prefetch_depth = depth;
            options.producer_threads = producers;
            InputPipeline pipeline(PureBatch, options);
            for (int t = 0; t < kSteps; ++t) {
                const FeedBatch batch = pipeline.Next();
                ASSERT_EQ(batch.size(), reference[t].size());
                for (const auto& [node, expected] : reference[t]) {
                    const auto it = batch.find(node);
                    ASSERT_NE(it, batch.end());
                    ASSERT_EQ(it->second.byte_size(),
                              expected.byte_size());
                    EXPECT_EQ(0, std::memcmp(it->second.data<float>(),
                                             expected.data<float>(),
                                             expected.byte_size()))
                        << "step " << t << " node " << node;
                }
            }
        }
    }
}

TEST(InputPipelineTest, NextThrowsAfterStopOnceDrained)
{
    InputPipelineOptions options;
    options.prefetch_depth = 2;
    options.producer_threads = 2;
    InputPipeline pipeline(PureBatch, options);
    pipeline.Next();
    pipeline.Stop();
    // A few already-materialized batches may drain first; the stash is
    // bounded by depth + producers, so the throw must come quickly.
    bool threw = false;
    for (int i = 0; i < 10 && !threw; ++i) {
        try {
            pipeline.Next();
        } catch (const std::logic_error&) {
            threw = true;
        }
    }
    EXPECT_TRUE(threw);
}

TEST(InputPipelineTest, RecordsPipelineMetrics)
{
    telemetry::MetricsRegistry::Global().ResetAll();
    telemetry::MetricsRegistry::set_enabled(true);
    {
        InputPipelineOptions options;
        options.prefetch_depth = 2;
        InputPipeline pipeline(PureBatch, options);
        for (int t = 0; t < 6; ++t) {
            pipeline.Next();
        }
    }
    const auto snapshot = telemetry::MetricsRegistry::Global().Snapshot();
    telemetry::MetricsRegistry::set_enabled(false);
    EXPECT_GE(snapshot.CounterValue("pipeline.batches_produced"), 6u);
    EXPECT_EQ(snapshot.HistogramValue("pipeline.stall_us").count, 6u);
    EXPECT_GE(snapshot.HistogramValue("pipeline.produce_us").count, 6u);
    EXPECT_EQ(snapshot.HistogramValue("pipeline.queue_depth").count, 6u);
}

TEST(InputPipelineTest, InlineModeReportsProduceTimeAsStall)
{
    telemetry::MetricsRegistry::Global().ResetAll();
    telemetry::MetricsRegistry::set_enabled(true);
    {
        InputPipelineOptions options;
        options.prefetch_depth = 0;
        InputPipeline pipeline(PureBatch, options);
        for (int t = 0; t < 4; ++t) {
            pipeline.Next();
        }
    }
    const auto snapshot = telemetry::MetricsRegistry::Global().Snapshot();
    telemetry::MetricsRegistry::set_enabled(false);
    const auto produce = snapshot.HistogramValue("pipeline.produce_us");
    const auto stall = snapshot.HistogramValue("pipeline.stall_us");
    EXPECT_EQ(produce.count, 4u);
    EXPECT_EQ(stall.count, 4u);
    // No overlap inline: every produced microsecond is a stalled one.
    EXPECT_EQ(produce.sum, stall.sum);
}

TEST(InputPipelineTest, RegistersNamedProducerLanesOnTheTracer)
{
    runtime::Tracer tracer;
    InputPipelineOptions options;
    options.prefetch_depth = 2;
    options.producer_threads = 2;
    options.tracer = &tracer;
    options.name = "unit/train";
    InputPipeline pipeline(PureBatch, options);
    for (int t = 0; t < 4; ++t) {
        pipeline.Next();
    }
    pipeline.Stop();
    const auto& lanes = tracer.aux_lanes();
    ASSERT_EQ(lanes.size(), 2u);
    EXPECT_EQ(lanes[0], "unit/train-producer-0");
    EXPECT_EQ(lanes[1], "unit/train-producer-1");
    // Producers recorded one span per materialized batch.
    EXPECT_GE(tracer.aux_spans().size(), 4u);
    for (const auto& span : tracer.aux_spans()) {
        EXPECT_GE(span.lane, 0);
        EXPECT_LT(span.lane, 2);
        EXPECT_GE(span.dur_seconds, 0.0);
    }
}

// ---------------------------------------------------------------------------
// The headline guarantee across the paper suite.
// ---------------------------------------------------------------------------

const void*
RawData(const Tensor& t)
{
    return t.dtype() == DType::kFloat32
               ? static_cast<const void*>(t.data<float>())
               : static_cast<const void*>(t.data<std::int32_t>());
}

void
ExpectBitIdentical(const Tensor& expected, const Tensor& actual,
                   const std::string& what)
{
    ASSERT_EQ(expected.dtype(), actual.dtype()) << what;
    ASSERT_TRUE(expected.shape() == actual.shape()) << what;
    EXPECT_EQ(0, std::memcmp(RawData(expected), RawData(actual),
                             expected.byte_size()))
        << what << ": bytes differ from the inline baseline";
}

/**
 * For every paper workload, two training steps and one inference step
 * under prefetch depth {1, 4} x producer threads {1, 2, 4} leave the
 * losses and every variable bit-identical to the inline depth-0
 * baseline with the same seed — the pipeline's determinism contract,
 * stated end to end.
 */
TEST(InputPipelineWorkloadTest, AllWorkloadsBitIdenticalBattery)
{
    ops::RegisterStandardOps();
    workloads::RegisterAllWorkloads();
    const auto names = workloads::WorkloadRegistry::Global().Names();
    ASSERT_EQ(names.size(), 8u);

    for (const auto& name : names) {
        SCOPED_TRACE(name);

        auto run_once = [&](int depth, int producers) {
            auto workload =
                workloads::WorkloadRegistry::Global().Create(name);
            workloads::WorkloadConfig config;
            config.seed = 11;
            config.tracing = false;
            config.prefetch_depth = depth;
            config.producer_threads = producers;
            workload->Setup(config);
            const auto train = workload->RunTraining(2);
            workload->RunInference(1);
            const float accuracy = workload->has_accuracy_metric()
                                       ? workload->EvaluateAccuracy(1)
                                       : 0.0f;
            std::map<std::string, Tensor> variables;
            for (const auto& var :
                 workload->session().variables().Names()) {
                variables[var] =
                    workload->session().variables().Get(var).Clone();
            }
            return std::make_tuple(train.final_loss, train.mean_loss,
                                   accuracy, std::move(variables));
        };

        const auto [base_final, base_mean, base_acc, base_vars] =
            run_once(0, 1);
        for (const int depth : {1, 4}) {
            for (const int producers : {1, 2, 4}) {
                SCOPED_TRACE("depth=" + std::to_string(depth) +
                             " producers=" + std::to_string(producers));
                const auto [final_loss, mean_loss, accuracy, vars] =
                    run_once(depth, producers);
                // Exact equality: same bytes in, same arithmetic out.
                EXPECT_EQ(base_final, final_loss);
                EXPECT_EQ(base_mean, mean_loss);
                EXPECT_EQ(base_acc, accuracy);
                ASSERT_EQ(base_vars.size(), vars.size());
                for (const auto& [var_name, expected] : base_vars) {
                    const auto it = vars.find(var_name);
                    ASSERT_NE(it, vars.end()) << var_name;
                    ExpectBitIdentical(expected, it->second, var_name);
                }
            }
        }
    }
}

}  // namespace
}  // namespace fathom::data
