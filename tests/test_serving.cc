/**
 * @file
 * The serving battery: FrozenPlan contract tests, the
 * batching-equivalence battery (a request served inside a coalesced
 * batch is bit-identical to the same request served alone, for all
 * eight workloads), the checkpoint->freeze round trip, the
 * ServingRuntime shutdown contract, and the concurrent serving
 * battery (N client threads on one shared plan; runs under TSan via
 * the `serving` ctest label).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <random>
#include <thread>
#include <vector>

#include "runtime/checkpoint.h"
#include "serving/frozen_plan.h"
#include "serving/serving_runtime.h"
#include "workloads/workload.h"

namespace fathom::serving {
namespace {

using workloads::RegisterAllWorkloads;
using workloads::Workload;
using workloads::WorkloadConfig;
using workloads::WorkloadRegistry;

/** Every future in the shutdown tests gets this long, then the test
 * fails instead of hanging the suite. */
constexpr auto kFutureTimeout = std::chrono::seconds(60);

const char*
RawBytes(const Tensor& t)
{
    return t.dtype() == DType::kFloat32
               ? reinterpret_cast<const char*>(t.data<float>())
               : reinterpret_cast<const char*>(t.data<std::int32_t>());
}

/** The battery's core assertion: same dtype, same shape, same bytes. */
void
ExpectBitIdentical(const Tensor& a, const Tensor& b, const std::string& what)
{
    ASSERT_TRUE(a.dtype() == b.dtype()) << what;
    ASSERT_EQ(a.shape().dims(), b.shape().dims()) << what;
    const std::size_t bytes =
        static_cast<std::size_t>(a.num_elements()) * DTypeSize(a.dtype());
    EXPECT_EQ(std::memcmp(RawBytes(a), RawBytes(b), bytes), 0) << what;
}

std::unique_ptr<Workload>
MakeServableWorkload(const std::string& name, std::uint64_t seed = 7,
                     std::int64_t batch_size = 8)
{
    RegisterAllWorkloads();
    auto workload = WorkloadRegistry::Global().Create(name);
    WorkloadConfig config;
    config.seed = seed;
    // A common batch cap so the fixed-batch models (seq2seq, speech,
    // memnet) can host every tested coalesced size.
    config.batch_size = batch_size;
    config.tracing = false;
    workload->Setup(config);
    return workload;
}

// ---- FrozenPlan contract ------------------------------------------------

TEST(FrozenPlanTest, RejectsStatefulOps)
{
    RegisterAllWorkloads();  // registers the standard ops.
    runtime::Session session(1);
    auto b = session.MakeBuilder();
    const auto noise = b.RandomNormal({2, 2}, 0.0f, 1.0f);
    const auto out = b.Relu(noise);

    InferenceSignature sig;
    sig.fetches = {out};
    sig.output_names = {"out"};
    EXPECT_THROW(FrozenPlan::Freeze(session, sig), std::invalid_argument);
}

TEST(FrozenPlanTest, RejectsUndeclaredPlaceholder)
{
    RegisterAllWorkloads();
    runtime::Session session(1);
    auto b = session.MakeBuilder();
    const auto x = b.Placeholder("x");
    const auto out = b.Relu(x);

    InferenceSignature sig;  // x deliberately not declared.
    sig.fetches = {out};
    sig.output_names = {"out"};
    EXPECT_THROW(FrozenPlan::Freeze(session, sig), std::invalid_argument);
}

TEST(FrozenPlanTest, FrozenWeightsAreImmuneToLiveTraining)
{
    auto workload = MakeServableWorkload("autoenc");
    const auto plan = workload->FreezeServingPlan();
    const RequestFeeds request = workload->SampleServingRequest();

    const auto before = plan->ServeOne(request);
    workload->RunTraining(3);
    const auto after = plan->ServeOne(request);
    for (std::size_t i = 0; i < before.size(); ++i) {
        ExpectBitIdentical(before[i], after[i], "frozen output " +
                                                    std::to_string(i));
    }

    // Sanity: the live session really did move — a fresh freeze
    // produces a different embedding, so the immunity above is not
    // vacuous.
    const auto retrained = workload->FreezeServingPlan()->ServeOne(request);
    const std::size_t bytes =
        static_cast<std::size_t>(before[0].num_elements()) *
        DTypeSize(before[0].dtype());
    EXPECT_NE(
        std::memcmp(RawBytes(before[0]), RawBytes(retrained[0]), bytes), 0);
}

// ---- batching-equivalence battery ---------------------------------------

class ServingEquivalenceBattery
    : public ::testing::TestWithParam<std::string> {};

TEST_P(ServingEquivalenceBattery, BatchedRowsBitIdenticalToSolo)
{
    auto workload = MakeServableWorkload(GetParam());
    ASSERT_TRUE(workload->has_serving_endpoint());
    const auto plan = workload->FreezeServingPlan();

    constexpr std::size_t kRequests = 8;
    std::vector<RequestFeeds> requests;
    requests.reserve(kRequests);
    for (std::size_t i = 0; i < kRequests; ++i) {
        requests.push_back(workload->SampleServingRequest());
    }

    // The solo reference: each request served entirely alone.
    std::vector<std::vector<Tensor>> solo;
    solo.reserve(kRequests);
    for (const auto& request : requests) {
        solo.push_back(plan->ServeOne(request));
    }

    for (const std::size_t size : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}, std::size_t{8}}) {
        for (std::size_t start = 0; start + size <= kRequests;
             start += size) {
            std::vector<const RequestFeeds*> group;
            for (std::size_t i = start; i < start + size; ++i) {
                group.push_back(&requests[i]);
            }
            const auto batched = plan->ServeBatch(group);
            ASSERT_EQ(batched.size(), size);
            for (std::size_t i = 0; i < size; ++i) {
                ASSERT_EQ(batched[i].size(), solo[start + i].size());
                for (std::size_t o = 0; o < batched[i].size(); ++o) {
                    ExpectBitIdentical(
                        batched[i][o], solo[start + i][o],
                        GetParam() + " request " +
                            std::to_string(start + i) + " output " +
                            std::to_string(o) + " at batch size " +
                            std::to_string(size));
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, ServingEquivalenceBattery,
                         ::testing::Values("seq2seq", "memnet", "speech",
                                           "autoenc", "residual", "vgg",
                                           "alexnet", "deepq"),
                         [](const auto& info) { return info.param; });

// ---- checkpoint -> freeze round trip ------------------------------------

class ServingCheckpointTest : public ::testing::TestWithParam<std::string> {
};

TEST_P(ServingCheckpointTest, FreezeFromRestoredCheckpointMatchesLive)
{
    auto live = MakeServableWorkload(GetParam(), /*seed=*/11);
    live->RunTraining(3);
    const std::string path = ::testing::TempDir() + "serving_roundtrip_" +
                             GetParam() + ".ckpt";
    runtime::SaveCheckpoint(live->session().variables(), path);

    // Inference on the live training session at this step, via its
    // frozen snapshot (freezing copies, it does not perturb).
    const auto live_plan = live->FreezeServingPlan();

    // A cold process restoring the checkpoint: same architecture,
    // different seed so every initial weight differs until restore.
    auto restored = MakeServableWorkload(GetParam(), /*seed=*/23);
    runtime::RestoreCheckpoint(&restored->session().variables(), path);
    const auto restored_plan = restored->FreezeServingPlan();

    for (int i = 0; i < 4; ++i) {
        const RequestFeeds request = live->SampleServingRequest();
        const auto expected = live_plan->ServeOne(request);
        const auto actual = restored_plan->ServeOne(request);
        ASSERT_EQ(expected.size(), actual.size());
        for (std::size_t o = 0; o < expected.size(); ++o) {
            ExpectBitIdentical(expected[o], actual[o],
                               GetParam() + " output " + std::to_string(o));
        }
    }
    std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Models, ServingCheckpointTest,
                         ::testing::Values("autoenc", "memnet"),
                         [](const auto& info) { return info.param; });

// ---- ServingRuntime shutdown contract -----------------------------------

TEST(ServingRuntimeTest, SubmitAfterStopThrows)
{
    auto workload = MakeServableWorkload("autoenc");
    ServingRuntime runtime(workload->FreezeServingPlan());
    runtime.Stop();
    EXPECT_TRUE(runtime.stopped());
    EXPECT_THROW(runtime.Submit(workload->SampleServingRequest()),
                 std::runtime_error);
}

TEST(ServingRuntimeTest, MalformedRequestRejectedUpFront)
{
    auto workload = MakeServableWorkload("autoenc");
    ServingRuntime runtime(workload->FreezeServingPlan());
    EXPECT_THROW(runtime.Submit({}), std::invalid_argument);

    auto request = workload->SampleServingRequest();
    request.begin()->second = Tensor::Zeros(Shape{1, 3});  // wrong shape.
    EXPECT_THROW(runtime.Submit(std::move(request)), std::invalid_argument);
}

TEST(ServingRuntimeTest, StopDrainsEveryAcceptedRequest)
{
    auto workload = MakeServableWorkload("autoenc");
    ServingOptions options;
    options.max_batch = 4;
    // A long budget so requests are still queued when Stop() lands —
    // the drain, not the batcher deadline, must flush them.
    options.max_queue_delay = std::chrono::microseconds(500000);
    ServingRuntime runtime(workload->FreezeServingPlan(), options);

    std::vector<std::future<InferenceResponse>> futures;
    for (int i = 0; i < 6; ++i) {
        futures.push_back(runtime.Submit(workload->SampleServingRequest()));
    }
    runtime.Stop();
    for (auto& future : futures) {
        ASSERT_EQ(future.wait_for(kFutureTimeout),
                  std::future_status::ready)
            << "a caller was left blocked across Stop()";
        const auto response = future.get();
        EXPECT_EQ(response.outputs.size(), 2u);
    }
}

TEST(ServingRuntimeTest, DestructorDrainsInFlightRequests)
{
    auto workload = MakeServableWorkload("autoenc");
    std::vector<std::future<InferenceResponse>> futures;
    {
        ServingOptions options;
        options.max_batch = 2;
        options.max_queue_delay = std::chrono::microseconds(200000);
        ServingRuntime runtime(workload->FreezeServingPlan(), options);
        for (int i = 0; i < 5; ++i) {
            futures.push_back(
                runtime.Submit(workload->SampleServingRequest()));
        }
    }  // destructor must complete-or-fail everything.
    for (auto& future : futures) {
        ASSERT_EQ(future.wait_for(kFutureTimeout),
                  std::future_status::ready);
        EXPECT_NO_THROW(future.get());
    }
}

TEST(ServingRuntimeTest, BoundedQueueRejectsWhenFull)
{
    auto workload = MakeServableWorkload("autoenc");
    ServingOptions options;
    options.max_batch = 8;
    // Nothing launches before the deadline, so the queue genuinely
    // fills: submit 3 into depth 2 and the third must bounce.
    options.max_queue_delay = std::chrono::microseconds(300000);
    options.max_queue_depth = 2;
    ServingRuntime runtime(workload->FreezeServingPlan(), options);

    auto f0 = runtime.Submit(workload->SampleServingRequest());
    auto f1 = runtime.Submit(workload->SampleServingRequest());
    EXPECT_THROW(runtime.Submit(workload->SampleServingRequest()),
                 std::runtime_error);
    ASSERT_EQ(f0.wait_for(kFutureTimeout), std::future_status::ready);
    ASSERT_EQ(f1.wait_for(kFutureTimeout), std::future_status::ready);
    EXPECT_NO_THROW(f0.get());
    EXPECT_NO_THROW(f1.get());
}

// ---- concurrent serving battery -----------------------------------------

struct ConcurrentCase {
    const char* workload;
    int inter_op_threads;
};

class ServingConcurrentBattery
    : public ::testing::TestWithParam<ConcurrentCase> {};

TEST_P(ServingConcurrentBattery, ClientsShareOnePlanWithoutLossOrCorruption)
{
    const auto& param = GetParam();
    auto workload = MakeServableWorkload(param.workload);
    FrozenPlanOptions plan_options;
    plan_options.inter_op_threads = param.inter_op_threads;
    const auto plan = workload->FreezeServingPlan(plan_options);

    constexpr int kClients = 8;
    constexpr int kRequestsPerClient = 6;

    // Requests and their solo references are prepared up front: the
    // dataset generators are not thread-safe, and the reference gives
    // per-request correctness (which also rules out cross-request
    // response swaps — every request's payload is distinct).
    std::vector<std::vector<RequestFeeds>> requests(kClients);
    std::vector<std::vector<std::vector<Tensor>>> expected(kClients);
    for (int c = 0; c < kClients; ++c) {
        for (int r = 0; r < kRequestsPerClient; ++r) {
            requests[static_cast<std::size_t>(c)].push_back(
                workload->SampleServingRequest());
            expected[static_cast<std::size_t>(c)].push_back(plan->ServeOne(
                requests[static_cast<std::size_t>(c)].back()));
        }
    }

    ServingOptions options;
    options.max_batch = 4;
    options.max_queue_delay = std::chrono::microseconds(1000);
    options.executors = 2;
    ServingRuntime runtime(plan, options);

    std::atomic<int> responses{0};
    std::atomic<int> mismatches{0};
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            std::mt19937 arrival(static_cast<unsigned>(1234 + c));
            std::uniform_int_distribution<int> jitter_us(0, 1500);
            for (int r = 0; r < kRequestsPerClient; ++r) {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(jitter_us(arrival)));
                auto future = runtime.Submit(
                    requests[static_cast<std::size_t>(c)]
                            [static_cast<std::size_t>(r)]);
                const auto response = future.get();
                ++responses;
                const auto& want =
                    expected[static_cast<std::size_t>(c)]
                            [static_cast<std::size_t>(r)];
                if (response.outputs.size() != want.size()) {
                    ++mismatches;
                    continue;
                }
                for (std::size_t o = 0; o < want.size(); ++o) {
                    const Tensor& got = response.outputs[o];
                    const std::size_t bytes =
                        static_cast<std::size_t>(want[o].num_elements()) *
                        DTypeSize(want[o].dtype());
                    if (got.shape().dims() != want[o].shape().dims() ||
                        std::memcmp(RawBytes(got), RawBytes(want[o]),
                                    bytes) != 0) {
                        ++mismatches;
                    }
                }
            }
        });
    }
    for (auto& client : clients) {
        client.join();
    }
    runtime.Stop();

    // Exactly one response per submission, every one bit-identical to
    // its solo reference.
    EXPECT_EQ(responses.load(), kClients * kRequestsPerClient);
    EXPECT_EQ(mismatches.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Widths, ServingConcurrentBattery,
    ::testing::Values(ConcurrentCase{"autoenc", 1},
                      ConcurrentCase{"autoenc", 2},
                      ConcurrentCase{"autoenc", 4},
                      // The fixed-batch padding path under contention.
                      ConcurrentCase{"memnet", 2}),
    [](const auto& info) {
        return std::string(info.param.workload) + "_width" +
               std::to_string(info.param.inter_op_threads);
    });

}  // namespace
}  // namespace fathom::serving
