/**
 * @file
 * Determinism battery for the inter-op parallel executor.
 *
 * The executor's contract (Session::SetInterOpThreads) is that only
 * scheduling changes with the thread count — every fetched tensor and
 * every variable is bit-identical to the sequential executor, because
 * stateful ops (RNG draws, parameter updates) act as plan-order
 * barriers. These tests pin that contract down to the byte, on small
 * synthetic graphs and on all eight paper workloads.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ops/register.h"
#include "runtime/session.h"
#include "workloads/workload.h"

namespace fathom::runtime {
namespace {

using graph::Output;

const void*
RawData(const Tensor& t)
{
    return t.dtype() == DType::kFloat32
               ? static_cast<const void*>(t.data<float>())
               : static_cast<const void*>(t.data<std::int32_t>());
}

void
ExpectBitIdentical(const Tensor& expected, const Tensor& actual,
                   const std::string& what)
{
    ASSERT_EQ(expected.dtype(), actual.dtype()) << what;
    ASSERT_TRUE(expected.shape() == actual.shape()) << what;
    EXPECT_EQ(0, std::memcmp(RawData(expected), RawData(actual),
                             expected.byte_size()))
        << what << ": bytes differ from the sequential executor";
}

class InterOpExecutorTest : public ::testing::Test {
  protected:
    static void SetUpTestSuite() { ops::RegisterStandardOps(); }
};

/** A diamond: one source fanning out to parallel branches and back. */
Output
BuildDiamond(graph::GraphBuilder& b, Output x)
{
    const Output a = b.Relu(x);
    const Output c = b.Tanh(x);
    const Output d = b.Sigmoid(x);
    const Output e = b.Mul(a, c);
    return b.AddN({a, c, d, e});
}

Tensor
Ramp(std::int64_t n, float scale)
{
    Tensor t(DType::kFloat32, Shape{n});
    for (std::int64_t i = 0; i < n; ++i) {
        t.data<float>()[i] = scale * static_cast<float>(i - n / 2);
    }
    return t;
}

TEST_F(InterOpExecutorTest, SetInterOpThreadsClampsToOne)
{
    Session session;
    session.SetInterOpThreads(0);
    EXPECT_EQ(session.inter_op_threads(), 1);
    session.SetInterOpThreads(-3);
    EXPECT_EQ(session.inter_op_threads(), 1);
    session.SetInterOpThreads(4);
    EXPECT_EQ(session.inter_op_threads(), 4);
}

TEST_F(InterOpExecutorTest, DiamondMatchesSequentialBitwise)
{
    for (int inter : {2, 4}) {
        Session sequential;
        Session parallel;
        parallel.SetInterOpThreads(inter);

        auto bs = sequential.MakeBuilder();
        auto bp = parallel.MakeBuilder();
        const Output xs = bs.Placeholder("x");
        const Output xp = bp.Placeholder("x");
        const Output ys = BuildDiamond(bs, xs);
        const Output yp = BuildDiamond(bp, xp);

        for (int step = 0; step < 3; ++step) {
            const Tensor feed = Ramp(64, 0.1f * static_cast<float>(step + 1));
            FeedMap fs, fp;
            fs[xs.node] = feed;
            fp[xp.node] = feed;
            const auto out_s = sequential.Run(fs, {ys});
            const auto out_p = parallel.Run(fp, {yp});
            ExpectBitIdentical(out_s[0], out_p[0],
                               "diamond inter=" + std::to_string(inter) +
                                   " step=" + std::to_string(step));
        }
    }
}

TEST_F(InterOpExecutorTest, ToggleThreadCountOnOneSession)
{
    Session session;
    auto b = session.MakeBuilder();
    const Output x = b.Placeholder("x");
    const Output y = BuildDiamond(b, x);

    FeedMap feeds;
    feeds[x.node] = Ramp(32, 0.25f);
    const auto baseline = session.Run(feeds, {y});
    for (int inter : {2, 4, 1}) {
        session.SetInterOpThreads(inter);
        const auto out = session.Run(feeds, {y});
        ExpectBitIdentical(baseline[0], out[0],
                           "toggle inter=" + std::to_string(inter));
    }
}

TEST_F(InterOpExecutorTest, WideFanoutMatchesSequentialBitwise)
{
    // 32 independent branches keep the ready queue genuinely wide.
    Session sequential;
    Session parallel;
    parallel.SetInterOpThreads(4);

    auto build = [](graph::GraphBuilder& b, Output x) {
        std::vector<Output> fetches;
        for (int i = 0; i < 32; ++i) {
            const Output s = b.ScalarConst(0.125f * static_cast<float>(i + 1));
            fetches.push_back(b.Tanh(b.Mul(x, s)));
        }
        return fetches;
    };

    auto bs = sequential.MakeBuilder();
    auto bp = parallel.MakeBuilder();
    const Output xs = bs.Placeholder("x");
    const Output xp = bp.Placeholder("x");
    const auto fetch_s = build(bs, xs);
    const auto fetch_p = build(bp, xp);

    const Tensor feed = Ramp(48, 0.05f);
    FeedMap fs, fp;
    fs[xs.node] = feed;
    fp[xp.node] = feed;
    const auto out_s = sequential.Run(fs, fetch_s);
    const auto out_p = parallel.Run(fp, fetch_p);
    ASSERT_EQ(out_s.size(), out_p.size());
    for (std::size_t i = 0; i < out_s.size(); ++i) {
        ExpectBitIdentical(out_s[i], out_p[i],
                           "fanout branch " + std::to_string(i));
    }
}

TEST_F(InterOpExecutorTest, RandomOpsDrawInPlanOrder)
{
    // Two RNG ops between pure branches: the barriers must serialize
    // the draws so both sessions consume the seed stream identically.
    auto build = [](Session& session, std::vector<Output>* fetches) {
        auto b = session.MakeBuilder();
        const Output r1 = b.RandomNormal({16, 16}, 0.0f, 1.0f);
        const Output a = b.Relu(r1);
        const Output c = b.Tanh(r1);
        const Output r2 = b.RandomUniform({16, 16}, -1.0f, 1.0f);
        const Output mix = b.Mul(b.Add(a, c), r2);
        *fetches = {r1, r2, mix};
    };

    Session sequential(/*seed=*/7);
    Session parallel(/*seed=*/7);
    parallel.SetInterOpThreads(4);
    std::vector<Output> fetch_s, fetch_p;
    build(sequential, &fetch_s);
    build(parallel, &fetch_p);

    for (int step = 0; step < 2; ++step) {
        const auto out_s = sequential.Run({}, fetch_s);
        const auto out_p = parallel.Run({}, fetch_p);
        for (std::size_t i = 0; i < out_s.size(); ++i) {
            ExpectBitIdentical(out_s[i], out_p[i],
                               "rng fetch " + std::to_string(i) + " step " +
                                   std::to_string(step));
        }
    }
}

TEST_F(InterOpExecutorTest, OptimizerBarrierKeepsVariablesIdentical)
{
    auto build = [](Session& session, Output* x_out, Output* loss,
                    std::vector<graph::NodeId>* targets) {
        auto b = session.MakeBuilder();
        std::string w_name, v_name;
        const Output w =
            b.Variable("w", Ramp(32, 0.02f), &w_name);
        const Output v =
            b.Variable("v", Ramp(32, -0.03f), &v_name);
        const Output x = b.Placeholder("x");
        *x_out = x;
        // Independent gradient branches feeding two updates.
        const Output gw = b.Mul(b.Tanh(w), x);
        const Output gv = b.Mul(b.Sigmoid(v), x);
        *loss = b.ReduceSum(b.Add(gw, gv), {0}, false);
        targets->push_back(b.ApplyGradientDescent(w_name, gw, 0.05f));
        targets->push_back(b.ApplyGradientDescent(v_name, gv, 0.05f));
    };

    Session sequential;
    Session parallel;
    parallel.SetInterOpThreads(4);
    Output x_s, x_p, loss_s, loss_p;
    std::vector<graph::NodeId> targets_s, targets_p;
    build(sequential, &x_s, &loss_s, &targets_s);
    build(parallel, &x_p, &loss_p, &targets_p);

    for (int step = 0; step < 3; ++step) {
        const Tensor feed = Ramp(32, 0.01f * static_cast<float>(step + 1));
        FeedMap fs, fp;
        fs[x_s.node] = feed;
        fp[x_p.node] = feed;
        const auto out_s = sequential.Run(fs, {loss_s}, targets_s);
        const auto out_p = parallel.Run(fp, {loss_p}, targets_p);
        ExpectBitIdentical(out_s[0], out_p[0],
                           "loss step " + std::to_string(step));
        for (const std::string name : {"w", "v"}) {
            ExpectBitIdentical(sequential.variables().Get(name),
                               parallel.variables().Get(name),
                               "variable " + name + " step " +
                                   std::to_string(step));
        }
    }
}

TEST_F(InterOpExecutorTest, MissingFeedThrowsAndSessionStaysUsable)
{
    Session session;
    session.SetInterOpThreads(4);
    auto b = session.MakeBuilder();
    const Output x = b.Placeholder("x");
    const Output y = BuildDiamond(b, x);

    EXPECT_THROW(session.Run({}, {y}), std::invalid_argument);

    FeedMap feeds;
    feeds[x.node] = Ramp(16, 0.5f);
    const auto out = session.Run(feeds, {y});
    EXPECT_EQ(out[0].num_elements(), 16);
}

TEST_F(InterOpExecutorTest, KernelFailurePropagatesAndEndsStepCleanly)
{
    Session session;
    // Pin the mid-step failure path: the static verifier would reject
    // the mismatched MatMul at plan build, before any step ran.
    session.SetVerification(false);
    session.SetInterOpThreads(4);
    auto b = session.MakeBuilder();
    const Output x = b.Placeholder("x");
    const Output y = b.Placeholder("y");
    // Healthy branches race the failing MatMul.
    const Output good = b.AddN({b.Relu(x), b.Tanh(x), b.Sigmoid(x)});
    const Output bad = b.MatMul(x, y);

    FeedMap feeds;
    feeds[x.node] = Tensor(DType::kFloat32, Shape{4, 4});
    feeds[y.node] = Tensor(DType::kFloat32, Shape{5, 5});
    feeds[x.node].Fill(0.5f);
    feeds[y.node].Fill(0.25f);
    const std::size_t steps_before = session.tracer().steps().size();
    EXPECT_THROW(session.Run(feeds, {good, bad}), std::runtime_error);
    // The failed step still closed its trace.
    EXPECT_EQ(session.tracer().steps().size(), steps_before + 1);

    // And the session still executes the healthy subgraph.
    const auto out = session.Run(feeds, {good});
    EXPECT_EQ(out[0].num_elements(), 16);
}

TEST_F(InterOpExecutorTest, TraceIsCanonicalUnderParallelExecution)
{
    Session sequential;
    Session parallel;
    parallel.SetInterOpThreads(4);

    auto bs = sequential.MakeBuilder();
    auto bp = parallel.MakeBuilder();
    const Output xs = bs.Placeholder("x");
    const Output xp = bp.Placeholder("x");
    const Output ys = BuildDiamond(bs, xs);
    const Output yp = BuildDiamond(bp, xp);

    const Tensor feed = Ramp(32, 0.1f);
    FeedMap fs, fp;
    fs[xs.node] = feed;
    fp[xp.node] = feed;
    sequential.Run(fs, {ys});
    parallel.Run(fp, {yp});

    const auto& rec_s = sequential.tracer().steps().back().records;
    const auto& rec_p = parallel.tracer().steps().back().records;
    ASSERT_EQ(rec_s.size(), rec_p.size());
    for (std::size_t i = 0; i < rec_s.size(); ++i) {
        // Same plan, same canonical order: node ids and seq line up.
        EXPECT_EQ(rec_s[i].node, rec_p[i].node) << "record " << i;
        EXPECT_EQ(rec_s[i].seq, rec_p[i].seq) << "record " << i;
        EXPECT_EQ(rec_s[i].op_type, rec_p[i].op_type) << "record " << i;
        if (i > 0) {
            EXPECT_LT(rec_p[i - 1].seq, rec_p[i].seq) << "record " << i;
        }
    }
}

/**
 * The headline guarantee across the whole suite: for every paper
 * workload, one training step and one inference step under inter-op
 * thread counts {2, 4} leave the training loss and every variable
 * bit-identical to the sequential executor with the same seed.
 */
TEST_F(InterOpExecutorTest, AllWorkloadsBitIdenticalBattery)
{
    workloads::RegisterAllWorkloads();
    const auto names = workloads::WorkloadRegistry::Global().Names();
    ASSERT_EQ(names.size(), 8u);

    for (const auto& name : names) {
        SCOPED_TRACE(name);

        auto run_once = [&](int inter) {
            auto workload =
                workloads::WorkloadRegistry::Global().Create(name);
            workloads::WorkloadConfig config;
            config.seed = 11;
            config.inter_op_threads = inter;
            workload->Setup(config);
            const float train_loss =
                workload->RunTraining(1).final_loss;
            workload->RunInference(1);
            std::map<std::string, Tensor> variables;
            for (const auto& var :
                 workload->session().variables().Names()) {
                variables[var] =
                    workload->session().variables().Get(var).Clone();
            }
            const std::size_t traced_ops =
                workload->session().tracer().steps().empty()
                    ? 0
                    : workload->session()
                          .tracer()
                          .steps()
                          .back()
                          .records.size();
            return std::make_tuple(train_loss, std::move(variables),
                                   traced_ops);
        };

        const auto [base_loss, base_vars, base_traced] = run_once(1);
        for (int inter : {2, 4}) {
            SCOPED_TRACE("inter=" + std::to_string(inter));
            const auto [loss, vars, traced] = run_once(inter);
            // Exact equality: same arithmetic in the same order.
            EXPECT_EQ(base_loss, loss);
            EXPECT_EQ(base_traced, traced);
            ASSERT_EQ(base_vars.size(), vars.size());
            for (const auto& [var_name, expected] : base_vars) {
                const auto it = vars.find(var_name);
                ASSERT_NE(it, vars.end()) << var_name;
                ExpectBitIdentical(expected, it->second, var_name);
            }
        }
    }
}

}  // namespace
}  // namespace fathom::runtime
