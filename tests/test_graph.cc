/**
 * @file
 * Tests for graph construction, topological ordering, and the builder.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "graph/op_class.h"
#include "graph/op_registry.h"

namespace fathom::graph {
namespace {

TEST(GraphTest, AddNodeAndLookup)
{
    Graph g;
    const NodeId a = g.AddNode("a", "Placeholder", {});
    const NodeId b = g.AddNode("b", "Identity", {{a, 0}});
    EXPECT_EQ(g.num_nodes(), 2);
    EXPECT_EQ(g.node(b).inputs[0].node, a);
    EXPECT_EQ(g.node_by_name("a").id, a);
    EXPECT_THROW(g.node_by_name("missing"), std::out_of_range);
}

TEST(GraphTest, NameCollisionGetsSuffix)
{
    Graph g;
    g.AddNode("x", "Placeholder", {});
    const NodeId second = g.AddNode("x", "Placeholder", {});
    EXPECT_EQ(g.node(second).name, "x_1");
}

TEST(GraphTest, RejectsForwardReferences)
{
    Graph g;
    EXPECT_THROW(g.AddNode("bad", "Identity", {{5, 0}}),
                 std::invalid_argument);
}

TEST(GraphTest, RejectsBadOutputIndex)
{
    Graph g;
    const NodeId a = g.AddNode("a", "Placeholder", {}, {}, 1);
    EXPECT_THROW(g.AddNode("b", "Identity", {{a, 1}}),
                 std::invalid_argument);
}

TEST(GraphTest, TopologicalOrderRespectsDeps)
{
    Graph g;
    const NodeId a = g.AddNode("a", "Placeholder", {});
    const NodeId b = g.AddNode("b", "Identity", {{a, 0}});
    const NodeId c = g.AddNode("c", "Identity", {{b, 0}});
    const NodeId unrelated = g.AddNode("u", "Placeholder", {});
    (void)unrelated;

    const auto order = g.TopologicalOrder({c});
    ASSERT_EQ(order.size(), 3u);  // pruned: 'u' not included.
    const auto pos = [&](NodeId id) {
        return std::find(order.begin(), order.end(), id) - order.begin();
    };
    EXPECT_LT(pos(a), pos(b));
    EXPECT_LT(pos(b), pos(c));
}

TEST(GraphTest, TopologicalOrderIncludesControlDeps)
{
    Graph g;
    const NodeId a = g.AddNode("a", "Placeholder", {});
    const NodeId b = g.AddNode("b", "NoOp", {}, {}, 0);
    g.AddControlEdge(a, b);
    const auto order = g.TopologicalOrder({b});
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], a);
}

TEST(GraphTest, CycleViaControlEdgeDetected)
{
    Graph g;
    const NodeId a = g.AddNode("a", "NoOp", {}, {}, 0);
    const NodeId b = g.AddNode("b", "NoOp", {}, {}, 0);
    g.AddControlEdge(a, b);
    g.AddControlEdge(b, a);
    EXPECT_THROW(g.TopologicalOrder({b}), std::logic_error);
}

TEST(GraphTest, MultiTargetOrderDeduplicates)
{
    Graph g;
    const NodeId a = g.AddNode("a", "Placeholder", {});
    const NodeId b = g.AddNode("b", "Identity", {{a, 0}});
    const NodeId c = g.AddNode("c", "Identity", {{a, 0}});
    const auto order = g.TopologicalOrder({b, c, b});
    EXPECT_EQ(order.size(), 3u);
}

TEST(AttrValueTest, TypedAccess)
{
    AttrValue i(std::int64_t{42});
    EXPECT_EQ(i.AsInt(), 42);
    EXPECT_FLOAT_EQ(i.AsFloat(), 42.0f);  // int widens to float.
    EXPECT_THROW(i.AsString(), std::logic_error);

    AttrValue f(1.5f);
    EXPECT_FLOAT_EQ(f.AsFloat(), 1.5f);
    EXPECT_THROW(f.AsInt(), std::logic_error);

    AttrValue s("SAME");
    EXPECT_EQ(s.AsString(), "SAME");

    AttrValue list(std::vector<std::int64_t>{1, 2, 3});
    EXPECT_EQ(list.AsIntList().size(), 3u);

    AttrValue flag(true);
    EXPECT_TRUE(flag.AsBool());
}

TEST(NodeTest, AttrAccessors)
{
    Graph g;
    const NodeId id = g.AddNode("n", "Test", {},
                                {{"stride", AttrValue(std::int64_t{2})}});
    const Node& n = g.node(id);
    EXPECT_EQ(n.attr("stride").AsInt(), 2);
    EXPECT_EQ(n.attr_int("stride", 1), 2);
    EXPECT_EQ(n.attr_int("missing", 7), 7);
    EXPECT_THROW(n.attr("missing"), std::out_of_range);
}

TEST(GraphBuilderTest, ScopedNames)
{
    Graph g;
    VariableStore vars;
    GraphBuilder b(&g, &vars);
    b.PushScope("model");
    b.PushScope("layer1");
    const Output x = b.Placeholder("input");
    b.PopScope();
    b.PopScope();
    EXPECT_EQ(g.node(x.node).name, "model/layer1/input");
    EXPECT_THROW(b.PopScope(), std::logic_error);
}

TEST(GraphBuilderTest, VariableRegistersInitialValue)
{
    Graph g;
    VariableStore vars;
    GraphBuilder b(&g, &vars);
    std::string var_name;
    b.Variable("w", Tensor::Full(Shape{2, 2}, 3.0f), &var_name);
    EXPECT_EQ(var_name, "w");
    EXPECT_TRUE(vars.Contains("w"));
    EXPECT_FLOAT_EQ(vars.Get("w").data<float>()[0], 3.0f);
}

TEST(GraphBuilderTest, ConstStoresCopy)
{
    Graph g;
    VariableStore vars;
    GraphBuilder b(&g, &vars);
    Tensor original = Tensor::Full(Shape{2}, 1.0f);
    b.Const(original, "c");
    original.Fill(9.0f);  // must not affect the stored constant.
    EXPECT_FLOAT_EQ(vars.Get("__const/c").data<float>()[0], 1.0f);
}

TEST(GraphBuilderTest, AddNReturnsSingleInputUnchanged)
{
    Graph g;
    VariableStore vars;
    GraphBuilder b(&g, &vars);
    const Output x = b.Placeholder("x");
    const Output same = b.AddN({x});
    EXPECT_EQ(same.node, x.node);
}

TEST(GraphBuilderTest, GroupDependsOnAll)
{
    Graph g;
    VariableStore vars;
    GraphBuilder b(&g, &vars);
    const Output x = b.Placeholder("x");
    const Output y = b.Placeholder("y");
    const NodeId group = b.Group({x.node, y.node});
    EXPECT_EQ(g.node(group).control_inputs.size(), 2u);
}

TEST(VariableStoreTest, SetGetContains)
{
    VariableStore vars;
    vars.Set("a", Tensor::Full(Shape{3}, 1.0f));
    EXPECT_TRUE(vars.Contains("a"));
    EXPECT_FALSE(vars.Contains("b"));
    EXPECT_THROW(vars.Get("b"), std::out_of_range);
    EXPECT_EQ(vars.TotalParameters(), 3);
    vars.Set("ints", Tensor::FromVectorInt(Shape{2}, {1, 2}));
    EXPECT_EQ(vars.TotalParameters(), 3);  // int tensors not counted.
}

TEST(OpClassTest, NamesAreStable)
{
    EXPECT_EQ(OpClassName(OpClass::kConvolution), "Convolution");
    EXPECT_EQ(OpClassName(OpClass::kMatrixOps), "MatrixOps");
    EXPECT_EQ(AllOpClasses().size(), static_cast<std::size_t>(kNumOpClasses));
}

TEST(OpRegistryTest, DuplicateRegistrationThrows)
{
    OpRegistry registry;
    OpDef def;
    def.name = "TestOp";
    def.kernel = [](OpContext&) {};
    registry.Register(def);
    EXPECT_THROW(registry.Register(def), std::logic_error);
    EXPECT_TRUE(registry.Contains("TestOp"));
    EXPECT_THROW(registry.Lookup("Nope"), std::out_of_range);
}

TEST(OpRegistryTest, KernellessOpRejected)
{
    OpRegistry registry;
    OpDef def;
    def.name = "Broken";
    EXPECT_THROW(registry.Register(def), std::logic_error);
}

}  // namespace
}  // namespace fathom::graph
