/**
 * @file
 * Tests for the liveness-driven memory planner and the buffer pool.
 *
 * The planner's contract (Session::SetMemoryPlanning) is that it only
 * changes *when* dead intermediates are dropped and *where* buffers
 * come from — never a computed value. These tests pin that down: the
 * pool recycles freed blocks, the planner shrinks a deep chain's peak
 * footprint, exempt values (fetches, variables) survive to the end of
 * the step, and — the headline battery — every paper workload's loss
 * and variables are byte-identical with the planner on vs off under
 * inter-op thread counts 1, 2, and 4.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "ops/register.h"
#include "runtime/session.h"
#include "tensor/buffer_pool.h"
#include "workloads/workload.h"

namespace fathom::runtime {
namespace {

using graph::Output;

void
ExpectBitIdentical(const Tensor& expected, const Tensor& actual,
                   const std::string& what)
{
    ASSERT_EQ(expected.dtype(), actual.dtype()) << what;
    ASSERT_TRUE(expected.shape() == actual.shape()) << what;
    const void* e = expected.dtype() == DType::kFloat32
                        ? static_cast<const void*>(expected.data<float>())
                        : static_cast<const void*>(
                              expected.data<std::int32_t>());
    const void* a = actual.dtype() == DType::kFloat32
                        ? static_cast<const void*>(actual.data<float>())
                        : static_cast<const void*>(
                              actual.data<std::int32_t>());
    EXPECT_EQ(0, std::memcmp(e, a, expected.byte_size()))
        << what << ": bytes differ with the memory planner toggled";
}

class MemoryPlannerTest : public ::testing::Test {
  protected:
    static void
    SetUpTestSuite()
    {
        ops::RegisterStandardOps();
    }

    void
    SetUp() override
    {
        BufferPool::Global().set_recycling(true);
    }
};

TEST_F(MemoryPlannerTest, BufferPoolRecyclesFreedBlocks)
{
    BufferPool& pool = BufferPool::Global();
    const auto before = pool.stats();
    {
        Tensor t(DType::kFloat32, Shape{1024});
        t.Fill(1.0f);
    }  // freed -> parked in the 4 KiB bucket.
    Tensor reused(DType::kFloat32, Shape{1024});
    reused.Fill(2.0f);
    const auto after = pool.stats();
    EXPECT_GE(after.pool_hits, before.pool_hits + 1);
    EXPECT_EQ(after.allocations, before.allocations + 2);
}

TEST_F(MemoryPlannerTest, BufferPoolRecyclingOffGoesToSystemAllocator)
{
    BufferPool& pool = BufferPool::Global();
    pool.set_recycling(false);
    const auto before = pool.stats();
    {
        Tensor t(DType::kFloat32, Shape{2048});
        t.Fill(1.0f);
    }
    Tensor fresh(DType::kFloat32, Shape{2048});
    fresh.Fill(2.0f);
    const auto after = pool.stats();
    EXPECT_EQ(after.pool_hits, before.pool_hits);
    EXPECT_EQ(after.fresh_allocs, before.fresh_allocs + 2);
    pool.set_recycling(true);
}

TEST_F(MemoryPlannerTest, BufferPoolTracksLiveAndPeakBytes)
{
    BufferPool& pool = BufferPool::Global();
    pool.ResetPeak();
    const auto before = pool.stats();
    {
        Tensor a(DType::kFloat32, Shape{1 << 16});  // 256 KiB bucket.
        a.Fill(0.0f);
        const auto during = pool.stats();
        EXPECT_GE(during.live_bytes, before.live_bytes + (1u << 18));
        EXPECT_GE(during.peak_bytes, before.live_bytes + (1u << 18));
    }
    const auto after = pool.stats();
    EXPECT_EQ(after.live_bytes, before.live_bytes);
    // The high-water mark survives the free.
    EXPECT_GE(after.peak_bytes, before.live_bytes + (1u << 18));
}

/** A long elementwise chain where only the head and tail must live. */
Output
BuildChain(graph::GraphBuilder& b, Output x, int depth)
{
    for (int i = 0; i < depth; ++i) {
        x = b.Relu(b.Add(x, x));
    }
    return x;
}

TEST_F(MemoryPlannerTest, PlannerShrinksChainPeakFootprint)
{
    // 24 chained ops over a 256 KiB tensor: without the planner every
    // link stays live to the end of the step (~12 MiB); with it the
    // frontier is a couple of links.
    auto measure = [](bool planner) {
        Session session;
        session.SetMemoryPlanning(planner);
        auto b = session.MakeBuilder();
        const Output x = b.Placeholder("x");
        const Output y = BuildChain(b, x, 24);
        FeedMap feeds;
        feeds[x.node] = Tensor::Full(Shape{1 << 16}, 0.5f);
        const auto out = session.Run(feeds, {y});
        return std::make_pair(
            out[0].Clone(),
            session.tracer().steps().back().memory.peak_bytes);
    };

    const auto [off_value, off_peak] = measure(false);
    const auto [on_value, on_peak] = measure(true);
    ExpectBitIdentical(off_value, on_value, "chain fetch");
    // The planner must reclaim at least half the chain's footprint
    // (conservative: exact numbers depend on resident pool baseline).
    EXPECT_LT(on_peak + 6 * (1u << 18), off_peak);
}

TEST_F(MemoryPlannerTest, FetchedIntermediatesAreExemptFromRelease)
{
    Session planned;
    Session baseline;
    planned.SetMemoryPlanning(true);
    baseline.SetMemoryPlanning(false);

    auto build = [](Session& s, std::vector<Output>* fetches) {
        auto b = s.MakeBuilder();
        const Output x = b.Placeholder("x");
        const Output mid = b.Tanh(b.Add(x, x));  // consumed AND fetched.
        const Output tail = BuildChain(b, mid, 6);
        *fetches = {x, mid, tail};
    };
    std::vector<Output> fp, fb;
    build(planned, &fp);
    build(baseline, &fb);

    Tensor feed = Tensor::Full(Shape{4096}, 0.25f);
    FeedMap feeds_p, feeds_b;
    feeds_p[fp[0].node] = feed;
    feeds_b[fb[0].node] = feed;
    const auto out_p = planned.Run(feeds_p, {fp[1], fp[2]});
    const auto out_b = baseline.Run(feeds_b, {fb[1], fb[2]});
    ASSERT_EQ(out_p.size(), out_b.size());
    for (std::size_t i = 0; i < out_p.size(); ++i) {
        ExpectBitIdentical(out_b[i], out_p[i],
                           "fetch " + std::to_string(i));
    }
}

TEST_F(MemoryPlannerTest, RunOnlyTargetsAndVariablesSurvivePlanning)
{
    // Variable updates through run-only targets: the planner must not
    // disturb stateful barrier semantics, and fetching a variable read
    // after the step still sees the pre-update clone.
    auto run = [](bool planner) {
        Session session(/*seed=*/3);
        session.SetMemoryPlanning(planner);
        auto b = session.MakeBuilder();
        std::string w_name;
        const Output w = b.Variable("w", Tensor::Full(Shape{64}, 0.5f),
                                    &w_name);
        const Output x = b.Placeholder("x");
        const Output grad = b.Mul(b.Tanh(w), x);
        const Output loss = b.ReduceSum(grad, {0}, false);
        const auto target = b.ApplyGradientDescent(w_name, grad, 0.1f);
        FeedMap feeds;
        feeds[x.node] = Tensor::Full(Shape{64}, 0.125f);
        std::vector<Tensor> fetched;
        for (int step = 0; step < 3; ++step) {
            const auto out = session.Run(feeds, {loss, w}, {target});
            fetched.push_back(out[0].Clone());
            fetched.push_back(out[1].Clone());
        }
        fetched.push_back(session.variables().Get("w").Clone());
        return fetched;
    };

    const auto off = run(false);
    const auto on = run(true);
    ASSERT_EQ(off.size(), on.size());
    for (std::size_t i = 0; i < off.size(); ++i) {
        ExpectBitIdentical(off[i], on[i], "value " + std::to_string(i));
    }
}

TEST_F(MemoryPlannerTest, PlannerComposesWithGraphOptimizer)
{
    // CSE + folding rewrite the plan; liveness must follow the
    // replacements, not the original edges.
    auto run = [](bool planner) {
        Session session;
        session.SetMemoryPlanning(planner);
        session.SetGraphOptimization(true);
        auto b = session.MakeBuilder();
        const Output x = b.Placeholder("x");
        const Output t1 = b.Tanh(x);
        const Output t2 = b.Tanh(x);  // CSE-merged with t1.
        const Output c = b.Mul(b.ScalarConst(2.0f), b.ScalarConst(3.0f));
        const Output y = b.Add(b.Mul(t1, c), t2);
        FeedMap feeds;
        feeds[x.node] = Tensor::Full(Shape{512}, 0.3f);
        return session.Run(feeds, {y})[0].Clone();
    };
    ExpectBitIdentical(run(false), run(true), "optimized graph fetch");
}

/**
 * The headline guarantee: for every paper workload, one training and
 * one inference step with the memory planner on are byte-identical —
 * loss and every variable — to the planner-off baseline, under
 * inter-op thread counts 1, 2, and 4.
 */
TEST_F(MemoryPlannerTest, AllWorkloadsPlannerOnOffBitIdenticalBattery)
{
    workloads::RegisterAllWorkloads();
    const auto names = workloads::WorkloadRegistry::Global().Names();
    ASSERT_EQ(names.size(), 8u);

    for (const auto& name : names) {
        SCOPED_TRACE(name);

        auto run_once = [&](bool planner, int inter) {
            auto workload =
                workloads::WorkloadRegistry::Global().Create(name);
            workloads::WorkloadConfig config;
            config.seed = 17;
            config.memory_planner = planner;
            config.inter_op_threads = inter;
            workload->Setup(config);
            const float train_loss = workload->RunTraining(1).final_loss;
            workload->RunInference(1);
            std::map<std::string, Tensor> variables;
            for (const auto& var :
                 workload->session().variables().Names()) {
                variables[var] =
                    workload->session().variables().Get(var).Clone();
            }
            return std::make_pair(train_loss, std::move(variables));
        };

        const auto [base_loss, base_vars] = run_once(false, 1);
        for (int inter : {1, 2, 4}) {
            SCOPED_TRACE("planner on, inter=" + std::to_string(inter));
            const auto [loss, vars] = run_once(true, inter);
            EXPECT_EQ(base_loss, loss);
            ASSERT_EQ(base_vars.size(), vars.size());
            for (const auto& [var_name, expected] : base_vars) {
                const auto it = vars.find(var_name);
                ASSERT_NE(it, vars.end()) << var_name;
                ExpectBitIdentical(expected, it->second, var_name);
            }
        }
    }
}

}  // namespace
}  // namespace fathom::runtime
