/**
 * @file
 * Edge-case sweeps over kernel and runtime boundaries: degenerate
 * shapes, extreme values, and API misuse that earlier tests don't
 * cover.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "kernels/conv2d.h"
#include "kernels/elementwise.h"
#include "kernels/matmul.h"
#include "kernels/reduction.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "ops/register.h"
#include "runtime/session.h"
#include "test_util.h"

namespace fathom {
namespace {

using test::ExpectTensorNear;
using test::RandomTensor;

parallel::ThreadPool&
Pool()
{
    static parallel::ThreadPool pool(1);
    return pool;
}

TEST(EdgeCaseTest, OneByOneConvIsPerPixelMatMul)
{
    // A 1x1 convolution is exactly a per-pixel channel mix.
    const Tensor input = RandomTensor(Shape{1, 3, 3, 4}, 1);
    const Tensor filter = RandomTensor(Shape{1, 1, 4, 2}, 2);
    const Tensor conv = kernels::Conv2D(input, filter, 1,
                                        kernels::Padding::kSame, Pool());
    const Tensor as_matmul = kernels::MatMul(
        input.Reshape(Shape{9, 4}), filter.Reshape(Shape{4, 2}), false,
        false, Pool());
    ExpectTensorNear(as_matmul.Reshape(Shape{1, 3, 3, 2}), conv, 1e-4f);
}

TEST(EdgeCaseTest, FullImageFilterValidIsDotProduct)
{
    // VALID conv with filter == image size produces a single output.
    const Tensor input = RandomTensor(Shape{1, 4, 4, 1}, 3);
    const Tensor filter = RandomTensor(Shape{4, 4, 1, 1}, 4);
    const Tensor conv = kernels::Conv2D(input, filter, 1,
                                        kernels::Padding::kValid, Pool());
    EXPECT_EQ(conv.shape(), Shape({1, 1, 1, 1}));
    double expected = 0.0;
    for (int i = 0; i < 16; ++i) {
        expected += static_cast<double>(input.data<float>()[i]) *
                    filter.data<float>()[i];
    }
    EXPECT_NEAR(conv.data<float>()[0], expected, 1e-3);
}

TEST(EdgeCaseTest, StrideLargerThanFilter)
{
    // Stride 3 with a 2x2 filter skips input columns entirely.
    const Tensor input = RandomTensor(Shape{1, 7, 7, 1}, 5);
    const Tensor filter = RandomTensor(Shape{2, 2, 1, 1}, 6);
    const Tensor conv = kernels::Conv2D(input, filter, 3,
                                        kernels::Padding::kValid, Pool());
    EXPECT_EQ(conv.shape(), Shape({1, 2, 2, 1}));
}

TEST(EdgeCaseTest, SingleElementSoftmaxIsOne)
{
    const Tensor logits = Tensor::FromVector(Shape{3, 1}, {5, -2, 100});
    const Tensor s = kernels::Softmax(logits, Pool());
    for (int i = 0; i < 3; ++i) {
        EXPECT_FLOAT_EQ(s.data<float>()[i], 1.0f);
    }
}

TEST(EdgeCaseTest, SoftmaxWithMinusInfinityMasks)
{
    // -inf logits get exactly zero probability (attention masking).
    Tensor logits = Tensor::FromVector(Shape{1, 3}, {1.0f, 2.0f, 0.0f});
    logits.data<float>()[2] = -std::numeric_limits<float>::infinity();
    const Tensor s = kernels::Softmax(logits, Pool());
    EXPECT_FLOAT_EQ(s.data<float>()[2], 0.0f);
    EXPECT_NEAR(s.data<float>()[0] + s.data<float>()[1], 1.0f, 1e-6f);
}

TEST(EdgeCaseTest, MatMulWithZeroSizedDimension)
{
    // [0, k] x [k, n] is a valid empty result.
    const Tensor a = Tensor::Zeros(Shape{0, 3});
    const Tensor b = RandomTensor(Shape{3, 4}, 7);
    const Tensor c = kernels::MatMul(a, b, false, false, Pool());
    EXPECT_EQ(c.shape(), Shape({0, 4}));
    EXPECT_EQ(c.num_elements(), 0);
}

TEST(EdgeCaseTest, ReduceOverSizeOneAxisIsReshape)
{
    const Tensor t = RandomTensor(Shape{3, 1, 4}, 8);
    const Tensor reduced =
        kernels::Reduce(t, kernels::ReduceOp::kSum, {1}, false, Pool());
    ExpectTensorNear(t.Reshape(Shape{3, 4}), reduced, 1e-6f);
}

TEST(EdgeCaseTest, BroadcastScalarAgainstEmpty)
{
    const Tensor scalar = Tensor::Scalar(2.0f);
    const Tensor empty = Tensor::Zeros(Shape{0, 4});
    const Tensor out = kernels::BinaryMap(
        scalar, empty, [](float a, float b) { return a + b; }, Pool());
    EXPECT_EQ(out.shape(), Shape({0, 4}));
}

class EdgeRuntimeTest : public ::testing::Test {
  protected:
    static void SetUpTestSuite() { ops::RegisterStandardOps(); }
};

TEST_F(EdgeRuntimeTest, FetchSameEdgeTwice)
{
    runtime::Session session;
    auto b = session.MakeBuilder();
    const graph::Output x = b.Placeholder("x");
    const graph::Output y = b.Square(x);
    runtime::FeedMap feeds;
    feeds[x.node] = Tensor::FromVector({3.0f});
    const auto out = session.Run(feeds, {y, y, x});
    EXPECT_FLOAT_EQ(out[0].data<float>()[0], 9.0f);
    EXPECT_FLOAT_EQ(out[1].data<float>()[0], 9.0f);
    EXPECT_FLOAT_EQ(out[2].data<float>()[0], 3.0f);
}

TEST_F(EdgeRuntimeTest, FetchPlaceholderDirectly)
{
    runtime::Session session;
    auto b = session.MakeBuilder();
    const graph::Output x = b.Placeholder("x");
    runtime::FeedMap feeds;
    feeds[x.node] = Tensor::FromVector({1.0f, 2.0f});
    const auto out = session.Run(feeds, {x});
    ExpectTensorNear(feeds[x.node], out[0]);
}

TEST_F(EdgeRuntimeTest, EmptyFetchWithTargetsOnly)
{
    runtime::Session session;
    auto b = session.MakeBuilder();
    std::string var;
    b.Variable("v", Tensor::Scalar(1.0f), &var);
    const auto assign = b.Assign(var, b.ScalarConst(9.0f));
    const auto out = session.Run({}, {}, {assign});
    EXPECT_TRUE(out.empty());
    EXPECT_FLOAT_EQ(session.variables().Get("v").scalar_value(), 9.0f);
}

TEST_F(EdgeRuntimeTest, LargeBatchThroughWholeStack)
{
    // Shapes an order of magnitude beyond the unit tests, end to end.
    runtime::Session session(3);
    auto b = session.MakeBuilder();
    nn::Trainables params;
    Rng rng(4);
    const graph::Output x = b.Placeholder("x");
    const graph::Output labels = b.Placeholder("labels");
    const graph::Output logits =
        nn::Dense(b, &params, rng, "fc", x, 64, 10);
    const graph::Output loss = b.SoftmaxCrossEntropy(logits, labels)[0];
    const auto train = nn::Minimize(b, loss, params,
                                    nn::OptimizerConfig::Sgd(0.1f));

    runtime::FeedMap feeds;
    feeds[x.node] = RandomTensor(Shape{512, 64}, 5);
    Tensor y(DType::kInt32, Shape{512});
    Rng lr(6);
    for (int i = 0; i < 512; ++i) {
        y.data<std::int32_t>()[i] =
            static_cast<std::int32_t>(lr.UniformInt(10));
    }
    feeds[labels.node] = y;
    const float first = session.Run(feeds, {loss}, {train})[0].scalar_value();
    float last = first;
    for (int i = 0; i < 10; ++i) {
        last = session.Run(feeds, {loss}, {train})[0].scalar_value();
    }
    EXPECT_LT(last, first);  // memorizing one big batch.
}

}  // namespace
}  // namespace fathom
