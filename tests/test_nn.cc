/**
 * @file
 * Tests for the layer library: initializers, dense/conv layers,
 * dropout, embeddings, LSTM cells, attention, and optimizers.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "autodiff/gradients.h"
#include "nn/attention.h"
#include "nn/init.h"
#include "nn/layers.h"
#include "nn/lstm.h"
#include "nn/optimizer.h"
#include "ops/register.h"
#include "runtime/session.h"
#include "test_util.h"

namespace fathom::nn {
namespace {

using graph::Output;

class NnTest : public ::testing::Test {
  protected:
    static void SetUpTestSuite() { ops::RegisterStandardOps(); }
};

TEST(InitTest, GlorotUniformBounds)
{
    Rng rng(1);
    const Tensor w = GlorotUniform(rng, Shape{100, 50}, 100, 50);
    const float bound = std::sqrt(6.0f / 150.0f);
    for (std::int64_t i = 0; i < w.num_elements(); ++i) {
        EXPECT_LE(std::fabs(w.data<float>()[i]), bound);
    }
}

TEST(InitTest, HeNormalVariance)
{
    Rng rng(2);
    const Tensor w = HeNormal(rng, Shape{200, 100}, 200);
    double sq = 0.0;
    for (std::int64_t i = 0; i < w.num_elements(); ++i) {
        sq += w.data<float>()[i] * w.data<float>()[i];
    }
    const double var = sq / static_cast<double>(w.num_elements());
    EXPECT_NEAR(var, 2.0 / 200.0, 2.0 / 200.0 * 0.15);
}

TEST(InitTest, TruncatedNormalClipsAtTwoSigma)
{
    Rng rng(3);
    const Tensor w = TruncatedNormal(rng, Shape{5000}, 0.5f);
    for (std::int64_t i = 0; i < w.num_elements(); ++i) {
        EXPECT_LE(std::fabs(w.data<float>()[i]), 1.0f + 1e-5f);
    }
}

TEST(InitTest, Fans)
{
    EXPECT_EQ(DenseFans(Shape{10, 20}), (std::pair<std::int64_t,
                                                   std::int64_t>{10, 20}));
    EXPECT_EQ(ConvFans(Shape{3, 3, 4, 8}),
              (std::pair<std::int64_t, std::int64_t>{36, 72}));
    EXPECT_THROW(DenseFans(Shape{10}), std::invalid_argument);
    EXPECT_THROW(ConvFans(Shape{3, 3, 4}), std::invalid_argument);
}

TEST_F(NnTest, DenseLayerShapesAndParams)
{
    runtime::Session session;
    auto b = session.MakeBuilder();
    Trainables params;
    Rng rng(4);
    const Output x = b.Placeholder("x");
    const Output y = Dense(b, &params, rng, "fc", x, 3, 5,
                           Activation::kRelu);
    EXPECT_EQ(params.params().size(), 2u);  // weights + bias.

    runtime::FeedMap feeds;
    feeds[x.node] = test::RandomTensor(Shape{7, 3});
    const auto out = session.Run(feeds, {y});
    EXPECT_EQ(out[0].shape(), Shape({7, 5}));
    for (std::int64_t i = 0; i < out[0].num_elements(); ++i) {
        EXPECT_GE(out[0].data<float>()[i], 0.0f);  // relu applied.
    }
}

TEST_F(NnTest, SharedDenseAppliesSameWeightsTwice)
{
    runtime::Session session;
    auto b = session.MakeBuilder();
    Trainables params;
    Rng rng(5);
    const auto dense = MakeDense(b, &params, rng, "shared", 4, 4);
    const Output x = b.Placeholder("x");
    const Output y1 = ApplyDense(b, dense, x);
    const Output y2 = ApplyDense(b, dense, x);
    runtime::FeedMap feeds;
    feeds[x.node] = test::RandomTensor(Shape{2, 4});
    const auto out = session.Run(feeds, {y1, y2});
    test::ExpectTensorNear(out[0], out[1]);
    EXPECT_EQ(params.params().size(), 2u);  // one weight set only.
}

TEST_F(NnTest, Conv2DLayerShape)
{
    runtime::Session session;
    auto b = session.MakeBuilder();
    Trainables params;
    Rng rng(6);
    const Output x = b.Placeholder("x");
    const Output y =
        Conv2DLayer(b, &params, rng, "conv", x, 3, 2, 8, 2, "SAME");
    runtime::FeedMap feeds;
    feeds[x.node] = test::RandomTensor(Shape{1, 8, 8, 2});
    const auto out = session.Run(feeds, {y});
    EXPECT_EQ(out[0].shape(), Shape({1, 4, 4, 8}));
}

TEST_F(NnTest, DropoutIdentityAtInferenceAndUnbiasedAtTraining)
{
    runtime::Session session;
    auto b = session.MakeBuilder();
    const Output x = b.Placeholder("x");
    const Output infer = Dropout(b, x, 0.5f, /*training=*/false);
    EXPECT_EQ(infer.node, x.node);  // no nodes added.

    const Output train = Dropout(b, x, 0.5f, /*training=*/true);
    runtime::FeedMap feeds;
    feeds[x.node] = Tensor::Full(Shape{10000}, 1.0f);
    const auto out = session.Run(feeds, {train});
    double sum = 0.0;
    int zeros = 0;
    for (std::int64_t i = 0; i < out[0].num_elements(); ++i) {
        sum += out[0].data<float>()[i];
        zeros += out[0].data<float>()[i] == 0.0f;
    }
    // E[mask * x] = x, and about half the entries are dropped.
    EXPECT_NEAR(sum / 10000.0, 1.0, 0.05);
    EXPECT_NEAR(zeros / 10000.0, 0.5, 0.05);
}

TEST_F(NnTest, EmbeddingLookupShape)
{
    runtime::Session session;
    auto b = session.MakeBuilder();
    Trainables params;
    Rng rng(7);
    const Output idx = b.Placeholder("idx");
    const Output e = Embedding(b, &params, rng, "embed", idx, 50, 16);
    runtime::FeedMap feeds;
    feeds[idx.node] = Tensor::FromVectorInt(Shape{3, 4},
                                            {0, 1, 2, 3, 4, 5, 6, 7, 8, 9,
                                             10, 49});
    const auto out = session.Run(feeds, {e});
    EXPECT_EQ(out[0].shape(), Shape({3, 4, 16}));
}

TEST_F(NnTest, LstmCellStepShapesAndStateEvolution)
{
    runtime::Session session;
    auto b = session.MakeBuilder();
    Trainables params;
    Rng rng(8);
    LstmCell cell(b, &params, rng, "lstm", 6, 10);
    auto state = cell.ZeroState(b, 3);
    const Output x = b.Placeholder("x");
    const auto next = cell.Step(b, x, state);

    runtime::FeedMap feeds;
    feeds[x.node] = test::RandomTensor(Shape{3, 6});
    const auto out = session.Run(feeds, {next.h, next.c});
    EXPECT_EQ(out[0].shape(), Shape({3, 10}));
    EXPECT_EQ(out[1].shape(), Shape({3, 10}));
    // Non-zero hidden state after one step with random input.
    double norm = 0.0;
    for (std::int64_t i = 0; i < out[0].num_elements(); ++i) {
        norm += std::fabs(out[0].data<float>()[i]);
    }
    EXPECT_GT(norm, 0.0);
    // h = o * tanh(c) is bounded in (-1, 1).
    for (std::int64_t i = 0; i < out[0].num_elements(); ++i) {
        EXPECT_LT(std::fabs(out[0].data<float>()[i]), 1.0f);
    }
}

TEST_F(NnTest, LstmForgetBiasInitializedToOne)
{
    runtime::Session session;
    auto b = session.MakeBuilder();
    Trainables params;
    Rng rng(9);
    LstmCell cell(b, &params, rng, "lstm", 4, 8);
    const Tensor& bias = session.variables().Get("lstm/bias");
    // Layout: [i, f, g, o] x hidden.
    for (std::int64_t i = 0; i < 8; ++i) {
        EXPECT_EQ(bias.data<float>()[i], 0.0f);       // input gate.
        EXPECT_EQ(bias.data<float>()[8 + i], 1.0f);   // forget gate.
        EXPECT_EQ(bias.data<float>()[16 + i], 0.0f);  // cell gate.
    }
}

TEST_F(NnTest, LstmStackUnrollsAndLearns)
{
    // A 1-layer LSTM over 4 steps must learn to output the *first*
    // input's sign at the last step (a memory task).
    runtime::Session session(11);
    auto b = session.MakeBuilder();
    Trainables params;
    Rng rng(10);
    std::vector<LstmCell> cells;
    cells.emplace_back(b, &params, rng, "l0", 1, 12);

    std::vector<Output> inputs;
    for (int t = 0; t < 4; ++t) {
        inputs.push_back(b.Placeholder("x" + std::to_string(t)));
    }
    const auto result = RunLstmStack(b, cells, inputs, /*batch=*/8);
    ASSERT_EQ(result.outputs.size(), 4u);
    ASSERT_EQ(result.final_states.size(), 1u);

    const auto head = MakeDense(b, &params, rng, "head", 12, 1);
    const Output y = ApplyDense(b, head, result.outputs.back());
    const Output target = b.Placeholder("target");
    const Output loss = b.ReduceMean(b.Square(b.Sub(y, target)), {}, false);
    const auto train_op =
        Minimize(b, loss, params, OptimizerConfig::Adam(0.02f));

    Rng data_rng(12);
    float final_loss = 1e9f;
    for (int step = 0; step < 150; ++step) {
        runtime::FeedMap feeds;
        Tensor first(DType::kFloat32, Shape{8, 1});
        for (int i = 0; i < 8; ++i) {
            first.data<float>()[i] = data_rng.Uniform() < 0.5 ? -1.0f : 1.0f;
        }
        feeds[inputs[0].node] = first;
        for (int t = 1; t < 4; ++t) {
            feeds[inputs[static_cast<std::size_t>(t)].node] =
                test::RandomTensor(Shape{8, 1}, 100 + step * 4 + t, 0.3f);
        }
        feeds[target.node] = first;
        final_loss = session.Run(feeds, {loss}, {train_op})[0].scalar_value();
    }
    EXPECT_LT(final_loss, 0.2f);
}

TEST_F(NnTest, AttentionContextShapeAndWeighting)
{
    runtime::Session session;
    auto b = session.MakeBuilder();
    Trainables params;
    Rng rng(13);
    AdditiveAttention attn(b, &params, rng, "attn", 6, 4, 5);

    std::vector<Output> enc;
    for (int t = 0; t < 3; ++t) {
        enc.push_back(b.Placeholder("enc" + std::to_string(t)));
    }
    const Output query = b.Placeholder("q");
    const Output ctx = attn.Context(b, enc, query, /*batch=*/2);

    runtime::FeedMap feeds;
    for (int t = 0; t < 3; ++t) {
        feeds[enc[static_cast<std::size_t>(t)].node] =
            test::RandomTensor(Shape{2, 6}, 200 + t);
    }
    feeds[query.node] = test::RandomTensor(Shape{2, 4}, 210);
    const auto out = session.Run(feeds, {ctx});
    EXPECT_EQ(out[0].shape(), Shape({2, 6}));

    // Context is a convex combination of encoder states: each element
    // lies within the min/max over the states.
    for (std::int64_t b_i = 0; b_i < 2; ++b_i) {
        for (std::int64_t d = 0; d < 6; ++d) {
            float lo = 1e9f;
            float hi = -1e9f;
            for (int t = 0; t < 3; ++t) {
                const float v =
                    feeds[enc[static_cast<std::size_t>(t)].node]
                        .data<float>()[b_i * 6 + d];
                lo = std::min(lo, v);
                hi = std::max(hi, v);
            }
            const float c = out[0].data<float>()[b_i * 6 + d];
            EXPECT_GE(c, lo - 1e-4f);
            EXPECT_LE(c, hi + 1e-4f);
        }
    }
}

TEST_F(NnTest, AttentionRejectsEmptyStates)
{
    runtime::Session session;
    auto b = session.MakeBuilder();
    Trainables params;
    Rng rng(14);
    AdditiveAttention attn(b, &params, rng, "attn", 4, 4, 4);
    const Output q = b.Placeholder("q");
    EXPECT_THROW(attn.Context(b, {}, q, 1), std::invalid_argument);
}

TEST_F(NnTest, BatchNormInferenceUsesRunningStats)
{
    runtime::Session session(40);
    auto b = session.MakeBuilder();
    Trainables params;
    const auto bn = MakeBatchNorm(b, &params, "bn", 3, 1e-3f);
    const Output x = b.Placeholder("x");

    const auto train = ApplyBatchNormTraining(b, bn, x, /*momentum=*/0.0f);
    const Output infer = ApplyBatchNormInference(b, bn, x);

    // A batch with known per-channel statistics.
    Tensor batch = test::RandomTensor(Shape{64, 3}, 41, 2.0f);
    runtime::FeedMap feeds;
    feeds[x.node] = batch;

    // With momentum 0 the running stats become exactly the batch stats
    // after one update...
    session.Run(feeds, {train.y}, train.stat_updates);
    // ...so inference on the same batch must match training output.
    const auto train_out = session.Run(feeds, {train.y});
    const auto infer_out = session.Run(feeds, {infer});
    test::ExpectTensorNear(train_out[0], infer_out[0], 1e-3f);
}

TEST_F(NnTest, BatchNormRunningStatsConvergeWithMomentum)
{
    runtime::Session session(42);
    auto b = session.MakeBuilder();
    Trainables params;
    const auto bn = MakeBatchNorm(b, &params, "bn", 2);
    const Output x = b.Placeholder("x");
    const auto train = ApplyBatchNormTraining(b, bn, x, /*momentum=*/0.8f);

    // Feed batches with mean ~5 and ~-2 per channel repeatedly.
    Rng rng(43);
    for (int step = 0; step < 60; ++step) {
        Tensor batch(DType::kFloat32, Shape{32, 2});
        for (int i = 0; i < 32; ++i) {
            batch.data<float>()[i * 2 + 0] = rng.Normal(5.0f, 1.0f);
            batch.data<float>()[i * 2 + 1] = rng.Normal(-2.0f, 0.5f);
        }
        runtime::FeedMap feeds;
        feeds[x.node] = batch;
        session.Run(feeds, {train.y}, train.stat_updates);
    }
    const Tensor& mean = session.variables().Get(bn.running_mean_name);
    const Tensor& var = session.variables().Get(bn.running_var_name);
    EXPECT_NEAR(mean.data<float>()[0], 5.0f, 0.3f);
    EXPECT_NEAR(mean.data<float>()[1], -2.0f, 0.3f);
    EXPECT_NEAR(var.data<float>()[0], 1.0f, 0.3f);
    EXPECT_NEAR(var.data<float>()[1], 0.25f, 0.15f);
}

TEST_F(NnTest, BatchNormRunningStatsAreNotTrainable)
{
    runtime::Session session(44);
    auto b = session.MakeBuilder();
    Trainables params;
    MakeBatchNorm(b, &params, "bn", 4);
    // Only gamma and beta are registered as trainables.
    EXPECT_EQ(params.params().size(), 2u);
}

TEST_F(NnTest, GradientClippingBoundsUpdates)
{
    // With clip_value = c and SGD lr, one step moves each weight by at
    // most lr * c regardless of the raw gradient magnitude.
    runtime::Session session(30);
    auto b = session.MakeBuilder();
    Trainables params;
    const graph::Output w =
        params.NewVariable(b, "w", Tensor::FromVector({0.0f}));
    // loss = 1000 * w => raw gradient 1000.
    const graph::Output loss = b.ReduceSum(
        b.Mul(w, b.ScalarConst(1000.0f)), {}, false);
    auto config = OptimizerConfig::Sgd(0.1f);
    config.clip_value = 1.0f;
    const auto train_op = Minimize(b, loss, params, config);
    session.Run({}, {}, {train_op});
    // Unclipped step would be -100; clipped step is -0.1.
    EXPECT_NEAR(session.variables().Get("w").data<float>()[0], -0.1f,
                1e-5f);
}

TEST_F(NnTest, OptimizerConfigFactories)
{
    EXPECT_EQ(OptimizerConfig::Sgd(0.1f).kind, OptimizerKind::kSgd);
    EXPECT_EQ(OptimizerConfig::Momentum(0.1f).kind,
              OptimizerKind::kMomentum);
    EXPECT_EQ(OptimizerConfig::RmsProp(0.1f).kind, OptimizerKind::kRmsProp);
    EXPECT_EQ(OptimizerConfig::Adam(0.1f).kind, OptimizerKind::kAdam);
    EXPECT_FLOAT_EQ(OptimizerConfig::Adam(0.02f).learning_rate, 0.02f);
}

class OptimizerConvergenceTest
    : public ::testing::TestWithParam<OptimizerKind> {
  protected:
    static void SetUpTestSuite() { ops::RegisterStandardOps(); }
};

TEST_P(OptimizerConvergenceTest, FitsLinearRegression)
{
    // y = 2x - 1 with all four optimizers.
    runtime::Session session(20);
    auto b = session.MakeBuilder();
    Trainables params;
    Rng rng(21);
    const Output x = b.Placeholder("x");
    const Output target = b.Placeholder("target");
    const Output y = Dense(b, &params, rng, "linear", x, 1, 1);
    const Output loss = b.ReduceMean(b.Square(b.Sub(y, target)), {}, false);

    OptimizerConfig config;
    config.kind = GetParam();
    config.learning_rate =
        GetParam() == OptimizerKind::kAdam ? 0.05f : 0.05f;
    const auto train_op = Minimize(b, loss, params, config);

    Rng data_rng(22);
    float final_loss = 1e9f;
    for (int step = 0; step < 400; ++step) {
        Tensor xs(DType::kFloat32, Shape{16, 1});
        Tensor ys(DType::kFloat32, Shape{16, 1});
        for (int i = 0; i < 16; ++i) {
            const float v = data_rng.UniformFloat(-1.0f, 1.0f);
            xs.data<float>()[i] = v;
            ys.data<float>()[i] = 2.0f * v - 1.0f;
        }
        runtime::FeedMap feeds;
        feeds[x.node] = xs;
        feeds[target.node] = ys;
        final_loss = session.Run(feeds, {loss}, {train_op})[0].scalar_value();
    }
    EXPECT_LT(final_loss, 0.01f);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, OptimizerConvergenceTest,
                         ::testing::Values(OptimizerKind::kSgd,
                                           OptimizerKind::kMomentum,
                                           OptimizerKind::kRmsProp,
                                           OptimizerKind::kAdam));

}  // namespace
}  // namespace fathom::nn
