/**
 * @file
 * Property-style tests: randomized shape sweeps checking algebraic
 * invariants of kernels and the runtime (roundtrips, adjoints,
 * determinism), complementing the example-based tests.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "kernels/data_movement.h"
#include "kernels/elementwise.h"
#include "kernels/matmul.h"
#include "kernels/reduction.h"
#include "autodiff/gradients.h"
#include "ops/register.h"
#include "runtime/session.h"
#include "test_util.h"

namespace fathom {
namespace {

using test::ExpectTensorNear;
using test::RandomTensor;

parallel::ThreadPool&
Pool()
{
    static parallel::ThreadPool pool(1);
    return pool;
}

/** Draws a random shape with rank in [1, max_rank], dims in [1, 5]. */
Shape
RandomShape(Rng& rng, int max_rank)
{
    const int rank = 1 + static_cast<int>(rng.UniformInt(max_rank));
    std::vector<std::int64_t> dims;
    for (int i = 0; i < rank; ++i) {
        dims.push_back(1 + rng.UniformInt(5));
    }
    return Shape(dims);
}

class RandomizedTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomizedTest, TransposeIsAnInvolutionUnderInversePerm)
{
    Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
    const Shape shape = RandomShape(rng, 4);
    const Tensor t = RandomTensor(shape, 77 + GetParam());

    // Random permutation and its inverse.
    std::vector<int> perm(static_cast<std::size_t>(shape.rank()));
    std::iota(perm.begin(), perm.end(), 0);
    for (std::size_t i = perm.size(); i > 1; --i) {
        std::swap(perm[i - 1],
                  perm[static_cast<std::size_t>(rng.UniformInt(
                      static_cast<std::int64_t>(i)))]);
    }
    std::vector<int> inverse(perm.size());
    for (std::size_t i = 0; i < perm.size(); ++i) {
        inverse[static_cast<std::size_t>(perm[i])] = static_cast<int>(i);
    }

    const Tensor round_trip = kernels::Transpose(
        kernels::Transpose(t, perm, Pool()), inverse, Pool());
    ExpectTensorNear(t, round_trip);
}

TEST_P(RandomizedTest, PadThenPadGradIsIdentity)
{
    Rng rng(2000 + static_cast<std::uint64_t>(GetParam()));
    const Shape shape = RandomShape(rng, 3);
    const Tensor t = RandomTensor(shape, 88 + GetParam());
    std::vector<std::pair<std::int64_t, std::int64_t>> paddings;
    for (int d = 0; d < shape.rank(); ++d) {
        paddings.emplace_back(rng.UniformInt(3), rng.UniformInt(3));
    }
    const Tensor padded = kernels::Pad(t, paddings, Pool());
    ExpectTensorNear(t, kernels::PadGrad(padded, paddings, Pool()));
}

TEST_P(RandomizedTest, TileGradIsAdjointOfTile)
{
    // <Tile(x), g> == <x, TileGrad(g)> for random shapes/multiples.
    Rng rng(3000 + static_cast<std::uint64_t>(GetParam()));
    const Shape shape = RandomShape(rng, 3);
    std::vector<std::int64_t> multiples;
    for (int d = 0; d < shape.rank(); ++d) {
        multiples.push_back(1 + rng.UniformInt(3));
    }
    const Tensor x = RandomTensor(shape, 99 + GetParam());
    const Tensor tiled = kernels::Tile(x, multiples, Pool());
    const Tensor g = RandomTensor(tiled.shape(), 111 + GetParam());
    const Tensor gx = kernels::TileGrad(g, shape, multiples, Pool());

    double lhs = 0.0;
    for (std::int64_t i = 0; i < tiled.num_elements(); ++i) {
        lhs += static_cast<double>(tiled.data<float>()[i]) *
               g.data<float>()[i];
    }
    double rhs = 0.0;
    for (std::int64_t i = 0; i < x.num_elements(); ++i) {
        rhs += static_cast<double>(x.data<float>()[i]) *
               gx.data<float>()[i];
    }
    EXPECT_NEAR(lhs, rhs, 1e-2 * std::max(1.0, std::fabs(lhs)));
}

TEST_P(RandomizedTest, BroadcastAddCommutes)
{
    Rng rng(4000 + static_cast<std::uint64_t>(GetParam()));
    const Shape a_shape = RandomShape(rng, 3);
    // b: drop leading dims and/or squash random dims to 1.
    std::vector<std::int64_t> b_dims;
    const int drop = static_cast<int>(rng.UniformInt(a_shape.rank()));
    for (int d = drop; d < a_shape.rank(); ++d) {
        b_dims.push_back(rng.Uniform() < 0.4 ? 1 : a_shape.dim(d));
    }
    if (b_dims.empty()) {
        b_dims.push_back(1);
    }
    const Tensor a = RandomTensor(a_shape, 121 + GetParam());
    const Tensor b = RandomTensor(Shape(b_dims), 131 + GetParam());
    auto add = [](float x, float y) { return x + y; };
    ExpectTensorNear(kernels::BinaryMap(a, b, add, Pool()),
                     kernels::BinaryMap(b, a, add, Pool()));
}

TEST_P(RandomizedTest, ReduceToShapeIsAdjointOfBroadcast)
{
    // <broadcast(b, shape(a)), g> == <b, ReduceToShape(g, shape(b))>
    Rng rng(5000 + static_cast<std::uint64_t>(GetParam()));
    const Shape a_shape = RandomShape(rng, 3);
    std::vector<std::int64_t> b_dims;
    for (int d = 0; d < a_shape.rank(); ++d) {
        b_dims.push_back(rng.Uniform() < 0.5 ? 1 : a_shape.dim(d));
    }
    const Shape b_shape(b_dims);
    const Tensor b = RandomTensor(b_shape, 141 + GetParam());
    const Tensor g = RandomTensor(a_shape, 151 + GetParam());

    // broadcast(b) realized via BinaryMap(+0).
    const Tensor zeros = Tensor::Zeros(a_shape);
    const Tensor broadcast = kernels::BinaryMap(
        b, zeros, [](float x, float y) { return x + y; }, Pool());

    double lhs = 0.0;
    for (std::int64_t i = 0; i < g.num_elements(); ++i) {
        lhs += static_cast<double>(broadcast.data<float>()[i]) *
               g.data<float>()[i];
    }
    const Tensor reduced = kernels::ReduceToShape(g, b_shape, Pool());
    double rhs = 0.0;
    for (std::int64_t i = 0; i < b.num_elements(); ++i) {
        rhs += static_cast<double>(b.data<float>()[i]) *
               reduced.data<float>()[i];
    }
    EXPECT_NEAR(lhs, rhs, 1e-2 * std::max(1.0, std::fabs(lhs)));
}

TEST_P(RandomizedTest, ReduceSumOverAllAxesMatchesAccumulate)
{
    Rng rng(6000 + static_cast<std::uint64_t>(GetParam()));
    const Shape shape = RandomShape(rng, 4);
    const Tensor t = RandomTensor(shape, 161 + GetParam());
    double expected = 0.0;
    for (std::int64_t i = 0; i < t.num_elements(); ++i) {
        expected += t.data<float>()[i];
    }
    const Tensor sum =
        kernels::Reduce(t, kernels::ReduceOp::kSum, {}, false, Pool());
    EXPECT_NEAR(sum.scalar_value(), expected,
                1e-3 * std::max(1.0, std::fabs(expected)));
}

TEST_P(RandomizedTest, MatMulIdentityIsIdentity)
{
    Rng rng(7000 + static_cast<std::uint64_t>(GetParam()));
    const std::int64_t n = 1 + rng.UniformInt(8);
    const std::int64_t m = 1 + rng.UniformInt(8);
    const Tensor a = RandomTensor(Shape{m, n}, 171 + GetParam());
    Tensor eye = Tensor::Zeros(Shape{n, n});
    for (std::int64_t i = 0; i < n; ++i) {
        eye.data<float>()[i * n + i] = 1.0f;
    }
    ExpectTensorNear(a, kernels::MatMul(a, eye, false, false, Pool()),
                     1e-5f);
}

INSTANTIATE_TEST_SUITE_P(Trials, RandomizedTest, ::testing::Range(0, 8));

TEST(DeterminismTest, SameSeedSameTrainingTrajectory)
{
    ops::RegisterStandardOps();
    auto run = [](std::uint64_t seed) {
        runtime::Session session(seed);
        auto b = session.MakeBuilder();
        std::string var;
        const graph::Output w =
            b.Variable("w", Tensor::FromVector({1.0f, -1.0f}), &var);
        const graph::Output noise = b.RandomNormal({2}, 0.0f, 0.1f);
        const graph::Output loss = b.ReduceSum(
            b.Square(b.Add(w, noise)), {}, false);
        const auto grads = autodiff::BuildGradients(b, loss, {w});
        const auto update = b.ApplyGradientDescent(var, grads[0], 0.05f);
        float last = 0.0f;
        for (int i = 0; i < 20; ++i) {
            last = session.Run({}, {loss}, {update})[0].scalar_value();
        }
        return last;
    };
    EXPECT_EQ(run(42), run(42));
    EXPECT_NE(run(42), run(43));
}

}  // namespace
}  // namespace fathom
