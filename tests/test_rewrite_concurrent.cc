/**
 * @file
 * Concurrency battery for the graph rewrite framework (built for the
 * TSan CI job): fused-elementwise and in-place steps executed under
 * inter-op parallelism must race-free reproduce the sequential bits.
 *
 * The in-place grant is the delicate part — a kernel writing into its
 * input's buffer while another lane still held a reference would be a
 * data race, so the executor only grants the alias when the liveness
 * proof AND the runtime refcount agree the input dies at this consumer.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>

#include "graph/rewrite/rewrite.h"
#include "ops/register.h"
#include "runtime/session.h"
#include "workloads/workload.h"
#include "test_util.h"

namespace fathom::runtime {
namespace {

using graph::Output;
using test::RandomTensor;

void
ExpectBitIdentical(const Tensor& expected, const Tensor& actual,
                   const std::string& what)
{
    ASSERT_EQ(expected.dtype(), actual.dtype()) << what;
    ASSERT_TRUE(expected.shape() == actual.shape()) << what;
    EXPECT_EQ(0, std::memcmp(expected.data<float>(), actual.data<float>(),
                             expected.byte_size()))
        << what << ": bytes differ from the sequential run";
}

class RewriteConcurrentTest : public ::testing::Test {
  protected:
    static void SetUpTestSuite() { ops::RegisterStandardOps(); }
};

/**
 * Eight parallel elementwise chains fanning into an AddN: fusion
 * collapses each chain to one FusedElementwise, in-place lets AddN and
 * the chain heads write into dying buffers, and the inter-op executor
 * runs the chains on different lanes simultaneously.
 */
TEST_F(RewriteConcurrentTest, FusedChainFanOutHammerBattery)
{
    auto run = [](int inter, int iterations) {
        Session session(3);
        session.SetGraphOptimization(true);
        session.SetInterOpThreads(inter);
        auto b = session.MakeBuilder();
        const Output x = b.Placeholder("x");
        std::vector<Output> chains;
        for (int i = 0; i < 8; ++i) {
            const float shift = 0.1f * static_cast<float>(i + 1);
            chains.push_back(b.Tanh(b.Relu(
                b.Add(b.Mul(x, b.ScalarConst(shift)),
                      b.ScalarConst(shift)))));
        }
        const Output y = b.ReduceSum(b.AddN(chains), {}, false);

        std::vector<Tensor> results;
        for (int it = 0; it < iterations; ++it) {
            FeedMap feeds;
            feeds[x.node] =
                RandomTensor(Shape{512}, static_cast<std::uint64_t>(it));
            results.push_back(session.Run(feeds, {y})[0].Clone());
        }
        return results;
    };

    constexpr int kIterations = 20;
    const auto sequential = run(1, kIterations);
    for (int inter : {2, 4}) {
        const auto parallel = run(inter, kIterations);
        ASSERT_EQ(sequential.size(), parallel.size());
        for (int it = 0; it < kIterations; ++it) {
            ExpectBitIdentical(sequential[static_cast<std::size_t>(it)],
                               parallel[static_cast<std::size_t>(it)],
                               "inter=" + std::to_string(inter) +
                                   " iteration=" + std::to_string(it));
        }
    }
}

/**
 * Pattern-toggled workloads under inter-op parallelism: with fusion
 * and in-place enabled (alone and together), training across inter-op
 * widths {1, 2, 4} leaves the loss and every variable bit-identical.
 */
TEST_F(RewriteConcurrentTest, WorkloadRewritesInterOpBitIdenticalBattery)
{
    workloads::RegisterAllWorkloads();

    graph::rewrite::RewriteOptions fusion_only;
    fusion_only.constant_folding = false;
    fusion_only.common_subexpression = false;
    fusion_only.transpose_folding = false;
    fusion_only.inplace = false;
    graph::rewrite::RewriteOptions inplace_only = fusion_only;
    inplace_only.elementwise_fusion = false;
    inplace_only.inplace = true;
    const graph::rewrite::RewriteOptions all_on;

    struct Variant {
        std::string label;
        graph::rewrite::RewriteOptions opts;
    };
    const std::vector<Variant> variants = {{"fusion", fusion_only},
                                           {"inplace", inplace_only},
                                           {"all", all_on}};

    for (const std::string name : {"autoenc", "memnet", "deepq"}) {
        SCOPED_TRACE(name);
        for (const auto& variant : variants) {
            SCOPED_TRACE(variant.label);

            auto run_once = [&](int inter) {
                auto workload =
                    workloads::WorkloadRegistry::Global().Create(name);
                workloads::WorkloadConfig config;
                config.seed = 7;
                config.batch_size = 4;
                config.inter_op_threads = inter;
                config.graph_rewrites = true;
                config.rewrites = variant.opts;
                workload->Setup(config);
                const float loss = workload->RunTraining(2).final_loss;
                std::map<std::string, Tensor> variables;
                for (const auto& var :
                     workload->session().variables().Names()) {
                    variables[var] =
                        workload->session().variables().Get(var).Clone();
                }
                return std::make_pair(loss, std::move(variables));
            };

            const auto [base_loss, base_vars] = run_once(1);
            for (int inter : {2, 4}) {
                SCOPED_TRACE("inter=" + std::to_string(inter));
                const auto [loss, vars] = run_once(inter);
                EXPECT_EQ(base_loss, loss);
                ASSERT_EQ(base_vars.size(), vars.size());
                for (const auto& [var_name, expected] : base_vars) {
                    const auto it = vars.find(var_name);
                    ASSERT_NE(it, vars.end()) << var_name;
                    ExpectBitIdentical(expected, it->second, var_name);
                }
            }
        }
    }
}

}  // namespace
}  // namespace fathom::runtime
