/**
 * @file
 * Registry completeness audit.
 *
 * Every registered op must carry a kernel AND a cost function: the
 * roofline report and the device model divide by and join on OpCost,
 * so a null CostFn silently degrades a whole op type to the executor's
 * bytes-only fallback. This test enumerates the real registry after
 * full workload registration, so adding an op without a cost model
 * fails CI by name.
 */
#include <gtest/gtest.h>

#include "graph/op_registry.h"
#include "graph/verify/shape_inference.h"
#include "workloads/workload.h"

namespace fathom {
namespace {

TEST(RegistryAuditTest, EveryOpHasKernelAndCostFn)
{
    workloads::RegisterAllWorkloads();
    const graph::OpRegistry& registry = graph::OpRegistry::Global();
    const auto names = registry.Names();
    ASSERT_GT(names.size(), 30u) << "registry suspiciously small";
    for (const auto& name : names) {
        const graph::OpDef& def = registry.Lookup(name);
        EXPECT_TRUE(static_cast<bool>(def.kernel))
            << "op '" << name << "' has no kernel";
        EXPECT_TRUE(static_cast<bool>(def.cost))
            << "op '" << name
            << "' has no CostFn: roofline/device-model analyses would "
               "fall back to a bytes-only estimate for it";
        EXPECT_EQ(def.name, name);
    }
}

TEST(RegistryAuditTest, EveryOpHasShapeInferenceFn)
{
    // The static graph verifier (graph/verify/) propagates shapes and
    // dtypes through every plan it checks; an op without a registered
    // shape fn degrades its whole downstream cone to "unknown type" and
    // is itself flagged as a [missing-shape-fn] diagnostic on every
    // plan build. Adding an op without one fails here by name.
    workloads::RegisterAllWorkloads();
    const graph::OpRegistry& registry = graph::OpRegistry::Global();
    const auto& shapes = graph::verify::ShapeFnRegistry::Global();
    for (const auto& name : registry.Names()) {
        EXPECT_TRUE(shapes.Contains(name))
            << "op '" << name
            << "' has no shape/dtype inference fn: register one next to "
               "its kernel (see graph/verify/shape_inference.h)";
    }
}

TEST(RegistryAuditTest, ShapeFnRegistryHasNoOrphans)
{
    // The reverse direction: a shape fn for an op that is not in the
    // kernel registry is a typo'd name that silently checks nothing.
    workloads::RegisterAllWorkloads();
    const graph::OpRegistry& registry = graph::OpRegistry::Global();
    for (const auto& name : graph::verify::ShapeFnRegistry::Global().Names()) {
        EXPECT_TRUE(registry.Contains(name))
            << "shape fn registered for unknown op '" << name << "'";
    }
}

TEST(RegistryAuditTest, CostFnsReturnFiniteNonNegativeCosts)
{
    // Zero-input smoke of the cost hooks that don't need real tensors:
    // the data-movement default must be well-behaved on empty i/o.
    workloads::RegisterAllWorkloads();
    const graph::OpRegistry& registry = graph::OpRegistry::Global();
    graph::Node node;
    node.op_type = "NoOp";
    const graph::OpCost cost =
        registry.Lookup("NoOp").cost(node, {}, {});
    EXPECT_EQ(cost.flops, 0.0);
    EXPECT_EQ(cost.bytes, 0.0);
    EXPECT_GE(cost.parallel_work, 1);
}

}  // namespace
}  // namespace fathom
