/**
 * @file
 * Concurrency and determinism tests for the telemetry subsystem.
 *
 * The metrics registry must take updates from any thread without
 * losing counts (the TSan CI job runs these under `ctest -L
 * concurrency`), the executor must attribute concurrent ops to
 * distinct worker lanes with genuinely overlapping timestamps, and the
 * deterministic observables — canonical trace order and the
 * scheduling-invariant metric subset — must be identical across
 * inter-op widths 1/2/4.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "graph/op_registry.h"
#include "graph/verify/shape_inference.h"
#include "ops/register.h"
#include "runtime/session.h"
#include "telemetry/metrics.h"

namespace fathom {
namespace {

using graph::Output;

TEST(TelemetryConcurrentTest, RegistryHammeredFromManyThreadsLosesNothing)
{
    constexpr int kThreads = 8;
    constexpr int kPerThread = 20000;
    auto& registry = telemetry::MetricsRegistry::Global();
    telemetry::MetricsRegistry::set_enabled(true);
    telemetry::Counter& shared = registry.GetCounter("test.hammer_shared");
    telemetry::Histogram& hist = registry.GetHistogram("test.hammer_hist");
    shared.Reset();
    hist.Reset();

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t, &registry, &shared, &hist] {
            // Mix pre-resolved references with registry lookups so the
            // create-or-get path itself races too.
            telemetry::Counter& own = registry.GetCounter(
                "test.hammer_own_" + std::to_string(t));
            own.Reset();
            for (int i = 0; i < kPerThread; ++i) {
                shared.Add(1);
                own.Add(1);
                hist.Observe(static_cast<std::uint64_t>(i % 128));
            }
        });
    }
    for (auto& thread : threads) {
        thread.join();
    }
    telemetry::MetricsRegistry::set_enabled(false);

    EXPECT_EQ(shared.value(),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
    const auto snapshot = registry.Snapshot();
    for (int t = 0; t < kThreads; ++t) {
        EXPECT_EQ(snapshot.CounterValue("test.hammer_own_" +
                                        std::to_string(t)),
                  static_cast<std::uint64_t>(kPerThread));
    }
    const auto h = snapshot.HistogramValue("test.hammer_hist");
    EXPECT_EQ(h.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
}

/**
 * Rendezvous state for the overlap test: each of the two kernels
 * arrives, wakes the other, and only returns once both have arrived —
 * so their traced [start, end) intervals MUST overlap and the inter-op
 * executor MUST have dispatched them on two different lanes (a single
 * lane running one of them could never complete it).
 */
struct Rendezvous {
    std::mutex mu;
    std::condition_variable cv;
    int arrived = 0;

    void
    ArriveAndWait()
    {
        std::unique_lock<std::mutex> lock(mu);
        ++arrived;
        cv.notify_all();
        cv.wait(lock, [this] { return arrived >= 2; });
    }

    static Rendezvous&
    Get()
    {
        static Rendezvous r;
        return r;
    }
};

void
RegisterRendezvousOp()
{
    static std::once_flag once;
    std::call_once(once, [] {
        graph::OpRegistry::Global().Register(graph::OpDef{
            "TestRendezvous", graph::OpClass::kElementwise,
            [](graph::OpContext& ctx) {
                Rendezvous::Get().ArriveAndWait();
                ctx.set_output(0, ctx.input(0));
            },
            nullptr, false});
        // Custom ops need a shape fn or the plan-build verifier flags
        // them; the rendezvous op passes its input through unchanged.
        graph::verify::ShapeFnRegistry::Global().Register(
            "TestRendezvous", [](graph::verify::InferenceContext& ctx) {
                ctx.set_output(0, ctx.input(0));
            });
    });
}

TEST(TelemetryConcurrentTest, ConcurrentOpsOverlapOnDistinctWorkerLanes)
{
    ops::RegisterStandardOps();
    RegisterRendezvousOp();
    Rendezvous::Get().arrived = 0;

    runtime::Session session;
    session.SetInterOpThreads(2);
    auto b = session.MakeBuilder();
    const Output x = b.Placeholder("x");
    const graph::NodeId r1 = b.AddNode("r1", "TestRendezvous", {x});
    const graph::NodeId r2 = b.AddNode("r2", "TestRendezvous", {x});
    const Output y = b.Add(Output{r1, 0}, Output{r2, 0});

    Tensor feed(DType::kFloat32, Shape{16});
    feed.Fill(1.0f);
    runtime::FeedMap feeds;
    feeds[x.node] = feed;
    session.Run(feeds, {y});

    const runtime::StepTrace& step = session.tracer().steps().back();
    const runtime::OpExecRecord* rec1 = nullptr;
    const runtime::OpExecRecord* rec2 = nullptr;
    for (const auto& r : step.records) {
        if (r.op_type == "TestRendezvous") {
            (rec1 == nullptr ? rec1 : rec2) = &r;
        }
    }
    ASSERT_NE(rec1, nullptr);
    ASSERT_NE(rec2, nullptr);

    // Dispatched on two different executor lanes...
    EXPECT_NE(rec1->worker, rec2->worker);
    // ...with genuinely overlapping [start, end) intervals.
    const double overlap_start =
        std::max(rec1->start_seconds, rec2->start_seconds);
    const double overlap_end =
        std::min(rec1->start_seconds + rec1->wall_seconds,
                 rec2->start_seconds + rec2->wall_seconds);
    EXPECT_LT(overlap_start, overlap_end)
        << "rendezvous ops did not overlap: [" << rec1->start_seconds
        << ", " << rec1->start_seconds + rec1->wall_seconds << ") vs ["
        << rec2->start_seconds << ", "
        << rec2->start_seconds + rec2->wall_seconds << ")";

    // The union-based accounting stays sane in the presence of
    // overlap: busy <= sum, overhead clamped non-negative.
    EXPECT_LE(step.BusySeconds(), step.OpSeconds() + 1e-12);
    EXPECT_GE(step.OverheadSeconds(), 0.0);

    // Canonical order is preserved even though completion order is
    // scheduling-dependent.
    std::int64_t prev = -1;
    for (const auto& r : step.records) {
        EXPECT_LT(prev, r.seq);
        prev = r.seq;
    }
}

/** (seq, node, op_type) — the scheduling-invariant part of a record. */
using CanonicalRecord = std::tuple<std::int64_t, graph::NodeId, std::string>;

TEST(TelemetryConcurrentTest, DeterministicObservablesMatchAcrossWidths)
{
    ops::RegisterStandardOps();

    // A diamond of matmul branches: enough independent work for the
    // executor to schedule differently at each width.
    auto run_width = [](int width) {
        telemetry::MetricsRegistry::Global().ResetAll();
        telemetry::MetricsRegistry::set_enabled(true);

        runtime::Session session(/*seed=*/7);
        session.SetInterOpThreads(width);
        session.tracer().set_enabled(true);
        auto b = session.MakeBuilder();
        const Output x = b.Placeholder("x");
        const Output m1 = b.MatMul(x, x);
        const Output m2 = b.MatMul(b.Relu(x), x);
        const Output m3 = b.MatMul(x, b.Tanh(x));
        const Output y = b.MatMul(b.Add(b.Add(m1, m2), m3), x);

        Tensor feed(DType::kFloat32, Shape{48, 48});
        feed.Fill(0.01f);
        runtime::FeedMap feeds;
        feeds[x.node] = feed;
        for (int step = 0; step < 3; ++step) {
            session.Run(feeds, {y});
        }

        std::vector<std::vector<CanonicalRecord>> trace;
        for (const auto& step : session.tracer().steps()) {
            std::vector<CanonicalRecord> records;
            for (const auto& r : step.records) {
                records.emplace_back(r.seq, r.node, r.op_type);
            }
            trace.push_back(std::move(records));
        }
        const auto snapshot =
            telemetry::MetricsRegistry::Global().Snapshot();
        telemetry::MetricsRegistry::set_enabled(false);
        return std::make_tuple(
            trace, snapshot.CounterValue("session.steps"),
            snapshot.CounterValue("session.ops_executed"),
            snapshot.CounterValue("gemm.pack_acquires"));
    };

    const auto base = run_width(1);
    EXPECT_EQ(std::get<1>(base), 3u);
    EXPECT_GT(std::get<2>(base), 0u);
    EXPECT_GT(std::get<3>(base), 0u) << "matmuls must hit the GEMM engine";
    for (int width : {2, 4}) {
        const auto got = run_width(width);
        // Canonical trace: same steps, same records, same order.
        EXPECT_EQ(std::get<0>(got), std::get<0>(base))
            << "canonical trace diverged at inter-op width " << width;
        // Scheduling-invariant metric subset. (Busy/idle time, queue
        // depth, and pool hit rates are genuinely width-dependent and
        // intentionally excluded.)
        EXPECT_EQ(std::get<1>(got), std::get<1>(base));
        EXPECT_EQ(std::get<2>(got), std::get<2>(base));
        EXPECT_EQ(std::get<3>(got), std::get<3>(base));
    }
}

}  // namespace
}  // namespace fathom
