/**
 * @file
 * Integration tests of the suite harness and the end-to-end analysis
 * pipeline (the paths the figure benches exercise), on fast configs.
 */
#include <gtest/gtest.h>

#include "analysis/op_profile.h"
#include "analysis/scaling.h"
#include "analysis/similarity.h"
#include "analysis/stationarity.h"
#include "core/suite.h"
#include "core/table.h"

namespace fathom::core {
namespace {

TEST(SuiteTest, NamesAreTableTwoOrder)
{
    const auto names = SuiteNames();
    ASSERT_EQ(names.size(), 8u);
    EXPECT_EQ(names.front(), "seq2seq");
    EXPECT_EQ(names.back(), "deepq");
}

TEST(SuiteTest, RunAndTraceCollectsBothPhases)
{
    SuiteRunOptions options;
    options.warmup_steps = 1;
    options.train_steps = 2;
    options.infer_steps = 2;
    const auto traces = RunAndTrace("autoenc", options);

    EXPECT_EQ(traces.name, "autoenc");
    EXPECT_EQ(traces.learning_task, "Unsupervised");
    EXPECT_GT(traces.parameters, 0);
    EXPECT_EQ(traces.training.steps().size(), 3u);   // warmup + 2.
    EXPECT_EQ(traces.inference.steps().size(), 3u);
    EXPECT_FALSE(traces.training.steps()[0].records.empty());
}

TEST(SuiteTest, TrainingTraceHasBackwardOpsInferenceDoesNot)
{
    SuiteRunOptions options;
    options.warmup_steps = 0;
    options.train_steps = 1;
    options.infer_steps = 1;
    const auto traces = RunAndTrace("vgg", options);

    auto has_op = [](const runtime::Tracer& tracer, const std::string& type) {
        for (const auto& step : tracer.steps()) {
            for (const auto& r : step.records) {
                if (r.op_type == type) {
                    return true;
                }
            }
        }
        return false;
    };
    EXPECT_TRUE(has_op(traces.training, "Conv2DBackpropFilter"));
    EXPECT_TRUE(has_op(traces.training, "ApplyMomentum"));
    EXPECT_FALSE(has_op(traces.inference, "Conv2DBackpropFilter"));
    EXPECT_FALSE(has_op(traces.inference, "ApplyMomentum"));
    // The VAE's defining trait: sampling during inference. Verify the
    // contrast on autoenc.
    const auto vae = RunAndTrace("autoenc", options);
    EXPECT_TRUE(has_op(vae.inference, "RandomNormal"));
}

TEST(SuiteTest, EndToEndAnalysisPipeline)
{
    // The full Fig. 2-4 pipeline over two cheap workloads.
    SuiteRunOptions options;
    options.warmup_steps = 1;
    options.train_steps = 2;
    options.infer_steps = 0;

    std::vector<std::string> names = {"memnet", "autoenc"};
    std::vector<analysis::OpProfile> profiles;
    for (const auto& name : names) {
        const auto traces = RunAndTrace(name, options);
        profiles.push_back(
            analysis::WallProfile(traces.training, traces.warmup_steps));
        EXPECT_GT(profiles.back().total_seconds(), 0.0);
        EXPECT_GE(profiles.back().TypesToCover(0.9), 1);
    }
    const auto matrix = analysis::ProfileMatrix(profiles);
    const auto merges = analysis::AgglomerativeCluster(matrix);
    ASSERT_EQ(merges.size(), 1u);
    EXPECT_GT(merges[0].distance, 0.0);  // different models differ.
    const auto render = analysis::RenderDendrogram(names, merges);
    EXPECT_NE(render.find("memnet"), std::string::npos);
}

TEST(SuiteTest, ThreadSweepTotalsAreMonotone)
{
    SuiteRunOptions options;
    options.warmup_steps = 0;
    options.train_steps = 1;
    options.infer_steps = 0;
    const auto traces = RunAndTrace("alexnet", options);
    const auto sweep =
        analysis::SweepThreads(traces.training, 0, {1, 2, 4, 8});
    double prev = 1e30;
    for (std::size_t i = 0; i < 4; ++i) {
        const double total = sweep.TotalAt(i);
        EXPECT_LE(total, prev + 1e-12);
        prev = total;
    }
    // Conv-heavy alexnet must show meaningful simulated scaling.
    EXPECT_GT(sweep.TotalAt(0) / sweep.TotalAt(3), 2.0);
}

TEST(ConsoleTableTest, AlignsColumns)
{
    ConsoleTable table;
    table.SetHeader({"a", "long-header", "c"});
    table.AddRow({"wide-cell", "x", "y"});
    const std::string rendered = table.Render();
    // Header and separator present; rows aligned (separator spans
    // full width).
    EXPECT_NE(rendered.find("long-header"), std::string::npos);
    EXPECT_NE(rendered.find("----"), std::string::npos);
    EXPECT_NE(rendered.find("wide-cell"), std::string::npos);
}

TEST(ConsoleTableTest, Formatters)
{
    EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
    EXPECT_EQ(FormatPercent(0.1234, 1), "12.3%");
}

}  // namespace
}  // namespace fathom::core
