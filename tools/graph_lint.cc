/**
 * @file
 * graph_lint: standalone static diagnostics for workload graphs.
 *
 * For each requested workload this builds the model (no training
 * steps), runs the static verifier over the full training graph in
 * unseeded mode — structural validation, attr schema checks, and
 * shape/dtype inference propagating everything derivable from
 * variables and constants — and then freezes the serving endpoint,
 * which re-verifies in frozen mode with TensorSpec-seeded placeholder
 * types. Every diagnostic is printed with its named node; the exit
 * code is the total violation count clamped to 1, so CI can gate on
 * it and archive the report.
 *
 * Usage: graph_lint [--workloads=a,b,...] [--out=FILE]
 *   --workloads  comma-separated subset (default: all eight models).
 *   --out        write the report to FILE instead of stdout.
 */
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "graph/verify/verifier.h"
#include "workloads/workload.h"

namespace {

using namespace fathom;

std::vector<std::string>
SplitCsv(const std::string& csv)
{
    std::vector<std::string> parts;
    std::stringstream stream(csv);
    std::string part;
    while (std::getline(stream, part, ',')) {
        if (!part.empty()) {
            parts.push_back(part);
        }
    }
    return parts;
}

/** Lints one workload; @return its total violation count. */
int
LintWorkload(const std::string& name, std::ostream& out)
{
    auto workload = workloads::WorkloadRegistry::Global().Create(name);
    workloads::WorkloadConfig config;
    config.batch_size = 2;
    config.tracing = false;
    workload->Setup(config);
    const runtime::Session& session = workload->session();

    out << "workload: " << name << "\n";
    int violations = 0;

    // Training graph, unseeded: placeholder types stay unknown and the
    // shape fns propagate what variables/consts determine. This is the
    // whole graph as written — nothing is pruned by a fetch set.
    graph::verify::VerifyOptions options;
    options.variables = &session.variables();
    const graph::verify::VerifyReport report = graph::verify::Verify(
        session.graph(), {}, session.graph().AllNodes(), options);
    int typed = 0;
    for (const auto& [id, types] : report.types) {
        for (const auto& type : types) {
            typed += type.fully_known() ? 1 : 0;
        }
    }
    out << "  train graph: " << report.nodes_checked << " nodes, " << typed
        << " statically typed outputs, " << report.diagnostics.size()
        << " violation(s)\n";
    for (const auto& diagnostic : report.diagnostics) {
        out << "    " << diagnostic.ToString() << "\n";
    }
    violations += static_cast<int>(report.diagnostics.size());

    // Serving graph: Freeze itself runs the verifier in frozen mode
    // (TensorSpec-seeded types, stateful ops are violations) and
    // throws the full report text on any finding.
    try {
        const auto plan = workload->FreezeServingPlan();
        out << "  serving freeze: OK (frozen-mode verification passed)\n";
        (void)plan;
    } catch (const std::exception& e) {
        out << "  serving freeze: FAILED\n    " << e.what() << "\n";
        ++violations;
    }
    return violations;
}

}  // namespace

int
main(int argc, char** argv)
{
    std::vector<std::string> names;
    std::string out_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--workloads=", 0) == 0) {
            names = SplitCsv(arg.substr(12));
        } else if (arg.rfind("--out=", 0) == 0) {
            out_path = arg.substr(6);
        } else {
            std::cerr << "usage: graph_lint [--workloads=a,b,...] "
                         "[--out=FILE]\n";
            return 2;
        }
    }

    workloads::RegisterAllWorkloads();
    if (names.empty()) {
        names = workloads::WorkloadRegistry::Global().Names();
    }

    std::ofstream file;
    if (!out_path.empty()) {
        file.open(out_path);
        if (!file) {
            std::cerr << "graph_lint: cannot open " << out_path << "\n";
            return 2;
        }
    }
    std::ostream& out = out_path.empty() ? std::cout : file;

    out << "=== graph_lint: static verification report ===\n\n";
    int violations = 0;
    for (const auto& name : names) {
        try {
            violations += LintWorkload(name, out);
        } catch (const std::exception& e) {
            out << "workload: " << name << "\n  setup FAILED: " << e.what()
                << "\n";
            ++violations;
        }
        out << "\n";
    }
    out << (violations == 0 ? "all graphs verify clean"
                            : std::to_string(violations) +
                                  " violation(s) across the suite")
        << "\n";
    if (!out_path.empty()) {
        std::cout << "graph_lint: report written to " << out_path << " ("
                  << violations << " violation(s))\n";
    }
    return violations == 0 ? 0 : 1;
}
