/**
 * @file
 * Explicit registration entry point for the standard operation set.
 *
 * Registration is an explicit call (not a static initializer) so that
 * statically linked binaries cannot silently drop op translation units.
 * Idempotent: safe to call from every main()/test fixture.
 */
#ifndef FATHOM_OPS_REGISTER_H
#define FATHOM_OPS_REGISTER_H

namespace fathom::ops {

/** Registers all standard ops and their gradients. Idempotent. */
void RegisterStandardOps();

// Per-family registration hooks, called by RegisterStandardOps().
void RegisterSourceOps();
void RegisterMathOps();
void RegisterMatMulOps();
void RegisterConvOps();
void RegisterReductionOps();
void RegisterMovementOps();
void RegisterFusedOps();
void RegisterRandomOps();
void RegisterLossOps();
void RegisterOptimizerOps();

}  // namespace fathom::ops

#endif  // FATHOM_OPS_REGISTER_H
