/**
 * @file
 * Source and control ops: Const, Placeholder, Variable, Identity,
 * StopGradient, ZerosLike, Shape, NoOp.
 */
#include <stdexcept>

#include "autodiff/gradients.h"
#include "graph/op_registry.h"
#include "ops/common.h"
#include "ops/register.h"

namespace fathom::ops {

using autodiff::GradientRegistry;
using graph::AttrValue;
using graph::GraphBuilder;
using graph::Node;
using graph::OpClass;
using graph::OpContext;
using graph::OpDef;
using graph::OpRegistry;
using graph::Output;

namespace {

std::vector<std::optional<Output>>
PassThroughGrad(GraphBuilder&, const Node&,
                const std::vector<Output>& grad_outputs)
{
    return {grad_outputs[0]};
}

std::vector<std::optional<Output>>
NoGrad(GraphBuilder&, const Node& node, const std::vector<Output>&)
{
    return std::vector<std::optional<Output>>(node.inputs.size(),
                                              std::nullopt);
}

}  // namespace

void
RegisterSourceOps()
{
    OpRegistry& ops = OpRegistry::Global();
    GradientRegistry& grads = GradientRegistry::Global();

    ops.Register(OpDef{
        "Const", OpClass::kControl,
        [](OpContext& ctx) {
            // Constants are materialized into the variable store at
            // build time under a reserved "__const/" key.
            ctx.set_output(0, ctx.variables().Get(
                                  ctx.node().attr("var_name").AsString()));
        },
        MovedBytesCost(), false});

    ops.Register(OpDef{
        "Placeholder", OpClass::kControl,
        [](OpContext& ctx) {
            throw std::logic_error("placeholder '" + ctx.node().name +
                                   "' executed without a feed");
        },
        MovedBytesCost(), false});

    ops.Register(OpDef{
        "Variable", OpClass::kControl,
        [](OpContext& ctx) {
            // Clone so that in-place optimizer updates later in the
            // step can never alias a value already consumed forward.
            ctx.set_output(0, ctx.variables()
                                  .Get(ctx.node().attr("var_name").AsString())
                                  .Clone());
        },
        MovedBytesCost(), false});

    ops.Register(OpDef{
        "Identity", OpClass::kDataMovement,
        [](OpContext& ctx) { ctx.set_output(0, ctx.input(0)); },
        MovedBytesCost(), false});
    grads.Register("Identity", PassThroughGrad);

    ops.Register(OpDef{
        "StopGradient", OpClass::kDataMovement,
        [](OpContext& ctx) { ctx.set_output(0, ctx.input(0)); },
        MovedBytesCost(), false});
    grads.Register("StopGradient", NoGrad);

    ops.Register(OpDef{
        "ZerosLike", OpClass::kDataMovement,
        [](OpContext& ctx) {
            ctx.set_output(0, Tensor::Zeros(ctx.input(0).shape(),
                                            ctx.input(0).dtype()));
        },
        MovedBytesCost(), false});
    grads.Register("ZerosLike", NoGrad);

    ops.Register(OpDef{
        "Shape", OpClass::kControl,
        [](OpContext& ctx) {
            const Shape& s = ctx.input(0).shape();
            std::vector<std::int32_t> dims;
            dims.reserve(static_cast<std::size_t>(s.rank()));
            for (std::int64_t d : s.dims()) {
                dims.push_back(static_cast<std::int32_t>(d));
            }
            ctx.set_output(0, Tensor::FromVectorInt(
                                  Shape{static_cast<std::int64_t>(dims.size())},
                                  dims));
        },
        MovedBytesCost(), false});
    grads.Register("Shape", NoGrad);

    ops.Register(OpDef{
        "NoOp", OpClass::kControl, [](OpContext&) {}, MovedBytesCost(),
        false});
}

}  // namespace fathom::ops
