/**
 * @file
 * Source and control ops: Const, Placeholder, Variable, Identity,
 * StopGradient, ZerosLike, Shape, NoOp.
 */
#include <stdexcept>

#include "autodiff/gradients.h"
#include "graph/op_registry.h"
#include "graph/verify/shape_inference.h"
#include "ops/common.h"
#include "ops/register.h"

namespace fathom::ops {

using autodiff::GradientRegistry;
using graph::AttrValue;
using graph::GraphBuilder;
using graph::Node;
using graph::OpClass;
using graph::OpContext;
using graph::OpDef;
using graph::OpRegistry;
using graph::Output;

namespace {

std::vector<std::optional<Output>>
PassThroughGrad(GraphBuilder&, const Node&,
                const std::vector<Output>& grad_outputs)
{
    return {grad_outputs[0]};
}

std::vector<std::optional<Output>>
NoGrad(GraphBuilder&, const Node& node, const std::vector<Output>&)
{
    return std::vector<std::optional<Output>>(node.inputs.size(),
                                              std::nullopt);
}

}  // namespace

void
RegisterSourceOps()
{
    OpRegistry& ops = OpRegistry::Global();
    GradientRegistry& grads = GradientRegistry::Global();

    ops.Register(OpDef{
        "Const", OpClass::kControl,
        [](OpContext& ctx) {
            // Constants are materialized into the variable store at
            // build time under a reserved "__const/" key.
            ctx.set_output(0, ctx.variables().Get(
                                  ctx.node().attr("var_name").AsString()));
        },
        MovedBytesCost(), false});

    ops.Register(OpDef{
        "Placeholder", OpClass::kControl,
        [](OpContext& ctx) {
            throw std::logic_error("placeholder '" + ctx.node().name +
                                   "' executed without a feed");
        },
        MovedBytesCost(), false});

    ops.Register(OpDef{
        "Variable", OpClass::kControl,
        [](OpContext& ctx) {
            // Clone so that in-place optimizer updates later in the
            // step can never alias a value already consumed forward.
            ctx.set_output(0, ctx.variables()
                                  .Get(ctx.node().attr("var_name").AsString())
                                  .Clone());
        },
        MovedBytesCost(), false});

    ops.Register(OpDef{
        "Identity", OpClass::kDataMovement,
        [](OpContext& ctx) { ctx.set_output(0, ctx.input(0)); },
        MovedBytesCost(), false});
    grads.Register("Identity", PassThroughGrad);

    ops.Register(OpDef{
        "StopGradient", OpClass::kDataMovement,
        [](OpContext& ctx) { ctx.set_output(0, ctx.input(0)); },
        MovedBytesCost(), false});
    grads.Register("StopGradient", NoGrad);

    ops.Register(OpDef{
        "ZerosLike", OpClass::kDataMovement,
        [](OpContext& ctx) {
            ctx.set_output(0, Tensor::Zeros(ctx.input(0).shape(),
                                            ctx.input(0).dtype()));
        },
        MovedBytesCost(), false});
    grads.Register("ZerosLike", NoGrad);

    ops.Register(OpDef{
        "Shape", OpClass::kControl,
        [](OpContext& ctx) {
            const Shape& s = ctx.input(0).shape();
            std::vector<std::int32_t> dims;
            dims.reserve(static_cast<std::size_t>(s.rank()));
            for (std::int64_t d : s.dims()) {
                dims.push_back(static_cast<std::int32_t>(d));
            }
            ctx.set_output(0, Tensor::FromVectorInt(
                                  Shape{static_cast<std::int64_t>(dims.size())},
                                  dims));
        },
        MovedBytesCost(), false});
    grads.Register("Shape", NoGrad);

    ops.Register(OpDef{
        "NoOp", OpClass::kControl, [](OpContext&) {}, MovedBytesCost(),
        false});

    // ---- shape/dtype inference -------------------------------------------

    using graph::verify::InferenceContext;
    using graph::verify::TypeInfo;
    auto& shapes = graph::verify::ShapeFnRegistry::Global();

    // Const/Variable read their value from the store at the node's
    // "var_name" key; the stored tensor IS the static type. Without a
    // store (plain whole-graph lint) the type stays unknown.
    auto store_read = [](InferenceContext& ctx) {
        if (ctx.num_inputs() != 0) {
            ctx.Fail("expected 0 inputs, got " +
                     std::to_string(ctx.num_inputs()));
        }
        const std::string& key = ctx.RequireStringAttr("var_name");
        if (ctx.variables() != nullptr) {
            if (!ctx.variables()->Contains(key)) {
                ctx.Fail("variable '" + key + "' is not in the store");
            }
            const Tensor& value = ctx.variables()->Get(key);
            ctx.set_output(0, TypeInfo::Of(value.dtype(), value.shape()));
        }
    };
    shapes.Register("Const", store_read);
    shapes.Register("Variable", store_read);

    // A Placeholder's type comes from the feed (or serving TensorSpec);
    // the verifier seeds it, so the fn only validates arity.
    shapes.Register("Placeholder", [](InferenceContext& ctx) {
        if (ctx.num_inputs() != 0) {
            ctx.Fail("expected 0 inputs, got " +
                     std::to_string(ctx.num_inputs()));
        }
    });

    auto pass_through = [](InferenceContext& ctx) {
        if (ctx.num_inputs() != 1) {
            ctx.Fail("expected 1 input, got " +
                     std::to_string(ctx.num_inputs()));
        }
        ctx.set_output(0, ctx.input(0));
    };
    shapes.Register("Identity", pass_through);
    shapes.Register("StopGradient", pass_through);
    shapes.Register("ZerosLike", pass_through);

    shapes.Register("Shape", [](InferenceContext& ctx) {
        if (ctx.num_inputs() != 1) {
            ctx.Fail("expected 1 input, got " +
                     std::to_string(ctx.num_inputs()));
        }
        TypeInfo out = TypeInfo::OfDType(DType::kInt32);
        if (ctx.KnownShape(0)) {
            out.has_shape = true;
            out.shape = Shape{ctx.input(0).shape.rank()};
        }
        ctx.set_output(0, out);
    });

    shapes.Register("NoOp", [](InferenceContext& ctx) {
        ctx.MarkProducesNoOutput();
    });
}

}  // namespace fathom::ops
