/**
 * @file
 * Reduction/expansion ops: ReduceSum/Mean/Max, Softmax, LogSoftmax,
 * ArgMax, Tile.
 */
#include <set>

#include "autodiff/gradients.h"
#include "graph/op_registry.h"
#include "graph/verify/shape_inference.h"
#include "kernels/elementwise.h"
#include "kernels/reduction.h"
#include "ops/common.h"
#include "ops/register.h"

namespace fathom::ops {

using autodiff::GradientRegistry;
using graph::AttrValue;
using graph::GraphBuilder;
using graph::Node;
using graph::OpClass;
using graph::OpContext;
using graph::OpDef;
using graph::OpRegistry;
using graph::Output;

namespace {

std::vector<int>
AxesFromNode(const Node& node)
{
    std::vector<int> axes;
    for (std::int64_t a : node.attr("axes").AsIntList()) {
        axes.push_back(static_cast<int>(a));
    }
    return axes;
}

using graph::verify::InferenceContext;
using graph::verify::TypeInfo;

/**
 * Normalizes the "axes" int-list attr against @p rank (negative axes
 * count from the end; an empty list means all axes), failing the
 * inference on out-of-range entries. Mirrors kernels::Reduce.
 */
std::set<int>
NormalizedAxes(InferenceContext& ctx, int rank)
{
    std::set<int> axes;
    for (std::int64_t raw : ctx.RequireIntListAttr("axes")) {
        const std::int64_t a = raw < 0 ? raw + rank : raw;
        if (a < 0 || a >= rank) {
            ctx.Fail("reduction axis " + std::to_string(raw) +
                     " out of range for rank " + std::to_string(rank));
        }
        axes.insert(static_cast<int>(a));
    }
    if (axes.empty()) {
        for (int i = 0; i < rank; ++i) {
            axes.insert(i);
        }
    }
    return axes;
}

/** The post-reduction shape of @p in under (axes, keep_dims). */
Shape
ReducedShape(const Shape& in, const std::set<int>& axes, bool keep_dims)
{
    std::vector<std::int64_t> dims;
    for (int i = 0; i < in.rank(); ++i) {
        if (axes.count(i) > 0) {
            if (keep_dims) {
                dims.push_back(1);
            }
        } else {
            dims.push_back(in.dim(i));
        }
    }
    return Shape(std::move(dims));
}

void
RegisterReduce(const std::string& name, kernels::ReduceOp op)
{
    OpRegistry::Global().Register(OpDef{
        name, OpClass::kReductionExpansion,
        [op](OpContext& ctx) {
            ctx.set_output(0, kernels::Reduce(
                                  ctx.input(0), op, AxesFromNode(ctx.node()),
                                  ctx.node().attr_bool("keep_dims", false),
                                  ctx.pool()));
        },
        SerialCost(1.0), false});
    graph::verify::ShapeFnRegistry::Global().Register(
        name, [](InferenceContext& ctx) {
            if (ctx.num_inputs() != 1) {
                ctx.Fail("expected 1 input, got " +
                         std::to_string(ctx.num_inputs()));
            }
            ctx.ExpectDType(0, DType::kFloat32);
            ctx.RequireIntListAttr("axes");
            const bool keep = ctx.node().attr_bool("keep_dims", false);
            TypeInfo out = TypeInfo::OfDType(DType::kFloat32);
            if (ctx.KnownShape(0)) {
                const Shape& in = ctx.input(0).shape;
                out.has_shape = true;
                out.shape =
                    ReducedShape(in, NormalizedAxes(ctx, in.rank()), keep);
            }
            ctx.set_output(0, out);
        });
}

}  // namespace

void
RegisterReductionOps()
{
    OpRegistry& ops = OpRegistry::Global();
    GradientRegistry& grads = GradientRegistry::Global();

    RegisterReduce("ReduceSum", kernels::ReduceOp::kSum);
    RegisterReduce("ReduceMean", kernels::ReduceOp::kMean);
    RegisterReduce("ReduceMax", kernels::ReduceOp::kMax);

    // Broadcasts a reduced gradient back to the pre-reduction shape.
    // inputs: (grad, ref); attrs: axes, keep_dims, mean (scale by 1/n).
    ops.Register(OpDef{
        "ReduceSumGrad", OpClass::kReductionExpansion,
        [](OpContext& ctx) {
            const Shape& ref = ctx.input(1).shape();
            const int rank = ref.rank();
            std::set<int> axes;
            for (int a : AxesFromNode(ctx.node())) {
                axes.insert(a < 0 ? a + rank : a);
            }
            if (axes.empty()) {
                for (int i = 0; i < rank; ++i) {
                    axes.insert(i);
                }
            }
            // Restore reduced axes as extent-1 dims, then tile out.
            std::vector<std::int64_t> keep_shape;
            std::vector<std::int64_t> multiples;
            std::int64_t count = 1;
            for (int i = 0; i < rank; ++i) {
                if (axes.count(i)) {
                    keep_shape.push_back(1);
                    multiples.push_back(ref.dim(i));
                    count *= ref.dim(i);
                } else {
                    keep_shape.push_back(ref.dim(i));
                    multiples.push_back(1);
                }
            }
            Tensor grad = ctx.input(0).Reshape(Shape(keep_shape));
            Tensor expanded = kernels::Tile(grad, multiples, ctx.pool());
            if (ctx.node().attr_bool("mean", false) && count > 0) {
                const float inv = 1.0f / static_cast<float>(count);
                expanded = kernels::UnaryMap(
                    expanded, [inv](float x) { return x * inv; }, ctx.pool());
            }
            ctx.set_output(0, std::move(expanded));
        },
        SerialCost(1.0), false});

    auto reduce_grad = [](bool mean) {
        return [mean](GraphBuilder& b, const Node& node,
                      const std::vector<Output>& g)
                   -> std::vector<std::optional<Output>> {
            std::map<std::string, AttrValue> attrs = {
                {"axes", node.attr("axes")},
                {"keep_dims", node.attr("keep_dims")},
                {"mean", AttrValue(mean)}};
            return {b.AddOp("reduce_grad", "ReduceSumGrad",
                            {g[0], node.inputs[0]}, attrs)};
        };
    };
    grads.Register("ReduceSum", reduce_grad(false));
    grads.Register("ReduceMean", reduce_grad(true));

    // ---- softmax family ----------------------------------------------------

    ops.Register(OpDef{
        "Softmax", OpClass::kReductionExpansion,
        [](OpContext& ctx) {
            ctx.set_output(0, kernels::Softmax(ctx.input(0), ctx.pool()));
        },
        [](const Node&, const std::vector<Tensor>& inputs,
           const std::vector<Tensor>& outputs) {
            graph::OpCost cost;
            cost.flops = 15.0 * static_cast<double>(inputs[0].num_elements());
            cost.bytes = BytesOf(inputs) + BytesOf(outputs);
            const Shape& s = inputs[0].shape();
            cost.parallel_work = s.num_elements() / s.dim(-1);
            return cost;
        },
        false});

    ops.Register(OpDef{
        "LogSoftmax", OpClass::kReductionExpansion,
        [](OpContext& ctx) {
            ctx.set_output(0, kernels::LogSoftmax(ctx.input(0), ctx.pool()));
        },
        SerialCost(15.0), false});

    grads.Register(
        "Softmax",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            // dx = (g - sum(g * y, -1, keep)) * y
            const Output y = Output{node.id, 0};
            const Output inner =
                b.ReduceSum(b.Mul(g[0], y), {-1}, /*keep_dims=*/true);
            return {b.Mul(b.Sub(g[0], inner), y)};
        });

    grads.Register(
        "LogSoftmax",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            // dx = g - softmax(x) * sum(g, -1, keep)
            const Output sm = b.Softmax(node.inputs[0]);
            const Output total = b.ReduceSum(g[0], {-1}, /*keep_dims=*/true);
            return {b.Sub(g[0], b.Mul(sm, total))};
        });

    ops.Register(OpDef{
        "ArgMax", OpClass::kReductionExpansion,
        [](OpContext& ctx) {
            ctx.set_output(0, kernels::ArgMaxLastDim(ctx.input(0),
                                                     ctx.pool()));
        },
        SerialCost(1.0), false});

    // ---- tile ---------------------------------------------------------------

    ops.Register(OpDef{
        "Tile", OpClass::kReductionExpansion,
        [](OpContext& ctx) {
            ctx.set_output(0, kernels::Tile(ctx.input(0),
                                            ctx.node().attr("multiples")
                                                .AsIntList(),
                                            ctx.pool()));
        },
        ElementwiseCost(0.0), false});

    // inputs: (grad, ref)
    ops.Register(OpDef{
        "TileGrad", OpClass::kReductionExpansion,
        [](OpContext& ctx) {
            ctx.set_output(0, kernels::TileGrad(
                                  ctx.input(0), ctx.input(1).shape(),
                                  ctx.node().attr("multiples").AsIntList(),
                                  ctx.pool()));
        },
        SerialCost(1.0), false});

    grads.Register(
        "Tile",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            return {b.AddOp("tile_grad", "TileGrad", {g[0], node.inputs[0]},
                            {{"multiples", node.attr("multiples")}})};
        });

    // ---- shape/dtype inference -------------------------------------------

    auto& shapes = graph::verify::ShapeFnRegistry::Global();

    shapes.Register("ReduceSumGrad", [](InferenceContext& ctx) {
        if (ctx.num_inputs() != 2) {
            ctx.Fail("expected 2 inputs (grad, ref), got " +
                     std::to_string(ctx.num_inputs()));
        }
        ctx.ExpectDType(0, DType::kFloat32);
        ctx.ExpectDType(1, DType::kFloat32);
        ctx.RequireIntListAttr("axes");
        if (ctx.KnownShape(0) && ctx.KnownShape(1)) {
            const Shape& ref = ctx.input(1).shape;
            const Shape expect =
                ReducedShape(ref, NormalizedAxes(ctx, ref.rank()),
                             ctx.node().attr_bool("keep_dims", false));
            if (ctx.input(0).shape.num_elements() != expect.num_elements()) {
                ctx.Fail("grad shape: expected " + expect.ToString() +
                         " (reduction of " + ref.ToString() + "), got " +
                         ctx.input(0).shape.ToString());
            }
        }
        ctx.set_output(0, ctx.input(1));
    });

    auto softmax_shape = [](InferenceContext& ctx) {
        if (ctx.num_inputs() != 1) {
            ctx.Fail("expected 1 input, got " +
                     std::to_string(ctx.num_inputs()));
        }
        ctx.ExpectDType(0, DType::kFloat32);
        if (ctx.KnownShape(0) && ctx.input(0).shape.rank() < 1) {
            ctx.Fail("input must have rank >= 1 (softmax over last dim)");
        }
        ctx.set_output(0, ctx.input(0));
    };
    shapes.Register("Softmax", softmax_shape);
    shapes.Register("LogSoftmax", softmax_shape);

    shapes.Register("ArgMax", [](InferenceContext& ctx) {
        if (ctx.num_inputs() != 1) {
            ctx.Fail("expected 1 input, got " +
                     std::to_string(ctx.num_inputs()));
        }
        ctx.ExpectDType(0, DType::kFloat32);
        TypeInfo out = TypeInfo::OfDType(DType::kInt32);
        if (ctx.KnownShape(0)) {
            const Shape& in = ctx.input(0).shape;
            if (in.rank() < 1) {
                ctx.Fail("input must have rank >= 1 (argmax over last dim)");
            }
            std::vector<std::int64_t> dims(in.dims().begin(),
                                           in.dims().end() - 1);
            out.has_shape = true;
            out.shape = Shape(std::move(dims));
        }
        ctx.set_output(0, out);
    });

    // Tile/TileGrad share the multiples schema: one non-negative factor
    // per input dimension.
    auto tiled_shape = [](InferenceContext& ctx, const Shape& in) {
        const auto& multiples = ctx.RequireIntListAttr("multiples");
        if (static_cast<int>(multiples.size()) != in.rank()) {
            ctx.Fail("multiples: expected " + std::to_string(in.rank()) +
                     " entries (input rank), got " +
                     std::to_string(multiples.size()));
        }
        std::vector<std::int64_t> dims = in.dims();
        for (std::size_t i = 0; i < dims.size(); ++i) {
            if (multiples[i] < 1) {
                ctx.Fail("multiples[" + std::to_string(i) +
                         "] must be >= 1, got " +
                         std::to_string(multiples[i]));
            }
            dims[i] *= multiples[i];
        }
        return Shape(std::move(dims));
    };

    shapes.Register("Tile", [tiled_shape](InferenceContext& ctx) {
        if (ctx.num_inputs() != 1) {
            ctx.Fail("expected 1 input, got " +
                     std::to_string(ctx.num_inputs()));
        }
        ctx.RequireIntListAttr("multiples");
        TypeInfo out = ctx.input(0);
        if (ctx.KnownShape(0)) {
            out.shape = tiled_shape(ctx, ctx.input(0).shape);
        }
        ctx.set_output(0, out);
    });

    shapes.Register("TileGrad", [tiled_shape](InferenceContext& ctx) {
        if (ctx.num_inputs() != 2) {
            ctx.Fail("expected 2 inputs (grad, ref), got " +
                     std::to_string(ctx.num_inputs()));
        }
        ctx.ExpectDType(0, DType::kFloat32);
        ctx.RequireIntListAttr("multiples");
        if (ctx.KnownShape(0) && ctx.KnownShape(1)) {
            const Shape expect = tiled_shape(ctx, ctx.input(1).shape);
            if (ctx.input(0).shape != expect) {
                ctx.Fail("grad shape: expected " + expect.ToString() +
                         " (ref tiled by multiples), got " +
                         ctx.input(0).shape.ToString());
            }
        }
        ctx.set_output(0, ctx.input(1));
    });
}

}  // namespace fathom::ops
