/**
 * @file
 * Elementwise arithmetic ops and their gradients.
 */
#include <cmath>

#include "autodiff/gradients.h"
#include "graph/op_registry.h"
#include "graph/rewrite/fusion_stages.h"
#include "graph/verify/shape_inference.h"
#include "kernels/elementwise.h"
#include "ops/common.h"
#include "ops/register.h"

namespace fathom::ops {

using autodiff::GradientRegistry;
using graph::AttrValue;
using graph::GraphBuilder;
using graph::Node;
using graph::OpClass;
using graph::OpContext;
using graph::OpDef;
using graph::OpRegistry;
using graph::Output;

namespace {

using graph::rewrite::FusionStage;
using graph::rewrite::FusionStageRegistry;
using graph::verify::InferenceContext;
using graph::verify::ShapeFnRegistry;
using graph::verify::TypeInfo;

/**
 * Shape fn shared by all broadcasting float binaries: both inputs
 * float32, output is their NumPy broadcast; @p param_attrs are the
 * required static float attrs (e.g. ClipByValueGrad's bounds).
 */
void
RegisterBinaryShapeFn(const std::string& name,
                      std::vector<std::string> param_attrs)
{
    ShapeFnRegistry::Global().Register(
        name, [param_attrs](InferenceContext& ctx) {
            if (ctx.num_inputs() != 2) {
                ctx.Fail("expected 2 inputs, got " +
                         std::to_string(ctx.num_inputs()));
            }
            for (const std::string& a : param_attrs) {
                ctx.RequireFloatAttr(a);
            }
            ctx.ExpectDType(0, DType::kFloat32);
            ctx.ExpectDType(1, DType::kFloat32);
            TypeInfo out = TypeInfo::OfDType(DType::kFloat32);
            if (ctx.KnownShape(0) && ctx.KnownShape(1)) {
                try {
                    out = TypeInfo::Of(
                        DType::kFloat32,
                        graph::verify::BroadcastShapes(
                            ctx.input(0).shape, ctx.input(1).shape));
                } catch (const std::exception& e) {
                    ctx.Fail(e.what());
                }
            }
            ctx.set_output(0, out);
        });
}

/** Shape fn shared by the float unaries: output mirrors the input. */
void
RegisterUnaryShapeFn(const std::string& name,
                     std::vector<std::string> param_attrs)
{
    ShapeFnRegistry::Global().Register(
        name, [param_attrs](InferenceContext& ctx) {
            if (ctx.num_inputs() != 1) {
                ctx.Fail("expected 1 input, got " +
                         std::to_string(ctx.num_inputs()));
            }
            for (const std::string& a : param_attrs) {
                ctx.RequireFloatAttr(a);
            }
            ctx.ExpectDType(0, DType::kFloat32);
            TypeInfo out = TypeInfo::OfDType(DType::kFloat32);
            if (ctx.KnownShape(0)) {
                out.has_shape = true;
                out.shape = ctx.input(0).shape;
            }
            ctx.set_output(0, out);
        });
}

// Scalar kernels shared verbatim between the standalone op kernels and
// the FusedElementwise kernel (via the fusion-stage registry): fusion
// replays exactly these functions per element, which is what makes
// fused results bit-identical to the unfused chain. The const float*
// parameter carries static attr values (e.g. Pow's exponent).
float AddS(float a, float b, const float*) { return a + b; }
float SubS(float a, float b, const float*) { return a - b; }
float MulS(float a, float b, const float*) { return a * b; }
float DivS(float a, float b, const float*) { return a / b; }
float NegS(float x, const float*) { return -x; }
float ExpS(float x, const float*) { return std::exp(x); }
float LogS(float x, const float*) { return std::log(x); }
float SqrtS(float x, const float*) { return std::sqrt(x); }
float SquareS(float x, const float*) { return x * x; }
float ReluS(float x, const float*) { return x > 0.0f ? x : 0.0f; }
float SigmoidS(float x, const float*) { return 1.0f / (1.0f + std::exp(-x)); }
float TanhS(float x, const float*) { return std::tanh(x); }
float PowS(float x, const float* p) { return std::pow(x, p[0]); }
float ClipS(float x, const float* p)
{
    return x < p[0] ? p[0] : (x > p[1] ? p[1] : x);
}
float ReluGradS(float g, float x, const float*) { return x > 0.0f ? g : 0.0f; }
float SigmoidGradS(float g, float y, const float*)
{
    return g * y * (1.0f - y);
}
float TanhGradS(float g, float y, const float*)
{
    return g * (1.0f - y * y);
}
float ClipGradS(float g, float x, const float* p)
{
    return (x >= p[0] && x <= p[1]) ? g : 0.0f;
}

/** Reads @p attrs off the node into a flat param vector. */
std::vector<float>
AttrParams(OpContext& ctx, const std::vector<std::string>& attrs)
{
    std::vector<float> params;
    params.reserve(attrs.size());
    for (const std::string& a : attrs) {
        params.push_back(ctx.node().attr(a).AsFloat());
    }
    return params;
}

/**
 * Registers a broadcasting binary op and its fusion stage. All
 * elementwise ops support in-place output into input 0 when granted.
 */
void
RegisterBinary(const std::string& name,
               float (*fn)(float, float, const float*),
               double flops_per_elem,
               std::vector<std::string> param_attrs = {})
{
    OpRegistry::Global().Register(OpDef{
        name, OpClass::kElementwise,
        [fn, param_attrs](OpContext& ctx) {
            const std::vector<float> params = AttrParams(ctx, param_attrs);
            const float* p = params.data();
            ctx.set_output(
                0, kernels::BinaryMap(
                       ctx.input(0), ctx.input(1),
                       [fn, p](float a, float b) { return fn(a, b, p); },
                       ctx.pool(), ctx.may_alias_input()));
        },
        ElementwiseCost(flops_per_elem), false, /*supports_inplace=*/true});
    RegisterBinaryShapeFn(name, param_attrs);
    FusionStageRegistry::Global().Register(
        name, FusionStage{2, nullptr, fn, std::move(param_attrs),
                          flops_per_elem});
}

/** Registers a unary op and its fusion stage. */
void
RegisterUnary(const std::string& name, float (*fn)(float, const float*),
              double flops_per_elem,
              std::vector<std::string> param_attrs = {})
{
    OpRegistry::Global().Register(OpDef{
        name, OpClass::kElementwise,
        [fn, param_attrs](OpContext& ctx) {
            const std::vector<float> params = AttrParams(ctx, param_attrs);
            const float* p = params.data();
            ctx.set_output(0, kernels::UnaryMap(
                                  ctx.input(0),
                                  [fn, p](float x) { return fn(x, p); },
                                  ctx.pool(), ctx.may_alias_input()));
        },
        ElementwiseCost(flops_per_elem), false, /*supports_inplace=*/true});
    RegisterUnaryShapeFn(name, param_attrs);
    FusionStageRegistry::Global().Register(
        name, FusionStage{1, fn, nullptr, std::move(param_attrs),
                          flops_per_elem});
}

/** Reduces @p grad to the broadcast-input's shape. */
Output
SumTo(GraphBuilder& b, Output grad, Output ref)
{
    return b.AddOp("sum_to", "SumToShapeOf", {grad, ref});
}

}  // namespace

void
RegisterMathOps()
{
    OpRegistry& ops = OpRegistry::Global();
    GradientRegistry& grads = GradientRegistry::Global();

    RegisterBinary("Add", AddS, 1.0);
    RegisterBinary("Sub", SubS, 1.0);
    RegisterBinary("Mul", MulS, 1.0);
    RegisterBinary("Div", DivS, 4.0);

    RegisterUnary("Neg", NegS, 1.0);
    RegisterUnary("Exp", ExpS, 10.0);
    RegisterUnary("Log", LogS, 10.0);
    RegisterUnary("Sqrt", SqrtS, 4.0);
    RegisterUnary("Square", SquareS, 1.0);
    RegisterUnary("Relu", ReluS, 1.0);
    RegisterUnary("Sigmoid", SigmoidS, 12.0);
    RegisterUnary("Tanh", TanhS, 12.0);

    RegisterUnary("Pow", PowS, 20.0, {"exponent"});
    RegisterUnary("ClipByValue", ClipS, 2.0, {"clip_min", "clip_max"});

    ops.Register(OpDef{
        "AddN", OpClass::kElementwise,
        [](OpContext& ctx) {
            // In place the accumulator IS input 0 (whose buffer dies
            // here); otherwise it starts as a copy — same values.
            const bool alias = ctx.may_alias_input() &&
                               ctx.input(0).dtype() == DType::kFloat32;
            Tensor acc = alias ? ctx.input(0) : ctx.input(0).Clone();
            float* a = acc.data<float>();
            const std::int64_t n = acc.num_elements();
            for (int i = 1; i < ctx.num_inputs(); ++i) {
                if (ctx.input(i).shape() != acc.shape()) {
                    throw std::invalid_argument("AddN: shape mismatch");
                }
                const float* x = ctx.input(i).data<float>();
                for (std::int64_t k = 0; k < n; ++k) {
                    a[k] += x[k];
                }
            }
            ctx.set_output(0, std::move(acc));
        },
        ElementwiseCost(1.0), false, /*supports_inplace=*/true});
    ShapeFnRegistry::Global().Register("AddN", [](InferenceContext& ctx) {
        if (ctx.num_inputs() < 1) {
            ctx.Fail("expected at least 1 input");
        }
        TypeInfo out = TypeInfo::OfDType(DType::kFloat32);
        for (int i = 0; i < ctx.num_inputs(); ++i) {
            ctx.ExpectDType(i, DType::kFloat32);
            ctx.ExpectSameShape(0, i);
            if (ctx.KnownShape(i)) {
                out.has_shape = true;
                out.shape = ctx.input(i).shape;
            }
        }
        ctx.set_output(0, out);
    });

    // Gradient helper ops (elementwise, appear in backward profiles).
    // inputs: (grad, x) / (grad, y = forward output).
    RegisterBinary("ReluGrad", ReluGradS, 1.0);
    RegisterBinary("SigmoidGrad", SigmoidGradS, 3.0);
    RegisterBinary("TanhGrad", TanhGradS, 3.0);
    RegisterBinary("ClipByValueGrad", ClipGradS, 2.0,
                   {"clip_min", "clip_max"});

    // The adjoint of broadcasting: reduce grad down to ref's shape.
    ops.Register(OpDef{
        "SumToShapeOf", OpClass::kReductionExpansion,
        [](OpContext& ctx) {
            ctx.set_output(0, kernels::ReduceToShape(
                                  ctx.input(0), ctx.input(1).shape(),
                                  ctx.pool()));
        },
        SerialCost(1.0), false});
    ShapeFnRegistry::Global().Register(
        "SumToShapeOf", [](InferenceContext& ctx) {
            if (ctx.num_inputs() != 2) {
                ctx.Fail("expected 2 inputs (grad, shape ref), got " +
                         std::to_string(ctx.num_inputs()));
            }
            ctx.ExpectDType(0, DType::kFloat32);
            TypeInfo out = TypeInfo::OfDType(DType::kFloat32);
            if (ctx.KnownShape(1)) {
                out.has_shape = true;
                out.shape = ctx.input(1).shape;
            }
            ctx.set_output(0, out);
        });

    // ---- gradients -------------------------------------------------------

    grads.Register(
        "Add",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            return {SumTo(b, g[0], node.inputs[0]),
                    SumTo(b, g[0], node.inputs[1])};
        });

    grads.Register(
        "Sub",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            return {SumTo(b, g[0], node.inputs[0]),
                    SumTo(b, b.Neg(g[0]), node.inputs[1])};
        });

    grads.Register(
        "Mul",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            const Output a = node.inputs[0];
            const Output bb = node.inputs[1];
            return {SumTo(b, b.Mul(g[0], bb), a),
                    SumTo(b, b.Mul(g[0], a), bb)};
        });

    grads.Register(
        "Div",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            const Output a = node.inputs[0];
            const Output bb = node.inputs[1];
            const Output ga = b.Div(g[0], bb);
            const Output gb =
                b.Neg(b.Div(b.Mul(g[0], a), b.Mul(bb, bb)));
            return {SumTo(b, ga, a), SumTo(b, gb, bb)};
        });

    grads.Register(
        "AddN",
        [](GraphBuilder&, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            return std::vector<std::optional<Output>>(node.inputs.size(),
                                                      g[0]);
        });

    grads.Register(
        "Neg",
        [](GraphBuilder& b, const Node&, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> { return {b.Neg(g[0])}; });

    grads.Register(
        "Exp",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            return {b.Mul(g[0], Output{node.id, 0})};
        });

    grads.Register(
        "Log",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            return {b.Div(g[0], node.inputs[0])};
        });

    grads.Register(
        "Sqrt",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            // d sqrt(x) = 0.5 / sqrt(x)
            const Output half = b.ScalarConst(0.5f, "half");
            return {b.Div(b.Mul(g[0], half), Output{node.id, 0})};
        });

    grads.Register(
        "Square",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            const Output two = b.ScalarConst(2.0f, "two");
            return {b.Mul(b.Mul(g[0], two), node.inputs[0])};
        });

    grads.Register(
        "Pow",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            const float p = node.attr("exponent").AsFloat();
            const Output coeff = b.ScalarConst(p, "pow_coeff");
            return {b.Mul(b.Mul(g[0], coeff),
                          b.Pow(node.inputs[0], p - 1.0f))};
        });

    grads.Register(
        "Relu",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            return {b.AddOp("relu_grad", "ReluGrad", {g[0], node.inputs[0]})};
        });

    grads.Register(
        "Sigmoid",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            return {b.AddOp("sigmoid_grad", "SigmoidGrad",
                            {g[0], Output{node.id, 0}})};
        });

    grads.Register(
        "Tanh",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            return {b.AddOp("tanh_grad", "TanhGrad",
                            {g[0], Output{node.id, 0}})};
        });

    grads.Register(
        "ClipByValue",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            return {b.AddOp("clip_grad", "ClipByValueGrad",
                            {g[0], node.inputs[0]},
                            {{"clip_min", node.attr("clip_min")},
                             {"clip_max", node.attr("clip_max")}})};
        });

    grads.Register(
        "ReluGrad",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            // Second-order term for x is zero a.e.; propagate through
            // the grad operand only.
            return {b.AddOp("relu_grad", "ReluGrad", {g[0], node.inputs[1]}),
                    std::nullopt};
        });
}

}  // namespace fathom::ops
