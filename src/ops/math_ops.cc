/**
 * @file
 * Elementwise arithmetic ops and their gradients.
 */
#include <cmath>

#include "autodiff/gradients.h"
#include "graph/op_registry.h"
#include "kernels/elementwise.h"
#include "ops/common.h"
#include "ops/register.h"

namespace fathom::ops {

using autodiff::GradientRegistry;
using graph::AttrValue;
using graph::GraphBuilder;
using graph::Node;
using graph::OpClass;
using graph::OpContext;
using graph::OpDef;
using graph::OpRegistry;
using graph::Output;

namespace {

/** Registers a broadcasting binary op. */
void
RegisterBinary(const std::string& name, float (*fn)(float, float),
               double flops_per_elem)
{
    OpRegistry::Global().Register(OpDef{
        name, OpClass::kElementwise,
        [fn](OpContext& ctx) {
            ctx.set_output(0, kernels::BinaryMap(ctx.input(0), ctx.input(1),
                                                 fn, ctx.pool()));
        },
        ElementwiseCost(flops_per_elem), false});
}

/** Registers a unary op. */
void
RegisterUnary(const std::string& name, float (*fn)(float),
              double flops_per_elem)
{
    OpRegistry::Global().Register(OpDef{
        name, OpClass::kElementwise,
        [fn](OpContext& ctx) {
            ctx.set_output(0,
                           kernels::UnaryMap(ctx.input(0), fn, ctx.pool()));
        },
        ElementwiseCost(flops_per_elem), false});
}

/** Reduces @p grad to the broadcast-input's shape. */
Output
SumTo(GraphBuilder& b, Output grad, Output ref)
{
    return b.AddOp("sum_to", "SumToShapeOf", {grad, ref});
}

}  // namespace

void
RegisterMathOps()
{
    OpRegistry& ops = OpRegistry::Global();
    GradientRegistry& grads = GradientRegistry::Global();

    RegisterBinary("Add", [](float a, float b) { return a + b; }, 1.0);
    RegisterBinary("Sub", [](float a, float b) { return a - b; }, 1.0);
    RegisterBinary("Mul", [](float a, float b) { return a * b; }, 1.0);
    RegisterBinary("Div", [](float a, float b) { return a / b; }, 4.0);

    RegisterUnary("Neg", [](float x) { return -x; }, 1.0);
    RegisterUnary("Exp", [](float x) { return std::exp(x); }, 10.0);
    RegisterUnary(
        "Log", [](float x) { return std::log(x); }, 10.0);
    RegisterUnary(
        "Sqrt", [](float x) { return std::sqrt(x); }, 4.0);
    RegisterUnary("Square", [](float x) { return x * x; }, 1.0);
    RegisterUnary(
        "Relu", [](float x) { return x > 0.0f ? x : 0.0f; }, 1.0);
    RegisterUnary(
        "Sigmoid", [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
        12.0);
    RegisterUnary(
        "Tanh", [](float x) { return std::tanh(x); }, 12.0);

    ops.Register(OpDef{
        "Pow", OpClass::kElementwise,
        [](OpContext& ctx) {
            const float p = ctx.node().attr("exponent").AsFloat();
            ctx.set_output(0, kernels::UnaryMap(
                                  ctx.input(0),
                                  [p](float x) { return std::pow(x, p); },
                                  ctx.pool()));
        },
        ElementwiseCost(20.0), false});

    ops.Register(OpDef{
        "AddN", OpClass::kElementwise,
        [](OpContext& ctx) {
            Tensor acc = ctx.input(0).Clone();
            float* a = acc.data<float>();
            const std::int64_t n = acc.num_elements();
            for (int i = 1; i < ctx.num_inputs(); ++i) {
                if (ctx.input(i).shape() != acc.shape()) {
                    throw std::invalid_argument("AddN: shape mismatch");
                }
                const float* x = ctx.input(i).data<float>();
                for (std::int64_t k = 0; k < n; ++k) {
                    a[k] += x[k];
                }
            }
            ctx.set_output(0, std::move(acc));
        },
        ElementwiseCost(1.0), false});

    // Gradient helper ops (elementwise, appear in backward profiles).
    ops.Register(OpDef{
        "ReluGrad", OpClass::kElementwise,
        [](OpContext& ctx) {
            // inputs: (grad, x)
            ctx.set_output(0, kernels::BinaryMap(
                                  ctx.input(0), ctx.input(1),
                                  [](float g, float x) {
                                      return x > 0.0f ? g : 0.0f;
                                  },
                                  ctx.pool()));
        },
        ElementwiseCost(1.0), false});

    ops.Register(OpDef{
        "SigmoidGrad", OpClass::kElementwise,
        [](OpContext& ctx) {
            // inputs: (grad, y) with y = sigmoid(x)
            ctx.set_output(0, kernels::BinaryMap(
                                  ctx.input(0), ctx.input(1),
                                  [](float g, float y) {
                                      return g * y * (1.0f - y);
                                  },
                                  ctx.pool()));
        },
        ElementwiseCost(3.0), false});

    ops.Register(OpDef{
        "TanhGrad", OpClass::kElementwise,
        [](OpContext& ctx) {
            // inputs: (grad, y) with y = tanh(x)
            ctx.set_output(0, kernels::BinaryMap(
                                  ctx.input(0), ctx.input(1),
                                  [](float g, float y) {
                                      return g * (1.0f - y * y);
                                  },
                                  ctx.pool()));
        },
        ElementwiseCost(3.0), false});

    ops.Register(OpDef{
        "ClipByValue", OpClass::kElementwise,
        [](OpContext& ctx) {
            const float lo = ctx.node().attr("clip_min").AsFloat();
            const float hi = ctx.node().attr("clip_max").AsFloat();
            ctx.set_output(0, kernels::UnaryMap(
                                  ctx.input(0),
                                  [lo, hi](float x) {
                                      return x < lo ? lo : (x > hi ? hi : x);
                                  },
                                  ctx.pool()));
        },
        ElementwiseCost(2.0), false});

    // inputs: (grad, x); passes gradient only inside the clip range.
    ops.Register(OpDef{
        "ClipByValueGrad", OpClass::kElementwise,
        [](OpContext& ctx) {
            const float lo = ctx.node().attr("clip_min").AsFloat();
            const float hi = ctx.node().attr("clip_max").AsFloat();
            ctx.set_output(0, kernels::BinaryMap(
                                  ctx.input(0), ctx.input(1),
                                  [lo, hi](float g, float x) {
                                      return (x >= lo && x <= hi) ? g : 0.0f;
                                  },
                                  ctx.pool()));
        },
        ElementwiseCost(2.0), false});

    // The adjoint of broadcasting: reduce grad down to ref's shape.
    ops.Register(OpDef{
        "SumToShapeOf", OpClass::kReductionExpansion,
        [](OpContext& ctx) {
            ctx.set_output(0, kernels::ReduceToShape(
                                  ctx.input(0), ctx.input(1).shape(),
                                  ctx.pool()));
        },
        SerialCost(1.0), false});

    // ---- gradients -------------------------------------------------------

    grads.Register(
        "Add",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            return {SumTo(b, g[0], node.inputs[0]),
                    SumTo(b, g[0], node.inputs[1])};
        });

    grads.Register(
        "Sub",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            return {SumTo(b, g[0], node.inputs[0]),
                    SumTo(b, b.Neg(g[0]), node.inputs[1])};
        });

    grads.Register(
        "Mul",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            const Output a = node.inputs[0];
            const Output bb = node.inputs[1];
            return {SumTo(b, b.Mul(g[0], bb), a),
                    SumTo(b, b.Mul(g[0], a), bb)};
        });

    grads.Register(
        "Div",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            const Output a = node.inputs[0];
            const Output bb = node.inputs[1];
            const Output ga = b.Div(g[0], bb);
            const Output gb =
                b.Neg(b.Div(b.Mul(g[0], a), b.Mul(bb, bb)));
            return {SumTo(b, ga, a), SumTo(b, gb, bb)};
        });

    grads.Register(
        "AddN",
        [](GraphBuilder&, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            return std::vector<std::optional<Output>>(node.inputs.size(),
                                                      g[0]);
        });

    grads.Register(
        "Neg",
        [](GraphBuilder& b, const Node&, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> { return {b.Neg(g[0])}; });

    grads.Register(
        "Exp",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            return {b.Mul(g[0], Output{node.id, 0})};
        });

    grads.Register(
        "Log",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            return {b.Div(g[0], node.inputs[0])};
        });

    grads.Register(
        "Sqrt",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            // d sqrt(x) = 0.5 / sqrt(x)
            const Output half = b.ScalarConst(0.5f, "half");
            return {b.Div(b.Mul(g[0], half), Output{node.id, 0})};
        });

    grads.Register(
        "Square",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            const Output two = b.ScalarConst(2.0f, "two");
            return {b.Mul(b.Mul(g[0], two), node.inputs[0])};
        });

    grads.Register(
        "Pow",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            const float p = node.attr("exponent").AsFloat();
            const Output coeff = b.ScalarConst(p, "pow_coeff");
            return {b.Mul(b.Mul(g[0], coeff),
                          b.Pow(node.inputs[0], p - 1.0f))};
        });

    grads.Register(
        "Relu",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            return {b.AddOp("relu_grad", "ReluGrad", {g[0], node.inputs[0]})};
        });

    grads.Register(
        "Sigmoid",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            return {b.AddOp("sigmoid_grad", "SigmoidGrad",
                            {g[0], Output{node.id, 0}})};
        });

    grads.Register(
        "Tanh",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            return {b.AddOp("tanh_grad", "TanhGrad",
                            {g[0], Output{node.id, 0}})};
        });

    grads.Register(
        "ClipByValue",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            return {b.AddOp("clip_grad", "ClipByValueGrad",
                            {g[0], node.inputs[0]},
                            {{"clip_min", node.attr("clip_min")},
                             {"clip_max", node.attr("clip_max")}})};
        });

    grads.Register(
        "ReluGrad",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            // Second-order term for x is zero a.e.; propagate through
            // the grad operand only.
            return {b.AddOp("relu_grad", "ReluGrad", {g[0], node.inputs[1]}),
                    std::nullopt};
        });
}

}  // namespace fathom::ops
