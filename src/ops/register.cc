#include "ops/register.h"

#include <mutex>

namespace fathom::ops {

void
RegisterStandardOps()
{
    static std::once_flag once;
    std::call_once(once, [] {
        RegisterSourceOps();
        RegisterMathOps();
        RegisterMatMulOps();
        RegisterConvOps();
        RegisterReductionOps();
        RegisterMovementOps();
        RegisterFusedOps();
        RegisterRandomOps();
        RegisterLossOps();
        RegisterOptimizerOps();
    });
}

}  // namespace fathom::ops
