/**
 * @file
 * Convolution-class ops: Conv2D (+ both backprops), pooling, LRN, and
 * batch normalization.
 */
#include <cmath>
#include <vector>

#include "autodiff/gradients.h"
#include "graph/op_registry.h"
#include "graph/verify/shape_inference.h"
#include "kernels/conv2d.h"
#include "kernels/gemm.h"
#include "kernels/normalization.h"
#include "kernels/pooling.h"
#include "ops/common.h"
#include "ops/register.h"

namespace fathom::ops {

using autodiff::GradientRegistry;
using graph::AttrValue;
using graph::GraphBuilder;
using graph::Node;
using graph::OpClass;
using graph::OpContext;
using graph::OpDef;
using graph::OpRegistry;
using graph::Output;

namespace {

/** FLOPs of one convolution sweep given resolved geometry. */
double
ConvFlops(const kernels::Conv2DGeometry& g)
{
    return 2.0 * static_cast<double>(g.batch) * static_cast<double>(g.out_h) *
           static_cast<double>(g.out_w) * static_cast<double>(g.k_h) *
           static_cast<double>(g.k_w) * static_cast<double>(g.in_c) *
           static_cast<double>(g.out_c);
}

kernels::LrnParams
LrnParamsFromNode(const Node& node)
{
    kernels::LrnParams p;
    p.depth_radius = node.attr_int("depth_radius", 2);
    p.bias = node.attr_float("bias", 1.0f);
    p.alpha = node.attr_float("alpha", 1e-4f);
    p.beta = node.attr_float("beta", 0.75f);
    return p;
}

}  // namespace

void
RegisterConvOps()
{
    OpRegistry& ops = OpRegistry::Global();
    GradientRegistry& grads = GradientRegistry::Global();

    ops.Register(OpDef{
        "Conv2D", OpClass::kConvolution,
        [](OpContext& ctx) {
            ctx.set_output(
                0, kernels::Conv2D(
                       ctx.input(0), ctx.input(1),
                       ctx.node().attr("stride").AsInt(),
                       ParsePadding(ctx.node().attr("padding").AsString()),
                       ctx.pool()));
        },
        [](const Node& node, const std::vector<Tensor>& inputs,
           const std::vector<Tensor>& outputs) {
            const auto g = kernels::ResolveConv2D(
                inputs[0].shape(), inputs[1].shape(),
                node.attr("stride").AsInt(),
                ParsePadding(node.attr("padding").AsString()));
            graph::OpCost cost;
            cost.flops = ConvFlops(g);
            cost.bytes = BytesOf(inputs) + BytesOf(outputs);
            // im2col GEMM: [batch*oh*ow, K] x [K, oc] in 2-D tiles.
            cost.parallel_work = kernels::GemmTileCount(
                g.batch * g.out_h * g.out_w, g.out_c);
            return cost;
        },
        false});

    // inputs: (input_ref_for_shape, filter, grad_out)
    ops.Register(OpDef{
        "Conv2DBackpropInput", OpClass::kConvolution,
        [](OpContext& ctx) {
            ctx.set_output(
                0, kernels::Conv2DBackpropInput(
                       ctx.input(0).shape(), ctx.input(1), ctx.input(2),
                       ctx.node().attr("stride").AsInt(),
                       ParsePadding(ctx.node().attr("padding").AsString()),
                       ctx.pool()));
        },
        [](const Node& node, const std::vector<Tensor>& inputs,
           const std::vector<Tensor>& outputs) {
            const auto g = kernels::ResolveConv2D(
                inputs[0].shape(), inputs[1].shape(),
                node.attr("stride").AsInt(),
                ParsePadding(node.attr("padding").AsString()));
            graph::OpCost cost;
            cost.flops = ConvFlops(g);
            cost.bytes = BytesOf(inputs) + BytesOf(outputs);
            // Dominated by the column GEMM [batch*oh*ow, oc] x [oc, K].
            cost.parallel_work = kernels::GemmTileCount(
                g.batch * g.out_h * g.out_w, g.k_h * g.k_w * g.in_c);
            return cost;
        },
        false});

    // inputs: (input, filter_ref_for_shape, grad_out)
    ops.Register(OpDef{
        "Conv2DBackpropFilter", OpClass::kConvolution,
        [](OpContext& ctx) {
            ctx.set_output(
                0, kernels::Conv2DBackpropFilter(
                       ctx.input(0), ctx.input(1).shape(), ctx.input(2),
                       ctx.node().attr("stride").AsInt(),
                       ParsePadding(ctx.node().attr("padding").AsString()),
                       ctx.pool()));
        },
        [](const Node& node, const std::vector<Tensor>& inputs,
           const std::vector<Tensor>& outputs) {
            const auto g = kernels::ResolveConv2D(
                inputs[0].shape(), inputs[1].shape(),
                node.attr("stride").AsInt(),
                ParsePadding(node.attr("padding").AsString()));
            graph::OpCost cost;
            cost.flops = ConvFlops(g);
            cost.bytes = BytesOf(inputs) + BytesOf(outputs);
            // One GEMM over the whole batch: [K, batch*oh*ow] x
            // [batch*oh*ow, oc] in 2-D tiles.
            cost.parallel_work = kernels::GemmTileCount(
                g.k_h * g.k_w * g.in_c, g.out_c);
            return cost;
        },
        false});

    grads.Register(
        "Conv2D",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            const Output input = node.inputs[0];
            const Output filter = node.inputs[1];
            std::map<std::string, AttrValue> attrs = {
                {"stride", node.attr("stride")},
                {"padding", node.attr("padding")}};
            const Output gi =
                b.AddOp("conv2d_back_input", "Conv2DBackpropInput",
                        {input, filter, g[0]}, attrs);
            const Output gf =
                b.AddOp("conv2d_back_filter", "Conv2DBackpropFilter",
                        {input, filter, g[0]}, attrs);
            return {gi, gf};
        });

    // ---- pooling ---------------------------------------------------------

    auto pool_cost = [](const Node& node, const std::vector<Tensor>& inputs,
                        const std::vector<Tensor>& outputs) {
        const auto g = kernels::ResolvePool(
            inputs[0].shape(), node.attr("window").AsInt(),
            node.attr("stride").AsInt(),
            ParsePadding(node.attr("padding").AsString()));
        graph::OpCost cost;
        cost.flops = static_cast<double>(g.batch * g.out_h * g.out_w *
                                         g.channels * g.window * g.window);
        cost.bytes = BytesOf(inputs) + BytesOf(outputs);
        cost.parallel_work = g.batch * g.out_h;
        return cost;
    };

    ops.Register(OpDef{
        "MaxPool", OpClass::kConvolution,
        [](OpContext& ctx) {
            ctx.set_output(
                0, kernels::MaxPool(
                       ctx.input(0), ctx.node().attr("window").AsInt(),
                       ctx.node().attr("stride").AsInt(),
                       ParsePadding(ctx.node().attr("padding").AsString()),
                       ctx.pool()));
        },
        pool_cost, false});

    ops.Register(OpDef{
        "AvgPool", OpClass::kConvolution,
        [](OpContext& ctx) {
            ctx.set_output(
                0, kernels::AvgPool(
                       ctx.input(0), ctx.node().attr("window").AsInt(),
                       ctx.node().attr("stride").AsInt(),
                       ParsePadding(ctx.node().attr("padding").AsString()),
                       ctx.pool()));
        },
        pool_cost, false});

    // inputs: (input, grad_out)
    ops.Register(OpDef{
        "MaxPoolGrad", OpClass::kConvolution,
        [](OpContext& ctx) {
            ctx.set_output(
                0, kernels::MaxPoolGrad(
                       ctx.input(0), ctx.input(1),
                       ctx.node().attr("window").AsInt(),
                       ctx.node().attr("stride").AsInt(),
                       ParsePadding(ctx.node().attr("padding").AsString()),
                       ctx.pool()));
        },
        SerialCost(2.0), false});

    // inputs: (input_ref_for_shape, grad_out)
    ops.Register(OpDef{
        "AvgPoolGrad", OpClass::kConvolution,
        [](OpContext& ctx) {
            ctx.set_output(
                0, kernels::AvgPoolGrad(
                       ctx.input(0).shape(), ctx.input(1),
                       ctx.node().attr("window").AsInt(),
                       ctx.node().attr("stride").AsInt(),
                       ParsePadding(ctx.node().attr("padding").AsString()),
                       ctx.pool()));
        },
        SerialCost(2.0), false});

    auto pool_grad = [](const char* grad_op) {
        return [grad_op](GraphBuilder& b, const Node& node,
                         const std::vector<Output>& g)
                   -> std::vector<std::optional<Output>> {
            std::map<std::string, AttrValue> attrs = {
                {"window", node.attr("window")},
                {"stride", node.attr("stride")},
                {"padding", node.attr("padding")}};
            return {b.AddOp("pool_grad", grad_op, {node.inputs[0], g[0]},
                            attrs)};
        };
    };
    grads.Register("MaxPool", pool_grad("MaxPoolGrad"));
    grads.Register("AvgPool", pool_grad("AvgPoolGrad"));

    // ---- local response normalization -------------------------------------

    ops.Register(OpDef{
        "Lrn", OpClass::kReductionExpansion,
        [](OpContext& ctx) {
            ctx.set_output(0, kernels::Lrn(ctx.input(0),
                                           LrnParamsFromNode(ctx.node()),
                                           ctx.pool()));
        },
        [](const Node& node, const std::vector<Tensor>& inputs,
           const std::vector<Tensor>& outputs) {
            graph::OpCost cost;
            const double window =
                2.0 * static_cast<double>(node.attr_int("depth_radius", 2)) +
                1.0;
            cost.flops = (window * 2.0 + 20.0) *
                         static_cast<double>(inputs[0].num_elements());
            cost.bytes = BytesOf(inputs) + BytesOf(outputs);
            const Shape& s = inputs[0].shape();
            cost.parallel_work = s.num_elements() / s.dim(-1);
            return cost;
        },
        false});

    // inputs: (input, grad_out)
    ops.Register(OpDef{
        "LrnGrad", OpClass::kReductionExpansion,
        [](OpContext& ctx) {
            ctx.set_output(0, kernels::LrnGrad(ctx.input(0), ctx.input(1),
                                               LrnParamsFromNode(ctx.node()),
                                               ctx.pool()));
        },
        SerialCost(40.0), false});

    grads.Register(
        "Lrn",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            return {b.AddOp("lrn_grad", "LrnGrad", {node.inputs[0], g[0]},
                            node.attrs)};
        });

    // ---- batch normalization ----------------------------------------------

    // inputs: (x, gamma, beta); outputs: (y, mean, inv_std)
    ops.Register(OpDef{
        "BatchNorm", OpClass::kReductionExpansion,
        [](OpContext& ctx) {
            auto result = kernels::BatchNorm(
                ctx.input(0), ctx.input(1), ctx.input(2),
                ctx.node().attr_float("epsilon", 1e-5f), ctx.pool());
            ctx.set_output(0, std::move(result.output));
            ctx.set_output(1, std::move(result.mean));
            ctx.set_output(2, std::move(result.inv_std));
        },
        [](const Node&, const std::vector<Tensor>& inputs,
           const std::vector<Tensor>& outputs) {
            graph::OpCost cost;
            cost.flops = 8.0 * static_cast<double>(inputs[0].num_elements());
            cost.bytes = BytesOf(inputs) + BytesOf(outputs);
            const Shape& s = inputs[0].shape();
            cost.parallel_work = s.num_elements() / s.dim(-1);
            return cost;
        },
        false});

    // inputs: (x, gamma, beta, mean, var); inference-mode normalization
    // with *running* statistics instead of batch statistics.
    ops.Register(OpDef{
        "BatchNormInference", OpClass::kReductionExpansion,
        [](OpContext& ctx) {
            const Tensor& x = ctx.input(0);
            const Tensor& gamma = ctx.input(1);
            const Tensor& beta = ctx.input(2);
            const Tensor& mean = ctx.input(3);
            const Tensor& var = ctx.input(4);
            const float eps = ctx.node().attr_float("epsilon", 1e-5f);
            const std::int64_t channels = x.shape().dim(-1);
            if (gamma.num_elements() != channels ||
                beta.num_elements() != channels ||
                mean.num_elements() != channels ||
                var.num_elements() != channels) {
                throw std::invalid_argument(
                    "BatchNormInference: per-channel params must be "
                    "[channels]");
            }
            Tensor out(DType::kFloat32, x.shape());
            const std::int64_t rows = x.num_elements() / channels;
            const float* xp = x.data<float>();
            const float* g = gamma.data<float>();
            const float* bt = beta.data<float>();
            const float* mu = mean.data<float>();
            const float* v = var.data<float>();
            float* o = out.data<float>();
            std::vector<float> scale(static_cast<std::size_t>(channels));
            std::vector<float> shift(static_cast<std::size_t>(channels));
            for (std::int64_t c = 0; c < channels; ++c) {
                const float inv = 1.0f / std::sqrt(v[c] + eps);
                scale[static_cast<std::size_t>(c)] = g[c] * inv;
                shift[static_cast<std::size_t>(c)] =
                    bt[c] - mu[c] * g[c] * inv;
            }
            ctx.pool().ParallelFor(
                rows, /*grain=*/64,
                [&](std::int64_t r0, std::int64_t r1) {
                    for (std::int64_t r = r0; r < r1; ++r) {
                        for (std::int64_t c = 0; c < channels; ++c) {
                            o[r * channels + c] =
                                xp[r * channels + c] *
                                    scale[static_cast<std::size_t>(c)] +
                                shift[static_cast<std::size_t>(c)];
                        }
                    }
                });
            ctx.set_output(0, std::move(out));
        },
        ElementwiseCost(2.0), false});

    // inputs: (x, gamma, mean, inv_std, grad_y);
    // outputs: (grad_x, grad_gamma, grad_beta)
    ops.Register(OpDef{
        "BatchNormGrad", OpClass::kReductionExpansion,
        [](OpContext& ctx) {
            auto result = kernels::BatchNormGrad(
                ctx.input(0), ctx.input(1), ctx.input(2), ctx.input(3),
                ctx.input(4), ctx.pool());
            ctx.set_output(0, std::move(result.grad_input));
            ctx.set_output(1, std::move(result.grad_gamma));
            ctx.set_output(2, std::move(result.grad_beta));
        },
        SerialCost(10.0), false});

    grads.Register(
        "BatchNorm",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            if (g[1].node != -1 || g[2].node != -1) {
                throw std::logic_error(
                    "BatchNorm: gradients through batch statistics outputs "
                    "are not supported");
            }
            const graph::NodeId id = b.AddNode(
                "batch_norm_grad", "BatchNormGrad",
                {node.inputs[0], node.inputs[1], Output{node.id, 1},
                 Output{node.id, 2}, g[0]},
                {}, /*num_outputs=*/3);
            return {Output{id, 0}, Output{id, 1}, Output{id, 2}};
        });

    // ---- shape/dtype inference -------------------------------------------

    using graph::verify::InferenceContext;
    using graph::verify::TypeInfo;
    auto& shapes = graph::verify::ShapeFnRegistry::Global();

    // Conv attr schema: stride + padding string, resolved through the
    // same kernels::ResolveConv2D the kernel itself uses, so the static
    // check and the runtime geometry can never disagree.
    auto conv_geometry = [](InferenceContext& ctx, const Shape& input,
                            const Shape& filter) {
        try {
            return kernels::ResolveConv2D(
                input, filter, ctx.RequireIntAttr("stride"),
                ParsePadding(ctx.RequireStringAttr("padding")));
        } catch (const graph::verify::InferenceError&) {
            throw;
        } catch (const std::exception& e) {
            ctx.Fail(e.what());
        }
    };

    shapes.Register("Conv2D", [conv_geometry](InferenceContext& ctx) {
        if (ctx.num_inputs() != 2) {
            ctx.Fail("expected 2 inputs (input, filter), got " +
                     std::to_string(ctx.num_inputs()));
        }
        ctx.ExpectDType(0, DType::kFloat32);
        ctx.ExpectDType(1, DType::kFloat32);
        ctx.ExpectRank(0, 4);
        ctx.ExpectRank(1, 4);
        TypeInfo out = TypeInfo::OfDType(DType::kFloat32);
        if (ctx.KnownShape(0) && ctx.KnownShape(1)) {
            const auto g = conv_geometry(ctx, ctx.input(0).shape,
                                         ctx.input(1).shape);
            out.has_shape = true;
            out.shape = Shape{g.batch, g.out_h, g.out_w, g.out_c};
        }
        ctx.set_output(0, out);
    });

    shapes.Register(
        "Conv2DBackpropInput", [conv_geometry](InferenceContext& ctx) {
            if (ctx.num_inputs() != 3) {
                ctx.Fail("expected 3 inputs (input ref, filter, grad), "
                         "got " +
                         std::to_string(ctx.num_inputs()));
            }
            for (int i = 0; i < 3; ++i) {
                ctx.ExpectDType(i, DType::kFloat32);
                ctx.ExpectRank(i, 4);
            }
            if (ctx.KnownShape(0) && ctx.KnownShape(1)) {
                const auto g = conv_geometry(ctx, ctx.input(0).shape,
                                             ctx.input(1).shape);
                const Shape expect{g.batch, g.out_h, g.out_w, g.out_c};
                if (ctx.KnownShape(2) && ctx.input(2).shape != expect) {
                    ctx.Fail("grad shape: expected " + expect.ToString() +
                             ", got " + ctx.input(2).shape.ToString());
                }
            }
            ctx.set_output(0, ctx.input(0));
        });

    shapes.Register(
        "Conv2DBackpropFilter", [conv_geometry](InferenceContext& ctx) {
            if (ctx.num_inputs() != 3) {
                ctx.Fail("expected 3 inputs (input, filter ref, grad), "
                         "got " +
                         std::to_string(ctx.num_inputs()));
            }
            for (int i = 0; i < 3; ++i) {
                ctx.ExpectDType(i, DType::kFloat32);
                ctx.ExpectRank(i, 4);
            }
            if (ctx.KnownShape(0) && ctx.KnownShape(1)) {
                conv_geometry(ctx, ctx.input(0).shape, ctx.input(1).shape);
            }
            ctx.set_output(0, ctx.input(1));
        });

    auto pool_geometry = [](InferenceContext& ctx, const Shape& input) {
        try {
            return kernels::ResolvePool(
                input, ctx.RequireIntAttr("window"),
                ctx.RequireIntAttr("stride"),
                ParsePadding(ctx.RequireStringAttr("padding")));
        } catch (const graph::verify::InferenceError&) {
            throw;
        } catch (const std::exception& e) {
            ctx.Fail(e.what());
        }
    };

    auto pool_shape = [pool_geometry](InferenceContext& ctx) {
        if (ctx.num_inputs() != 1) {
            ctx.Fail("expected 1 input, got " +
                     std::to_string(ctx.num_inputs()));
        }
        ctx.ExpectDType(0, DType::kFloat32);
        ctx.ExpectRank(0, 4);
        TypeInfo out = TypeInfo::OfDType(DType::kFloat32);
        if (ctx.KnownShape(0)) {
            const auto g = pool_geometry(ctx, ctx.input(0).shape);
            out.has_shape = true;
            out.shape = Shape{g.batch, g.out_h, g.out_w, g.channels};
        }
        ctx.set_output(0, out);
    };
    shapes.Register("MaxPool", pool_shape);
    shapes.Register("AvgPool", pool_shape);

    auto pool_grad_shape = [pool_geometry](InferenceContext& ctx) {
        if (ctx.num_inputs() != 2) {
            ctx.Fail("expected 2 inputs (input, grad), got " +
                     std::to_string(ctx.num_inputs()));
        }
        ctx.ExpectDType(0, DType::kFloat32);
        ctx.ExpectDType(1, DType::kFloat32);
        ctx.ExpectRank(0, 4);
        if (ctx.KnownShape(0)) {
            const auto g = pool_geometry(ctx, ctx.input(0).shape);
            const Shape expect{g.batch, g.out_h, g.out_w, g.channels};
            if (ctx.KnownShape(1) && ctx.input(1).shape != expect) {
                ctx.Fail("grad shape: expected " + expect.ToString() +
                         ", got " + ctx.input(1).shape.ToString());
            }
        }
        ctx.set_output(0, ctx.input(0));
    };
    shapes.Register("MaxPoolGrad", pool_grad_shape);
    shapes.Register("AvgPoolGrad", pool_grad_shape);

    shapes.Register("Lrn", [](InferenceContext& ctx) {
        if (ctx.num_inputs() != 1) {
            ctx.Fail("expected 1 input, got " +
                     std::to_string(ctx.num_inputs()));
        }
        ctx.ExpectDType(0, DType::kFloat32);
        ctx.set_output(0, ctx.input(0));
    });
    shapes.Register("LrnGrad", [](InferenceContext& ctx) {
        if (ctx.num_inputs() != 2) {
            ctx.Fail("expected 2 inputs (input, grad), got " +
                     std::to_string(ctx.num_inputs()));
        }
        ctx.ExpectDType(0, DType::kFloat32);
        ctx.ExpectDType(1, DType::kFloat32);
        ctx.ExpectSameShape(0, 1);
        ctx.set_output(0, ctx.input(0));
    });

    // Per-channel parameter vectors must hold exactly x.dim(-1) values.
    auto expect_channel_param = [](InferenceContext& ctx, int i,
                                   std::int64_t channels) {
        ctx.ExpectDType(i, DType::kFloat32);
        if (ctx.KnownShape(i) &&
            ctx.input(i).shape.num_elements() != channels) {
            ctx.Fail("input " + std::to_string(i) +
                     " per-channel parameter: expected " +
                     std::to_string(channels) + " elements, got " +
                     std::to_string(ctx.input(i).shape.num_elements()) +
                     " (shape " + ctx.input(i).shape.ToString() + ")");
        }
    };

    shapes.Register(
        "BatchNorm", [expect_channel_param](InferenceContext& ctx) {
            if (ctx.num_inputs() != 3) {
                ctx.Fail("expected 3 inputs (x, gamma, beta), got " +
                         std::to_string(ctx.num_inputs()));
            }
            ctx.ExpectDType(0, DType::kFloat32);
            ctx.set_output(0, ctx.input(0));
            if (ctx.KnownShape(0)) {
                if (ctx.input(0).shape.rank() < 1) {
                    ctx.Fail("x must have rank >= 1 (channels-last)");
                }
                const std::int64_t c = ctx.input(0).shape.dim(-1);
                expect_channel_param(ctx, 1, c);
                expect_channel_param(ctx, 2, c);
                ctx.set_output(1, TypeInfo::Of(DType::kFloat32, Shape{c}));
                ctx.set_output(2, TypeInfo::Of(DType::kFloat32, Shape{c}));
            } else {
                ctx.set_output(1, TypeInfo::OfDType(DType::kFloat32));
                ctx.set_output(2, TypeInfo::OfDType(DType::kFloat32));
            }
        });

    shapes.Register(
        "BatchNormInference", [expect_channel_param](InferenceContext& ctx) {
            if (ctx.num_inputs() != 5) {
                ctx.Fail("expected 5 inputs (x, gamma, beta, mean, var), "
                         "got " +
                         std::to_string(ctx.num_inputs()));
            }
            ctx.ExpectDType(0, DType::kFloat32);
            if (ctx.KnownShape(0)) {
                if (ctx.input(0).shape.rank() < 1) {
                    ctx.Fail("x must have rank >= 1 (channels-last)");
                }
                const std::int64_t c = ctx.input(0).shape.dim(-1);
                for (int i = 1; i < 5; ++i) {
                    expect_channel_param(ctx, i, c);
                }
            }
            ctx.set_output(0, ctx.input(0));
        });

    shapes.Register(
        "BatchNormGrad", [expect_channel_param](InferenceContext& ctx) {
            if (ctx.num_inputs() != 5) {
                ctx.Fail("expected 5 inputs (x, gamma, mean, inv_std, "
                         "grad_y), got " +
                         std::to_string(ctx.num_inputs()));
            }
            ctx.ExpectDType(0, DType::kFloat32);
            ctx.ExpectSameShape(0, 4);
            ctx.set_output(0, ctx.input(0));
            if (ctx.KnownShape(0)) {
                if (ctx.input(0).shape.rank() < 1) {
                    ctx.Fail("x must have rank >= 1 (channels-last)");
                }
                const std::int64_t c = ctx.input(0).shape.dim(-1);
                for (int i = 1; i < 4; ++i) {
                    expect_channel_param(ctx, i, c);
                }
                ctx.set_output(1, TypeInfo::Of(DType::kFloat32, Shape{c}));
                ctx.set_output(2, TypeInfo::Of(DType::kFloat32, Shape{c}));
            } else {
                ctx.set_output(1, TypeInfo::OfDType(DType::kFloat32));
                ctx.set_output(2, TypeInfo::OfDType(DType::kFloat32));
            }
        });
}

}  // namespace fathom::ops
