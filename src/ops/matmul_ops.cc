/**
 * @file
 * Matrix multiplication op and gradient.
 */
#include "autodiff/gradients.h"
#include "graph/op_registry.h"
#include "graph/verify/shape_inference.h"
#include "kernels/gemm.h"
#include "kernels/matmul.h"
#include "ops/common.h"
#include "ops/register.h"

namespace fathom::ops {

using autodiff::GradientRegistry;
using graph::GraphBuilder;
using graph::Node;
using graph::OpClass;
using graph::OpContext;
using graph::OpDef;
using graph::OpRegistry;
using graph::Output;

void
RegisterMatMulOps()
{
    OpRegistry::Global().Register(OpDef{
        "MatMul", OpClass::kMatrixOps,
        [](OpContext& ctx) {
            ctx.set_output(
                0, kernels::MatMul(ctx.input(0), ctx.input(1),
                                   ctx.node().attr_bool("transpose_a", false),
                                   ctx.node().attr_bool("transpose_b", false),
                                   ctx.pool()));
        },
        [](const Node& node, const std::vector<Tensor>& inputs,
           const std::vector<Tensor>& outputs) {
            graph::OpCost cost;
            const bool ta = node.attr_bool("transpose_a", false);
            const std::int64_t m = outputs[0].shape().dim(0);
            const std::int64_t n = outputs[0].shape().dim(1);
            const std::int64_t k =
                ta ? inputs[0].shape().dim(0) : inputs[0].shape().dim(1);
            cost.flops = 2.0 * static_cast<double>(m) *
                         static_cast<double>(n) * static_cast<double>(k);
            cost.bytes = BytesOf(inputs) + BytesOf(outputs);
            // The GEMM engine parallelizes over 2-D output tiles, not
            // rows; the tile grid is the kernel's real trip count.
            cost.parallel_work = kernels::GemmTileCount(m, n);
            return cost;
        },
        false});

    GradientRegistry::Global().Register(
        "MatMul",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            const Output a = node.inputs[0];
            const Output bb = node.inputs[1];
            const bool ta = node.attr_bool("transpose_a", false);
            const bool tb = node.attr_bool("transpose_b", false);
            Output ga, gb;
            if (!ta && !tb) {
                ga = b.MatMul(g[0], bb, false, true);
                gb = b.MatMul(a, g[0], true, false);
            } else if (ta && !tb) {
                ga = b.MatMul(bb, g[0], false, true);
                gb = b.MatMul(a, g[0], false, false);
            } else if (!ta && tb) {
                ga = b.MatMul(g[0], bb, false, false);
                gb = b.MatMul(g[0], a, true, false);
            } else {
                ga = b.MatMul(bb, g[0], true, true);
                gb = b.MatMul(g[0], a, true, true);
            }
            return {ga, gb};
        });

    graph::verify::ShapeFnRegistry::Global().Register(
        "MatMul", [](graph::verify::InferenceContext& ctx) {
            using graph::verify::TypeInfo;
            if (ctx.num_inputs() != 2) {
                ctx.Fail("expected 2 inputs, got " +
                         std::to_string(ctx.num_inputs()));
            }
            ctx.ExpectDType(0, DType::kFloat32);
            ctx.ExpectDType(1, DType::kFloat32);
            ctx.ExpectRank(0, 2);
            ctx.ExpectRank(1, 2);
            const bool ta = ctx.node().attr_bool("transpose_a", false);
            const bool tb = ctx.node().attr_bool("transpose_b", false);
            TypeInfo out = TypeInfo::OfDType(DType::kFloat32);
            // Effective [m, k] x [k, n]: the inner dims must agree.
            if (ctx.KnownShape(0) && ctx.KnownShape(1)) {
                const Shape& a = ctx.input(0).shape;
                const Shape& b = ctx.input(1).shape;
                const std::int64_t m = ta ? a.dim(1) : a.dim(0);
                const std::int64_t ka = ta ? a.dim(0) : a.dim(1);
                const std::int64_t kb = tb ? b.dim(1) : b.dim(0);
                const std::int64_t n = tb ? b.dim(0) : b.dim(1);
                if (ka != kb) {
                    ctx.Fail("inner dimensions: expected equal, got " +
                             std::to_string(ka) + " vs " +
                             std::to_string(kb) + " (" + a.ToString() +
                             (ta ? "^T" : "") + " x " + b.ToString() +
                             (tb ? "^T" : "") + ")");
                }
                out.has_shape = true;
                out.shape = Shape{m, n};
            }
            ctx.set_output(0, out);
        });
}

}  // namespace fathom::ops
