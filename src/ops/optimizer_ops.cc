/**
 * @file
 * Parameter-update ops (the paper's Optimization class): SGD, momentum,
 * RMSProp (deep Q networks), and Adam (variational autoencoders).
 *
 * Update kernels run serially over the parameter vector: in the paper's
 * Fig. 6 the optimizer is exactly the kind of data-dependent work whose
 * relative share *grows* as convolution/matmul parallelize.
 */
#include <cmath>

#include "graph/op_registry.h"
#include "graph/verify/shape_inference.h"
#include "ops/common.h"
#include "ops/register.h"

namespace fathom::ops {

using graph::Node;
using graph::OpClass;
using graph::OpContext;
using graph::OpDef;
using graph::OpRegistry;

namespace {

/** Fetches (or lazily creates, zero-filled) an optimizer slot tensor. */
Tensor&
Slot(OpContext& ctx, const std::string& var_name, const std::string& slot,
     const Shape& shape)
{
    const std::string key = var_name + "/" + slot;
    if (!ctx.variables().Contains(key)) {
        ctx.variables().Set(key, Tensor::Zeros(shape));
    }
    return ctx.variables().Get(key);
}

/** Checks grad/var compatibility and returns the variable. */
Tensor&
CheckedVar(OpContext& ctx, const Tensor& grad)
{
    Tensor& var =
        ctx.variables().Get(ctx.node().attr("var_name").AsString());
    if (var.num_elements() != grad.num_elements()) {
        throw std::invalid_argument(
            "optimizer op '" + ctx.node().name + "': grad has " +
            std::to_string(grad.num_elements()) + " elements, variable has " +
            std::to_string(var.num_elements()));
    }
    return var;
}

graph::CostFn
UpdateCost(double flops_per_elem)
{
    return [flops_per_elem](const Node&, const std::vector<Tensor>& inputs,
                            const std::vector<Tensor>&) {
        graph::OpCost cost;
        const double n = static_cast<double>(inputs[0].num_elements());
        cost.flops = flops_per_elem * n;
        cost.bytes = 3.0 * 4.0 * n;  // read var + grad, write var.
        cost.parallel_work = 1;      // serial update loop.
        return cost;
    };
}

}  // namespace

void
RegisterOptimizerOps()
{
    OpRegistry& ops = OpRegistry::Global();

    // input: (grad); var -= lr * grad
    ops.Register(OpDef{
        "ApplyGradientDescent", OpClass::kOptimization,
        [](OpContext& ctx) {
            const Tensor& grad = ctx.input(0);
            Tensor& var = CheckedVar(ctx, grad);
            const float lr = ctx.node().attr("lr").AsFloat();
            float* v = var.data<float>();
            const float* g = grad.data<float>();
            const std::int64_t n = var.num_elements();
            for (std::int64_t i = 0; i < n; ++i) {
                v[i] -= lr * g[i];
            }
        },
        UpdateCost(2.0), true});

    // input: (grad); m = mu*m + grad; var -= lr * m
    ops.Register(OpDef{
        "ApplyMomentum", OpClass::kOptimization,
        [](OpContext& ctx) {
            const Tensor& grad = ctx.input(0);
            Tensor& var = CheckedVar(ctx, grad);
            const std::string var_name =
                ctx.node().attr("var_name").AsString();
            Tensor& mom = Slot(ctx, var_name, "momentum", var.shape());
            const float lr = ctx.node().attr("lr").AsFloat();
            const float mu = ctx.node().attr("momentum").AsFloat();
            float* v = var.data<float>();
            float* m = mom.data<float>();
            const float* g = grad.data<float>();
            const std::int64_t n = var.num_elements();
            for (std::int64_t i = 0; i < n; ++i) {
                m[i] = mu * m[i] + g[i];
                v[i] -= lr * m[i];
            }
        },
        UpdateCost(4.0), true});

    // input: (grad); ms = rho*ms + (1-rho)*g^2; var -= lr*g/sqrt(ms+eps)
    ops.Register(OpDef{
        "ApplyRMSProp", OpClass::kOptimization,
        [](OpContext& ctx) {
            const Tensor& grad = ctx.input(0);
            Tensor& var = CheckedVar(ctx, grad);
            const std::string var_name =
                ctx.node().attr("var_name").AsString();
            Tensor& ms = Slot(ctx, var_name, "rms", var.shape());
            const float lr = ctx.node().attr("lr").AsFloat();
            const float rho = ctx.node().attr("decay").AsFloat();
            const float eps = ctx.node().attr("epsilon").AsFloat();
            float* v = var.data<float>();
            float* s = ms.data<float>();
            const float* g = grad.data<float>();
            const std::int64_t n = var.num_elements();
            for (std::int64_t i = 0; i < n; ++i) {
                s[i] = rho * s[i] + (1.0f - rho) * g[i] * g[i];
                v[i] -= lr * g[i] / std::sqrt(s[i] + eps);
            }
        },
        UpdateCost(8.0), true});

    // input: (grad); standard bias-corrected Adam.
    ops.Register(OpDef{
        "ApplyAdam", OpClass::kOptimization,
        [](OpContext& ctx) {
            const Tensor& grad = ctx.input(0);
            Tensor& var = CheckedVar(ctx, grad);
            const std::string var_name =
                ctx.node().attr("var_name").AsString();
            Tensor& m = Slot(ctx, var_name, "adam_m", var.shape());
            Tensor& s = Slot(ctx, var_name, "adam_v", var.shape());
            Tensor& t_slot = Slot(ctx, var_name, "adam_t", Shape{});
            const float lr = ctx.node().attr("lr").AsFloat();
            const float b1 = ctx.node().attr("beta1").AsFloat();
            const float b2 = ctx.node().attr("beta2").AsFloat();
            const float eps = ctx.node().attr("epsilon").AsFloat();

            float& t = t_slot.data<float>()[0];
            t += 1.0f;
            const float correction = std::sqrt(1.0f - std::pow(b2, t)) /
                                     (1.0f - std::pow(b1, t));

            float* v = var.data<float>();
            float* mp = m.data<float>();
            float* sp = s.data<float>();
            const float* g = grad.data<float>();
            const std::int64_t n = var.num_elements();
            for (std::int64_t i = 0; i < n; ++i) {
                mp[i] = b1 * mp[i] + (1.0f - b1) * g[i];
                sp[i] = b2 * sp[i] + (1.0f - b2) * g[i] * g[i];
                v[i] -= lr * correction * mp[i] / (std::sqrt(sp[i]) + eps);
            }
        },
        UpdateCost(12.0), true});

    // input: (value); var = value
    ops.Register(OpDef{
        "Assign", OpClass::kControl,
        [](OpContext& ctx) {
            ctx.variables().Set(ctx.node().attr("var_name").AsString(),
                                ctx.input(0).Clone());
        },
        MovedBytesCost(), true});

    // ---- shape/dtype inference -------------------------------------------

    using graph::verify::InferenceContext;
    auto& shapes = graph::verify::ShapeFnRegistry::Global();

    // All Apply* updates take one (grad) input, name their variable via
    // the "var_name" attr, and produce no tensor output — they are pure
    // side-effect barriers in the plan.
    auto apply_update = [](InferenceContext& ctx,
                           const std::vector<std::string>& float_attrs) {
        if (ctx.num_inputs() != 1) {
            ctx.Fail("expected (grad) input, got " +
                     std::to_string(ctx.num_inputs()));
        }
        ctx.ExpectDType(0, DType::kFloat32);
        const std::string& key = ctx.RequireStringAttr("var_name");
        for (const std::string& attr : float_attrs) {
            ctx.RequireFloatAttr(attr);
        }
        if (ctx.variables() != nullptr) {
            if (!ctx.variables()->Contains(key)) {
                ctx.Fail("variable '" + key + "' is not in the store");
            }
            const Tensor& var = ctx.variables()->Get(key);
            if (ctx.KnownShape(0) &&
                ctx.input(0).shape.num_elements() != var.num_elements()) {
                ctx.Fail("grad has " +
                         std::to_string(ctx.input(0).shape.num_elements()) +
                         " elements, variable '" + key + "' has " +
                         std::to_string(var.num_elements()));
            }
        }
        ctx.MarkProducesNoOutput();
    };
    shapes.Register("ApplyGradientDescent",
                    [apply_update](InferenceContext& ctx) {
                        apply_update(ctx, {"lr"});
                    });
    shapes.Register("ApplyMomentum", [apply_update](InferenceContext& ctx) {
        apply_update(ctx, {"lr", "momentum"});
    });
    shapes.Register("ApplyRMSProp", [apply_update](InferenceContext& ctx) {
        apply_update(ctx, {"lr", "decay", "epsilon"});
    });
    shapes.Register("ApplyAdam", [apply_update](InferenceContext& ctx) {
        apply_update(ctx, {"lr", "beta1", "beta2", "epsilon"});
    });

    shapes.Register("Assign", [](InferenceContext& ctx) {
        if (ctx.num_inputs() != 1) {
            ctx.Fail("expected (value) input, got " +
                     std::to_string(ctx.num_inputs()));
        }
        ctx.RequireStringAttr("var_name");
        ctx.MarkProducesNoOutput();
    });
}

}  // namespace fathom::ops
