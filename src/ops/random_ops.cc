/**
 * @file
 * Random-sampling ops: RandomNormal, RandomUniform, DropoutMask.
 *
 * These form the paper's RandomSampling class, visible in autoenc
 * (the VAE's reparameterized sampling during both inference and
 * training) and in dropout-regularized training (alexnet).
 */
#include "autodiff/gradients.h"
#include "graph/op_registry.h"
#include "graph/verify/shape_inference.h"
#include "ops/common.h"
#include "ops/register.h"

namespace fathom::ops {

using autodiff::GradientRegistry;
using graph::GraphBuilder;
using graph::Node;
using graph::OpClass;
using graph::OpContext;
using graph::OpDef;
using graph::OpRegistry;
using graph::Output;

namespace {

/** Sampling cost: transcendental-heavy and serial (one RNG stream). */
graph::CostFn
SamplingCost()
{
    return [](const Node&, const std::vector<Tensor>&,
              const std::vector<Tensor>& outputs) {
        graph::OpCost cost;
        cost.flops = 30.0 * static_cast<double>(outputs[0].num_elements());
        cost.bytes = BytesOf(outputs);
        cost.parallel_work = 1;
        return cost;
    };
}

}  // namespace

void
RegisterRandomOps()
{
    OpRegistry& ops = OpRegistry::Global();
    GradientRegistry& grads = GradientRegistry::Global();

    ops.Register(OpDef{
        "RandomNormal", OpClass::kRandomSampling,
        [](OpContext& ctx) {
            Tensor out(DType::kFloat32,
                       Shape(ctx.node().attr("shape").AsIntList()));
            ctx.rng().FillNormal(&out, ctx.node().attr_float("mean", 0.0f),
                                 ctx.node().attr_float("stddev", 1.0f));
            ctx.set_output(0, std::move(out));
        },
        SamplingCost(), true});

    ops.Register(OpDef{
        "RandomUniform", OpClass::kRandomSampling,
        [](OpContext& ctx) {
            Tensor out(DType::kFloat32,
                       Shape(ctx.node().attr("shape").AsIntList()));
            ctx.rng().FillUniform(&out, ctx.node().attr_float("lo", 0.0f),
                                  ctx.node().attr_float("hi", 1.0f));
            ctx.set_output(0, std::move(out));
        },
        SamplingCost(), true});

    // input: (like); output: mask with E[mask] = 1 elementwise.
    ops.Register(OpDef{
        "DropoutMask", OpClass::kRandomSampling,
        [](OpContext& ctx) {
            const float keep = ctx.node().attr_float("keep_prob", 0.5f);
            if (keep <= 0.0f || keep > 1.0f) {
                throw std::invalid_argument(
                    "DropoutMask: keep_prob must be in (0, 1]");
            }
            Tensor mask(DType::kFloat32, ctx.input(0).shape());
            float* m = mask.data<float>();
            const float inv_keep = 1.0f / keep;
            const std::int64_t n = mask.num_elements();
            for (std::int64_t i = 0; i < n; ++i) {
                m[i] = ctx.rng().Uniform() < keep ? inv_keep : 0.0f;
            }
            ctx.set_output(0, std::move(mask));
        },
        SamplingCost(), true});

    // The mask is treated as a constant w.r.t. differentiation.
    grads.Register(
        "DropoutMask",
        [](GraphBuilder&, const Node&, const std::vector<Output>&)
            -> std::vector<std::optional<Output>> { return {std::nullopt}; });

    // ---- shape/dtype inference -------------------------------------------

    using graph::verify::InferenceContext;
    using graph::verify::TypeInfo;
    auto& shapes = graph::verify::ShapeFnRegistry::Global();

    // Samplers draw a fresh float32 tensor of the "shape" attr.
    auto sampled = [](InferenceContext& ctx) {
        if (ctx.num_inputs() != 0) {
            ctx.Fail("expected 0 inputs, got " +
                     std::to_string(ctx.num_inputs()));
        }
        const auto& dims = ctx.RequireIntListAttr("shape");
        for (std::size_t i = 0; i < dims.size(); ++i) {
            if (dims[i] < 0) {
                ctx.Fail("shape attr dim " + std::to_string(i) +
                         " is negative (" + std::to_string(dims[i]) + ")");
            }
        }
        ctx.set_output(0, TypeInfo::Of(DType::kFloat32, Shape(dims)));
    };
    shapes.Register("RandomNormal", sampled);
    shapes.Register("RandomUniform", sampled);

    shapes.Register("DropoutMask", [](InferenceContext& ctx) {
        if (ctx.num_inputs() != 1) {
            ctx.Fail("expected 1 input, got " +
                     std::to_string(ctx.num_inputs()));
        }
        const float keep = ctx.node().attr_float("keep_prob", 0.5f);
        if (keep <= 0.0f || keep > 1.0f) {
            ctx.Fail("keep_prob must be in (0, 1], got " +
                     std::to_string(keep));
        }
        TypeInfo out = TypeInfo::OfDType(DType::kFloat32);
        if (ctx.KnownShape(0)) {
            out.has_shape = true;
            out.shape = ctx.input(0).shape;
        }
        ctx.set_output(0, out);
    });
}

}  // namespace fathom::ops
