/**
 * @file
 * Shared helpers for op registration: cost accounting and attr parsing.
 */
#ifndef FATHOM_OPS_COMMON_H
#define FATHOM_OPS_COMMON_H

#include <string>
#include <vector>

#include "graph/op_registry.h"
#include "kernels/conv2d.h"

namespace fathom::ops {

/** @return summed byte size of all initialized tensors in @p ts. */
inline double
BytesOf(const std::vector<Tensor>& ts)
{
    double bytes = 0.0;
    for (const Tensor& t : ts) {
        if (t.initialized()) {
            bytes += static_cast<double>(t.byte_size());
        }
    }
    return bytes;
}

/**
 * @return a cost function for elementwise-style ops: @p flops_per_elem
 * FLOPs per output element, fully parallel over output elements.
 */
graph::CostFn ElementwiseCost(double flops_per_elem);

/**
 * @return a cost function for serial ops (parallel_work = 1) with
 * @p flops_per_elem FLOPs per *input* element.
 */
graph::CostFn SerialCost(double flops_per_elem);

/**
 * @return a cost function for zero-FLOP data movement and control ops
 * (Const, Variable, Identity, Assign, ...): no arithmetic, bytes =
 * everything touched (inputs + outputs). Keeps every registered op
 * costed, so per-op roofline intensity is defined suite-wide and the
 * registry audit can insist CostFn is never null.
 */
graph::CostFn MovedBytesCost();

/** Parses a padding attr string ("SAME"/"VALID"). */
kernels::Padding ParsePadding(const std::string& value);

/** Converts an int-list attr to a Shape. */
Shape ShapeFromAttr(const std::vector<std::int64_t>& dims);

}  // namespace fathom::ops

#endif  // FATHOM_OPS_COMMON_H
