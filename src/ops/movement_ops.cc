/**
 * @file
 * Data-movement ops: Reshape, Transpose, Concat, Slice, Gather, OneHot,
 * Pad, and their gradient helper ops.
 */
#include <stdexcept>

#include "autodiff/gradients.h"
#include "graph/op_registry.h"
#include "graph/verify/shape_inference.h"
#include "kernels/data_movement.h"
#include "ops/common.h"
#include "ops/register.h"

namespace fathom::ops {

using autodiff::GradientRegistry;
using graph::AttrValue;
using graph::GraphBuilder;
using graph::Node;
using graph::OpClass;
using graph::OpContext;
using graph::OpDef;
using graph::OpRegistry;
using graph::Output;

namespace {

/** Resolves a reshape target allowing a single -1 wildcard. */
Shape
ResolveReshape(const Shape& input, const std::vector<std::int64_t>& target)
{
    std::int64_t known = 1;
    int wildcard = -1;
    for (std::size_t i = 0; i < target.size(); ++i) {
        if (target[i] == -1) {
            if (wildcard != -1) {
                throw std::invalid_argument("Reshape: multiple -1 dims");
            }
            wildcard = static_cast<int>(i);
        } else {
            known *= target[i];
        }
    }
    std::vector<std::int64_t> dims = target;
    if (wildcard >= 0) {
        if (known == 0 || input.num_elements() % known != 0) {
            throw std::invalid_argument("Reshape: cannot infer -1 dim");
        }
        dims[static_cast<std::size_t>(wildcard)] =
            input.num_elements() / known;
    }
    return Shape(dims);
}

std::vector<std::pair<std::int64_t, std::int64_t>>
PaddingsFromAttr(const std::vector<std::int64_t>& flat)
{
    if (flat.size() % 2 != 0) {
        throw std::invalid_argument("paddings attr must have even length");
    }
    std::vector<std::pair<std::int64_t, std::int64_t>> paddings;
    for (std::size_t i = 0; i < flat.size(); i += 2) {
        paddings.emplace_back(flat[i], flat[i + 1]);
    }
    return paddings;
}

graph::CostFn
MovementCost()
{
    return [](const Node&, const std::vector<Tensor>& inputs,
              const std::vector<Tensor>& outputs) {
        graph::OpCost cost;
        cost.flops = 0.0;
        cost.bytes = BytesOf(inputs) + BytesOf(outputs);
        cost.parallel_work = 1;
        return cost;
    };
}

}  // namespace

void
RegisterMovementOps()
{
    OpRegistry& ops = OpRegistry::Global();
    GradientRegistry& grads = GradientRegistry::Global();

    ops.Register(OpDef{
        "Reshape", OpClass::kDataMovement,
        [](OpContext& ctx) {
            ctx.set_output(0, ctx.input(0).Reshape(ResolveReshape(
                                  ctx.input(0).shape(),
                                  ctx.node().attr("shape").AsIntList())));
        },
        MovementCost(), false});

    // inputs: (x, ref): reshape x to ref's shape (dynamic Reshape).
    ops.Register(OpDef{
        "ReshapeLike", OpClass::kDataMovement,
        [](OpContext& ctx) {
            ctx.set_output(0, ctx.input(0).Reshape(ctx.input(1).shape()));
        },
        MovementCost(), false});

    auto reshape_grad = [](GraphBuilder& b, const Node& node,
                           const std::vector<Output>& g)
        -> std::vector<std::optional<Output>> {
        std::vector<std::optional<Output>> result;
        result.push_back(b.AddOp("reshape_grad", "ReshapeLike",
                                 {g[0], node.inputs[0]}));
        for (std::size_t i = 1; i < node.inputs.size(); ++i) {
            result.push_back(std::nullopt);
        }
        return result;
    };
    grads.Register("Reshape", reshape_grad);
    grads.Register("ReshapeLike", reshape_grad);

    ops.Register(OpDef{
        "Transpose", OpClass::kDataMovement,
        [](OpContext& ctx) {
            std::vector<int> perm;
            for (std::int64_t p : ctx.node().attr("perm").AsIntList()) {
                perm.push_back(static_cast<int>(p));
            }
            ctx.set_output(0,
                           kernels::Transpose(ctx.input(0), perm, ctx.pool()));
        },
        MovementCost(), false});

    grads.Register(
        "Transpose",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            const auto& perm = node.attr("perm").AsIntList();
            std::vector<std::int64_t> inverse(perm.size());
            for (std::size_t i = 0; i < perm.size(); ++i) {
                inverse[static_cast<std::size_t>(perm[i])] =
                    static_cast<std::int64_t>(i);
            }
            return {b.Transpose(g[0], inverse)};
        });

    ops.Register(OpDef{
        "Concat", OpClass::kDataMovement,
        [](OpContext& ctx) {
            std::vector<Tensor> inputs;
            for (int i = 0; i < ctx.num_inputs(); ++i) {
                inputs.push_back(ctx.input(i));
            }
            ctx.set_output(
                0, kernels::Concat(inputs,
                                   static_cast<int>(
                                       ctx.node().attr("axis").AsInt()),
                                   ctx.pool()));
        },
        MovementCost(), false});

    // inputs: (grad, ref_0, ..., ref_{n-1}); n outputs, one per ref.
    ops.Register(OpDef{
        "ConcatGrad", OpClass::kDataMovement,
        [](OpContext& ctx) {
            const Tensor& g = ctx.input(0);
            int axis = static_cast<int>(ctx.node().attr("axis").AsInt());
            if (axis < 0) {
                axis += g.shape().rank();
            }
            std::int64_t offset = 0;
            for (int i = 1; i < ctx.num_inputs(); ++i) {
                const Shape& ref = ctx.input(i).shape();
                std::vector<std::int64_t> begin(
                    static_cast<std::size_t>(g.shape().rank()), 0);
                std::vector<std::int64_t> size = g.shape().dims();
                begin[static_cast<std::size_t>(axis)] = offset;
                size[static_cast<std::size_t>(axis)] = ref.dim(axis);
                ctx.set_output(i - 1,
                               kernels::Slice(g, begin, size, ctx.pool()));
                offset += ref.dim(axis);
            }
        },
        MovementCost(), false});

    grads.Register(
        "Concat",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            std::vector<Output> inputs = {g[0]};
            for (const Output& in : node.inputs) {
                inputs.push_back(in);
            }
            const graph::NodeId id = b.AddNode(
                "concat_grad", "ConcatGrad", inputs,
                {{"axis", node.attr("axis")}},
                static_cast<int>(node.inputs.size()));
            std::vector<std::optional<Output>> result;
            for (int i = 0; i < static_cast<int>(node.inputs.size()); ++i) {
                result.push_back(Output{id, i});
            }
            return result;
        });

    // attrs: axis, num_splits; N equal outputs along the axis.
    ops.Register(OpDef{
        "Split", OpClass::kDataMovement,
        [](OpContext& ctx) {
            const Tensor& x = ctx.input(0);
            int axis = static_cast<int>(ctx.node().attr("axis").AsInt());
            if (axis < 0) {
                axis += x.shape().rank();
            }
            const std::int64_t n = ctx.node().attr("num_splits").AsInt();
            const std::int64_t extent = x.shape().dim(axis);
            if (n < 1 || extent % n != 0) {
                throw std::invalid_argument(
                    "Split: axis extent " + std::to_string(extent) +
                    " not divisible into " + std::to_string(n) + " parts");
            }
            const std::int64_t part = extent / n;
            for (std::int64_t i = 0; i < n; ++i) {
                std::vector<std::int64_t> begin(
                    static_cast<std::size_t>(x.shape().rank()), 0);
                std::vector<std::int64_t> size = x.shape().dims();
                begin[static_cast<std::size_t>(axis)] = i * part;
                size[static_cast<std::size_t>(axis)] = part;
                ctx.set_output(static_cast<int>(i),
                               kernels::Slice(x, begin, size, ctx.pool()));
            }
        },
        MovementCost(), false});

    grads.Register(
        "Split",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            // All output grads must exist (or be zero-filled); a Split
            // whose outputs feed a loss normally uses every part, as in
            // the LSTM gate computation. Missing grads are replaced by
            // zeros of the corresponding part.
            std::vector<Output> parts;
            for (std::size_t i = 0; i < g.size(); ++i) {
                if (g[i].node != -1) {
                    parts.push_back(g[i]);
                } else {
                    parts.push_back(b.AddOp(
                        "split_zero", "ZerosLike",
                        {Output{node.id, static_cast<int>(i)}}));
                }
            }
            return {b.Concat(parts, static_cast<int>(
                                        node.attr("axis").AsInt()))};
        });

    ops.Register(OpDef{
        "Slice", OpClass::kDataMovement,
        [](OpContext& ctx) {
            ctx.set_output(
                0, kernels::Slice(ctx.input(0),
                                  ctx.node().attr("begin").AsIntList(),
                                  ctx.node().attr("size").AsIntList(),
                                  ctx.pool()));
        },
        MovementCost(), false});

    // inputs: (grad, ref); scatter grad into zeros of ref's shape.
    ops.Register(OpDef{
        "SliceGrad", OpClass::kDataMovement,
        [](OpContext& ctx) {
            const Tensor& g = ctx.input(0);
            const Shape& ref = ctx.input(1).shape();
            const auto& begin = ctx.node().attr("begin").AsIntList();
            std::vector<std::pair<std::int64_t, std::int64_t>> paddings;
            for (int d = 0; d < ref.rank(); ++d) {
                const std::int64_t before = begin[static_cast<std::size_t>(d)];
                paddings.emplace_back(
                    before, ref.dim(d) - before - g.shape().dim(d));
            }
            ctx.set_output(0, kernels::Pad(g, paddings, ctx.pool()));
        },
        MovementCost(), false});

    grads.Register(
        "Slice",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            return {b.AddOp("slice_grad", "SliceGrad", {g[0], node.inputs[0]},
                            {{"begin", node.attr("begin")}})};
        });

    ops.Register(OpDef{
        "Gather", OpClass::kDataMovement,
        [](OpContext& ctx) {
            ctx.set_output(0, kernels::Gather(ctx.input(0), ctx.input(1),
                                              ctx.pool()));
        },
        [](const Node&, const std::vector<Tensor>& inputs,
           const std::vector<Tensor>& outputs) {
            graph::OpCost cost;
            cost.bytes = BytesOf(outputs) * 2.0 +
                         static_cast<double>(inputs[1].byte_size());
            cost.parallel_work = inputs[1].num_elements();
            return cost;
        },
        false});

    // inputs: (params_ref, indices, grad)
    ops.Register(OpDef{
        "GatherGrad", OpClass::kDataMovement,
        [](OpContext& ctx) {
            ctx.set_output(0, kernels::GatherGrad(ctx.input(0).shape(),
                                                  ctx.input(1), ctx.input(2),
                                                  ctx.pool()));
        },
        MovementCost(), false});

    grads.Register(
        "Gather",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            return {b.AddOp("gather_grad", "GatherGrad",
                            {node.inputs[0], node.inputs[1], g[0]}),
                    std::nullopt};
        });

    ops.Register(OpDef{
        "OneHot", OpClass::kDataMovement,
        [](OpContext& ctx) {
            ctx.set_output(
                0, kernels::OneHot(ctx.input(0),
                                   ctx.node().attr("depth").AsInt(),
                                   ctx.node().attr_float("on_value", 1.0f),
                                   ctx.node().attr_float("off_value", 0.0f),
                                   ctx.pool()));
        },
        MovementCost(), false});
    grads.Register(
        "OneHot",
        [](GraphBuilder&, const Node&, const std::vector<Output>&)
            -> std::vector<std::optional<Output>> { return {std::nullopt}; });

    ops.Register(OpDef{
        "Pad", OpClass::kDataMovement,
        [](OpContext& ctx) {
            ctx.set_output(
                0, kernels::Pad(ctx.input(0),
                                PaddingsFromAttr(
                                    ctx.node().attr("paddings").AsIntList()),
                                ctx.pool()));
        },
        MovementCost(), false});

    ops.Register(OpDef{
        "PadGrad", OpClass::kDataMovement,
        [](OpContext& ctx) {
            ctx.set_output(
                0, kernels::PadGrad(ctx.input(0),
                                    PaddingsFromAttr(
                                        ctx.node().attr("paddings")
                                            .AsIntList()),
                                    ctx.pool()));
        },
        MovementCost(), false});

    grads.Register(
        "Pad",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            return {b.AddOp("pad_grad", "PadGrad", {g[0]},
                            {{"paddings", node.attr("paddings")}})};
        });

    // ---- shape/dtype inference -------------------------------------------

    using graph::verify::InferenceContext;
    using graph::verify::TypeInfo;
    auto& shapes = graph::verify::ShapeFnRegistry::Global();

    // Normalizes a (possibly negative) axis attr against a rank.
    auto norm_axis = [](InferenceContext& ctx, std::int64_t axis,
                        int rank) -> int {
        std::int64_t a = axis;
        if (a < 0) {
            a += rank;
        }
        if (a < 0 || a >= rank) {
            ctx.Fail("axis " + std::to_string(axis) +
                     " out of range for rank " + std::to_string(rank));
        }
        return static_cast<int>(a);
    };

    shapes.Register("Reshape", [](InferenceContext& ctx) {
        if (ctx.num_inputs() != 1) {
            ctx.Fail("expected 1 input, got " +
                     std::to_string(ctx.num_inputs()));
        }
        const auto& target = ctx.RequireIntListAttr("shape");
        bool wildcard = false;
        for (std::int64_t d : target) {
            if (d == -1) {
                wildcard = true;
            }
        }
        TypeInfo out;
        if (ctx.KnownDType(0)) {
            out.has_dtype = true;
            out.dtype = ctx.input(0).dtype;
        }
        if (!wildcard) {
            out.has_shape = true;
            out.shape = Shape(target);
            if (ctx.KnownShape(0) &&
                out.shape.num_elements() !=
                    ctx.input(0).shape.num_elements()) {
                ctx.Fail("cannot reshape " + ctx.input(0).shape.ToString() +
                         " to " + out.shape.ToString());
            }
        } else if (ctx.KnownShape(0)) {
            try {
                out.has_shape = true;
                out.shape = ResolveReshape(ctx.input(0).shape, target);
            } catch (const graph::verify::InferenceError&) {
                throw;
            } catch (const std::exception& e) {
                ctx.Fail(e.what());
            }
        }
        ctx.set_output(0, out);
    });

    shapes.Register("ReshapeLike", [](InferenceContext& ctx) {
        if (ctx.num_inputs() != 2) {
            ctx.Fail("expected (x, ref) inputs, got " +
                     std::to_string(ctx.num_inputs()));
        }
        TypeInfo out;
        if (ctx.KnownDType(0)) {
            out.has_dtype = true;
            out.dtype = ctx.input(0).dtype;
        }
        if (ctx.KnownShape(1)) {
            out.has_shape = true;
            out.shape = ctx.input(1).shape;
        }
        if (ctx.KnownShape(0) && ctx.KnownShape(1) &&
            ctx.input(0).shape.num_elements() !=
                ctx.input(1).shape.num_elements()) {
            ctx.Fail("cannot reshape " + ctx.input(0).shape.ToString() +
                     " like " + ctx.input(1).shape.ToString() +
                     ": element counts differ");
        }
        ctx.set_output(0, out);
    });

    shapes.Register("Transpose", [](InferenceContext& ctx) {
        if (ctx.num_inputs() != 1) {
            ctx.Fail("expected 1 input, got " +
                     std::to_string(ctx.num_inputs()));
        }
        const auto& perm = ctx.RequireIntListAttr("perm");
        TypeInfo out;
        if (ctx.KnownDType(0)) {
            out.has_dtype = true;
            out.dtype = ctx.input(0).dtype;
        }
        if (ctx.KnownShape(0)) {
            const Shape& in = ctx.input(0).shape;
            if (static_cast<int>(perm.size()) != in.rank()) {
                ctx.Fail("perm has " + std::to_string(perm.size()) +
                         " entries for rank " + std::to_string(in.rank()));
            }
            std::vector<bool> seen(perm.size(), false);
            std::vector<std::int64_t> dims(perm.size());
            for (std::size_t i = 0; i < perm.size(); ++i) {
                const std::int64_t p = perm[i];
                if (p < 0 || p >= in.rank() ||
                    seen[static_cast<std::size_t>(p)]) {
                    ctx.Fail("perm is not a permutation of [0, " +
                             std::to_string(in.rank()) + ")");
                }
                seen[static_cast<std::size_t>(p)] = true;
                dims[i] = in.dim(static_cast<int>(p));
            }
            out.has_shape = true;
            out.shape = Shape(dims);
        }
        ctx.set_output(0, out);
    });

    shapes.Register("Concat", [norm_axis](InferenceContext& ctx) {
        if (ctx.num_inputs() < 1) {
            ctx.Fail("expected at least 1 input");
        }
        const std::int64_t axis_attr = ctx.RequireIntAttr("axis");
        TypeInfo out;
        for (int i = 0; i < ctx.num_inputs(); ++i) {
            if (!ctx.KnownDType(i)) {
                continue;
            }
            if (!out.has_dtype) {
                out.has_dtype = true;
                out.dtype = ctx.input(i).dtype;
            } else if (out.dtype != ctx.input(i).dtype) {
                ctx.Fail("input dtypes differ: expected " +
                         std::string(DTypeName(out.dtype)) + ", got " +
                         std::string(DTypeName(ctx.input(i).dtype)) +
                         " (input " + std::to_string(i) + ")");
            }
        }
        bool all_known = true;
        for (int i = 0; i < ctx.num_inputs(); ++i) {
            if (!ctx.KnownShape(i)) {
                all_known = false;
            }
        }
        if (all_known) {
            const Shape& first = ctx.input(0).shape;
            const int axis = norm_axis(ctx, axis_attr, first.rank());
            std::vector<std::int64_t> dims = first.dims();
            for (int i = 1; i < ctx.num_inputs(); ++i) {
                const Shape& s = ctx.input(i).shape;
                if (s.rank() != first.rank()) {
                    ctx.Fail("rank mismatch: expected " +
                             std::to_string(first.rank()) + ", got " +
                             std::to_string(s.rank()) + " (input " +
                             std::to_string(i) + ")");
                }
                for (int d = 0; d < first.rank(); ++d) {
                    if (d != axis && s.dim(d) != first.dim(d)) {
                        ctx.Fail("dim " + std::to_string(d) +
                                 ": expected " +
                                 std::to_string(first.dim(d)) + ", got " +
                                 std::to_string(s.dim(d)) + " (input " +
                                 std::to_string(i) + ")");
                    }
                }
                dims[static_cast<std::size_t>(axis)] += s.dim(axis);
            }
            out.has_shape = true;
            out.shape = Shape(dims);
        }
        ctx.set_output(0, out);
    });

    shapes.Register("ConcatGrad", [norm_axis](InferenceContext& ctx) {
        if (ctx.num_inputs() < 2) {
            ctx.Fail("expected (grad, ref...) inputs, got " +
                     std::to_string(ctx.num_inputs()));
        }
        if (ctx.num_outputs() != ctx.num_inputs() - 1) {
            ctx.Fail("expected " + std::to_string(ctx.num_inputs() - 1) +
                     " outputs, got " + std::to_string(ctx.num_outputs()));
        }
        const std::int64_t axis_attr = ctx.RequireIntAttr("axis");
        for (int i = 1; i < ctx.num_inputs(); ++i) {
            ctx.set_output(i - 1, ctx.input(i));
        }
        if (!ctx.KnownShape(0)) {
            return;
        }
        const Shape& grad = ctx.input(0).shape;
        const int axis = norm_axis(ctx, axis_attr, grad.rank());
        bool all_known = true;
        std::int64_t total = 0;
        for (int i = 1; i < ctx.num_inputs(); ++i) {
            if (!ctx.KnownShape(i)) {
                all_known = false;
                continue;
            }
            const Shape& ref = ctx.input(i).shape;
            if (ref.rank() != grad.rank()) {
                ctx.Fail("rank mismatch: expected " +
                         std::to_string(grad.rank()) + ", got " +
                         std::to_string(ref.rank()) + " (input " +
                         std::to_string(i) + ")");
            }
            total += ref.dim(axis);
        }
        if (all_known && total != grad.dim(axis)) {
            ctx.Fail("concat axis extents: expected " +
                     std::to_string(grad.dim(axis)) + ", got " +
                     std::to_string(total));
        }
    });

    shapes.Register("Split", [norm_axis](InferenceContext& ctx) {
        if (ctx.num_inputs() != 1) {
            ctx.Fail("expected 1 input, got " +
                     std::to_string(ctx.num_inputs()));
        }
        const std::int64_t n = ctx.RequireIntAttr("num_splits");
        const std::int64_t axis_attr = ctx.RequireIntAttr("axis");
        if (n < 1) {
            ctx.Fail("num_splits must be >= 1, got " + std::to_string(n));
        }
        if (ctx.num_outputs() != static_cast<int>(n)) {
            ctx.Fail("expected " + std::to_string(n) + " outputs, got " +
                     std::to_string(ctx.num_outputs()));
        }
        TypeInfo part;
        if (ctx.KnownDType(0)) {
            part.has_dtype = true;
            part.dtype = ctx.input(0).dtype;
        }
        if (ctx.KnownShape(0)) {
            const Shape& in = ctx.input(0).shape;
            const int axis = norm_axis(ctx, axis_attr, in.rank());
            if (in.dim(axis) % n != 0) {
                ctx.Fail("axis extent " + std::to_string(in.dim(axis)) +
                         " not divisible into " + std::to_string(n) +
                         " parts");
            }
            std::vector<std::int64_t> dims = in.dims();
            dims[static_cast<std::size_t>(axis)] /= n;
            part.has_shape = true;
            part.shape = Shape(dims);
        }
        for (int i = 0; i < ctx.num_outputs(); ++i) {
            ctx.set_output(i, part);
        }
    });

    shapes.Register("Slice", [](InferenceContext& ctx) {
        if (ctx.num_inputs() != 1) {
            ctx.Fail("expected 1 input, got " +
                     std::to_string(ctx.num_inputs()));
        }
        const auto& begin = ctx.RequireIntListAttr("begin");
        const auto& size = ctx.RequireIntListAttr("size");
        if (begin.size() != size.size()) {
            ctx.Fail("begin has " + std::to_string(begin.size()) +
                     " entries, size has " + std::to_string(size.size()));
        }
        TypeInfo out;
        if (ctx.KnownDType(0)) {
            out.has_dtype = true;
            out.dtype = ctx.input(0).dtype;
        }
        if (ctx.KnownShape(0)) {
            const Shape& in = ctx.input(0).shape;
            if (static_cast<int>(begin.size()) != in.rank()) {
                ctx.Fail("begin has " + std::to_string(begin.size()) +
                         " entries for rank " + std::to_string(in.rank()));
            }
            std::vector<std::int64_t> dims(begin.size());
            for (int d = 0; d < in.rank(); ++d) {
                const std::int64_t b = begin[static_cast<std::size_t>(d)];
                // -1 = "to the end of the axis", as the kernel resolves.
                const std::int64_t s =
                    size[static_cast<std::size_t>(d)] == -1
                        ? in.dim(d) - b
                        : size[static_cast<std::size_t>(d)];
                if (b < 0 || s < 0 || b + s > in.dim(d)) {
                    ctx.Fail("dim " + std::to_string(d) + ": slice [" +
                             std::to_string(b) + ", " +
                             std::to_string(b + s) +
                             ") out of range [0, " +
                             std::to_string(in.dim(d)) + ")");
                }
                dims[static_cast<std::size_t>(d)] = s;
            }
            out.has_shape = true;
            out.shape = Shape(dims);
        } else {
            bool sizes_known = true;
            for (std::int64_t s : size) {
                if (s < 0) {
                    sizes_known = false;
                }
            }
            if (sizes_known) {
                out.has_shape = true;
                out.shape = Shape(size);
            }
        }
        ctx.set_output(0, out);
    });

    shapes.Register("SliceGrad", [](InferenceContext& ctx) {
        if (ctx.num_inputs() != 2) {
            ctx.Fail("expected (grad, ref) inputs, got " +
                     std::to_string(ctx.num_inputs()));
        }
        const auto& begin = ctx.RequireIntListAttr("begin");
        if (ctx.KnownShape(0) && ctx.KnownShape(1)) {
            const Shape& grad = ctx.input(0).shape;
            const Shape& ref = ctx.input(1).shape;
            if (grad.rank() != ref.rank() ||
                static_cast<int>(begin.size()) != ref.rank()) {
                ctx.Fail("rank mismatch between grad " + grad.ToString() +
                         ", ref " + ref.ToString() + ", and begin of " +
                         std::to_string(begin.size()) + " entries");
            }
            for (int d = 0; d < ref.rank(); ++d) {
                const std::int64_t b = begin[static_cast<std::size_t>(d)];
                if (b < 0 || b + grad.dim(d) > ref.dim(d)) {
                    ctx.Fail("dim " + std::to_string(d) +
                             ": scattered slice [" + std::to_string(b) +
                             ", " + std::to_string(b + grad.dim(d)) +
                             ") out of range [0, " +
                             std::to_string(ref.dim(d)) + ")");
                }
            }
        }
        ctx.set_output(0, ctx.input(1));
    });

    shapes.Register("Gather", [](InferenceContext& ctx) {
        if (ctx.num_inputs() != 2) {
            ctx.Fail("expected (params, indices) inputs, got " +
                     std::to_string(ctx.num_inputs()));
        }
        ctx.ExpectDType(1, DType::kInt32);
        TypeInfo out;
        if (ctx.KnownDType(0)) {
            out.has_dtype = true;
            out.dtype = ctx.input(0).dtype;
        }
        if (ctx.KnownShape(0) && ctx.KnownShape(1)) {
            const Shape& params = ctx.input(0).shape;
            if (params.rank() < 1) {
                ctx.Fail("params must have rank >= 1, got " +
                         params.ToString());
            }
            std::vector<std::int64_t> dims = ctx.input(1).shape.dims();
            for (int d = 1; d < params.rank(); ++d) {
                dims.push_back(params.dim(d));
            }
            out.has_shape = true;
            out.shape = Shape(dims);
        }
        ctx.set_output(0, out);
    });

    shapes.Register("GatherGrad", [](InferenceContext& ctx) {
        if (ctx.num_inputs() != 3) {
            ctx.Fail("expected (params_ref, indices, grad) inputs, got " +
                     std::to_string(ctx.num_inputs()));
        }
        ctx.ExpectDType(1, DType::kInt32);
        if (ctx.KnownShape(0) && ctx.KnownShape(1) && ctx.KnownShape(2)) {
            const Shape& params = ctx.input(0).shape;
            std::vector<std::int64_t> dims = ctx.input(1).shape.dims();
            for (int d = 1; d < params.rank(); ++d) {
                dims.push_back(params.dim(d));
            }
            const Shape expected(dims);
            if (!(ctx.input(2).shape == expected)) {
                ctx.Fail("grad shape: expected " + expected.ToString() +
                         ", got " + ctx.input(2).shape.ToString());
            }
        }
        ctx.set_output(0, ctx.input(0));
    });

    shapes.Register("OneHot", [](InferenceContext& ctx) {
        if (ctx.num_inputs() != 1) {
            ctx.Fail("expected 1 input, got " +
                     std::to_string(ctx.num_inputs()));
        }
        ctx.ExpectDType(0, DType::kInt32);
        const std::int64_t depth = ctx.RequireIntAttr("depth");
        if (depth < 1) {
            ctx.Fail("depth must be >= 1, got " + std::to_string(depth));
        }
        TypeInfo out = TypeInfo::OfDType(DType::kFloat32);
        if (ctx.KnownShape(0)) {
            std::vector<std::int64_t> dims = ctx.input(0).shape.dims();
            dims.push_back(depth);
            out.has_shape = true;
            out.shape = Shape(dims);
        }
        ctx.set_output(0, out);
    });

    // Pad adds (before + after) to each dim; PadGrad removes it.
    auto pad_shape = [](InferenceContext& ctx, std::int64_t sign) {
        if (ctx.num_inputs() != 1) {
            ctx.Fail("expected 1 input, got " +
                     std::to_string(ctx.num_inputs()));
        }
        const auto& flat = ctx.RequireIntListAttr("paddings");
        if (flat.size() % 2 != 0) {
            ctx.Fail("paddings attr must have even length, got " +
                     std::to_string(flat.size()));
        }
        TypeInfo out;
        if (ctx.KnownDType(0)) {
            out.has_dtype = true;
            out.dtype = ctx.input(0).dtype;
        }
        if (ctx.KnownShape(0)) {
            const Shape& in = ctx.input(0).shape;
            if (static_cast<int>(flat.size()) != 2 * in.rank()) {
                ctx.Fail("paddings has " + std::to_string(flat.size()) +
                         " entries for rank " + std::to_string(in.rank()));
            }
            std::vector<std::int64_t> dims(
                static_cast<std::size_t>(in.rank()));
            for (int d = 0; d < in.rank(); ++d) {
                const std::int64_t v =
                    in.dim(d) +
                    sign * (flat[static_cast<std::size_t>(2 * d)] +
                            flat[static_cast<std::size_t>(2 * d + 1)]);
                if (v < 0) {
                    ctx.Fail("dim " + std::to_string(d) +
                             ": padded extent is negative (" +
                             std::to_string(v) + ")");
                }
                dims[static_cast<std::size_t>(d)] = v;
            }
            out.has_shape = true;
            out.shape = Shape(dims);
        }
        ctx.set_output(0, out);
    };
    shapes.Register("Pad",
                    [pad_shape](InferenceContext& ctx) { pad_shape(ctx, 1); });
    shapes.Register("PadGrad", [pad_shape](InferenceContext& ctx) {
        pad_shape(ctx, -1);
    });
}

}  // namespace fathom::ops
