/**
 * @file
 * Data-movement ops: Reshape, Transpose, Concat, Slice, Gather, OneHot,
 * Pad, and their gradient helper ops.
 */
#include <stdexcept>

#include "autodiff/gradients.h"
#include "graph/op_registry.h"
#include "kernels/data_movement.h"
#include "ops/common.h"
#include "ops/register.h"

namespace fathom::ops {

using autodiff::GradientRegistry;
using graph::AttrValue;
using graph::GraphBuilder;
using graph::Node;
using graph::OpClass;
using graph::OpContext;
using graph::OpDef;
using graph::OpRegistry;
using graph::Output;

namespace {

/** Resolves a reshape target allowing a single -1 wildcard. */
Shape
ResolveReshape(const Shape& input, const std::vector<std::int64_t>& target)
{
    std::int64_t known = 1;
    int wildcard = -1;
    for (std::size_t i = 0; i < target.size(); ++i) {
        if (target[i] == -1) {
            if (wildcard != -1) {
                throw std::invalid_argument("Reshape: multiple -1 dims");
            }
            wildcard = static_cast<int>(i);
        } else {
            known *= target[i];
        }
    }
    std::vector<std::int64_t> dims = target;
    if (wildcard >= 0) {
        if (known == 0 || input.num_elements() % known != 0) {
            throw std::invalid_argument("Reshape: cannot infer -1 dim");
        }
        dims[static_cast<std::size_t>(wildcard)] =
            input.num_elements() / known;
    }
    return Shape(dims);
}

std::vector<std::pair<std::int64_t, std::int64_t>>
PaddingsFromAttr(const std::vector<std::int64_t>& flat)
{
    if (flat.size() % 2 != 0) {
        throw std::invalid_argument("paddings attr must have even length");
    }
    std::vector<std::pair<std::int64_t, std::int64_t>> paddings;
    for (std::size_t i = 0; i < flat.size(); i += 2) {
        paddings.emplace_back(flat[i], flat[i + 1]);
    }
    return paddings;
}

graph::CostFn
MovementCost()
{
    return [](const Node&, const std::vector<Tensor>& inputs,
              const std::vector<Tensor>& outputs) {
        graph::OpCost cost;
        cost.flops = 0.0;
        cost.bytes = BytesOf(inputs) + BytesOf(outputs);
        cost.parallel_work = 1;
        return cost;
    };
}

}  // namespace

void
RegisterMovementOps()
{
    OpRegistry& ops = OpRegistry::Global();
    GradientRegistry& grads = GradientRegistry::Global();

    ops.Register(OpDef{
        "Reshape", OpClass::kDataMovement,
        [](OpContext& ctx) {
            ctx.set_output(0, ctx.input(0).Reshape(ResolveReshape(
                                  ctx.input(0).shape(),
                                  ctx.node().attr("shape").AsIntList())));
        },
        MovementCost(), false});

    // inputs: (x, ref): reshape x to ref's shape (dynamic Reshape).
    ops.Register(OpDef{
        "ReshapeLike", OpClass::kDataMovement,
        [](OpContext& ctx) {
            ctx.set_output(0, ctx.input(0).Reshape(ctx.input(1).shape()));
        },
        MovementCost(), false});

    auto reshape_grad = [](GraphBuilder& b, const Node& node,
                           const std::vector<Output>& g)
        -> std::vector<std::optional<Output>> {
        std::vector<std::optional<Output>> result;
        result.push_back(b.AddOp("reshape_grad", "ReshapeLike",
                                 {g[0], node.inputs[0]}));
        for (std::size_t i = 1; i < node.inputs.size(); ++i) {
            result.push_back(std::nullopt);
        }
        return result;
    };
    grads.Register("Reshape", reshape_grad);
    grads.Register("ReshapeLike", reshape_grad);

    ops.Register(OpDef{
        "Transpose", OpClass::kDataMovement,
        [](OpContext& ctx) {
            std::vector<int> perm;
            for (std::int64_t p : ctx.node().attr("perm").AsIntList()) {
                perm.push_back(static_cast<int>(p));
            }
            ctx.set_output(0,
                           kernels::Transpose(ctx.input(0), perm, ctx.pool()));
        },
        MovementCost(), false});

    grads.Register(
        "Transpose",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            const auto& perm = node.attr("perm").AsIntList();
            std::vector<std::int64_t> inverse(perm.size());
            for (std::size_t i = 0; i < perm.size(); ++i) {
                inverse[static_cast<std::size_t>(perm[i])] =
                    static_cast<std::int64_t>(i);
            }
            return {b.Transpose(g[0], inverse)};
        });

    ops.Register(OpDef{
        "Concat", OpClass::kDataMovement,
        [](OpContext& ctx) {
            std::vector<Tensor> inputs;
            for (int i = 0; i < ctx.num_inputs(); ++i) {
                inputs.push_back(ctx.input(i));
            }
            ctx.set_output(
                0, kernels::Concat(inputs,
                                   static_cast<int>(
                                       ctx.node().attr("axis").AsInt()),
                                   ctx.pool()));
        },
        MovementCost(), false});

    // inputs: (grad, ref_0, ..., ref_{n-1}); n outputs, one per ref.
    ops.Register(OpDef{
        "ConcatGrad", OpClass::kDataMovement,
        [](OpContext& ctx) {
            const Tensor& g = ctx.input(0);
            int axis = static_cast<int>(ctx.node().attr("axis").AsInt());
            if (axis < 0) {
                axis += g.shape().rank();
            }
            std::int64_t offset = 0;
            for (int i = 1; i < ctx.num_inputs(); ++i) {
                const Shape& ref = ctx.input(i).shape();
                std::vector<std::int64_t> begin(
                    static_cast<std::size_t>(g.shape().rank()), 0);
                std::vector<std::int64_t> size = g.shape().dims();
                begin[static_cast<std::size_t>(axis)] = offset;
                size[static_cast<std::size_t>(axis)] = ref.dim(axis);
                ctx.set_output(i - 1,
                               kernels::Slice(g, begin, size, ctx.pool()));
                offset += ref.dim(axis);
            }
        },
        MovementCost(), false});

    grads.Register(
        "Concat",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            std::vector<Output> inputs = {g[0]};
            for (const Output& in : node.inputs) {
                inputs.push_back(in);
            }
            const graph::NodeId id = b.AddNode(
                "concat_grad", "ConcatGrad", inputs,
                {{"axis", node.attr("axis")}},
                static_cast<int>(node.inputs.size()));
            std::vector<std::optional<Output>> result;
            for (int i = 0; i < static_cast<int>(node.inputs.size()); ++i) {
                result.push_back(Output{id, i});
            }
            return result;
        });

    // attrs: axis, num_splits; N equal outputs along the axis.
    ops.Register(OpDef{
        "Split", OpClass::kDataMovement,
        [](OpContext& ctx) {
            const Tensor& x = ctx.input(0);
            int axis = static_cast<int>(ctx.node().attr("axis").AsInt());
            if (axis < 0) {
                axis += x.shape().rank();
            }
            const std::int64_t n = ctx.node().attr("num_splits").AsInt();
            const std::int64_t extent = x.shape().dim(axis);
            if (n < 1 || extent % n != 0) {
                throw std::invalid_argument(
                    "Split: axis extent " + std::to_string(extent) +
                    " not divisible into " + std::to_string(n) + " parts");
            }
            const std::int64_t part = extent / n;
            for (std::int64_t i = 0; i < n; ++i) {
                std::vector<std::int64_t> begin(
                    static_cast<std::size_t>(x.shape().rank()), 0);
                std::vector<std::int64_t> size = x.shape().dims();
                begin[static_cast<std::size_t>(axis)] = i * part;
                size[static_cast<std::size_t>(axis)] = part;
                ctx.set_output(static_cast<int>(i),
                               kernels::Slice(x, begin, size, ctx.pool()));
            }
        },
        MovementCost(), false});

    grads.Register(
        "Split",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            // All output grads must exist (or be zero-filled); a Split
            // whose outputs feed a loss normally uses every part, as in
            // the LSTM gate computation. Missing grads are replaced by
            // zeros of the corresponding part.
            std::vector<Output> parts;
            for (std::size_t i = 0; i < g.size(); ++i) {
                if (g[i].node != -1) {
                    parts.push_back(g[i]);
                } else {
                    parts.push_back(b.AddOp(
                        "split_zero", "ZerosLike",
                        {Output{node.id, static_cast<int>(i)}}));
                }
            }
            return {b.Concat(parts, static_cast<int>(
                                        node.attr("axis").AsInt()))};
        });

    ops.Register(OpDef{
        "Slice", OpClass::kDataMovement,
        [](OpContext& ctx) {
            ctx.set_output(
                0, kernels::Slice(ctx.input(0),
                                  ctx.node().attr("begin").AsIntList(),
                                  ctx.node().attr("size").AsIntList(),
                                  ctx.pool()));
        },
        MovementCost(), false});

    // inputs: (grad, ref); scatter grad into zeros of ref's shape.
    ops.Register(OpDef{
        "SliceGrad", OpClass::kDataMovement,
        [](OpContext& ctx) {
            const Tensor& g = ctx.input(0);
            const Shape& ref = ctx.input(1).shape();
            const auto& begin = ctx.node().attr("begin").AsIntList();
            std::vector<std::pair<std::int64_t, std::int64_t>> paddings;
            for (int d = 0; d < ref.rank(); ++d) {
                const std::int64_t before = begin[static_cast<std::size_t>(d)];
                paddings.emplace_back(
                    before, ref.dim(d) - before - g.shape().dim(d));
            }
            ctx.set_output(0, kernels::Pad(g, paddings, ctx.pool()));
        },
        MovementCost(), false});

    grads.Register(
        "Slice",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            return {b.AddOp("slice_grad", "SliceGrad", {g[0], node.inputs[0]},
                            {{"begin", node.attr("begin")}})};
        });

    ops.Register(OpDef{
        "Gather", OpClass::kDataMovement,
        [](OpContext& ctx) {
            ctx.set_output(0, kernels::Gather(ctx.input(0), ctx.input(1),
                                              ctx.pool()));
        },
        [](const Node&, const std::vector<Tensor>& inputs,
           const std::vector<Tensor>& outputs) {
            graph::OpCost cost;
            cost.bytes = BytesOf(outputs) * 2.0 +
                         static_cast<double>(inputs[1].byte_size());
            cost.parallel_work = inputs[1].num_elements();
            return cost;
        },
        false});

    // inputs: (params_ref, indices, grad)
    ops.Register(OpDef{
        "GatherGrad", OpClass::kDataMovement,
        [](OpContext& ctx) {
            ctx.set_output(0, kernels::GatherGrad(ctx.input(0).shape(),
                                                  ctx.input(1), ctx.input(2),
                                                  ctx.pool()));
        },
        MovementCost(), false});

    grads.Register(
        "Gather",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            return {b.AddOp("gather_grad", "GatherGrad",
                            {node.inputs[0], node.inputs[1], g[0]}),
                    std::nullopt};
        });

    ops.Register(OpDef{
        "OneHot", OpClass::kDataMovement,
        [](OpContext& ctx) {
            ctx.set_output(
                0, kernels::OneHot(ctx.input(0),
                                   ctx.node().attr("depth").AsInt(),
                                   ctx.node().attr_float("on_value", 1.0f),
                                   ctx.node().attr_float("off_value", 0.0f),
                                   ctx.pool()));
        },
        MovementCost(), false});
    grads.Register(
        "OneHot",
        [](GraphBuilder&, const Node&, const std::vector<Output>&)
            -> std::vector<std::optional<Output>> { return {std::nullopt}; });

    ops.Register(OpDef{
        "Pad", OpClass::kDataMovement,
        [](OpContext& ctx) {
            ctx.set_output(
                0, kernels::Pad(ctx.input(0),
                                PaddingsFromAttr(
                                    ctx.node().attr("paddings").AsIntList()),
                                ctx.pool()));
        },
        MovementCost(), false});

    ops.Register(OpDef{
        "PadGrad", OpClass::kDataMovement,
        [](OpContext& ctx) {
            ctx.set_output(
                0, kernels::PadGrad(ctx.input(0),
                                    PaddingsFromAttr(
                                        ctx.node().attr("paddings")
                                            .AsIntList()),
                                    ctx.pool()));
        },
        MovementCost(), false});

    grads.Register(
        "Pad",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            return {b.AddOp("pad_grad", "PadGrad", {g[0]},
                            {{"paddings", node.attr("paddings")}})};
        });
}

}  // namespace fathom::ops
