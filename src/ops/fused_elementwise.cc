/**
 * @file
 * FusedElementwise: one kernel replaying a fused elementwise chain.
 *
 * Created exclusively by the elementwise-chain fusion rewrite. Node
 * attrs encode the chain: "ops" (comma-joined op types, in execution
 * order), "kinds" (per-stage int: 0 unary, 1 binary with the chain
 * value as lhs, 2 binary with the chain value as rhs), and "p<i>_<j>"
 * (stage i's j-th captured float attr, e.g. Pow's exponent). Input 0 is
 * the chain's start value; each binary stage appends its side operand
 * as the next input, in stage order.
 *
 * Bit identity with the unfused chain is structural: every stage calls
 * the exact scalar function the standalone op kernel calls (shared via
 * FusionStageRegistry), and each element's value depends only on its
 * own index, so making one pass instead of N cannot change any bit.
 */
#include <stdexcept>
#include <vector>

#include "graph/op_registry.h"
#include "graph/rewrite/fusion_stages.h"
#include "graph/verify/shape_inference.h"
#include "kernels/elementwise.h"
#include "ops/common.h"
#include "ops/register.h"

namespace fathom::ops {

using graph::Node;
using graph::OpClass;
using graph::OpContext;
using graph::OpCost;
using graph::OpDef;
using graph::OpRegistry;
using graph::rewrite::FusionStage;
using graph::rewrite::FusionStageRegistry;

namespace {

/** One decoded stage of the chain. */
struct DecodedStage {
    const FusionStage* stage = nullptr;
    int kind = 0;             ///< 0 unary, 1 chain-lhs, 2 chain-rhs.
    int side_input = -1;      ///< ctx input index of the side operand.
    std::vector<float> params;
};

std::vector<DecodedStage>
DecodeStages(const Node& node)
{
    const FusionStageRegistry& registry = FusionStageRegistry::Global();
    const std::string ops = node.attr("ops").AsString();
    const std::vector<std::int64_t> kinds = node.attr("kinds").AsIntList();

    std::vector<DecodedStage> stages;
    int side_input = 1;
    std::size_t start = 0;
    while (start <= ops.size()) {
        std::size_t end = ops.find(',', start);
        if (end == std::string::npos) {
            end = ops.size();
        }
        const std::string op_type = ops.substr(start, end - start);
        DecodedStage decoded;
        decoded.stage = registry.Find(op_type);
        if (decoded.stage == nullptr) {
            throw std::logic_error("FusedElementwise: unknown stage '" +
                                   op_type + "'");
        }
        const std::size_t i = stages.size();
        if (i >= kinds.size()) {
            throw std::logic_error("FusedElementwise: ops/kinds mismatch");
        }
        decoded.kind = static_cast<int>(kinds[i]);
        if (decoded.kind != 0) {
            decoded.side_input = side_input++;
        }
        decoded.params.reserve(decoded.stage->param_attrs.size());
        for (std::size_t j = 0; j < decoded.stage->param_attrs.size(); ++j) {
            decoded.params.push_back(
                node.attr("p" + std::to_string(i) + "_" + std::to_string(j))
                    .AsFloat());
        }
        stages.push_back(std::move(decoded));
        start = end + 1;
    }
    return stages;
}

void
FusedElementwiseKernel(OpContext& ctx)
{
    const std::vector<DecodedStage> stages = DecodeStages(ctx.node());
    const Tensor& chain0 = ctx.input(0);

    // Fast path: every side operand has the chain's shape or a single
    // element, so the whole chain is one loop over elements. Otherwise
    // (a broadcast changes the chain's shape mid-way) fall back to
    // stage-by-stage maps — the same calls the unfused ops would make.
    bool fast = chain0.dtype() == DType::kFloat32;
    for (const DecodedStage& s : stages) {
        if (s.kind == 0) {
            continue;
        }
        const Tensor& side = ctx.input(s.side_input);
        if (side.dtype() != DType::kFloat32 ||
            (side.shape() != chain0.shape() && side.num_elements() != 1)) {
            fast = false;
        }
    }

    if (fast) {
        Tensor out = ctx.may_alias_input()
                         ? chain0
                         : Tensor(DType::kFloat32, chain0.shape());
        struct Step {
            float (*unary)(float, const float*);
            float (*binary)(float, float, const float*);
            int kind;
            const float* side;
            std::int64_t side_stride;  ///< 0 for single-element sides.
            const float* params;
        };
        std::vector<Step> steps;
        steps.reserve(stages.size());
        for (const DecodedStage& s : stages) {
            Step step{s.stage->unary, s.stage->binary, s.kind, nullptr, 0,
                      s.params.data()};
            if (s.kind != 0) {
                const Tensor& side = ctx.input(s.side_input);
                step.side = side.data<float>();
                step.side_stride = side.num_elements() == 1 ? 0 : 1;
            }
            steps.push_back(step);
        }
        const float* in = chain0.data<float>();
        float* o = out.data<float>();
        ctx.pool().ParallelFor(
            chain0.num_elements(), /*grain=*/4096,
            [&](std::int64_t i0, std::int64_t i1) {
                for (std::int64_t i = i0; i < i1; ++i) {
                    float v = in[i];
                    for (const Step& s : steps) {
                        if (s.kind == 0) {
                            v = s.unary(v, s.params);
                        } else {
                            const float side = s.side[i * s.side_stride];
                            v = s.kind == 1 ? s.binary(v, side, s.params)
                                            : s.binary(side, v, s.params);
                        }
                    }
                    o[i] = v;
                }
            });
        ctx.set_output(0, std::move(out));
        return;
    }

    Tensor cur = chain0;
    bool first = true;
    for (const DecodedStage& s : stages) {
        // Intermediates are private to this kernel, so later stages may
        // always write in place; the first stage touches the caller's
        // input and needs the executor's grant.
        const bool alias = first ? ctx.may_alias_input() : true;
        const float* p = s.params.data();
        if (s.kind == 0) {
            auto fn = s.stage->unary;
            cur = kernels::UnaryMap(
                cur, [fn, p](float x) { return fn(x, p); }, ctx.pool(),
                alias);
        } else {
            const Tensor& side = ctx.input(s.side_input);
            auto fn = s.stage->binary;
            // Always pass the chain value as BinaryMap's first operand
            // (the alias target); kind 2 flips the arguments at the
            // scalar level, which computes identical bits because each
            // tensor's broadcast offsets depend only on its own shape.
            cur = kernels::BinaryMap(
                cur, side,
                s.kind == 1
                    ? std::function<float(float, float)>(
                          [fn, p](float a, float b) { return fn(a, b, p); })
                    : std::function<float(float, float)>(
                          [fn, p](float a, float b) { return fn(b, a, p); }),
                ctx.pool(), alias);
        }
        first = false;
    }
    ctx.set_output(0, std::move(cur));
}

OpCost
FusedElementwiseCost(const Node& node, const std::vector<Tensor>& inputs,
                     const std::vector<Tensor>& outputs)
{
    double flops_per_elem = 0.0;
    const std::vector<DecodedStage> stages = DecodeStages(node);
    for (const DecodedStage& s : stages) {
        flops_per_elem += s.stage->flops_per_elem;
    }
    const std::int64_t n =
        outputs.empty() || !outputs[0].initialized()
            ? 0
            : outputs[0].num_elements();
    OpCost cost;
    cost.flops = flops_per_elem * static_cast<double>(n);
    cost.bytes = BytesOf(inputs) + BytesOf(outputs);
    cost.parallel_work = n;
    return cost;
}

}  // namespace

void
RegisterFusedOps()
{
    OpRegistry::Global().Register(OpDef{
        "FusedElementwise", OpClass::kElementwise, FusedElementwiseKernel,
        FusedElementwiseCost, false, /*supports_inplace=*/true});

    // Attr-schema check: the encoded chain must decode against the
    // FusionStageRegistry (every stage known, kinds parallel to ops,
    // every captured param attr present) and the input count must match
    // the number of binary stages.
    graph::verify::ShapeFnRegistry::Global().Register(
        "FusedElementwise", [](graph::verify::InferenceContext& ctx) {
            using graph::verify::TypeInfo;
            if (ctx.num_inputs() < 1) {
                ctx.Fail("expected at least 1 input");
            }
            std::vector<DecodedStage> stages;
            try {
                stages = DecodeStages(ctx.node());
            } catch (const std::exception& e) {
                ctx.Fail(e.what());
            }
            int expected = 1;
            for (const DecodedStage& s : stages) {
                if (s.kind < 0 || s.kind > 2) {
                    ctx.Fail("kinds attr entry out of range: " +
                             std::to_string(s.kind));
                }
                if (s.kind != 0) {
                    ++expected;
                }
            }
            if (ctx.num_inputs() != expected) {
                ctx.Fail("encoded chain needs " + std::to_string(expected) +
                         " inputs, got " + std::to_string(ctx.num_inputs()));
            }
            bool all_known = true;
            for (int i = 0; i < ctx.num_inputs(); ++i) {
                ctx.ExpectDType(i, DType::kFloat32);
                if (!ctx.KnownShape(i)) {
                    all_known = false;
                }
            }
            TypeInfo out = TypeInfo::OfDType(DType::kFloat32);
            if (all_known) {
                Shape chain = ctx.input(0).shape;
                for (const DecodedStage& s : stages) {
                    if (s.kind == 0) {
                        continue;
                    }
                    try {
                        chain = graph::verify::BroadcastShapes(
                            chain, ctx.input(s.side_input).shape);
                    } catch (const std::exception& e) {
                        ctx.Fail(e.what());
                    }
                }
                out.has_shape = true;
                out.shape = chain;
            }
            ctx.set_output(0, out);
        });
}

}  // namespace fathom::ops
