#include "ops/common.h"

#include <stdexcept>

namespace fathom::ops {

graph::CostFn
ElementwiseCost(double flops_per_elem)
{
    return [flops_per_elem](const graph::Node&,
                            const std::vector<Tensor>& inputs,
                            const std::vector<Tensor>& outputs) {
        graph::OpCost cost;
        std::int64_t n = 0;
        for (const Tensor& out : outputs) {
            if (out.initialized()) {
                n += out.num_elements();
            }
        }
        cost.flops = flops_per_elem * static_cast<double>(n);
        cost.bytes = BytesOf(inputs) + BytesOf(outputs);
        cost.parallel_work = n;
        return cost;
    };
}

graph::CostFn
SerialCost(double flops_per_elem)
{
    return [flops_per_elem](const graph::Node&,
                            const std::vector<Tensor>& inputs,
                            const std::vector<Tensor>& outputs) {
        graph::OpCost cost;
        std::int64_t n = 0;
        for (const Tensor& in : inputs) {
            if (in.initialized()) {
                n += in.num_elements();
            }
        }
        cost.flops = flops_per_elem * static_cast<double>(n);
        cost.bytes = BytesOf(inputs) + BytesOf(outputs);
        cost.parallel_work = 1;
        return cost;
    };
}

graph::CostFn
MovedBytesCost()
{
    return [](const graph::Node&, const std::vector<Tensor>& inputs,
              const std::vector<Tensor>& outputs) {
        graph::OpCost cost;
        cost.flops = 0.0;
        cost.bytes = BytesOf(inputs) + BytesOf(outputs);
        cost.parallel_work = 1;
        return cost;
    };
}

kernels::Padding
ParsePadding(const std::string& value)
{
    if (value == "SAME") {
        return kernels::Padding::kSame;
    }
    if (value == "VALID") {
        return kernels::Padding::kValid;
    }
    throw std::invalid_argument("unknown padding '" + value + "'");
}

Shape
ShapeFromAttr(const std::vector<std::int64_t>& dims)
{
    return Shape(dims);
}

}  // namespace fathom::ops
