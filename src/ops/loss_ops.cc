/**
 * @file
 * Loss ops: softmax cross-entropy and CTC.
 *
 * Both are tagged as Optimization-class ops, following the paper's
 * treatment of loss evaluation as part of the training-only
 * optimization machinery (Sec. V-D: "the evaluation of the loss
 * function ... is only computed during the backwards phase").
 */
#include <cmath>

#include "autodiff/gradients.h"
#include "graph/op_registry.h"
#include "graph/verify/shape_inference.h"
#include "kernels/ctc.h"
#include "kernels/reduction.h"
#include "ops/common.h"
#include "ops/register.h"

namespace fathom::ops {

using autodiff::GradientRegistry;
using graph::GraphBuilder;
using graph::Node;
using graph::OpClass;
using graph::OpContext;
using graph::OpDef;
using graph::OpRegistry;
using graph::Output;

void
RegisterLossOps()
{
    OpRegistry& ops = OpRegistry::Global();
    GradientRegistry& grads = GradientRegistry::Global();

    // inputs: (logits [n, c], labels int32 [n]);
    // outputs: (mean loss scalar, d(mean loss)/d(logits) [n, c])
    ops.Register(OpDef{
        "SoftmaxCrossEntropy", OpClass::kOptimization,
        [](OpContext& ctx) {
            const Tensor& logits = ctx.input(0);
            const Tensor& labels = ctx.input(1);
            if (logits.shape().rank() != 2) {
                throw std::invalid_argument(
                    "SoftmaxCrossEntropy: logits must be [n, c]");
            }
            const std::int64_t n = logits.shape().dim(0);
            const std::int64_t c = logits.shape().dim(1);
            if (labels.num_elements() != n ||
                labels.dtype() != DType::kInt32) {
                throw std::invalid_argument(
                    "SoftmaxCrossEntropy: labels must be int32 [n]");
            }

            const Tensor log_probs =
                kernels::LogSoftmax(logits, ctx.pool());
            const float* lp = log_probs.data<float>();
            const std::int32_t* y = labels.data<std::int32_t>();

            Tensor grad(DType::kFloat32, logits.shape());
            float* g = grad.data<float>();
            double loss = 0.0;
            const float inv_n = 1.0f / static_cast<float>(n);
            for (std::int64_t i = 0; i < n; ++i) {
                if (y[i] < 0 || y[i] >= c) {
                    throw std::out_of_range(
                        "SoftmaxCrossEntropy: label out of range");
                }
                loss -= static_cast<double>(lp[i * c + y[i]]);
                for (std::int64_t j = 0; j < c; ++j) {
                    // d(mean nll)/d(logit) = (softmax - onehot) / n
                    g[i * c + j] = (std::exp(lp[i * c + j]) -
                                    (j == y[i] ? 1.0f : 0.0f)) *
                                   inv_n;
                }
            }
            ctx.set_output(0, Tensor::Scalar(static_cast<float>(
                                  loss / static_cast<double>(n))));
            ctx.set_output(1, std::move(grad));
        },
        SerialCost(20.0), false});

    grads.Register(
        "SoftmaxCrossEntropy",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            if (g[0].node == -1) {
                // Only the cached-gradient output was consumed; nothing
                // differentiable flows.
                return {std::nullopt, std::nullopt};
            }
            // d loss/d logits = upstream_scalar * cached gradient.
            return {b.Mul(g[0], Output{node.id, 1}), std::nullopt};
        });

    // inputs: (logits [t, c], labels int32 [l]);
    // outputs: (loss scalar, d(loss)/d(logits) [t, c])
    ops.Register(OpDef{
        "CtcLoss", OpClass::kOptimization,
        [](OpContext& ctx) {
            const Tensor& labels = ctx.input(1);
            std::vector<std::int32_t> label_vec;
            const std::int32_t* y = labels.data<std::int32_t>();
            for (std::int64_t i = 0; i < labels.num_elements(); ++i) {
                // Negative entries mark padding in fixed-size label
                // tensors and are skipped.
                if (y[i] >= 0) {
                    label_vec.push_back(y[i]);
                }
            }
            auto result = kernels::CtcLoss(
                ctx.input(0), label_vec,
                static_cast<std::int32_t>(ctx.node().attr("blank").AsInt()),
                ctx.pool());
            ctx.set_output(0, Tensor::Scalar(result.loss));
            ctx.set_output(1, std::move(result.grad_logits));
        },
        [](const Node&, const std::vector<Tensor>& inputs,
           const std::vector<Tensor>& outputs) {
            graph::OpCost cost;
            const std::int64_t t = inputs[0].shape().dim(0);
            const std::int64_t c = inputs[0].shape().dim(1);
            const std::int64_t ext = 2 * inputs[1].num_elements() + 1;
            // log-softmax + two lattice sweeps + posterior accumulation.
            cost.flops = static_cast<double>(t) *
                         (15.0 * static_cast<double>(c) +
                          30.0 * static_cast<double>(ext));
            cost.bytes = BytesOf(inputs) + BytesOf(outputs);
            cost.parallel_work = 1;  // sequential lattice recursion.
            return cost;
        },
        false});

    grads.Register(
        "CtcLoss",
        [](GraphBuilder& b, const Node& node, const std::vector<Output>& g)
            -> std::vector<std::optional<Output>> {
            if (g[0].node == -1) {
                return {std::nullopt, std::nullopt};
            }
            return {b.Mul(g[0], Output{node.id, 1}), std::nullopt};
        });

    // ---- shape/dtype inference -------------------------------------------

    using graph::verify::InferenceContext;
    using graph::verify::TypeInfo;
    auto& shapes = graph::verify::ShapeFnRegistry::Global();

    shapes.Register("SoftmaxCrossEntropy", [](InferenceContext& ctx) {
        if (ctx.num_inputs() != 2) {
            ctx.Fail("expected (logits, labels) inputs, got " +
                     std::to_string(ctx.num_inputs()));
        }
        ctx.ExpectDType(0, DType::kFloat32);
        ctx.ExpectDType(1, DType::kInt32);
        ctx.ExpectRank(0, 2);
        ctx.set_output(0, TypeInfo::Of(DType::kFloat32, Shape{}));
        TypeInfo grad = TypeInfo::OfDType(DType::kFloat32);
        if (ctx.KnownShape(0)) {
            const Shape& logits = ctx.input(0).shape;
            if (ctx.KnownShape(1) &&
                ctx.input(1).shape.num_elements() != logits.dim(0)) {
                ctx.Fail("labels: expected " +
                         std::to_string(logits.dim(0)) +
                         " elements, got " +
                         std::to_string(ctx.input(1).shape.num_elements()));
            }
            grad.has_shape = true;
            grad.shape = logits;
        }
        ctx.set_output(1, grad);
    });

    shapes.Register("CtcLoss", [](InferenceContext& ctx) {
        if (ctx.num_inputs() != 2) {
            ctx.Fail("expected (logits, labels) inputs, got " +
                     std::to_string(ctx.num_inputs()));
        }
        ctx.ExpectDType(0, DType::kFloat32);
        ctx.ExpectDType(1, DType::kInt32);
        ctx.ExpectRank(0, 2);
        ctx.RequireIntAttr("blank");
        ctx.set_output(0, TypeInfo::Of(DType::kFloat32, Shape{}));
        ctx.set_output(1, ctx.input(0));
    });
}

}  // namespace fathom::ops
