#include "nn/init.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fathom::nn {

Tensor
GlorotUniform(Rng& rng, const Shape& shape, std::int64_t fan_in,
              std::int64_t fan_out)
{
    const float a = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
    Tensor t(DType::kFloat32, shape);
    rng.FillUniform(&t, -a, a);
    return t;
}

Tensor
HeNormal(Rng& rng, const Shape& shape, std::int64_t fan_in)
{
    const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
    Tensor t(DType::kFloat32, shape);
    rng.FillNormal(&t, 0.0f, stddev);
    return t;
}

Tensor
TruncatedNormal(Rng& rng, const Shape& shape, float stddev)
{
    Tensor t(DType::kFloat32, shape);
    float* p = t.data<float>();
    for (std::int64_t i = 0; i < t.num_elements(); ++i) {
        float v = rng.Normal(0.0f, stddev);
        while (std::fabs(v) > 2.0f * stddev) {
            v = rng.Normal(0.0f, stddev);
        }
        p[i] = v;
    }
    return t;
}

std::pair<std::int64_t, std::int64_t>
DenseFans(const Shape& shape)
{
    if (shape.rank() != 2) {
        throw std::invalid_argument("DenseFans: weight must be [in, out]");
    }
    return {shape.dim(0), shape.dim(1)};
}

std::pair<std::int64_t, std::int64_t>
ConvFans(const Shape& shape)
{
    if (shape.rank() != 4) {
        throw std::invalid_argument("ConvFans: filter must be [kh,kw,ic,oc]");
    }
    const std::int64_t receptive = shape.dim(0) * shape.dim(1);
    return {receptive * shape.dim(2), receptive * shape.dim(3)};
}

}  // namespace fathom::nn
