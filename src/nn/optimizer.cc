#include "nn/optimizer.h"

#include "autodiff/gradients.h"

namespace fathom::nn {

using graph::GraphBuilder;
using graph::NodeId;
using graph::Output;

OptimizerConfig
OptimizerConfig::Sgd(float lr)
{
    OptimizerConfig c;
    c.kind = OptimizerKind::kSgd;
    c.learning_rate = lr;
    return c;
}

OptimizerConfig
OptimizerConfig::Momentum(float lr, float momentum)
{
    OptimizerConfig c;
    c.kind = OptimizerKind::kMomentum;
    c.learning_rate = lr;
    c.momentum = momentum;
    return c;
}

OptimizerConfig
OptimizerConfig::RmsProp(float lr, float decay, float epsilon)
{
    OptimizerConfig c;
    c.kind = OptimizerKind::kRmsProp;
    c.learning_rate = lr;
    c.decay = decay;
    c.epsilon = epsilon;
    return c;
}

OptimizerConfig
OptimizerConfig::Adam(float lr)
{
    OptimizerConfig c;
    c.kind = OptimizerKind::kAdam;
    c.learning_rate = lr;
    return c;
}

NodeId
Minimize(GraphBuilder& builder, Output loss, const Trainables& trainables,
         const OptimizerConfig& config)
{
    const auto grads =
        autodiff::BuildGradients(builder, loss, trainables.ReadEdges());

    graph::ScopeGuard scope(builder, "train");
    std::vector<NodeId> updates;
    updates.reserve(grads.size());
    for (std::size_t i = 0; i < grads.size(); ++i) {
        const std::string& var = trainables.params()[i].var_name;
        Output grad = grads[i];
        if (config.clip_value > 0.0f) {
            grad = builder.ClipByValue(grad, -config.clip_value,
                                       config.clip_value);
        }
        switch (config.kind) {
          case OptimizerKind::kSgd:
            updates.push_back(builder.ApplyGradientDescent(
                var, grad, config.learning_rate));
            break;
          case OptimizerKind::kMomentum:
            updates.push_back(builder.ApplyMomentum(
                var, grad, config.learning_rate, config.momentum));
            break;
          case OptimizerKind::kRmsProp:
            updates.push_back(builder.ApplyRmsProp(var, grad,
                                                   config.learning_rate,
                                                   config.decay,
                                                   config.epsilon));
            break;
          case OptimizerKind::kAdam:
            updates.push_back(builder.ApplyAdam(var, grad,
                                                config.learning_rate,
                                                config.beta1, config.beta2,
                                                config.epsilon));
            break;
        }
    }
    return builder.Group(updates, "train_op");
}

}  // namespace fathom::nn
