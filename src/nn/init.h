/**
 * @file
 * Weight initializers used by the layer library.
 */
#ifndef FATHOM_NN_INIT_H
#define FATHOM_NN_INIT_H

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace fathom::nn {

/**
 * Glorot/Xavier uniform initialization: U[-a, a] with
 * a = sqrt(6 / (fan_in + fan_out)). The default for dense and
 * recurrent weights.
 */
Tensor GlorotUniform(Rng& rng, const Shape& shape, std::int64_t fan_in,
                     std::int64_t fan_out);

/** He normal initialization: N(0, sqrt(2 / fan_in)). For ReLU conv nets. */
Tensor HeNormal(Rng& rng, const Shape& shape, std::int64_t fan_in);

/** Truncated-range normal: N(0, stddev) clipped at 2 sigma. */
Tensor TruncatedNormal(Rng& rng, const Shape& shape, float stddev);

/** @return fan_in/fan_out for a dense [in, out] weight. */
std::pair<std::int64_t, std::int64_t> DenseFans(const Shape& shape);

/** @return fan_in/fan_out for a conv [kh, kw, ic, oc] filter. */
std::pair<std::int64_t, std::int64_t> ConvFans(const Shape& shape);

}  // namespace fathom::nn

#endif  // FATHOM_NN_INIT_H
