/**
 * @file
 * Long short-term memory cells, unrolled in the graph.
 *
 * Recurrence is expressed exactly as TensorFlow v0.x models did: the
 * cell's primitive ops are replicated per time step, so the seq2seq
 * profile fills with the MatMul/Mul/Add/Tanh/Sigmoid mixture the paper
 * attributes to "stateful LSTM neurons".
 */
#ifndef FATHOM_NN_LSTM_H
#define FATHOM_NN_LSTM_H

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph_builder.h"
#include "nn/layers.h"

namespace fathom::nn {

/** Recurrent state of one LSTM layer at one time step. */
struct LstmState {
    graph::Output h;  ///< hidden state [batch, hidden].
    graph::Output c;  ///< cell state [batch, hidden].
};

/**
 * One LSTM layer's weights, shared across the unrolled time steps.
 */
class LstmCell {
  public:
    /**
     * Creates the cell parameters.
     * @param input_dim  size of x_t.
     * @param hidden_dim size of h/c.
     */
    LstmCell(graph::GraphBuilder& builder, Trainables* trainables, Rng& rng,
             const std::string& name, std::int64_t input_dim,
             std::int64_t hidden_dim);

    /**
     * Applies one step: (x_t, state) -> new state.
     * @param x [batch, input_dim].
     */
    LstmState Step(graph::GraphBuilder& builder, graph::Output x,
                   const LstmState& state) const;

    /** @return an all-zero initial state for @p batch sequences. */
    LstmState ZeroState(graph::GraphBuilder& builder,
                        std::int64_t batch) const;

    std::int64_t hidden_dim() const { return hidden_dim_; }

  private:
    std::string name_;
    std::int64_t input_dim_;
    std::int64_t hidden_dim_;
    graph::Output kernel_;  ///< [input+hidden, 4*hidden].
    graph::Output bias_;    ///< [4*hidden].
};

/**
 * A stack of LSTM layers unrolled over a fixed-length input sequence.
 *
 * @param inputs one [batch, input_dim] edge per time step.
 * @return per-step outputs of the top layer, plus the final state of
 *         each layer (for decoder initialization).
 */
struct LstmStackResult {
    std::vector<graph::Output> outputs;
    std::vector<LstmState> final_states;
};

LstmStackResult RunLstmStack(graph::GraphBuilder& builder,
                             const std::vector<LstmCell>& cells,
                             const std::vector<graph::Output>& inputs,
                             std::int64_t batch,
                             const std::vector<LstmState>* initial_states =
                                 nullptr);

}  // namespace fathom::nn

#endif  // FATHOM_NN_LSTM_H
