#include "nn/layers.h"

#include "nn/init.h"

namespace fathom::nn {

using graph::GraphBuilder;
using graph::Output;

Output
Trainables::NewVariable(GraphBuilder& builder, const std::string& name,
                        const Tensor& init)
{
    Param param;
    param.read = builder.Variable(name, init, &param.var_name);
    params_.push_back(param);
    return param.read;
}

std::vector<Output>
Trainables::ReadEdges() const
{
    std::vector<Output> edges;
    edges.reserve(params_.size());
    for (const Param& p : params_) {
        edges.push_back(p.read);
    }
    return edges;
}

Output
Activate(GraphBuilder& builder, Output x, Activation activation)
{
    switch (activation) {
      case Activation::kNone:
        return x;
      case Activation::kRelu:
        return builder.Relu(x);
      case Activation::kSigmoid:
        return builder.Sigmoid(x);
      case Activation::kTanh:
        return builder.Tanh(x);
    }
    return x;
}

Output
Dense(GraphBuilder& builder, Trainables* trainables, Rng& rng,
      const std::string& name, Output x, std::int64_t in, std::int64_t out,
      Activation activation)
{
    graph::ScopeGuard scope(builder, name);
    const Output w = trainables->NewVariable(
        builder, "weights", GlorotUniform(rng, Shape{in, out}, in, out));
    const Output b =
        trainables->NewVariable(builder, "bias", Tensor::Zeros(Shape{out}));
    return Activate(builder, builder.Add(builder.MatMul(x, w), b),
                    activation);
}

DenseParams
MakeDense(GraphBuilder& builder, Trainables* trainables, Rng& rng,
          const std::string& name, std::int64_t in, std::int64_t out)
{
    graph::ScopeGuard scope(builder, name);
    DenseParams params;
    params.weights = trainables->NewVariable(
        builder, "weights", GlorotUniform(rng, Shape{in, out}, in, out));
    params.bias =
        trainables->NewVariable(builder, "bias", Tensor::Zeros(Shape{out}));
    return params;
}

Output
ApplyDense(GraphBuilder& builder, const DenseParams& params, Output x,
           Activation activation)
{
    return Activate(builder,
                    builder.Add(builder.MatMul(x, params.weights),
                                params.bias),
                    activation);
}

Output
Conv2DLayer(GraphBuilder& builder, Trainables* trainables, Rng& rng,
            const std::string& name, Output x, std::int64_t kernel,
            std::int64_t in_channels, std::int64_t out_channels,
            std::int64_t stride, const std::string& padding,
            Activation activation)
{
    graph::ScopeGuard scope(builder, name);
    const Shape w_shape{kernel, kernel, in_channels, out_channels};
    const auto [fan_in, fan_out] = ConvFans(w_shape);
    (void)fan_out;
    const Output w = trainables->NewVariable(builder, "filter",
                                             HeNormal(rng, w_shape, fan_in));
    const Output b = trainables->NewVariable(
        builder, "bias", Tensor::Zeros(Shape{out_channels}));
    const Output conv = builder.Conv2D(x, w, stride, padding);
    return Activate(builder, builder.Add(conv, b), activation);
}

Output
BatchNormLayer(GraphBuilder& builder, Trainables* trainables,
               const std::string& name, Output x, std::int64_t channels)
{
    graph::ScopeGuard scope(builder, name);
    const Output gamma = trainables->NewVariable(
        builder, "gamma", Tensor::Full(Shape{channels}, 1.0f));
    const Output beta = trainables->NewVariable(
        builder, "beta", Tensor::Zeros(Shape{channels}));
    return builder.BatchNorm(x, gamma, beta)[0];
}

ConvParams
MakeConv2D(GraphBuilder& builder, Trainables* trainables, Rng& rng,
           const std::string& name, std::int64_t kernel,
           std::int64_t in_channels, std::int64_t out_channels)
{
    graph::ScopeGuard scope(builder, name);
    const Shape w_shape{kernel, kernel, in_channels, out_channels};
    const auto [fan_in, fan_out] = ConvFans(w_shape);
    (void)fan_out;
    ConvParams params;
    params.filter = trainables->NewVariable(builder, "filter",
                                            HeNormal(rng, w_shape, fan_in));
    params.bias = trainables->NewVariable(
        builder, "bias", Tensor::Zeros(Shape{out_channels}));
    return params;
}

Output
ApplyConv2D(GraphBuilder& builder, const ConvParams& params, Output x,
            std::int64_t stride, const std::string& padding,
            Activation activation)
{
    const Output conv = builder.Conv2D(x, params.filter, stride, padding);
    return Activate(builder, builder.Add(conv, params.bias), activation);
}

BatchNormParams
MakeBatchNorm(GraphBuilder& builder, Trainables* trainables,
              const std::string& name, std::int64_t channels, float epsilon)
{
    graph::ScopeGuard scope(builder, name);
    BatchNormParams params;
    params.epsilon = epsilon;
    params.gamma = trainables->NewVariable(
        builder, "gamma", Tensor::Full(Shape{channels}, 1.0f));
    params.beta = trainables->NewVariable(builder, "beta",
                                          Tensor::Zeros(Shape{channels}));
    // Running statistics are state, not parameters: created directly so
    // the optimizer never updates them.
    params.running_mean =
        builder.Variable("running_mean", Tensor::Zeros(Shape{channels}),
                         &params.running_mean_name);
    params.running_var =
        builder.Variable("running_var", Tensor::Full(Shape{channels}, 1.0f),
                         &params.running_var_name);
    return params;
}

BatchNormTrainResult
ApplyBatchNormTraining(GraphBuilder& builder, const BatchNormParams& params,
                       Output x, float momentum)
{
    const auto bn =
        builder.BatchNorm(x, params.gamma, params.beta, params.epsilon);
    BatchNormTrainResult result;
    result.y = bn[0];

    // Batch variance from the kernel's inv_std output:
    //   var = 1 / inv_std^2 - epsilon.
    const Output one = builder.ScalarConst(1.0f, "one");
    const Output eps = builder.ScalarConst(params.epsilon, "eps");
    const Output batch_var =
        builder.Sub(builder.Div(one, builder.Square(bn[2])), eps);

    // Exponential moving averages.
    const Output m = builder.ScalarConst(momentum, "momentum");
    const Output inv_m = builder.ScalarConst(1.0f - momentum, "inv_momentum");
    const Output new_mean =
        builder.Add(builder.Mul(params.running_mean, m),
                    builder.Mul(bn[1], inv_m));
    const Output new_var = builder.Add(builder.Mul(params.running_var, m),
                                       builder.Mul(batch_var, inv_m));
    result.stat_updates.push_back(
        builder.Assign(params.running_mean_name, new_mean));
    result.stat_updates.push_back(
        builder.Assign(params.running_var_name, new_var));
    return result;
}

Output
ApplyBatchNormInference(GraphBuilder& builder, const BatchNormParams& params,
                        Output x)
{
    return builder.AddOp(
        "batch_norm_inference", "BatchNormInference",
        {x, params.gamma, params.beta, params.running_mean,
         params.running_var},
        {{"epsilon", graph::AttrValue(params.epsilon)}});
}

Output
Dropout(GraphBuilder& builder, Output x, float keep_prob, bool training)
{
    if (!training || keep_prob >= 1.0f) {
        return x;
    }
    return builder.Mul(x, builder.DropoutMask(x, keep_prob));
}

Output
Embedding(GraphBuilder& builder, Trainables* trainables, Rng& rng,
          const std::string& name, Output indices, std::int64_t vocab,
          std::int64_t dim)
{
    graph::ScopeGuard scope(builder, name);
    const Output table = trainables->NewVariable(
        builder, "embedding",
        GlorotUniform(rng, Shape{vocab, dim}, vocab, dim));
    return builder.Gather(table, indices);
}

Output
Flatten(GraphBuilder& builder, Output x, std::int64_t batch,
        std::int64_t features)
{
    return builder.Reshape(x, {batch, features});
}

}  // namespace fathom::nn
