/**
 * @file
 * Additive (Bahdanau) attention, the mechanism seq2seq uses for
 * "keeping track of context in the original sentence" (paper Sec. IV).
 *
 * The implementation deliberately mirrors the original TF graph: the
 * score computation spends its time in MatMul plus a tail of
 * data-movement ops (Reshape/Tile/Transpose) and reductions — the mix
 * the paper's Fig. 6b shows for seq2seq.
 */
#ifndef FATHOM_NN_ATTENTION_H
#define FATHOM_NN_ATTENTION_H

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph_builder.h"
#include "nn/layers.h"

namespace fathom::nn {

/** Additive attention over a fixed-length encoder state sequence. */
class AdditiveAttention {
  public:
    /**
     * @param enc_dim   encoder hidden size.
     * @param query_dim decoder hidden size.
     * @param attn_dim  attention projection size.
     */
    AdditiveAttention(graph::GraphBuilder& builder, Trainables* trainables,
                      Rng& rng, const std::string& name, std::int64_t enc_dim,
                      std::int64_t query_dim, std::int64_t attn_dim);

    /**
     * Computes the context vector for one decoder step.
     *
     * @param enc_states per-step encoder outputs, each [batch, enc_dim].
     * @param query      decoder hidden state [batch, query_dim].
     * @param batch      batch size.
     * @return           context vector [batch, enc_dim].
     */
    graph::Output Context(graph::GraphBuilder& builder,
                          const std::vector<graph::Output>& enc_states,
                          graph::Output query, std::int64_t batch) const;

  private:
    std::string name_;
    std::int64_t enc_dim_;
    std::int64_t attn_dim_;
    graph::Output w_enc_;    ///< [enc_dim, attn_dim].
    graph::Output w_query_;  ///< [query_dim, attn_dim].
    graph::Output v_;        ///< [attn_dim, 1].
};

}  // namespace fathom::nn

#endif  // FATHOM_NN_ATTENTION_H
