/**
 * @file
 * Training-graph construction: gradients + parameter-update ops.
 */
#ifndef FATHOM_NN_OPTIMIZER_H
#define FATHOM_NN_OPTIMIZER_H

#include <string>

#include "graph/graph_builder.h"
#include "nn/layers.h"

namespace fathom::nn {

/** Which update rule to apply (the optimizers the workloads use). */
enum class OptimizerKind { kSgd, kMomentum, kRmsProp, kAdam };

/** Hyperparameters of the update rule. */
struct OptimizerConfig {
    OptimizerKind kind = OptimizerKind::kSgd;
    float learning_rate = 0.01f;
    float momentum = 0.9f;    ///< kMomentum only.
    float decay = 0.95f;      ///< kRmsProp only.
    float epsilon = 1e-6f;    ///< kRmsProp / kAdam.
    float beta1 = 0.9f;       ///< kAdam only.
    float beta2 = 0.999f;     ///< kAdam only.

    /**
     * Elementwise gradient clipping threshold (0 disables). Applied as
     * clip(g, -clip_value, +clip_value) before the update op — the
     * standard stabilizer for unrolled recurrent models.
     */
    float clip_value = 0.0f;

    static OptimizerConfig Sgd(float lr);
    static OptimizerConfig Momentum(float lr, float momentum = 0.9f);
    static OptimizerConfig RmsProp(float lr, float decay = 0.95f,
                                   float epsilon = 1e-6f);
    static OptimizerConfig Adam(float lr);
};

/**
 * Builds the backward graph of @p loss w.r.t. all parameters in
 * @p trainables and appends one update op per parameter.
 *
 * @return a NoOp node depending on all updates (the "train op"); run
 * it as a target to take one optimization step.
 */
graph::NodeId Minimize(graph::GraphBuilder& builder, graph::Output loss,
                       const Trainables& trainables,
                       const OptimizerConfig& config);

}  // namespace fathom::nn

#endif  // FATHOM_NN_OPTIMIZER_H
