#include "nn/attention.h"

#include <stdexcept>

#include "nn/init.h"

namespace fathom::nn {

using graph::GraphBuilder;
using graph::Output;

AdditiveAttention::AdditiveAttention(GraphBuilder& builder,
                                     Trainables* trainables, Rng& rng,
                                     const std::string& name,
                                     std::int64_t enc_dim,
                                     std::int64_t query_dim,
                                     std::int64_t attn_dim)
    : name_(name), enc_dim_(enc_dim), attn_dim_(attn_dim)
{
    graph::ScopeGuard scope(builder, name);
    w_enc_ = trainables->NewVariable(
        builder, "w_enc",
        GlorotUniform(rng, Shape{enc_dim, attn_dim}, enc_dim, attn_dim));
    w_query_ = trainables->NewVariable(
        builder, "w_query",
        GlorotUniform(rng, Shape{query_dim, attn_dim}, query_dim, attn_dim));
    v_ = trainables->NewVariable(
        builder, "v", GlorotUniform(rng, Shape{attn_dim, 1}, attn_dim, 1));
}

Output
AdditiveAttention::Context(GraphBuilder& builder,
                           const std::vector<Output>& enc_states,
                           Output query, std::int64_t batch) const
{
    if (enc_states.empty()) {
        throw std::invalid_argument("AdditiveAttention: no encoder states");
    }
    graph::ScopeGuard scope(builder, name_ + "_ctx");
    const std::int64_t time = static_cast<std::int64_t>(enc_states.size());

    // Stack encoder states into [batch, T, enc_dim] via concat+reshape
    // (the data-movement-heavy route the original model takes).
    std::vector<Output> expanded;
    expanded.reserve(enc_states.size());
    for (const Output& s : enc_states) {
        expanded.push_back(builder.Reshape(s, {batch, 1, enc_dim_}));
    }
    const Output enc = builder.Concat(expanded, 1);  // [B, T, E]

    // Projected encoder states: [B*T, A] -> [B, T, A].
    const Output enc_flat = builder.Reshape(enc, {batch * time, enc_dim_});
    const Output proj_enc = builder.Reshape(
        builder.MatMul(enc_flat, w_enc_), {batch, time, attn_dim_});

    // Projected query tiled across time: [B, 1, A] -> [B, T, A]. An
    // explicit Tile (rather than implicit broadcasting) matches the op
    // mix of the original TF implementation (Fig. 6b shows Tile).
    const Output proj_q = builder.Tile(
        builder.Reshape(builder.MatMul(query, w_query_), {batch, 1, attn_dim_}),
        {1, time, 1});

    // Scores e = v^T tanh(We s + Wq q): [B, T].
    const Output combined = builder.Tanh(builder.Add(proj_enc, proj_q));
    const Output scores = builder.Reshape(
        builder.MatMul(
            builder.Reshape(combined, {batch * time, attn_dim_}), v_),
        {batch, time});

    // Attention weights and weighted context sum over time.
    const Output weights =
        builder.Reshape(builder.Softmax(scores), {batch, time, 1});
    const Output weighted = builder.Mul(weights, enc);  // broadcast over E.
    return builder.ReduceSum(weighted, {1}, /*keep_dims=*/false);  // [B, E]
}

}  // namespace fathom::nn
