/**
 * @file
 * Layer builders: dense, convolution, batch-norm, dropout, embeddings.
 *
 * Layers are free functions that append primitive-op subgraphs through
 * a GraphBuilder and register their parameters with a Trainables
 * collector, in the spirit of the thin layer wrappers the Fathom
 * workloads were originally written with.
 */
#ifndef FATHOM_NN_LAYERS_H
#define FATHOM_NN_LAYERS_H

#include <string>
#include <vector>

#include "graph/graph_builder.h"
#include "tensor/rng.h"

namespace fathom::nn {

/** One trainable parameter: its store key and read edge. */
struct Param {
    std::string var_name;
    graph::Output read;
};

/** Collects the trainable parameters of a model as layers are built. */
class Trainables {
  public:
    /** Creates a variable, registers it, and returns its read edge. */
    graph::Output NewVariable(graph::GraphBuilder& builder,
                              const std::string& name, const Tensor& init);

    const std::vector<Param>& params() const { return params_; }

    /** @return read edges of all parameters, in creation order. */
    std::vector<graph::Output> ReadEdges() const;

  private:
    std::vector<Param> params_;
};

/** Supported layer activations. */
enum class Activation { kNone, kRelu, kSigmoid, kTanh };

/** Applies @p activation to @p x (identity for kNone). */
graph::Output Activate(graph::GraphBuilder& builder, graph::Output x,
                       Activation activation);

/**
 * Fully-connected layer: y = act(x W + b).
 * @param x [batch, in] input edge.
 */
graph::Output Dense(graph::GraphBuilder& builder, Trainables* trainables,
                    Rng& rng, const std::string& name, graph::Output x,
                    std::int64_t in, std::int64_t out,
                    Activation activation = Activation::kNone);

/** Parameters of a dense layer, for weight sharing across subgraphs. */
struct DenseParams {
    graph::Output weights;
    graph::Output bias;
};

/** Creates dense-layer parameters without applying them. */
DenseParams MakeDense(graph::GraphBuilder& builder, Trainables* trainables,
                      Rng& rng, const std::string& name, std::int64_t in,
                      std::int64_t out);

/** Applies previously created dense parameters: y = act(x W + b). */
graph::Output ApplyDense(graph::GraphBuilder& builder,
                         const DenseParams& params, graph::Output x,
                         Activation activation = Activation::kNone);

/**
 * Convolutional layer: y = act(conv(x, W) + b), NHWC.
 * @param x [n, h, w, ic] input edge.
 */
graph::Output Conv2DLayer(graph::GraphBuilder& builder,
                          Trainables* trainables, Rng& rng,
                          const std::string& name, graph::Output x,
                          std::int64_t kernel, std::int64_t in_channels,
                          std::int64_t out_channels, std::int64_t stride,
                          const std::string& padding,
                          Activation activation = Activation::kRelu);

/**
 * Batch-normalization layer with trainable scale/shift over the last
 * (channel) dimension.
 */
graph::Output BatchNormLayer(graph::GraphBuilder& builder,
                             Trainables* trainables, const std::string& name,
                             graph::Output x, std::int64_t channels);

/** Parameters of a conv layer, for weight sharing across subgraphs. */
struct ConvParams {
    graph::Output filter;  ///< [k, k, in, out].
    graph::Output bias;    ///< [out].
};

/** Creates conv-layer parameters without applying them. */
ConvParams MakeConv2D(graph::GraphBuilder& builder, Trainables* trainables,
                      Rng& rng, const std::string& name, std::int64_t kernel,
                      std::int64_t in_channels, std::int64_t out_channels);

/** Applies previously created conv parameters. */
graph::Output ApplyConv2D(graph::GraphBuilder& builder,
                          const ConvParams& params, graph::Output x,
                          std::int64_t stride, const std::string& padding,
                          Activation activation = Activation::kNone);

/**
 * Batch-normalization parameters with running statistics, for models
 * that need distinct training (batch stats) and inference (running
 * stats) paths over shared parameters.
 */
struct BatchNormParams {
    graph::Output gamma;
    graph::Output beta;
    graph::Output running_mean;  ///< non-trainable state, read edge.
    graph::Output running_var;
    std::string running_mean_name;  ///< store keys for the Assigns.
    std::string running_var_name;
    float epsilon = 1e-5f;
};

/** Creates batch-norm parameters (gamma/beta trainable, stats not). */
BatchNormParams MakeBatchNorm(graph::GraphBuilder& builder,
                              Trainables* trainables,
                              const std::string& name, std::int64_t channels,
                              float epsilon = 1e-5f);

/** Result of a training-mode batch-norm application. */
struct BatchNormTrainResult {
    graph::Output y;
    /**
     * Update nodes refreshing the running statistics with momentum;
     * run them as targets alongside the train op.
     */
    std::vector<graph::NodeId> stat_updates;
};

/**
 * Training-mode application: normalizes with batch statistics and
 * emits exponential-moving-average updates of the running statistics
 * (new = momentum * old + (1 - momentum) * batch).
 */
BatchNormTrainResult ApplyBatchNormTraining(graph::GraphBuilder& builder,
                                            const BatchNormParams& params,
                                            graph::Output x,
                                            float momentum = 0.9f);

/** Inference-mode application: normalizes with the running stats. */
graph::Output ApplyBatchNormInference(graph::GraphBuilder& builder,
                                      const BatchNormParams& params,
                                      graph::Output x);

/** Dropout: multiplies by a resampled mask when @p training is true. */
graph::Output Dropout(graph::GraphBuilder& builder, graph::Output x,
                      float keep_prob, bool training);

/**
 * Token embedding lookup: indices int32 [ ... ] -> [ ..., dim].
 */
graph::Output Embedding(graph::GraphBuilder& builder, Trainables* trainables,
                        Rng& rng, const std::string& name,
                        graph::Output indices, std::int64_t vocab,
                        std::int64_t dim);

/** Flattens a NHWC activation to [n, h*w*c]. */
graph::Output Flatten(graph::GraphBuilder& builder, graph::Output x,
                      std::int64_t batch, std::int64_t features);

}  // namespace fathom::nn

#endif  // FATHOM_NN_LAYERS_H
