#include "nn/lstm.h"

#include <stdexcept>

#include "nn/init.h"

namespace fathom::nn {

using graph::GraphBuilder;
using graph::Output;

LstmCell::LstmCell(GraphBuilder& builder, Trainables* trainables, Rng& rng,
                   const std::string& name, std::int64_t input_dim,
                   std::int64_t hidden_dim)
    : name_(name), input_dim_(input_dim), hidden_dim_(hidden_dim)
{
    graph::ScopeGuard scope(builder, name);
    const std::int64_t rows = input_dim + hidden_dim;
    const std::int64_t cols = 4 * hidden_dim;
    kernel_ = trainables->NewVariable(
        builder, "kernel", GlorotUniform(rng, Shape{rows, cols}, rows, cols));
    // Initialize the forget-gate bias to 1 (standard practice so
    // gradients flow early in training).
    Tensor bias = Tensor::Zeros(Shape{cols});
    for (std::int64_t i = hidden_dim; i < 2 * hidden_dim; ++i) {
        bias.data<float>()[i] = 1.0f;
    }
    bias_ = trainables->NewVariable(builder, "bias", bias);
}

LstmState
LstmCell::Step(GraphBuilder& builder, Output x, const LstmState& state) const
{
    graph::ScopeGuard scope(builder, name_ + "_step");
    // Gate pre-activations: [x, h] W + b -> [batch, 4H], split into the
    // four gates (the same Concat/MatMul/Split structure TF's
    // BasicLSTMCell builds).
    const Output xh = builder.Concat({x, state.h}, 1);
    const Output gates = builder.Add(builder.MatMul(xh, kernel_), bias_);
    const auto parts = builder.Split(gates, /*axis=*/1, /*num_splits=*/4);

    const Output i_gate = builder.Sigmoid(parts[0]);
    const Output f_gate = builder.Sigmoid(parts[1]);
    const Output g_gate = builder.Tanh(parts[2]);
    const Output o_gate = builder.Sigmoid(parts[3]);

    LstmState next;
    next.c = builder.Add(builder.Mul(f_gate, state.c),
                         builder.Mul(i_gate, g_gate));
    next.h = builder.Mul(o_gate, builder.Tanh(next.c));
    return next;
}

LstmState
LstmCell::ZeroState(GraphBuilder& builder, std::int64_t batch) const
{
    LstmState state;
    state.h = builder.Const(Tensor::Zeros(Shape{batch, hidden_dim_}),
                            name_ + "_h0");
    state.c = builder.Const(Tensor::Zeros(Shape{batch, hidden_dim_}),
                            name_ + "_c0");
    return state;
}

LstmStackResult
RunLstmStack(GraphBuilder& builder, const std::vector<LstmCell>& cells,
             const std::vector<Output>& inputs, std::int64_t batch,
             const std::vector<LstmState>* initial_states)
{
    if (cells.empty()) {
        throw std::invalid_argument("RunLstmStack: no cells");
    }
    std::vector<LstmState> states;
    if (initial_states != nullptr) {
        if (initial_states->size() != cells.size()) {
            throw std::invalid_argument(
                "RunLstmStack: initial state count mismatch");
        }
        states = *initial_states;
    } else {
        for (const LstmCell& cell : cells) {
            states.push_back(cell.ZeroState(builder, batch));
        }
    }

    LstmStackResult result;
    for (const Output& x_t : inputs) {
        Output layer_in = x_t;
        for (std::size_t layer = 0; layer < cells.size(); ++layer) {
            states[layer] = cells[layer].Step(builder, layer_in,
                                              states[layer]);
            layer_in = states[layer].h;
        }
        result.outputs.push_back(layer_in);
    }
    result.final_states = std::move(states);
    return result;
}

}  // namespace fathom::nn
