#include "analysis/export.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "graph/op_class.h"
#include "graph/op_registry.h"

namespace fathom::analysis {

namespace {

/** Fill color per op class (pastel Graphviz palette). */
const char*
ClassColor(graph::OpClass c)
{
    switch (c) {
      case graph::OpClass::kMatrixOps:
        return "#a6cee3";
      case graph::OpClass::kConvolution:
        return "#1f78b4";
      case graph::OpClass::kElementwise:
        return "#b2df8a";
      case graph::OpClass::kReductionExpansion:
        return "#33a02c";
      case graph::OpClass::kRandomSampling:
        return "#fb9a99";
      case graph::OpClass::kOptimization:
        return "#e31a1c";
      case graph::OpClass::kDataMovement:
        return "#fdbf6f";
      case graph::OpClass::kControl:
        return "#cccccc";
    }
    return "#ffffff";
}

std::string
Escape(const std::string& s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
        }
        out += c;
    }
    return out;
}

}  // namespace

std::string
GraphToDot(const graph::Graph& g, int max_nodes)
{
    const graph::OpRegistry& registry = graph::OpRegistry::Global();
    std::ostringstream out;
    out << "digraph fathom {\n"
        << "  rankdir=TB;\n"
        << "  node [shape=box, style=filled, fontname=\"Helvetica\"];\n";
    const int limit =
        max_nodes > 0 ? std::min(max_nodes, g.num_nodes()) : g.num_nodes();
    for (graph::NodeId id = 0; id < limit; ++id) {
        const graph::Node& node = g.node(id);
        graph::OpClass op_class = graph::OpClass::kControl;
        if (registry.Contains(node.op_type)) {
            op_class = registry.Lookup(node.op_type).op_class;
        }
        out << "  n" << id << " [label=\"" << Escape(node.name) << "\\n"
            << Escape(node.op_type) << "\", fillcolor=\""
            << ClassColor(op_class) << "\"];\n";
        for (const graph::Output& in : node.inputs) {
            if (in.node < limit) {
                out << "  n" << in.node << " -> n" << id << ";\n";
            }
        }
        for (graph::NodeId c : node.control_inputs) {
            if (c < limit) {
                out << "  n" << c << " -> n" << id
                    << " [style=dashed];\n";
            }
        }
    }
    if (limit < g.num_nodes()) {
        out << "  truncated [label=\"... " << (g.num_nodes() - limit)
            << " more nodes\", fillcolor=\"#ffffff\"];\n";
    }
    out << "}\n";
    return out.str();
}

std::string
TraceToChromeJson(const runtime::Tracer& tracer)
{
    std::ostringstream out;
    out << "[";
    bool first = true;
    auto emit = [&out, &first]() -> std::ostringstream& {
        if (!first) {
            out << ",";
        }
        first = false;
        out << "\n  ";
        return out;
    };

    // Lane naming: tid 0 carries the step spans, tid k+1 the ops that
    // executor worker k ran, and registered aux lanes (pipeline
    // producers, serving batchers) follow after the workers. Emit
    // metadata for every lane any record references so the viewer
    // shows "worker-k" / "alexnet/train-producer-0" instead of bare
    // tids.
    int max_worker = -1;
    for (const auto& step : tracer.steps()) {
        for (const auto& r : step.records) {
            max_worker = std::max(max_worker, r.worker);
        }
    }
    const int aux_tid_base = max_worker + 2;
    emit() << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
           << "\"args\": {\"name\": \"fathom\"}}";
    emit() << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
           << "\"tid\": 0, \"args\": {\"name\": \"steps\"}}";
    for (int w = 0; w <= max_worker; ++w) {
        emit() << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
               << "\"tid\": " << (w + 1) << ", \"args\": {\"name\": "
               << "\"worker-" << w << "\"}}";
    }
    const auto& aux_lanes = tracer.aux_lanes();
    for (std::size_t lane = 0; lane < aux_lanes.size(); ++lane) {
        emit() << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
               << "\"tid\": " << (aux_tid_base + static_cast<int>(lane))
               << ", \"args\": {\"name\": \""
               << Escape(aux_lanes[lane]) << "\"}}";
    }

    // Aux spans carry absolute run-epoch timestamps, so they only
    // render against steps placed on the same absolute timeline. Use
    // true-timeline placement whenever the trace has the data for it
    // (any stamped step start or any aux span); otherwise fall back to
    // the legacy end-to-end packing, which older traces rely on.
    bool true_timeline = !tracer.aux_spans().empty();
    for (const auto& step : tracer.steps()) {
        true_timeline = true_timeline || step.start_seconds > 0.0;
    }
    for (const auto& span : tracer.aux_spans()) {
        emit() << "{\"name\": \"" << Escape(span.label)
               << "\", \"cat\": \"pipeline\", \"ph\": \"X\", \"ts\": "
               << span.start_seconds * 1e6
               << ", \"dur\": " << span.dur_seconds * 1e6
               << ", \"pid\": 1, \"tid\": " << (aux_tid_base + span.lane)
               << "}";
    }

    // Within a step every op keeps its true monotonic start offset, so
    // the viewer shows real concurrency (overlapping ops overlap).
    double step_base_us = 0.0;
    int step_index = 0;
    for (const auto& step : tracer.steps()) {
        if (true_timeline) {
            step_base_us = step.start_seconds * 1e6;
        }
        emit() << "{\"name\": \"step " << step_index
               << "\", \"cat\": \"step\", \"ph\": \"X\", \"ts\": "
               << step_base_us << ", \"dur\": "
               << step.wall_seconds * 1e6
               << ", \"pid\": 1, \"tid\": 0, \"args\": {\"ops\": "
               << step.records.size() << ", \"overhead_seconds\": "
               << step.OverheadSeconds() << "}}";
        for (const auto& r : step.records) {
            emit() << "{\"name\": \"" << r.op_type
                   << "\", \"cat\": \"" << graph::OpClassName(r.op_class)
                   << "\", \"ph\": \"X\", \"ts\": "
                   << step_base_us + r.start_seconds * 1e6
                   << ", \"dur\": " << r.wall_seconds * 1e6
                   << ", \"pid\": 1, \"tid\": " << (r.worker + 1)
                   << ", \"args\": {\"node\": " << r.node
                   << ", \"seq\": " << r.seq
                   << ", \"flops\": " << r.cost.flops
                   << ", \"parallel_work\": " << r.cost.parallel_work
                   << "}}";
        }
        // Allocator activity for the step (the memory planner's
        // instrumentation) as a Chrome counter event: peak live bytes
        // plus request/fresh/pool-hit counts, graphable in Perfetto.
        emit() << "{\"name\": \"memory\", \"cat\": \"memory\", "
               << "\"ph\": \"C\", \"ts\": " << step_base_us
               << ", \"pid\": 1, \"args\": {\"peak_bytes\": "
               << step.memory.peak_bytes
               << ", \"allocations\": " << step.memory.allocations
               << ", \"fresh_allocs\": " << step.memory.fresh_allocs
               << ", \"pool_hits\": " << step.memory.pool_hits << "}}";
        if (!true_timeline) {
            step_base_us += step.wall_seconds * 1e6;
        }
        ++step_index;
    }
    out << "\n]\n";
    return out.str();
}

void
WriteFile(const std::string& path, const std::string& content)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        throw std::runtime_error("cannot open '" + path + "' for writing");
    }
    out << content;
    if (!out) {
        throw std::runtime_error("write to '" + path + "' failed");
    }
}

}  // namespace fathom::analysis
