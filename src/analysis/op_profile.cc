#include "analysis/op_profile.h"

#include <algorithm>

namespace fathom::analysis {

void
OpProfile::Add(const std::string& op_type, graph::OpClass op_class,
               double seconds)
{
    by_type_[op_type] += seconds;
    by_class_[op_class] += seconds;
    class_of_[op_type] = op_class;
    total_ += seconds;
}

double
OpProfile::ClassFraction(graph::OpClass op_class) const
{
    if (total_ <= 0.0) {
        return 0.0;
    }
    auto it = by_class_.find(op_class);
    return it == by_class_.end() ? 0.0 : it->second / total_;
}

std::vector<std::pair<std::string, double>>
OpProfile::SortedFractions() const
{
    std::vector<std::pair<std::string, double>> sorted;
    sorted.reserve(by_type_.size());
    for (const auto& [type, seconds] : by_type_) {
        sorted.emplace_back(type, total_ > 0.0 ? seconds / total_ : 0.0);
    }
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    return sorted;
}

std::vector<double>
OpProfile::SkewCurve() const
{
    std::vector<double> curve;
    double cumulative = 0.0;
    for (const auto& [type, fraction] : SortedFractions()) {
        cumulative += fraction;
        curve.push_back(cumulative);
    }
    return curve;
}

int
OpProfile::TypesToCover(double fraction) const
{
    const auto curve = SkewCurve();
    for (std::size_t i = 0; i < curve.size(); ++i) {
        if (curve[i] >= fraction) {
            return static_cast<int>(i) + 1;
        }
    }
    return static_cast<int>(curve.size());
}

OpProfile
ProfileFromTrace(const runtime::Tracer& tracer, int skip_steps,
                 TimeSource source, const runtime::DeviceSpec& device,
                 bool include_control)
{
    OpProfile profile;
    const auto& steps = tracer.steps();
    for (std::size_t s = static_cast<std::size_t>(skip_steps);
         s < steps.size(); ++s) {
        for (const auto& r : steps[s].records) {
            if (!include_control &&
                r.op_class == graph::OpClass::kControl) {
                continue;
            }
            const double seconds =
                source == TimeSource::kWall
                    ? r.wall_seconds
                    : runtime::EstimateSeconds(r.cost, device);
            profile.Add(r.op_type, r.op_class, seconds);
        }
    }
    return profile;
}

OpProfile
WallProfile(const runtime::Tracer& tracer, int skip_steps)
{
    return ProfileFromTrace(tracer, skip_steps, TimeSource::kWall,
                            runtime::DeviceSpec::Cpu(1));
}

}  // namespace fathom::analysis
