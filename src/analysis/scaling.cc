#include "analysis/scaling.h"

#include <algorithm>

namespace fathom::analysis {

double
ScalingSweep::TotalAt(std::size_t i) const
{
    double total = 0.0;
    for (const auto& [type, seconds] : seconds_by_type) {
        total += seconds[i];
    }
    return total;
}

ScalingSweep
SweepThreads(const runtime::Tracer& tracer, int skip_steps,
             const std::vector<int>& thread_counts)
{
    ScalingSweep sweep;
    sweep.thread_counts = thread_counts;

    const auto& steps = tracer.steps();
    for (std::size_t t = 0; t < thread_counts.size(); ++t) {
        const auto device = runtime::DeviceSpec::Cpu(
            thread_counts[t]);
        for (std::size_t s = static_cast<std::size_t>(skip_steps);
             s < steps.size(); ++s) {
            for (const auto& r : steps[s].records) {
                if (r.op_class == graph::OpClass::kControl) {
                    continue;
                }
                auto& series = sweep.seconds_by_type[r.op_type];
                if (series.size() != thread_counts.size()) {
                    series.assign(thread_counts.size(), 0.0);
                }
                series[t] += runtime::EstimateSeconds(r.cost, device);
            }
        }
    }
    return sweep;
}

std::vector<std::string>
TopTypes(const ScalingSweep& sweep, int count)
{
    std::vector<std::pair<std::string, double>> totals;
    for (const auto& [type, seconds] : sweep.seconds_by_type) {
        totals.emplace_back(type, seconds.empty() ? 0.0 : seconds[0]);
    }
    std::sort(totals.begin(), totals.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    std::vector<std::string> top;
    for (int i = 0; i < count && i < static_cast<int>(totals.size()); ++i) {
        top.push_back(totals[static_cast<std::size_t>(i)].first);
    }
    return top;
}

double
SimulatedTotalSeconds(const runtime::Tracer& tracer, int skip_steps,
                      const runtime::DeviceSpec& device)
{
    double total = 0.0;
    const auto& steps = tracer.steps();
    for (std::size_t s = static_cast<std::size_t>(skip_steps);
         s < steps.size(); ++s) {
        for (const auto& r : steps[s].records) {
            if (r.op_class == graph::OpClass::kControl) {
                continue;
            }
            total += runtime::EstimateSeconds(r.cost, device);
        }
    }
    return total;
}

}  // namespace fathom::analysis
