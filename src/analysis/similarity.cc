#include "analysis/similarity.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>

namespace fathom::analysis {

std::vector<std::vector<double>>
ProfileMatrix(const std::vector<OpProfile>& profiles)
{
    std::set<std::string> all_types;
    for (const auto& p : profiles) {
        for (const auto& [type, seconds] : p.by_type()) {
            all_types.insert(type);
        }
    }
    std::vector<std::vector<double>> matrix;
    matrix.reserve(profiles.size());
    for (const auto& p : profiles) {
        std::vector<double> row;
        row.reserve(all_types.size());
        for (const auto& type : all_types) {
            auto it = p.by_type().find(type);
            const double seconds = it == p.by_type().end() ? 0.0 : it->second;
            row.push_back(p.total_seconds() > 0.0
                              ? seconds / p.total_seconds()
                              : 0.0);
        }
        matrix.push_back(std::move(row));
    }
    return matrix;
}

double
CosineDistance(const std::vector<double>& a, const std::vector<double>& b)
{
    if (a.size() != b.size()) {
        throw std::invalid_argument("CosineDistance: dimension mismatch");
    }
    double dot = 0.0;
    double na = 0.0;
    double nb = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        dot += a[i] * b[i];
        na += a[i] * a[i];
        nb += b[i] * b[i];
    }
    if (na <= 0.0 || nb <= 0.0) {
        return 1.0;
    }
    return 1.0 - dot / (std::sqrt(na) * std::sqrt(nb));
}

std::vector<Merge>
AgglomerativeCluster(const std::vector<std::vector<double>>& vectors)
{
    const int n = static_cast<int>(vectors.size());
    if (n == 0) {
        return {};
    }

    struct Cluster {
        std::vector<double> centroid;
        int size = 1;
        bool alive = true;
        int index = -1;
    };
    std::vector<Cluster> clusters;
    for (int i = 0; i < n; ++i) {
        clusters.push_back({vectors[static_cast<std::size_t>(i)], 1, true, i});
    }

    std::vector<Merge> merges;
    int next_index = n;
    for (int round = 0; round < n - 1; ++round) {
        // Find the closest pair of live clusters (greedy, O(k^2) per
        // round — fine for eight workloads).
        double best = std::numeric_limits<double>::infinity();
        int bi = -1;
        int bj = -1;
        for (std::size_t i = 0; i < clusters.size(); ++i) {
            if (!clusters[i].alive) {
                continue;
            }
            for (std::size_t j = i + 1; j < clusters.size(); ++j) {
                if (!clusters[j].alive) {
                    continue;
                }
                const double d = CosineDistance(clusters[i].centroid,
                                                clusters[j].centroid);
                if (d < best) {
                    best = d;
                    bi = static_cast<int>(i);
                    bj = static_cast<int>(j);
                }
            }
        }

        // Weighted centroid of the merged cluster.
        Cluster merged;
        const auto& a = clusters[static_cast<std::size_t>(bi)];
        const auto& b = clusters[static_cast<std::size_t>(bj)];
        merged.centroid.resize(a.centroid.size());
        for (std::size_t d = 0; d < merged.centroid.size(); ++d) {
            merged.centroid[d] =
                (a.centroid[d] * a.size + b.centroid[d] * b.size) /
                static_cast<double>(a.size + b.size);
        }
        merged.size = a.size + b.size;
        merged.index = next_index++;

        merges.push_back({a.index, b.index, best});
        clusters[static_cast<std::size_t>(bi)].alive = false;
        clusters[static_cast<std::size_t>(bj)].alive = false;
        clusters.push_back(std::move(merged));
    }
    return merges;
}

namespace {

/** Recursively lists the leaves of cluster @p index. */
void
CollectLeaves(int index, int n, const std::vector<Merge>& merges,
              std::vector<int>* leaves)
{
    if (index < n) {
        leaves->push_back(index);
        return;
    }
    const Merge& m = merges[static_cast<std::size_t>(index - n)];
    CollectLeaves(m.left, n, merges, leaves);
    CollectLeaves(m.right, n, merges, leaves);
}

}  // namespace

std::string
RenderDendrogram(const std::vector<std::string>& names,
                 const std::vector<Merge>& merges)
{
    const int n = static_cast<int>(names.size());
    std::ostringstream out;
    out << "Agglomerative clustering (centroid linkage, cosine distance)\n";
    out << "merge  distance  members\n";
    for (std::size_t k = 0; k < merges.size(); ++k) {
        const Merge& m = merges[k];
        std::vector<int> left_leaves;
        std::vector<int> right_leaves;
        CollectLeaves(m.left, n, merges, &left_leaves);
        CollectLeaves(m.right, n, merges, &right_leaves);
        out << std::setw(5) << (n + static_cast<int>(k)) << "  "
            << std::fixed << std::setprecision(4) << m.distance << "    {";
        for (std::size_t i = 0; i < left_leaves.size(); ++i) {
            out << (i ? ", " : "")
                << names[static_cast<std::size_t>(left_leaves[i])];
        }
        out << "} + {";
        for (std::size_t i = 0; i < right_leaves.size(); ++i) {
            out << (i ? ", " : "")
                << names[static_cast<std::size_t>(right_leaves[i])];
        }
        out << "}\n";
    }
    return out.str();
}

}  // namespace fathom::analysis
