#include "analysis/stationarity.h"

#include <cmath>
#include <set>

namespace fathom::analysis {

double
StationarityStats::drift() const
{
    if (mean <= 0.0) {
        return 0.0;
    }
    return std::fabs(second_half_mean - first_half_mean) / mean;
}

std::vector<double>
PerStepSeries(const runtime::Tracer& tracer, const std::string& op_type,
              int skip_steps)
{
    std::vector<double> series;
    const auto& steps = tracer.steps();
    for (std::size_t s = static_cast<std::size_t>(skip_steps);
         s < steps.size(); ++s) {
        double step_total = 0.0;
        for (const auto& r : steps[s].records) {
            if (r.op_type == op_type) {
                step_total += r.wall_seconds;
            }
        }
        series.push_back(step_total);
    }
    return series;
}

std::vector<StationarityStats>
ComputeStationarity(const runtime::Tracer& tracer, int skip_steps)
{
    std::set<std::string> types;
    const auto& steps = tracer.steps();
    for (std::size_t s = static_cast<std::size_t>(skip_steps);
         s < steps.size(); ++s) {
        for (const auto& r : steps[s].records) {
            types.insert(r.op_type);
        }
    }

    std::vector<StationarityStats> all;
    for (const auto& type : types) {
        const auto series = PerStepSeries(tracer, type, skip_steps);
        if (series.empty()) {
            continue;
        }
        StationarityStats stats;
        stats.op_type = type;
        stats.samples = static_cast<int>(series.size());
        double sum = 0.0;
        for (double v : series) {
            sum += v;
        }
        stats.mean = sum / static_cast<double>(series.size());
        double sq = 0.0;
        for (double v : series) {
            sq += (v - stats.mean) * (v - stats.mean);
        }
        stats.stddev = std::sqrt(sq / static_cast<double>(series.size()));
        stats.cv = stats.mean > 0.0 ? stats.stddev / stats.mean : 0.0;

        const std::size_t half = series.size() / 2;
        double first = 0.0;
        double second = 0.0;
        for (std::size_t i = 0; i < series.size(); ++i) {
            (i < half ? first : second) += series[i];
        }
        stats.first_half_mean =
            half > 0 ? first / static_cast<double>(half) : 0.0;
        stats.second_half_mean =
            series.size() > half
                ? second / static_cast<double>(series.size() - half)
                : 0.0;
        all.push_back(stats);
    }
    return all;
}

double
FrameworkOverheadFraction(const runtime::Tracer& tracer, int skip_steps)
{
    double total = 0.0;
    double ops = 0.0;
    const auto& steps = tracer.steps();
    for (std::size_t s = static_cast<std::size_t>(skip_steps);
         s < steps.size(); ++s) {
        total += steps[s].wall_seconds;
        ops += steps[s].OpSeconds();
    }
    if (total <= 0.0) {
        return 0.0;
    }
    return (total - ops) / total;
}

}  // namespace fathom::analysis
