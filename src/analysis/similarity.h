/**
 * @file
 * Inter-workload similarity (paper Sec. V-C, Fig. 4).
 *
 * Each workload's op-type profile is a vector in the space of all op
 * types; pairwise similarity is cosine similarity, distance is
 * 1 - cos, and relationships are summarized by agglomerative
 * clustering with centroidal linkage — exactly the paper's method.
 */
#ifndef FATHOM_ANALYSIS_SIMILARITY_H
#define FATHOM_ANALYSIS_SIMILARITY_H

#include <string>
#include <vector>

#include "analysis/op_profile.h"

namespace fathom::analysis {

/**
 * Converts profiles into dense vectors over the union of op types.
 * Row i corresponds to profiles[i]; columns are sorted op-type names.
 */
std::vector<std::vector<double>> ProfileMatrix(
    const std::vector<OpProfile>& profiles);

/** Cosine distance 1 - (a.b)/(|a||b|); 1.0 when either norm is 0. */
double CosineDistance(const std::vector<double>& a,
                      const std::vector<double>& b);

/** One merge step of the agglomerative clustering. */
struct Merge {
    int left;         ///< cluster index (leaf: 0..n-1; merged: n, n+1, ...).
    int right;        ///< cluster index.
    double distance;  ///< centroid cosine distance at merge time.
};

/**
 * Agglomerative clustering with centroidal linkage: repeatedly merges
 * the two nearest clusters and replaces them by their (weighted)
 * centroid.
 *
 * @param vectors one vector per leaf.
 * @return n-1 merges; merge k creates cluster index n+k.
 */
std::vector<Merge> AgglomerativeCluster(
    const std::vector<std::vector<double>>& vectors);

/**
 * Renders an ASCII dendrogram of the clustering, the analogue of the
 * paper's Fig. 4.
 *
 * @param names leaf names (workloads).
 */
std::string RenderDendrogram(const std::vector<std::string>& names,
                             const std::vector<Merge>& merges);

}  // namespace fathom::analysis

#endif  // FATHOM_ANALYSIS_SIMILARITY_H
