/**
 * @file
 * Trace and graph exporters.
 *
 * The paper's Sec. VI discusses the two tools Google built around
 * TensorFlow: TensorBoard (graph visualization) and EEG (a distributed
 * tracing tool reconstructing the dynamic execution timeline, never
 * released). These exporters provide both capabilities for this
 * runtime: Graphviz DOT for the dataflow graph, and the Chrome
 * tracing JSON format (chrome://tracing, Perfetto) for execution
 * timelines.
 */
#ifndef FATHOM_ANALYSIS_EXPORT_H
#define FATHOM_ANALYSIS_EXPORT_H

#include <string>

#include "graph/graph.h"
#include "runtime/tracer.h"

namespace fathom::analysis {

/**
 * Renders the graph in Graphviz DOT, one box per node, colored by
 * operation class (the TensorBoard analogue).
 *
 * @param max_nodes truncate very large graphs (0 = no limit).
 */
std::string GraphToDot(const graph::Graph& g, int max_nodes = 0);

/**
 * Serializes a trace to the Chrome tracing JSON array format (the EEG
 * analogue). Load the output in chrome://tracing or
 * https://ui.perfetto.dev.
 *
 * Layout: one named lane per executor worker. Thread-name metadata
 * ("M") events label tid 0 "steps" — a per-step span event showing
 * each Session::Run — and tid k+1 "worker-k", carrying the ops that
 * executor lane actually ran as complete ("X") events. Timestamps are
 * the ops' true monotonic start offsets (each step is rebased onto the
 * end of the previous one), so under the inter-op executor concurrent
 * ops genuinely overlap in the viewer instead of being laid out
 * serially. Per-step allocator activity is attached as a counter ("C")
 * event. Timestamps and lanes are scheduling-dependent; the record
 * *order* inside the JSON stays canonical (plan-sequence) because that
 * is the order the tracer stores.
 */
std::string TraceToChromeJson(const runtime::Tracer& tracer);

/** Writes @p content to @p path. @throws std::runtime_error on I/O. */
void WriteFile(const std::string& path, const std::string& content);

}  // namespace fathom::analysis

#endif  // FATHOM_ANALYSIS_EXPORT_H
