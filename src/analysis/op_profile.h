/**
 * @file
 * Operation-type profiles: the core abstraction of the paper's
 * characterization methodology (Sec. V-A/V-B).
 *
 * A profile attributes a run's execution time to operation types and
 * operation classes. Profiles can be built from wall-clock time or
 * from simulated device time (see runtime/device_model.h), and feed
 * the skew curves (Fig. 2), class breakdowns (Fig. 3), similarity
 * clustering (Fig. 4), and scaling studies (Fig. 6).
 */
#ifndef FATHOM_ANALYSIS_OP_PROFILE_H
#define FATHOM_ANALYSIS_OP_PROFILE_H

#include <map>
#include <string>
#include <vector>

#include "graph/op_class.h"
#include "runtime/device_model.h"
#include "runtime/tracer.h"

namespace fathom::analysis {

/** Execution time attributed to operation types and classes. */
class OpProfile {
  public:
    /** Adds @p seconds to op type @p op_type of class @p op_class. */
    void Add(const std::string& op_type, graph::OpClass op_class,
             double seconds);

    /** @return total attributed seconds. */
    double total_seconds() const { return total_; }

    /** @return seconds per op type. */
    const std::map<std::string, double>& by_type() const { return by_type_; }

    /** @return seconds per op class. */
    const std::map<graph::OpClass, double>& by_class() const
    {
        return by_class_;
    }

    /** @return the class each op type was attributed to. */
    const std::map<std::string, graph::OpClass>& type_classes() const
    {
        return class_of_;
    }

    /** @return fraction of time in @p op_class (0 if none). */
    double ClassFraction(graph::OpClass op_class) const;

    /**
     * @return (type, fraction) pairs sorted by descending fraction —
     * one row of the paper's Fig. 2 analysis.
     */
    std::vector<std::pair<std::string, double>> SortedFractions() const;

    /**
     * Cumulative-time skew curve: entry k is the fraction of total time
     * covered by the k+1 heaviest op types (Fig. 2).
     */
    std::vector<double> SkewCurve() const;

    /**
     * @return the number of op types needed to cover @p fraction of
     * total time (the paper: "5 to 15 types cover upwards of 90%").
     */
    int TypesToCover(double fraction) const;

  private:
    std::map<std::string, double> by_type_;
    std::map<graph::OpClass, double> by_class_;
    std::map<std::string, graph::OpClass> class_of_;
    double total_ = 0.0;
};

/** Which clock a profile is built from. */
enum class TimeSource {
    kWall,       ///< measured wall-clock op time.
    kSimulated,  ///< device-model time from recorded OpCosts.
};

/**
 * Builds a profile from recorded steps.
 *
 * @param tracer     the session trace.
 * @param skip_steps warmup steps to drop from the front.
 * @param source     wall or simulated time.
 * @param device     device for simulated time (ignored for kWall).
 * @param include_control whether Control-class ops are attributed.
 */
OpProfile ProfileFromTrace(const runtime::Tracer& tracer, int skip_steps,
                           TimeSource source,
                           const runtime::DeviceSpec& device,
                           bool include_control = false);

/** Convenience: wall-time profile. */
OpProfile WallProfile(const runtime::Tracer& tracer, int skip_steps = 0);

}  // namespace fathom::analysis

#endif  // FATHOM_ANALYSIS_OP_PROFILE_H
