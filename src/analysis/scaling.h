/**
 * @file
 * Parallel-scaling analysis (paper Sec. V-E, Fig. 6) and the
 * train-vs-inference device comparison (Sec. V-D, Fig. 5).
 *
 * Both analyses replay a recorded trace through the analytical device
 * model: every executed op carries its measured OpCost, so the same
 * trace yields per-op-type times for any thread count or device
 * without re-running the model (the host machine has a single core;
 * see DESIGN.md for the substitution rationale).
 */
#ifndef FATHOM_ANALYSIS_SCALING_H
#define FATHOM_ANALYSIS_SCALING_H

#include <map>
#include <string>
#include <vector>

#include "runtime/device_model.h"
#include "runtime/tracer.h"

namespace fathom::analysis {

/** Per-op-type simulated seconds at each swept thread count. */
struct ScalingSweep {
    std::vector<int> thread_counts;
    /** op type -> seconds per thread-count (same order as above). */
    std::map<std::string, std::vector<double>> seconds_by_type;

    /** @return total seconds at sweep point @p i. */
    double TotalAt(std::size_t i) const;
};

/**
 * Replays the trace on CPU models with each thread count in
 * @p thread_counts (Fig. 6's x-axis).
 */
ScalingSweep SweepThreads(const runtime::Tracer& tracer, int skip_steps,
                          const std::vector<int>& thread_counts);

/**
 * @return the op types with the largest single-thread time, descending
 * (Fig. 6 plots the top handful of op types).
 */
std::vector<std::string> TopTypes(const ScalingSweep& sweep, int count);

/** Simulated total seconds of a trace on an arbitrary device. */
double SimulatedTotalSeconds(const runtime::Tracer& tracer, int skip_steps,
                             const runtime::DeviceSpec& device);

}  // namespace fathom::analysis

#endif  // FATHOM_ANALYSIS_SCALING_H
