/**
 * @file
 * Op-time stationarity statistics (paper Fig. 1) and framework
 * overhead measurement (paper Sec. V-A: "typically less than 1-2% of
 * the total runtime is spent outside of operations").
 */
#ifndef FATHOM_ANALYSIS_STATIONARITY_H
#define FATHOM_ANALYSIS_STATIONARITY_H

#include <map>
#include <string>
#include <vector>

#include "runtime/tracer.h"

namespace fathom::analysis {

/** Distribution of one op type's per-step execution time. */
struct StationarityStats {
    std::string op_type;
    int samples = 0;       ///< number of steps sampled.
    double mean = 0.0;     ///< mean per-step seconds.
    double stddev = 0.0;   ///< standard deviation across steps.
    double cv = 0.0;       ///< coefficient of variation (stddev/mean).
    double first_half_mean = 0.0;   ///< mean over the first half of steps.
    double second_half_mean = 0.0;  ///< mean over the second half.

    /**
     * Drift between the halves relative to the mean; small values
     * indicate the distribution is stationary across the run.
     */
    double drift() const;
};

/**
 * Per-step op-type time samples: sample k is the summed time of
 * @p op_type in step k (after @p skip_steps warmup).
 */
std::vector<double> PerStepSeries(const runtime::Tracer& tracer,
                                  const std::string& op_type,
                                  int skip_steps);

/** Stationarity statistics for every op type present in the trace. */
std::vector<StationarityStats> ComputeStationarity(
    const runtime::Tracer& tracer, int skip_steps);

/**
 * Fraction of total step wall time spent outside op kernels — the
 * framework overhead the paper reports as < 1-2%.
 */
double FrameworkOverheadFraction(const runtime::Tracer& tracer,
                                 int skip_steps);

}  // namespace fathom::analysis

#endif  // FATHOM_ANALYSIS_STATIONARITY_H
