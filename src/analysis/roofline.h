/**
 * @file
 * Per-op roofline/efficiency reporting.
 *
 * Joins the tracer's two facts about every executed op — its modeled
 * OpCost (FLOPs, bytes) and its measured wall time — into the standard
 * roofline quantities: achieved GFLOP/s, achieved memory bandwidth,
 * arithmetic intensity (FLOPs per byte), and the ratio of
 * device-model-predicted time to measured time. Aggregation is per op
 * type and per op class, so a workload's report shows directly which
 * classes run near the machine model's roof (big GEMMs) and which are
 * dispatch- or bandwidth-bound (elementwise, optimizer updates) — the
 * paper's Sec. V efficiency argument, made quantitative per op.
 */
#ifndef FATHOM_ANALYSIS_ROOFLINE_H
#define FATHOM_ANALYSIS_ROOFLINE_H

#include <cstdint>
#include <string>
#include <vector>

#include "graph/op_class.h"
#include "runtime/device_model.h"
#include "runtime/tracer.h"

namespace fathom::analysis {

/** Aggregated roofline quantities for one op type (or one class). */
struct RooflineRow {
    std::string key;  ///< op type, or class name for class rows.
    graph::OpClass op_class = graph::OpClass::kControl;
    std::int64_t executions = 0;    ///< op records aggregated.
    double wall_seconds = 0.0;      ///< summed measured time.
    double predicted_seconds = 0.0; ///< summed device-model time.
    double flops = 0.0;             ///< summed modeled FLOPs.
    double bytes = 0.0;             ///< summed modeled bytes moved.

    /** @return achieved GFLOP/s (0 when no time was measured). */
    double AchievedGflops() const
    {
        return wall_seconds > 0.0 ? flops / wall_seconds / 1e9 : 0.0;
    }

    /** @return achieved memory bandwidth in GB/s. */
    double AchievedGbps() const
    {
        return wall_seconds > 0.0 ? bytes / wall_seconds / 1e9 : 0.0;
    }

    /** @return arithmetic intensity, FLOPs per byte moved. */
    double Intensity() const { return bytes > 0.0 ? flops / bytes : 0.0; }

    /**
     * @return predicted / measured time: 1.0 means the device model
     * matches reality, > 1 means the op ran faster than the model's
     * roofline bound expects, < 1 slower (dispatch overhead, cache
     * misses the byte count does not see, ...).
     */
    double ModelRatio() const
    {
        return wall_seconds > 0.0 ? predicted_seconds / wall_seconds : 0.0;
    }
};

/** A whole run's roofline view against one device model. */
struct RooflineReport {
    runtime::DeviceSpec device;
    std::vector<RooflineRow> by_type;   ///< descending wall time.
    std::vector<RooflineRow> by_class;  ///< descending wall time.
    double total_wall_seconds = 0.0;
    double total_flops = 0.0;
    double total_bytes = 0.0;
};

/**
 * Aggregates every recorded op (after @p skip_steps warmup steps)
 * against @p device. Predicted time per op is
 * runtime::EstimateSeconds() on the op's recorded cost.
 */
RooflineReport BuildRooflineReport(const runtime::Tracer& tracer,
                                   int skip_steps,
                                   const runtime::DeviceSpec& device);

/**
 * Renders the report as a fixed-width text table: the by-class block,
 * then the @p max_type_rows heaviest op types (0 = all).
 */
std::string RenderRooflineReport(const RooflineReport& report,
                                 int max_type_rows = 0);

}  // namespace fathom::analysis

#endif  // FATHOM_ANALYSIS_ROOFLINE_H
