#include "analysis/roofline.h"

#include <algorithm>
#include <iomanip>
#include <map>
#include <sstream>

namespace fathom::analysis {

namespace {

void
Accumulate(RooflineRow& row, const runtime::OpExecRecord& r,
           const runtime::DeviceSpec& device)
{
    ++row.executions;
    row.wall_seconds += r.wall_seconds;
    row.predicted_seconds += runtime::EstimateSeconds(r.cost, device);
    row.flops += r.cost.flops;
    row.bytes += r.cost.bytes;
}

std::vector<RooflineRow>
SortedRows(std::map<std::string, RooflineRow>&& rows)
{
    std::vector<RooflineRow> out;
    out.reserve(rows.size());
    for (auto& [key, row] : rows) {
        out.push_back(std::move(row));
    }
    std::sort(out.begin(), out.end(),
              [](const RooflineRow& a, const RooflineRow& b) {
                  if (a.wall_seconds != b.wall_seconds) {
                      return a.wall_seconds > b.wall_seconds;
                  }
                  return a.key < b.key;  // stable for zero-time ties.
              });
    return out;
}

void
RenderRows(std::ostringstream& out, const std::vector<RooflineRow>& rows,
           double total_wall, int max_rows)
{
    out << "  " << std::left << std::setw(22) << "name" << std::right
        << std::setw(7) << "execs" << std::setw(10) << "wall-ms"
        << std::setw(8) << "share" << std::setw(10) << "GFLOP/s"
        << std::setw(9) << "GB/s" << std::setw(10) << "FLOP/B"
        << std::setw(9) << "model" << "\n";
    int shown = 0;
    for (const RooflineRow& row : rows) {
        if (max_rows > 0 && shown >= max_rows) {
            out << "  ... " << (rows.size() - static_cast<std::size_t>(shown))
                << " more rows\n";
            break;
        }
        ++shown;
        const double share =
            total_wall > 0.0 ? row.wall_seconds / total_wall : 0.0;
        out << "  " << std::left << std::setw(22) << row.key << std::right
            << std::setw(7) << row.executions << std::setw(10) << std::fixed
            << std::setprecision(3) << row.wall_seconds * 1e3 << std::setw(7)
            << std::setprecision(1) << share * 100.0 << "%" << std::setw(10)
            << std::setprecision(2) << row.AchievedGflops() << std::setw(9)
            << row.AchievedGbps() << std::setw(10) << row.Intensity()
            << std::setw(8) << row.ModelRatio() << "x\n";
    }
}

}  // namespace

RooflineReport
BuildRooflineReport(const runtime::Tracer& tracer, int skip_steps,
                    const runtime::DeviceSpec& device)
{
    RooflineReport report;
    report.device = device;

    std::map<std::string, RooflineRow> by_type;
    std::map<std::string, RooflineRow> by_class;
    const auto& steps = tracer.steps();
    for (std::size_t s = static_cast<std::size_t>(std::max(skip_steps, 0));
         s < steps.size(); ++s) {
        for (const auto& r : steps[s].records) {
            RooflineRow& t = by_type[r.op_type];
            if (t.key.empty()) {
                t.key = r.op_type;
                t.op_class = r.op_class;
            }
            Accumulate(t, r, device);

            const std::string cls = graph::OpClassName(r.op_class);
            RooflineRow& c = by_class[cls];
            if (c.key.empty()) {
                c.key = cls;
                c.op_class = r.op_class;
            }
            Accumulate(c, r, device);

            report.total_wall_seconds += r.wall_seconds;
            report.total_flops += r.cost.flops;
            report.total_bytes += r.cost.bytes;
        }
    }
    report.by_type = SortedRows(std::move(by_type));
    report.by_class = SortedRows(std::move(by_class));
    return report;
}

std::string
RenderRooflineReport(const RooflineReport& report, int max_type_rows)
{
    std::ostringstream out;
    const double wall = report.total_wall_seconds;
    out << "Roofline vs " << report.device.name << " ("
        << std::fixed << std::setprecision(1)
        << report.device.threads * report.device.flops_per_thread / 1e9
        << " GFLOP/s peak, "
        << report.device.bytes_per_sec / 1e9 << " GB/s)\n";
    out << "  total: " << std::setprecision(3) << wall * 1e3 << " ms, "
        << std::setprecision(2)
        << (wall > 0.0 ? report.total_flops / wall / 1e9 : 0.0)
        << " GFLOP/s achieved, intensity "
        << (report.total_bytes > 0.0
                ? report.total_flops / report.total_bytes
                : 0.0)
        << " FLOP/B\n";
    out << "by class:\n";
    RenderRows(out, report.by_class, wall, 0);
    out << "by op type:\n";
    RenderRows(out, report.by_type, wall, max_type_rows);
    return out.str();
}

}  // namespace fathom::analysis
