#include "telemetry/exporters.h"

#include <sstream>

namespace fathom::telemetry {

namespace {

/** Writes a double with enough precision to round-trip reporting. */
std::string
FormatDouble(double v)
{
    std::ostringstream out;
    out.precision(12);
    out << v;
    return out.str();
}

std::string
PrometheusName(const std::string& name)
{
    std::string out = "fathom_";
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        out += ok ? c : '_';
    }
    return out;
}

}  // namespace

std::string
MetricsToJsonl(const MetricsSnapshot& snapshot)
{
    std::ostringstream out;
    for (const auto& [name, value] : snapshot.counters) {
        out << "{\"kind\":\"counter\",\"name\":\"" << name
            << "\",\"value\":" << value << "}\n";
    }
    for (const auto& [name, value] : snapshot.gauges) {
        out << "{\"kind\":\"gauge\",\"name\":\"" << name
            << "\",\"value\":" << FormatDouble(value) << "}\n";
    }
    for (const auto& [name, h] : snapshot.histograms) {
        out << "{\"kind\":\"histogram\",\"name\":\"" << name
            << "\",\"count\":" << h.count << ",\"sum\":" << h.sum
            << ",\"mean\":" << FormatDouble(h.Mean()) << ",\"buckets\":{";
        bool first = true;
        for (int b = 0; b < HistogramSnapshot::kNumBuckets; ++b) {
            const std::uint64_t n = h.buckets[static_cast<std::size_t>(b)];
            if (n == 0) {
                continue;
            }
            if (!first) {
                out << ",";
            }
            first = false;
            out << "\"" << HistogramSnapshot::BucketUpperBound(b)
                << "\":" << n;
        }
        out << "}}\n";
    }
    return out.str();
}

std::string
MetricsToPrometheus(const MetricsSnapshot& snapshot)
{
    std::ostringstream out;
    for (const auto& [name, value] : snapshot.counters) {
        const std::string p = PrometheusName(name);
        out << "# TYPE " << p << " counter\n" << p << " " << value << "\n";
    }
    for (const auto& [name, value] : snapshot.gauges) {
        const std::string p = PrometheusName(name);
        out << "# TYPE " << p << " gauge\n"
            << p << " " << FormatDouble(value) << "\n";
    }
    for (const auto& [name, h] : snapshot.histograms) {
        const std::string p = PrometheusName(name);
        out << "# TYPE " << p << " histogram\n";
        std::uint64_t cumulative = 0;
        for (int b = 0; b < HistogramSnapshot::kNumBuckets; ++b) {
            const std::uint64_t n = h.buckets[static_cast<std::size_t>(b)];
            if (n == 0) {
                continue;
            }
            cumulative += n;
            out << p << "_bucket{le=\""
                << HistogramSnapshot::BucketUpperBound(b)
                << "\"} " << cumulative << "\n";
        }
        out << p << "_bucket{le=\"+Inf\"} " << h.count << "\n"
            << p << "_sum " << h.sum << "\n"
            << p << "_count " << h.count << "\n";
    }
    return out.str();
}

}  // namespace fathom::telemetry
