/**
 * @file
 * Low-overhead process-wide metrics: counters, gauges, and
 * log2-bucketed histograms behind a registry with a snapshot API.
 *
 * The registry is the quantitative side of the paper's
 * "application-level modeling tools": where the tracer answers *when*
 * an op ran and for how long, metrics absorb the runtime signals that
 * have no single op to attach to — executor ready-queue depth, worker
 * busy/idle time, BufferPool fresh-vs-hit rates, GEMM pack-buffer
 * reuse.
 *
 * Design constraints, in order:
 *
 *  1. The hot path must be lock-free and branch-cheap. Every mutation
 *     (Counter::Add, Histogram::Observe) is a relaxed atomic RMW
 *     guarded by one relaxed load of the global enabled flag; when
 *     collection is disabled the mutation is a single load-and-branch.
 *  2. Metric objects are created once and never destroyed, so callers
 *     cache `Counter&` references (typically in function-local
 *     statics) and never pay the name lookup per event.
 *  3. Snapshots are taken without stopping writers: relaxed reads give
 *     a consistent-enough view for reporting (individual values are
 *     exact; cross-metric skew is bounded by the snapshot duration).
 *
 * This library sits below everything else in the repository (it
 * depends only on the standard library) so the allocator, the thread
 * pool, the kernels, and the runtime can all emit into it.
 */
#ifndef FATHOM_TELEMETRY_METRICS_H
#define FATHOM_TELEMETRY_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace fathom::telemetry {

/** @return whether metric collection is globally enabled. */
bool MetricsEnabled();

/** Monotonically increasing event count. */
class Counter {
  public:
    /** Adds @p n. Lock-free; a no-op while collection is disabled. */
    void Add(std::uint64_t n = 1)
    {
        if (MetricsEnabled()) {
            value_.fetch_add(n, std::memory_order_relaxed);
        }
    }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void Reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-written instantaneous value. */
class Gauge {
  public:
    /** Stores @p v. Lock-free; a no-op while collection is disabled. */
    void Set(double v)
    {
        if (MetricsEnabled()) {
            value_.store(v, std::memory_order_relaxed);
        }
    }

    double value() const { return value_.load(std::memory_order_relaxed); }

    void Reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/** Point-in-time copy of one histogram. */
struct HistogramSnapshot {
    /**
     * Bucket b counts observations v with bit_width(v) == b: bucket 0
     * is exactly {0}, bucket b >= 1 covers [2^(b-1), 2^b - 1].
     */
    static constexpr int kNumBuckets = 65;

    std::uint64_t count = 0;  ///< total observations.
    std::uint64_t sum = 0;    ///< sum of observed values.
    std::array<std::uint64_t, kNumBuckets> buckets{};

    double Mean() const
    {
        return count > 0 ? static_cast<double>(sum) /
                               static_cast<double>(count)
                         : 0.0;
    }

    /** @return inclusive upper bound of bucket @p b (2^b - 1; 0 for b=0). */
    static std::uint64_t BucketUpperBound(int b);
};

/**
 * Log2-bucketed distribution of non-negative integer observations
 * (depths, microseconds, bytes). Buckets are powers of two, so
 * Observe is a bit_width plus two relaxed atomic adds — no floating
 * point, no locks.
 */
class Histogram {
  public:
    static constexpr int kNumBuckets = HistogramSnapshot::kNumBuckets;

    /** Records @p v. Lock-free; a no-op while collection is disabled. */
    void Observe(std::uint64_t v);

    HistogramSnapshot snapshot() const;

    void Reset();

  private:
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
};

/** Point-in-time copy of every registered metric, sorted by name. */
struct MetricsSnapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

    /** @return the counter's value, or 0 if absent. */
    std::uint64_t CounterValue(const std::string& name) const;

    /** @return the histogram, or an empty one if absent. */
    HistogramSnapshot HistogramValue(const std::string& name) const;
};

/**
 * The process-wide metric registry.
 *
 * Get* calls create-or-return by name (a mutex guards the maps; the
 * returned references stay valid for the life of the process, which
 * is how the hot path avoids the lookup). Names use dotted lowercase
 * ("executor.ready_queue_depth"); the exporters transliterate as
 * their format requires.
 */
class MetricsRegistry {
  public:
    static MetricsRegistry& Global();

    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /**
     * Turns collection on or off process-wide. Off (the default) makes
     * every mutation a single relaxed load-and-branch, which is what
     * keeps the un-instrumented hot path inside the <=2% overhead
     * budget (bench_telemetry measures it).
     */
    static void set_enabled(bool enabled);
    static bool enabled() { return MetricsEnabled(); }

    /** @return the named counter, creating it on first use. */
    Counter& GetCounter(const std::string& name);
    Gauge& GetGauge(const std::string& name);
    Histogram& GetHistogram(const std::string& name);

    /** Zeroes every registered metric (benches/tests between runs). */
    void ResetAll();

    /** @return a relaxed, name-sorted copy of every metric. */
    MetricsSnapshot Snapshot() const;

  private:
    mutable std::mutex mu_;  ///< guards the maps, not the metrics.
    // std::map keeps snapshots name-sorted; unique_ptr keeps metric
    // addresses stable across rehash-free map growth.
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace fathom::telemetry

#endif  // FATHOM_TELEMETRY_METRICS_H
