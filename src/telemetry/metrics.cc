#include "telemetry/metrics.h"

#include <bit>

namespace fathom::telemetry {

namespace {

/**
 * Collection gate, read on every mutation. Relaxed is correct: the
 * flag only modulates whether best-effort statistics accumulate; it
 * never orders data.
 */
std::atomic<bool> g_enabled{false};

}  // namespace

bool
MetricsEnabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

std::uint64_t
HistogramSnapshot::BucketUpperBound(int b)
{
    if (b <= 0) {
        return 0;
    }
    if (b >= 64) {
        return ~std::uint64_t{0};
    }
    return (std::uint64_t{1} << b) - 1;
}

void
Histogram::Observe(std::uint64_t v)
{
    if (!MetricsEnabled()) {
        return;
    }
    const int b = std::bit_width(v);  // 0 for v == 0.
    buckets_[static_cast<std::size_t>(b)].fetch_add(
        1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot s;
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    for (int b = 0; b < kNumBuckets; ++b) {
        s.buckets[static_cast<std::size_t>(b)] =
            buckets_[static_cast<std::size_t>(b)].load(
                std::memory_order_relaxed);
    }
    return s;
}

void
Histogram::Reset()
{
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    for (auto& b : buckets_) {
        b.store(0, std::memory_order_relaxed);
    }
}

std::uint64_t
MetricsSnapshot::CounterValue(const std::string& name) const
{
    for (const auto& [n, v] : counters) {
        if (n == name) {
            return v;
        }
    }
    return 0;
}

HistogramSnapshot
MetricsSnapshot::HistogramValue(const std::string& name) const
{
    for (const auto& [n, h] : histograms) {
        if (n == name) {
            return h;
        }
    }
    return HistogramSnapshot{};
}

MetricsRegistry&
MetricsRegistry::Global()
{
    // Leaked intentionally: metric references handed out must outlive
    // every static destructor that might still record.
    static MetricsRegistry* registry = new MetricsRegistry();
    return *registry;
}

void
MetricsRegistry::set_enabled(bool enabled)
{
    g_enabled.store(enabled, std::memory_order_relaxed);
}

Counter&
MetricsRegistry::GetCounter(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = counters_[name];
    if (!slot) {
        slot = std::make_unique<Counter>();
    }
    return *slot;
}

Gauge&
MetricsRegistry::GetGauge(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = gauges_[name];
    if (!slot) {
        slot = std::make_unique<Gauge>();
    }
    return *slot;
}

Histogram&
MetricsRegistry::GetHistogram(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = histograms_[name];
    if (!slot) {
        slot = std::make_unique<Histogram>();
    }
    return *slot;
}

void
MetricsRegistry::ResetAll()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, c] : counters_) {
        c->Reset();
    }
    for (auto& [name, g] : gauges_) {
        g->Reset();
    }
    for (auto& [name, h] : histograms_) {
        h->Reset();
    }
}

MetricsSnapshot
MetricsRegistry::Snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    MetricsSnapshot s;
    s.counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_) {
        s.counters.emplace_back(name, c->value());
    }
    s.gauges.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_) {
        s.gauges.emplace_back(name, g->value());
    }
    s.histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) {
        s.histograms.emplace_back(name, h->snapshot());
    }
    return s;
}

}  // namespace fathom::telemetry
