/**
 * @file
 * Text exporters for metric snapshots: JSONL (one metric per line,
 * machine-joinable with the Chrome trace) and Prometheus-style
 * exposition text (scrapeable / grep-able).
 */
#ifndef FATHOM_TELEMETRY_EXPORTERS_H
#define FATHOM_TELEMETRY_EXPORTERS_H

#include <string>

#include "telemetry/metrics.h"

namespace fathom::telemetry {

/**
 * One JSON object per line:
 *   {"kind":"counter","name":"session.steps","value":12}
 *   {"kind":"gauge","name":"...","value":0.5}
 *   {"kind":"histogram","name":"...","count":8,"sum":40,"mean":5.0,
 *    "buckets":{"1":2,"7":6}}
 * Histogram bucket keys are the inclusive upper bound of each
 * non-empty log2 bucket. Lines are sorted by metric name.
 */
std::string MetricsToJsonl(const MetricsSnapshot& snapshot);

/**
 * Prometheus exposition text. Metric names are prefixed with
 * "fathom_" and dots become underscores; histograms emit cumulative
 * `_bucket{le="..."}` series plus `_sum` and `_count`.
 */
std::string MetricsToPrometheus(const MetricsSnapshot& snapshot);

}  // namespace fathom::telemetry

#endif  // FATHOM_TELEMETRY_EXPORTERS_H
