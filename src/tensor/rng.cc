#include "tensor/rng.h"

#include <cmath>
#include <stdexcept>

namespace fathom {
namespace {

/** splitmix64: used to expand the seed into xoshiro state. */
std::uint64_t
SplitMix64(std::uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
Rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto& s : s_) {
        s = SplitMix64(x);
    }
}

std::uint64_t
Rng::NextU64()
{
    const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
}

double
Rng::Uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

float
Rng::UniformFloat(float lo, float hi)
{
    return lo + static_cast<float>(Uniform()) * (hi - lo);
}

std::int64_t
Rng::UniformInt(std::int64_t n)
{
    if (n <= 0) {
        throw std::invalid_argument("Rng::UniformInt: n must be > 0");
    }
    return static_cast<std::int64_t>(Uniform() * static_cast<double>(n));
}

float
Rng::Normal()
{
    if (have_cached_normal_) {
        have_cached_normal_ = false;
        return cached_normal_;
    }
    // Box-Muller transform; cache the second sample.
    double u1 = Uniform();
    double u2 = Uniform();
    while (u1 <= 1e-300) {
        u1 = Uniform();
    }
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_normal_ = static_cast<float>(r * std::sin(theta));
    have_cached_normal_ = true;
    return static_cast<float>(r * std::cos(theta));
}

float
Rng::Normal(float mean, float stddev)
{
    return mean + stddev * Normal();
}

void
Rng::FillNormal(Tensor* t, float mean, float stddev)
{
    float* p = t->data<float>();
    const std::int64_t n = t->num_elements();
    for (std::int64_t i = 0; i < n; ++i) {
        p[i] = Normal(mean, stddev);
    }
}

void
Rng::FillUniform(Tensor* t, float lo, float hi)
{
    float* p = t->data<float>();
    const std::int64_t n = t->num_elements();
    for (std::int64_t i = 0; i < n; ++i) {
        p[i] = UniformFloat(lo, hi);
    }
}

Rng
Rng::Split()
{
    return Rng(NextU64() ^ 0xa0761d6478bd642full);
}

std::uint64_t
MixSeed(std::uint64_t seed, std::uint64_t index)
{
    // Two rounds of the splitmix64 finalizer over seed then index:
    // adjacent indices map to decorrelated seeds, and (seed, index)
    // pairs never collide for distinct small inputs in practice.
    std::uint64_t x = seed + 0x9e3779b97f4a7c15ull;
    std::uint64_t z = SplitMix64(x);
    x = z ^ (index + 0xbf58476d1ce4e5b9ull);
    z = SplitMix64(x);
    return z;
}

}  // namespace fathom
