#include "tensor/shape.h"

#include <sstream>
#include <stdexcept>

namespace fathom {

Shape::Shape(std::initializer_list<std::int64_t> dims) : dims_(dims)
{
    for (std::int64_t d : dims_) {
        if (d < 0) {
            throw std::invalid_argument("Shape dimensions must be >= 0");
        }
    }
}

Shape::Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims))
{
    for (std::int64_t d : dims_) {
        if (d < 0) {
            throw std::invalid_argument("Shape dimensions must be >= 0");
        }
    }
}

std::int64_t
Shape::dim(int axis) const
{
    const int r = rank();
    if (axis < 0) {
        axis += r;
    }
    if (axis < 0 || axis >= r) {
        throw std::out_of_range("Shape::dim axis " + std::to_string(axis) +
                                " out of range for rank " + std::to_string(r));
    }
    return dims_[static_cast<std::size_t>(axis)];
}

std::int64_t
Shape::num_elements() const
{
    std::int64_t n = 1;
    for (std::int64_t d : dims_) {
        n *= d;
    }
    return n;
}

std::int64_t
Shape::stride(int axis) const
{
    const int r = rank();
    if (axis < 0) {
        axis += r;
    }
    if (axis < 0 || axis >= r) {
        throw std::out_of_range("Shape::stride axis out of range");
    }
    std::int64_t s = 1;
    for (int i = axis + 1; i < r; ++i) {
        s *= dims_[static_cast<std::size_t>(i)];
    }
    return s;
}

std::string
Shape::ToString() const
{
    std::ostringstream out;
    out << "[";
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        if (i > 0) {
            out << ", ";
        }
        out << dims_[i];
    }
    out << "]";
    return out.str();
}

}  // namespace fathom
