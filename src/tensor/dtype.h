/**
 * @file
 * Element data types supported by the Fathom tensor library.
 *
 * The deep-learning workloads in Fathom only require single-precision
 * floating point for parameters/activations and 32-bit integers for
 * indices and labels, so the type system is deliberately small.
 */
#ifndef FATHOM_TENSOR_DTYPE_H
#define FATHOM_TENSOR_DTYPE_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace fathom {

/** Element type of a Tensor. */
enum class DType {
    kFloat32,  ///< 32-bit IEEE-754 float (parameters, activations).
    kInt32,    ///< 32-bit signed integer (indices, labels, shapes).
};

/** @return the size in bytes of one element of @p dtype. */
std::size_t DTypeSize(DType dtype);

/** @return a human-readable name, e.g. "float32". */
std::string DTypeName(DType dtype);

/**
 * Maps a C++ scalar type to its DType tag.
 *
 * Used by Tensor::data<T>() to check that typed accesses match the
 * tensor's runtime element type.
 */
template <typename T>
struct DTypeOf;

template <>
struct DTypeOf<float> {
    static constexpr DType value = DType::kFloat32;
};

template <>
struct DTypeOf<std::int32_t> {
    static constexpr DType value = DType::kInt32;
};

}  // namespace fathom

#endif  // FATHOM_TENSOR_DTYPE_H
