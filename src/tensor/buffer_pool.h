/**
 * @file
 * The size-bucketed buffer pool backing all tensor allocations.
 *
 * Every Tensor buffer in the process is served by BufferPool::Global().
 * Freed blocks are recycled through per-bucket free lists (sizes are
 * rounded up to powers of two) instead of returning to the system
 * allocator, so steady-state training steps stop paying malloc per
 * intermediate tensor. Blocks are handed out as shared_ptr with a
 * deleter that returns them to the pool, which means recycling is
 * refcount-driven: a block can only re-enter a free list once every
 * tensor, view, and variable referencing it is gone — buffer reuse can
 * never manufacture a use-after-free.
 *
 * The pool also keeps the allocation counters consumed by the memory
 * planner's instrumentation (Tracer step stats, bench_memory): request
 * and fresh-allocation counts, pool hits, live bytes, and a resettable
 * live-byte high-water mark. Counters are atomics and free lists are
 * mutex-protected, so the pool is safe under the inter-op executor.
 */
#ifndef FATHOM_TENSOR_BUFFER_POOL_H
#define FATHOM_TENSOR_BUFFER_POOL_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace fathom {

class BufferPool {
  public:
    /** Counter snapshot; byte figures use rounded bucket sizes. */
    struct Stats {
        std::uint64_t allocations = 0;   ///< total requests served.
        std::uint64_t fresh_allocs = 0;  ///< served by operator new[].
        std::uint64_t pool_hits = 0;     ///< served from a free list.
        std::uint64_t live_bytes = 0;    ///< bytes in outstanding blocks.
        std::uint64_t peak_bytes = 0;    ///< live-byte high-water mark.
        std::uint64_t pooled_bytes = 0;  ///< bytes parked in free lists.
    };

    /** @return the process-wide pool (never destroyed). */
    static BufferPool& Global();

    BufferPool() = default;
    BufferPool(const BufferPool&) = delete;
    BufferPool& operator=(const BufferPool&) = delete;

    /**
     * @return a block of at least @p bytes whose deleter returns it to
     * this pool. Thread-safe.
     *
     * When @p from_pool is non-null it is set to whether the request
     * was served from a free list (vs. a fresh system allocation), so
     * callers with their own reuse metrics (e.g. the GEMM pack-buffer
     * counters) can attribute the hit without re-deriving it from
     * global counter deltas.
     */
    std::shared_ptr<char[]> Allocate(std::size_t bytes,
                                     bool* from_pool = nullptr);

    /**
     * Enables or disables recycling. When off, freed blocks go back to
     * the system allocator (the pre-planner behavior); counters keep
     * accumulating either way. Existing free lists are dropped on
     * disable.
     */
    void set_recycling(bool enabled);
    bool recycling() const { return recycling_.load(std::memory_order_relaxed); }

    Stats stats() const;

    /** Restarts the high-water mark from the current live bytes. */
    void ResetPeak();

    /** Returns every parked free block to the system allocator. */
    void Trim();

  private:
    friend struct BufferPoolDeleter;

    /** Returns a block to the free list (or frees it). Thread-safe. */
    void Release(char* block, std::size_t bucket_bytes);

    // Free blocks parked per power-of-two bucket; index = log2(size).
    static constexpr int kNumBuckets = 48;
    // Keeping arbitrarily many dead steps' worth of buffers parked
    // helps nobody; past this, released blocks go straight back to the
    // system allocator.
    static constexpr std::uint64_t kMaxPooledBytes = 1ull << 30;

    std::atomic<bool> recycling_{true};
    std::atomic<std::uint64_t> allocations_{0};
    std::atomic<std::uint64_t> fresh_allocs_{0};
    std::atomic<std::uint64_t> pool_hits_{0};
    std::atomic<std::uint64_t> live_bytes_{0};
    std::atomic<std::uint64_t> peak_bytes_{0};
    std::atomic<std::uint64_t> pooled_bytes_{0};

    mutable std::mutex mu_;  ///< guards free_lists_.
    std::vector<char*> free_lists_[kNumBuckets];
};

}  // namespace fathom

#endif  // FATHOM_TENSOR_BUFFER_POOL_H
