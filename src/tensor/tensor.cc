#include "tensor/tensor.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "tensor/buffer_pool.h"

namespace fathom {

Tensor::Tensor(DType dtype, Shape shape)
    : dtype_(dtype), shape_(std::move(shape))
{
    const std::size_t bytes =
        static_cast<std::size_t>(shape_.num_elements()) * DTypeSize(dtype_);
    // Allocate at least one byte so buffer_ is non-null for empty shapes.
    buffer_ = BufferPool::Global().Allocate(std::max<std::size_t>(bytes, 1));
}

Tensor
Tensor::Zeros(const Shape& shape, DType dtype)
{
    Tensor t(dtype, shape);
    std::memset(t.buffer_.get(), 0, t.byte_size());
    return t;
}

Tensor
Tensor::Full(const Shape& shape, float value)
{
    Tensor t(DType::kFloat32, shape);
    t.Fill(value);
    return t;
}

Tensor
Tensor::Scalar(float value)
{
    Tensor t(DType::kFloat32, Shape{});
    t.data<float>()[0] = value;
    return t;
}

Tensor
Tensor::ScalarInt(std::int32_t value)
{
    Tensor t(DType::kInt32, Shape{});
    t.data<std::int32_t>()[0] = value;
    return t;
}

Tensor
Tensor::FromVector(const std::vector<float>& values)
{
    return FromVector(Shape{static_cast<std::int64_t>(values.size())}, values);
}

Tensor
Tensor::FromVector(const Shape& shape, const std::vector<float>& values)
{
    if (shape.num_elements() != static_cast<std::int64_t>(values.size())) {
        throw std::invalid_argument(
            "Tensor::FromVector: shape " + shape.ToString() + " needs " +
            std::to_string(shape.num_elements()) + " values, got " +
            std::to_string(values.size()));
    }
    Tensor t(DType::kFloat32, shape);
    std::memcpy(t.buffer_.get(), values.data(), values.size() * sizeof(float));
    return t;
}

Tensor
Tensor::FromVectorInt(const Shape& shape,
                      const std::vector<std::int32_t>& values)
{
    if (shape.num_elements() != static_cast<std::int64_t>(values.size())) {
        throw std::invalid_argument("Tensor::FromVectorInt: size mismatch");
    }
    Tensor t(DType::kInt32, shape);
    std::memcpy(t.buffer_.get(), values.data(),
                values.size() * sizeof(std::int32_t));
    return t;
}

float
Tensor::scalar_value() const
{
    if (num_elements() != 1) {
        throw std::logic_error("scalar_value() on tensor with " +
                               std::to_string(num_elements()) + " elements");
    }
    if (dtype_ == DType::kInt32) {
        return static_cast<float>(data<std::int32_t>()[0]);
    }
    return data<float>()[0];
}

Tensor
Tensor::Reshape(const Shape& new_shape) const
{
    if (new_shape.num_elements() != shape_.num_elements()) {
        throw std::invalid_argument(
            "Tensor::Reshape: cannot reshape " + shape_.ToString() + " to " +
            new_shape.ToString());
    }
    Tensor t;
    t.dtype_ = dtype_;
    t.shape_ = new_shape;
    t.buffer_ = buffer_;
    return t;
}

Tensor
Tensor::Clone() const
{
    if (!initialized()) {
        return Tensor();
    }
    Tensor t(dtype_, shape_);
    std::memcpy(t.buffer_.get(), buffer_.get(), byte_size());
    return t;
}

void
Tensor::CopyFrom(const Tensor& src)
{
    if (src.dtype() != dtype_ || src.num_elements() != num_elements()) {
        throw std::invalid_argument("Tensor::CopyFrom: incompatible source");
    }
    std::memcpy(buffer_.get(), src.buffer_.get(), byte_size());
}

void
Tensor::Fill(float value)
{
    float* p = data<float>();
    std::fill(p, p + num_elements(), value);
}

std::string
Tensor::DebugString() const
{
    if (!initialized()) {
        return "<empty tensor>";
    }
    return DTypeName(dtype_) + shape_.ToString();
}

std::size_t
Tensor::byte_size() const
{
    return static_cast<std::size_t>(num_elements()) * DTypeSize(dtype_);
}

void
Tensor::CheckType(DType expected) const
{
    if (!initialized()) {
        throw std::logic_error("access to uninitialized Tensor");
    }
    if (dtype_ != expected) {
        throw std::logic_error("Tensor dtype mismatch: is " +
                               DTypeName(dtype_) + ", accessed as " +
                               DTypeName(expected));
    }
}

}  // namespace fathom
