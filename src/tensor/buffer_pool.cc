#include "tensor/buffer_pool.h"

#include <algorithm>

#include "telemetry/metrics.h"

namespace fathom {

namespace {

/** Allocator metrics, resolved once (see telemetry/metrics.h). */
struct PoolMetrics {
    telemetry::Counter& requests;
    telemetry::Counter& fresh_allocs;
    telemetry::Counter& pool_hits;

    static PoolMetrics&
    Get()
    {
        static PoolMetrics* m = [] {
            auto& r = telemetry::MetricsRegistry::Global();
            return new PoolMetrics{
                r.GetCounter("allocator.requests"),
                r.GetCounter("allocator.fresh_allocs"),
                r.GetCounter("allocator.pool_hits"),
            };
        }();
        return *m;
    }
};

/** @return the bucket index whose size is the smallest power of two
 * holding @p bytes (minimum 64 bytes, one cache line). */
int
BucketIndex(std::size_t bytes)
{
    int index = 6;  // 64-byte floor.
    while ((std::size_t{1} << index) < bytes) {
        ++index;
    }
    return index;
}

}  // namespace

/** shared_ptr deleter returning blocks to their pool. */
struct BufferPoolDeleter {
    BufferPool* pool;
    std::size_t bucket_bytes;

    void
    operator()(char* block) const
    {
        pool->Release(block, bucket_bytes);
    }
};

BufferPool&
BufferPool::Global()
{
    // Leaked on purpose: tensors in other static-storage objects
    // (variable stores, cached plans) may release blocks during exit.
    static BufferPool* pool = new BufferPool;
    return *pool;
}

std::shared_ptr<char[]>
BufferPool::Allocate(std::size_t bytes, bool* from_pool)
{
    const int bucket = BucketIndex(std::max<std::size_t>(bytes, 1));
    const std::size_t bucket_bytes = std::size_t{1} << bucket;

    allocations_.fetch_add(1, std::memory_order_relaxed);

    char* block = nullptr;
    if (recycling_.load(std::memory_order_relaxed)) {
        std::lock_guard<std::mutex> lock(mu_);
        auto& list = free_lists_[bucket];
        if (!list.empty()) {
            block = list.back();
            list.pop_back();
        }
    }
    const bool hit = block != nullptr;
    if (hit) {
        pool_hits_.fetch_add(1, std::memory_order_relaxed);
        pooled_bytes_.fetch_sub(bucket_bytes, std::memory_order_relaxed);
    } else {
        block = new char[bucket_bytes];
        fresh_allocs_.fetch_add(1, std::memory_order_relaxed);
    }
    if (from_pool != nullptr) {
        *from_pool = hit;
    }
    if (telemetry::MetricsEnabled()) {
        PoolMetrics& pm = PoolMetrics::Get();
        pm.requests.Add(1);
        (hit ? pm.pool_hits : pm.fresh_allocs).Add(1);
    }

    const std::uint64_t live =
        live_bytes_.fetch_add(bucket_bytes, std::memory_order_relaxed) +
        bucket_bytes;
    std::uint64_t peak = peak_bytes_.load(std::memory_order_relaxed);
    while (live > peak &&
           !peak_bytes_.compare_exchange_weak(peak, live,
                                              std::memory_order_relaxed)) {
    }

    return std::shared_ptr<char[]>(block,
                                   BufferPoolDeleter{this, bucket_bytes});
}

void
BufferPool::Release(char* block, std::size_t bucket_bytes)
{
    live_bytes_.fetch_sub(bucket_bytes, std::memory_order_relaxed);
    if (recycling_.load(std::memory_order_relaxed) &&
        pooled_bytes_.load(std::memory_order_relaxed) + bucket_bytes <=
            kMaxPooledBytes) {
        std::lock_guard<std::mutex> lock(mu_);
        free_lists_[BucketIndex(bucket_bytes)].push_back(block);
        pooled_bytes_.fetch_add(bucket_bytes, std::memory_order_relaxed);
        return;
    }
    delete[] block;
}

void
BufferPool::set_recycling(bool enabled)
{
    recycling_.store(enabled, std::memory_order_relaxed);
    if (!enabled) {
        Trim();
    }
}

BufferPool::Stats
BufferPool::stats() const
{
    Stats s;
    s.allocations = allocations_.load(std::memory_order_relaxed);
    s.fresh_allocs = fresh_allocs_.load(std::memory_order_relaxed);
    s.pool_hits = pool_hits_.load(std::memory_order_relaxed);
    s.live_bytes = live_bytes_.load(std::memory_order_relaxed);
    s.peak_bytes = peak_bytes_.load(std::memory_order_relaxed);
    s.pooled_bytes = pooled_bytes_.load(std::memory_order_relaxed);
    return s;
}

void
BufferPool::ResetPeak()
{
    peak_bytes_.store(live_bytes_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
}

void
BufferPool::Trim()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (int b = 0; b < kNumBuckets; ++b) {
        for (char* block : free_lists_[b]) {
            pooled_bytes_.fetch_sub(std::size_t{1} << b,
                                    std::memory_order_relaxed);
            delete[] block;
        }
        free_lists_[b].clear();
    }
}

}  // namespace fathom
