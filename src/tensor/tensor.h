/**
 * @file
 * Dense, row-major, reference-counted tensors.
 *
 * Tensor is the universal value type flowing along graph edges in the
 * Fathom runtime. Copies are shallow (they share the underlying buffer),
 * mirroring TensorFlow's immutable-value convention: kernels allocate
 * fresh output tensors rather than mutating inputs, except for the
 * variable-update (Apply*) ops which deliberately write in place.
 */
#ifndef FATHOM_TENSOR_TENSOR_H
#define FATHOM_TENSOR_TENSOR_H

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "tensor/dtype.h"
#include "tensor/shape.h"

namespace fathom {

/**
 * A dense row-major n-dimensional array of float32 or int32 elements.
 *
 * The default-constructed Tensor is "empty" (no buffer); kernels must
 * never receive one. Reshape() produces a view sharing the same buffer.
 */
class Tensor {
  public:
    /** Constructs an empty tensor (no storage). */
    Tensor() = default;

    /** Allocates an uninitialized tensor of the given type and shape. */
    Tensor(DType dtype, Shape shape);

    /** @return a zero-filled float32 tensor. */
    static Tensor Zeros(const Shape& shape, DType dtype = DType::kFloat32);

    /** @return a float32 tensor with every element set to @p value. */
    static Tensor Full(const Shape& shape, float value);

    /** @return a rank-0 float32 tensor holding @p value. */
    static Tensor Scalar(float value);

    /** @return a rank-0 int32 tensor holding @p value. */
    static Tensor ScalarInt(std::int32_t value);

    /** @return a rank-1 float32 tensor copied from @p values. */
    static Tensor FromVector(const std::vector<float>& values);

    /** @return a float32 tensor of @p shape copied from @p values. */
    static Tensor FromVector(const Shape& shape,
                             const std::vector<float>& values);

    /** @return an int32 tensor of @p shape copied from @p values. */
    static Tensor FromVectorInt(const Shape& shape,
                                const std::vector<std::int32_t>& values);

    /** @return true if this tensor has storage. */
    bool initialized() const { return buffer_ != nullptr; }

    DType dtype() const { return dtype_; }
    const Shape& shape() const { return shape_; }
    std::int64_t num_elements() const { return shape_.num_elements(); }

    /**
     * Typed element pointer.
     * @tparam T float or std::int32_t; must match dtype().
     */
    template <typename T>
    T*
    data()
    {
        CheckType(DTypeOf<T>::value);
        return reinterpret_cast<T*>(buffer_.get());
    }

    template <typename T>
    const T*
    data() const
    {
        CheckType(DTypeOf<T>::value);
        return reinterpret_cast<const T*>(buffer_.get());
    }

    /** Convenience scalar read for rank-0/1-element float tensors. */
    float scalar_value() const;

    /** Element access by flat row-major index. */
    template <typename T>
    T&
    at(std::int64_t index)
    {
        return data<T>()[index];
    }

    template <typename T>
    const T&
    at(std::int64_t index) const
    {
        return data<T>()[index];
    }

    /**
     * @return a tensor of @p new_shape sharing this tensor's buffer.
     * @p new_shape must have the same element count.
     */
    Tensor Reshape(const Shape& new_shape) const;

    /** @return a deep copy with its own buffer. */
    Tensor Clone() const;

    /** Copies the contents of @p src (same dtype/element count). */
    void CopyFrom(const Tensor& src);

    /** Fills a float32 tensor with @p value. */
    void Fill(float value);

    /** @return e.g. "float32[2, 3]". */
    std::string DebugString() const;

    /** @return buffer size in bytes. */
    std::size_t byte_size() const;

    /**
     * @return the number of Tensor handles sharing this buffer (0 for
     * an empty tensor). Executors use this to verify an input buffer is
     * exclusively held before granting an in-place write.
     */
    long buffer_use_count() const { return buffer_.use_count(); }

    /** @return true if @p other shares this tensor's buffer. */
    bool SharesBufferWith(const Tensor& other) const
    {
        return buffer_ != nullptr && buffer_ == other.buffer_;
    }

  private:
    void CheckType(DType expected) const;

    DType dtype_ = DType::kFloat32;
    Shape shape_;
    std::shared_ptr<char[]> buffer_;
};

}  // namespace fathom

#endif  // FATHOM_TENSOR_TENSOR_H
