/**
 * @file
 * Dense row-major tensor shapes.
 */
#ifndef FATHOM_TENSOR_SHAPE_H
#define FATHOM_TENSOR_SHAPE_H

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace fathom {

/**
 * The extent of a dense, row-major tensor along each dimension.
 *
 * A rank-0 Shape represents a scalar and has one element. Dimensions
 * must be non-negative; a zero dimension yields an empty tensor.
 */
class Shape {
  public:
    /** Constructs a scalar (rank-0) shape. */
    Shape() = default;

    /** Constructs a shape from a dimension list, e.g. Shape({2, 3}). */
    Shape(std::initializer_list<std::int64_t> dims);

    /** Constructs a shape from a dimension vector. */
    explicit Shape(std::vector<std::int64_t> dims);

    /** @return the number of dimensions. */
    int rank() const { return static_cast<int>(dims_.size()); }

    /**
     * @return the extent of dimension @p axis.
     * Negative axes count from the end (Python style): dim(-1) is the
     * innermost dimension.
     */
    std::int64_t dim(int axis) const;

    /** @return all dimensions in order. */
    const std::vector<std::int64_t>& dims() const { return dims_; }

    /** @return the total element count (1 for scalars). */
    std::int64_t num_elements() const;

    /**
     * @return the row-major stride of dimension @p axis, i.e. the number
     * of elements between consecutive entries along that axis.
     */
    std::int64_t stride(int axis) const;

    bool operator==(const Shape& other) const { return dims_ == other.dims_; }
    bool operator!=(const Shape& other) const { return !(*this == other); }

    /** @return e.g. "[2, 3, 4]" ("[]" for scalars). */
    std::string ToString() const;

  private:
    std::vector<std::int64_t> dims_;
};

}  // namespace fathom

#endif  // FATHOM_TENSOR_SHAPE_H
