/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in Fathom (weight initialization, dropout
 * masks, the VAE's reparameterization sampling, synthetic datasets, the
 * MiniAtari environment, epsilon-greedy exploration) draws from Rng so
 * that every experiment is reproducible from a seed.
 */
#ifndef FATHOM_TENSOR_RNG_H
#define FATHOM_TENSOR_RNG_H

#include <cstdint>

#include "tensor/tensor.h"

namespace fathom {

/**
 * A small, fast, splittable PRNG (xoshiro256**).
 *
 * Not cryptographically secure; statistical quality is more than
 * adequate for initialization and sampling workloads.
 */
class Rng {
  public:
    /** Seeds the generator; equal seeds yield equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** @return the next raw 64-bit value. */
    std::uint64_t NextU64();

    /** @return a uniform double in [0, 1). */
    double Uniform();

    /** @return a uniform float in [lo, hi). */
    float UniformFloat(float lo, float hi);

    /** @return a uniform integer in [0, n). Requires n > 0. */
    std::int64_t UniformInt(std::int64_t n);

    /** @return a standard normal sample (Box-Muller). */
    float Normal();

    /** @return a normal sample with the given mean and stddev. */
    float Normal(float mean, float stddev);

    /** Fills a float32 tensor with N(mean, stddev^2) samples. */
    void FillNormal(Tensor* t, float mean, float stddev);

    /** Fills a float32 tensor with U[lo, hi) samples. */
    void FillUniform(Tensor* t, float lo, float hi);

    /**
     * @return a new generator whose stream is decorrelated from this
     * one. Used to give each dataset/workload its own stream.
     */
    Rng Split();

  private:
    std::uint64_t s_[4];
    bool have_cached_normal_ = false;
    float cached_normal_ = 0.0f;
};

/**
 * Mixes a base seed with a stream index into a decorrelated seed
 * (splitmix64-style finalization over the pair).
 *
 * This is the seeding scheme behind deterministic prefetch: batch *t*
 * of a dataset is materialized from `Rng(MixSeed(dataset_seed, t))`,
 * which depends only on the pair — never on which thread ran the
 * materialization or in what order — so pipelined batches are
 * bit-identical to inline generation.
 */
std::uint64_t MixSeed(std::uint64_t seed, std::uint64_t index);

}  // namespace fathom

#endif  // FATHOM_TENSOR_RNG_H
