#include "tensor/dtype.h"

namespace fathom {

std::size_t
DTypeSize(DType dtype)
{
    switch (dtype) {
      case DType::kFloat32:
        return 4;
      case DType::kInt32:
        return 4;
    }
    return 0;
}

std::string
DTypeName(DType dtype)
{
    switch (dtype) {
      case DType::kFloat32:
        return "float32";
      case DType::kInt32:
        return "int32";
    }
    return "unknown";
}

}  // namespace fathom
