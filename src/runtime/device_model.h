/**
 * @file
 * Analytical device timing model.
 *
 * The host running this reproduction has a single CPU core, so the
 * paper's multi-thread (Fig. 6) and GPU (Fig. 5) experiments cannot be
 * reproduced with wall-clock timing. Instead, every executed op records
 * an OpCost (FLOPs, bytes, parallelizable trip count) measured from its
 * real tensor shapes, and this model converts costs into simulated time
 * for a configurable device. The mechanisms the paper's conclusions
 * rest on are modeled directly:
 *
 *  - Amdahl scaling: an op only engages extra threads if (a) its
 *    parallel trip count offers enough independent units and (b) each
 *    thread receives enough work to amortize coordination — the
 *    Eigen-style refusal to parallelize skinny tensors that the paper
 *    observes in memnet.
 *  - Roofline: op time is the max of compute time and memory time,
 *    plus a fixed per-op dispatch overhead.
 *  - GPU: far higher peak throughput with a larger per-op launch
 *    latency and an occupancy ramp, so small data-dependent ops do not
 *    benefit while large convolutions/matmuls gain an order of
 *    magnitude or more.
 */
#ifndef FATHOM_RUNTIME_DEVICE_MODEL_H
#define FATHOM_RUNTIME_DEVICE_MODEL_H

#include <string>

#include "graph/op_registry.h"

namespace fathom::runtime {

/** A simulated execution target. */
struct DeviceSpec {
    std::string name;

    /** Worker count participating in intra-op parallelism (CPU only). */
    int threads = 1;

    /** Peak floating-point rate per thread, FLOP/s. */
    double flops_per_thread = 8e9;

    /** Memory bandwidth shared by all threads, B/s. */
    double bytes_per_sec = 2.0e10;

    /** Fixed dispatch/launch overhead per op, seconds. */
    double op_overhead = 2e-6;

    /**
     * Minimum FLOPs (or bytes, for compute-free ops) that each engaged
     * thread must receive before the runtime spreads an op across
     * threads (Eigen-style amortization threshold).
     */
    double min_work_per_thread = 16384.0;

    /**
     * FLOPs at which the device reaches full utilization; below it,
     * throughput ramps linearly (models GPU occupancy; 0 disables the
     * ramp and uses the thread model instead).
     */
    double saturation_flops = 0.0;

    /** Floor on the utilization ramp (fraction of peak). */
    double min_utilization = 1.0 / 32.0;

    /** A CPU resembling the paper's i7-6700k with @p threads threads. */
    static DeviceSpec Cpu(int threads);

    /** A GPU resembling the paper's GTX 960. */
    static DeviceSpec Gpu();
};

/**
 * @return simulated execution time in seconds of one op with cost
 * @p cost on device @p dev.
 */
double EstimateSeconds(const graph::OpCost& cost, const DeviceSpec& dev);

/**
 * @return the number of threads the op would actually use on @p dev:
 * limited by the device width, by the op's parallel trip count, and by
 * the amortization threshold (1 if the op is too small to split).
 */
int EffectiveThreads(const graph::OpCost& cost, const DeviceSpec& dev);

}  // namespace fathom::runtime

#endif  // FATHOM_RUNTIME_DEVICE_MODEL_H
