/**
 * @file
 * Application-level graph optimization.
 *
 * The paper (Sec. III-C) lists "an application-level, compiler-esque
 * optimizer" among the convergent traits of the major frameworks.
 * This module provides the two classic passes over the dataflow graph:
 *
 *  - **Common-subexpression elimination (CSE):** pure nodes with the
 *    same op type, attributes, and canonicalized inputs are merged, so
 *    duplicated subgraphs (e.g. shared trunks rebuilt by separate
 *    heads) execute once.
 *  - **Constant folding:** pure nodes whose transitive inputs are all
 *    constants are evaluated once at optimization time and replaced by
 *    materialized constants.
 *
 * Both passes operate on a *pruned execution order* and produce a node
 * remapping; the original graph is never mutated (it is append-only),
 * so optimization composes with the executor's plan cache.
 */
#ifndef FATHOM_RUNTIME_GRAPH_OPTIMIZER_H
#define FATHOM_RUNTIME_GRAPH_OPTIMIZER_H

#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "graph/op_registry.h"
#include "tensor/rng.h"

namespace fathom::runtime {

/** Result of optimizing one execution plan. */
struct OptimizedPlan {
    /** Nodes to execute, in a valid topological order. */
    std::vector<graph::NodeId> order;

    /**
     * Edge redirection: reading input (node, index) must instead read
     * (replacement[node], index) when present. Identity mapping
     * otherwise.
     */
    std::unordered_map<graph::NodeId, graph::NodeId> replacements;

    /**
     * Results of folded nodes: node id -> outputs computed at
     * optimization time.
     */
    std::unordered_map<graph::NodeId, std::vector<Tensor>> folded;

    int cse_merged = 0;    ///< nodes eliminated by CSE.
    int folded_nodes = 0;  ///< nodes evaluated at optimization time.
};

/**
 * Optimizes the execution of @p order (a topological order over
 * @p graph, as produced by Graph::TopologicalOrder).
 *
 * @param variables store used to evaluate Const nodes during folding.
 * @param fold_constants run the constant-folding pass.
 * @param eliminate_common run the CSE pass.
 *
 * Stateful ops (random sampling, variable reads/updates) and
 * placeholders are never merged or folded.
 */
OptimizedPlan OptimizePlan(const graph::Graph& graph,
                           const std::vector<graph::NodeId>& order,
                           graph::VariableStore& variables,
                           bool fold_constants = true,
                           bool eliminate_common = true);

}  // namespace fathom::runtime

#endif  // FATHOM_RUNTIME_GRAPH_OPTIMIZER_H
