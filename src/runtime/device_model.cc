#include "runtime/device_model.h"

#include <algorithm>
#include <cmath>

namespace fathom::runtime {

DeviceSpec
DeviceSpec::Cpu(int threads)
{
    DeviceSpec dev;
    dev.name = "cpu" + std::to_string(threads);
    dev.threads = std::max(threads, 1);
    dev.flops_per_thread = 8e9;       // scalar/SSE-ish single core rate.
    dev.bytes_per_sec = 2.0e10;       // dual-channel DDR4.
    dev.op_overhead = 2e-6;           // scheduler dispatch.
    dev.min_work_per_thread = 16384;  // Eigen-style amortization.
    dev.saturation_flops = 0.0;       // CPUs use the thread model.
    return dev;
}

DeviceSpec
DeviceSpec::Gpu()
{
    DeviceSpec dev;
    dev.name = "gpu";
    dev.threads = 1;                 // threads field unused for GPU.
    dev.flops_per_thread = 1.2e12;   // GTX 960 achievable FP32.
    dev.bytes_per_sec = 1.12e11;     // GTX 960 GDDR5 bandwidth.
    dev.op_overhead = 4e-6;          // kernel launch latency.
    dev.saturation_flops = 8e6;      // occupancy ramp.
    dev.min_utilization = 1.0 / 32.0;
    return dev;
}

int
EffectiveThreads(const graph::OpCost& cost, const DeviceSpec& dev)
{
    if (dev.threads <= 1) {
        return 1;
    }
    // Limit 1: independent units of work available.
    const std::int64_t by_units = std::max<std::int64_t>(cost.parallel_work, 1);
    // Limit 2: each engaged thread must amortize its coordination cost.
    const double work = cost.flops > 0.0 ? cost.flops : cost.bytes;
    const std::int64_t by_amortization = std::max<std::int64_t>(
        static_cast<std::int64_t>(work / dev.min_work_per_thread), 1);
    return static_cast<int>(std::min<std::int64_t>(
        {static_cast<std::int64_t>(dev.threads), by_units, by_amortization}));
}

double
EstimateSeconds(const graph::OpCost& cost, const DeviceSpec& dev)
{
    double rate;
    if (dev.saturation_flops > 0.0) {
        // GPU-style occupancy ramp with a floor.
        const double util = std::max(
            dev.min_utilization,
            std::min(1.0, cost.flops / dev.saturation_flops));
        rate = dev.flops_per_thread * util;
    } else {
        rate = dev.flops_per_thread *
               static_cast<double>(EffectiveThreads(cost, dev));
    }
    const double compute = cost.flops > 0.0 ? cost.flops / rate : 0.0;
    const double memory =
        cost.bytes > 0.0 ? cost.bytes / dev.bytes_per_sec : 0.0;
    return dev.op_overhead + std::max(compute, memory);
}

}  // namespace fathom::runtime
