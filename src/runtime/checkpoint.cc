#include "runtime/checkpoint.h"

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace fathom::runtime {

namespace {

constexpr char kMagic[8] = {'F', 'T', 'H', 'M', 'C', 'K', 'P', 'T'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void
WritePod(std::ofstream& out, const T& value)
{
    out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T
ReadPod(std::ifstream& in)
{
    T value{};
    in.read(reinterpret_cast<char*>(&value), sizeof(T));
    if (!in) {
        throw std::runtime_error("checkpoint: truncated file");
    }
    return value;
}

}  // namespace

void
SaveCheckpoint(const graph::VariableStore& store, const std::string& path)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        throw std::runtime_error("checkpoint: cannot open '" + path +
                                 "' for writing");
    }
    out.write(kMagic, sizeof(kMagic));
    WritePod(out, kVersion);

    const auto names = store.Names();
    WritePod(out, static_cast<std::uint32_t>(names.size()));
    for (const auto& name : names) {
        const Tensor& value = store.Get(name);
        WritePod(out, static_cast<std::uint32_t>(name.size()));
        out.write(name.data(), static_cast<std::streamsize>(name.size()));
        WritePod(out, static_cast<std::uint8_t>(
                          value.dtype() == DType::kFloat32 ? 0 : 1));
        const auto& dims = value.shape().dims();
        WritePod(out, static_cast<std::uint32_t>(dims.size()));
        for (std::int64_t d : dims) {
            WritePod(out, d);
        }
        const char* bytes =
            value.dtype() == DType::kFloat32
                ? reinterpret_cast<const char*>(value.data<float>())
                : reinterpret_cast<const char*>(value.data<std::int32_t>());
        out.write(bytes, static_cast<std::streamsize>(value.byte_size()));
    }
    if (!out) {
        throw std::runtime_error("checkpoint: write to '" + path +
                                 "' failed");
    }
}

void
RestoreCheckpoint(graph::VariableStore* store, const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw std::runtime_error("checkpoint: cannot open '" + path + "'");
    }
    char magic[8];
    in.read(magic, sizeof(magic));
    if (!in || std::string(magic, 8) != std::string(kMagic, 8)) {
        throw std::runtime_error("checkpoint: bad magic in '" + path + "'");
    }
    const auto version = ReadPod<std::uint32_t>(in);
    if (version != kVersion) {
        throw std::runtime_error("checkpoint: unsupported version " +
                                 std::to_string(version));
    }
    const auto count = ReadPod<std::uint32_t>(in);
    for (std::uint32_t i = 0; i < count; ++i) {
        const auto name_len = ReadPod<std::uint32_t>(in);
        std::string name(name_len, '\0');
        in.read(name.data(), name_len);
        const auto dtype_tag = ReadPod<std::uint8_t>(in);
        const auto rank = ReadPod<std::uint32_t>(in);
        std::vector<std::int64_t> dims;
        dims.reserve(rank);
        for (std::uint32_t d = 0; d < rank; ++d) {
            dims.push_back(ReadPod<std::int64_t>(in));
        }
        const DType dtype =
            dtype_tag == 0 ? DType::kFloat32 : DType::kInt32;
        Tensor value(dtype, Shape(dims));
        char* bytes =
            dtype == DType::kFloat32
                ? reinterpret_cast<char*>(value.data<float>())
                : reinterpret_cast<char*>(value.data<std::int32_t>());
        in.read(bytes, static_cast<std::streamsize>(value.byte_size()));
        if (!in) {
            throw std::runtime_error("checkpoint: truncated tensor data");
        }
        store->Set(name, std::move(value));
    }
}

}  // namespace fathom::runtime
