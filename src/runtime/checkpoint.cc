#include "runtime/checkpoint.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace fathom::runtime {

namespace {

constexpr char kMagic[8] = {'F', 'T', 'H', 'M', 'C', 'K', 'P', 'T'};
constexpr std::uint32_t kVersion = 1;

// Sanity bounds for header fields: a corrupt or truncated file must be
// rejected before its (attacker-sized) fields drive an allocation.
constexpr std::uint32_t kMaxRank = 16;
constexpr std::uint32_t kMaxNameLen = 1u << 16;

template <typename T>
void
WritePod(std::ofstream& out, const T& value)
{
    out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T
ReadPod(std::ifstream& in)
{
    T value{};
    in.read(reinterpret_cast<char*>(&value), sizeof(T));
    if (!in) {
        throw std::runtime_error("checkpoint: truncated file");
    }
    return value;
}

}  // namespace

void
SaveCheckpoint(const graph::VariableStore& store, const std::string& path)
{
    // Write to a sibling temp file and atomically rename it into
    // place: truncating the target directly meant a crash mid-write
    // destroyed the previous checkpoint along with the new one.
    const std::string tmp_path = path + ".tmp";
    {
        std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
        if (!out) {
            throw std::runtime_error("checkpoint: cannot open '" + tmp_path +
                                     "' for writing");
        }
        out.write(kMagic, sizeof(kMagic));
        WritePod(out, kVersion);

        const auto names = store.Names();
        WritePod(out, static_cast<std::uint32_t>(names.size()));
        for (const auto& name : names) {
            const Tensor& value = store.Get(name);
            WritePod(out, static_cast<std::uint32_t>(name.size()));
            out.write(name.data(),
                      static_cast<std::streamsize>(name.size()));
            WritePod(out, static_cast<std::uint8_t>(
                              value.dtype() == DType::kFloat32 ? 0 : 1));
            const auto& dims = value.shape().dims();
            WritePod(out, static_cast<std::uint32_t>(dims.size()));
            for (std::int64_t d : dims) {
                WritePod(out, d);
            }
            const char* bytes =
                value.dtype() == DType::kFloat32
                    ? reinterpret_cast<const char*>(value.data<float>())
                    : reinterpret_cast<const char*>(
                          value.data<std::int32_t>());
            out.write(bytes, static_cast<std::streamsize>(value.byte_size()));
        }
        out.flush();
        if (!out) {
            std::remove(tmp_path.c_str());
            throw std::runtime_error("checkpoint: write to '" + tmp_path +
                                     "' failed");
        }
    }
    if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
        std::remove(tmp_path.c_str());
        throw std::runtime_error("checkpoint: cannot rename '" + tmp_path +
                                 "' to '" + path + "'");
    }
}

void
RestoreCheckpoint(graph::VariableStore* store, const std::string& path)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) {
        throw std::runtime_error("checkpoint: cannot open '" + path + "'");
    }
    const std::int64_t file_size = static_cast<std::int64_t>(in.tellg());
    in.seekg(0);

    char magic[8];
    in.read(magic, sizeof(magic));
    if (!in || std::string(magic, 8) != std::string(kMagic, 8)) {
        throw std::runtime_error("checkpoint: bad magic in '" + path + "'");
    }
    const auto version = ReadPod<std::uint32_t>(in);
    if (version != kVersion) {
        throw std::runtime_error("checkpoint: unsupported version " +
                                 std::to_string(version));
    }

    // Every size field is validated against what the file could
    // possibly hold before it is trusted: corrupt headers previously
    // drove allocations of whatever garbage the fields decoded to.
    auto bytes_left = [&in, file_size] {
        return file_size - static_cast<std::int64_t>(in.tellg());
    };

    const auto count = ReadPod<std::uint32_t>(in);
    // Each entry needs at least name_len + dtype + rank (9 bytes).
    if (static_cast<std::int64_t>(count) * 9 > bytes_left()) {
        throw std::runtime_error(
            "checkpoint: corrupt variable count in '" + path + "'");
    }
    for (std::uint32_t i = 0; i < count; ++i) {
        const auto name_len = ReadPod<std::uint32_t>(in);
        if (name_len > kMaxNameLen ||
            static_cast<std::int64_t>(name_len) > bytes_left()) {
            throw std::runtime_error(
                "checkpoint: corrupt variable name length in '" + path +
                "'");
        }
        std::string name(name_len, '\0');
        in.read(name.data(), name_len);
        const auto dtype_tag = ReadPod<std::uint8_t>(in);
        if (dtype_tag > 1) {
            throw std::runtime_error("checkpoint: corrupt dtype tag in '" +
                                     path + "'");
        }
        const auto rank = ReadPod<std::uint32_t>(in);
        if (rank > kMaxRank ||
            static_cast<std::int64_t>(rank) * 8 > bytes_left()) {
            throw std::runtime_error("checkpoint: corrupt rank in '" + path +
                                     "'");
        }
        std::vector<std::int64_t> dims;
        dims.reserve(rank);
        std::int64_t elements = 1;
        for (std::uint32_t d = 0; d < rank; ++d) {
            const auto dim = ReadPod<std::int64_t>(in);
            if (dim < 0 || (dim > 0 && elements > file_size / dim)) {
                throw std::runtime_error("checkpoint: corrupt dims in '" +
                                         path + "'");
            }
            elements *= dim;
            dims.push_back(dim);
        }
        const DType dtype =
            dtype_tag == 0 ? DType::kFloat32 : DType::kInt32;
        const std::int64_t data_bytes =
            elements * static_cast<std::int64_t>(DTypeSize(dtype));
        if (data_bytes > bytes_left()) {
            throw std::runtime_error(
                "checkpoint: tensor data exceeds file size in '" + path +
                "'");
        }
        Tensor value(dtype, Shape(dims));
        char* bytes =
            dtype == DType::kFloat32
                ? reinterpret_cast<char*>(value.data<float>())
                : reinterpret_cast<char*>(value.data<std::int32_t>());
        in.read(bytes, static_cast<std::streamsize>(value.byte_size()));
        if (!in) {
            throw std::runtime_error("checkpoint: truncated tensor data");
        }
        store->Set(name, std::move(value));
    }
}

}  // namespace fathom::runtime
