/**
 * @file
 * The execution engine: owns a graph, its state, and runs steps.
 *
 * Session mirrors TensorFlow's session: callers feed placeholder
 * values, name fetch edges and/or run-only targets, and the executor
 * runs the pruned subgraph in topological order. Operations are the
 * smallest schedulable unit and each execution is timed and costed for
 * the profiling tools.
 */
#ifndef FATHOM_RUNTIME_SESSION_H
#define FATHOM_RUNTIME_SESSION_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "graph/op_registry.h"
#include "graph/rewrite/rewrite.h"
#include "parallel/thread_pool.h"
#include "runtime/tracer.h"
#include "tensor/rng.h"

namespace fathom::runtime {

/** Placeholder feeds for one step, keyed by node id. */
using FeedMap = std::map<graph::NodeId, Tensor>;

/**
 * Owns one model's graph, variables, RNG, thread pool, and trace.
 */
class Session {
  public:
    /** @param seed seed for all stateful (sampling) ops. */
    explicit Session(std::uint64_t seed = 1);

    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    graph::Graph& graph() { return graph_; }
    const graph::Graph& graph() const { return graph_; }
    graph::VariableStore& variables() { return variables_; }
    const graph::VariableStore& variables() const { return variables_; }

    /** @return a builder appending to this session's graph/state. */
    graph::GraphBuilder MakeBuilder()
    {
        return graph::GraphBuilder(&graph_, &variables_);
    }

    /**
     * Reconfigures intra-op parallelism (the paper's Fig. 6 knob).
     * Takes effect on the next Run().
     */
    void SetThreads(int threads);
    int threads() const { return pool_->num_threads(); }

    /**
     * Reconfigures inter-op parallelism: how many independent graph
     * operations may execute concurrently within one step.
     *
     * With 1 (the default) Run() uses the sequential executor and is
     * byte-identical to the historical behavior. With more threads,
     * Run() drains a dependency-counting ready queue across a dedicated
     * pool. Fetched values are bit-identical either way: pure ops
     * commute, and stateful ops (random sampling, variable updates)
     * execute as barriers in plan order, so RNG draws and parameter
     * writes happen exactly as in the sequential executor. Takes effect
     * on the next Run().
     */
    void SetInterOpThreads(int threads);
    int inter_op_threads() const { return inter_op_threads_; }

    Tracer& tracer() { return tracer_; }
    const Tracer& tracer() const { return tracer_; }

    /**
     * Enables the liveness-driven memory planner (on by default).
     *
     * The planner derives, from the execution plan, how many consumer
     * steps read each step's outputs, and drops an intermediate tensor
     * the moment its last consumer (tracked with an atomic refcount, so
     * the inter-op executor composes) has finished — instead of keeping
     * every node's outputs alive until the end of the step. Freed
     * buffers return to the BufferPool for recycling. Fetched outputs,
     * placeholders, `Variable`/`Const` reads, and stateful ops are
     * never released early. Values are bit-identical either way: only
     * dead tensors are dropped, and buffer recycling is
     * refcount-driven.
     */
    void SetMemoryPlanning(bool enabled) { memory_planning_ = enabled; }
    bool memory_planning() const { return memory_planning_; }

    /**
     * Enables the graph rewrite framework (constant folding, CSE,
     * transpose folding, elementwise fusion, in-place) for subsequently
     * planned fetch sets. Off by default so profiles reflect the graph
     * as written; see graph/rewrite/rewrite.h. Every rewrite preserves
     * bit-identical fetches, variables, and traces.
     */
    void SetGraphOptimization(bool enabled) { optimize_graphs_ = enabled; }
    bool graph_optimization() const { return optimize_graphs_; }

    /**
     * Per-pattern rewrite knobs (effective only when graph optimization
     * is enabled). Takes effect on subsequently planned fetch sets.
     */
    void SetRewriteOptions(const graph::rewrite::RewriteOptions& options)
    {
        rewrite_options_ = options;
    }
    const graph::rewrite::RewriteOptions& rewrite_options() const
    {
        return rewrite_options_;
    }

    /**
     * Enables the static graph verifier (on by default). When on, every
     * plan build (cache miss) runs structural validation, whole-graph
     * shape/dtype inference seeded from the step's feed tensors, and
     * the aliasing/liveness/determinism lints against the built plan;
     * any finding throws std::invalid_argument with the full report and
     * nothing is cached. Feed types are checked once per plan, at build
     * time. See graph/verify/verifier.h.
     */
    void SetVerification(bool enabled) { verify_graphs_ = enabled; }
    bool verification() const { return verify_graphs_; }

    /**
     * Executes the subgraph producing @p fetches and @p targets.
     *
     * @param feeds   values for placeholder nodes used by the subgraph.
     * @param fetches edges whose tensors are returned, in order.
     * @param targets extra nodes to run without fetching (e.g. the
     *                optimizer update group).
     * @return the fetched tensors.
     * @throws std::logic_error / std::invalid_argument on malformed
     *         graphs, missing feeds, or kernel failures.
     */
    std::vector<Tensor> Run(const FeedMap& feeds,
                            const std::vector<graph::Output>& fetches,
                            const std::vector<graph::NodeId>& targets = {});

    /** Run() with feeds keyed by placeholder node name. */
    std::vector<Tensor> RunNamed(
        const std::map<std::string, Tensor>& feeds,
        const std::vector<graph::Output>& fetches,
        const std::vector<graph::NodeId>& targets = {});

  private:
    /** One plan entry: the node and its pre-resolved op definition. */
    struct PlanStep {
        graph::NodeId node;
        const graph::OpDef* def;  ///< null for Placeholder nodes.
    };

    /** A cached, possibly optimized, execution plan. */
    struct Plan {
        std::vector<PlanStep> steps;
        /** Rewrite edge redirection (empty when optimization is off). */
        std::unordered_map<graph::NodeId, graph::NodeId> replacements;
        /** Values pre-computed by constant folding. */
        std::unordered_map<graph::NodeId, std::vector<Tensor>> folded;
        /** Per step, whether the kernel may write into its first input
            (statically proven to die here; the executor still verifies
            the runtime refcount). Empty when optimization is off. */
        std::vector<char> inplace;

        // Dependency structure for the inter-op parallel executor,
        // over plan indices. Stateful steps are barriers: they depend
        // on every earlier step and every later step depends on them,
        // which serializes RNG draws and variable writes in plan order
        // (the determinism guarantee).
        /** Per step, the steps unblocked by its completion. */
        std::vector<std::vector<std::int32_t>> dependents;
        /** Per step, how many dependencies must complete first. */
        std::vector<std::int32_t> initial_pending;

        // Liveness structure for the memory planner, over plan
        // indices. A step's outputs die once `consumer_count` consumer
        // steps have finished reading them; `releasable` excludes the
        // exempt classes (fetches, placeholders, Variable/Const reads,
        // stateful ops), whose values live to the end of the step.
        /** Per step, the distinct producer steps of its data inputs. */
        std::vector<std::vector<std::int32_t>> input_producers;
        /** Per step, how many consumer steps read its outputs. */
        std::vector<std::int32_t> consumer_count;
        /** Per step, whether its outputs may be dropped when dead. */
        std::vector<char> releasable;
    };

    /** Cached pruned topological plan for a fetch/target set. On a
        cache miss the plan is statically verified (when enabled)
        against @p feeds before being cached. */
    const Plan& GetPlan(const FeedMap& feeds,
                        const std::vector<graph::Output>& fetches,
                        const std::vector<graph::NodeId>& targets);

    /**
     * Executes plan step @p seq (placeholder feed or kernel), tracing
     * it (with its start offset from the step epoch and the executor
     * lane @p worker that ran it) and storing its outputs into
     * @p values. Thread-safe across distinct steps. Throws on missing
     * feeds or kernel failure.
     */
    void RunPlanStep(const Plan& plan, std::size_t seq, const FeedMap& feeds,
                     std::vector<std::vector<Tensor>>& values, int worker);

    /**
     * Memory-planner bookkeeping after step @p seq completed: credits
     * the step's producers and drops any value whose last consumer has
     * now run. @p remaining holds the per-step outstanding consumer
     * counts; null disables the planner for this run. Thread-safe: the
     * acq_rel refcount guarantees exactly one thread observes a value
     * die, strictly after every consumer finished reading it.
     */
    static void ReleaseDeadValues(const Plan& plan, std::size_t seq,
                                  std::atomic<std::int32_t>* remaining,
                                  std::vector<std::vector<Tensor>>& values);

    /** Drains the plan's ready queue across the inter-op pool. */
    void RunParallel(const Plan& plan, const FeedMap& feeds,
                     std::atomic<std::int32_t>* remaining,
                     std::vector<std::vector<Tensor>>& values);

    graph::Graph graph_;
    graph::VariableStore variables_;
    Rng rng_;
    std::unique_ptr<parallel::ThreadPool> pool_;
    int inter_op_threads_ = 1;
    std::unique_ptr<parallel::ThreadPool> inter_op_pool_;
    Tracer tracer_;
    /** Start of the in-flight step; op record timestamps are relative
        to this (written by Run, read by RunPlanStep on any lane). */
    std::chrono::steady_clock::time_point step_epoch_;
    bool memory_planning_ = true;
    bool optimize_graphs_ = false;
    bool verify_graphs_ = true;
    graph::rewrite::RewriteOptions rewrite_options_;
    std::map<std::string, Plan> plan_cache_;
};

}  // namespace fathom::runtime

#endif  // FATHOM_RUNTIME_SESSION_H
