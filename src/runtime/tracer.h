/**
 * @file
 * Per-operation execution traces.
 *
 * The tracer is the reproduction of the paper's "application-level
 * modeling tools": it attributes wall-clock time and modeled cost to
 * every executed operation, keyed by op type and op class, per step.
 * All analyses (Figs. 1-6) consume these traces.
 */
#ifndef FATHOM_RUNTIME_TRACER_H
#define FATHOM_RUNTIME_TRACER_H

#include <string>
#include <vector>

#include "graph/node.h"
#include "graph/op_class.h"
#include "graph/op_registry.h"

namespace fathom::runtime {

/** One op execution. (Node names resolve via the graph and node id.) */
struct OpExecRecord {
    graph::NodeId node = -1;
    std::string op_type;
    graph::OpClass op_class = graph::OpClass::kControl;
    double wall_seconds = 0.0;
    graph::OpCost cost;
};

/** One Session::Run invocation. */
struct StepTrace {
    std::vector<OpExecRecord> records;
    double wall_seconds = 0.0;  ///< whole-step time, including framework.

    /** @return summed op wall time. */
    double OpSeconds() const;

    /**
     * @return framework time outside op kernels (the paper reports
     * this as typically < 1-2% of total runtime).
     */
    double OverheadSeconds() const { return wall_seconds - OpSeconds(); }
};

/** Accumulates step traces across a run. */
class Tracer {
  public:
    void set_enabled(bool enabled) { enabled_ = enabled; }
    bool enabled() const { return enabled_; }

    /** Begins a new step; records go to this step until EndStep. */
    void BeginStep();
    void Record(OpExecRecord record);
    void EndStep(double step_wall_seconds);

    const std::vector<StepTrace>& steps() const { return steps_; }
    void Clear() { steps_.clear(); }

  private:
    bool enabled_ = true;
    bool in_step_ = false;
    std::vector<StepTrace> steps_;
};

}  // namespace fathom::runtime

#endif  // FATHOM_RUNTIME_TRACER_H
