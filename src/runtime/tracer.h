/**
 * @file
 * Per-operation execution traces.
 *
 * The tracer is the reproduction of the paper's "application-level
 * modeling tools": it attributes wall-clock time and modeled cost to
 * every executed operation, keyed by op type and op class, per step.
 * All analyses (Figs. 1-6) consume these traces.
 *
 * Record() is thread-safe so the inter-op parallel executor can trace
 * concurrently executing operations. Records carry the plan-order
 * sequence id of their op, and EndStep() sorts by it, so a step's trace
 * is canonical — independent of the scheduling order — and the Figs.
 * 1-6 analyses see the same record stream the sequential executor
 * produces.
 */
#ifndef FATHOM_RUNTIME_TRACER_H
#define FATHOM_RUNTIME_TRACER_H

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "graph/node.h"
#include "graph/op_class.h"
#include "graph/op_registry.h"

namespace fathom::runtime {

/** One op execution. (Node names resolve via the graph and node id.) */
struct OpExecRecord {
    graph::NodeId node = -1;
    std::string op_type;
    graph::OpClass op_class = graph::OpClass::kControl;
    double wall_seconds = 0.0;
    graph::OpCost cost;
    /** Plan-order index within the step; the canonical record order. */
    std::int64_t seq = 0;

    /**
     * Monotonic start of the op, in seconds since the step began. With
     * wall_seconds this gives the op's true [start, end) interval, so
     * exported timelines show real concurrency instead of a synthesized
     * serial layout. Scheduling-dependent: analyses that must be
     * bit-identical across thread counts consume seq order, never
     * timestamps.
     */
    double start_seconds = 0.0;

    /**
     * Executor lane that ran the op: 0 is the step-driving thread (the
     * sequential executor, or the first drain loop of the parallel
     * one), 1..N-1 the remaining inter-op drain loops. Lanes are
     * stable identifiers for trace visualization ("worker-k"), not OS
     * thread ids; which lane runs which op is scheduling-dependent.
     */
    int worker = 0;
};

/**
 * Allocator activity attributed to one step, from the BufferPool
 * counters (deltas across the step; peak is the absolute live-byte
 * high-water mark observed while the step ran).
 */
struct StepMemStats {
    std::uint64_t peak_bytes = 0;    ///< live-byte high-water mark.
    std::uint64_t allocations = 0;   ///< buffer requests this step.
    std::uint64_t fresh_allocs = 0;  ///< requests served by operator new.
    std::uint64_t pool_hits = 0;     ///< requests served from free lists.
};

/**
 * One span on an auxiliary trace lane: work that happens outside the
 * op executor but belongs on the same timeline — input-pipeline
 * producers materializing batches, the serving batcher forming and
 * running batches. Timestamps are offsets from the tracer's run epoch
 * (see Tracer::NowSeconds), so aux spans and steps share one timebase
 * and exported timelines show the overlap. Scheduling-dependent by
 * nature: analyses that must be bit-identical across thread counts
 * never consume aux spans.
 */
struct AuxSpan {
    int lane = 0;  ///< index into Tracer's registered aux lanes.
    std::string label;
    double start_seconds = 0.0;  ///< offset from the run epoch.
    double dur_seconds = 0.0;
};

/** One Session::Run invocation. */
struct StepTrace {
    std::vector<OpExecRecord> records;
    double wall_seconds = 0.0;  ///< whole-step time, including framework.
    StepMemStats memory;        ///< allocator activity during the step.

    /**
     * Offset of BeginStep from the tracer's run epoch (0 when the step
     * opened the epoch). Lets the exporter place steps at their true
     * wall-clock position relative to aux-lane spans instead of packing
     * them end-to-end.
     */
    double start_seconds = 0.0;

    /** @return summed op wall time (counts concurrent ops multiply). */
    double OpSeconds() const;

    /**
     * @return seconds of the step during which at least one op was
     * executing: the measure of the union of the recorded op intervals
     * [start_seconds, start_seconds + wall_seconds). Under the
     * inter-op executor this is what "time in op kernels" means —
     * OpSeconds() double-counts overlap and can exceed the step wall
     * time.
     */
    double BusySeconds() const;

    /**
     * @return framework time outside op kernels (the paper reports
     * this as typically < 1-2% of total runtime): the step span minus
     * the union of op intervals (BusySeconds), clamped at zero.
     *
     * Semantics: with the sequential executor the union is the sum, so
     * this matches the historical wall - sum(op) definition. With the
     * inter-op executor, summed op time double-counts concurrent ops
     * (and can exceed the step wall time, which used to drive this
     * negative); the interval union counts each wall-clock instant at
     * most once, so overhead is "time when no op was running". The
     * clamp absorbs timer granularity at the step boundaries.
     */
    double OverheadSeconds() const;
};

/**
 * Accumulates step traces across a run.
 *
 * Record() may be called from any thread between BeginStep and EndStep;
 * BeginStep/EndStep/steps()/Clear() belong to the step-driving thread
 * (they are not synchronized against an in-flight step).
 */
class Tracer {
  public:
    Tracer() = default;
    Tracer(const Tracer& other);
    Tracer& operator=(const Tracer& other);
    Tracer(Tracer&& other) noexcept;
    Tracer& operator=(Tracer&& other) noexcept;

    void set_enabled(bool enabled) { enabled_ = enabled; }
    bool enabled() const { return enabled_; }

    /** Begins a new step; records go to this step until EndStep. */
    void BeginStep();

    /** Appends a record to the current step. Thread-safe. */
    void Record(OpExecRecord record);

    /** Ends the step, canonicalizing record order by sequence id. */
    void EndStep(double step_wall_seconds, const StepMemStats& memory = {});

    // ---- auxiliary lanes --------------------------------------------------
    // Named timeline lanes for work outside the op executor (pipeline
    // producers, the serving batcher). Lanes render labeled in Chrome
    // traces alongside the executor workers. All three calls are
    // thread-safe; RegisterAuxLane dedups by name so reconstructing a
    // pipeline reuses its lane.

    /** @return the lane id for @p name, registering it if new. */
    int RegisterAuxLane(const std::string& name);

    /** Appends a span to @p lane. No-op when tracing is disabled. */
    void RecordAux(int lane, std::string label, double start_seconds,
                   double dur_seconds);

    /**
     * @return seconds since this tracer's run epoch. The first call
     * (from any thread) establishes the epoch; BeginStep stamps each
     * step's start_seconds with it, so aux spans and steps share one
     * timebase.
     */
    double NowSeconds();

    const std::vector<std::string>& aux_lanes() const { return aux_lanes_; }
    const std::vector<AuxSpan>& aux_spans() const { return aux_spans_; }

    const std::vector<StepTrace>& steps() const { return steps_; }

    /** Drops steps and aux spans and re-opens the run epoch. */
    void Clear();

  private:
    /** NowSeconds with mu_ already held. */
    double NowSecondsLocked();

    bool enabled_ = true;
    bool in_step_ = false;
    std::vector<StepTrace> steps_;
    std::vector<std::string> aux_lanes_;
    std::vector<AuxSpan> aux_spans_;
    bool has_epoch_ = false;
    std::chrono::steady_clock::time_point epoch_{};
    std::mutex mu_;  ///< guards records/aux state during a step.
};

}  // namespace fathom::runtime

#endif  // FATHOM_RUNTIME_TRACER_H
