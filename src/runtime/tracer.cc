#include "runtime/tracer.h"

#include <stdexcept>

namespace fathom::runtime {

double
StepTrace::OpSeconds() const
{
    double total = 0.0;
    for (const auto& r : records) {
        total += r.wall_seconds;
    }
    return total;
}

void
Tracer::BeginStep()
{
    if (!enabled_) {
        return;
    }
    steps_.emplace_back();
    in_step_ = true;
}

void
Tracer::Record(OpExecRecord record)
{
    if (!enabled_ || !in_step_) {
        return;
    }
    steps_.back().records.push_back(std::move(record));
}

void
Tracer::EndStep(double step_wall_seconds)
{
    if (!enabled_) {
        return;
    }
    if (!in_step_) {
        throw std::logic_error("Tracer::EndStep without BeginStep");
    }
    steps_.back().wall_seconds = step_wall_seconds;
    in_step_ = false;
}

}  // namespace fathom::runtime
