#include "runtime/tracer.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace fathom::runtime {

double
StepTrace::OpSeconds() const
{
    double total = 0.0;
    for (const auto& r : records) {
        total += r.wall_seconds;
    }
    return total;
}

Tracer::Tracer(const Tracer& other)
    : enabled_(other.enabled_), in_step_(other.in_step_),
      steps_(other.steps_)
{
}

Tracer&
Tracer::operator=(const Tracer& other)
{
    if (this != &other) {
        enabled_ = other.enabled_;
        in_step_ = other.in_step_;
        steps_ = other.steps_;
    }
    return *this;
}

Tracer::Tracer(Tracer&& other) noexcept
    : enabled_(other.enabled_), in_step_(other.in_step_),
      steps_(std::move(other.steps_))
{
}

Tracer&
Tracer::operator=(Tracer&& other) noexcept
{
    if (this != &other) {
        enabled_ = other.enabled_;
        in_step_ = other.in_step_;
        steps_ = std::move(other.steps_);
    }
    return *this;
}

void
Tracer::BeginStep()
{
    if (!enabled_) {
        return;
    }
    steps_.emplace_back();
    in_step_ = true;
}

void
Tracer::Record(OpExecRecord record)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!enabled_ || !in_step_) {
        return;
    }
    steps_.back().records.push_back(std::move(record));
}

void
Tracer::EndStep(double step_wall_seconds, const StepMemStats& memory)
{
    if (!enabled_) {
        return;
    }
    if (!in_step_) {
        throw std::logic_error("Tracer::EndStep without BeginStep");
    }
    StepTrace& step = steps_.back();
    step.memory = memory;
    // Canonicalize: the parallel executor records ops in completion
    // order; sorting by plan sequence makes traces scheduling-invariant
    // (and is a no-op for the sequential executor).
    std::stable_sort(
        step.records.begin(), step.records.end(),
        [](const OpExecRecord& a, const OpExecRecord& b) {
            return a.seq < b.seq;
        });
    step.wall_seconds = step_wall_seconds;
    in_step_ = false;
}

}  // namespace fathom::runtime
