#include "runtime/tracer.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace fathom::runtime {

double
StepTrace::OpSeconds() const
{
    double total = 0.0;
    for (const auto& r : records) {
        total += r.wall_seconds;
    }
    return total;
}

double
StepTrace::BusySeconds() const
{
    if (records.empty()) {
        return 0.0;
    }
    // Sweep the op intervals in start order, merging overlaps so every
    // wall-clock instant counts at most once regardless of how many
    // ops the inter-op executor had in flight.
    std::vector<std::pair<double, double>> intervals;
    intervals.reserve(records.size());
    for (const auto& r : records) {
        intervals.emplace_back(r.start_seconds,
                               r.start_seconds + r.wall_seconds);
    }
    std::sort(intervals.begin(), intervals.end());
    double busy = 0.0;
    double begin = intervals.front().first;
    double end = intervals.front().second;
    for (std::size_t i = 1; i < intervals.size(); ++i) {
        if (intervals[i].first > end) {
            busy += end - begin;
            begin = intervals[i].first;
            end = intervals[i].second;
        } else if (intervals[i].second > end) {
            end = intervals[i].second;
        }
    }
    busy += end - begin;
    return busy;
}

double
StepTrace::OverheadSeconds() const
{
    return std::max(0.0, wall_seconds - BusySeconds());
}

Tracer::Tracer(const Tracer& other)
    : enabled_(other.enabled_), in_step_(other.in_step_),
      steps_(other.steps_), aux_lanes_(other.aux_lanes_),
      aux_spans_(other.aux_spans_), has_epoch_(other.has_epoch_),
      epoch_(other.epoch_)
{
}

Tracer&
Tracer::operator=(const Tracer& other)
{
    if (this != &other) {
        enabled_ = other.enabled_;
        in_step_ = other.in_step_;
        steps_ = other.steps_;
        aux_lanes_ = other.aux_lanes_;
        aux_spans_ = other.aux_spans_;
        has_epoch_ = other.has_epoch_;
        epoch_ = other.epoch_;
    }
    return *this;
}

Tracer::Tracer(Tracer&& other) noexcept
    : enabled_(other.enabled_), in_step_(other.in_step_),
      steps_(std::move(other.steps_)),
      aux_lanes_(std::move(other.aux_lanes_)),
      aux_spans_(std::move(other.aux_spans_)),
      has_epoch_(other.has_epoch_), epoch_(other.epoch_)
{
}

Tracer&
Tracer::operator=(Tracer&& other) noexcept
{
    if (this != &other) {
        enabled_ = other.enabled_;
        in_step_ = other.in_step_;
        steps_ = std::move(other.steps_);
        aux_lanes_ = std::move(other.aux_lanes_);
        aux_spans_ = std::move(other.aux_spans_);
        has_epoch_ = other.has_epoch_;
        epoch_ = other.epoch_;
    }
    return *this;
}

void
Tracer::BeginStep()
{
    if (!enabled_) {
        return;
    }
    steps_.emplace_back();
    steps_.back().start_seconds = NowSeconds();
    in_step_ = true;
}

void
Tracer::Record(OpExecRecord record)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!enabled_ || !in_step_) {
        return;
    }
    steps_.back().records.push_back(std::move(record));
}

void
Tracer::EndStep(double step_wall_seconds, const StepMemStats& memory)
{
    if (!enabled_) {
        return;
    }
    if (!in_step_) {
        throw std::logic_error("Tracer::EndStep without BeginStep");
    }
    StepTrace& step = steps_.back();
    step.memory = memory;
    // Canonicalize: the parallel executor records ops in completion
    // order; sorting by plan sequence makes traces scheduling-invariant
    // (and is a no-op for the sequential executor).
    std::stable_sort(
        step.records.begin(), step.records.end(),
        [](const OpExecRecord& a, const OpExecRecord& b) {
            return a.seq < b.seq;
        });
    step.wall_seconds = step_wall_seconds;
    in_step_ = false;
}

int
Tracer::RegisterAuxLane(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < aux_lanes_.size(); ++i) {
        if (aux_lanes_[i] == name) {
            return static_cast<int>(i);
        }
    }
    aux_lanes_.push_back(name);
    return static_cast<int>(aux_lanes_.size() - 1);
}

void
Tracer::RecordAux(int lane, std::string label, double start_seconds,
                  double dur_seconds)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!enabled_ || lane < 0 ||
        static_cast<std::size_t>(lane) >= aux_lanes_.size()) {
        return;
    }
    AuxSpan span;
    span.lane = lane;
    span.label = std::move(label);
    span.start_seconds = start_seconds;
    span.dur_seconds = dur_seconds;
    aux_spans_.push_back(std::move(span));
}

double
Tracer::NowSeconds()
{
    std::lock_guard<std::mutex> lock(mu_);
    return NowSecondsLocked();
}

double
Tracer::NowSecondsLocked()
{
    const auto now = std::chrono::steady_clock::now();
    if (!has_epoch_) {
        epoch_ = now;
        has_epoch_ = true;
    }
    return std::chrono::duration<double>(now - epoch_).count();
}

void
Tracer::Clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    steps_.clear();
    aux_spans_.clear();
    has_epoch_ = false;
}

}  // namespace fathom::runtime
