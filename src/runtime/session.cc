#include "runtime/session.h"

#include <chrono>
#include <sstream>
#include <stdexcept>

#include "runtime/graph_optimizer.h"

namespace fathom::runtime {

using Clock = std::chrono::steady_clock;

namespace {

double
SecondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

Session::Session(std::uint64_t seed)
    : rng_(seed), pool_(std::make_unique<parallel::ThreadPool>(1))
{
}

void
Session::SetThreads(int threads)
{
    pool_ = std::make_unique<parallel::ThreadPool>(threads);
}

const Session::Plan&
Session::GetPlan(const std::vector<graph::Output>& fetches,
                 const std::vector<graph::NodeId>& targets)
{
    std::ostringstream key;
    for (const auto& f : fetches) {
        key << f.node << ":" << f.index << ",";
    }
    key << "|";
    for (graph::NodeId t : targets) {
        key << t << ",";
    }
    // Include graph size: appending nodes (e.g. building the training
    // graph after an inference run) must invalidate nothing but new
    // fetch sets still plan correctly. The optimizer flag also changes
    // the plan.
    key << "|" << graph_.num_nodes() << "|" << optimize_graphs_;

    auto it = plan_cache_.find(key.str());
    if (it != plan_cache_.end()) {
        return it->second;
    }
    std::vector<graph::NodeId> roots;
    roots.reserve(fetches.size() + targets.size());
    for (const auto& f : fetches) {
        roots.push_back(f.node);
    }
    for (graph::NodeId t : targets) {
        roots.push_back(t);
    }

    std::vector<graph::NodeId> order = graph_.TopologicalOrder(roots);

    Plan plan;
    if (optimize_graphs_) {
        auto optimized = OptimizePlan(graph_, order, variables_);
        order = std::move(optimized.order);
        plan.replacements = std::move(optimized.replacements);
        plan.folded = std::move(optimized.folded);
    }

    // Resolve each node's op definition once at plan time: registry
    // lookups are string-keyed and would otherwise run per op per step.
    const graph::OpRegistry& registry = graph::OpRegistry::Global();
    for (graph::NodeId id : order) {
        const graph::Node& node = graph_.node(id);
        const graph::OpDef* def = node.op_type == "Placeholder"
                                      ? nullptr
                                      : &registry.Lookup(node.op_type);
        plan.steps.push_back({id, def});
    }
    auto [inserted, ok] = plan_cache_.emplace(key.str(), std::move(plan));
    (void)ok;
    return inserted->second;
}

std::vector<Tensor>
Session::Run(const FeedMap& feeds, const std::vector<graph::Output>& fetches,
             const std::vector<graph::NodeId>& targets)
{
    const auto& plan = GetPlan(fetches, targets);

    std::vector<std::vector<Tensor>> values(
        static_cast<std::size_t>(graph_.num_nodes()));
    // Inject constant-folded results (empty unless optimization is on).
    for (const auto& [id, outputs] : plan.folded) {
        values[static_cast<std::size_t>(id)] = outputs;
    }
    // Edge redirection from CSE; identity when absent.
    auto resolve = [&plan](graph::NodeId id) {
        auto it = plan.replacements.find(id);
        return it == plan.replacements.end() ? id : it->second;
    };

    const auto step_start = Clock::now();
    tracer_.BeginStep();

    std::vector<Tensor> inputs;  // reused across ops.
    for (const PlanStep& step : plan.steps) {
        const graph::NodeId id = step.node;
        const graph::Node& node = graph_.node(id);

        if (step.def == nullptr) {  // Placeholder.
            auto fed = feeds.find(id);
            if (fed == feeds.end()) {
                tracer_.EndStep(SecondsSince(step_start));
                throw std::invalid_argument(
                    "Session::Run: placeholder '" + node.name + "' not fed");
            }
            values[static_cast<std::size_t>(id)] = {fed->second};
            continue;
        }

        inputs.clear();
        inputs.reserve(node.inputs.size());
        for (const graph::Output& in : node.inputs) {
            const auto& produced =
                values[static_cast<std::size_t>(resolve(in.node))];
            if (static_cast<std::size_t>(in.index) >= produced.size() ||
                !produced[static_cast<std::size_t>(in.index)].initialized()) {
                tracer_.EndStep(SecondsSince(step_start));
                throw std::logic_error("Session::Run: node '" + node.name +
                                       "' input from '" +
                                       graph_.node(in.node).name +
                                       "' was not produced");
            }
            inputs.push_back(produced[static_cast<std::size_t>(in.index)]);
        }

        const graph::OpDef& def = *step.def;
        graph::OpContext ctx(node, &inputs, *pool_, rng_, variables_);

        const auto op_start = Clock::now();
        try {
            def.kernel(ctx);
        } catch (const std::exception& e) {
            tracer_.EndStep(SecondsSince(step_start));
            throw std::runtime_error("Session::Run: op '" + node.name +
                                     "' (" + node.op_type +
                                     ") failed: " + e.what());
        }
        const double op_seconds = SecondsSince(op_start);

        if (tracer_.enabled()) {
            OpExecRecord record;
            record.node = id;
            record.op_type = node.op_type;
            record.op_class = def.op_class;
            record.wall_seconds = op_seconds;
            if (def.cost) {
                record.cost = def.cost(node, inputs, ctx.outputs());
            } else {
                // Default: bytes-only cost from the outputs.
                graph::OpCost cost;
                for (const Tensor& out : ctx.outputs()) {
                    if (out.initialized()) {
                        cost.bytes += static_cast<double>(out.byte_size());
                    }
                }
                record.cost = cost;
            }
            tracer_.Record(std::move(record));
        }

        values[static_cast<std::size_t>(id)] = std::move(ctx.outputs());
    }

    std::vector<Tensor> results;
    results.reserve(fetches.size());
    for (const graph::Output& f : fetches) {
        const auto& produced =
            values[static_cast<std::size_t>(resolve(f.node))];
        if (static_cast<std::size_t>(f.index) >= produced.size() ||
            !produced[static_cast<std::size_t>(f.index)].initialized()) {
            tracer_.EndStep(SecondsSince(step_start));
            throw std::logic_error("Session::Run: fetch of '" +
                                   graph_.node(f.node).name +
                                   "' produced no value");
        }
        results.push_back(produced[static_cast<std::size_t>(f.index)]);
    }

    tracer_.EndStep(SecondsSince(step_start));
    return results;
}

std::vector<Tensor>
Session::RunNamed(const std::map<std::string, Tensor>& feeds,
                  const std::vector<graph::Output>& fetches,
                  const std::vector<graph::NodeId>& targets)
{
    FeedMap by_id;
    for (const auto& [name, value] : feeds) {
        by_id[graph_.node_by_name(name).id] = value;
    }
    return Run(by_id, fetches, targets);
}

}  // namespace fathom::runtime
