#include "runtime/session.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "graph/verify/verifier.h"
#include "telemetry/metrics.h"
#include "tensor/buffer_pool.h"

namespace fathom::runtime {

using Clock = std::chrono::steady_clock;

namespace {

double
SecondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

std::uint64_t
MicrosSince(Clock::time_point start)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              start)
            .count());
}

/**
 * Executor metrics, resolved once. `steps` / `ops_executed` are
 * scheduling-invariant (the determinism tests compare them across
 * inter-op widths); the queue/worker signals are genuinely
 * scheduling-dependent and exist to expose it.
 */
struct SessionMetrics {
    telemetry::Counter& steps;
    telemetry::Counter& ops_executed;
    telemetry::Counter& inplace_applied;
    telemetry::Counter& parallel_steps;
    telemetry::Counter& worker_busy_us;
    telemetry::Counter& worker_idle_us;
    telemetry::Histogram& ready_queue_depth;
    telemetry::Histogram& step_us;

    static SessionMetrics&
    Get()
    {
        static SessionMetrics* m = [] {
            auto& r = telemetry::MetricsRegistry::Global();
            return new SessionMetrics{
                r.GetCounter("session.steps"),
                r.GetCounter("session.ops_executed"),
                r.GetCounter("rewrite.inplace_applied"),
                r.GetCounter("executor.parallel_steps"),
                r.GetCounter("executor.worker_busy_us"),
                r.GetCounter("executor.worker_idle_us"),
                r.GetHistogram("executor.ready_queue_depth"),
                r.GetHistogram("session.step_us"),
            };
        }();
        return *m;
    }
};

}  // namespace

Session::Session(std::uint64_t seed)
    : rng_(seed), pool_(std::make_unique<parallel::ThreadPool>(1))
{
}

void
Session::SetThreads(int threads)
{
    pool_ = std::make_unique<parallel::ThreadPool>(threads);
}

void
Session::SetInterOpThreads(int threads)
{
    inter_op_threads_ = std::max(threads, 1);
    inter_op_pool_ =
        inter_op_threads_ > 1
            ? std::make_unique<parallel::ThreadPool>(inter_op_threads_)
            : nullptr;
}

const Session::Plan&
Session::GetPlan(const FeedMap& feeds, const std::vector<graph::Output>& fetches,
                 const std::vector<graph::NodeId>& targets)
{
    std::ostringstream key;
    for (const auto& f : fetches) {
        key << f.node << ":" << f.index << ",";
    }
    key << "|";
    for (graph::NodeId t : targets) {
        key << t << ",";
    }
    // Include graph size: appending nodes (e.g. building the training
    // graph after an inference run) must invalidate nothing but new
    // fetch sets still plan correctly. The optimizer flag and rewrite
    // knobs also change the plan.
    key << "|" << graph_.num_nodes() << "|" << optimize_graphs_;
    if (optimize_graphs_) {
        key << "|" << rewrite_options_.CacheKey();
    }

    auto it = plan_cache_.find(key.str());
    if (it != plan_cache_.end()) {
        return it->second;
    }
    std::vector<graph::NodeId> roots;
    roots.reserve(fetches.size() + targets.size());
    for (const auto& f : fetches) {
        roots.push_back(f.node);
    }
    for (graph::NodeId t : targets) {
        roots.push_back(t);
    }

    Plan plan;
    std::vector<graph::NodeId> order;
    if (optimize_graphs_) {
        // The rewriter may append content-addressed "__rw/..." nodes to
        // the graph; they are unreachable from user-built roots, so
        // unoptimized plans and re-rewrites are unaffected (replanning
        // converges by reusing them, keyed by name).
        // When session-level verification is on, the stronger
        // feed-seeded, liveness-checking run below subsumes the
        // rewriter's own post-condition; don't verify the plan twice.
        graph::rewrite::RewriteOptions ropts = rewrite_options_;
        ropts.verify = ropts.verify && !verify_graphs_;
        auto rewritten = graph::rewrite::Rewrite(graph_, fetches, targets,
                                                 variables_, ropts);
        order = std::move(rewritten.order);
        plan.replacements = std::move(rewritten.replacements);
        plan.folded = std::move(rewritten.folded);
        plan.inplace = std::move(rewritten.inplace);
    } else {
        order = graph_.TopologicalOrder(roots);
    }

    // Resolve each node's op definition once at plan time: registry
    // lookups are string-keyed and would otherwise run per op per step.
    const graph::OpRegistry& registry = graph::OpRegistry::Global();
    for (graph::NodeId id : order) {
        const graph::Node& node = graph_.node(id);
        const graph::OpDef* def = node.op_type == "Placeholder"
                                      ? nullptr
                                      : &registry.Lookup(node.op_type);
        plan.steps.push_back({id, def});
    }

    // Dependency structure for the inter-op executor. Data and control
    // edges become counter increments; stateful steps become barriers
    // (they wait for everything earlier and gate everything later), so
    // RNG draws and variable writes keep their sequential order.
    const std::size_t n = plan.steps.size();
    plan.dependents.assign(n, {});
    plan.initial_pending.assign(n, 0);
    std::unordered_map<graph::NodeId, std::int32_t> step_of;
    step_of.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        step_of[plan.steps[i].node] = static_cast<std::int32_t>(i);
    }
    auto resolve = [&plan](graph::NodeId id) {
        auto r = plan.replacements.find(id);
        return r == plan.replacements.end() ? id : r->second;
    };
    std::int32_t prev_barrier = -1;
    std::vector<std::int32_t> deps;
    for (std::size_t i = 0; i < n; ++i) {
        deps.clear();
        const graph::Node& node = graph_.node(plan.steps[i].node);
        for (const graph::Output& in : node.inputs) {
            auto d = step_of.find(resolve(in.node));
            if (d != step_of.end()) {  // absent = folded, already valued.
                deps.push_back(d->second);
            }
        }
        for (graph::NodeId c : node.control_inputs) {
            auto d = step_of.find(resolve(c));
            if (d != step_of.end()) {
                deps.push_back(d->second);
            }
        }
        const bool barrier =
            plan.steps[i].def != nullptr && plan.steps[i].def->stateful;
        if (barrier) {
            // Steps in (prev_barrier, i) already wait on prev_barrier,
            // so edges from that range (plus prev_barrier itself, for
            // back-to-back barriers) order this step after everything.
            for (std::int32_t j = prev_barrier + 1;
                 j < static_cast<std::int32_t>(i); ++j) {
                deps.push_back(j);
            }
            if (prev_barrier >= 0) {
                deps.push_back(prev_barrier);
            }
            prev_barrier = static_cast<std::int32_t>(i);
        } else if (prev_barrier >= 0) {
            deps.push_back(prev_barrier);
        }
        std::sort(deps.begin(), deps.end());
        deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
        plan.initial_pending[i] = static_cast<std::int32_t>(deps.size());
        for (std::int32_t d : deps) {
            plan.dependents[static_cast<std::size_t>(d)].push_back(
                static_cast<std::int32_t>(i));
        }
    }

    // Liveness structure for the memory planner: which producer steps
    // each step reads (data edges only — control edges order execution
    // but never read a value), and how many consumer steps must finish
    // before a producer's outputs are dead. Fetched nodes, feeds,
    // Variable/Const reads, and stateful ops are exempt from early
    // release; everything else dies at its last consumer.
    std::unordered_set<graph::NodeId> fetched;
    fetched.reserve(fetches.size());
    for (const auto& f : fetches) {
        fetched.insert(resolve(f.node));
    }
    plan.input_producers.assign(n, {});
    plan.consumer_count.assign(n, 0);
    plan.releasable.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        const graph::Node& node = graph_.node(plan.steps[i].node);
        plan.releasable[i] =
            plan.steps[i].def != nullptr && !plan.steps[i].def->stateful &&
            node.op_type != "Variable" && node.op_type != "Const" &&
            fetched.count(plan.steps[i].node) == 0;
        auto& producers = plan.input_producers[i];
        for (const graph::Output& in : node.inputs) {
            auto d = step_of.find(resolve(in.node));
            if (d != step_of.end()) {  // absent = folded, plan-owned.
                producers.push_back(d->second);
            }
        }
        std::sort(producers.begin(), producers.end());
        producers.erase(std::unique(producers.begin(), producers.end()),
                        producers.end());
        for (std::int32_t p : producers) {
            ++plan.consumer_count[static_cast<std::size_t>(p)];
        }
    }

    // Static verification of the freshly built plan: structure, types
    // (seeded from this step's feed tensors), and the aliasing/
    // liveness/determinism lints. A violation throws and caches
    // nothing, so a corrected graph replans from scratch.
    if (verify_graphs_) {
        graph::verify::VerifyOptions vopts;
        vopts.variables = &variables_;
        for (const auto& [id, value] : feeds) {
            vopts.feed_types[id] =
                graph::verify::TypeInfo::Of(value.dtype(), value.shape());
        }
        graph::verify::PlanFacts facts;
        facts.order = &order;
        facts.replacements = &plan.replacements;
        facts.folded = &plan.folded;
        facts.inplace = plan.inplace.empty() ? nullptr : &plan.inplace;
        facts.consumer_count = &plan.consumer_count;
        facts.input_producers = &plan.input_producers;
        facts.releasable = &plan.releasable;
        graph::verify::VerifyOrThrow(graph_, fetches, targets, vopts,
                                     &facts);
    }

    auto [inserted, ok] = plan_cache_.emplace(key.str(), std::move(plan));
    (void)ok;
    return inserted->second;
}

void
Session::RunPlanStep(const Plan& plan, std::size_t seq, const FeedMap& feeds,
                     std::vector<std::vector<Tensor>>& values, int worker)
{
    const PlanStep& step = plan.steps[seq];
    const graph::NodeId id = step.node;
    const graph::Node& node = graph_.node(id);

    if (step.def == nullptr) {  // Placeholder.
        auto fed = feeds.find(id);
        if (fed == feeds.end()) {
            throw std::invalid_argument(
                "Session::Run: placeholder '" + node.name + "' not fed");
        }
        values[static_cast<std::size_t>(id)] = {fed->second};
        return;
    }

    auto resolve = [&plan](graph::NodeId in) {
        auto it = plan.replacements.find(in);
        return it == plan.replacements.end() ? in : it->second;
    };

    std::vector<Tensor> inputs;
    inputs.reserve(node.inputs.size());
    for (const graph::Output& in : node.inputs) {
        const auto& produced =
            values[static_cast<std::size_t>(resolve(in.node))];
        if (static_cast<std::size_t>(in.index) >= produced.size() ||
            !produced[static_cast<std::size_t>(in.index)].initialized()) {
            throw std::logic_error("Session::Run: node '" + node.name +
                                   "' input from '" +
                                   graph_.node(in.node).name +
                                   "' was not produced");
        }
        inputs.push_back(produced[static_cast<std::size_t>(in.index)]);
    }

    const graph::OpDef& def = *step.def;
    graph::OpContext ctx(node, &inputs, *pool_, rng_, variables_);

    // In-place grant: the rewrite proved input 0 statically dies at this
    // step; the refcount check (values entry + our gathered copy = 2)
    // rejects anything the static proof cannot see — folded constants,
    // view-shared buffers, planner-off fetch retention.
    if (!plan.inplace.empty() && plan.inplace[seq] && !inputs.empty() &&
        inputs[0].initialized() && inputs[0].buffer_use_count() == 2) {
        ctx.set_may_alias_input(true);
        if (telemetry::MetricsEnabled()) {
            SessionMetrics::Get().inplace_applied.Add(1);
        }
    }

    // Timestamps are only taken when tracing: the traced-off hot path
    // must stay inside the bench_telemetry overhead budget.
    const bool traced = tracer_.enabled();
    const auto op_start = traced ? Clock::now() : Clock::time_point{};
    try {
        def.kernel(ctx);
    } catch (const std::exception& e) {
        throw std::runtime_error("Session::Run: op '" + node.name + "' (" +
                                 node.op_type + ") failed: " + e.what());
    }

    if (traced) {
        OpExecRecord record;
        record.node = id;
        record.op_type = node.op_type;
        record.op_class = def.op_class;
        record.wall_seconds = SecondsSince(op_start);
        record.start_seconds =
            std::chrono::duration<double>(op_start - step_epoch_).count();
        record.worker = worker;
        record.seq = static_cast<std::int64_t>(seq);
        if (def.cost) {
            record.cost = def.cost(node, inputs, ctx.outputs());
        } else {
            // Default: bytes-only cost from the outputs.
            graph::OpCost cost;
            for (const Tensor& out : ctx.outputs()) {
                if (out.initialized()) {
                    cost.bytes += static_cast<double>(out.byte_size());
                }
            }
            record.cost = cost;
        }
        tracer_.Record(std::move(record));
    }

    values[static_cast<std::size_t>(id)] = std::move(ctx.outputs());
}

void
Session::ReleaseDeadValues(const Plan& plan, std::size_t seq,
                           std::atomic<std::int32_t>* remaining,
                           std::vector<std::vector<Tensor>>& values)
{
    if (remaining == nullptr) {  // planner disabled for this run.
        return;
    }
    // A step nothing reads (e.g. a run-only target) dies on completion.
    if (plan.releasable[seq] && plan.consumer_count[seq] == 0) {
        values[static_cast<std::size_t>(plan.steps[seq].node)].clear();
    }
    for (std::int32_t p : plan.input_producers[seq]) {
        const auto ps = static_cast<std::size_t>(p);
        // acq_rel: the thread that takes the count to zero observes
        // every other consumer's reads as already done, so the clear
        // below cannot race a concurrent input gather. Buffers shared
        // into still-live tensors (views, Identity outputs) survive the
        // clear via their own shared_ptr refs.
        if (remaining[ps].fetch_sub(1, std::memory_order_acq_rel) == 1 &&
            plan.releasable[ps]) {
            values[static_cast<std::size_t>(plan.steps[ps].node)].clear();
        }
    }
}

void
Session::RunParallel(const Plan& plan, const FeedMap& feeds,
                     std::atomic<std::int32_t>* remaining,
                     std::vector<std::vector<Tensor>>& values)
{
    const std::size_t total = plan.steps.size();
    if (total == 0) {
        return;
    }

    struct ExecState {
        std::mutex mu;
        std::condition_variable cv;
        std::deque<std::int32_t> ready;
        std::vector<std::int32_t> pending;
        std::size_t active = 0;     ///< steps currently executing.
        std::size_t completed = 0;  ///< steps finished (ok or not).
        bool stopped = false;       ///< error seen; start nothing new.
        std::size_t error_seq = SIZE_MAX;
        std::exception_ptr error;
    };
    ExecState state;
    state.pending = plan.initial_pending;
    for (std::size_t i = 0; i < total; ++i) {
        if (state.pending[i] == 0) {
            state.ready.push_back(static_cast<std::int32_t>(i));
        }
    }

    // Each drain loop claims ready steps until the step completes or an
    // error stops the schedule; in-flight steps always finish, so the
    // step ends cleanly even on failure. Among concurrently failing
    // steps, the lowest plan sequence wins, keeping the surfaced error
    // deterministic. The loop's lane index becomes the worker id on
    // trace records, and — when metrics are on — the loop accounts its
    // own busy/idle split and samples the ready-queue depth at each
    // claim.
    auto drain = [this, &plan, &feeds, &values, &state, remaining,
                  total](int lane) {
        const bool metered = telemetry::MetricsEnabled();
        std::uint64_t busy_us = 0;
        std::uint64_t idle_us = 0;
        for (;;) {
            std::int32_t seq = -1;
            {
                const auto wait_start =
                    metered ? Clock::now() : Clock::time_point{};
                std::unique_lock<std::mutex> lock(state.mu);
                state.cv.wait(lock, [&state, total] {
                    return state.stopped || !state.ready.empty() ||
                           (state.active == 0 && state.completed == total);
                });
                if (metered) {
                    idle_us += MicrosSince(wait_start);
                }
                if (state.stopped || state.ready.empty()) {
                    if (metered) {
                        SessionMetrics& sm = SessionMetrics::Get();
                        sm.worker_busy_us.Add(busy_us);
                        sm.worker_idle_us.Add(idle_us);
                    }
                    return;
                }
                if (metered) {
                    SessionMetrics::Get().ready_queue_depth.Observe(
                        state.ready.size());
                }
                seq = state.ready.front();
                state.ready.pop_front();
                ++state.active;
            }
            const auto run_start =
                metered ? Clock::now() : Clock::time_point{};
            std::exception_ptr err;
            try {
                RunPlanStep(plan, static_cast<std::size_t>(seq), feeds,
                            values, lane);
            } catch (...) {
                err = std::current_exception();
            }
            if (metered) {
                busy_us += MicrosSince(run_start);
            }
            if (!err) {
                ReleaseDeadValues(plan, static_cast<std::size_t>(seq),
                                  remaining, values);
            }
            {
                std::lock_guard<std::mutex> lock(state.mu);
                --state.active;
                ++state.completed;
                if (err) {
                    state.stopped = true;
                    if (static_cast<std::size_t>(seq) < state.error_seq) {
                        state.error_seq = static_cast<std::size_t>(seq);
                        state.error = err;
                    }
                } else if (!state.stopped) {
                    for (std::int32_t d :
                         plan.dependents[static_cast<std::size_t>(seq)]) {
                        if (--state.pending[static_cast<std::size_t>(d)] ==
                            0) {
                            state.ready.push_back(d);
                        }
                    }
                }
            }
            state.cv.notify_all();
        }
    };

    const std::size_t width = std::min(
        static_cast<std::size_t>(inter_op_threads_), total);
    std::vector<std::function<void()>> loops;
    loops.reserve(width);
    for (std::size_t lane = 0; lane < width; ++lane) {
        loops.push_back([&drain, lane] { drain(static_cast<int>(lane)); });
    }
    inter_op_pool_->RunTasks(std::move(loops));

    if (state.error) {
        std::rethrow_exception(state.error);
    }
}

std::vector<Tensor>
Session::Run(const FeedMap& feeds, const std::vector<graph::Output>& fetches,
             const std::vector<graph::NodeId>& targets)
{
    const auto& plan = GetPlan(feeds, fetches, targets);

    std::vector<std::vector<Tensor>> values(
        static_cast<std::size_t>(graph_.num_nodes()));
    // Inject constant-folded results (empty unless optimization is on).
    for (const auto& [id, outputs] : plan.folded) {
        values[static_cast<std::size_t>(id)] = outputs;
    }
    // Edge redirection from CSE; identity when absent.
    auto resolve = [&plan](graph::NodeId id) {
        auto it = plan.replacements.find(id);
        return it == plan.replacements.end() ? id : it->second;
    };

    // Memory planner: per-run outstanding-consumer counts, seeded from
    // the plan's liveness analysis. Null when planning is off.
    std::unique_ptr<std::atomic<std::int32_t>[]> remaining;
    if (memory_planning_ && !plan.steps.empty()) {
        remaining = std::make_unique<std::atomic<std::int32_t>[]>(
            plan.steps.size());
        for (std::size_t i = 0; i < plan.steps.size(); ++i) {
            remaining[i].store(plan.consumer_count[i],
                               std::memory_order_relaxed);
        }
    }

    // Allocator activity is attributed to the step as counter deltas;
    // the peak is the pool-wide live-byte high-water mark while this
    // step ran (concurrent sessions share the pool, so attribution is
    // per-process, not per-session).
    BufferPool& buffer_pool = BufferPool::Global();
    const BufferPool::Stats mem_before = buffer_pool.stats();
    buffer_pool.ResetPeak();
    auto step_memory = [&buffer_pool, &mem_before] {
        const BufferPool::Stats after = buffer_pool.stats();
        StepMemStats m;
        m.peak_bytes = after.peak_bytes;
        m.allocations = after.allocations - mem_before.allocations;
        m.fresh_allocs = after.fresh_allocs - mem_before.fresh_allocs;
        m.pool_hits = after.pool_hits - mem_before.pool_hits;
        return m;
    };

    const auto step_start = Clock::now();
    step_epoch_ = step_start;
    tracer_.BeginStep();

    try {
        if (inter_op_threads_ > 1) {
            if (telemetry::MetricsEnabled()) {
                SessionMetrics::Get().parallel_steps.Add(1);
            }
            RunParallel(plan, feeds, remaining.get(), values);
        } else {
            for (std::size_t seq = 0; seq < plan.steps.size(); ++seq) {
                RunPlanStep(plan, seq, feeds, values, /*worker=*/0);
                ReleaseDeadValues(plan, seq, remaining.get(), values);
            }
        }
    } catch (...) {
        tracer_.EndStep(SecondsSince(step_start), step_memory());
        throw;
    }

    std::vector<Tensor> results;
    results.reserve(fetches.size());
    for (const graph::Output& f : fetches) {
        const auto& produced =
            values[static_cast<std::size_t>(resolve(f.node))];
        if (static_cast<std::size_t>(f.index) >= produced.size() ||
            !produced[static_cast<std::size_t>(f.index)].initialized()) {
            tracer_.EndStep(SecondsSince(step_start), step_memory());
            throw std::logic_error("Session::Run: fetch of '" +
                                   graph_.node(f.node).name +
                                   "' produced no value");
        }
        results.push_back(produced[static_cast<std::size_t>(f.index)]);
    }

    tracer_.EndStep(SecondsSince(step_start), step_memory());
    if (telemetry::MetricsEnabled()) {
        SessionMetrics& sm = SessionMetrics::Get();
        sm.steps.Add(1);
        sm.ops_executed.Add(plan.steps.size());
        sm.step_us.Observe(MicrosSince(step_start));
    }
    return results;
}

std::vector<Tensor>
Session::RunNamed(const std::map<std::string, Tensor>& feeds,
                  const std::vector<graph::Output>& fetches,
                  const std::vector<graph::NodeId>& targets)
{
    FeedMap by_id;
    for (const auto& [name, value] : feeds) {
        by_id[graph_.node_by_name(name).id] = value;
    }
    return Run(by_id, fetches, targets);
}

}  // namespace fathom::runtime
