/**
 * @file
 * Checkpointing: serialize a VariableStore (model parameters and
 * optimizer slots) to a file and restore it.
 *
 * Format: a small binary container —
 *   magic "FTHMCKPT" | u32 version | u32 count |
 *   repeated { u32 name_len | name | u8 dtype | u32 rank |
 *              i64 dims[rank] | raw element bytes }.
 * Little-endian, no alignment padding. The format is versioned so
 * future extensions stay readable.
 */
#ifndef FATHOM_RUNTIME_CHECKPOINT_H
#define FATHOM_RUNTIME_CHECKPOINT_H

#include <string>

#include "graph/op_registry.h"

namespace fathom::runtime {

/**
 * Writes every variable in @p store to @p path.
 * @throws std::runtime_error on I/O failure.
 */
void SaveCheckpoint(const graph::VariableStore& store,
                    const std::string& path);

/**
 * Reads a checkpoint, replacing/creating variables in @p store.
 * Existing variables not present in the file are left untouched.
 * @throws std::runtime_error on I/O failure or format mismatch.
 */
void RestoreCheckpoint(graph::VariableStore* store, const std::string& path);

}  // namespace fathom::runtime

#endif  // FATHOM_RUNTIME_CHECKPOINT_H
