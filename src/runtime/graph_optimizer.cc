#include "runtime/graph_optimizer.h"

#include <cstdint>
#include <cstring>
#include <sstream>

#include "parallel/thread_pool.h"

namespace fathom::runtime {

namespace {

/** Ops that must never be folded or merged regardless of purity. */
bool
IsPinned(const std::string& op_type)
{
    return op_type == "Placeholder" || op_type == "Variable" ||
           op_type == "Assign" || op_type == "NoOp" ||
           op_type.rfind("Apply", 0) == 0;
}

/** Serializes an attr map deterministically for the CSE signature. */
std::string
AttrsSignature(const graph::Node& node)
{
    std::ostringstream out;
    for (const auto& [key, value] : node.attrs) {
        out << key << "=";
        // AttrValue intentionally has no general introspection; probe
        // the variant through its typed accessors.
        try {
            out << "i" << value.AsInt();
            continue;
        } catch (const std::logic_error&) {
        }
        try {
            // Encode the exact bit pattern: streaming the float with
            // default ostream precision (6 significant digits) made
            // attrs differing below that threshold — e.g. two nearby
            // epsilons or learning rates — produce identical CSE
            // signatures, wrongly merging non-equivalent nodes. This
            // also keeps +0.0f/-0.0f and NaN payloads distinct.
            const float f = value.AsFloat();
            std::uint32_t bits = 0;
            static_assert(sizeof(bits) == sizeof(f));
            std::memcpy(&bits, &f, sizeof(bits));
            out << "f" << bits;
            continue;
        } catch (const std::logic_error&) {
        }
        try {
            out << "b" << value.AsBool();
            continue;
        } catch (const std::logic_error&) {
        }
        try {
            out << "s" << value.AsString();
            continue;
        } catch (const std::logic_error&) {
        }
        try {
            out << "l";
            for (std::int64_t v : value.AsIntList()) {
                out << v << ",";
            }
            continue;
        } catch (const std::logic_error&) {
        }
        out << "?";
    }
    return out.str();
}

}  // namespace

OptimizedPlan
OptimizePlan(const graph::Graph& graph,
             const std::vector<graph::NodeId>& order,
             graph::VariableStore& variables, bool fold_constants,
             bool eliminate_common)
{
    const graph::OpRegistry& registry = graph::OpRegistry::Global();
    OptimizedPlan plan;
    plan.replacements.reserve(order.size());

    // CSE signature -> representative node.
    std::unordered_map<std::string, graph::NodeId> seen;
    // Nodes whose outputs are compile-time constants.
    std::unordered_map<graph::NodeId, bool> is_constant;

    parallel::ThreadPool fold_pool(1);
    Rng fold_rng(0);  // never used: stateful ops are pinned.

    auto resolve = [&plan](graph::NodeId id) {
        auto it = plan.replacements.find(id);
        return it == plan.replacements.end() ? id : it->second;
    };

    for (const graph::NodeId id : order) {
        const graph::Node& node = graph.node(id);
        const bool registered = registry.Contains(node.op_type);
        const graph::OpDef* def =
            registered ? &registry.Lookup(node.op_type) : nullptr;
        const bool pure = def != nullptr && !def->stateful &&
                          !IsPinned(node.op_type);

        // ---- CSE -----------------------------------------------------------
        if (eliminate_common && pure) {
            std::ostringstream sig;
            sig << node.op_type << "|" << AttrsSignature(node) << "|";
            for (const graph::Output& in : node.inputs) {
                sig << resolve(in.node) << ":" << in.index << ",";
            }
            auto [it, inserted] = seen.emplace(sig.str(), id);
            if (!inserted) {
                plan.replacements[id] = it->second;
                ++plan.cse_merged;
                continue;  // merged away entirely.
            }
        }

        // ---- constant folding -----------------------------------------------
        bool foldable = fold_constants && pure && node.num_outputs > 0;
        if (foldable) {
            if (node.op_type == "Const") {
                // A Const is already a materialized value.
                plan.folded[id] = {
                    variables.Get(node.attr("var_name").AsString())};
                is_constant[id] = true;
                // Still executes trivially if not consumed by folding,
                // so keep it out of `order` only when all consumers
                // fold too; simplest correct choice: drop it from the
                // schedule since its value is in `folded`.
                continue;
            }
            for (const graph::Output& in : node.inputs) {
                const graph::NodeId src = resolve(in.node);
                if (!is_constant.count(src) || !is_constant[src]) {
                    foldable = false;
                    break;
                }
            }
            if (foldable) {
                std::vector<Tensor> inputs;
                inputs.reserve(node.inputs.size());
                for (const graph::Output& in : node.inputs) {
                    inputs.push_back(
                        plan.folded.at(resolve(in.node))
                            [static_cast<std::size_t>(in.index)]);
                }
                graph::OpContext ctx(node, &inputs, fold_pool, fold_rng,
                                     variables);
                def->kernel(ctx);
                plan.folded[id] = std::move(ctx.outputs());
                is_constant[id] = true;
                ++plan.folded_nodes;
                continue;
            }
        }

        plan.order.push_back(id);
    }
    return plan;
}

}  // namespace fathom::runtime
