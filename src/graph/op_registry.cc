#include "graph/op_registry.h"

#include <stdexcept>

namespace fathom::graph {

void
VariableStore::Set(const std::string& name, Tensor value)
{
    if (!values_.count(name)) {
        order_.push_back(name);
    }
    values_[name] = std::move(value);
}

Tensor&
VariableStore::Get(const std::string& name)
{
    auto it = values_.find(name);
    if (it == values_.end()) {
        throw std::out_of_range("VariableStore: no variable '" + name + "'");
    }
    return it->second;
}

const Tensor&
VariableStore::Get(const std::string& name) const
{
    auto it = values_.find(name);
    if (it == values_.end()) {
        throw std::out_of_range("VariableStore: no variable '" + name + "'");
    }
    return it->second;
}

bool
VariableStore::Contains(const std::string& name) const
{
    return values_.count(name) > 0;
}

std::vector<std::string>
VariableStore::Names() const
{
    return order_;
}

std::int64_t
VariableStore::TotalParameters() const
{
    std::int64_t total = 0;
    for (const auto& [name, value] : values_) {
        if (value.dtype() == DType::kFloat32) {
            total += value.num_elements();
        }
    }
    return total;
}

const Tensor&
OpContext::input(int i) const
{
    if (i < 0 || i >= num_inputs()) {
        throw std::out_of_range("OpContext::input(" + std::to_string(i) +
                                ") on node '" + node_.name + "' with " +
                                std::to_string(num_inputs()) + " inputs");
    }
    return (*inputs_)[static_cast<std::size_t>(i)];
}

void
OpContext::set_output(int i, Tensor value)
{
    if (i < 0 || i >= static_cast<int>(outputs_.size())) {
        throw std::out_of_range("OpContext::set_output index out of range");
    }
    outputs_[static_cast<std::size_t>(i)] = std::move(value);
}

OpRegistry&
OpRegistry::Global()
{
    static OpRegistry registry;
    return registry;
}

void
OpRegistry::Register(OpDef def)
{
    if (ops_.count(def.name)) {
        throw std::logic_error("OpRegistry: duplicate op '" + def.name + "'");
    }
    if (!def.kernel) {
        throw std::logic_error("OpRegistry: op '" + def.name +
                               "' has no kernel");
    }
    ops_[def.name] = std::move(def);
}

const OpDef&
OpRegistry::Lookup(const std::string& name) const
{
    auto it = ops_.find(name);
    if (it == ops_.end()) {
        throw std::out_of_range("OpRegistry: unknown op '" + name + "'");
    }
    return it->second;
}

bool
OpRegistry::Contains(const std::string& name) const
{
    return ops_.count(name) > 0;
}

std::vector<std::string>
OpRegistry::Names() const
{
    std::vector<std::string> names;
    names.reserve(ops_.size());
    for (const auto& [name, def] : ops_) {
        names.push_back(name);
    }
    return names;
}

}  // namespace fathom::graph
