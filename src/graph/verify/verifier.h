/**
 * @file
 * The static graph verifier: structural validation, whole-graph
 * shape/dtype inference, and semantic lints over an execution plan.
 *
 * Nothing here executes a kernel. Verify() walks the subgraph that a
 * fetch/target set would run and proves — before the first step — the
 * properties the runtime otherwise discovers as mid-step faults:
 *
 *  **Structural** — every input edge points at a real node and a real
 *  output index; control edges are in range and non-self; the subgraph
 *  is acyclic (the verifier runs its own Kahn scan so a cycle becomes a
 *  named diagnostic, not a thrown std::logic_error); every op type is
 *  registered and carries a shape fn; fetch indices are in range and
 *  never read a node whose kernel produces no output (Assign, Apply*,
 *  NoOp).
 *
 *  **Types** — per-op shape fns (graph/verify/shape_inference.h)
 *  propagate static dtypes/shapes in topological order, seeded at
 *  Placeholders from feed tensors or serving TensorSpecs; every
 *  provable mismatch becomes a `node 'x' (Op): expected/got`
 *  diagnostic.
 *
 *  **Semantic lints** (when PlanFacts from a rewrite/plan are given) —
 *  the in-place aliasing proof is re-derived edge-by-edge for every
 *  step the rewriter marked; the memory planner's consumer counts and
 *  producer lists are recomputed independently and compared; and the
 *  determinism lint checks that no reachable stateful op was folded,
 *  replaced, or dropped from the plan order, and that rewrite-produced
 *  ("__rw/") nodes have pure registered kernels. Frozen mode rejects
 *  stateful ops outright.
 *
 * The verifier runs by default at Session plan build, after every
 * rewrite fixed point, and at FrozenPlan::Freeze; each run bumps
 * `verify.runs` and each diagnostic bumps `verify.violations`.
 */
#ifndef FATHOM_GRAPH_VERIFY_VERIFIER_H
#define FATHOM_GRAPH_VERIFY_VERIFIER_H

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "graph/verify/shape_inference.h"
#include "tensor/tensor.h"

namespace fathom::graph::verify {

/** One verifier finding, anchored to a named node. */
struct Diagnostic {
    /** Stable check slug, e.g. "cycle", "shape-inference", "inplace". */
    std::string check;
    /** Name of the offending node ("" for graph-level findings). */
    std::string node;
    std::string message;

    /** @return e.g. "[shape-inference] node 'fc1/MatMul' (MatMul): ...". */
    std::string ToString() const;
};

/** The outcome of one Verify() run. */
struct VerifyReport {
    std::vector<Diagnostic> diagnostics;

    /**
     * Inferred output types per verified node id (indices into the
     * Graph; entries parallel each node's outputs). Nodes outside the
     * verified subgraph are absent.
     */
    std::unordered_map<NodeId, std::vector<TypeInfo>> types;

    int nodes_checked = 0;

    bool ok() const { return diagnostics.empty(); }

    /** @return a multi-line report (diagnostics, or "OK" summary). */
    std::string ToString() const;
};

/** Knobs and seeds for one Verify() run. */
struct VerifyOptions {
    /**
     * Static types of fed Placeholder outputs, keyed by node id
     * (Placeholders carry no shape/dtype attrs, so feeds are the only
     * type source). Unfed placeholders verify with unknown type.
     */
    std::map<NodeId, TypeInfo> feed_types;

    /** Variable/Const type resolution; null skips store lookups. */
    const VariableStore* variables = nullptr;

    /**
     * Serving-freeze mode: any stateful op is a violation (a frozen
     * plan must be reentrant and side-effect-free).
     */
    bool frozen = false;

    bool check_inplace = true;      ///< aliasing-safety lint.
    bool check_liveness = true;     ///< memory-planner consistency lint.
    bool check_determinism = true;  ///< stateful/rewrite purity lint.
};

/**
 * Facts about a built execution plan (from Session::GetPlan or a
 * RewriteResult), lent to Verify() for the semantic lints. All
 * pointers are borrowed and may be null except `order`; the per-step
 * vectors are parallel to `order`.
 */
struct PlanFacts {
    /** Live execution order (post-rewrite surviving steps). */
    const std::vector<NodeId>* order = nullptr;
    /** Path-compressed edge redirection (CSE/folding). */
    const std::unordered_map<NodeId, NodeId>* replacements = nullptr;
    /** Constant-folded nodes (only the key set is consulted). */
    const std::unordered_map<NodeId, std::vector<Tensor>>* folded = nullptr;
    /** Per-step in-place markings to re-prove. */
    const std::vector<char>* inplace = nullptr;
    /** Memory planner's per-step reader count (verified if present). */
    const std::vector<std::int32_t>* consumer_count = nullptr;
    /** Memory planner's per-step producer lists (verified if present). */
    const std::vector<std::vector<std::int32_t>>* input_producers = nullptr;
    /** Memory planner's early-release eligibility (verified if present). */
    const std::vector<char>* releasable = nullptr;
};

/**
 * Statically verifies the subgraph of @p graph that producing
 * @p fetches / @p targets would execute. Never throws on graph
 * defects — every finding is a Diagnostic in the report. Bumps
 * `verify.runs` / `verify.violations` telemetry when metrics are on.
 *
 * @param plan optional built-plan facts enabling the semantic lints.
 */
VerifyReport Verify(const Graph& graph, const std::vector<Output>& fetches,
                    const std::vector<NodeId>& targets,
                    const VerifyOptions& options = {},
                    const PlanFacts* plan = nullptr);

/**
 * Verify() and throw std::invalid_argument with the full report text
 * if any diagnostic fired. The enforcement entry point for Session
 * plan build and FrozenPlan::Freeze.
 */
void VerifyOrThrow(const Graph& graph, const std::vector<Output>& fetches,
                   const std::vector<NodeId>& targets,
                   const VerifyOptions& options = {},
                   const PlanFacts* plan = nullptr);

}  // namespace fathom::graph::verify

#endif  // FATHOM_GRAPH_VERIFY_VERIFIER_H
