#include "graph/verify/shape_inference.h"

#include <algorithm>
#include <sstream>

#include "tensor/dtype.h"

namespace fathom::graph::verify {

std::string
TypeInfo::ToString() const
{
    std::ostringstream out;
    out << (has_dtype ? DTypeName(dtype) : std::string("?"));
    out << (has_shape ? shape.ToString() : std::string("[?]"));
    return out.str();
}

const TypeInfo&
InferenceContext::input(int i) const
{
    if (i < 0 || i >= static_cast<int>(inputs_.size())) {
        Fail("shape fn read input " + std::to_string(i) + " but node has " +
             std::to_string(inputs_.size()) + " inputs");
    }
    return inputs_[static_cast<std::size_t>(i)];
}

void
InferenceContext::set_output(int i, TypeInfo type)
{
    if (i < 0 || i >= static_cast<int>(outputs_.size())) {
        Fail("shape fn set output " + std::to_string(i) + " but node has " +
             std::to_string(outputs_.size()) + " outputs");
    }
    outputs_[static_cast<std::size_t>(i)] = std::move(type);
}

void
InferenceContext::Fail(const std::string& message) const
{
    throw InferenceError("node '" + node_.name + "' (" + node_.op_type +
                         "): " + message);
}

std::int64_t
InferenceContext::RequireIntAttr(const std::string& key) const
{
    auto it = node_.attrs.find(key);
    if (it == node_.attrs.end()) {
        Fail("missing required int attr '" + key + "'");
    }
    try {
        return it->second.AsInt();
    } catch (const std::logic_error&) {
        Fail("attr '" + key + "' is not an int");
    }
}

float
InferenceContext::RequireFloatAttr(const std::string& key) const
{
    auto it = node_.attrs.find(key);
    if (it == node_.attrs.end()) {
        Fail("missing required float attr '" + key + "'");
    }
    try {
        return it->second.AsFloat();
    } catch (const std::logic_error&) {
        Fail("attr '" + key + "' is not a float");
    }
}

const std::string&
InferenceContext::RequireStringAttr(const std::string& key) const
{
    auto it = node_.attrs.find(key);
    if (it == node_.attrs.end()) {
        Fail("missing required string attr '" + key + "'");
    }
    try {
        return it->second.AsString();
    } catch (const std::logic_error&) {
        Fail("attr '" + key + "' is not a string");
    }
}

const std::vector<std::int64_t>&
InferenceContext::RequireIntListAttr(const std::string& key) const
{
    auto it = node_.attrs.find(key);
    if (it == node_.attrs.end()) {
        Fail("missing required int-list attr '" + key + "'");
    }
    try {
        return it->second.AsIntList();
    } catch (const std::logic_error&) {
        Fail("attr '" + key + "' is not an int list");
    }
}

void
InferenceContext::ExpectDType(int i, DType expected) const
{
    const TypeInfo& t = input(i);
    if (t.has_dtype && t.dtype != expected) {
        Fail("input " + std::to_string(i) + " dtype: expected " +
             DTypeName(expected) + ", got " + DTypeName(t.dtype));
    }
}

void
InferenceContext::ExpectRank(int i, int expected) const
{
    const TypeInfo& t = input(i);
    if (t.has_shape && t.shape.rank() != expected) {
        Fail("input " + std::to_string(i) + " rank: expected " +
             std::to_string(expected) + ", got " +
             std::to_string(t.shape.rank()) + " (shape " +
             t.shape.ToString() + ")");
    }
}

void
InferenceContext::ExpectSameShape(int a, int b) const
{
    const TypeInfo& ta = input(a);
    const TypeInfo& tb = input(b);
    if (ta.has_shape && tb.has_shape && ta.shape != tb.shape) {
        Fail("inputs " + std::to_string(a) + " and " + std::to_string(b) +
             " shapes: expected identical, got " + ta.shape.ToString() +
             " vs " + tb.shape.ToString());
    }
}

ShapeFnRegistry&
ShapeFnRegistry::Global()
{
    static ShapeFnRegistry registry;
    return registry;
}

void
ShapeFnRegistry::Register(const std::string& op_type, ShapeFn fn)
{
    if (fns_.count(op_type) > 0) {
        throw std::logic_error("ShapeFnRegistry: duplicate shape fn for op '" +
                               op_type + "'");
    }
    fns_[op_type] = std::move(fn);
}

const ShapeFn*
ShapeFnRegistry::Find(const std::string& op_type) const
{
    auto it = fns_.find(op_type);
    return it == fns_.end() ? nullptr : &it->second;
}

bool
ShapeFnRegistry::Contains(const std::string& op_type) const
{
    return fns_.count(op_type) > 0;
}

std::vector<std::string>
ShapeFnRegistry::Names() const
{
    std::vector<std::string> names;
    names.reserve(fns_.size());
    for (const auto& [name, fn] : fns_) {
        names.push_back(name);
    }
    return names;
}

Shape
BroadcastShapes(const Shape& a, const Shape& b)
{
    const int rank = std::max(a.rank(), b.rank());
    std::vector<std::int64_t> dims(static_cast<std::size_t>(rank), 1);
    for (int axis = 1; axis <= rank; ++axis) {
        const std::int64_t da = axis <= a.rank() ? a.dim(-axis) : 1;
        const std::int64_t db = axis <= b.rank() ? b.dim(-axis) : 1;
        if (da != db && da != 1 && db != 1) {
            throw InferenceError("shapes " + a.ToString() + " and " +
                                 b.ToString() + " are not broadcastable");
        }
        dims[static_cast<std::size_t>(rank - axis)] = std::max(da, db);
    }
    return Shape(std::move(dims));
}

}  // namespace fathom::graph::verify
