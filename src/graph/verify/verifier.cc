#include "graph/verify/verifier.h"

#include <algorithm>
#include <deque>
#include <set>
#include <sstream>
#include <unordered_set>

#include "graph/op_registry.h"
#include "graph/rewrite/rewrite.h"
#include "telemetry/metrics.h"

namespace fathom::graph::verify {

namespace {

/** Verifier metrics, resolved once (same pattern as SessionMetrics). */
struct VerifyMetrics {
    telemetry::Counter& runs;
    telemetry::Counter& violations;

    static VerifyMetrics&
    Get()
    {
        static VerifyMetrics* m = [] {
            auto& r = telemetry::MetricsRegistry::Global();
            return new VerifyMetrics{
                r.GetCounter("verify.runs"),
                r.GetCounter("verify.violations"),
            };
        }();
        return *m;
    }
};

/** Edge key for use-count maps: (node id, output index). */
std::uint64_t
EdgeKey(const Output& edge)
{
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(edge.node))
            << 32) |
           static_cast<std::uint32_t>(edge.index);
}

bool
IsRewriteProduced(const std::string& name)
{
    return name.rfind("__rw/", 0) == 0;
}

/** The whole Verify() pass as a class so the walk state is shared. */
class Verifier {
  public:
    Verifier(const Graph& graph, const std::vector<Output>& fetches,
             const std::vector<NodeId>& targets, const VerifyOptions& options,
             const PlanFacts* plan)
        : graph_(graph), fetches_(fetches), targets_(targets),
          options_(options), plan_(plan)
    {
    }

    VerifyReport
    Run()
    {
        CollectRoots();
        CollectClosure();
        TopologicalSort();
        InferTypes();
        CheckFetches();
        if (options_.check_determinism) {
            LintDeterminism();
        }
        if (options_.check_inplace && plan_ != nullptr &&
            plan_->order != nullptr && plan_->inplace != nullptr) {
            LintInPlace();
        }
        if (options_.check_liveness && plan_ != nullptr &&
            plan_->order != nullptr) {
            LintLiveness();
        }
        report_.nodes_checked = static_cast<int>(order_.size());
        return std::move(report_);
    }

  private:
    void
    Diag(std::string check, NodeId node, std::string message)
    {
        report_.diagnostics.push_back(
            {std::move(check),
             ValidId(node) ? graph_.node(node).name : std::string(),
             std::move(message)});
    }

    bool ValidId(NodeId id) const
    {
        return id >= 0 && id < graph_.num_nodes();
    }

    NodeId
    Resolve(NodeId id) const
    {
        if (plan_ == nullptr || plan_->replacements == nullptr) {
            return id;
        }
        auto it = plan_->replacements->find(id);
        return it == plan_->replacements->end() ? id : it->second;
    }

    /**
     * Registry lookups memoized per op type: the lints resolve every
     * node's OpDef (and InferTypes its ShapeFn), and both registries
     * key by string — one map walk per distinct op type instead of per
     * node keeps large-graph verification ~O(nodes).
     */
    struct OpHooks {
        const OpDef* def = nullptr;
        const ShapeFn* shape_fn = nullptr;
    };

    const OpHooks&
    LookupHooks(const std::string& op_type)
    {
        auto it = op_cache_.find(op_type);
        if (it == op_cache_.end()) {
            const OpRegistry& registry = OpRegistry::Global();
            OpHooks hooks;
            hooks.def = registry.Contains(op_type) ? &registry.Lookup(op_type)
                                                   : nullptr;
            hooks.shape_fn = ShapeFnRegistry::Global().Find(op_type);
            it = op_cache_.emplace(op_type, hooks).first;
        }
        return it->second;
    }

    const OpDef*
    LookupDef(const std::string& op_type)
    {
        return LookupHooks(op_type).def;
    }

    void
    CollectRoots()
    {
        for (const Output& f : fetches_) {
            if (!ValidId(f.node)) {
                Diag("bad-fetch", -1,
                     "fetch references node id " + std::to_string(f.node) +
                         " outside the graph (" +
                         std::to_string(graph_.num_nodes()) + " nodes)");
                continue;
            }
            roots_.push_back(f.node);
        }
        for (NodeId t : targets_) {
            if (!ValidId(t)) {
                Diag("bad-fetch", -1,
                     "target references node id " + std::to_string(t) +
                         " outside the graph (" +
                         std::to_string(graph_.num_nodes()) + " nodes)");
                continue;
            }
            roots_.push_back(t);
        }
    }

    /**
     * BFS over data+control edges from the roots, validating every
     * edge as it is crossed. Invalid edges are diagnosed and skipped so
     * the walk (and later phases) can continue past them.
     */
    void
    CollectClosure()
    {
        std::deque<NodeId> frontier;
        for (NodeId r : roots_) {
            if (closure_.insert(r).second) {
                frontier.push_back(r);
            }
        }
        while (!frontier.empty()) {
            const NodeId id = frontier.front();
            frontier.pop_front();
            const Node& node = graph_.node(id);
            for (std::size_t k = 0; k < node.inputs.size(); ++k) {
                const Output& in = node.inputs[k];
                if (!ValidId(in.node)) {
                    Diag("dangling-input", id,
                         "input " + std::to_string(k) +
                             " references node id " +
                             std::to_string(in.node) + " outside the graph");
                    continue;
                }
                const Node& producer = graph_.node(in.node);
                if (in.index < 0 || in.index >= producer.num_outputs) {
                    Diag("dangling-input", id,
                         "input " + std::to_string(k) + " reads output " +
                             std::to_string(in.index) + " of '" +
                             producer.name + "', which has " +
                             std::to_string(producer.num_outputs) +
                             " outputs");
                    continue;
                }
                if (closure_.insert(in.node).second) {
                    frontier.push_back(in.node);
                }
            }
            for (NodeId c : node.control_inputs) {
                if (!ValidId(c)) {
                    Diag("dangling-control", id,
                         "control input references node id " +
                             std::to_string(c) + " outside the graph");
                    continue;
                }
                if (c == id) {
                    Diag("dangling-control", id,
                         "control input references the node itself");
                    continue;
                }
                if (closure_.insert(c).second) {
                    frontier.push_back(c);
                }
            }
        }
    }

    /**
     * Kahn's algorithm over the closure (valid edges only), smallest
     * node id first so the order — and any cycle diagnostic — is
     * deterministic. Unlike Graph::TopologicalOrder, a cycle here
     * produces a named diagnostic instead of a thrown logic_error.
     */
    void
    TopologicalSort()
    {
        // Node ids are dense, so plain id-indexed vectors beat hash
        // maps here; -1 marks ids outside the closure.
        const std::size_t n = static_cast<std::size_t>(graph_.num_nodes());
        std::vector<int> indegree(n, -1);
        std::vector<std::vector<NodeId>> dependents(n);
        for (NodeId id : closure_) {
            indegree[static_cast<std::size_t>(id)] = 0;
        }
        auto add_edge = [&](NodeId from, NodeId to) {
            if (indegree[static_cast<std::size_t>(from)] < 0) {
                return;  // edge out of an invalid/unwalked reference.
            }
            dependents[static_cast<std::size_t>(from)].push_back(to);
            ++indegree[static_cast<std::size_t>(to)];
        };
        for (NodeId id : closure_) {
            const Node& node = graph_.node(id);
            for (const Output& in : node.inputs) {
                if (ValidId(in.node)) {
                    add_edge(in.node, id);
                }
            }
            for (NodeId c : node.control_inputs) {
                if (ValidId(c) && c != id) {
                    add_edge(c, id);
                }
            }
        }
        // Min-heap over ready ids (std::set doubles as one).
        std::set<NodeId> ready;
        for (std::size_t id = 0; id < n; ++id) {
            if (indegree[id] == 0) {
                ready.insert(static_cast<NodeId>(id));
            }
        }
        order_.reserve(closure_.size());
        while (!ready.empty()) {
            const NodeId id = *ready.begin();
            ready.erase(ready.begin());
            order_.push_back(id);
            for (NodeId d : dependents[static_cast<std::size_t>(id)]) {
                if (--indegree[static_cast<std::size_t>(d)] == 0) {
                    ready.insert(d);
                }
            }
        }
        if (order_.size() < closure_.size()) {
            // Name the smallest-id node stuck in the cycle.
            NodeId stuck = -1;
            for (std::size_t id = 0; id < n; ++id) {
                if (indegree[id] > 0) {
                    stuck = static_cast<NodeId>(id);
                    break;
                }
            }
            Diag("cycle", stuck,
                 "node is part of a dependency cycle (" +
                     std::to_string(closure_.size() - order_.size()) +
                     " nodes unresolvable)");
        }
    }

    /**
     * Folds the per-op shape fns over the topological order. A node
     * whose op is unregistered or shape-fn-less, or whose fn throws,
     * is diagnosed and left with unknown outputs so inference
     * continues downstream.
     */
    void
    InferTypes()
    {
        // Id-indexed view into report_.types (whose node-based storage
        // keeps the pointers stable), so each input edge resolves its
        // producer's types in O(1) instead of a hash walk.
        std::vector<const std::vector<TypeInfo>*> typed(
            static_cast<std::size_t>(graph_.num_nodes()), nullptr);
        report_.types.reserve(order_.size());
        for (NodeId id : order_) {
            const Node& node = graph_.node(id);
            std::vector<TypeInfo>& out = report_.types[id];
            out.assign(static_cast<std::size_t>(std::max(node.num_outputs, 0)),
                       TypeInfo::Unknown());
            typed[static_cast<std::size_t>(id)] = &out;

            const OpHooks& hooks = LookupHooks(node.op_type);
            if (hooks.def == nullptr) {
                Diag("unknown-op", id,
                     "op type '" + node.op_type + "' is not registered");
                continue;
            }
            const ShapeFn* fn = hooks.shape_fn;
            if (fn == nullptr) {
                Diag("missing-shape-fn", id,
                     "op type '" + node.op_type +
                         "' has no shape/dtype inference function");
                continue;
            }

            std::vector<TypeInfo> inputs;
            inputs.reserve(node.inputs.size());
            for (const Output& in : node.inputs) {
                TypeInfo t = TypeInfo::Unknown();
                if (ValidId(in.node)) {
                    const std::vector<TypeInfo>* produced =
                        typed[static_cast<std::size_t>(in.node)];
                    if (produced != nullptr && in.index >= 0 &&
                        static_cast<std::size_t>(in.index) <
                            produced->size()) {
                        t = (*produced)[static_cast<std::size_t>(in.index)];
                    }
                }
                inputs.push_back(std::move(t));
            }

            InferenceContext ctx(node, std::move(inputs), options_.variables);
            try {
                (*fn)(ctx);
                out = ctx.outputs();
            } catch (const std::exception& e) {
                Diag("shape-inference", id, e.what());
            }
            if (ctx.produces_no_output()) {
                no_output_.insert(id);
            }
            // Feed seeds override whatever the Placeholder fn left.
            if (node.op_type == "Placeholder") {
                auto seed = options_.feed_types.find(id);
                if (seed != options_.feed_types.end() && !out.empty()) {
                    out[0] = seed->second;
                }
            }
        }
    }

    void
    CheckFetches()
    {
        for (const Output& f : fetches_) {
            if (!ValidId(f.node)) {
                continue;  // already diagnosed in CollectRoots.
            }
            const Node& node = graph_.node(f.node);
            if (f.index < 0 || f.index >= node.num_outputs) {
                Diag("bad-fetch", f.node,
                     "fetch reads output " + std::to_string(f.index) +
                         " but the node has " +
                         std::to_string(node.num_outputs) + " outputs");
                continue;
            }
            const NodeId producer = Resolve(f.node);
            if (no_output_.count(producer) > 0) {
                const Node& p = graph_.node(producer);
                Diag("bad-fetch", f.node,
                     "fetch reads '" + p.name + "' (" + p.op_type +
                         "), whose kernel produces no output value — "
                         "run it as a target instead");
            }
        }
    }

    /**
     * Determinism lint: rewrite-produced nodes must be pure; in frozen
     * mode nothing may be stateful; and with plan facts, no reachable
     * stateful op may have been folded, replaced, or dropped from the
     * plan order (the barrier sequence must survive rewriting intact).
     */
    void
    LintDeterminism()
    {
        std::unordered_set<NodeId> live;
        if (plan_ != nullptr && plan_->order != nullptr) {
            live.insert(plan_->order->begin(), plan_->order->end());
        }
        for (NodeId id : order_) {
            const Node& node = graph_.node(id);
            const OpDef* def = LookupDef(node.op_type);
            if (def == nullptr || !def->stateful) {
                if (def != nullptr && IsRewriteProduced(node.name) &&
                    rewrite::RewriteState::IsPinned(node.op_type)) {
                    Diag("determinism", id,
                         "rewrite-produced node has pinned op type '" +
                             node.op_type + "'");
                }
                continue;
            }
            if (IsRewriteProduced(node.name)) {
                Diag("determinism", id,
                     "rewrite-produced node has a stateful kernel ('" +
                         node.op_type + "' is not registered pure)");
            }
            if (options_.frozen) {
                Diag("determinism", id,
                     "stateful op '" + node.op_type +
                         "' in a frozen (reentrant, side-effect-free) plan");
            }
            if (plan_ == nullptr || plan_->order == nullptr) {
                continue;
            }
            if (plan_->folded != nullptr && plan_->folded->count(id) > 0) {
                Diag("determinism", id,
                     "stateful op '" + node.op_type +
                         "' was constant-folded by a rewrite");
            } else if (plan_->replacements != nullptr &&
                       plan_->replacements->count(id) > 0) {
                Diag("determinism", id,
                     "stateful op '" + node.op_type +
                         "' was replaced by a rewrite");
            } else if (live.count(id) == 0) {
                Diag("determinism", id,
                     "stateful op '" + node.op_type +
                         "' reachable from the roots is missing from the "
                         "plan order (barrier dropped)");
            }
        }
    }

    /**
     * Aliasing lint: re-derives, for every step the rewriter marked
     * in-place, the full static proof that the step's first input dies
     * there — mirroring RewriteState::MarkInPlaceSteps condition for
     * condition. Any marked step failing a condition is unsafe: the
     * kernel could overwrite a buffer another step still reads.
     */
    void
    LintInPlace()
    {
        const std::vector<NodeId>& order = *plan_->order;
        const std::vector<char>& inplace = *plan_->inplace;
        if (inplace.size() != order.size()) {
            Diag("inplace", -1,
                 "inplace vector size: expected " +
                     std::to_string(order.size()) + " (plan steps), got " +
                     std::to_string(inplace.size()));
            return;
        }
        std::unordered_set<NodeId> live(order.begin(), order.end());
        std::unordered_set<NodeId> protected_nodes;
        for (const Output& f : fetches_) {
            if (ValidId(f.node)) {
                protected_nodes.insert(Resolve(f.node));
            }
        }
        for (NodeId t : targets_) {
            if (ValidId(t)) {
                protected_nodes.insert(Resolve(t));
            }
        }
        // Use count per resolved edge over the live plan's data reads.
        std::unordered_map<std::uint64_t, int> edge_uses;
        for (NodeId id : order) {
            for (const Output& in : graph_.node(id).inputs) {
                if (ValidId(in.node)) {
                    ++edge_uses[EdgeKey({Resolve(in.node), in.index})];
                }
            }
        }

        for (std::size_t i = 0; i < order.size(); ++i) {
            if (!inplace[i]) {
                continue;
            }
            const NodeId id = order[i];
            const Node& node = graph_.node(id);
            const OpDef* def = LookupDef(node.op_type);
            if (def == nullptr || !def->supports_inplace) {
                Diag("inplace", id,
                     "step marked in-place but kernel '" + node.op_type +
                         "' does not support in-place execution");
                continue;
            }
            if (node.inputs.empty()) {
                Diag("inplace", id,
                     "step marked in-place but the node has no inputs");
                continue;
            }
            if (!ValidId(node.inputs[0].node)) {
                continue;  // dangling input, already diagnosed.
            }
            const Output e0 = {Resolve(node.inputs[0].node),
                               node.inputs[0].index};
            if (e0.index != 0) {
                Diag("inplace", id,
                     "step marked in-place but input 0 reads output " +
                         std::to_string(e0.index) +
                         " (only output 0 aliasing is provable)");
                continue;
            }
            const Node& producer = graph_.node(e0.node);
            if (live.count(e0.node) == 0) {
                Diag("inplace", id,
                     "in-place input producer '" + producer.name +
                         "' is not a live plan step");
                continue;
            }
            if (protected_nodes.count(e0.node) > 0) {
                Diag("inplace", id,
                     "in-place input producer '" + producer.name +
                         "' is a fetched/target value and must survive "
                         "the step");
                continue;
            }
            if (producer.num_outputs != 1 ||
                rewrite::RewriteState::IsPinned(producer.op_type) ||
                producer.op_type == "Const" ||
                rewrite::RewriteState::IsViewOp(producer.op_type)) {
                Diag("inplace", id,
                     "in-place input producer '" + producer.name + "' (" +
                         producer.op_type +
                         ") does not own a private single-output buffer");
                continue;
            }
            const OpDef* pdef = LookupDef(producer.op_type);
            if (pdef == nullptr || pdef->stateful) {
                Diag("inplace", id,
                     "in-place input producer '" + producer.name +
                         "' is stateful or unregistered");
                continue;
            }
            auto uses = edge_uses.find(EdgeKey(e0));
            const int use_count = uses == edge_uses.end() ? 0 : uses->second;
            if (use_count != 1) {
                Diag("inplace", id,
                     "in-place input of '" + producer.name +
                         "' has use count: expected 1, got " +
                         std::to_string(use_count));
            }
        }
    }

    /**
     * Liveness lint: recomputes the memory planner's facts — per-step
     * producer lists, consumer counts, and early-release eligibility —
     * independently from the resolved data edges, and compares them to
     * what the planner resolved (mirrors the derivation in
     * Session::GetPlan).
     */
    void
    LintLiveness()
    {
        const std::vector<NodeId>& order = *plan_->order;
        const std::size_t n = order.size();

        std::vector<std::int32_t> step_of(
            static_cast<std::size_t>(graph_.num_nodes()), -1);
        for (std::size_t i = 0; i < n; ++i) {
            if (ValidId(order[i])) {
                step_of[static_cast<std::size_t>(order[i])] =
                    static_cast<std::int32_t>(i);
            }
        }
        std::unordered_set<NodeId> fetched;
        for (const Output& f : fetches_) {
            if (ValidId(f.node)) {
                fetched.insert(Resolve(f.node));
            }
        }

        std::vector<std::vector<std::int32_t>> producers(n);
        std::vector<std::int32_t> consumers(n, 0);
        std::vector<char> releasable(n, 0);
        for (std::size_t i = 0; i < n; ++i) {
            const Node& node = graph_.node(order[i]);
            const OpDef* def =
                node.op_type == "Placeholder" ? nullptr : LookupDef(node.op_type);
            releasable[i] = def != nullptr && !def->stateful &&
                            node.op_type != "Variable" &&
                            node.op_type != "Const" &&
                            fetched.count(order[i]) == 0;
            for (const Output& in : node.inputs) {
                if (!ValidId(in.node)) {
                    continue;
                }
                const NodeId p = Resolve(in.node);
                if (ValidId(p) &&
                    step_of[static_cast<std::size_t>(p)] >= 0) {
                    producers[i].push_back(
                        step_of[static_cast<std::size_t>(p)]);
                }
            }
            std::sort(producers[i].begin(), producers[i].end());
            producers[i].erase(
                std::unique(producers[i].begin(), producers[i].end()),
                producers[i].end());
            for (std::int32_t p : producers[i]) {
                ++consumers[static_cast<std::size_t>(p)];
            }
        }

        auto size_diag = [&](const char* what, std::size_t got) {
            Diag("liveness", -1,
                 std::string(what) + " size: expected " + std::to_string(n) +
                     " (plan steps), got " + std::to_string(got));
        };
        if (plan_->consumer_count != nullptr) {
            if (plan_->consumer_count->size() != n) {
                size_diag("consumer_count", plan_->consumer_count->size());
            } else {
                for (std::size_t i = 0; i < n; ++i) {
                    if ((*plan_->consumer_count)[i] != consumers[i]) {
                        Diag("liveness", order[i],
                             "consumer count: expected " +
                                 std::to_string(consumers[i]) + ", got " +
                                 std::to_string((*plan_->consumer_count)[i]) +
                                 " — a buffer would be freed " +
                                 ((*plan_->consumer_count)[i] < consumers[i]
                                      ? "before its last reader"
                                      : "late (leak until step end)"));
                    }
                }
            }
        }
        if (plan_->input_producers != nullptr) {
            if (plan_->input_producers->size() != n) {
                size_diag("input_producers", plan_->input_producers->size());
            } else {
                for (std::size_t i = 0; i < n; ++i) {
                    if ((*plan_->input_producers)[i] != producers[i]) {
                        Diag("liveness", order[i],
                             "producer list: expected " +
                                 std::to_string(producers[i].size()) +
                                 " distinct producer steps, planner "
                                 "resolved " +
                                 std::to_string(
                                     (*plan_->input_producers)[i].size()));
                    }
                }
            }
        }
        if (plan_->releasable != nullptr) {
            if (plan_->releasable->size() != n) {
                size_diag("releasable", plan_->releasable->size());
            } else {
                for (std::size_t i = 0; i < n; ++i) {
                    // Releasing an exempt value is the dangerous
                    // direction; extra retention is merely conservative.
                    if ((*plan_->releasable)[i] && !releasable[i]) {
                        Diag("liveness", order[i],
                             "marked releasable but is a fetched, "
                             "stateful, or state-reading step");
                    }
                }
            }
        }
    }

    const Graph& graph_;
    const std::vector<Output>& fetches_;
    const std::vector<NodeId>& targets_;
    const VerifyOptions& options_;
    const PlanFacts* plan_;

    VerifyReport report_;
    std::vector<NodeId> roots_;
    std::unordered_set<NodeId> closure_;
    std::vector<NodeId> order_;
    std::unordered_set<NodeId> no_output_;
    std::unordered_map<std::string, OpHooks> op_cache_;
};

}  // namespace

std::string
Diagnostic::ToString() const
{
    std::ostringstream out;
    out << "[" << check << "]";
    if (!node.empty()) {
        out << " node '" << node << "':";
    }
    out << " " << message;
    return out.str();
}

std::string
VerifyReport::ToString() const
{
    std::ostringstream out;
    if (ok()) {
        out << "graph verification OK (" << nodes_checked
            << " nodes checked)";
        return out.str();
    }
    out << "graph verification failed: " << diagnostics.size()
        << " violation(s) across " << nodes_checked << " nodes";
    for (const Diagnostic& d : diagnostics) {
        out << "\n  " << d.ToString();
    }
    return out.str();
}

VerifyReport
Verify(const Graph& graph, const std::vector<Output>& fetches,
       const std::vector<NodeId>& targets, const VerifyOptions& options,
       const PlanFacts* plan)
{
    Verifier verifier(graph, fetches, targets, options, plan);
    VerifyReport report = verifier.Run();
    if (telemetry::MetricsEnabled()) {
        VerifyMetrics& m = VerifyMetrics::Get();
        m.runs.Add(1);
        m.violations.Add(report.diagnostics.size());
    }
    return report;
}

void
VerifyOrThrow(const Graph& graph, const std::vector<Output>& fetches,
              const std::vector<NodeId>& targets,
              const VerifyOptions& options, const PlanFacts* plan)
{
    VerifyReport report = Verify(graph, fetches, targets, options, plan);
    if (!report.ok()) {
        throw std::invalid_argument(report.ToString());
    }
}

}  // namespace fathom::graph::verify
