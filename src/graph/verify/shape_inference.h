/**
 * @file
 * Per-op static shape/dtype inference.
 *
 * Every registered operation carries a ShapeFn next to its kernel and
 * cost hook: a pure function from the static types of a node's inputs
 * (plus its attrs and, for Variable/Const reads, the variable store) to
 * the static types of its outputs. The graph verifier folds these
 * functions over a topological order to type a whole graph before any
 * kernel runs, exactly as TensorFlow validates graphs with per-op shape
 * functions before placement.
 *
 * Types are optionally known: a Placeholder carries no shape attr, so
 * its type is unknown until the verifier seeds it from a feed tensor
 * (Session::Run) or a serving TensorSpec (FrozenPlan::Freeze). Shape
 * functions must degrade gracefully — check what is known, propagate
 * what is derivable, and leave the rest unknown — so the same function
 * serves both the fully-seeded plan-build check and the unseeded
 * whole-graph lint (tools/graph_lint).
 *
 * Failures throw InferenceError with the node name baked into the
 * message ("node 'x' (Op): ..."); the verifier converts them into named
 * diagnostics instead of letting them escape.
 */
#ifndef FATHOM_GRAPH_VERIFY_SHAPE_INFERENCE_H
#define FATHOM_GRAPH_VERIFY_SHAPE_INFERENCE_H

#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/node.h"
#include "graph/op_registry.h"
#include "tensor/shape.h"

namespace fathom::graph::verify {

/** A shape-inference failure, carrying the offending node's name. */
class InferenceError : public std::invalid_argument {
  public:
    explicit InferenceError(const std::string& message)
        : std::invalid_argument(message)
    {
    }
};

/**
 * The statically known type of one tensor value: dtype and shape are
 * independently optional (a fed placeholder of declared dtype may have
 * an unknown batch-dependent shape, and vice versa).
 */
struct TypeInfo {
    bool has_dtype = false;
    DType dtype = DType::kFloat32;
    bool has_shape = false;
    Shape shape;

    static TypeInfo Unknown() { return {}; }

    static TypeInfo
    Of(DType d, Shape s)
    {
        TypeInfo t;
        t.has_dtype = true;
        t.dtype = d;
        t.has_shape = true;
        t.shape = std::move(s);
        return t;
    }

    static TypeInfo
    OfDType(DType d)
    {
        TypeInfo t;
        t.has_dtype = true;
        t.dtype = d;
        return t;
    }

    bool fully_known() const { return has_dtype && has_shape; }

    bool
    operator==(const TypeInfo& other) const
    {
        return has_dtype == other.has_dtype && has_shape == other.has_shape &&
               (!has_dtype || dtype == other.dtype) &&
               (!has_shape || shape == other.shape);
    }

    /** @return e.g. "float32[2, 3]", "int32[?]", "?[?]". */
    std::string ToString() const;
};

/**
 * Everything one shape function sees: the node (attrs), the inferred
 * input types, and the variable store for Variable/Const resolution.
 * Output types default to Unknown; functions overwrite what they can
 * derive and Fail() on provable inconsistencies.
 */
class InferenceContext {
  public:
    InferenceContext(const Node& node, std::vector<TypeInfo> inputs,
                     const VariableStore* variables)
        : node_(node), inputs_(std::move(inputs)), variables_(variables)
    {
        outputs_.resize(static_cast<std::size_t>(node.num_outputs));
    }

    const Node& node() const { return node_; }
    int num_inputs() const { return static_cast<int>(inputs_.size()); }

    const TypeInfo& input(int i) const;

    /** Input @p i's dtype/shape are statically known. */
    bool KnownDType(int i) const { return input(i).has_dtype; }
    bool KnownShape(int i) const { return input(i).has_shape; }

    /** @return the variable store, or null in store-free contexts. */
    const VariableStore* variables() const { return variables_; }

    void set_output(int i, TypeInfo type);
    int num_outputs() const { return static_cast<int>(outputs_.size()); }
    std::vector<TypeInfo>& outputs() { return outputs_; }

    /**
     * Declares that this op's kernel produces no output values at all
     * (Assign, Apply*, NoOp). Fetching any output of such a node is a
     * static error the verifier reports.
     */
    void MarkProducesNoOutput() { produces_no_output_ = true; }
    bool produces_no_output() const { return produces_no_output_; }

    /** Throws InferenceError("node 'name' (Op): message"). */
    [[noreturn]] void Fail(const std::string& message) const;

    // ---- attr schema helpers (Fail on missing/mistyped attrs) ----------

    std::int64_t RequireIntAttr(const std::string& key) const;
    float RequireFloatAttr(const std::string& key) const;
    const std::string& RequireStringAttr(const std::string& key) const;
    const std::vector<std::int64_t>& RequireIntListAttr(
        const std::string& key) const;

    // ---- expectation helpers (no-ops on unknown inputs) ----------------

    /** Fails "expected/got" if input @p i's dtype is known and differs. */
    void ExpectDType(int i, DType expected) const;

    /** Fails if input @p i's rank is known and differs. */
    void ExpectRank(int i, int expected) const;

    /** Fails if both shapes are known and differ. */
    void ExpectSameShape(int a, int b) const;

  private:
    const Node& node_;
    std::vector<TypeInfo> inputs_;
    std::vector<TypeInfo> outputs_;
    const VariableStore* variables_;
    bool produces_no_output_ = false;
};

/** One op type's static inference function. */
using ShapeFn = std::function<void(InferenceContext&)>;

/**
 * The registry of shape functions, keyed by op type. Populated by
 * ops::RegisterStandardOps alongside each kernel registration; the
 * registry audit test fails by name on any op missing an entry.
 */
class ShapeFnRegistry {
  public:
    static ShapeFnRegistry& Global();

    /** Registers a shape fn; throws std::logic_error on duplicates. */
    void Register(const std::string& op_type, ShapeFn fn);

    /** @return the fn, or null if the op type has none. */
    const ShapeFn* Find(const std::string& op_type) const;

    bool Contains(const std::string& op_type) const;

    /** @return all op types with a shape fn, sorted. */
    std::vector<std::string> Names() const;

  private:
    std::map<std::string, ShapeFn> fns_;
};

/**
 * NumPy-style broadcast of two known shapes.
 * @throws InferenceError-compatible std::invalid_argument on
 *         incompatible extents.
 */
Shape BroadcastShapes(const Shape& a, const Shape& b);

}  // namespace fathom::graph::verify

#endif  // FATHOM_GRAPH_VERIFY_SHAPE_INFERENCE_H
