/**
 * @file
 * The dataflow graph container.
 */
#ifndef FATHOM_GRAPH_GRAPH_H
#define FATHOM_GRAPH_GRAPH_H

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/node.h"

namespace fathom::graph {

/**
 * An append-only DAG of operation nodes.
 *
 * Nodes are added during model construction and never removed; the
 * executor selects the subgraph reachable from the fetched outputs at
 * plan time (dead nodes cost nothing at run time, as in TensorFlow's
 * graph pruning).
 */
class Graph {
  public:
    Graph() = default;

    Graph(const Graph&) = delete;
    Graph& operator=(const Graph&) = delete;

    /**
     * Adds a node.
     *
     * @param name unique node name; a numeric suffix is appended on
     *             collision, so builders may reuse readable stems.
     * @return the new node's id.
     * @throws std::invalid_argument if an input references a missing
     *         node/output.
     */
    NodeId AddNode(std::string name, std::string op_type,
                   std::vector<Output> inputs,
                   std::map<std::string, AttrValue> attrs = {},
                   int num_outputs = 1);

    /** Adds a control (order-only) edge: @p before runs before @p node. */
    void AddControlEdge(NodeId before, NodeId node);

    const Node& node(NodeId id) const;
    Node& mutable_node(NodeId id);

    /** @return node by unique name; throws if absent. */
    const Node& node_by_name(const std::string& name) const;

    /** @return id of the node named @p name, or -1 if absent. */
    NodeId FindNode(const std::string& name) const;

    /** @return total node count. */
    int num_nodes() const { return static_cast<int>(nodes_.size()); }

    /** @return all node ids in insertion order. */
    std::vector<NodeId> AllNodes() const;

    /**
     * @return ids of the subgraph needed to produce @p targets (their
     * transitive data+control closure), in a valid topological
     * execution order.
     * @throws std::logic_error if a cycle is found.
     */
    std::vector<NodeId> TopologicalOrder(const std::vector<NodeId>& targets) const;

    /** @return a multi-line structural dump for debugging/inspection. */
    std::string DebugString() const;

  private:
    std::vector<std::unique_ptr<Node>> nodes_;
    std::unordered_map<std::string, NodeId> by_name_;
};

}  // namespace fathom::graph

#endif  // FATHOM_GRAPH_GRAPH_H
