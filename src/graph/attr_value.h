/**
 * @file
 * Typed attribute values attached to graph nodes.
 *
 * Attributes carry the static configuration of an operation (strides,
 * padding, axes, transpose flags, ...) exactly as TensorFlow's NodeDef
 * attrs do. They are set at graph-construction time and immutable
 * afterwards.
 */
#ifndef FATHOM_GRAPH_ATTR_VALUE_H
#define FATHOM_GRAPH_ATTR_VALUE_H

#include <cstdint>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace fathom::graph {

/** A single typed attribute value. */
class AttrValue {
  public:
    AttrValue() : value_(std::int64_t{0}) {}
    AttrValue(std::int64_t v) : value_(v) {}
    AttrValue(int v) : value_(static_cast<std::int64_t>(v)) {}
    AttrValue(float v) : value_(v) {}
    AttrValue(bool v) : value_(v) {}
    AttrValue(std::string v) : value_(std::move(v)) {}
    AttrValue(const char* v) : value_(std::string(v)) {}
    AttrValue(std::vector<std::int64_t> v) : value_(std::move(v)) {}

    std::int64_t
    AsInt() const
    {
        if (auto* v = std::get_if<std::int64_t>(&value_)) {
            return *v;
        }
        throw std::logic_error("AttrValue: not an int");
    }

    float
    AsFloat() const
    {
        if (auto* v = std::get_if<float>(&value_)) {
            return *v;
        }
        if (auto* v = std::get_if<std::int64_t>(&value_)) {
            return static_cast<float>(*v);
        }
        throw std::logic_error("AttrValue: not a float");
    }

    bool
    AsBool() const
    {
        if (auto* v = std::get_if<bool>(&value_)) {
            return *v;
        }
        throw std::logic_error("AttrValue: not a bool");
    }

    const std::string&
    AsString() const
    {
        if (auto* v = std::get_if<std::string>(&value_)) {
            return *v;
        }
        throw std::logic_error("AttrValue: not a string");
    }

    const std::vector<std::int64_t>&
    AsIntList() const
    {
        if (auto* v = std::get_if<std::vector<std::int64_t>>(&value_)) {
            return *v;
        }
        throw std::logic_error("AttrValue: not an int list");
    }

  private:
    std::variant<std::int64_t, float, bool, std::string,
                 std::vector<std::int64_t>>
        value_;
};

}  // namespace fathom::graph

#endif  // FATHOM_GRAPH_ATTR_VALUE_H
