#include "graph/graph_builder.h"

#include <stdexcept>

namespace fathom::graph {

GraphBuilder::GraphBuilder(Graph* graph, VariableStore* variables)
    : graph_(graph), variables_(variables)
{
    if (graph_ == nullptr || variables_ == nullptr) {
        throw std::invalid_argument("GraphBuilder: null graph or variables");
    }
}

void
GraphBuilder::PushScope(const std::string& scope)
{
    scopes_.push_back(scope);
}

void
GraphBuilder::PopScope()
{
    if (scopes_.empty()) {
        throw std::logic_error("GraphBuilder::PopScope: scope stack empty");
    }
    scopes_.pop_back();
}

std::string
GraphBuilder::Scoped(const std::string& name) const
{
    std::string full;
    for (const auto& s : scopes_) {
        full += s;
        full += "/";
    }
    full += name;
    return full;
}

NodeId
GraphBuilder::AddNode(const std::string& name, const std::string& op_type,
                      std::vector<Output> inputs,
                      std::map<std::string, AttrValue> attrs, int num_outputs)
{
    return graph_->AddNode(Scoped(name), op_type, std::move(inputs),
                           std::move(attrs), num_outputs);
}

Output
GraphBuilder::AddOp(const std::string& name, const std::string& op_type,
                    std::vector<Output> inputs,
                    std::map<std::string, AttrValue> attrs)
{
    return Output{AddNode(name, op_type, std::move(inputs), std::move(attrs),
                          1),
                  0};
}

// ---- sources -----------------------------------------------------------

Output
GraphBuilder::Placeholder(const std::string& name)
{
    return AddOp(name, "Placeholder", {});
}

Output
GraphBuilder::Const(const Tensor& value, const std::string& name)
{
    const NodeId id = AddNode(name, "Const", {});
    const std::string key =
        "__const/" + graph_->node(id).name;  // post-uniquification name.
    graph_->mutable_node(id).attrs["var_name"] = AttrValue(key);
    variables_->Set(key, value.Clone());
    return Output{id, 0};
}

Output
GraphBuilder::ScalarConst(float value, const std::string& name)
{
    return Const(Tensor::Scalar(value), name);
}

Output
GraphBuilder::Variable(const std::string& name, const Tensor& init,
                       std::string* out_var_name)
{
    const NodeId id = AddNode(name, "Variable", {});
    const std::string key = graph_->node(id).name;
    graph_->mutable_node(id).attrs["var_name"] = AttrValue(key);
    variables_->Set(key, init.Clone());
    if (out_var_name != nullptr) {
        *out_var_name = key;
    }
    return Output{id, 0};
}

// ---- data movement -----------------------------------------------------

Output
GraphBuilder::Identity(Output x, const std::string& name)
{
    return AddOp(name, "Identity", {x});
}

Output
GraphBuilder::StopGradient(Output x)
{
    return AddOp("stop_gradient", "StopGradient", {x});
}

Output
GraphBuilder::Reshape(Output x, const std::vector<std::int64_t>& shape)
{
    return AddOp("reshape", "Reshape", {x}, {{"shape", AttrValue(shape)}});
}

Output
GraphBuilder::Transpose(Output x, const std::vector<std::int64_t>& perm)
{
    return AddOp("transpose", "Transpose", {x}, {{"perm", AttrValue(perm)}});
}

Output
GraphBuilder::Concat(const std::vector<Output>& xs, int axis)
{
    return AddOp("concat", "Concat", xs,
                 {{"axis", AttrValue(static_cast<std::int64_t>(axis))}});
}

Output
GraphBuilder::Slice(Output x, const std::vector<std::int64_t>& begin,
                    const std::vector<std::int64_t>& size)
{
    return AddOp("slice", "Slice", {x},
                 {{"begin", AttrValue(begin)}, {"size", AttrValue(size)}});
}

std::vector<Output>
GraphBuilder::Split(Output x, int axis, int num_splits)
{
    const NodeId id = AddNode(
        "split", "Split", {x},
        {{"axis", AttrValue(static_cast<std::int64_t>(axis))},
         {"num_splits", AttrValue(static_cast<std::int64_t>(num_splits))}},
        num_splits);
    std::vector<Output> outputs;
    outputs.reserve(static_cast<std::size_t>(num_splits));
    for (int i = 0; i < num_splits; ++i) {
        outputs.push_back(Output{id, i});
    }
    return outputs;
}

Output
GraphBuilder::Gather(Output params, Output indices)
{
    return AddOp("gather", "Gather", {params, indices});
}

Output
GraphBuilder::OneHot(Output indices, std::int64_t depth, float on, float off)
{
    return AddOp("one_hot", "OneHot", {indices},
                 {{"depth", AttrValue(depth)},
                  {"on_value", AttrValue(on)},
                  {"off_value", AttrValue(off)}});
}

Output
GraphBuilder::Pad(Output x, const std::vector<std::int64_t>& paddings)
{
    return AddOp("pad", "Pad", {x}, {{"paddings", AttrValue(paddings)}});
}

Output
GraphBuilder::Tile(Output x, const std::vector<std::int64_t>& multiples)
{
    return AddOp("tile", "Tile", {x},
                 {{"multiples", AttrValue(multiples)}});
}

Output
GraphBuilder::ShapeOp(Output x)
{
    return AddOp("shape", "Shape", {x});
}

// ---- elementwise -------------------------------------------------------

Output
GraphBuilder::Add(Output a, Output b)
{
    return AddOp("add", "Add", {a, b});
}

Output
GraphBuilder::Sub(Output a, Output b)
{
    return AddOp("sub", "Sub", {a, b});
}

Output
GraphBuilder::Mul(Output a, Output b)
{
    return AddOp("mul", "Mul", {a, b});
}

Output
GraphBuilder::Div(Output a, Output b)
{
    return AddOp("div", "Div", {a, b});
}

Output
GraphBuilder::AddN(const std::vector<Output>& xs)
{
    if (xs.size() == 1) {
        return xs[0];
    }
    return AddOp("add_n", "AddN", xs);
}

Output
GraphBuilder::Neg(Output x)
{
    return AddOp("neg", "Neg", {x});
}

Output
GraphBuilder::Exp(Output x)
{
    return AddOp("exp", "Exp", {x});
}

Output
GraphBuilder::Log(Output x)
{
    return AddOp("log", "Log", {x});
}

Output
GraphBuilder::Sqrt(Output x)
{
    return AddOp("sqrt", "Sqrt", {x});
}

Output
GraphBuilder::Square(Output x)
{
    return AddOp("square", "Square", {x});
}

Output
GraphBuilder::Pow(Output x, float exponent)
{
    return AddOp("pow", "Pow", {x}, {{"exponent", AttrValue(exponent)}});
}

Output
GraphBuilder::Relu(Output x)
{
    return AddOp("relu", "Relu", {x});
}

Output
GraphBuilder::ClipByValue(Output x, float clip_min, float clip_max)
{
    return AddOp("clip", "ClipByValue", {x},
                 {{"clip_min", AttrValue(clip_min)},
                  {"clip_max", AttrValue(clip_max)}});
}

Output
GraphBuilder::Sigmoid(Output x)
{
    return AddOp("sigmoid", "Sigmoid", {x});
}

Output
GraphBuilder::Tanh(Output x)
{
    return AddOp("tanh", "Tanh", {x});
}

// ---- matrix / convolution ----------------------------------------------

Output
GraphBuilder::MatMul(Output a, Output b, bool transpose_a, bool transpose_b)
{
    return AddOp("matmul", "MatMul", {a, b},
                 {{"transpose_a", AttrValue(transpose_a)},
                  {"transpose_b", AttrValue(transpose_b)}});
}

Output
GraphBuilder::Conv2D(Output input, Output filter, std::int64_t stride,
                     const std::string& padding)
{
    return AddOp("conv2d", "Conv2D", {input, filter},
                 {{"stride", AttrValue(stride)},
                  {"padding", AttrValue(padding)}});
}

Output
GraphBuilder::MaxPool(Output input, std::int64_t window, std::int64_t stride,
                      const std::string& padding)
{
    return AddOp("max_pool", "MaxPool", {input},
                 {{"window", AttrValue(window)},
                  {"stride", AttrValue(stride)},
                  {"padding", AttrValue(padding)}});
}

Output
GraphBuilder::AvgPool(Output input, std::int64_t window, std::int64_t stride,
                      const std::string& padding)
{
    return AddOp("avg_pool", "AvgPool", {input},
                 {{"window", AttrValue(window)},
                  {"stride", AttrValue(stride)},
                  {"padding", AttrValue(padding)}});
}

Output
GraphBuilder::Lrn(Output input, std::int64_t depth_radius, float bias,
                  float alpha, float beta)
{
    return AddOp("lrn", "Lrn", {input},
                 {{"depth_radius", AttrValue(depth_radius)},
                  {"bias", AttrValue(bias)},
                  {"alpha", AttrValue(alpha)},
                  {"beta", AttrValue(beta)}});
}

std::vector<Output>
GraphBuilder::BatchNorm(Output x, Output gamma, Output beta, float epsilon)
{
    const NodeId id =
        AddNode("batch_norm", "BatchNorm", {x, gamma, beta},
                {{"epsilon", AttrValue(epsilon)}}, /*num_outputs=*/3);
    return {Output{id, 0}, Output{id, 1}, Output{id, 2}};
}

// ---- reduction / expansion ----------------------------------------------

Output
GraphBuilder::ReduceSum(Output x, const std::vector<std::int64_t>& axes,
                        bool keep_dims)
{
    return AddOp("sum", "ReduceSum", {x},
                 {{"axes", AttrValue(axes)},
                  {"keep_dims", AttrValue(keep_dims)}});
}

Output
GraphBuilder::ReduceMean(Output x, const std::vector<std::int64_t>& axes,
                         bool keep_dims)
{
    return AddOp("mean", "ReduceMean", {x},
                 {{"axes", AttrValue(axes)},
                  {"keep_dims", AttrValue(keep_dims)}});
}

Output
GraphBuilder::ReduceMax(Output x, const std::vector<std::int64_t>& axes,
                        bool keep_dims)
{
    return AddOp("max", "ReduceMax", {x},
                 {{"axes", AttrValue(axes)},
                  {"keep_dims", AttrValue(keep_dims)}});
}

Output
GraphBuilder::Softmax(Output logits)
{
    return AddOp("softmax", "Softmax", {logits});
}

Output
GraphBuilder::LogSoftmax(Output logits)
{
    return AddOp("log_softmax", "LogSoftmax", {logits});
}

Output
GraphBuilder::ArgMax(Output x)
{
    return AddOp("arg_max", "ArgMax", {x});
}

// ---- random sampling -----------------------------------------------------

Output
GraphBuilder::RandomNormal(const std::vector<std::int64_t>& shape, float mean,
                           float stddev)
{
    return AddOp("random_normal", "RandomNormal", {},
                 {{"shape", AttrValue(shape)},
                  {"mean", AttrValue(mean)},
                  {"stddev", AttrValue(stddev)}});
}

Output
GraphBuilder::RandomUniform(const std::vector<std::int64_t>& shape, float lo,
                            float hi)
{
    return AddOp("random_uniform", "RandomUniform", {},
                 {{"shape", AttrValue(shape)},
                  {"lo", AttrValue(lo)},
                  {"hi", AttrValue(hi)}});
}

Output
GraphBuilder::DropoutMask(Output like, float keep_prob)
{
    return AddOp("dropout_mask", "DropoutMask", {like},
                 {{"keep_prob", AttrValue(keep_prob)}});
}

// ---- losses / optimization -----------------------------------------------

std::vector<Output>
GraphBuilder::SoftmaxCrossEntropy(Output logits, Output labels)
{
    const NodeId id = AddNode("xent", "SoftmaxCrossEntropy", {logits, labels},
                              {}, /*num_outputs=*/2);
    return {Output{id, 0}, Output{id, 1}};
}

std::vector<Output>
GraphBuilder::CtcLoss(Output logits, Output labels, std::int64_t blank)
{
    const NodeId id = AddNode("ctc", "CtcLoss", {logits, labels},
                              {{"blank", AttrValue(blank)}},
                              /*num_outputs=*/2);
    return {Output{id, 0}, Output{id, 1}};
}

NodeId
GraphBuilder::ApplyGradientDescent(const std::string& var_name, Output grad,
                                   float lr)
{
    return AddNode("apply_sgd", "ApplyGradientDescent", {grad},
                   {{"var_name", AttrValue(var_name)}, {"lr", AttrValue(lr)}},
                   /*num_outputs=*/0);
}

NodeId
GraphBuilder::ApplyMomentum(const std::string& var_name, Output grad,
                            float lr, float momentum)
{
    return AddNode("apply_momentum", "ApplyMomentum", {grad},
                   {{"var_name", AttrValue(var_name)},
                    {"lr", AttrValue(lr)},
                    {"momentum", AttrValue(momentum)}},
                   /*num_outputs=*/0);
}

NodeId
GraphBuilder::ApplyRmsProp(const std::string& var_name, Output grad, float lr,
                           float decay, float epsilon)
{
    return AddNode("apply_rmsprop", "ApplyRMSProp", {grad},
                   {{"var_name", AttrValue(var_name)},
                    {"lr", AttrValue(lr)},
                    {"decay", AttrValue(decay)},
                    {"epsilon", AttrValue(epsilon)}},
                   /*num_outputs=*/0);
}

NodeId
GraphBuilder::ApplyAdam(const std::string& var_name, Output grad, float lr,
                        float beta1, float beta2, float epsilon)
{
    return AddNode("apply_adam", "ApplyAdam", {grad},
                   {{"var_name", AttrValue(var_name)},
                    {"lr", AttrValue(lr)},
                    {"beta1", AttrValue(beta1)},
                    {"beta2", AttrValue(beta2)},
                    {"epsilon", AttrValue(epsilon)}},
                   /*num_outputs=*/0);
}

NodeId
GraphBuilder::Assign(const std::string& var_name, Output value)
{
    return AddNode("assign", "Assign", {value},
                   {{"var_name", AttrValue(var_name)}},
                   /*num_outputs=*/0);
}

NodeId
GraphBuilder::Group(const std::vector<NodeId>& deps, const std::string& name)
{
    const NodeId id = AddNode(name, "NoOp", {}, {}, /*num_outputs=*/0);
    for (NodeId dep : deps) {
        graph_->AddControlEdge(dep, id);
    }
    return id;
}

}  // namespace fathom::graph
