#include "graph/op_class.h"

namespace fathom::graph {

std::string
OpClassName(OpClass c)
{
    switch (c) {
      case OpClass::kMatrixOps:
        return "MatrixOps";
      case OpClass::kConvolution:
        return "Convolution";
      case OpClass::kElementwise:
        return "ElementwiseArithmetic";
      case OpClass::kReductionExpansion:
        return "ReductionExpansion";
      case OpClass::kRandomSampling:
        return "RandomSampling";
      case OpClass::kOptimization:
        return "Optimization";
      case OpClass::kDataMovement:
        return "DataMovement";
      case OpClass::kControl:
        return "Control";
    }
    return "Unknown";
}

const std::array<OpClass, kNumOpClasses>&
AllOpClasses()
{
    static const std::array<OpClass, kNumOpClasses> kClasses = {
        OpClass::kMatrixOps,          OpClass::kConvolution,
        OpClass::kElementwise,        OpClass::kReductionExpansion,
        OpClass::kRandomSampling,     OpClass::kOptimization,
        OpClass::kDataMovement,       OpClass::kControl,
    };
    return kClasses;
}

}  // namespace fathom::graph
