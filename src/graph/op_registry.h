/**
 * @file
 * Operation definitions: kernels, cost models, and the registry.
 *
 * An operation here plays the same role as in TensorFlow (paper
 * Sec. V-A): a named primitive with a compute kernel, the smallest
 * schedulable unit, tagged with an OpClass for profiling and with a
 * cost function feeding the device model.
 */
#ifndef FATHOM_GRAPH_OP_REGISTRY_H
#define FATHOM_GRAPH_OP_REGISTRY_H

#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/node.h"
#include "graph/op_class.h"
#include "parallel/thread_pool.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace fathom::graph {

/**
 * Persistent named tensors (model parameters and mutable state).
 *
 * Variable nodes read from the store; Assign/Apply* nodes write to it
 * in place. Owned by the Session so state survives across Run() calls.
 */
class VariableStore {
  public:
    /** Creates or replaces variable @p name with @p value. */
    void Set(const std::string& name, Tensor value);

    /** @return the variable; throws std::out_of_range if absent. */
    Tensor& Get(const std::string& name);
    const Tensor& Get(const std::string& name) const;

    bool Contains(const std::string& name) const;

    /** @return all variable names in insertion order. */
    std::vector<std::string> Names() const;

    /** @return total parameter count across float32 variables. */
    std::int64_t TotalParameters() const;

  private:
    std::unordered_map<std::string, Tensor> values_;
    std::vector<std::string> order_;
};

/**
 * Static cost of one op execution, derived from real tensor shapes.
 *
 * The device model converts OpCost into simulated time; parallel_work
 * is the trip count of the kernel's parallelizable loop, which is what
 * determines whether the op scales with threads (paper Fig. 6).
 */
struct OpCost {
    double flops = 0.0;           ///< floating-point operations.
    double bytes = 0.0;           ///< bytes moved (inputs + outputs).
    std::int64_t parallel_work = 1;  ///< parallelizable trip count.
};

/** Everything a kernel sees while executing one node. */
class OpContext {
  public:
    /**
     * @param inputs borrowed input tensors, owned by the executor for
     *        the duration of the op (also handed to the cost hook).
     */
    OpContext(const Node& node, const std::vector<Tensor>* inputs,
              parallel::ThreadPool& pool, Rng& rng, VariableStore& variables)
        : node_(node), inputs_(inputs), pool_(pool), rng_(rng),
          variables_(variables)
    {
        outputs_.resize(static_cast<std::size_t>(node.num_outputs));
    }

    const Node& node() const { return node_; }

    int num_inputs() const { return static_cast<int>(inputs_->size()); }

    /** @return input tensor @p i; throws if out of range. */
    const Tensor& input(int i) const;

    /** Stores output tensor @p i. */
    void set_output(int i, Tensor value);

    /** @return previously set output @p i (for the executor). */
    std::vector<Tensor>& outputs() { return outputs_; }

    parallel::ThreadPool& pool() { return pool_; }
    Rng& rng() { return rng_; }
    VariableStore& variables() { return variables_; }

    /**
     * Executor grant: input 0's buffer dies at this op, so a kernel
     * whose OpDef sets supports_inplace may write its output there
     * instead of allocating. Purely an optimization hint — kernels must
     * produce identical bits either way.
     */
    bool may_alias_input() const { return may_alias_input_; }
    void set_may_alias_input(bool allow) { may_alias_input_ = allow; }

  private:
    const Node& node_;
    const std::vector<Tensor>* inputs_;
    std::vector<Tensor> outputs_;
    parallel::ThreadPool& pool_;
    Rng& rng_;
    VariableStore& variables_;
    bool may_alias_input_ = false;
};

/** Compute kernel: consumes ctx.input(i), produces ctx.set_output(i). */
using KernelFn = std::function<void(OpContext&)>;

/**
 * Cost model hook, evaluated after the kernel with real shapes.
 * Receives the node, its inputs, and its outputs.
 */
using CostFn = std::function<OpCost(const Node&, const std::vector<Tensor>&,
                                    const std::vector<Tensor>&)>;

/** Immutable definition of one operation type. */
struct OpDef {
    std::string name;
    OpClass op_class = OpClass::kControl;
    KernelFn kernel;
    CostFn cost;       ///< optional; defaults to a bytes-only estimate.
    bool stateful = false;  ///< mutates variables or draws randomness.

    /**
     * The kernel honors OpContext::may_alias_input(): when granted, it
     * may write its output into input 0's buffer (the rewrite layer
     * marks steps where that input provably dies at this op).
     */
    bool supports_inplace = false;
};

/**
 * The registry of operation types.
 *
 * Registration is explicit (ops::RegisterStandardOps) rather than via
 * static initializers, so the library is safe to link statically.
 */
class OpRegistry {
  public:
    /** @return the process-wide registry. */
    static OpRegistry& Global();

    /** Registers an op; throws std::logic_error on duplicate names. */
    void Register(OpDef def);

    /** @return the op definition; throws std::out_of_range if absent. */
    const OpDef& Lookup(const std::string& name) const;

    bool Contains(const std::string& name) const;

    /** @return all registered op type names, sorted. */
    std::vector<std::string> Names() const;

  private:
    std::map<std::string, OpDef> ops_;
};

}  // namespace fathom::graph

#endif  // FATHOM_GRAPH_OP_REGISTRY_H
