#include "graph/graph.h"

#include <sstream>
#include <stdexcept>

namespace fathom::graph {

NodeId
Graph::AddNode(std::string name, std::string op_type,
               std::vector<Output> inputs,
               std::map<std::string, AttrValue> attrs, int num_outputs)
{
    const NodeId id = static_cast<NodeId>(nodes_.size());
    for (const Output& in : inputs) {
        if (in.node < 0 || in.node >= id) {
            throw std::invalid_argument("Graph::AddNode('" + name +
                                        "'): input node id out of range");
        }
        if (in.index < 0 || in.index >= nodes_[static_cast<std::size_t>(
                                             in.node)]->num_outputs) {
            throw std::invalid_argument("Graph::AddNode('" + name +
                                        "'): input output-index out of range");
        }
    }

    // Uniquify the name with a numeric suffix if needed.
    std::string unique = name;
    int suffix = 1;
    while (by_name_.count(unique)) {
        unique = name + "_" + std::to_string(suffix++);
    }

    auto node = std::make_unique<Node>();
    node->id = id;
    node->name = unique;
    node->op_type = std::move(op_type);
    node->inputs = std::move(inputs);
    node->attrs = std::move(attrs);
    node->num_outputs = num_outputs;
    by_name_[unique] = id;
    nodes_.push_back(std::move(node));
    return id;
}

void
Graph::AddControlEdge(NodeId before, NodeId node)
{
    if (before < 0 || node < 0 || before >= num_nodes() ||
        node >= num_nodes()) {
        throw std::invalid_argument("Graph::AddControlEdge: id out of range");
    }
    mutable_node(node).control_inputs.push_back(before);
}

const Node&
Graph::node(NodeId id) const
{
    if (id < 0 || id >= num_nodes()) {
        throw std::out_of_range("Graph::node: id out of range");
    }
    return *nodes_[static_cast<std::size_t>(id)];
}

Node&
Graph::mutable_node(NodeId id)
{
    if (id < 0 || id >= num_nodes()) {
        throw std::out_of_range("Graph::mutable_node: id out of range");
    }
    return *nodes_[static_cast<std::size_t>(id)];
}

const Node&
Graph::node_by_name(const std::string& name) const
{
    auto it = by_name_.find(name);
    if (it == by_name_.end()) {
        throw std::out_of_range("Graph: no node named '" + name + "'");
    }
    return node(it->second);
}

NodeId
Graph::FindNode(const std::string& name) const
{
    auto it = by_name_.find(name);
    return it == by_name_.end() ? -1 : it->second;
}

std::vector<NodeId>
Graph::AllNodes() const
{
    std::vector<NodeId> ids;
    ids.reserve(nodes_.size());
    for (const auto& n : nodes_) {
        ids.push_back(n->id);
    }
    return ids;
}

std::vector<NodeId>
Graph::TopologicalOrder(const std::vector<NodeId>& targets) const
{
    // Iterative DFS with colors; nodes were appended in dependency
    // order (AddNode validates inputs point backwards), so cycles can
    // only arise via control edges.
    enum class Color { kWhite, kGray, kBlack };
    std::vector<Color> color(nodes_.size(), Color::kWhite);
    std::vector<NodeId> order;
    order.reserve(nodes_.size());

    struct Frame {
        NodeId id;
        std::size_t next_dep;
    };
    std::vector<Frame> stack;

    auto deps_of = [this](NodeId id) {
        std::vector<NodeId> deps;
        const Node& n = node(id);
        deps.reserve(n.inputs.size() + n.control_inputs.size());
        for (const Output& in : n.inputs) {
            deps.push_back(in.node);
        }
        for (NodeId c : n.control_inputs) {
            deps.push_back(c);
        }
        return deps;
    };

    for (NodeId target : targets) {
        if (target < 0 || target >= num_nodes()) {
            throw std::out_of_range("TopologicalOrder: target out of range");
        }
        if (color[static_cast<std::size_t>(target)] == Color::kBlack) {
            continue;
        }
        stack.push_back({target, 0});
        color[static_cast<std::size_t>(target)] = Color::kGray;
        while (!stack.empty()) {
            Frame& frame = stack.back();
            const auto deps = deps_of(frame.id);
            if (frame.next_dep < deps.size()) {
                const NodeId dep = deps[frame.next_dep++];
                Color& c = color[static_cast<std::size_t>(dep)];
                if (c == Color::kGray) {
                    throw std::logic_error("Graph contains a cycle through '" +
                                           node(dep).name + "'");
                }
                if (c == Color::kWhite) {
                    c = Color::kGray;
                    stack.push_back({dep, 0});
                }
            } else {
                color[static_cast<std::size_t>(frame.id)] = Color::kBlack;
                order.push_back(frame.id);
                stack.pop_back();
            }
        }
    }
    return order;
}

std::string
Graph::DebugString() const
{
    std::ostringstream out;
    for (const auto& n : nodes_) {
        out << n->id << ": " << n->name << " = " << n->op_type << "(";
        for (std::size_t i = 0; i < n->inputs.size(); ++i) {
            if (i > 0) {
                out << ", ";
            }
            out << node(n->inputs[i].node).name;
            if (n->inputs[i].index != 0) {
                out << ":" << n->inputs[i].index;
            }
        }
        out << ")";
        if (!n->control_inputs.empty()) {
            out << " [ctrl:";
            for (NodeId c : n->control_inputs) {
                out << " " << node(c).name;
            }
            out << "]";
        }
        out << "\n";
    }
    return out.str();
}

}  // namespace fathom::graph
