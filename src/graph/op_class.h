/**
 * @file
 * The seven-way operation-type taxonomy from the paper's Figure 3.
 *
 * Every registered operation is tagged with one class; the analysis
 * tools aggregate execution time per class to reproduce the paper's
 * breakdown heatmap, similarity clustering, and scaling studies.
 */
#ifndef FATHOM_GRAPH_OP_CLASS_H
#define FATHOM_GRAPH_OP_CLASS_H

#include <array>
#include <string>

namespace fathom::graph {

/** Operation class, matching the paper's Fig. 3 legend. */
enum class OpClass {
    kMatrixOps,           ///< MatMul and friends.
    kConvolution,         ///< Conv2D forward/backward, pooling.
    kElementwise,         ///< activations, gate arithmetic, add/mul/...
    kReductionExpansion,  ///< Sum/Mean/Max, Tile, AddN, Softmax.
    kRandomSampling,      ///< RandomNormal/Uniform, dropout masks.
    kOptimization,        ///< parameter updates and loss functions.
    kDataMovement,        ///< Reshape/Transpose/Concat/Slice/Gather/...
    kControl,             ///< Const/Placeholder/Variable/Assign/Shape.
};

/** Number of distinct op classes. */
inline constexpr int kNumOpClasses = 8;

/** @return a stable display name, e.g. "Convolution". */
std::string OpClassName(OpClass c);

/** @return all classes in display order (Fig. 3 row order). */
const std::array<OpClass, kNumOpClasses>& AllOpClasses();

}  // namespace fathom::graph

#endif  // FATHOM_GRAPH_OP_CLASS_H
